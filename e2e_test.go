package xgftsim_test

// End-to-end smoke tests: build and run every example and command the
// way a user would, checking exit status and a marker in the output.
// Skipped under -short (they shell out to the go tool).

import (
	"os/exec"
	"strings"
	"testing"
	"time"
)

func runGo(t *testing.T, timeout time.Duration, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", args...)
	done := make(chan struct{})
	var out []byte
	var err error
	go func() {
		out, err = cmd.CombinedOutput()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		_ = cmd.Process.Kill()
		t.Fatalf("go %s timed out after %v", strings.Join(args, " "), timeout)
	}
	if err != nil {
		t.Fatalf("go %s: %v\n%s", strings.Join(args, " "), err, out)
	}
	return string(out)
}

func TestExamplesEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("shelling out to go run")
	}
	cases := []struct {
		pkg    string
		marker string
	}{
		{"./examples/quickstart", "umulti"},
		{"./examples/adversarial", "performance ratio"},
		{"./examples/lid-budget", "largest addressable K"},
		{"./examples/fault-tolerance", "adaptive, failed link"},
		{"./examples/saturation", "max throughput"},
	}
	for _, c := range cases {
		c := c
		t.Run(strings.TrimPrefix(c.pkg, "./examples/"), func(t *testing.T) {
			out := runGo(t, 5*time.Minute, "run", c.pkg)
			if !strings.Contains(out, c.marker) {
				t.Fatalf("output missing %q:\n%s", c.marker, out)
			}
		})
	}
}

func TestCommandsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("shelling out to go run")
	}
	cases := []struct {
		name   string
		args   []string
		marker string
	}{
		{"xgftinfo", []string{"run", "./cmd/xgftinfo", "-xgft", "3;4,4,4;1,4,2", "-src", "0", "-dst", "63", "-k", "4"}, "path   7"},
		{"xgftflow", []string{"run", "./cmd/xgftflow", "-mport", "8", "-ntree", "2", "-scheme", "disjoint", "-k", "2", "-samples", "20", "-max-samples", "20", "-precision", "0.5"}, "average max link load"},
		{"xgftflow-adversarial", []string{"run", "./cmd/xgftflow", "-xgft", "2;8,64;1,8", "-scheme", "d-mod-k", "-pattern", "adversarial"}, "PERF = 8.0000"},
		{"xgftflit", []string{"run", "./cmd/xgftflit", "-mport", "8", "-ntree", "2", "-scheme", "disjoint", "-k", "2", "-load", "0.3", "-warmup", "1000", "-measure", "4000"}, "accepted"},
		{"xgftflit-adaptive", []string{"run", "./cmd/xgftflit", "-mport", "8", "-ntree", "2", "-adaptive", "-load", "0.3", "-warmup", "1000", "-measure", "4000"}, "accepted"},
		{"xgftlft", []string{"run", "./cmd/xgftlft", "-mport", "8", "-ntree", "2", "-scheme", "disjoint", "-k", "2", "-verify"}, "all delivered"},
		{"xgftworst", []string{"run", "./cmd/xgftworst", "-mport", "8", "-ntree", "2", "-scheme", "umulti", "-steps", "200", "-restarts", "1"}, "worst ratio found: 1.0000"},
		{"xgftpaper", []string{"run", "./cmd/xgftpaper", "-exp", "thm2,lid"}, "Theorem 2"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			out := runGo(t, 5*time.Minute, c.args...)
			if !strings.Contains(out, c.marker) {
				t.Fatalf("output missing %q:\n%s", c.marker, out)
			}
		})
	}
}
