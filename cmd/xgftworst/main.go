// Command xgftworst searches for worst-case permutations: the
// adversarial demands that lower-bound a routing's oblivious
// performance ratio (Theorem 2 hand-constructs one for d-mod-k; the
// annealing search finds them automatically for any scheme and K).
//
// Usage:
//
//	xgftworst -mport 8 -ntree 2 -scheme d-mod-k
//	xgftworst -xgft "3;4,4,8;1,4,4" -scheme disjoint -k 4 -steps 5000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"xgftsim/internal/adversary"
	"xgftsim/internal/cliutil"
	"xgftsim/internal/core"
	"xgftsim/internal/flow"
	"xgftsim/internal/traffic"
)

func main() {
	spec := flag.String("xgft", "", `topology as "h;m1,..,mh;w1,..,wh"`)
	mport := flag.Int("mport", 0, "build an m-port n-tree (with -ntree)")
	ntree := flag.Int("ntree", 0, "tree height for -mport")
	scheme := flag.String("scheme", "d-mod-k", "routing scheme ("+strings.Join(core.SelectorNames(), ", ")+")")
	k := flag.Int("k", 1, "path limit K")
	steps := flag.Int("steps", 3000, "annealing steps per restart")
	restarts := flag.Int("restarts", 4, "annealing restarts")
	seed := flag.Int64("seed", 1, "search seed")
	show := flag.Bool("show", false, "print the worst permutation found")
	flag.Parse()

	t, err := cliutil.BuildTopology(*spec, *mport, *ntree)
	if err != nil {
		fatal(err)
	}
	sel, err := core.SelectorByName(*scheme)
	if err != nil {
		fatal(err)
	}
	r := core.NewRouting(t, sel, *k, *seed)
	fmt.Printf("searching worst permutation for %s on %s ...\n", r, t)
	res := adversary.WorstPermutation(r, adversary.Config{
		Steps:    *steps,
		Restarts: *restarts,
		Seed:     *seed,
	})
	tm := traffic.FromPermutation(res.Perm)
	fmt.Printf("worst ratio found: %.4f (MLOAD %.4f / OLOAD %.4f) after %d evaluations\n",
		res.Ratio, flow.NewEvaluator(r).MaxLoad(tm), flow.OptimalLoad(t, tm), res.Evaluations)
	if *show {
		for src, dst := range res.Perm {
			if src != dst {
				fmt.Printf("  %d -> %d\n", src, dst)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xgftworst:", err)
	os.Exit(1)
}
