// Command xgftflit runs the flit-level virtual cut-through simulator:
// a single run at one offered load, or a load sweep reporting delay,
// accepted throughput and the saturation point.
//
// Usage:
//
//	xgftflit -mport 8 -ntree 3 -scheme disjoint -k 8 -load 0.6
//	xgftflit -mport 8 -ntree 3 -scheme d-mod-k -sweep
//	xgftflit -xgft "2;8,16;1,8" -scheme shift-1 -k 2 -sweep -workload uniform
//
// With -out DIR the run writes DIR/manifest.json (tool version, flags,
// headline results, metrics snapshot); -cpuprofile/-memprofile/-trace
// capture profiles of the run.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"

	"xgftsim/internal/cliutil"
	"xgftsim/internal/core"
	"xgftsim/internal/flit"
	"xgftsim/internal/stats"
	"xgftsim/internal/topology"
	"xgftsim/internal/traffic"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("xgftflit", flag.ContinueOnError)
	fs.SetOutput(stderr)
	spec := fs.String("xgft", "", `topology as "h;m1,..,mh;w1,..,wh"`)
	mport := fs.Int("mport", 0, "build an m-port n-tree (with -ntree)")
	ntree := fs.Int("ntree", 0, "tree height for -mport")
	scheme := fs.String("scheme", "disjoint", "routing scheme ("+strings.Join(core.SelectorNames(), ", ")+")")
	k := fs.Int("k", 4, "path limit K")
	load := fs.Float64("load", 0.5, "offered load in (0,1] for a single run")
	sweep := fs.Bool("sweep", false, "sweep offered loads 0.05..1.00")
	workload := fs.String("workload", "assignment", "assignment (fixed random src->dst map) | uniform (fresh destination per message) | shift")
	arg := fs.Int("arg", 1, "workload argument (shift amount)")
	flits := fs.Int("flits", 8, "flits per packet")
	packets := fs.Int("packets", 4, "packets per message")
	buf := fs.Int("buf", 4, "buffer capacity in packets per port")
	warmup := fs.Int64("warmup", 10000, "warmup cycles")
	measure := fs.Int64("measure", 30000, "measurement cycles")
	seed := fs.Int64("seed", 2012, "simulation seed")
	policy := fs.String("policy", "round-robin", "per-message path policy: round-robin | random")
	adaptive := fs.Bool("adaptive", false, "use minimal adaptive routing instead of the oblivious scheme")
	selector := fs.String("selector", "", "output selection: oblivious | adaptive | adaptive-k (overrides -adaptive)")
	vcs := fs.Int("vcs", 1, "virtual channels per link (the paper uses 1)")
	vcScheme := fs.String("vcscheme", "rr-injection", "VC assignment: rr-injection | dest-subtree | down-digit")
	burst := fs.Float64("burst", 1, "mean burst size for bursty Poisson arrivals (1 = plain Poisson)")
	out := fs.String("out", "", "directory for manifest.json (created if missing)")
	prof := cliutil.AddProfileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var man *cliutil.Manifest
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(stderr, "xgftflit:", err)
			return 1
		}
		man = cliutil.NewManifest("xgftflit")
		man.Flags = cliutil.FlagValues(fs)
		man.Seed = *seed
	}
	// seal writes the manifest exactly once, whether the run finishes,
	// fails, or is interrupted by a signal racing the normal exit path.
	var sealOnce sync.Once
	seal := func(status *int, err error) {
		sealOnce.Do(func() {
			if man != nil {
				man.Finish(*status, err)
				if werr := man.WriteFile(*out); werr != nil {
					fmt.Fprintln(stderr, "xgftflit:", werr)
					if *status == 0 {
						*status = 1
					}
				}
			}
			if err != nil {
				fmt.Fprintln(stderr, "xgftflit:", err)
			}
		})
	}
	finish := func(status int, err error) int {
		if perr := prof.Stop(); perr != nil && err == nil {
			status, err = 1, perr
		}
		seal(&status, err)
		return status
	}

	// A simulation run has no cell boundaries to cancel at, so the first
	// SIGINT/SIGTERM seals the manifest with exit_status "interrupted"
	// and exits 130; a second signal (after stop() restores the default
	// disposition) kills the process outright.
	ctx, stop := cliutil.WithInterrupt(context.Background())
	defer stop()
	workDone := make(chan struct{})
	defer close(workDone)
	go func() {
		select {
		case <-workDone:
		case <-ctx.Done():
			select {
			case <-workDone:
				return
			default:
			}
			status := 130
			seal(&status, cliutil.ErrInterrupted)
			os.Exit(status)
		}
	}()

	if err := prof.Start(); err != nil {
		return finish(1, err)
	}

	t, err := cliutil.BuildTopology(*spec, *mport, *ntree)
	if err != nil {
		return finish(1, err)
	}
	sel, err := core.SelectorByName(*scheme)
	if err != nil {
		return finish(1, err)
	}
	pattern, err := buildPattern(t, *workload, *arg, *seed)
	if err != nil {
		return finish(1, err)
	}
	pp := flit.RoundRobin
	if *policy == "random" {
		pp = flit.RandomPath
	} else if *policy != "round-robin" {
		return finish(1, fmt.Errorf("unknown path policy %q", *policy))
	}
	var outSel flit.OutputSelector
	if *selector != "" {
		if outSel, err = flit.ParseOutputSelector(*selector); err != nil {
			return finish(1, err)
		}
	}
	vcSch, err := flit.ParseVCScheme(*vcScheme)
	if err != nil {
		return finish(1, err)
	}
	base := flit.Config{
		Routing:           core.NewRouting(t, sel, *k, *seed),
		Pattern:           pattern,
		OfferedLoad:       *load,
		FlitsPerPacket:    *flits,
		PacketsPerMessage: *packets,
		BufferPackets:     *buf,
		WarmupCycles:      *warmup,
		MeasureCycles:     *measure,
		Seed:              *seed,
		PathPolicy:        pp,
		Adaptive:          *adaptive,
		Selector:          outSel,
		VCScheme:          vcSch,
		BurstMean:         *burst,
		VirtualChannels:   *vcs,
		DelayHistogram:    true,
	}
	fmt.Fprintf(stdout, "%s, routing %s, workload %s, packet %d flits, message %d packets, buffers %d\n",
		t, base.Routing, pattern.Name(), *flits, *packets, *buf)

	if !*sweep {
		res, err := flit.Run(base)
		if err != nil {
			return finish(1, err)
		}
		fmt.Fprintf(stdout, "offered %.3f: accepted %.4f, delay %.1f cycles (p95 %.0f), %d/%d messages, saturated=%v\n",
			res.OfferedLoad, res.Throughput, res.AvgDelay, res.P95Delay,
			res.MsgsCompleted, res.MsgsGenerated, res.Saturated)
		if man != nil {
			man.Results = map[string]any{
				"offered_load":   res.OfferedLoad,
				"throughput":     res.Throughput,
				"avg_delay":      res.AvgDelay,
				"p95_delay":      res.P95Delay,
				"msgs_completed": res.MsgsCompleted,
				"msgs_generated": res.MsgsGenerated,
				"vc_stalls":      res.VCStalls,
				"saturated":      res.Saturated,
			}
		}
		return finish(0, nil)
	}
	results, err := flit.Sweep(flit.SweepConfig{Base: base})
	if err != nil {
		return finish(1, err)
	}
	fmt.Fprintf(stdout, "%8s %10s %12s %10s %10s\n", "load", "accepted", "delay(cyc)", "p95", "saturated")
	for _, r := range results {
		fmt.Fprintf(stdout, "%8.2f %10.4f %12.1f %10.0f %10v\n",
			r.OfferedLoad, r.Throughput, r.AvgDelay, r.P95Delay, r.Saturated)
	}
	fmt.Fprintf(stdout, "max throughput %.4f, saturation at load %.2f\n",
		flit.MaxThroughput(results), flit.SaturationLoad(results))
	if man != nil {
		man.Results = map[string]any{
			"sweep_points":    len(results),
			"max_throughput":  flit.MaxThroughput(results),
			"saturation_load": flit.SaturationLoad(results),
		}
	}
	return finish(0, nil)
}

func buildPattern(t *topology.Topology, workload string, arg int, seed int64) (traffic.Pattern, error) {
	n := t.NumProcessors()
	switch workload {
	case "assignment":
		rng := stats.Stream(seed, 31)
		return traffic.NewPermutationPattern("assignment", traffic.RandomDerangementish(n, rng)), nil
	case "uniform":
		return traffic.UniformPattern{N: n}, nil
	case "shift":
		return traffic.NewPermutationPattern("shift", traffic.ShiftPermutation(n, arg)), nil
	}
	return nil, fmt.Errorf("unknown workload %q", workload)
}
