// Command xgftflit runs the flit-level virtual cut-through simulator:
// a single run at one offered load, or a load sweep reporting delay,
// accepted throughput and the saturation point.
//
// Usage:
//
//	xgftflit -mport 8 -ntree 3 -scheme disjoint -k 8 -load 0.6
//	xgftflit -mport 8 -ntree 3 -scheme d-mod-k -sweep
//	xgftflit -xgft "2;8,16;1,8" -scheme shift-1 -k 2 -sweep -workload uniform
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"xgftsim/internal/cliutil"
	"xgftsim/internal/core"
	"xgftsim/internal/flit"
	"xgftsim/internal/stats"
	"xgftsim/internal/topology"
	"xgftsim/internal/traffic"
)

func main() {
	spec := flag.String("xgft", "", `topology as "h;m1,..,mh;w1,..,wh"`)
	mport := flag.Int("mport", 0, "build an m-port n-tree (with -ntree)")
	ntree := flag.Int("ntree", 0, "tree height for -mport")
	scheme := flag.String("scheme", "disjoint", "routing scheme ("+strings.Join(core.SelectorNames(), ", ")+")")
	k := flag.Int("k", 4, "path limit K")
	load := flag.Float64("load", 0.5, "offered load in (0,1] for a single run")
	sweep := flag.Bool("sweep", false, "sweep offered loads 0.05..1.00")
	workload := flag.String("workload", "assignment", "assignment (fixed random src->dst map) | uniform (fresh destination per message) | shift")
	arg := flag.Int("arg", 1, "workload argument (shift amount)")
	flits := flag.Int("flits", 8, "flits per packet")
	packets := flag.Int("packets", 4, "packets per message")
	buf := flag.Int("buf", 4, "buffer capacity in packets per port")
	warmup := flag.Int64("warmup", 10000, "warmup cycles")
	measure := flag.Int64("measure", 30000, "measurement cycles")
	seed := flag.Int64("seed", 2012, "simulation seed")
	policy := flag.String("policy", "round-robin", "per-message path policy: round-robin | random")
	adaptive := flag.Bool("adaptive", false, "use minimal adaptive routing instead of the oblivious scheme")
	vcs := flag.Int("vcs", 1, "virtual channels per link (the paper uses 1)")
	flag.Parse()

	t, err := cliutil.BuildTopology(*spec, *mport, *ntree)
	if err != nil {
		fatal(err)
	}
	sel, err := core.SelectorByName(*scheme)
	if err != nil {
		fatal(err)
	}
	pattern, err := buildPattern(t, *workload, *arg, *seed)
	if err != nil {
		fatal(err)
	}
	pp := flit.RoundRobin
	if *policy == "random" {
		pp = flit.RandomPath
	} else if *policy != "round-robin" {
		fatal(fmt.Errorf("unknown path policy %q", *policy))
	}
	base := flit.Config{
		Routing:           core.NewRouting(t, sel, *k, *seed),
		Pattern:           pattern,
		OfferedLoad:       *load,
		FlitsPerPacket:    *flits,
		PacketsPerMessage: *packets,
		BufferPackets:     *buf,
		WarmupCycles:      *warmup,
		MeasureCycles:     *measure,
		Seed:              *seed,
		PathPolicy:        pp,
		Adaptive:          *adaptive,
		VirtualChannels:   *vcs,
		DelayHistogram:    true,
	}
	fmt.Printf("%s, routing %s, workload %s, packet %d flits, message %d packets, buffers %d\n",
		t, base.Routing, pattern.Name(), *flits, *packets, *buf)

	if !*sweep {
		res, err := flit.Run(base)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("offered %.3f: accepted %.4f, delay %.1f cycles (p95 %.0f), %d/%d messages, saturated=%v\n",
			res.OfferedLoad, res.Throughput, res.AvgDelay, res.P95Delay,
			res.MsgsCompleted, res.MsgsGenerated, res.Saturated)
		return
	}
	results, err := flit.Sweep(flit.SweepConfig{Base: base})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%8s %10s %12s %10s %10s\n", "load", "accepted", "delay(cyc)", "p95", "saturated")
	for _, r := range results {
		fmt.Printf("%8.2f %10.4f %12.1f %10.0f %10v\n",
			r.OfferedLoad, r.Throughput, r.AvgDelay, r.P95Delay, r.Saturated)
	}
	fmt.Printf("max throughput %.4f, saturation at load %.2f\n",
		flit.MaxThroughput(results), flit.SaturationLoad(results))
}

func buildPattern(t *topology.Topology, workload string, arg int, seed int64) (traffic.Pattern, error) {
	n := t.NumProcessors()
	switch workload {
	case "assignment":
		rng := stats.Stream(seed, 31)
		return traffic.NewPermutationPattern("assignment", traffic.RandomDerangementish(n, rng)), nil
	case "uniform":
		return traffic.UniformPattern{N: n}, nil
	case "shift":
		return traffic.NewPermutationPattern("shift", traffic.ShiftPermutation(n, arg)), nil
	}
	return nil, fmt.Errorf("unknown workload %q", workload)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xgftflit:", err)
	os.Exit(1)
}
