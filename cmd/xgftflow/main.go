// Command xgftflow runs flow-level routing experiments: the maximum
// link load, optimal load and performance ratio of a routing scheme on
// a chosen traffic pattern, or the paper's average-permutation study.
//
// Usage:
//
//	xgftflow -mport 16 -ntree 2 -scheme disjoint -k 4                 # permutation study
//	xgftflow -mport 8 -ntree 3 -scheme d-mod-k -pattern shift -arg 1  # one pattern
//	xgftflow -xgft "2;8,64;1,8" -scheme d-mod-k -pattern adversarial
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"xgftsim/internal/cliutil"
	"xgftsim/internal/core"
	"xgftsim/internal/flow"
	"xgftsim/internal/stats"
	"xgftsim/internal/topology"
	"xgftsim/internal/traffic"
)

func main() {
	spec := flag.String("xgft", "", `topology as "h;m1,..,mh;w1,..,wh"`)
	mport := flag.Int("mport", 0, "build an m-port n-tree (with -ntree)")
	ntree := flag.Int("ntree", 0, "tree height for -mport")
	scheme := flag.String("scheme", "disjoint", "routing scheme ("+strings.Join(core.SelectorNames(), ", ")+")")
	k := flag.Int("k", 4, "path limit K")
	pattern := flag.String("pattern", "permutations", "permutations | shift | bitcomp | bitrev | transpose | tornado | neighbor | butterfly | uniform | hotspot | adversarial | random")
	arg := flag.Int("arg", 1, "pattern argument (shift amount, hotspot node)")
	seed := flag.Int64("seed", 2012, "base seed")
	samples := flag.Int("samples", 100, "initial samples for the permutation study")
	maxSamples := flag.Int("max-samples", 12800, "sample cap for the permutation study")
	precision := flag.Float64("precision", 0.01, "relative confidence-interval target")
	flag.Parse()

	t, err := cliutil.BuildTopology(*spec, *mport, *ntree)
	if err != nil {
		fatal(err)
	}
	sel, err := core.SelectorByName(*scheme)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s, routing %s\n", t, core.NewRouting(t, sel, *k, *seed))

	if *pattern == "permutations" {
		res := flow.Experiment{
			Topo: t, Sel: sel, K: *k, PermSeed: *seed,
			Sampling: stats.AdaptiveConfig{
				InitialSamples: *samples, MaxSamples: *maxSamples, RelPrecision: *precision,
			},
		}.Run()
		fmt.Printf("average max link load over %d permutations: %.4f ± %.4f (99%% CI, converged=%v)\n",
			res.Acc.N(), res.Acc.Mean(), res.HalfWidth, res.Converged)
		return
	}

	tm, err := buildMatrix(t, *pattern, *arg, *seed)
	if err != nil {
		fatal(err)
	}
	r := core.NewRouting(t, sel, *k, *seed)
	ev := flow.NewEvaluator(r)
	mload := ev.MaxLoad(tm)
	oload := flow.OptimalLoad(t, tm)
	fmt.Printf("pattern %s: %d flows, %.1f units\n", *pattern, tm.NumFlows(), tm.Total())
	fmt.Printf("  MLOAD = %.4f  OLOAD = %.4f  PERF = %.4f\n", mload, oload, mload/oload)
	for tier, pair := range ev.TierLoads() {
		fmt.Printf("  tier %d-%d max load: up %.3f, down %.3f\n", tier, tier+1, pair[0], pair[1])
	}
}

func buildMatrix(t *topology.Topology, pattern string, arg int, seed int64) (*traffic.Matrix, error) {
	n := t.NumProcessors()
	switch pattern {
	case "shift":
		return traffic.FromPermutation(traffic.ShiftPermutation(n, arg)), nil
	case "bitcomp":
		p, err := traffic.BitComplement(n)
		if err != nil {
			return nil, err
		}
		return traffic.FromPermutation(p), nil
	case "bitrev":
		p, err := traffic.BitReversal(n)
		if err != nil {
			return nil, err
		}
		return traffic.FromPermutation(p), nil
	case "transpose":
		p, err := traffic.Transpose(n)
		if err != nil {
			return nil, err
		}
		return traffic.FromPermutation(p), nil
	case "tornado":
		return traffic.FromPermutation(traffic.Tornado(n)), nil
	case "neighbor":
		p, err := traffic.NeighborExchange(n)
		if err != nil {
			return nil, err
		}
		return traffic.FromPermutation(p), nil
	case "butterfly":
		p, err := traffic.Butterfly(n)
		if err != nil {
			return nil, err
		}
		return traffic.FromPermutation(p), nil
	case "uniform":
		return traffic.Uniform(n), nil
	case "hotspot":
		return traffic.Hotspot(n, arg%n, 0), nil
	case "adversarial":
		return traffic.AdversarialDModK(t)
	case "random":
		return traffic.FromPermutation(traffic.RandomPermutation(n, stats.Stream(seed, 0))), nil
	}
	return nil, fmt.Errorf("unknown pattern %q", pattern)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xgftflow:", err)
	os.Exit(1)
}
