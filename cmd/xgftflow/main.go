// Command xgftflow runs flow-level routing experiments: the maximum
// link load, optimal load and performance ratio of a routing scheme on
// a chosen traffic pattern, or the paper's average-permutation study.
//
// Usage:
//
//	xgftflow -mport 16 -ntree 2 -scheme disjoint -k 4                 # permutation study
//	xgftflow -mport 8 -ntree 3 -scheme d-mod-k -pattern shift -arg 1  # one pattern
//	xgftflow -xgft "2;8,64;1,8" -scheme d-mod-k -pattern adversarial
//
// With -out DIR the run writes DIR/manifest.json (tool version, flags,
// headline results, metrics snapshot); -cpuprofile/-memprofile/-trace
// capture profiles of the run.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"

	"xgftsim/internal/cliutil"
	"xgftsim/internal/core"
	"xgftsim/internal/flow"
	"xgftsim/internal/stats"
	"xgftsim/internal/traffic"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("xgftflow", flag.ContinueOnError)
	fs.SetOutput(stderr)
	spec := fs.String("xgft", "", `topology as "h;m1,..,mh;w1,..,wh"`)
	mport := fs.Int("mport", 0, "build an m-port n-tree (with -ntree)")
	ntree := fs.Int("ntree", 0, "tree height for -mport")
	scheme := fs.String("scheme", "disjoint", "routing scheme ("+strings.Join(core.SelectorNames(), ", ")+")")
	k := fs.Int("k", 4, "path limit K")
	pattern := fs.String("pattern", "permutations", "permutations | shift | bitcomp | bitrev | transpose | tornado | neighbor | butterfly | uniform | hotspot | adversarial | random")
	arg := fs.Int("arg", 1, "pattern argument (shift amount, hotspot node)")
	seed := fs.Int64("seed", 2012, "base seed")
	samples := fs.Int("samples", 100, "initial samples for the permutation study")
	maxSamples := fs.Int("max-samples", 12800, "sample cap for the permutation study")
	precision := fs.Float64("precision", 0.01, "relative confidence-interval target")
	out := fs.String("out", "", "directory for manifest.json (created if missing)")
	compile := fs.String("compile", "auto", "routing-table policy for the permutation study: auto | never | always | block")
	tf := cliutil.AddTableFlags(fs)
	prof := cliutil.AddProfileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	mode, err := compileMode(*compile)
	if err != nil {
		fmt.Fprintln(stderr, "xgftflow:", err)
		fs.Usage()
		return 2
	}

	var man *cliutil.Manifest
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(stderr, "xgftflow:", err)
			return 1
		}
		man = cliutil.NewManifest("xgftflow")
		man.Flags = cliutil.FlagValues(fs)
		man.Seed = *seed
		tf.Stamp(man)
	}
	// seal writes the manifest exactly once, whether the run finishes,
	// fails, or is interrupted by a signal racing the normal exit path.
	var sealOnce sync.Once
	seal := func(status *int, err error) {
		sealOnce.Do(func() {
			if man != nil {
				man.Finish(*status, err)
				if werr := man.WriteFile(*out); werr != nil {
					fmt.Fprintln(stderr, "xgftflow:", werr)
					if *status == 0 {
						*status = 1
					}
				}
			}
			if err != nil {
				fmt.Fprintln(stderr, "xgftflow:", err)
			}
		})
	}
	finish := func(status int, err error) int {
		if perr := prof.Stop(); perr != nil && err == nil {
			status, err = 1, perr
		}
		seal(&status, err)
		return status
	}

	// A single evaluation has no cell boundaries to cancel at, so the
	// first SIGINT/SIGTERM seals the manifest with exit_status
	// "interrupted" and exits 130; a second signal (after stop()
	// restores the default disposition) kills the process outright.
	ctx, stop := cliutil.WithInterrupt(context.Background())
	defer stop()
	workDone := make(chan struct{})
	defer close(workDone)
	go func() {
		select {
		case <-workDone:
		case <-ctx.Done():
			select {
			case <-workDone:
				return
			default:
			}
			status := 130
			seal(&status, cliutil.ErrInterrupted)
			os.Exit(status)
		}
	}()

	if err := prof.Start(); err != nil {
		return finish(1, err)
	}

	t, err := cliutil.BuildTopology(*spec, *mport, *ntree)
	if err != nil {
		return finish(1, err)
	}
	sel, err := core.SelectorByName(*scheme)
	if err != nil {
		return finish(1, err)
	}
	fmt.Fprintf(stdout, "%s, routing %s\n", t, core.NewRouting(t, sel, *k, *seed))

	if *pattern == "permutations" {
		cache, err := tf.OpenCache()
		if err != nil {
			return finish(1, err)
		}
		res := flow.Experiment{
			Topo: t, Sel: sel, K: *k, PermSeed: *seed,
			Sampling: stats.AdaptiveConfig{
				InitialSamples: *samples, MaxSamples: *maxSamples, RelPrecision: *precision,
			},
			Compile:       mode,
			CompileBudget: tf.Budget,
			Block:         flow.BlockPolicy{SegmentBytes: tf.SegmentBytes, Cache: cache},
		}.Run()
		fmt.Fprintf(stdout, "average max link load over %d permutations: %.4f ± %.4f (99%% CI, converged=%v)\n",
			res.Acc.N(), res.Acc.Mean(), res.HalfWidth, res.Converged)
		if man != nil {
			man.Results = map[string]any{
				"samples":      res.Acc.N(),
				"avg_max_load": res.Acc.Mean(),
				"half_width":   res.HalfWidth,
				"converged":    res.Converged,
			}
		}
		return finish(0, nil)
	}

	tm, err := traffic.BuildMatrix(t, *pattern, *arg, *seed)
	if err != nil {
		return finish(1, err)
	}
	r := core.NewRouting(t, sel, *k, *seed)
	ev := flow.NewEvaluator(r)
	mload := ev.MaxLoad(tm)
	oload := flow.OptimalLoad(t, tm)
	fmt.Fprintf(stdout, "pattern %s: %d flows, %.1f units\n", *pattern, tm.NumFlows(), tm.Total())
	fmt.Fprintf(stdout, "  MLOAD = %.4f  OLOAD = %.4f  PERF = %.4f\n", mload, oload, mload/oload)
	for tier, pair := range ev.TierLoads() {
		fmt.Fprintf(stdout, "  tier %d-%d max load: up %.3f, down %.3f\n", tier, tier+1, pair[0], pair[1])
	}
	if man != nil {
		man.Results = map[string]any{
			"mload": mload,
			"oload": oload,
			"perf":  mload / oload,
		}
	}
	return finish(0, nil)
}

// compileMode resolves the -compile flag.
func compileMode(s string) (flow.CompileMode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "auto", "":
		return flow.CompileAuto, nil
	case "never":
		return flow.CompileNever, nil
	case "always":
		return flow.CompileAlways, nil
	case "block":
		return flow.CompileBlock, nil
	}
	return 0, fmt.Errorf("unknown -compile mode %q (want auto, never, always or block)", s)
}
