package main

import (
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	const text = `goos: linux
goarch: amd64
pkg: xgftsim
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFig4d 	       1	9013777986 ns/op	         1.000 maxload@Kmax	468526880 B/op	 1521868 allocs/op
BenchmarkLoadsCompiled-8  	  260818	      4953 ns/op	       0 B/op	       0 allocs/op
BenchmarkPathLinks  	  998877	      1042 ns/op
PASS
ok  	xgftsim	9.017s
`
	got, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d results, want 3", len(got))
	}
	f := got[0]
	if f.Name != "BenchmarkFig4d" || f.Iterations != 1 || f.NsPerOp != 9013777986 {
		t.Fatalf("Fig4d parsed as %+v", f)
	}
	if f.BytesPerOp == nil || *f.BytesPerOp != 468526880 || f.AllocsPerOp == nil || *f.AllocsPerOp != 1521868 {
		t.Fatalf("Fig4d memory columns parsed as %+v", f)
	}
	if f.Metrics["maxload@Kmax"] != 1.0 {
		t.Fatalf("Fig4d custom metric parsed as %v", f.Metrics)
	}
	l := got[1]
	if l.Name != "BenchmarkLoadsCompiled" {
		t.Fatalf("GOMAXPROCS suffix not stripped: %q", l.Name)
	}
	if *l.BytesPerOp != 0 || *l.AllocsPerOp != 0 {
		t.Fatalf("LoadsCompiled memory columns parsed as %+v", l)
	}
	p := got[2]
	if p.BytesPerOp != nil || p.AllocsPerOp != nil || p.NsPerOp != 1042 {
		t.Fatalf("PathLinks (no -benchmem) parsed as %+v", p)
	}
}
