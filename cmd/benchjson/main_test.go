package main

import (
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	const text = `goos: linux
goarch: amd64
pkg: xgftsim
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFig4d 	       1	9013777986 ns/op	         1.000 maxload@Kmax	468526880 B/op	 1521868 allocs/op
BenchmarkLoadsCompiled-8  	  260818	      4953 ns/op	       0 B/op	       0 allocs/op
BenchmarkPathLinks  	  998877	      1042 ns/op
PASS
ok  	xgftsim	9.017s
`
	got, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d results, want 3", len(got))
	}
	f := got[0]
	if f.Name != "BenchmarkFig4d" || f.Iterations != 1 || f.NsPerOp != 9013777986 {
		t.Fatalf("Fig4d parsed as %+v", f)
	}
	if f.BytesPerOp == nil || *f.BytesPerOp != 468526880 || f.AllocsPerOp == nil || *f.AllocsPerOp != 1521868 {
		t.Fatalf("Fig4d memory columns parsed as %+v", f)
	}
	if f.Metrics["maxload@Kmax"] != 1.0 {
		t.Fatalf("Fig4d custom metric parsed as %v", f.Metrics)
	}
	l := got[1]
	if l.Name != "BenchmarkLoadsCompiled" {
		t.Fatalf("GOMAXPROCS suffix not stripped: %q", l.Name)
	}
	if *l.BytesPerOp != 0 || *l.AllocsPerOp != 0 {
		t.Fatalf("LoadsCompiled memory columns parsed as %+v", l)
	}
	p := got[2]
	if p.BytesPerOp != nil || p.AllocsPerOp != nil || p.NsPerOp != 1042 {
		t.Fatalf("PathLinks (no -benchmem) parsed as %+v", p)
	}
}

func TestCompare(t *testing.T) {
	oldRes := []Result{
		{Name: "BenchmarkA", NsPerOp: 1000},
		{Name: "BenchmarkB", NsPerOp: 1000},
		{Name: "BenchmarkC", NsPerOp: 1000},
		{Name: "BenchmarkGone", NsPerOp: 50},
	}
	newRes := []Result{
		{Name: "BenchmarkA", NsPerOp: 1050}, // +5%: within 10% threshold
		{Name: "BenchmarkB", NsPerOp: 1200}, // +20%: regression
		{Name: "BenchmarkC", NsPerOp: 100},  // 10x faster
		{Name: "BenchmarkNew", NsPerOp: 75},
	}
	deltas, regressed := Compare(oldRes, newRes, 0.10)
	if !regressed {
		t.Fatal("20% slowdown not flagged as regression")
	}
	status := make(map[string]string, len(deltas))
	for _, d := range deltas {
		status[d.Name] = d.Status
	}
	want := map[string]string{
		"BenchmarkA":    "ok",
		"BenchmarkB":    "REGRESSED",
		"BenchmarkC":    "improved",
		"BenchmarkNew":  "added",
		"BenchmarkGone": "removed",
	}
	for name, st := range want {
		if status[name] != st {
			t.Errorf("%s classified %q, want %q", name, status[name], st)
		}
	}
	if len(deltas) != len(want) {
		t.Fatalf("got %d rows, want %d", len(deltas), len(want))
	}

	// Added/removed benchmarks alone must not fail the comparison.
	if _, reg := Compare(oldRes[:1], newRes[3:], 0.10); reg {
		t.Error("disjoint benchmark sets reported as regression")
	}
	// Exactly-at-threshold is not a regression (strict inequality).
	if _, reg := Compare(
		[]Result{{Name: "BenchmarkE", NsPerOp: 1000}},
		[]Result{{Name: "BenchmarkE", NsPerOp: 1100}}, 0.10); reg {
		t.Error("exactly +10% flagged as regression")
	}
}

func TestCompareBytesPerOp(t *testing.T) {
	b := func(v int64) *int64 { return &v }
	oldRes := []Result{
		{Name: "BenchmarkMem", NsPerOp: 1000, BytesPerOp: b(1000)},
		{Name: "BenchmarkMemOK", NsPerOp: 1000, BytesPerOp: b(1000)},
		{Name: "BenchmarkBoth", NsPerOp: 1000, BytesPerOp: b(1000)},
		{Name: "BenchmarkNoMem", NsPerOp: 1000},
	}
	newRes := []Result{
		// Flat ns/op with 50% more B/op: must be flagged on bytes alone.
		{Name: "BenchmarkMem", NsPerOp: 1000, BytesPerOp: b(1500)},
		// +5% bytes: within threshold.
		{Name: "BenchmarkMemOK", NsPerOp: 1000, BytesPerOp: b(1050)},
		// Both regress: ns/op status wins the label.
		{Name: "BenchmarkBoth", NsPerOp: 2000, BytesPerOp: b(2000)},
		// Bytes only on the new side: no bytes comparison possible.
		{Name: "BenchmarkNoMem", NsPerOp: 1000, BytesPerOp: b(999999)},
	}
	deltas, regressed := Compare(oldRes, newRes, 0.10)
	if !regressed {
		t.Fatal("50% B/op growth not flagged as regression")
	}
	status := make(map[string]string, len(deltas))
	for _, d := range deltas {
		status[d.Name] = d.Status
	}
	want := map[string]string{
		"BenchmarkMem":   "REGRESSED(bytes)",
		"BenchmarkMemOK": "ok",
		"BenchmarkBoth":  "REGRESSED",
		"BenchmarkNoMem": "ok",
	}
	for name, st := range want {
		if status[name] != st {
			t.Errorf("%s classified %q, want %q", name, status[name], st)
		}
	}
	// A bytes-only record pair without ns regression must still fail.
	if _, reg := Compare(
		[]Result{{Name: "BenchmarkOnly", NsPerOp: 100, BytesPerOp: b(100)}},
		[]Result{{Name: "BenchmarkOnly", NsPerOp: 100, BytesPerOp: b(200)}}, 0.10); !reg {
		t.Error("bytes-only regression not flagged")
	}
}

func TestCompareDirectionalMetrics(t *testing.T) {
	m := func(kv ...any) map[string]float64 {
		out := make(map[string]float64)
		for i := 0; i < len(kv); i += 2 {
			out[kv[i].(string)] = kv[i+1].(float64)
		}
		return out
	}
	oldRes := []Result{
		{Name: "BenchmarkQPSDrop", NsPerOp: 1000, Metrics: m("qps", 10000.0)},
		{Name: "BenchmarkQPSOK", NsPerOp: 1000, Metrics: m("qps", 10000.0)},
		{Name: "BenchmarkP99Climb", NsPerOp: 1000, Metrics: m("p99_ms", 2.0)},
		{Name: "BenchmarkP99OK", NsPerOp: 1000, Metrics: m("p99_ms", 2.0)},
		{Name: "BenchmarkPairs", NsPerOp: 1000, Metrics: m("pairs_per_sec", 50000.0)},
		{Name: "BenchmarkUngated", NsPerOp: 1000, Metrics: m("widgets", 100.0)},
		{Name: "BenchmarkNsWins", NsPerOp: 1000, Metrics: m("p99_ms", 2.0)},
	}
	newRes := []Result{
		// qps fell 30%: regression even though ns/op held.
		{Name: "BenchmarkQPSDrop", NsPerOp: 1000, Metrics: m("qps", 7000.0)},
		// qps fell 5%: within threshold.
		{Name: "BenchmarkQPSOK", NsPerOp: 1000, Metrics: m("qps", 9500.0)},
		// p99 doubled: regression (lower is better).
		{Name: "BenchmarkP99Climb", NsPerOp: 1000, Metrics: m("p99_ms", 4.0)},
		// p99 *improved* 2x: not a regression.
		{Name: "BenchmarkP99OK", NsPerOp: 1000, Metrics: m("p99_ms", 1.0)},
		// pairs_per_sec fell 40%: regression via the _per_sec suffix.
		{Name: "BenchmarkPairs", NsPerOp: 1000, Metrics: m("pairs_per_sec", 30000.0)},
		// unknown unit halves: ignored, no direction.
		{Name: "BenchmarkUngated", NsPerOp: 1000, Metrics: m("widgets", 50.0)},
		// ns/op regression takes precedence in the label.
		{Name: "BenchmarkNsWins", NsPerOp: 2000, Metrics: m("p99_ms", 4.0)},
	}
	deltas, regressed := Compare(oldRes, newRes, 0.10)
	if !regressed {
		t.Fatal("metric regressions not flagged")
	}
	status := make(map[string]string, len(deltas))
	for _, d := range deltas {
		status[d.Name] = d.Status
	}
	want := map[string]string{
		"BenchmarkQPSDrop":  "REGRESSED(qps)",
		"BenchmarkQPSOK":    "ok",
		"BenchmarkP99Climb": "REGRESSED(p99_ms)",
		"BenchmarkP99OK":    "ok",
		"BenchmarkPairs":    "REGRESSED(pairs_per_sec)",
		"BenchmarkUngated":  "ok",
		"BenchmarkNsWins":   "REGRESSED",
	}
	for name, st := range want {
		if status[name] != st {
			t.Errorf("%s classified %q, want %q", name, status[name], st)
		}
	}
	// Healthy records with directional metrics pass.
	if _, reg := Compare(
		[]Result{{Name: "BenchmarkOK", NsPerOp: 100, Metrics: m("qps", 1000.0, "p99_ms", 1.0)}},
		[]Result{{Name: "BenchmarkOK", NsPerOp: 100, Metrics: m("qps", 1050.0, "p99_ms", 0.95)}}, 0.10); reg {
		t.Error("healthy metrics flagged as regression")
	}
}

// TestCompareNotesAddedRemovedMetrics pins the drift notes: a custom
// metric present on only one side gets a one-line note instead of
// vanishing silently, and never fails the comparison by itself.
func TestCompareNotesAddedRemovedMetrics(t *testing.T) {
	oldRes := []Result{{Name: "BenchmarkDrift", NsPerOp: 1000,
		Metrics: map[string]float64{"qps": 10000.0, "old_only": 5.0}}}
	newRes := []Result{{Name: "BenchmarkDrift", NsPerOp: 1000,
		Metrics: map[string]float64{"qps": 10000.0, "new_only": 7.0}}}
	deltas, regressed := Compare(oldRes, newRes, 0.10)
	if regressed {
		t.Fatal("metric drift alone flagged as regression")
	}
	if len(deltas) != 1 {
		t.Fatalf("got %d deltas, want 1", len(deltas))
	}
	notes := strings.Join(deltas[0].MetricNotes, "; ")
	if !strings.Contains(notes, "new_only added") {
		t.Errorf("notes %q missing %q", notes, "new_only added")
	}
	if !strings.Contains(notes, "old_only removed") {
		t.Errorf("notes %q missing %q", notes, "old_only removed")
	}
}

func TestMetricDir(t *testing.T) {
	cases := map[string]int{
		"qps": 1, "pairs_per_sec": 1, "reqs/s": 1,
		"p50_ms": -1, "p99_ms": -1, "p99_us": -1, "lat_ns": -1,
		"maxload@Kmax": 0, "widgets": 0, "B/op": 0,
	}
	for unit, want := range cases {
		if got := metricDir(unit); got != want {
			t.Errorf("metricDir(%q) = %d, want %d", unit, got, want)
		}
	}
}
