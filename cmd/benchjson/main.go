// Command benchjson converts `go test -bench` text output into a JSON
// array, one object per benchmark result, including -benchmem columns
// and custom ReportMetric units. It reads stdin (or -in) and writes
// stdout (or -out), so the typical use is
//
//	go test -bench=. -benchmem | go run ./cmd/benchjson -out BENCH.json
//
// Non-benchmark lines (goos/pkg headers, PASS, ok) are skipped, which
// makes it safe to pipe a whole test run through.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	BytesPerOp *int64             `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64            `json:"allocs_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	in := flag.String("in", "", "benchmark text to parse (default stdin)")
	out := flag.String("out", "", "JSON destination (default stdout)")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	results, err := Parse(r)
	if err != nil {
		fatal(err)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fatal(err)
	}
}

// Parse extracts every benchmark result line from r. A result line is
//
//	BenchmarkName-8   100   12345 ns/op   67 B/op   8 allocs/op   1.5 widgets
//
// where the -8 GOMAXPROCS suffix, memory columns and custom metric
// pairs are all optional.
func Parse(r io.Reader) ([]Result, error) {
	var results []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || (len(fields)-2)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		res := Result{Name: name, Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad value %q in line %q", fields[i], line)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = val
			case "B/op":
				v := int64(val)
				res.BytesPerOp = &v
			case "allocs/op":
				v := int64(val)
				res.AllocsPerOp = &v
			default:
				if res.Metrics == nil {
					res.Metrics = make(map[string]float64)
				}
				res.Metrics[unit] = val
			}
		}
		results = append(results, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if results == nil {
		results = []Result{}
	}
	return results, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
