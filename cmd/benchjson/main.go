// Command benchjson converts `go test -bench` text output into a JSON
// array, one object per benchmark result, including -benchmem columns
// and custom ReportMetric units. It reads stdin (or -in) and writes
// stdout (or -out), so the typical use is
//
//	go test -bench=. -benchmem | go run ./cmd/benchjson -out BENCH.json
//
// Non-benchmark lines (goos/pkg headers, PASS, ok) are skipped, which
// makes it safe to pipe a whole test run through.
//
// With -compare it instead diffs two previously emitted JSON records:
//
//	go run ./cmd/benchjson -compare -old BENCH_flow.prev.json -new BENCH_flow.json
//
// printing a per-benchmark ns/op ratio table and exiting nonzero if
// any benchmark present in both records slowed down by more than
// -threshold (default 0.10, i.e. 10%).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	BytesPerOp *int64             `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64            `json:"allocs_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	in := flag.String("in", "", "benchmark text to parse (default stdin)")
	out := flag.String("out", "", "JSON destination (default stdout)")
	compare := flag.Bool("compare", false, "diff two JSON records instead of parsing text")
	oldPath := flag.String("old", "", "baseline JSON record (with -compare)")
	newPath := flag.String("new", "", "candidate JSON record (with -compare)")
	threshold := flag.Float64("threshold", 0.10, "ns/op regression fraction that fails the diff (with -compare)")
	flag.Parse()

	if *compare {
		if *oldPath == "" || *newPath == "" {
			fatal(fmt.Errorf("-compare needs both -old and -new"))
		}
		oldRes, err := loadRecord(*oldPath)
		if err != nil {
			fatal(err)
		}
		newRes, err := loadRecord(*newPath)
		if err != nil {
			fatal(err)
		}
		deltas, regressed := Compare(oldRes, newRes, *threshold)
		printDeltas(os.Stdout, deltas, *oldPath, *newPath)
		if regressed {
			fmt.Fprintf(os.Stderr, "benchjson: ns/op or bytes_per_op regression beyond %.0f%% detected\n", *threshold*100)
			os.Exit(1)
		}
		return
	}

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	results, err := Parse(r)
	if err != nil {
		fatal(err)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fatal(err)
	}
}

// Parse extracts every benchmark result line from r. A result line is
//
//	BenchmarkName-8   100   12345 ns/op   67 B/op   8 allocs/op   1.5 widgets
//
// where the -8 GOMAXPROCS suffix, memory columns and custom metric
// pairs are all optional.
func Parse(r io.Reader) ([]Result, error) {
	var results []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || (len(fields)-2)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		res := Result{Name: name, Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad value %q in line %q", fields[i], line)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = val
			case "B/op":
				v := int64(val)
				res.BytesPerOp = &v
			case "allocs/op":
				v := int64(val)
				res.AllocsPerOp = &v
			default:
				if res.Metrics == nil {
					res.Metrics = make(map[string]float64)
				}
				res.Metrics[unit] = val
			}
		}
		results = append(results, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if results == nil {
		results = []Result{}
	}
	return results, nil
}

// Delta is one benchmark's comparison row. Ratio is new/old ns/op;
// zero when the benchmark is missing from one side. The bytes fields
// mirror the ns ones for -benchmem's B/op column when both records
// carry it (allocation regressions hide inside flat ns/op numbers on
// allocation-bound paths, so -compare gates them separately). Custom
// metrics with a recognizable direction (qps up, p99_ms down) are
// gated too; MetricNotes lists each gated metric's change.
type Delta struct {
	Name        string
	OldNs       float64
	NewNs       float64
	Ratio       float64
	OldBytes    *int64
	NewBytes    *int64
	BytesRatio  float64
	MetricNotes []string
	Status      string // "ok", "REGRESSED", "REGRESSED(bytes)", "REGRESSED(<metric>)", "improved", "added", "removed"
}

// metricDir classifies a custom ReportMetric unit for gating: +1 when
// bigger is better (throughput), -1 when smaller is better (latency),
// 0 when the unit carries no recognizable direction and is ignored.
// The conventions match the units the repo's benchmarks emit: "qps",
// "*_per_sec" and "*/s" count rates; "*_ms"/"*_us"/"*_ns" (p50_ms,
// p99_ms, ...) are durations.
func metricDir(unit string) int {
	switch {
	case unit == "qps", strings.HasSuffix(unit, "_per_sec"), strings.HasSuffix(unit, "/s"):
		return 1
	case strings.HasSuffix(unit, "_ms"), strings.HasSuffix(unit, "_us"), strings.HasSuffix(unit, "_ns"):
		return -1
	}
	return 0
}

// Compare matches benchmarks by name and classifies each ns/op ratio
// against the regression threshold (a fraction: 0.10 flags slowdowns
// beyond +10%). bytes_per_op, when present on both sides, is gated by
// the same threshold: a benchmark whose speed held but whose B/op
// grew past it is flagged "REGRESSED(bytes)". Improvements use the
// mirrored ns bound. Benchmarks present on only one side are reported
// as added/removed and never fail the comparison; only REGRESSED rows
// set the second return.
func Compare(oldRes, newRes []Result, threshold float64) ([]Delta, bool) {
	oldBy := make(map[string]Result, len(oldRes))
	for _, r := range oldRes {
		oldBy[r.Name] = r
	}
	seen := make(map[string]bool, len(newRes))
	var deltas []Delta
	regressed := false
	for _, n := range newRes {
		seen[n.Name] = true
		o, ok := oldBy[n.Name]
		if !ok {
			deltas = append(deltas, Delta{Name: n.Name, NewNs: n.NsPerOp, NewBytes: n.BytesPerOp, Status: "added"})
			continue
		}
		d := Delta{Name: n.Name, OldNs: o.NsPerOp, NewNs: n.NsPerOp, OldBytes: o.BytesPerOp, NewBytes: n.BytesPerOp, Status: "ok"}
		if o.NsPerOp > 0 {
			d.Ratio = n.NsPerOp / o.NsPerOp
			switch {
			case d.Ratio > 1+threshold:
				d.Status = "REGRESSED"
				regressed = true
			case d.Ratio < 1-threshold:
				d.Status = "improved"
			}
		}
		if o.BytesPerOp != nil && n.BytesPerOp != nil && *o.BytesPerOp > 0 {
			d.BytesRatio = float64(*n.BytesPerOp) / float64(*o.BytesPerOp)
			if d.BytesRatio > 1+threshold {
				if d.Status != "REGRESSED" {
					d.Status = "REGRESSED(bytes)"
				}
				regressed = true
			}
		}
		// Directional custom metrics: a qps drop or a p99 climb past
		// the threshold fails the comparison even when ns/op held
		// (open-loop benchmarks have near-constant ns/op by design —
		// the schedule fixes it — so tails only show up here).
		for _, unit := range sortedUnits(n.Metrics) {
			ov, ok := o.Metrics[unit]
			if !ok {
				// A metric the baseline lacks can't be compared, but
				// staying silent about it hides instrumentation drift.
				d.MetricNotes = append(d.MetricNotes, unit+" added")
				continue
			}
			if ov <= 0 {
				continue
			}
			dir := metricDir(unit)
			if dir == 0 {
				continue
			}
			ratio := n.Metrics[unit] / ov
			d.MetricNotes = append(d.MetricNotes, fmt.Sprintf("%s %+.1f%%", unit, (ratio-1)*100))
			if (dir > 0 && ratio < 1-threshold) || (dir < 0 && ratio > 1+threshold) {
				if !strings.HasPrefix(d.Status, "REGRESSED") {
					d.Status = "REGRESSED(" + unit + ")"
				}
				regressed = true
			}
		}
		for _, unit := range sortedUnits(o.Metrics) {
			if _, ok := n.Metrics[unit]; !ok {
				d.MetricNotes = append(d.MetricNotes, unit+" removed")
			}
		}
		deltas = append(deltas, d)
	}
	for _, o := range oldRes {
		if !seen[o.Name] {
			deltas = append(deltas, Delta{Name: o.Name, OldNs: o.NsPerOp, OldBytes: o.BytesPerOp, Status: "removed"})
		}
	}
	return deltas, regressed
}

// sortedUnits returns the metric names in stable order so comparison
// output and the first-regression-wins status are deterministic.
func sortedUnits(m map[string]float64) []string {
	units := make([]string, 0, len(m))
	for u := range m {
		units = append(units, u)
	}
	sort.Strings(units)
	return units
}

func loadRecord(path string) ([]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var res []Result
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, fmt.Errorf("benchjson: %s: %w", path, err)
	}
	return res, nil
}

func printDeltas(w io.Writer, deltas []Delta, oldPath, newPath string) {
	fmt.Fprintf(w, "benchmark comparison: %s -> %s\n", oldPath, newPath)
	for _, d := range deltas {
		switch d.Status {
		case "added":
			fmt.Fprintf(w, "%-40s %14s %12.0f ns/op  added\n", d.Name, "-", d.NewNs)
		case "removed":
			fmt.Fprintf(w, "%-40s %14.0f %12s ns/op  removed\n", d.Name, d.OldNs, "-")
		default:
			fmt.Fprintf(w, "%-40s %14.0f %12.0f ns/op  %+6.1f%%", d.Name, d.OldNs, d.NewNs, (d.Ratio-1)*100)
			if d.BytesRatio > 0 {
				fmt.Fprintf(w, "  B/op %+6.1f%%", (d.BytesRatio-1)*100)
			}
			for _, note := range d.MetricNotes {
				fmt.Fprintf(w, "  %s", note)
			}
			fmt.Fprintf(w, "  %s\n", d.Status)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
