package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestRealMainFlagErrors(t *testing.T) {
	var out, errw bytes.Buffer
	if code := realMain([]string{"-dir", t.TempDir()}, &out, &errw); code != 2 {
		t.Errorf("no -fabric: exit %d, want 2", code)
	}
	if code := realMain([]string{"-fabric", "e:2;4,4;1,4"}, &out, &errw); code != 2 {
		t.Errorf("no -dir: exit %d, want 2", code)
	}
	if code := realMain([]string{"-dir", t.TempDir(), "-fabric", "bad"}, &out, &errw); code != 2 {
		t.Errorf("bad spec: exit %d, want 2", code)
	}
}

// startServer launches the built binary on an ephemeral port and
// returns its base URL and the running command.
func startServer(t *testing.T, bin, dir string, extra ...string) (string, *exec.Cmd) {
	t.Helper()
	cmd := exec.Command(bin, append([]string{
		"-dir", dir,
		"-addr", "127.0.0.1:0",
		"-fabric", "edge:2;4,4;1,4:d-mod-k:4",
		"-fabric", "pod:3;2,2,2;1,2,2:disjoint:2:7",
	}, extra...)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	addrCh := make(chan string, 1)
	go func() {
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "listening on "); ok {
				addrCh <- rest
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return "http://" + addr, cmd
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		t.Fatal("server did not print its address within 10s")
		return "", nil
	}
}

func fabricChecksum(t *testing.T, base, name string) (string, uint64) {
	t.Helper()
	var st struct {
		Checksum string `json:"checksum"`
		Gen      uint64 `json:"gen"`
	}
	resp, err := http.Get(base + "/fabrics/" + name + "/state")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st.Checksum, st.Gen
}

// TestPprofAndManifest boots the real binary with -pprof on a second
// ephemeral port and checks the three contract points: the profiler
// answers on its own listener, the query listener does NOT expose
// /debug/pprof/, and manifest.json in -dir stamps the flag values.
func TestPprofAndManifest(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes; skipped under -short")
	}
	bin := filepath.Join(t.TempDir(), "xgftserve")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	dir := t.TempDir()
	cmd := exec.Command(bin,
		"-dir", dir,
		"-addr", "127.0.0.1:0",
		"-pprof", "127.0.0.1:0",
		"-fabric", "edge:2;4,4;1,4:d-mod-k:4",
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Signal(syscall.SIGTERM)
		cmd.Wait()
	}()
	addrCh, pprofCh := make(chan string, 1), make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if rest, ok := strings.CutPrefix(sc.Text(), "listening on "); ok {
				addrCh <- rest
			} else if rest, ok := strings.CutPrefix(sc.Text(), "pprof on "); ok {
				pprofCh <- rest
			}
		}
	}()
	var addr, paddr string
	for addr == "" || paddr == "" {
		select {
		case addr = <-addrCh:
		case paddr = <-pprofCh:
		case <-time.After(10 * time.Second):
			t.Fatal("server did not print both addresses within 10s")
		}
	}

	resp, err := http.Get("http://" + paddr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("pprof listener: %d", resp.StatusCode)
	}
	resp, err = http.Get("http://" + addr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("query listener exposes pprof: %d, want 404", resp.StatusCode)
	}

	// The manifest is written right after the listeners come up.
	deadline := time.Now().Add(5 * time.Second)
	for {
		data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
		if err == nil {
			var man struct {
				Tool  string            `json:"tool"`
				Flags map[string]string `json:"flags"`
			}
			if err := json.Unmarshal(data, &man); err != nil {
				t.Fatalf("manifest: %v\n%s", err, data)
			}
			if man.Tool != "xgftserve" {
				t.Errorf("manifest tool %q", man.Tool)
			}
			if man.Flags["pprof"] != "127.0.0.1:0" {
				t.Errorf("manifest pprof flag %q", man.Flags["pprof"])
			}
			if man.Flags["dir"] != dir {
				t.Errorf("manifest dir flag %q", man.Flags["dir"])
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("manifest.json never appeared")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestKillDashNineRecovery is the crash-recovery acceptance run: boot
// the real binary, inject faults, SIGKILL it mid-flight, restart on
// the same journal directory and require the replayed table checksums
// to match what the first process was serving.
func TestKillDashNineRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes; skipped under -short")
	}
	bin := filepath.Join(t.TempDir(), "xgftserve")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	dir := t.TempDir()

	base, cmd := startServer(t, bin, dir)
	faults := []map[string]any{
		{"op": "fail", "kind": "cable", "node": 2, "port": 0},
		{"op": "fail", "kind": "switch", "node": 17},
		{"op": "fail", "kind": "link", "link": 33},
		{"op": "heal", "kind": "cable", "node": 2, "port": 0},
	}
	for _, f := range faults {
		body, _ := json.Marshal(f)
		resp, err := http.Post(base+"/fabrics/edge/faults", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 202 {
			t.Fatalf("fault %v: %d", f, resp.StatusCode)
		}
	}
	// Wait until the worker applied everything (staleness 0).
	deadline := time.Now().Add(10 * time.Second)
	var sum string
	var gen uint64
	for {
		sum, gen = fabricChecksum(t, base, "edge")
		if gen == uint64(len(faults)) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never caught up: gen %d", gen)
		}
		time.Sleep(10 * time.Millisecond)
	}
	podSum, _ := fabricChecksum(t, base, "pod")

	// kill -9: no graceful close, no journal seal. Only the per-event
	// fsync protects the history.
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	base2, cmd2 := startServer(t, bin, dir)
	defer func() {
		cmd2.Process.Signal(syscall.SIGTERM)
		cmd2.Wait()
	}()
	sum2, gen2 := fabricChecksum(t, base2, "edge")
	if gen2 != gen {
		t.Errorf("replayed gen %d, want %d", gen2, gen)
	}
	if sum2 != sum {
		t.Errorf("replayed edge checksum %s, want %s", sum2, sum)
	}
	if podSum2, _ := fabricChecksum(t, base2, "pod"); podSum2 != podSum {
		t.Errorf("replayed pod checksum %s, want %s", podSum2, podSum)
	}
	// The restarted server keeps accepting events on the replayed
	// sequence: heal everything and verify it converges to healthy.
	heals := []map[string]any{
		{"op": "heal", "kind": "switch", "node": 17},
		{"op": "heal", "kind": "link", "link": 33},
	}
	for _, f := range heals {
		body, _ := json.Marshal(f)
		resp, err := http.Post(base2+"/fabrics/edge/faults", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 202 {
			t.Fatalf("heal %v: %d", f, resp.StatusCode)
		}
	}
	deadline = time.Now().Add(10 * time.Second)
	for {
		var hz struct {
			Fabrics map[string]struct {
				Staleness uint64 `json:"staleness"`
				Degraded  bool   `json:"degraded"`
			} `json:"fabrics"`
		}
		resp, err := http.Get(base2 + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		json.NewDecoder(resp.Body).Decode(&hz)
		resp.Body.Close()
		if f := hz.Fabrics["edge"]; f.Staleness == 0 && !f.Degraded {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("restarted server never settled after heals")
		}
		time.Sleep(10 * time.Millisecond)
	}
	var st struct {
		Unreachable int    `json:"unreachable"`
		Gen         uint64 `json:"gen"`
	}
	resp, err := http.Get(base2 + "/fabrics/edge/state")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if st.Unreachable != 0 {
		t.Errorf("after healing all faults: %d unreachable pairs", st.Unreachable)
	}
	if want := uint64(len(faults) + len(heals)); st.Gen != want {
		t.Errorf("gen %d, want %d (sequence continues across restart)", st.Gen, want)
	}
}
