// Command xgftserve is the long-running routing control plane: it
// compiles routing tables for one or more named fabrics, serves path /
// LID / max-load queries over HTTP, and ingests live fault and repair
// events that are journaled, delta-repaired and applied as atomic
// table swaps. Restarts replay the write-ahead fault journal, so a
// killed server converges back to the degraded state it was serving.
//
// Usage:
//
//	xgftserve -dir /var/lib/xgft -fabric "edge:2;4,4;1,4:d-mod-k:4" \
//	          -fabric "pod:3;2,2,2;1,2,2:disjoint:2" -addr :8080
//
// Endpoints: GET /fabrics, /fabrics/{name}/path?src=&dst=,
// /fabrics/{name}/lid?dst=, /fabrics/{name}/maxload?pattern=,
// /fabrics/{name}/state; POST /fabrics/{name}/faults; GET /healthz,
// /readyz, /metrics. The bound address is printed as "listening on
// ADDR" once the listener is up (useful with -addr 127.0.0.1:0).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"time"

	"xgftsim/internal/cliutil"
	"xgftsim/internal/serve"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// fabricList collects repeated -fabric flags.
type fabricList []string

func (f *fabricList) String() string { return strings.Join(*f, " ") }
func (f *fabricList) Set(s string) error {
	*f = append(*f, s)
	return nil
}

func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("xgftserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var fabrics fabricList
	fs.Var(&fabrics, "fabric", `fabric spec NAME:XGFT[:SCHEME[:K[:SEED]]] (repeatable), e.g. "edge:2;4,4;1,4:d-mod-k:4"`)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (use port 0 for an ephemeral port)")
	dir := fs.String("dir", "", "journal directory (required; created if missing)")
	queue := fs.Int("queue", 1024, "per-fabric bounded event queue size (full queue answers 429)")
	repairTimeout := fs.Duration("repair-timeout", 30*time.Second, "per-rebuild time budget before the fabric is marked degraded")
	wedgeAfter := fs.Duration("wedge-after", 10*time.Second, "repair lag past which /readyz reports the fabric wedged")
	budget := fs.Int64("table-budget", 1<<30, "compiled-table byte budget per fabric (bigger fabrics serve lazily)")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this separate address (off when empty; never on the query listener)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	usage := func(err error) int {
		fmt.Fprintln(stderr, "xgftserve:", err)
		fs.Usage()
		return 2
	}
	if len(fabrics) == 0 {
		return usage(fmt.Errorf("need at least one -fabric"))
	}
	if *dir == "" {
		return usage(fmt.Errorf("need -dir for the fault journals"))
	}
	specs := make([]serve.FabricSpec, 0, len(fabrics))
	for _, raw := range fabrics {
		spec, err := serve.ParseFabricSpec(raw)
		if err != nil {
			return usage(err)
		}
		specs = append(specs, spec)
	}

	srv, err := serve.New(serve.Config{
		Fabrics:       specs,
		Dir:           *dir,
		QueueSize:     *queue,
		RepairTimeout: *repairTimeout,
		WedgeAfter:    *wedgeAfter,
		TableBudget:   *budget,
	})
	if err != nil {
		fmt.Fprintln(stderr, "xgftserve:", err)
		return 1
	}
	defer srv.Close()

	ctx, stop := cliutil.WithInterrupt(context.Background())
	defer stop()
	srv.Start(ctx)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "xgftserve:", err)
		return 1
	}
	fmt.Fprintf(stdout, "listening on %s\n", ln.Addr())

	// Profiling stays on its own listener so it can bind a loopback
	// or firewalled port while the query API is exposed; empty -pprof
	// (the default) never registers the handlers anywhere.
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fmt.Fprintln(stderr, "xgftserve: pprof:", err)
			return 1
		}
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		fmt.Fprintf(stdout, "pprof on %s\n", pln.Addr())
		go func() {
			ps := &http.Server{Handler: pmux}
			ps.Serve(pln)
		}()
	}

	// The journal directory is self-describing: a manifest stamps the
	// exact flag values (including whether pprof was exposed) of the
	// serving run. Best effort — serving proceeds if the write fails.
	man := cliutil.NewManifest("xgftserve")
	man.Flags = cliutil.FlagValues(fs)
	if err := man.WriteFile(*dir); err != nil {
		fmt.Fprintln(stderr, "xgftserve: manifest:", err)
	}
	for _, spec := range specs {
		f := srv.Fabric(spec.Name)
		fmt.Fprintf(stdout, "fabric %s: %s %s K=%d seed=%d mode=%s gen=%d\n",
			spec.Name, spec.XGFT, spec.Scheme, spec.K, spec.Seed, f.Mode(), f.Gen())
	}

	hs := &http.Server{Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	select {
	case <-ctx.Done():
		// Graceful drain: stop accepting, finish in-flight requests.
		// The journal is already durable — anything accepted survives.
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(shutCtx)
		fmt.Fprintln(stdout, "interrupted: journals sealed, shutting down")
		return 0
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(stderr, "xgftserve:", err)
			return 1
		}
		return 0
	}
}
