// Command xgftpaper regenerates the tables and figures of "Limited
// Multi-path Routing on Extended Generalized Fat-trees" (IPDPS
// Workshops 2012): the four Figure 4 panels (flow-level average
// maximum link load vs K), Table 1 (flit-level saturation throughput),
// Figure 5 (message delay vs offered load), the Theorem 1/2
// verifications and the ablations documented in DESIGN.md.
//
// Usage:
//
//	xgftpaper -exp all -scale quick -out results/
//	xgftpaper -exp fig4a,table1 -scale full
//
// Each experiment prints an aligned text table and, when -out is set,
// writes a CSV with the same data.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"strings"
	"time"

	"xgftsim/internal/adversary"
	"xgftsim/internal/experiments"
	"xgftsim/internal/topology"
)

var order = []string{
	"fig4a", "fig4b", "fig4c", "fig4d",
	"table1", "fig5", "failures",
	"thm1", "thm2",
	"tier", "lid", "diversity", "workload",
	"adaptive", "alltoall", "worstcase", "model", "crossover", "buffers", "vcs",
}

func main() {
	exp := flag.String("exp", "all", "comma-separated experiments: "+strings.Join(order, ",")+" or all")
	scaleName := flag.String("scale", "quick", "quick (seconds per experiment) or full (the paper's protocol)")
	out := flag.String("out", "", "directory for CSV output (created if missing)")
	seed := flag.Int64("seed", 2012, "base seed for sampled workloads")
	flitSeeds := flag.Int("flit-seeds", 0, "override the scale's flit-level workload seed count")
	workers := flag.Int("workers", 0, "max concurrent experiment cells (0 = GOMAXPROCS)")
	flag.Parse()

	scale, err := experiments.ScaleByName(*scaleName)
	if err != nil {
		fatal(err)
	}
	if *flitSeeds > 0 {
		scale.FlitSeeds = *flitSeeds
	}
	scale.Workers = *workers
	var selected []string
	if *exp == "all" {
		selected = order
	} else {
		for _, name := range strings.Split(*exp, ",") {
			name = strings.TrimSpace(name)
			if !contains(order, name) {
				fatal(fmt.Errorf("unknown experiment %q (want %s or all)", name, strings.Join(order, ",")))
			}
			selected = append(selected, name)
		}
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
	}
	var runnerLog *os.File
	if *out != "" {
		f, err := os.OpenFile(filepath.Join(*out, "runner.log"), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		runnerLog = f
	}
	for _, name := range selected {
		start := time.Now()
		tbl, perr := runCaptured(name, scale, *seed)
		if perr != nil {
			if runnerLog != nil {
				fmt.Fprintf(runnerLog, "%s exp=%s scale=%s seed=%d PANIC: %v\n",
					time.Now().Format(time.RFC3339), name, scale.Name, *seed, perr)
			}
			fatal(perr)
		}
		elapsed := time.Since(start).Seconds()
		tbl.Render(os.Stdout)
		fmt.Printf("  [%s, scale=%s, %.1fs]\n\n", name, scale.Name, elapsed)
		if runnerLog != nil {
			fmt.Fprintf(runnerLog, "%s exp=%s scale=%s workers=%d seed=%d wall=%.1fs\n",
				time.Now().Format(time.RFC3339), name, scale.Name, scale.Workers, *seed, elapsed)
		}
		if *out != "" {
			path := filepath.Join(*out, name+".csv")
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := tbl.WriteCSV(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("  wrote %s\n\n", path)
		}
	}
}

// runCaptured converts a panicking experiment into an error carrying
// the failing cell's coordinates and stack, so a crashed sweep leaves
// a diagnosable trail in runner.log instead of a bare crash.
func runCaptured(name string, scale experiments.Scale, seed int64) (tbl *experiments.Table, err error) {
	defer func() {
		if p := recover(); p != nil {
			if cp, ok := p.(*experiments.CellPanic); ok {
				err = fmt.Errorf("experiment %s: %w", name, cp)
			} else {
				err = fmt.Errorf("experiment %s panicked: %v\n%s", name, p, debug.Stack())
			}
		}
	}()
	return run(name, scale, seed), nil
}

func run(name string, scale experiments.Scale, seed int64) *experiments.Table {
	switch name {
	case "fig4a", "fig4b", "fig4c", "fig4d":
		t, err := experiments.Fig4Panel(name[len(name)-1:])
		if err != nil {
			fatal(err)
		}
		return experiments.Fig4(t, scale, seed)
	case "table1":
		return experiments.Table1(scale)
	case "fig5":
		return experiments.Fig5(scale)
	case "failures":
		return experiments.Failures(scale, seed)
	case "thm1":
		return experiments.Theorem1(scale, seed)
	case "thm2":
		return experiments.Theorem2()
	case "tier":
		return experiments.TierBalance(scale, 4, seed)
	case "lid":
		return experiments.LIDBudget()
	case "diversity":
		return experiments.EffectiveDiversity(4)
	case "workload":
		return experiments.WorkloadSensitivity(scale)
	case "adaptive":
		return experiments.AdaptiveComparison(scale)
	case "model":
		return experiments.ModelValidation(scale)
	case "crossover":
		return experiments.DelayCrossover(scale)
	case "buffers":
		return experiments.BufferDepth(scale)
	case "vcs":
		return experiments.VirtualChannelDepth(scale)
	case "alltoall":
		t, err := topology.FromPaper(topology.Paper8Port3Tree)
		if err != nil {
			fatal(err)
		}
		return experiments.AllToAllShift(t, []int{1, 2, 4, 8, 16})
	case "worstcase":
		t, err := topology.FromPaper(topology.Paper8Port2Tree)
		if err != nil {
			fatal(err)
		}
		steps := 1500
		if scale.Name == "full" || scale.Name == "paper" {
			steps = 4000
		}
		return experiments.WorstCaseSearch(t, []int{1, 2, 4}, adversary.Config{Steps: steps, Restarts: 3, Seed: seed})
	}
	fatal(fmt.Errorf("unknown experiment %q", name))
	return nil
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xgftpaper:", err)
	os.Exit(1)
}
