// Command xgftpaper regenerates the tables and figures of "Limited
// Multi-path Routing on Extended Generalized Fat-trees" (IPDPS
// Workshops 2012): the four Figure 4 panels (flow-level average
// maximum link load vs K), Table 1 (flit-level saturation throughput),
// Figure 5 (message delay vs offered load), the Theorem 1/2
// verifications and the ablations documented in DESIGN.md.
//
// Usage:
//
//	xgftpaper -exp all -scale quick -out results/
//	xgftpaper -exp fig4a,table1 -scale full
//
// Each experiment prints an aligned text table and, when -out is set,
// writes a CSV with the same data. With -out the run also writes a
// manifest.json recording the tool version, flags, seeds, workers, and
// each experiment's wall-clock and metrics snapshot, so a results
// directory says exactly what produced it.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/debug"
	"strings"
	"time"

	"xgftsim/internal/adversary"
	"xgftsim/internal/cliutil"
	"xgftsim/internal/experiments"
	"xgftsim/internal/loadgen"
	"xgftsim/internal/obs"
	"xgftsim/internal/serve/churn"
	"xgftsim/internal/topology"
)

var order = []string{
	"fig4a", "fig4b", "fig4c", "fig4d",
	"table1", "fig5", "failures",
	"thm1", "thm2",
	"tier", "lid", "diversity", "workload",
	"adaptive", "alltoall", "worstcase", "model", "crossover", "buffers", "vcs",
	"adaptivek", "churnsoak", "servebench", "mega",
}

// aliases expand shorthand experiment names; members must be in order.
var aliases = map[string][]string{
	"fig4": {"fig4a", "fig4b", "fig4c", "fig4d"},
}

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// realMain is main with injectable arguments and streams, so the flag
// validation, experiment selection and manifest behavior are testable
// in-process. It returns the process exit status: 0 on success, 1 on a
// runtime failure, 2 on a usage error.
func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("xgftpaper", flag.ContinueOnError)
	fs.SetOutput(stderr)
	exp := fs.String("exp", "all", "comma-separated experiments: "+strings.Join(order, ",")+", fig4 (=fig4a-d) or all")
	scaleName := fs.String("scale", "quick", "quick (seconds per experiment) or full (the paper's protocol)")
	out := fs.String("out", "", "directory for CSV output and manifest.json (created if missing)")
	seed := fs.Int64("seed", 2012, "base seed for sampled workloads")
	flitSeeds := fs.Int("flit-seeds", 0, "override the scale's flit-level workload seed count (0 = scale default)")
	workers := fs.Int("workers", 0, "max concurrent experiment cells (0 = GOMAXPROCS)")
	tf := cliutil.AddTableFlags(fs)
	prof := cliutil.AddProfileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	usage := func(err error) int {
		fmt.Fprintln(stderr, "xgftpaper:", err)
		fs.Usage()
		return 2
	}
	if *workers < 0 {
		return usage(fmt.Errorf("-workers %d is invalid: want 0 (= GOMAXPROCS) or a positive cell bound", *workers))
	}
	if *flitSeeds < 0 {
		return usage(fmt.Errorf("-flit-seeds %d is invalid: want 0 (= scale default) or a positive seed count", *flitSeeds))
	}
	scale, err := experiments.ScaleByName(*scaleName)
	if err != nil {
		return usage(err)
	}
	if *flitSeeds > 0 {
		scale.FlitSeeds = *flitSeeds
	}
	scale.Workers = *workers

	// The first SIGINT/SIGTERM cancels the sweep between cells: the run
	// unwinds, seals the manifest with exit_status "interrupted" and
	// exits 130. stop() restores the default disposition once the
	// context fires, so a second signal kills the process immediately.
	ctx, stop := cliutil.WithInterrupt(context.Background())
	defer stop()
	scale.Ctx = ctx
	selected, err := selectExperiments(*exp)
	if err != nil {
		return usage(err)
	}

	if err := prof.Start(); err != nil {
		fmt.Fprintln(stderr, "xgftpaper:", err)
		return 1
	}
	defer prof.Stop()

	var man *cliutil.Manifest
	var runnerLog *os.File
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(stderr, "xgftpaper:", err)
			return 1
		}
		f, err := os.OpenFile(filepath.Join(*out, "runner.log"), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintln(stderr, "xgftpaper:", err)
			return 1
		}
		defer f.Close()
		runnerLog = f
		man = cliutil.NewManifest("xgftpaper")
		man.Flags = cliutil.FlagValues(fs)
		man.Scale = scale.Name
		man.Seed = *seed
		man.Workers = scale.Workers
		tf.Stamp(man)
	}
	// finish seals and writes the manifest on every exit path, so even a
	// crashed sweep leaves a record of what ran and what failed.
	finish := func(status int, err error) int {
		if man != nil {
			man.Finish(status, err)
			if werr := man.WriteFile(*out); werr != nil {
				fmt.Fprintln(stderr, "xgftpaper:", werr)
				if status == 0 {
					status = 1
				}
			}
		}
		if err != nil {
			fmt.Fprintln(stderr, "xgftpaper:", err)
		}
		return status
	}

	reg := obs.Default()
	for _, name := range selected {
		if ctx.Err() != nil {
			return finish(130, fmt.Errorf("%w before experiment %s", cliutil.ErrInterrupted, name))
		}
		before := reg.Snapshot()
		start := time.Now()
		tbl, perr := runCaptured(name, scale, *seed, tf.Options())
		elapsed := time.Since(start).Seconds()
		if errors.Is(perr, experiments.ErrInterrupted) {
			if man != nil {
				man.Experiments = append(man.Experiments, cliutil.ExperimentRecord{
					Name: name, WallSeconds: elapsed, Metrics: reg.Delta(before),
				})
			}
			return finish(130, fmt.Errorf("%w during experiment %s", cliutil.ErrInterrupted, name))
		}
		if perr != nil {
			if runnerLog != nil {
				fmt.Fprintf(runnerLog, "%s exp=%s scale=%s seed=%d PANIC: %v\n",
					time.Now().Format(time.RFC3339), name, scale.Name, *seed, perr)
			}
			if man != nil {
				man.Experiments = append(man.Experiments, cliutil.ExperimentRecord{
					Name: name, WallSeconds: elapsed, Metrics: reg.Delta(before),
				})
			}
			return finish(1, perr)
		}
		tbl.Render(stdout)
		fmt.Fprintf(stdout, "  [%s, scale=%s, %.1fs]\n\n", name, scale.Name, elapsed)
		if runnerLog != nil {
			fmt.Fprintf(runnerLog, "%s exp=%s scale=%s workers=%d seed=%d wall=%.1fs\n",
				time.Now().Format(time.RFC3339), name, scale.Name, scale.Workers, *seed, elapsed)
		}
		rec := cliutil.ExperimentRecord{Name: name, WallSeconds: elapsed}
		if *out != "" {
			path := filepath.Join(*out, name+".csv")
			f, err := os.Create(path)
			if err != nil {
				return finish(1, err)
			}
			if err := tbl.WriteCSV(f); err != nil {
				f.Close()
				return finish(1, err)
			}
			if err := f.Close(); err != nil {
				return finish(1, err)
			}
			fmt.Fprintf(stdout, "  wrote %s\n\n", path)
			rec.CSV = name + ".csv"
		}
		if man != nil {
			rec.Metrics = reg.Delta(before)
			man.Experiments = append(man.Experiments, rec)
		}
	}
	if err := prof.Stop(); err != nil {
		return finish(1, err)
	}
	return finish(0, nil)
}

// selectExperiments parses the -exp list: "all" selects everything,
// aliases expand (fig4 = the four panels), and duplicates — whether
// re-listed literally or introduced by an alias — are dropped while
// preserving first-occurrence order, so no experiment runs (and
// overwrites its CSVs) twice in one invocation.
func selectExperiments(exp string) ([]string, error) {
	if strings.TrimSpace(exp) == "all" {
		return order, nil
	}
	var selected []string
	seen := make(map[string]bool)
	add := func(name string) {
		if !seen[name] {
			seen[name] = true
			selected = append(selected, name)
		}
	}
	for _, name := range strings.Split(exp, ",") {
		name = strings.TrimSpace(name)
		if expansion, ok := aliases[name]; ok {
			for _, n := range expansion {
				add(n)
			}
			continue
		}
		if !contains(order, name) {
			return nil, fmt.Errorf("unknown experiment %q (want %s, fig4 or all)", name, strings.Join(order, ","))
		}
		add(name)
	}
	if len(selected) == 0 {
		return nil, fmt.Errorf("empty -exp selection")
	}
	return selected, nil
}

// runCaptured converts a panicking experiment into an error carrying
// the failing cell's coordinates and stack, so a crashed sweep leaves
// a diagnosable trail in runner.log instead of a bare crash.
func runCaptured(name string, scale experiments.Scale, seed int64, topt experiments.TableOptions) (tbl *experiments.Table, err error) {
	defer func() {
		if p := recover(); p != nil {
			if cp, ok := p.(*experiments.CellPanic); ok {
				err = fmt.Errorf("experiment %s: %w", name, cp)
			} else {
				err = fmt.Errorf("experiment %s panicked: %v\n%s", name, p, debug.Stack())
			}
		}
	}()
	return run(name, scale, seed, topt)
}

func run(name string, scale experiments.Scale, seed int64, topt experiments.TableOptions) (*experiments.Table, error) {
	switch name {
	case "fig4a", "fig4b", "fig4c", "fig4d":
		t, err := experiments.Fig4Panel(name[len(name)-1:])
		if err != nil {
			return nil, err
		}
		return experiments.Fig4(t, scale, seed), nil
	case "table1":
		return experiments.Table1(scale), nil
	case "fig5":
		return experiments.Fig5(scale), nil
	case "failures":
		return experiments.Failures(scale, seed), nil
	case "thm1":
		return experiments.Theorem1(scale, seed), nil
	case "thm2":
		return experiments.Theorem2(), nil
	case "tier":
		return experiments.TierBalance(scale, 4, seed), nil
	case "lid":
		return experiments.LIDBudget(), nil
	case "diversity":
		return experiments.EffectiveDiversity(4), nil
	case "workload":
		return experiments.WorkloadSensitivity(scale), nil
	case "adaptive":
		return experiments.AdaptiveComparison(scale), nil
	case "model":
		return experiments.ModelValidation(scale), nil
	case "crossover":
		return experiments.DelayCrossover(scale), nil
	case "buffers":
		return experiments.BufferDepth(scale), nil
	case "vcs":
		return experiments.VirtualChannelDepth(scale), nil
	case "adaptivek":
		return experiments.AdaptiveK(scale), nil
	case "churnsoak":
		return churn.Soak(scale, seed)
	case "servebench":
		return loadgen.ServeBench(scale, seed)
	case "mega":
		return experiments.Mega(scale, seed, topt)
	case "alltoall":
		t, err := topology.FromPaper(topology.Paper8Port3Tree)
		if err != nil {
			return nil, err
		}
		return experiments.AllToAllShift(t, []int{1, 2, 4, 8, 16}), nil
	case "worstcase":
		t, err := topology.FromPaper(topology.Paper8Port2Tree)
		if err != nil {
			return nil, err
		}
		steps := 1500
		if scale.Name == "full" || scale.Name == "paper" {
			steps = 4000
		}
		return experiments.WorstCaseSearch(t, []int{1, 2, 4}, adversary.Config{Steps: steps, Restarts: 3, Seed: seed}), nil
	}
	return nil, fmt.Errorf("unknown experiment %q", name)
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
