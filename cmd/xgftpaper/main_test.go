package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"xgftsim/internal/cliutil"
)

func TestSelectExperiments(t *testing.T) {
	cases := []struct {
		exp     string
		want    []string
		wantErr string
	}{
		{exp: "all", want: order},
		{exp: "thm2", want: []string{"thm2"}},
		{exp: "fig4a, table1", want: []string{"fig4a", "table1"}},
		// Duplicates — literal or alias-introduced — run once, in
		// first-occurrence order, so CSVs are not overwritten mid-run.
		{exp: "fig4a,fig4a", want: []string{"fig4a"}},
		{exp: "table1,fig4a,table1,thm2,fig4a", want: []string{"table1", "fig4a", "thm2"}},
		{exp: "fig4", want: []string{"fig4a", "fig4b", "fig4c", "fig4d"}},
		{exp: "fig4,fig4", want: []string{"fig4a", "fig4b", "fig4c", "fig4d"}},
		{exp: "fig4b,fig4", want: []string{"fig4b", "fig4a", "fig4c", "fig4d"}},
		{exp: "nope", wantErr: "unknown experiment"},
		{exp: "", wantErr: "unknown experiment"},
	}
	for _, c := range cases {
		got, err := selectExperiments(c.exp)
		if c.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("selectExperiments(%q) err = %v, want %q", c.exp, err, c.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("selectExperiments(%q): %v", c.exp, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("selectExperiments(%q) = %v, want %v", c.exp, got, c.want)
		}
	}
}

func TestNegativeWorkersRejected(t *testing.T) {
	var out, errb bytes.Buffer
	if code := realMain([]string{"-workers", "-1", "-exp", "thm2"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2 (usage error); stderr:\n%s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "-workers -1 is invalid") {
		t.Fatalf("stderr missing workers diagnosis:\n%s", errb.String())
	}
}

func TestNegativeFlitSeedsRejected(t *testing.T) {
	var out, errb bytes.Buffer
	if code := realMain([]string{"-flit-seeds", "-3", "-exp", "thm2"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2 (usage error); stderr:\n%s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "-flit-seeds -3 is invalid") {
		t.Fatalf("stderr missing flit-seeds diagnosis:\n%s", errb.String())
	}
}

func TestUnknownExperimentRejected(t *testing.T) {
	var out, errb bytes.Buffer
	if code := realMain([]string{"-exp", "fig9"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2; stderr:\n%s", code, errb.String())
	}
}

// TestManifestSmoke runs one fast experiment end to end in-process and
// checks the manifest golden properties: identity, seeds, workers, the
// per-experiment record with its wall-clock, CSV and metric delta, and
// a final registry snapshot carrying the flow/flit/experiments
// counters.
func TestManifestSmoke(t *testing.T) {
	dir := t.TempDir()
	var out, errb bytes.Buffer
	code := realMain([]string{"-exp", "thm2", "-scale", "quick", "-seed", "7", "-workers", "2", "-out", dir}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatalf("manifest not written: %v", err)
	}
	var m cliutil.Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("manifest not valid JSON: %v\n%s", err, data)
	}
	if m.Tool != "xgftpaper" || m.Scale != "quick" || m.Seed != 7 || m.Workers != 2 {
		t.Fatalf("manifest identity: %+v", m)
	}
	if m.ExitCode != 0 || m.ExitStatus != "ok" || m.Error != "" {
		t.Fatalf("manifest status: %+v", m)
	}
	if m.Flags["exp"] != "thm2" || m.Flags["flit-seeds"] != "0" {
		t.Fatalf("manifest flags: %v", m.Flags)
	}
	if len(m.Experiments) != 1 {
		t.Fatalf("experiments: %+v", m.Experiments)
	}
	rec := m.Experiments[0]
	if rec.Name != "thm2" || rec.CSV != "thm2.csv" || rec.WallSeconds < 0 {
		t.Fatalf("experiment record: %+v", rec)
	}
	if rec.Metrics == nil {
		t.Fatal("experiment record has no metrics delta")
	}
	for _, name := range []string{
		"flow.pairs_evaluated", "flit.cycles",
		"experiments.cells_done", "experiments.cell_seconds",
	} {
		if _, ok := m.Metrics[name]; !ok {
			t.Errorf("final metrics snapshot missing %q", name)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "thm2.csv")); err != nil {
		t.Fatalf("CSV not written: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "runner.log")); err != nil {
		t.Fatalf("runner.log not written: %v", err)
	}
}

// TestManifestWrittenOnFailure checks the exit-status contract: a run
// that dies mid-sweep still seals a manifest recording the failure.
func TestManifestWrittenOnFailure(t *testing.T) {
	// No public hook forces an experiment panic cheaply, so exercise the
	// CSV-create failure path instead: the output directory vanishes
	// between MkdirAll and the CSV write... simpler: make `out` a path
	// whose CSV creation fails because a directory with the CSV's name
	// exists.
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "thm2.csv"), 0o755); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	code := realMain([]string{"-exp", "thm2", "-out", dir}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr:\n%s", code, errb.String())
	}
	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatalf("failure manifest not written: %v", err)
	}
	var m cliutil.Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if m.ExitCode != 1 || m.Error == "" {
		t.Fatalf("failure not recorded: status=%d error=%q", m.ExitCode, m.Error)
	}
}
