// Command xgftinfo inspects extended generalized fat-trees: node and
// link counts, the paper's tuple labels, and the shortest paths a
// routing scheme selects for a source-destination pair.
//
// Usage:
//
//	xgftinfo -xgft "3;4,4,8;1,4,4"            # topology summary
//	xgftinfo -mport 8 -ntree 3                # same tree by variant name
//	xgftinfo -xgft "3;4,4,4;1,4,2" -src 0 -dst 63 -scheme disjoint -k 4
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"xgftsim/internal/cliutil"
	"xgftsim/internal/core"
	"xgftsim/internal/lid"
	"xgftsim/internal/topology"
)

func main() {
	spec := flag.String("xgft", "", `topology as "h;m1,..,mh;w1,..,wh"`)
	mport := flag.Int("mport", 0, "build an m-port n-tree (with -ntree)")
	ntree := flag.Int("ntree", 0, "tree height for -mport")
	src := flag.Int("src", -1, "source processing node for path listing")
	dst := flag.Int("dst", -1, "destination processing node for path listing")
	scheme := flag.String("scheme", "disjoint", "routing scheme for path listing ("+strings.Join(core.SelectorNames(), ", ")+")")
	k := flag.Int("k", 4, "path limit K for path listing")
	seed := flag.Int64("seed", 0, "seed for randomized schemes")
	draw := flag.Bool("draw", false, "render the topology level by level (paper Figures 1-3 style)")
	budget := flag.Int64("table-budget", core.DefaultTableBudget, "resident routing-table byte budget for the regime prediction")
	segBytes := flag.Int64("segment-bytes", 0, "block-mode segment size for the regime prediction (0: default)")
	deltaBase := flag.String("delta-base", "", "base scheme to predict delta-segment cache savings against (empty: none)")
	flag.Parse()

	t, err := cliutil.BuildTopology(*spec, *mport, *ntree)
	if err != nil {
		fatal(err)
	}
	summarize(t)
	if err := tableRegime(t, *scheme, *k, *seed, *budget, *segBytes); err != nil {
		fatal(err)
	}
	if *deltaBase != "" {
		if err := deltaPrediction(t, *deltaBase, *scheme, *k, *seed); err != nil {
			fatal(err)
		}
	}
	if *draw {
		fmt.Println()
		t.Draw(os.Stdout, 16)
	}
	if *src >= 0 && *dst >= 0 {
		if err := listPaths(t, *src, *dst, *scheme, *k, *seed); err != nil {
			fatal(err)
		}
	}
}

func summarize(t *topology.Topology) {
	fmt.Printf("%s\n", t)
	fmt.Printf("  processing nodes: %d\n", t.NumProcessors())
	fmt.Printf("  switches:         %d (top level: %d)\n", t.NumSwitches(), t.NumTopSwitches())
	for l := 0; l < t.H(); l++ {
		fmt.Printf("  tier %d-%d cables:  %d\n", l, l+1, t.CablesAtTier(l))
	}
	fmt.Printf("  diameter: %d hops, avg shortest path %.2f hops\n", t.Diameter(), t.AvgShortestPathLen())
	fmt.Printf("  max oversubscription: %.2f (ideal uniform throughput %.3f)\n",
		t.MaxOversubscription(), t.IdealUniformThroughput())
	cost := t.Cost()
	fmt.Printf("  cost: %d switches, %d switch ports, %d cables\n", cost.Switches, cost.SwitchPorts, cost.Cables)
	fmt.Printf("  max shortest paths between nodes: %d\n", t.MaxPaths())
	if maxK := lid.MaxRealizableK(t); maxK < t.MaxPaths() {
		fmt.Printf("  InfiniBand-addressable path limit: K <= %d (of %d)\n", maxK, t.MaxPaths())
	} else {
		fmt.Printf("  InfiniBand can address all %d paths per pair\n", t.MaxPaths())
	}
}

// tableRegime predicts how flow experiments will evaluate this
// (topology, scheme, K): a fully compiled table when the estimate fits
// the budget, the out-of-core block mode otherwise, with the lazy
// fallback flow's Auto mode takes on fabrics past its sample cap.
func tableRegime(t *topology.Topology, scheme string, k int, seed, budget, segBytes int64) error {
	sel, err := core.SelectorByName(scheme)
	if err != nil {
		return err
	}
	r := core.NewRouting(t, sel, k, seed)
	est := core.CompiledBytes(r)
	fmt.Printf("  compiled routing table (%s, K=%d): %s estimated\n", sel.Name(), k, byteSize(est))
	if est <= budget {
		fmt.Printf("  fits table budget %s: full-compile regime\n", byteSize(budget))
	} else {
		blockSrcs, numSegments, seg := core.PlanBlocks(r, segBytes)
		fmt.Printf("  exceeds table budget %s: block regime (%d segments x %s, %d sources each)\n",
			byteSize(budget), numSegments, byteSize(seg), blockSrcs)
	}
	if t.NumProcessors() > 12800 {
		fmt.Printf("  note: flow auto mode falls back to lazy evaluation here (%d nodes > 12800-sample cap); request block mode explicitly\n",
			t.NumProcessors())
	}
	return nil
}

// deltaPrediction prints what delta-encoding the -scheme table against
// -delta-base would save in segment-cache bytes (core.DeltaSavings) —
// the number to check before turning on -segment-delta for a sweep.
func deltaPrediction(t *topology.Topology, baseName, varName string, k int, seed int64) error {
	baseSel, err := core.SelectorByName(baseName)
	if err != nil {
		return err
	}
	varSel, err := core.SelectorByName(varName)
	if err != nil {
		return err
	}
	base := core.NewRouting(t, baseSel, k, seed)
	variant := core.NewRouting(t, varSel, k, seed)
	full, delta, ok := core.DeltaSavings(base, variant)
	if !ok {
		fmt.Printf("  delta vs %s: incompatible (topology or per-level path counts differ); variants cache full-fat\n", baseSel.Name())
		return nil
	}
	shared, _ := core.DeltaSharedLevels(base, variant)
	var levels []string
	for lvl := 1; lvl < len(shared); lvl++ {
		if shared[lvl] {
			levels = append(levels, fmt.Sprintf("%d", lvl))
		}
	}
	fmt.Printf("  delta vs %s: shared NCA levels {%s}; cache record %s instead of %s (%.1f%% saved)\n",
		baseSel.Name(), strings.Join(levels, ","), byteSize(delta), byteSize(full),
		100*(1-float64(delta)/float64(full)))
	return nil
}

// byteSize renders a byte count in the closest binary unit.
func byteSize(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.3g GiB", float64(b)/float64(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.3g MiB", float64(b)/float64(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.3g KiB", float64(b)/float64(1<<10))
	}
	return fmt.Sprintf("%d B", b)
}

func listPaths(t *topology.Topology, src, dst int, scheme string, k int, seed int64) error {
	n := t.NumProcessors()
	if src >= n || dst >= n {
		return fmt.Errorf("pair (%d,%d) out of range [0,%d)", src, dst, n)
	}
	sel, err := core.SelectorByName(scheme)
	if err != nil {
		return err
	}
	nca := t.NCALevel(src, dst)
	fmt.Printf("\npair (%d -> %d): NCA level %d, %d shortest paths\n", src, dst, nca, t.NumPathsBetween(src, dst))
	if src == dst {
		return nil
	}
	r := core.NewRouting(t, sel, k, seed)
	fmt.Printf("%s selects:\n", r)
	for _, idx := range r.Paths(src, dst) {
		up := core.DecodePathIndex(t, nca, idx, nil)
		nodes := t.PathNodes(src, dst, up)
		labels := make([]string, len(nodes))
		for i, nd := range nodes {
			labels[i] = t.LabelOf(nd).String()
		}
		fmt.Printf("  path %3d (up ports %v): %s\n", idx, up, strings.Join(labels, " -> "))
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xgftinfo:", err)
	os.Exit(1)
}
