package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xgftsim/internal/serve"
)

func TestParseMix(t *testing.T) {
	m, err := parseMix("path=90,batch=5,maxload=5")
	if err != nil || m.Path != 90 || m.Batch != 5 || m.MaxLoad != 5 {
		t.Fatalf("got %+v, %v", m, err)
	}
	if m, err = parseMix(""); err != nil || m.Path != 0 {
		t.Fatalf("empty mix: %+v, %v", m, err)
	}
	for _, bad := range []string{"path", "path=x", "path=-1", "widgets=3"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted", bad)
		}
	}
}

func TestRealMainFlagErrors(t *testing.T) {
	var out, errw bytes.Buffer
	if code := realMain([]string{"-endpoints", "16"}, &out, &errw); code != 2 {
		t.Errorf("no -url: exit %d, want 2", code)
	}
	if code := realMain([]string{"-url", "http://x"}, &out, &errw); code != 2 {
		t.Errorf("no -endpoints: exit %d, want 2", code)
	}
	if code := realMain([]string{"-url", "http://x", "-endpoints", "16", "-mix", "bogus"}, &out, &errw); code != 2 {
		t.Errorf("bad mix: exit %d, want 2", code)
	}
}

func TestRealMainEndToEnd(t *testing.T) {
	s, err := serve.New(serve.Config{
		Fabrics: []serve.FabricSpec{{Name: "edge", XGFT: "2;4,4;1,4", Scheme: "d-mod-k", K: 4, Seed: 2012}},
		Dir:     t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	dir := t.TempDir()
	var out, errw bytes.Buffer
	code := realMain([]string{
		"-url", hs.URL, "-fabric", "edge", "-endpoints", "16",
		"-c", "2", "-requests", "50", "-mix", "path=3,batch=1", "-batch", "16",
		"-json", "-dir", dir,
	}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out.String(), errw.String())
	}
	var res struct {
		Requests int64
		Errors   int64
		QPS      float64
	}
	if err := json.Unmarshal(out.Bytes(), &res); err != nil {
		t.Fatalf("-json output: %v\n%s", err, out.String())
	}
	if res.Requests != 50 || res.Errors != 0 || res.QPS <= 0 {
		t.Fatalf("result %+v", res)
	}
	man, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(man), `"tool": "xgftload"`) {
		t.Errorf("manifest missing tool stamp:\n%s", man)
	}
	if _, err := os.Stat(filepath.Join(dir, "result.json")); err != nil {
		t.Error(err)
	}
}
