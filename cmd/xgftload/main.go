// Command xgftload drives a running xgftserve instance with the
// internal/loadgen harness and prints throughput and latency
// quantiles. Closed loop by default; -qps switches to the open loop,
// which schedules requests at a fixed aggregate rate and charges each
// latency from its scheduled send time (coordinated-omission safe).
//
// Usage:
//
//	xgftload -url http://127.0.0.1:8080 -fabric edge -endpoints 16 \
//	         -c 8 -duration 5s -mix path=90,batch=5,maxload=5 -qps 2000
//
// -churn PERIOD flaps a cable fault in the background while measuring,
// so the reported p99 includes repair-window queries. -json emits the
// full result (histogram quantiles included) as one JSON object for
// scripting.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"xgftsim/internal/cliutil"
	"xgftsim/internal/loadgen"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// parseMix reads "path=90,batch=5,maxload=5" (any subset, weights
// non-negative) into a loadgen.Mix.
func parseMix(s string) (loadgen.Mix, error) {
	var m loadgen.Mix
	if s == "" {
		return m, nil
	}
	for _, part := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return m, fmt.Errorf("bad mix entry %q: want kind=weight", part)
		}
		w, err := strconv.Atoi(v)
		if err != nil || w < 0 {
			return m, fmt.Errorf("bad mix weight %q", v)
		}
		switch k {
		case "path":
			m.Path = w
		case "batch":
			m.Batch = w
		case "maxload":
			m.MaxLoad = w
		default:
			return m, fmt.Errorf("unknown mix kind %q (want path, batch or maxload)", k)
		}
	}
	return m, nil
}

func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("xgftload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	url := fs.String("url", "", "base URL of the serve API (required), e.g. http://127.0.0.1:8080")
	fabric := fs.String("fabric", "edge", "fabric name to query")
	endpoints := fs.Int("endpoints", 0, "processor count of the fabric (required; sources/destinations draw from it)")
	conc := fs.Int("c", 8, "concurrent workers")
	duration := fs.Duration("duration", 5*time.Second, "measurement window")
	requests := fs.Int("requests", 0, "stop after this many requests instead of -duration")
	qps := fs.Float64("qps", 0, "open-loop target rate (0 = closed loop)")
	mixFlag := fs.String("mix", "path=1", "request mix weights, e.g. path=90,batch=5,maxload=5")
	batchSize := fs.Int("batch", 256, "pairs per batch request")
	k := fs.Int("k", 0, "per-batch path limit (0 = all compiled paths)")
	binary := fs.Bool("binary", false, "negotiate the binary batch frame")
	churn := fs.Duration("churn", 0, "flap a cable fault every PERIOD while measuring (0 = off)")
	churnNode := fs.Int("churn-node", 3, "child node of the flapped cable (with -churn)")
	seed := fs.Int64("seed", 1, "workload seed")
	asJSON := fs.Bool("json", false, "emit the result as JSON")
	dir := fs.String("dir", "", "also write manifest.json and result.json here")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	usage := func(err error) int {
		fmt.Fprintln(stderr, "xgftload:", err)
		fs.Usage()
		return 2
	}
	if *url == "" {
		return usage(fmt.Errorf("need -url"))
	}
	if *endpoints < 2 {
		return usage(fmt.Errorf("need -endpoints >= 2"))
	}
	mix, err := parseMix(*mixFlag)
	if err != nil {
		return usage(err)
	}

	ctx, stop := cliutil.WithInterrupt(context.Background())
	defer stop()

	cfg := loadgen.Config{
		BaseURL:     *url,
		Fabric:      *fabric,
		Endpoints:   *endpoints,
		Concurrency: *conc,
		Duration:    *duration,
		Requests:    *requests,
		TargetQPS:   *qps,
		Mix:         mix,
		BatchSize:   *batchSize,
		K:           *k,
		Binary:      *binary,
		ChurnPeriod: *churn,
		ChurnNode:   *churnNode,
		Seed:        *seed,
	}
	res, err := loadgen.Run(ctx, cfg)
	if err != nil {
		fmt.Fprintln(stderr, "xgftload:", err)
		return 1
	}

	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(stderr, "xgftload:", err)
			return 1
		}
	} else {
		fmt.Fprintln(stdout, res)
	}
	if *dir != "" {
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			fmt.Fprintln(stderr, "xgftload:", err)
			return 1
		}
		man := cliutil.NewManifest("xgftload")
		man.Flags = cliutil.FlagValues(fs)
		man.Seed = *seed
		man.Workers = *conc
		man.Results = map[string]any{
			"qps": res.QPS, "pairs_per_sec": res.PairsPerSec,
			"p50_ns": int64(res.P50), "p95_ns": int64(res.P95), "p99_ns": int64(res.P99),
			"requests": res.Requests, "errors": res.Errors,
		}
		if err := man.WriteFile(*dir); err != nil {
			fmt.Fprintln(stderr, "xgftload:", err)
			return 1
		}
		data, _ := json.MarshalIndent(res, "", "  ")
		if err := os.WriteFile(*dir+"/result.json", append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(stderr, "xgftload:", err)
			return 1
		}
	}
	if res.Errors > 0 {
		fmt.Fprintf(stderr, "xgftload: %d requests failed\n", res.Errors)
		return 1
	}
	return 0
}
