// Command xgftlft synthesizes, inspects and verifies the InfiniBand
// linear forwarding tables (LFTs) realizing a routing scheme: the
// subnet-manager view of limited multi-path routing.
//
// Usage:
//
//	xgftlft -mport 8 -ntree 3 -scheme disjoint -k 4 -dump lft.txt
//	xgftlft -mport 8 -ntree 3 -scheme disjoint -k 4 -verify
//	xgftlft -mport 8 -ntree 3 -scheme shift-1 -k 4 -diversity
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"xgftsim/internal/cliutil"
	"xgftsim/internal/core"
	"xgftsim/internal/lid"
	"xgftsim/internal/stats"
)

func main() {
	spec := flag.String("xgft", "", `topology as "h;m1,..,mh;w1,..,wh"`)
	mport := flag.Int("mport", 0, "build an m-port n-tree (with -ntree)")
	ntree := flag.Int("ntree", 0, "tree height for -mport")
	scheme := flag.String("scheme", "disjoint", "routing scheme ("+strings.Join(core.SelectorNames(), ", ")+")")
	k := flag.Int("k", 4, "paths per destination")
	seed := flag.Int64("seed", 0, "seed for randomized schemes")
	dump := flag.String("dump", "", "write the LFT dump to this file ('-' for stdout)")
	verify := flag.Bool("verify", false, "walk every (src,dst,slot) and verify shortest-path delivery")
	diversity := flag.Bool("diversity", false, "report average effective path diversity by NCA level")
	flag.Parse()

	t, err := cliutil.BuildTopology(*spec, *mport, *ntree)
	if err != nil {
		fatal(err)
	}
	sel, err := core.SelectorByName(*scheme)
	if err != nil {
		fatal(err)
	}
	plan, err := lid.NewPlan(t, *k)
	if err != nil {
		fatal(err)
	}
	fabric, err := lid.BuildFabric(plan, sel, *seed)
	if err != nil {
		fatal(err)
	}
	st := fabric.Stats()
	fmt.Printf("%s, scheme %s, K=%d: LMC=%d, %d LIDs total (%.1f%% of space)\n",
		t, sel.Name(), plan.K, plan.LMC, plan.TotalLIDs,
		100*float64(plan.TotalLIDs)/float64(lid.MaxUnicastLIDs))
	fmt.Printf("forwarding tables: %d switches, %d entries each, %d total\n",
		st.Switches, st.EntriesMax, st.EntriesTotal)

	if *dump != "" {
		out := os.Stdout
		if *dump != "-" {
			f, err := os.Create(*dump)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			out = f
		}
		if _, err := fabric.WriteTo(out); err != nil {
			fatal(err)
		}
		if *dump != "-" {
			fmt.Printf("wrote LFT dump to %s\n", *dump)
		}
	}
	if *verify {
		n := t.NumProcessors()
		walks := 0
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				if src == dst {
					continue
				}
				for slot := 0; slot < plan.LIDsPerNode; slot++ {
					path, err := fabric.Walk(src, dst, slot)
					if err != nil {
						fatal(fmt.Errorf("walk(%d,%d,%d): %w", src, dst, slot, err))
					}
					if want := 2*t.NCALevel(src, dst) + 1; len(path) != want {
						fatal(fmt.Errorf("walk(%d,%d,%d): %d nodes, want %d (non-shortest)", src, dst, slot, len(path), want))
					}
					walks++
				}
			}
		}
		fmt.Printf("verified %d forwarding walks: all shortest, all delivered\n", walks)
	}
	if *diversity {
		fmt.Println("effective path diversity under LFT truncation:")
		for lvl := 1; lvl <= t.H(); lvl++ {
			var acc stats.Accumulator
			n := t.NumProcessors()
			for src := 0; src < n; src++ {
				for dst := 0; dst < n; dst++ {
					if src != dst && t.NCALevel(src, dst) == lvl {
						acc.Add(float64(fabric.EffectivePaths(src, dst)))
					}
				}
			}
			if acc.N() > 0 {
				fmt.Printf("  NCA level %d: %.2f distinct paths/pair (of up to %d)\n",
					lvl, acc.Mean(), min(plan.K, t.WProd(lvl)))
			}
		}
	}
	// A quick look at how the top tier spreads destinations.
	top := t.NodeAt(t.H(), 0)
	hist := fabric.PortHistogram(top)
	fmt.Printf("top switch %v port spread:", t.LabelOf(top))
	for _, p := range lid.SortedPorts(hist) {
		fmt.Printf(" %d:%d", p, hist[p])
	}
	fmt.Println()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xgftlft:", err)
	os.Exit(1)
}
