package xgftsim

import (
	"math/rand"

	"xgftsim/internal/adversary"
	"xgftsim/internal/core"
	"xgftsim/internal/flit"
	"xgftsim/internal/flow"
	"xgftsim/internal/lid"
	"xgftsim/internal/stats"
	"xgftsim/internal/topology"
	"xgftsim/internal/traffic"
)

// Topology types (see internal/topology).
type (
	// Topology is an immutable extended generalized fat-tree.
	Topology = topology.Topology
	// NodeID identifies a node; processing nodes come first.
	NodeID = topology.NodeID
	// LinkID identifies a directed link.
	LinkID = topology.LinkID
	// Label is the paper's (l, a_h..a_1) tuple naming a node.
	Label = topology.Label
	// PaperTopology names one of the paper's evaluation topologies.
	PaperTopology = topology.PaperTopology
)

// NewXGFT constructs XGFT(h; m...; w...); m[i-1] and w[i-1] hold the
// paper's m_i and w_i.
func NewXGFT(h int, m, w []int) (*Topology, error) { return topology.New(h, m, w) }

// MPortNTree constructs the XGFT equivalent of an m-port n-tree.
func MPortNTree(m, n int) (*Topology, error) { return topology.MPortNTree(m, n) }

// KAryNTree constructs the XGFT equivalent of a k-ary n-tree.
func KAryNTree(k, n int) (*Topology, error) { return topology.KAryNTree(k, n) }

// GFT constructs the generalized fat-tree GFT(h; m, w).
func GFT(h, m, w int) (*Topology, error) { return topology.GFT(h, m, w) }

// FromPaperTopology builds one of the paper's named topologies.
func FromPaperTopology(name PaperTopology) (*Topology, error) { return topology.FromPaper(name) }

// Routing schemes (see internal/core).
type (
	// Selector is a path-selection scheme.
	Selector = core.Selector
	// Routing binds a topology, scheme and path limit K.
	Routing = core.Routing
	// PathSet is the materialized multi-path route of one SD pair.
	PathSet = core.PathSet

	// DModK is destination-mod-k single-path routing.
	DModK = core.DModK
	// SModK is source-mod-k single-path routing.
	SModK = core.SModK
	// RandomSingle picks one random shortest path per pair.
	RandomSingle = core.RandomSingle
	// Shift1 is the paper's shift-1 limited multi-path heuristic.
	Shift1 = core.Shift1
	// Disjoint is the paper's disjoint limited multi-path heuristic.
	Disjoint = core.Disjoint
	// RandomK is the paper's random limited multi-path heuristic.
	RandomK = core.RandomK
	// UMulti is unlimited multi-path routing (optimal, Theorem 1).
	UMulti = core.UMulti
)

// NewRouting creates a routing over t using scheme sel with path limit
// limK (<= 0 = unlimited); seed drives randomized schemes.
func NewRouting(t *Topology, sel Selector, limK int, seed int64) *Routing {
	return core.NewRouting(t, sel, limK, seed)
}

// SelectorByName resolves a scheme identifier such as "disjoint".
func SelectorByName(name string) (Selector, error) { return core.SelectorByName(name) }

// SelectorNames lists the canonical scheme identifiers.
func SelectorNames() []string { return core.SelectorNames() }

// DecodePathIndex expands a canonical path index into up-port digits.
func DecodePathIndex(t *Topology, k, idx int, buf []int) []int {
	return core.DecodePathIndex(t, k, idx, buf)
}

// EncodePathIndex packs up-port digits into the canonical path index.
func EncodePathIndex(t *Topology, up []int) int { return core.EncodePathIndex(t, up) }

// DModKIndex returns the d-mod-k path index for a destination at NCA
// level k.
func DModKIndex(t *Topology, dst, k int) int { return core.DModKIndex(t, dst, k) }

// PortRoute returns the output-port sequence realizing a path index.
func PortRoute(t *Topology, src, dst, idx int) []int { return core.PortRoute(t, src, dst, idx) }

// Traffic (see internal/traffic).
type (
	// TrafficMatrix is a sparse demand matrix.
	TrafficMatrix = traffic.Matrix
	// Flow is one demand entry.
	Flow = traffic.Flow
	// Pattern draws message destinations for the flit simulator.
	Pattern = traffic.Pattern
	// UniformPattern draws a fresh uniform destination per message.
	UniformPattern = traffic.UniformPattern
	// PermutationPattern fixes each source's destination.
	PermutationPattern = traffic.PermutationPattern
	// HotspotPattern skews a fraction of traffic to one node.
	HotspotPattern = traffic.HotspotPattern
)

// NewTrafficMatrix creates an empty demand over n processing nodes.
func NewTrafficMatrix(n int) *TrafficMatrix { return traffic.NewMatrix(n) }

// FromPermutation builds the unit-demand matrix of a permutation.
func FromPermutation(perm []int) *TrafficMatrix { return traffic.FromPermutation(perm) }

// RandomPermutation draws a uniform random permutation.
func RandomPermutation(n int, rng *rand.Rand) []int { return traffic.RandomPermutation(n, rng) }

// RandomDerangementish draws a random permutation without fixed points.
func RandomDerangementish(n int, rng *rand.Rand) []int {
	return traffic.RandomDerangementish(n, rng)
}

// ShiftPermutation maps src to (src+s) mod n.
func ShiftPermutation(n, s int) []int { return traffic.ShiftPermutation(n, s) }

// BitComplement, BitReversal, Transpose and Tornado build the classic
// structured permutations.
func BitComplement(n int) ([]int, error) { return traffic.BitComplement(n) }

// BitReversal maps each node to the reversal of its bits.
func BitReversal(n int) ([]int, error) { return traffic.BitReversal(n) }

// Transpose maps (r,c) to (c,r) over a square grid of nodes.
func Transpose(n int) ([]int, error) { return traffic.Transpose(n) }

// Tornado maps src to (src + n/2 - 1) mod n.
func Tornado(n int) []int { return traffic.Tornado(n) }

// NeighborExchange pairs adjacent nodes (halo-exchange step).
func NeighborExchange(n int) ([]int, error) { return traffic.NeighborExchange(n) }

// Butterfly swaps each node's lowest and highest address bits.
func Butterfly(n int) ([]int, error) { return traffic.Butterfly(n) }

// Uniform builds the dense uniform demand (one unit per source).
func Uniform(n int) *TrafficMatrix { return traffic.Uniform(n) }

// Hotspot concentrates demand on one node.
func Hotspot(n, hot int, bg float64) *TrafficMatrix { return traffic.Hotspot(n, hot, bg) }

// AdversarialDModK builds the Theorem 2 worst-case pattern for d-mod-k.
func AdversarialDModK(t *Topology) (*TrafficMatrix, error) { return traffic.AdversarialDModK(t) }

// NewPermutationPattern wraps a fixed assignment as a flit workload.
func NewPermutationPattern(name string, perm []int) *PermutationPattern {
	return traffic.NewPermutationPattern(name, perm)
}

// Flow-level evaluation (see internal/flow).
type (
	// Evaluator computes link loads for one routing.
	Evaluator = flow.Evaluator
	// PermutationExperiment is the paper's flow-level study for one
	// (topology, scheme, K) cell.
	PermutationExperiment = flow.Experiment
)

// NewEvaluator creates a flow-level evaluator for r.
func NewEvaluator(r *Routing) *Evaluator { return flow.NewEvaluator(r) }

// OptimalLoad computes OLOAD(TM) exactly via the subtree-cut bound.
func OptimalLoad(t *Topology, tm *TrafficMatrix) float64 { return flow.OptimalLoad(t, tm) }

// PerformanceRatio computes PERF(r, TM) = MLOAD / OLOAD.
func PerformanceRatio(r *Routing, tm *TrafficMatrix) float64 { return flow.PerformanceRatio(r, tm) }

// Flit-level simulation (see internal/flit).
type (
	// FlitConfig parameterizes one flit-level run.
	FlitConfig = flit.Config
	// FlitResult reports one flit-level run.
	FlitResult = flit.Result
	// FlitSweepConfig describes a load sweep.
	FlitSweepConfig = flit.SweepConfig
	// PathPolicy selects per-message path choice.
	PathPolicy = flit.PathPolicy
)

// Per-message path selection policies.
const (
	RoundRobinPath = flit.RoundRobin
	RandomPathPick = flit.RandomPath
)

// RunFlit executes one flit-level simulation.
func RunFlit(cfg FlitConfig) (FlitResult, error) { return flit.Run(cfg) }

// FlitSweep runs a configuration across offered loads.
func FlitSweep(sc FlitSweepConfig) ([]FlitResult, error) { return flit.Sweep(sc) }

// MaxThroughput extracts the paper's Table 1 metric from a sweep.
func MaxThroughput(results []FlitResult) float64 { return flit.MaxThroughput(results) }

// InfiniBand realization (see internal/lid).
type (
	// LIDPlan assigns LID blocks for K-path routing.
	LIDPlan = lid.Plan
	// Fabric holds synthesized linear forwarding tables.
	Fabric = lid.Fabric
)

// MaxUnicastLIDs is the InfiniBand unicast address-space size.
const MaxUnicastLIDs = lid.MaxUnicastLIDs

// NewLIDPlan computes the LID assignment for K-path routing.
func NewLIDPlan(t *Topology, k int) (*LIDPlan, error) { return lid.NewPlan(t, k) }

// MaxRealizableK returns the largest addressable K on t.
func MaxRealizableK(t *Topology) int { return lid.MaxRealizableK(t) }

// BuildFabric synthesizes the forwarding tables realizing a scheme.
func BuildFabric(p *LIDPlan, sel Selector, seed int64) (*Fabric, error) {
	return lid.BuildFabric(p, sel, seed)
}

// Statistics (see internal/stats).
type (
	// Accumulator keeps running mean/variance statistics.
	Accumulator = stats.Accumulator
	// AdaptiveConfig tunes the paper's adaptive sampling protocol.
	AdaptiveConfig = stats.AdaptiveConfig
)

// RNGStream derives a deterministic RNG for a (seed, stream) pair.
func RNGStream(seed, stream int64) *rand.Rand { return stats.Stream(seed, stream) }

// Worst-case search (see internal/adversary).
type (
	// WorstCaseConfig tunes the annealing search for adversarial
	// permutations.
	WorstCaseConfig = adversary.Config
	// WorstCaseResult reports the worst permutation found.
	WorstCaseResult = adversary.Result
)

// WorstPermutation searches for the permutation maximizing
// PERF(r, TM), lower-bounding r's oblivious performance ratio.
func WorstPermutation(r *Routing, cfg WorstCaseConfig) WorstCaseResult {
	return adversary.WorstPermutation(r, cfg)
}
