// Fault tolerance: inject a link failure and compare oblivious
// multi-path routing (which stalls the flows whose precomputed paths
// cross the dead link) against minimal adaptive routing (which steers
// around failed upward links).
//
//	go run ./examples/fault-tolerance
package main

import (
	"fmt"
	"log"

	"xgftsim"
)

func main() {
	topo, err := xgftsim.MPortNTree(8, 2) // XGFT(2;4,8;1,4), 32 nodes
	if err != nil {
		log.Fatal(err)
	}
	// Fail one of leaf switch 0's four up links.
	failed := topo.UpLink(topo.NodeAt(1, 0), 0)
	fmt.Printf("topology %s; failing link %s\n\n", topo, topo.LinkString(failed))

	run := func(name string, adaptive bool, fail bool) {
		cfg := xgftsim.FlitConfig{
			Routing:       xgftsim.NewRouting(topo, xgftsim.Disjoint{}, 4, 0),
			Pattern:       xgftsim.UniformPattern{N: topo.NumProcessors()},
			OfferedLoad:   0.4,
			Adaptive:      adaptive,
			Seed:          1,
			WarmupCycles:  3000,
			MeasureCycles: 12000,
		}
		if fail {
			cfg.FailedLinks = []xgftsim.LinkID{failed}
		}
		res, err := xgftsim.RunFlit(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s accepted %.4f of 0.4 offered, fairness %.3f, backlog %d packets\n",
			name, res.Throughput, res.Fairness, res.BacklogPackets)
	}
	run("oblivious, healthy", false, false)
	run("oblivious, failed link", false, true)
	run("adaptive, failed link", true, true)

	fmt.Println("\nthe oblivious routing loses the flows routed across the dead link and")
	fmt.Println("backpressure spreads the stall; adaptive routing sheds the failure entirely.")
	fmt.Println("(production InfiniBand would instead re-run the subnet manager to install")
	fmt.Println("new forwarding tables — see internal/lid for that machinery.)")
}
