// Saturation study: drive the flit-level virtual cut-through simulator
// through a load sweep and watch multi-path routing push the
// saturation point outward — the paper's Table 1 / Figure 5 story.
//
//	go run ./examples/saturation
package main

import (
	"fmt"
	"log"

	"xgftsim"
)

func main() {
	topo, err := xgftsim.MPortNTree(8, 3) // XGFT(3;4,4,8;1,4,4), N=128
	if err != nil {
		log.Fatal(err)
	}
	// The paper's flit-level workload: a fixed random assignment of
	// destinations, Poisson message arrivals.
	assign := xgftsim.RandomDerangementish(topo.NumProcessors(), xgftsim.RNGStream(11, 0))
	pattern := xgftsim.NewPermutationPattern("uniform-assignment", assign)

	loads := []float64{0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	fmt.Printf("flit-level sweep on %s (packet 8 flits, message 4 packets, buffers 4)\n\n", topo)
	for _, cfg := range []struct {
		sel xgftsim.Selector
		k   int
	}{
		{xgftsim.DModK{}, 1},
		{xgftsim.Disjoint{}, 2},
		{xgftsim.Disjoint{}, 8},
	} {
		base := xgftsim.FlitConfig{
			Routing:       xgftsim.NewRouting(topo, cfg.sel, cfg.k, 0),
			Pattern:       pattern,
			Seed:          3,
			WarmupCycles:  4000,
			MeasureCycles: 12000,
		}
		results, err := xgftsim.FlitSweep(xgftsim.FlitSweepConfig{Base: base, Loads: loads})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", base.Routing)
		fmt.Printf("  %8s %10s %12s\n", "load", "accepted", "delay(cyc)")
		for _, r := range results {
			marker := ""
			if r.Saturated {
				marker = "  << saturated"
			}
			fmt.Printf("  %8.2f %10.4f %12.1f%s\n", r.OfferedLoad, r.Throughput, r.AvgDelay, marker)
		}
		fmt.Printf("  max throughput: %.4f\n\n", xgftsim.MaxThroughput(results))
	}
	fmt.Println("expected shape: disjoint(8) > disjoint(2) > d-mod-k in max throughput;")
	fmt.Println("multi-path delays stay flat to higher loads before the saturation wall.")
}
