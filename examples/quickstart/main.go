// Quickstart: build a fat-tree, pick a routing scheme, and measure how
// well it spreads a permutation's traffic.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"xgftsim"
)

func main() {
	// The paper's flit-level evaluation tree: an 8-port 3-tree,
	// XGFT(3;4,4,8;1,4,4) with 128 processing nodes.
	topo, err := xgftsim.MPortNTree(8, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topology %s: %d processing nodes, %d switches, up to %d shortest paths per pair\n",
		topo, topo.NumProcessors(), topo.NumSwitches(), topo.MaxPaths())

	// Enumerate the paths the disjoint heuristic picks for one pair.
	r := xgftsim.NewRouting(topo, xgftsim.Disjoint{}, 4, 0)
	src, dst := 0, 127
	fmt.Printf("\n%s routes %d -> %d (NCA level %d, %d paths available) via path indices %v\n",
		r, src, dst, topo.NCALevel(src, dst), topo.NumPathsBetween(src, dst), r.Paths(src, dst))
	for _, idx := range r.Paths(src, dst) {
		fmt.Printf("  path %2d: output ports %v\n", idx, xgftsim.PortRoute(topo, src, dst, idx))
	}

	// Flow-level evaluation on a random permutation: maximum link load
	// against the provable optimum.
	perm := xgftsim.RandomPermutation(topo.NumProcessors(), xgftsim.RNGStream(42, 0))
	tm := xgftsim.FromPermutation(perm)
	fmt.Printf("\nrandom permutation (%d flows):\n", tm.NumFlows())
	for _, scheme := range []struct {
		sel xgftsim.Selector
		k   int
	}{
		{xgftsim.DModK{}, 1},
		{xgftsim.Disjoint{}, 2},
		{xgftsim.Disjoint{}, 4},
		{xgftsim.UMulti{}, 0},
	} {
		rt := xgftsim.NewRouting(topo, scheme.sel, scheme.k, 0)
		load := xgftsim.NewEvaluator(rt).MaxLoad(tm)
		fmt.Printf("  %-16s max link load %.3f (optimal %.3f, ratio %.2f)\n",
			rt, load, xgftsim.OptimalLoad(topo, tm), load/xgftsim.OptimalLoad(topo, tm))
	}
}
