// LID budget: the InfiniBand address-space arithmetic that motivates
// limited multi-path routing, computed for the paper's evaluation
// topologies — including the TACC-Ranger-scale 24-port 3-tree on which
// unlimited multi-path routing is unaddressable.
//
//	go run ./examples/lid-budget
package main

import (
	"fmt"
	"log"

	"xgftsim"
)

func main() {
	fmt.Printf("InfiniBand unicast LID space: %d addresses\n\n", xgftsim.MaxUnicastLIDs)
	for _, name := range []xgftsim.PaperTopology{
		"8-port-3-tree", "16-port-3-tree", "24-port-3-tree",
	} {
		topo, err := xgftsim.FromPaperTopology(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s = %s: %d nodes, up to %d paths per pair\n",
			name, topo, topo.NumProcessors(), topo.MaxPaths())
		for _, k := range []int{1, 2, 4, 8, 16, 64, topo.MaxPaths()} {
			if k > topo.MaxPaths() {
				continue
			}
			plan, err := xgftsim.NewLIDPlan(topo, k)
			if err != nil {
				fmt.Printf("  K=%-4d unrealizable: %v\n", k, err)
				continue
			}
			fmt.Printf("  K=%-4d LMC=%d -> %6d LIDs (%4.1f%% of the space)\n",
				k, plan.LMC, plan.TotalLIDs, 100*float64(plan.TotalLIDs)/float64(xgftsim.MaxUnicastLIDs))
		}
		fmt.Printf("  largest addressable K: %d\n\n", xgftsim.MaxRealizableK(topo))
	}

	// Beyond counting: synthesize the forwarding tables for K=4
	// disjoint routing on the 8-port 3-tree and verify a route.
	topo, _ := xgftsim.FromPaperTopology("8-port-3-tree")
	plan, err := xgftsim.NewLIDPlan(topo, 4)
	if err != nil {
		log.Fatal(err)
	}
	fabric, err := xgftsim.BuildFabric(plan, xgftsim.Disjoint{}, 0)
	if err != nil {
		log.Fatal(err)
	}
	src, dst := 0, 127
	fmt.Printf("forwarding-table walk on %s, disjoint K=4, %d -> %d:\n", topo, src, dst)
	for slot := 0; slot < plan.K; slot++ {
		path, err := fabric.Walk(src, dst, slot)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  LID %5d (slot %d): %d hops", plan.LID(dst, slot), slot, len(path)-1)
		for _, n := range path {
			fmt.Printf(" %v", topo.LabelOf(n))
		}
		fmt.Println()
	}
	fmt.Printf("\neffective path diversity under LFT truncation (nearby pair %d -> %d):\n", 0, 5)
	for _, sel := range []xgftsim.Selector{xgftsim.Shift1{}, xgftsim.Disjoint{}} {
		f, err := xgftsim.BuildFabric(plan, sel, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-9s %d distinct physical paths\n", sel.Name(), f.EffectivePaths(0, 5))
	}
}
