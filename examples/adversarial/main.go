// Adversarial traffic: reconstruct the paper's Theorem 2 pattern that
// collapses d-mod-k onto a single link, then watch limited multi-path
// routing dissolve the hot spot as K grows.
//
//	go run ./examples/adversarial
package main

import (
	"fmt"
	"log"

	"xgftsim"
)

func main() {
	// XGFT(2;8,64;1,8): W = Πw = 8 and M = 8 nodes per leaf subtree,
	// satisfying the theorem's conditions with the full Πw ratio.
	topo, err := xgftsim.NewXGFT(2, []int{8, 64}, []int{1, 8})
	if err != nil {
		log.Fatal(err)
	}
	tm, err := xgftsim.AdversarialDModK(topo)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topology %s, %d processing nodes\n", topo, topo.NumProcessors())
	fmt.Println("\nTheorem 2 traffic (all destinations are multiples of Πw, so d-mod-k")
	fmt.Println("sends every flow through up-port 0 at every level):")
	for _, f := range tm.Flows() {
		fmt.Printf("  node %3d -> node %3d (1 unit)\n", f.Src, f.Dst)
	}

	opt := xgftsim.OptimalLoad(topo, tm)
	fmt.Printf("\noptimal max link load (UMULTI achieves this): %.3f\n\n", opt)
	for _, cfg := range []struct {
		sel xgftsim.Selector
		k   int
	}{
		{xgftsim.DModK{}, 1},
		{xgftsim.Disjoint{}, 2},
		{xgftsim.Disjoint{}, 4},
		{xgftsim.Disjoint{}, 8},
		{xgftsim.UMulti{}, 0},
	} {
		r := xgftsim.NewRouting(topo, cfg.sel, cfg.k, 0)
		load := xgftsim.NewEvaluator(r).MaxLoad(tm)
		fmt.Printf("  %-16s max link load %6.3f  performance ratio %5.2f\n", r, load, load/opt)
	}
	fmt.Printf("\nd-mod-k's ratio matches the theorem's Πw = %d bound; each doubling\n", topo.MaxPaths())
	fmt.Println("of K halves the hot link's load until UMULTI reaches the optimum.")
}
