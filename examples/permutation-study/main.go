// Permutation study: a miniature of the paper's Figure 4 — average
// maximum link load over random permutations as the path limit K
// grows, comparing the shift-1, disjoint and random heuristics against
// single-path d-mod-k.
//
//	go run ./examples/permutation-study
package main

import (
	"fmt"
	"log"

	"xgftsim"
)

func main() {
	// A 16-port 2-tree: XGFT(2;8,16;1,8), the Figure 4(a) topology.
	topo, err := xgftsim.FromPaperTopology("16-port-2-tree")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("average maximum link load on %s, random permutations\n\n", topo)

	sampling := xgftsim.AdaptiveConfig{InitialSamples: 60, MaxSamples: 480, RelPrecision: 0.02}
	schemes := []xgftsim.Selector{xgftsim.DModK{}, xgftsim.Shift1{}, xgftsim.Disjoint{}, xgftsim.RandomK{}}

	fmt.Printf("%4s", "K")
	for _, s := range schemes {
		fmt.Printf(" %12s", s.Name())
	}
	fmt.Println()
	for k := 1; k <= topo.MaxPaths(); k++ {
		fmt.Printf("%4d", k)
		for _, sel := range schemes {
			kEff := k
			if !sel.MultiPath() {
				kEff = 1 // single-path baselines ignore K
			}
			res := xgftsim.PermutationExperiment{
				Topo:     topo,
				Sel:      sel,
				K:        kEff,
				PermSeed: 7,
				Sampling: sampling,
			}.Run()
			fmt.Printf(" %12.3f", res.Acc.Mean())
		}
		fmt.Println()
	}
	fmt.Println("\nexpected shape: shift-1 == disjoint on 2-level trees; all heuristics")
	fmt.Println("improve gracefully with K and reach the optimal load 1.0 at K = 8.")
}
