package xgftsim_test

// Integration tests of the public facade: the API surface downstream
// users (and the examples) build against, exercised end to end across
// all subsystems.

import (
	"math"
	"testing"

	"xgftsim"
)

func TestFacadeTopologyConstruction(t *testing.T) {
	topo, err := xgftsim.NewXGFT(3, []int{4, 4, 8}, []int{1, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	viaVariant, err := xgftsim.MPortNTree(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !topo.Equal(viaVariant) {
		t.Fatal("MPortNTree(8,3) != XGFT(3;4,4,8;1,4,4)")
	}
	if _, err := xgftsim.KAryNTree(2, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := xgftsim.GFT(2, 3, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := xgftsim.FromPaperTopology("figure-3"); err != nil {
		t.Fatal(err)
	}
	if _, err := xgftsim.NewXGFT(0, nil, nil); err == nil {
		t.Fatal("invalid tree accepted")
	}
}

// TestFacadeEndToEndFlow runs the doc.go code path: topology, routing,
// traffic, flow evaluation.
func TestFacadeEndToEndFlow(t *testing.T) {
	topo, err := xgftsim.MPortNTree(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	r := xgftsim.NewRouting(topo, xgftsim.Disjoint{}, 4, 0)
	tm := xgftsim.FromPermutation(xgftsim.ShiftPermutation(topo.NumProcessors(), 1))
	load := xgftsim.NewEvaluator(r).MaxLoad(tm)
	opt := xgftsim.OptimalLoad(topo, tm)
	if opt <= 0 || load < opt {
		t.Fatalf("load %g, optimal %g", load, opt)
	}
	if ratio := xgftsim.PerformanceRatio(r, tm); math.Abs(ratio-load/opt) > 1e-12 {
		t.Fatalf("PerformanceRatio %g != %g", ratio, load/opt)
	}
}

func TestFacadeSelectors(t *testing.T) {
	for _, name := range xgftsim.SelectorNames() {
		sel, err := xgftsim.SelectorByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sel.Name() != name {
			t.Fatalf("round trip %s -> %s", name, sel.Name())
		}
	}
	topo, _ := xgftsim.FromPaperTopology("figure-3")
	if idx := xgftsim.DModKIndex(topo, 63, 3); idx != 7 {
		t.Fatalf("paper example index %d, want 7", idx)
	}
	up := xgftsim.DecodePathIndex(topo, 3, 7, nil)
	if xgftsim.EncodePathIndex(topo, up) != 7 {
		t.Fatal("encode/decode mismatch")
	}
	if ports := xgftsim.PortRoute(topo, 0, 63, 7); len(ports) != 6 {
		t.Fatalf("port route %v", ports)
	}
}

func TestFacadeTrafficGenerators(t *testing.T) {
	if _, err := xgftsim.BitComplement(16); err != nil {
		t.Fatal(err)
	}
	if _, err := xgftsim.BitReversal(16); err != nil {
		t.Fatal(err)
	}
	if _, err := xgftsim.Transpose(16); err != nil {
		t.Fatal(err)
	}
	if p := xgftsim.Tornado(8); p[0] != 3 {
		t.Fatalf("tornado %v", p)
	}
	if m := xgftsim.Uniform(4); m.NumFlows() != 12 {
		t.Fatal("uniform")
	}
	if m := xgftsim.Hotspot(4, 0, 0); m.NumFlows() != 3 {
		t.Fatal("hotspot")
	}
	rng := xgftsim.RNGStream(1, 2)
	if p := xgftsim.RandomDerangementish(10, rng); len(p) != 10 {
		t.Fatal("derangement")
	}
	m := xgftsim.NewTrafficMatrix(4)
	m.Add(0, 1, 2)
	if m.Total() != 2 {
		t.Fatal("matrix")
	}
	topo, _ := xgftsim.NewXGFT(2, []int{8, 64}, []int{1, 8})
	if _, err := xgftsim.AdversarialDModK(topo); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeFlit runs a small flit-level sweep through the facade.
func TestFacadeFlit(t *testing.T) {
	topo, err := xgftsim.MPortNTree(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	pattern := xgftsim.NewPermutationPattern("assignment",
		xgftsim.RandomDerangementish(topo.NumProcessors(), xgftsim.RNGStream(5, 0)))
	res, err := xgftsim.RunFlit(xgftsim.FlitConfig{
		Routing:       xgftsim.NewRouting(topo, xgftsim.Disjoint{}, 2, 0),
		Pattern:       pattern,
		OfferedLoad:   0.3,
		WarmupCycles:  1000,
		MeasureCycles: 4000,
		PathPolicy:    xgftsim.RoundRobinPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Throughput-0.3) > 0.05 {
		t.Fatalf("throughput %g at load 0.3", res.Throughput)
	}
	sweep, err := xgftsim.FlitSweep(xgftsim.FlitSweepConfig{
		Base: xgftsim.FlitConfig{
			Routing:       xgftsim.NewRouting(topo, xgftsim.DModK{}, 1, 0),
			Pattern:       pattern,
			WarmupCycles:  500,
			MeasureCycles: 2000,
			PathPolicy:    xgftsim.RandomPathPick,
		},
		Loads: []float64{0.2, 0.6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if xgftsim.MaxThroughput(sweep) <= 0 {
		t.Fatal("no throughput")
	}
}

func TestFacadeLID(t *testing.T) {
	topo, err := xgftsim.FromPaperTopology("24-port-3-tree")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := xgftsim.NewLIDPlan(topo, 64); err == nil {
		t.Fatal("K=64 should not fit on the Ranger-scale tree")
	}
	if k := xgftsim.MaxRealizableK(topo); k < 1 || k >= 64 {
		t.Fatalf("MaxRealizableK = %d", k)
	}
	small, _ := xgftsim.MPortNTree(8, 2)
	plan, err := xgftsim.NewLIDPlan(small, 4)
	if err != nil {
		t.Fatal(err)
	}
	fabric, err := xgftsim.BuildFabric(plan, xgftsim.Disjoint{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fabric.Walk(0, small.NumProcessors()-1, 1); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeStats(t *testing.T) {
	var acc xgftsim.Accumulator
	acc.Add(1)
	acc.Add(3)
	if acc.Mean() != 2 {
		t.Fatal("accumulator")
	}
	exp := xgftsim.PermutationExperiment{
		Topo:     mustTopo(t),
		Sel:      xgftsim.Disjoint{},
		K:        2,
		PermSeed: 1,
		Sampling: xgftsim.AdaptiveConfig{InitialSamples: 10, MaxSamples: 10, RelPrecision: 1},
	}
	if res := exp.Run(); res.Acc.N() != 10 {
		t.Fatalf("experiment samples %d", res.Acc.N())
	}
}

func mustTopo(t *testing.T) *xgftsim.Topology {
	t.Helper()
	topo, err := xgftsim.MPortNTree(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}
