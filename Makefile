# Standard developer entry points; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test test-short bench bench-json ci cover repro repro-full clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Skips the end-to-end tests that shell out to `go run` and the soak
# test; useful on slow machines.
test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable flow/routing benchmark record: the paper-artifact
# sweeps once each plus the hot-path micro-benchmarks, parsed into
# BENCH_flow.json (see cmd/benchjson).
bench-json:
	$(GO) test -run xxx -bench 'Fig4|Table1|FailureSweep' -benchmem -benchtime 1x . | tee bench_output.txt
	$(GO) test -run xxx -bench 'FlowEvaluator|LoadsCompiled|CompileRouting|CompileRepaired|PathSelection|PathLinks|OptimalLoad' \
		-benchmem . | tee -a bench_output.txt
	$(GO) run ./cmd/benchjson -in bench_output.txt -out BENCH_flow.json
	@echo wrote BENCH_flow.json

# What a CI gate should run: static checks, the race-instrumented
# short test suite (includes the shared compiled-table race test),
# targeted race coverage of the repair and watchdog paths, and a
# quick-scale failure-sweep smoke run of the CLI.
ci: vet
	$(GO) test -short -race ./...
	$(GO) test -race -run 'Repair|Wedge|Drain|Degraded|Failure' ./internal/core ./internal/flit ./internal/flow ./internal/lid
	$(GO) run ./cmd/xgftpaper -exp failures -scale quick

cover:
	$(GO) test -coverprofile=cover.out ./... && $(GO) tool cover -func=cover.out | tail -20

# Regenerate every paper artifact quickly (sanity) or at the recorded
# protocol scale.
repro:
	$(GO) run ./cmd/xgftpaper -exp all -scale quick -out results-quick

repro-full:
	$(GO) run ./cmd/xgftpaper -exp all -scale paper -out results

clean:
	rm -f cover.out test_output.txt bench_output.txt
