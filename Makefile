# Standard developer entry points; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test test-short bench bench-json bench-compare ci cover repro repro-full clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Skips the end-to-end tests that shell out to `go run` and the soak
# test; useful on slow machines.
test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable benchmark records: the paper-artifact sweeps once
# each plus the hot-path micro-benchmarks, parsed into BENCH_flow.json
# and BENCH_flit.json (see cmd/benchjson). Every bench invocation
# carries an explicit -timeout: the sweeps are minutes-to-hours on slow
# machines (the go test default of 10m used to kill everything but the
# first line), the micro suites get a generous hour.
#
# rotate-record parses $(2) into BENCH_$(1).json via a temp file; only
# once benchjson succeeds is the previous record rotated to *.prev.json
# and the temp moved into place, so a failed parse (bad bench output,
# interrupted run) cannot destroy the baseline `make bench-compare`
# diffs against.
define rotate-record
$(GO) run ./cmd/benchjson -in $(2) -out BENCH_$(1).json.tmp
@if [ -f BENCH_$(1).json ]; then cp BENCH_$(1).json BENCH_$(1).prev.json; fi
mv BENCH_$(1).json.tmp BENCH_$(1).json
endef

bench-json:
	$(GO) test -run xxx -bench 'Fig4|Table1|FailureSweep|MegaFabricSweep' -benchmem -benchtime 1x -timeout 60m . | tee bench_output.txt
	$(GO) test -run xxx -bench 'FlowEvaluator|LoadsCompiled|CompileRouting|CompileRepaired|DeltaRepair|PathSelection|PathLinks|OptimalLoad|MultiKLoads|BlockCompiledLoads' \
		-benchmem -timeout 60m . | tee -a bench_output.txt
	$(call rotate-record,flow,bench_output.txt)
	$(GO) test -run xxx -bench 'Fig5|AdaptiveK' -benchmem -benchtime 1x -timeout 60m . | tee bench_flit_output.txt
	$(GO) test -run xxx -bench 'FlitEngine' -benchmem -timeout 60m . | tee -a bench_flit_output.txt
	$(call rotate-record,flit,bench_flit_output.txt)
	$(GO) test -run xxx -bench 'ServeSingle|ServeBatch|ServeOpen' -benchmem -timeout 60m ./internal/loadgen | tee bench_serve_output.txt
	$(call rotate-record,serve,bench_serve_output.txt)
	@echo wrote BENCH_flow.json BENCH_flit.json BENCH_serve.json

# Diff the two newest benchmark records of each suite (the current
# BENCH_*.json against the *.prev.json rotated by bench-json), failing
# on any >10% ns/op regression. Override the records or the threshold:
#   make bench-compare OLD=a.json NEW=b.json BENCH_THRESHOLD=0.05
BENCH_THRESHOLD ?= 0.10
bench-compare:
ifdef OLD
	$(GO) run ./cmd/benchjson -compare -old $(OLD) -new $(NEW) -threshold $(BENCH_THRESHOLD)
else
	@for f in flow flit serve; do \
		if [ -f BENCH_$$f.prev.json ]; then \
			$(GO) run ./cmd/benchjson -compare -old BENCH_$$f.prev.json -new BENCH_$$f.json -threshold $(BENCH_THRESHOLD) || exit 1; \
		else \
			echo "bench-compare: no BENCH_$$f.prev.json yet (run make bench-json twice)"; \
		fi; \
	done
endif

# What a CI gate should run: static checks, the race-instrumented
# short test suite (includes the shared compiled-table race test),
# targeted race coverage of the repair and watchdog paths, the
# allocation pins guarding the metrics and evaluation hot paths, the
# multi-K correctness gates (selector prefix nesting, the multi-K
# vs per-K differentials, the vector sampler's scalar equivalence),
# the race-instrumented control-plane suite (journal replay, churn
# soak, degradation ladder), the race-enabled in-process servebench
# smoke (closed/open-loop load harness against a live server), plus
# the kill -9 crash-recovery run of the real xgftserve binary, and a
# quick-scale smoke run that must produce a manifest.json with the
# required keys. The Alloc line also covers the block-prefetch
# steady-state pin (prefetch admission adds no allocations to
# AccumulateSegments); the tail runs race-instrumented mega smokes for
# the prefetch pipeline (nonzero segments_prefetched, no stall wedge —
# the run completing is the wedge check) and the delta-segment cache
# (nonzero bytes saved).
ci: vet
	$(GO) test -short -race ./...
	$(GO) test -race -run 'Repair|Wedge|Drain|Degraded|Failure' ./internal/core ./internal/flit ./internal/flow ./internal/lid
	$(GO) test -race -count=1 ./internal/serve/...
	$(GO) test -race -count=1 -run 'TestServeBenchSmoke' ./internal/loadgen
	$(GO) test -count=1 -run 'TestKillDashNineRecovery' ./cmd/xgftserve
	$(GO) test -run 'Alloc' -count=1 ./internal/obs ./internal/flit ./internal/flow ./internal/serve ./internal/stats
	$(GO) test -race -count=1 -run 'AdaptiveK' ./internal/flit ./internal/experiments
	$(GO) test -run 'PrefixNesting|MultiK|SampleAdaptiveVec' -count=1 ./internal/core ./internal/flow ./internal/stats
	rm -rf ci-smoke && $(GO) run ./cmd/xgftpaper -exp failures -scale quick -out ci-smoke
	@for key in tool go_version flags seed workers experiments wall_seconds metrics exit_status; do \
		grep -q "\"$$key\"" ci-smoke/manifest.json || { echo "ci: manifest.json missing \"$$key\""; exit 1; }; \
	done
	@echo ci: manifest.json ok
	rm -rf ci-mega ci-mega-cache
	$(GO) run ./cmd/xgftpaper -exp mega -scale quick -table-cache ci-mega-cache -out ci-mega
	$(GO) run ./cmd/xgftpaper -exp mega -scale quick -table-cache ci-mega-cache -out ci-mega
	@grep -Eq '"core.segments_cache_hit": [1-9]' ci-mega/manifest.json \
		|| { echo "ci: warm mega run recorded zero segment cache hits"; exit 1; }
	@echo ci: mega segment cache ok
	rm -rf ci-prefetch ci-delta ci-delta-cache
	$(GO) run -race ./cmd/xgftpaper -exp mega -scale quick -prefetch 4 -out ci-prefetch
	@grep -Eq '"core.segments_prefetched": [1-9]' ci-prefetch/manifest.json \
		|| { echo "ci: prefetch smoke run served zero segments from the pipeline"; exit 1; }
	@echo ci: prefetch pipeline ok
	$(GO) run ./cmd/xgftpaper -exp mega -scale quick -segment-delta -table-cache ci-delta-cache -out ci-delta
	@grep -Eq '"core.segment_delta_bytes_saved": [1-9]' ci-delta/manifest.json \
		|| { echo "ci: delta mega run saved zero segment-cache bytes"; exit 1; }
	@echo ci: delta segments ok

cover:
	$(GO) test -coverprofile=cover.out ./... && $(GO) tool cover -func=cover.out | tail -20

# Regenerate every paper artifact quickly (sanity) or at the recorded
# protocol scale.
repro:
	$(GO) run ./cmd/xgftpaper -exp all -scale quick -out results-quick

repro-full:
	$(GO) run ./cmd/xgftpaper -exp all -scale paper -out results

clean:
	rm -f cover.out test_output.txt bench_output.txt bench_flit_output.txt bench_serve_output.txt
	rm -f BENCH_flow.json.tmp BENCH_flit.json.tmp BENCH_serve.json.tmp
	rm -rf ci-smoke ci-mega ci-mega-cache ci-prefetch ci-delta ci-delta-cache
