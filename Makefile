# Standard developer entry points; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test test-short bench cover repro repro-full clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Skips the end-to-end tests that shell out to `go run` and the soak
# test; useful on slow machines.
test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

cover:
	$(GO) test -coverprofile=cover.out ./... && $(GO) tool cover -func=cover.out | tail -20

# Regenerate every paper artifact quickly (sanity) or at the recorded
# protocol scale.
repro:
	$(GO) run ./cmd/xgftpaper -exp all -scale quick -out results-quick

repro-full:
	$(GO) run ./cmd/xgftpaper -exp all -scale paper -out results

clean:
	rm -f cover.out test_output.txt bench_output.txt
