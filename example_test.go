package xgftsim_test

// Godoc examples: runnable documentation with verified output.

import (
	"fmt"

	"xgftsim"
)

// The paper's Figure 3 worked example: the d-mod-k path between
// processing nodes 0 and 63 of XGFT(3;4,4,4;1,4,2) is Path 7, and the
// disjoint heuristic's first four paths are 7, 1, 3, 5.
func Example() {
	topo, _ := xgftsim.NewXGFT(3, []int{4, 4, 4}, []int{1, 4, 2})
	fmt.Println("paths between 0 and 63:", topo.NumPathsBetween(0, 63))
	fmt.Println("d-mod-k picks path:", xgftsim.DModKIndex(topo, 63, 3))

	r := xgftsim.NewRouting(topo, xgftsim.Disjoint{}, 4, 0)
	fmt.Println("disjoint K=4 picks:", r.Paths(0, 63))
	// Output:
	// paths between 0 and 63: 8
	// d-mod-k picks path: 7
	// disjoint K=4 picks: [7 1 3 5]
}

func ExampleMPortNTree() {
	topo, _ := xgftsim.MPortNTree(8, 3) // the paper's 8-port 3-tree
	fmt.Println(topo)
	fmt.Println("processing nodes:", topo.NumProcessors())
	fmt.Println("max paths per pair:", topo.MaxPaths())
	// Output:
	// XGFT(3; 4,4,8; 1,4,4)
	// processing nodes: 128
	// max paths per pair: 16
}

func ExampleOptimalLoad() {
	topo, _ := xgftsim.MPortNTree(8, 2)
	// A shift permutation: d-mod-k routes it with zero contention.
	tm := xgftsim.FromPermutation(xgftsim.ShiftPermutation(topo.NumProcessors(), 1))
	r := xgftsim.NewRouting(topo, xgftsim.DModK{}, 1, 0)
	load := xgftsim.NewEvaluator(r).MaxLoad(tm)
	fmt.Printf("max load %.1f, optimal %.1f\n", load, xgftsim.OptimalLoad(topo, tm))
	// Output:
	// max load 1.0, optimal 1.0
}

func ExampleAdversarialDModK() {
	topo, _ := xgftsim.NewXGFT(2, []int{8, 64}, []int{1, 8})
	tm, _ := xgftsim.AdversarialDModK(topo)
	ratio := xgftsim.PerformanceRatio(xgftsim.NewRouting(topo, xgftsim.DModK{}, 1, 0), tm)
	fmt.Printf("PERF(d-mod-k) = %.0f (Theorem 2 bound: %d)\n", ratio, topo.MaxPaths())
	// Output:
	// PERF(d-mod-k) = 8 (Theorem 2 bound: 8)
}

func ExampleNewLIDPlan() {
	topo, _ := xgftsim.MPortNTree(24, 3) // TACC-Ranger scale
	if _, err := xgftsim.NewLIDPlan(topo, topo.MaxPaths()); err != nil {
		fmt.Println("unlimited multi-path: unrealizable")
	}
	plan, _ := xgftsim.NewLIDPlan(topo, 8)
	fmt.Printf("K=8 needs %d LIDs of %d\n", plan.TotalLIDs, xgftsim.MaxUnicastLIDs)
	// Output:
	// unlimited multi-path: unrealizable
	// K=8 needs 28368 LIDs of 49151
}

func ExampleSelectorByName() {
	sel, _ := xgftsim.SelectorByName("disjoint")
	fmt.Println(sel.Name(), "multipath:", sel.MultiPath())
	// Output:
	// disjoint multipath: true
}
