// Package xgftsim is a library for studying limited multi-path routing
// on extended generalized fat-trees (XGFTs), reproducing Mahapatra,
// Yuan and Nienaber, "Limited Multi-path Routing on Extended
// Generalized Fat-trees" (IPDPS Workshops, 2012).
//
// The library provides:
//
//   - XGFT topologies and the common fat-tree variants (m-port n-tree,
//     k-ary n-tree, GFT) as pure-arithmetic graphs (NewXGFT,
//     MPortNTree, KAryNTree, GFT);
//   - the canonical shortest-path enumeration and the paper's routing
//     schemes: d-mod-k, s-mod-k and random single-path baselines, the
//     shift-1, disjoint and random limited multi-path heuristics, and
//     the provably optimal unlimited multi-path UMULTI (SelectorByName,
//     NewRouting);
//   - a flow-level evaluator computing link loads, the exact optimal
//     load OLOAD(TM) and oblivious performance ratios, plus the paper's
//     adaptive permutation experiment (NewEvaluator, OptimalLoad,
//     PermutationExperiment);
//   - a flit-level virtual cut-through simulator with credit-based
//     flow control for message-delay and saturation-throughput studies
//     (FlitConfig, RunFlit, FlitSweep);
//   - traffic generators: permutations (random, shift, bit-complement,
//     bit-reversal, transpose, tornado), uniform and hotspot demands,
//     and the paper's Theorem 2 adversarial pattern (AdversarialDModK);
//   - an InfiniBand LID/forwarding-table model quantifying the address
//     budget that motivates limited multi-path routing (NewLIDPlan,
//     BuildFabric).
//
// A minimal session:
//
//	topo, _ := xgftsim.MPortNTree(8, 3)            // XGFT(3;4,4,8;1,4,4)
//	r := xgftsim.NewRouting(topo, xgftsim.Disjoint{}, 4, 0)
//	tm := xgftsim.FromPermutation(xgftsim.ShiftPermutation(topo.NumProcessors(), 1))
//	load := xgftsim.NewEvaluator(r).MaxLoad(tm)
//	ratio := load / xgftsim.OptimalLoad(topo, tm)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record; cmd/xgftpaper regenerates every table
// and figure.
package xgftsim
