package xgftsim_test

// One benchmark per table and figure of the paper plus the ablations
// in DESIGN.md, and micro-benchmarks for the hot paths. The artifact
// benchmarks regenerate their experiment at quick scale per iteration
// and report the headline number as a custom metric, so
//
//	go test -bench=Fig4a -benchtime=1x
//
// reproduces one artifact, and `go test -bench=. -benchmem` sweeps
// everything.

import (
	"math/rand"
	"testing"

	"xgftsim"
	"xgftsim/internal/core"
	"xgftsim/internal/experiments"
	"xgftsim/internal/flit"
	"xgftsim/internal/flow"
	"xgftsim/internal/lid"
	"xgftsim/internal/obs"
	"xgftsim/internal/stats"
	"xgftsim/internal/topology"
	"xgftsim/internal/traffic"
)

// benchScale is QuickScale further trimmed so a full -bench=. sweep
// stays in benchmark territory.
func benchScale() experiments.Scale {
	sc := experiments.QuickScale()
	sc.Sampling = stats.AdaptiveConfig{InitialSamples: 30, MaxSamples: 60, RelPrecision: 0.05}
	sc.FlitWarmup = 1500
	sc.FlitMeasure = 4000
	sc.Loads = []float64{0.4, 0.6, 0.8, 1.0}
	return sc
}

// lastColumnMean extracts a representative headline value (final row,
// final column — the strongest multi-path configuration).
func lastColumnMean(t *experiments.Table) float64 {
	row := t.Cells[len(t.Cells)-1]
	return row[len(row)-1].Mean
}

func benchFig4(b *testing.B, panel string, ks []int) {
	topo, err := experiments.Fig4Panel(panel)
	if err != nil {
		b.Fatal(err)
	}
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		tbl := experiments.Fig4Ks(topo, ks, sc, 2012)
		b.ReportMetric(lastColumnMean(tbl), "maxload@Kmax")
	}
}

// BenchmarkFig4a regenerates Figure 4(a): XGFT(2;8,16;1,8).
func BenchmarkFig4a(b *testing.B) { benchFig4(b, "a", []int{1, 2, 4, 8}) }

// BenchmarkFig4b regenerates Figure 4(b): XGFT(3;8,8,16;1,8,8).
func BenchmarkFig4b(b *testing.B) { benchFig4(b, "b", []int{1, 4, 16, 64}) }

// BenchmarkFig4c regenerates Figure 4(c): XGFT(2;12,24;1,12).
func BenchmarkFig4c(b *testing.B) { benchFig4(b, "c", []int{1, 3, 6, 12}) }

// BenchmarkFig4d regenerates Figure 4(d): XGFT(3;12,12,24;1,12,12),
// the TACC-Ranger-scale tree.
func BenchmarkFig4d(b *testing.B) { benchFig4(b, "d", []int{1, 4, 16, 144}) }

// BenchmarkFailureSweep regenerates one panel of the failure sweep:
// avg max link load vs failed cable fraction with repaired routing on
// XGFT(2;8,16;1,8).
func BenchmarkFailureSweep(b *testing.B) {
	topo, err := experiments.Fig4Panel("a")
	if err != nil {
		b.Fatal(err)
	}
	sc := benchScale()
	sc.FaultSeeds = 3
	sc.FaultFractions = []float64{0, 0.05, 0.10}
	for i := 0; i < b.N; i++ {
		tbl := experiments.FailureSweep(topo, sc, 2012)
		b.ReportMetric(lastColumnMean(tbl), "maxload:umulti@10%")
	}
}

// BenchmarkCompileRepaired measures the per-fault-placement degraded
// table build on the 3-level topology — since the delta-repair engine,
// that is an incremental patch against the sweep-shared base table
// (built once outside the loop, as flow.FailureBase amortizes it), not
// a whole-fabric recompile. The fault set fails 1% of cables, the
// low-failure regime the sweeps spend most placements in.
// BenchmarkCompileRepairedFull keeps the old full rebuild on the same
// fault set for comparison.
func BenchmarkCompileRepaired(b *testing.B) {
	t := benchTopo()
	r := core.NewRouting(t, core.Disjoint{}, 4, 0)
	base, err := core.CompileRouting(r, 0)
	if err != nil {
		b.Fatal(err)
	}
	d, err := core.NewDeltaRepairer(base)
	if err != nil {
		b.Fatal(err)
	}
	f, err := topology.RandomCableFaults(t, 7, t.NumCables()/100+1)
	if err != nil {
		b.Fatal(err)
	}
	rr, err := r.Repair(f)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := d.CompileRepairedDelta(rr)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(c.Bytes())
		b.ReportMetric(float64(c.PatchedPairs()), "patched-pairs")
	}
}

// BenchmarkCompileRepairedFull measures the whole-fabric repaired table
// build — every pair's policy-order liveness filtering plus the CSR
// compile — that CompileRepaired pays per fault placement without the
// delta engine.
func BenchmarkCompileRepairedFull(b *testing.B) {
	t := benchTopo()
	r := core.NewRouting(t, core.Disjoint{}, 4, 0)
	f, err := topology.RandomCableFaults(t, 7, t.NumCables()/100+1)
	if err != nil {
		b.Fatal(err)
	}
	rr, err := r.Repair(f)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, err := core.CompileRepaired(rr, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(c.Bytes())
	}
}

// BenchmarkDeltaRepairIndex measures the one-shot link→pairs reverse
// index build that a sweep amortizes across all its fault placements.
func BenchmarkDeltaRepairIndex(b *testing.B) {
	t := benchTopo()
	r := core.NewRouting(t, core.Disjoint{}, 4, 0)
	base, err := core.CompileRouting(r, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := core.NewDeltaRepairer(base)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(d.Bytes())
	}
}

// BenchmarkTable1 regenerates Table 1: flit-level saturation
// throughput on XGFT(3;4,4,8;1,4,4).
func BenchmarkTable1(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		tbl := experiments.Table1(sc)
		b.ReportMetric(lastColumnMean(tbl), "thr:disjoint@K=8")
	}
}

// BenchmarkAdaptiveK regenerates the output-selector head-to-head:
// oblivious-K vs adaptive-K vs full-adaptive saturation throughput on
// XGFT(2;8,16;1,8).
func BenchmarkAdaptiveK(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		tbl := experiments.AdaptiveK(sc)
		b.ReportMetric(tbl.Cells[0][1].Mean, "thr:adaptivek@uniform")
	}
}

// BenchmarkFig5 regenerates Figure 5: message delay vs offered load.
func BenchmarkFig5(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		tbl := experiments.Fig5(sc)
		b.ReportMetric(tbl.Cells[0][0].Mean, "dmodk-delay@minload")
	}
}

// BenchmarkTheorem1 verifies PERF(UMULTI)=1 over sampled demands.
func BenchmarkTheorem1(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		tbl := experiments.Theorem1(sc, 2012)
		worst := 0.0
		for _, row := range tbl.Cells {
			if row[0].Mean > worst {
				worst = row[0].Mean
			}
		}
		b.ReportMetric(worst, "worstPERF")
	}
}

// BenchmarkTheorem2 regenerates the adversarial worst-case table.
func BenchmarkTheorem2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := experiments.Theorem2()
		b.ReportMetric(tbl.Cells[len(tbl.Cells)-1][0].Mean, "dmodkPERF")
	}
}

// BenchmarkAblationTierBalance regenerates the per-tier load ablation
// behind the disjoint heuristic's design.
func BenchmarkAblationTierBalance(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		tbl := experiments.TierBalance(sc, 4, 2012)
		// Tier 1-2 up: shift-1 (column 0) vs disjoint (column 2).
		b.ReportMetric(tbl.Cells[1][0].Mean/tbl.Cells[1][2].Mean, "shift/disjoint@tier1")
	}
}

// BenchmarkAblationLIDBudget regenerates the address-budget table.
func BenchmarkAblationLIDBudget(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := experiments.LIDBudget()
		b.ReportMetric(float64(len(tbl.Cells)), "topologies")
	}
}

// BenchmarkAblationDiversity regenerates the LFT effective-diversity
// ablation.
func BenchmarkAblationDiversity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := experiments.EffectiveDiversity(4)
		b.ReportMetric(tbl.Cells[1][1].Mean, "disjoint@NCA2")
	}
}

// BenchmarkAblationWorkload regenerates the uniform-workload-reading
// sensitivity study (DESIGN.md §5).
func BenchmarkAblationWorkload(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		tbl := experiments.WorkloadSensitivity(sc)
		b.ReportMetric(tbl.Cells[len(tbl.Cells)-1][0].Mean, "disjoint8-fixed")
	}
}

// --- Micro-benchmarks for the hot paths -----------------------------

func benchTopo() *topology.Topology {
	return topology.MustNew(3, []int{4, 4, 8}, []int{1, 4, 4})
}

// BenchmarkPathSelection measures per-pair path-set computation.
func BenchmarkPathSelection(b *testing.B) {
	t := benchTopo()
	n := t.NumProcessors()
	rng := rand.New(rand.NewSource(1))
	for _, sel := range []core.Selector{core.DModK{}, core.Shift1{}, core.Disjoint{}, core.RandomK{}} {
		b.Run(sel.Name(), func(b *testing.B) {
			buf := make([]int, 0, 16)
			for i := 0; i < b.N; i++ {
				src := i % n
				dst := (i*31 + 7) % n
				if src == dst {
					dst = (dst + 1) % n
				}
				buf = sel.Select(t, src, dst, 4, rng, buf[:0])
			}
		})
	}
}

// BenchmarkPathLinks measures link realization of one path.
func BenchmarkPathLinks(b *testing.B) {
	t := benchTopo()
	n := t.NumProcessors()
	buf := make([]topology.LinkID, 0, 8)
	for i := 0; i < b.N; i++ {
		src := i % n
		dst := (i*31 + 7) % n
		if src == dst {
			dst = (dst + 1) % n
		}
		buf = core.PathLinksForIndex(t, src, dst, i%t.NumPathsBetween(src, dst), buf[:0])
	}
}

// BenchmarkFlowEvaluator measures a full permutation load evaluation.
func BenchmarkFlowEvaluator(b *testing.B) {
	t := benchTopo()
	ev := flow.NewEvaluator(core.NewRouting(t, core.Disjoint{}, 4, 0))
	tm := traffic.FromPermutation(traffic.RandomPermutation(t.NumProcessors(), rand.New(rand.NewSource(2))))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ev.MaxLoad(tm)
	}
}

// BenchmarkCompileRouting measures the one-shot CSR table build that
// Experiment.Run amortizes across all samples of a cell.
func BenchmarkCompileRouting(b *testing.B) {
	t := benchTopo()
	r := core.NewRouting(t, core.Disjoint{}, 4, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, err := core.CompileRouting(r, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(c.Bytes())
	}
}

// BenchmarkLoadsCompiled measures a full permutation load evaluation
// against the compiled CSR table; the steady state should be
// allocation-free.
func BenchmarkLoadsCompiled(b *testing.B) {
	t := benchTopo()
	r := core.NewRouting(t, core.Disjoint{}, 4, 0)
	c, err := core.CompileRouting(r, 0)
	if err != nil {
		b.Fatal(err)
	}
	ev := flow.NewCompiledEvaluator(c)
	tm := traffic.FromPermutation(traffic.RandomPermutation(t.NumProcessors(), rand.New(rand.NewSource(2))))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ev.MaxLoad(tm)
	}
}

// BenchmarkMultiKLoads measures one multi-K walk serving a whole K
// grid (here 5 columns) against the lazy routing — the hot path of the
// collapsed Fig4 cells. The steady state must be allocation-free.
func BenchmarkMultiKLoads(b *testing.B) {
	t := benchTopo()
	ks := []int{1, 2, 4, 8, 16}
	ev := flow.NewMultiKEvaluator(core.NewRouting(t, core.Disjoint{}, 16, 0), ks)
	tm := traffic.FromPermutation(traffic.RandomPermutation(t.NumProcessors(), rand.New(rand.NewSource(2))))
	out := make([]float64, len(ks))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.MaxLoads(tm, nil, out)
	}
	b.ReportMetric(float64(len(ks)), "K-columns")
}

// BenchmarkMultiKLoadsRandom is BenchmarkMultiKLoads for the random
// heuristic, whose per-pair draws dominate the lazy multi-K walk.
func BenchmarkMultiKLoadsRandom(b *testing.B) {
	t := benchTopo()
	ks := []int{1, 2, 4, 8, 16}
	ev := flow.NewMultiKEvaluator(core.NewRouting(t, core.RandomK{}, 16, 0), ks)
	tm := traffic.FromPermutation(traffic.RandomPermutation(t.NumProcessors(), rand.New(rand.NewSource(2))))
	out := make([]float64, len(ks))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.MaxLoads(tm, nil, out)
	}
}

// BenchmarkOptimalLoad measures the subtree-cut OLOAD computation.
func BenchmarkOptimalLoad(b *testing.B) {
	t := benchTopo()
	tm := traffic.FromPermutation(traffic.RandomPermutation(t.NumProcessors(), rand.New(rand.NewSource(3))))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = flow.OptimalLoad(t, tm)
	}
}

// BenchmarkFlitEngine measures simulated cycles per second of the
// flit-level simulator at a medium load.
func BenchmarkFlitEngine(b *testing.B) {
	t := benchTopo()
	pattern := traffic.NewPermutationPattern("bench",
		traffic.RandomDerangementish(t.NumProcessors(), rand.New(rand.NewSource(4))))
	cfg := flit.Config{
		Routing:       core.NewRouting(t, core.Disjoint{}, 4, 0),
		Pattern:       pattern,
		OfferedLoad:   0.6,
		WarmupCycles:  500,
		MeasureCycles: 2000,
		Seed:          5,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := flit.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(2500*float64(b.N)/b.Elapsed().Seconds(), "cycles/s")
}

// BenchmarkLFTBuild measures forwarding-table synthesis.
func BenchmarkLFTBuild(b *testing.B) {
	t := benchTopo()
	plan, err := lid.NewPlan(t, 4)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := lid.BuildFabric(plan, core.Disjoint{}, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPublicAPI exercises the facade the examples use, keeping it
// honest under load.
func BenchmarkPublicAPI(b *testing.B) {
	topo, err := xgftsim.MPortNTree(8, 2)
	if err != nil {
		b.Fatal(err)
	}
	r := xgftsim.NewRouting(topo, xgftsim.Disjoint{}, 2, 0)
	tm := xgftsim.FromPermutation(xgftsim.ShiftPermutation(topo.NumProcessors(), 3))
	ev := xgftsim.NewEvaluator(r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ev.MaxLoad(tm)
	}
}

// megaTopo is ~10x the paper's largest evaluated fabric: XGFT(3;
// 24,24,60;1,24,24) has 34560 processing nodes, far past what
// CompileRouting can hold under its default budget (the full table
// estimate is >100 GiB) — exactly the block-compiled regime.
func megaTopo() *topology.Topology {
	return topology.MustNew(3, []int{24, 24, 60}, []int{1, 24, 24})
}

// megaSegmentTM builds a fan-out demand from segment 0's sources to
// far destinations (NCA at the top level): every source in the segment
// sends to 64 spread-out targets, so block evaluation touches exactly
// one segment with enough pairs that the lazy/block comparison
// measures per-pair evaluation, not fixed per-walk overhead.
func megaSegmentTM(t *topology.Topology, bl *core.BlockCompiledRouting) *traffic.Matrix {
	n := t.NumProcessors()
	_, hi := bl.SegmentSpan(0)
	tm := traffic.NewMatrix(n)
	for src := 0; src < hi; src++ {
		for d := 0; d < 64; d++ {
			tm.Add(src, (src+n/2+d*37)%n, 1)
		}
	}
	return tm
}

// BenchmarkBlockCompiledLoads compares evaluating the same mega-fabric
// demand from a warm block-compiled segment versus lazily re-deriving
// each pair's paths — the per-sample cost gap that makes out-of-core
// sweeps affordable at 34560 endpoints.
func BenchmarkBlockCompiledLoads(b *testing.B) {
	t := megaTopo()
	for _, tc := range []struct {
		name string
		sel  core.Selector
	}{
		{"disjoint", core.Disjoint{}},
		{"random", core.RandomK{}},
	} {
		r := core.NewRouting(t, tc.sel, 4, 0)
		bl := core.NewBlockCompiledRouting(r, core.BlockOptions{})
		tm := megaSegmentTM(t, bl)
		b.Run(tc.name+"/block", func(b *testing.B) {
			ev := flow.NewBlockEvaluator(bl, []int{4})
			out := [][]float64{make([]float64, 1)}
			tms := []*traffic.Matrix{tm}
			// Warm once: segment 0 compiles and stays pooled, so
			// iterations measure evaluation, not the one-shot build.
			if err := ev.MaxLoadsBatch(tms, out); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := ev.MaxLoadsBatch(tms, out); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(tc.name+"/lazy", func(b *testing.B) {
			ev := flow.NewEvaluator(r)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = ev.MaxLoad(tm)
			}
		})
		bl.Close()
	}
}

// BenchmarkMegaFabricSweep runs the Fig4-style mega-fabric sweep end
// to end in block mode: 34560 endpoints, two permutation samples, two
// K columns, every segment streamed through a bounded pool. This is
// the acceptance artifact: the same sweep is impossible as one
// compiled table under the default budget.
func BenchmarkMegaFabricSweep(b *testing.B) {
	cfg := experiments.MegaConfig{
		Topo:     megaTopo(),
		Ks:       []int{1, 4},
		Samples:  2,
		PermSeed: 2012,
		Schemes:  []core.Selector{core.Disjoint{}},
	}
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.MegaFabricSweep(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastColumnMean(tbl), "maxload@Kmax")
	}
	// Peak resident segment bytes across the run, against the >100 GiB
	// full-table estimate — the out-of-core evidence.
	peak := obs.Default().Gauge("core.segment_live_bytes_peak").Value()
	b.ReportMetric(float64(peak), "segpeak_bytes")
}
