package experiments

import (
	"fmt"

	"xgftsim/internal/core"
	"xgftsim/internal/flit"
	"xgftsim/internal/stats"
)

// DelayCrossover tests the paper's finest-grained flit-level claim:
// "disjoint(2) has better delay than disjoint(8) at low load" while
// disjoint(8) wins at medium-to-high load, because more paths spread a
// message across more contention points but soften each one. The
// experiment measures mean message delay for disjoint(2) and
// disjoint(8) across the load grid (averaged over the scale's
// workload seeds) and reports the crossover load, if any, in the
// footnote.
func DelayCrossover(sc Scale) *Table {
	t := table1Topology()
	series := []int{2, 8}
	tbl := &Table{
		Title:   fmt.Sprintf("Extension: disjoint(2) vs disjoint(8) message delay (cycles), %s", t),
		XLabel:  "load",
		Columns: []string{"disjoint(2)", "disjoint(8)", "delta(2-8)"},
	}
	means := make([][]stats.Accumulator, len(sc.Loads))
	for i := range means {
		means[i] = make([]stats.Accumulator, len(series))
	}
	for s := 0; s < sc.FlitSeeds; s++ {
		pattern := flitWorkload(t, int64(s))
		for j, k := range series {
			base := flit.Config{
				Routing:       core.NewRouting(t, core.Disjoint{}, k, int64(s)),
				Pattern:       pattern,
				Seed:          int64(s),
				WarmupCycles:  sc.FlitWarmup,
				MeasureCycles: sc.FlitMeasure,
			}
			results, err := flit.Sweep(flit.SweepConfig{Base: base, Loads: sc.Loads})
			if err != nil {
				panic(err)
			}
			for i, r := range results {
				means[i][j].Add(r.AvgDelay)
			}
		}
	}
	crossover := -1.0
	prevSign := 0
	for i, l := range sc.Loads {
		d2, d8 := means[i][0].Mean(), means[i][1].Mean()
		sign := 0
		switch {
		case d2 < d8:
			sign = -1
		case d2 > d8:
			sign = 1
		}
		if prevSign < 0 && sign > 0 && crossover < 0 {
			crossover = l
		}
		prevSign = sign
		tbl.XValues = append(tbl.XValues, fmt.Sprintf("%.2f", l))
		tbl.Cells = append(tbl.Cells, []Cell{
			{Mean: d2, HalfWidth: ci95(means[i][0]), Samples: means[i][0].N()},
			{Mean: d8, HalfWidth: ci95(means[i][1]), Samples: means[i][1].N()},
			{Mean: d2 - d8, Samples: means[i][0].N()},
		})
	}
	if crossover > 0 {
		tbl.Footnote = fmt.Sprintf("disjoint(8) overtakes disjoint(2) at offered load ~%.2f", crossover)
	} else {
		tbl.Footnote = "no crossover observed on this grid (positive delta(2-8) means disjoint(8) is already ahead)"
	}
	return tbl
}
