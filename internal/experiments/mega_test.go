package experiments

import (
	"testing"

	"xgftsim/internal/core"
	"xgftsim/internal/flow"
	"xgftsim/internal/obs"
	"xgftsim/internal/stats"
	"xgftsim/internal/topology"
	"xgftsim/internal/traffic"
)

// TestMegaFabricSweepMatchesLazy pins the whole mega pipeline against
// a direct lazy recomputation: with one worker the sharded
// segment-ordered walk must reproduce per-sample lazy maxima bit for
// bit, so the table means and half-widths match exactly.
func TestMegaFabricSweepMatchesLazy(t *testing.T) {
	topo := topology.MustNew(3, []int{4, 4, 4}, []int{1, 4, 4})
	cfg := MegaConfig{
		Topo:         topo,
		Ks:           []int{1, 2, 4},
		Samples:      6,
		PermSeed:     17,
		Schemes:      []core.Selector{core.DModK{}, core.Disjoint{}},
		SegmentBytes: 32 << 10,
		Workers:      1,
	}
	tbl, err := MegaFabricSweep(cfg)
	if err != nil {
		t.Fatalf("MegaFabricSweep: %v", err)
	}
	if len(tbl.XValues) != len(cfg.Ks) || len(tbl.Columns) != len(cfg.Schemes) {
		t.Fatalf("table shape %dx%d, want %dx%d", len(tbl.XValues), len(tbl.Columns), len(cfg.Ks), len(cfg.Schemes))
	}

	n := topo.NumProcessors()
	tms := make([]*traffic.Matrix, cfg.Samples)
	for i := range tms {
		tms[i] = traffic.FromPermutation(traffic.RandomPermutation(n, stats.Stream(cfg.PermSeed, int64(i))))
	}
	for j, sel := range cfg.Schemes {
		for row, k := range cfg.Ks {
			ev := flow.NewEvaluator(core.NewRouting(topo, sel, k, 0))
			var acc stats.Accumulator
			for _, tm := range tms {
				acc.Add(ev.MaxLoad(tm))
			}
			cell := tbl.Cells[row][j]
			if cell.Mean != acc.Mean() {
				t.Fatalf("%s K=%d: mega mean %v != lazy %v", sel.Name(), k, cell.Mean, acc.Mean())
			}
			if cell.HalfWidth != acc.ConfidenceHalfWidth(0.99) {
				t.Fatalf("%s K=%d: mega half-width %v != lazy %v", sel.Name(), k, cell.HalfWidth, acc.ConfidenceHalfWidth(0.99))
			}
			if cell.Samples != cfg.Samples {
				t.Fatalf("%s K=%d: %d samples, want %d", sel.Name(), k, cell.Samples, cfg.Samples)
			}
		}
	}
}

// TestMegaFabricSweepParallelMatchesSequential checks shard-count
// invariance: the same config at higher worker counts produces the
// same table (shards merge by summation of disjoint segment ranges).
func TestMegaFabricSweepParallelMatchesSequential(t *testing.T) {
	topo := topology.MustNew(3, []int{4, 4, 4}, []int{1, 4, 4})
	base := MegaConfig{
		Topo:         topo,
		Ks:           []int{1, 4},
		Samples:      4,
		PermSeed:     23,
		Schemes:      []core.Selector{core.RandomK{}},
		RandSeeds:    []int64{101, 202},
		SegmentBytes: 32 << 10,
		Workers:      1,
	}
	seq, err := MegaFabricSweep(base)
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	par := base
	par.Workers = 4
	got, err := MegaFabricSweep(par)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	for r := range seq.Cells {
		for c := range seq.Cells[r] {
			if seq.Cells[r][c].Mean != got.Cells[r][c].Mean {
				t.Fatalf("cell (%d,%d): parallel %v != sequential %v", r, c, got.Cells[r][c].Mean, seq.Cells[r][c].Mean)
			}
		}
	}
}

// TestMegaQuickScaleWithCache runs the quick-scale mega experiment
// twice against one cache directory: identical tables, and the second
// run must hit the segment cache.
func TestMegaQuickScaleWithCache(t *testing.T) {
	topt := TableOptions{CacheDir: t.TempDir(), SegmentBytes: 64 << 10}
	sc := QuickScale()
	sc.Workers = 2
	cold, err := Mega(sc, 2012, topt)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	hits := obs.Default().Counter("core.segments_cache_hit")
	before := hits.Value()
	warm, err := Mega(sc, 2012, topt)
	if err != nil {
		t.Fatalf("warm run: %v", err)
	}
	if hits.Value() == before {
		t.Fatalf("warm mega run hit the segment cache zero times")
	}
	for r := range cold.Cells {
		for c := range cold.Cells[r] {
			if cold.Cells[r][c] != warm.Cells[r][c] {
				t.Fatalf("cell (%d,%d) changed across cache reuse: %+v vs %+v", r, c, cold.Cells[r][c], warm.Cells[r][c])
			}
		}
	}
}
