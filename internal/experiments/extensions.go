package experiments

import (
	"fmt"

	"xgftsim/internal/adversary"
	"xgftsim/internal/core"
	"xgftsim/internal/flit"
	"xgftsim/internal/flow"
	"xgftsim/internal/topology"
	"xgftsim/internal/traffic"
)

// AdaptiveComparison extends the paper's related-work discussion
// (Gomez et al., "Deterministic versus Adaptive Routing in Fat-trees"):
// maximum flit-level throughput of minimal adaptive routing against
// the oblivious schemes at increasing K, on the Table 1 topology and
// workload.
func AdaptiveComparison(sc Scale) *Table {
	t := table1Topology()
	tbl := &Table{
		Title:   fmt.Sprintf("Extension: oblivious limited multi-path vs minimal adaptive routing, %s", t),
		XLabel:  "routing",
		Columns: []string{"max throughput"},
	}
	type cfg struct {
		name     string
		sel      core.Selector
		k        int
		adaptive bool
	}
	rows := []cfg{
		{"d-mod-k", core.DModK{}, 1, false},
		{"disjoint(2)", core.Disjoint{}, 2, false},
		{"disjoint(8)", core.Disjoint{}, 8, false},
		{"umulti(16)", core.UMulti{}, 0, false},
		{"adaptive", core.DModK{}, 1, true},
	}
	for _, c := range rows {
		var acc Cell
		var sum float64
		for s := 0; s < sc.FlitSeeds; s++ {
			base := flit.Config{
				Routing:       core.NewRouting(t, c.sel, c.k, int64(s)),
				Pattern:       flitWorkload(t, int64(s)),
				Seed:          int64(s),
				WarmupCycles:  sc.FlitWarmup,
				MeasureCycles: sc.FlitMeasure,
				Adaptive:      c.adaptive,
			}
			results, err := flit.Sweep(flit.SweepConfig{Base: base, Loads: sc.Loads})
			if err != nil {
				panic(err)
			}
			sum += flit.MaxThroughput(results)
		}
		acc = Cell{Mean: sum / float64(sc.FlitSeeds), Samples: sc.FlitSeeds}
		tbl.XValues = append(tbl.XValues, c.name)
		tbl.Cells = append(tbl.Cells, []Cell{acc})
	}
	tbl.Footnote = "adaptive = least-occupied upward output per hop; oblivious rows use the paper's heuristics"
	return tbl
}

// AllToAllShift evaluates the workload behind Zahavi et al.'s
// optimized fat-tree routing (the paper's reference for d-mod-k's
// strength): the worst per-phase maximum link load over all n-1 shift
// permutations. d-mod-k is provably optimal on shifts; the study
// verifies the heuristics preserve that as K grows. Like Fig4Ks, the
// K grid is clamped/deduped per topology and each multipath scheme
// walks every shift once through a flow.MultiKEvaluator serving all
// effective K columns; single-path schemes are measured once and
// replicated.
func AllToAllShift(t *topology.Topology, ks []int) *Table {
	schemes := fig4Schemes()
	tbl := &Table{
		Title:   fmt.Sprintf("Extension: worst max link load over all shift permutations, %s", t),
		XLabel:  "K",
		Columns: make([]string, len(schemes)),
	}
	for j, s := range schemes {
		tbl.Columns[j] = s.Name()
	}
	n := t.NumProcessors()
	eff, rowOf := effectiveKs(t, ks)
	worst := make([][]float64, len(schemes)) // [col][effective-K index]
	for j, sel := range schemes {
		worst[j] = make([]float64, len(eff))
		if !sel.MultiPath() {
			ev := flow.NewEvaluator(core.NewRouting(t, sel, 1, 1))
			w := 0.0
			for s := 1; s < n; s++ {
				tm := traffic.FromPermutation(traffic.ShiftPermutation(n, s))
				if load := ev.MaxLoad(tm); load > w {
					w = load
				}
			}
			for r := range eff {
				worst[j][r] = w
			}
			continue
		}
		ev := flow.NewMultiKEvaluator(core.NewRouting(t, sel, eff[len(eff)-1], 1), eff)
		out := make([]float64, len(eff))
		for s := 1; s < n; s++ {
			tm := traffic.FromPermutation(traffic.ShiftPermutation(n, s))
			ev.MaxLoads(tm, nil, out)
			for r, load := range out {
				if load > worst[j][r] {
					worst[j][r] = load
				}
			}
		}
	}
	for i, k := range ks {
		row := make([]Cell, len(schemes))
		for j := range schemes {
			row[j] = Cell{Mean: worst[j][rowOf[i]], Samples: n - 1}
		}
		tbl.XValues = append(tbl.XValues, fmt.Sprintf("%d", k))
		tbl.Cells = append(tbl.Cells, row)
	}
	tbl.Footnote = "d-mod-k achieves the optimal load 1 on every shift; multi-path heuristics must not regress it"
	return tbl
}

// WorstCaseSearch runs the adversarial permutation search of
// internal/adversary for each scheme and K on a moderate tree,
// lower-bounding the oblivious performance ratios that Figure 4's
// averages do not expose.
func WorstCaseSearch(t *topology.Topology, ks []int, searchCfg adversary.Config) *Table {
	schemes := fig4Schemes()
	tbl := &Table{
		Title:   fmt.Sprintf("Extension: worst-case permutation performance ratio (annealing search), %s", t),
		XLabel:  "K",
		Columns: make([]string, len(schemes)),
	}
	for j, s := range schemes {
		tbl.Columns[j] = s.Name()
	}
	for _, k := range ks {
		row := make([]Cell, len(schemes))
		for j, sel := range schemes {
			kEff := k
			if !sel.MultiPath() {
				kEff = 1
			}
			res := adversary.WorstPermutation(core.NewRouting(t, sel, kEff, 1), searchCfg)
			row[j] = Cell{Mean: res.Ratio, Samples: res.Evaluations}
		}
		tbl.XValues = append(tbl.XValues, fmt.Sprintf("%d", k))
		tbl.Cells = append(tbl.Cells, row)
	}
	tbl.Footnote = "lower bounds on the oblivious ratio; UMULTI's exact value is 1 (Theorem 1)"
	return tbl
}
