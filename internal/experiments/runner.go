package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"xgftsim/internal/obs"
)

// Shared cell-scheduler metrics: how many grid cells ran, how long each
// took, and the concurrency the scheduler actually achieved (the
// occupancy high-water mark versus the configured worker bound). One
// histogram observation and a couple of atomic updates per cell —
// cells run for milliseconds to minutes, so the overhead is noise.
var met = struct {
	cellsDone    *obs.Counter
	cellsRunning *obs.Gauge
	occupancyMax *obs.Gauge
	cellSeconds  *obs.Histogram
}{
	cellsDone:    obs.Default().Counter("experiments.cells_done"),
	cellsRunning: obs.Default().Gauge("experiments.cells_running"),
	occupancyMax: obs.Default().Gauge("experiments.worker_occupancy_max"),
	cellSeconds:  obs.Default().Histogram("experiments.cell_seconds", []float64{0.001, 0.01, 0.1, 0.5, 1, 2, 5, 10, 30, 60, 120, 300, 600}),
}

// observeCell wraps one cell execution with the scheduler metrics; the
// deferred half runs even when the cell panics, so occupancy cannot
// leak upward across a failed sweep.
func observeCell(run func(i int), i int) {
	start := time.Now()
	met.occupancyMax.SetMax(met.cellsRunning.Add(1))
	defer func() {
		met.cellsRunning.Add(-1)
		met.cellsDone.Inc()
		met.cellSeconds.Observe(time.Since(start).Seconds())
	}()
	run(i)
}

// CellPanic wraps a panic raised inside a grid cell with the cell's
// index and the goroutine stack captured at the panic site, so a
// failed sweep can be traced back to its (topology, scheme, K, ...)
// coordinates instead of surfacing as a bare value with the
// runner's stack.
type CellPanic struct {
	Cell  int
	Value any
	Stack []byte
}

func (p *CellPanic) Error() string {
	if p.Cell < 0 {
		return fmt.Sprintf("experiments: %v", p.Value)
	}
	return fmt.Sprintf("experiments: cell %d panicked: %v\n\ncell goroutine stack:\n%s", p.Cell, p.Value, p.Stack)
}

// Unwrap exposes a panic value that is itself an error (notably
// ErrInterrupted), so errors.Is sees through the CellPanic wrapper and
// any fmt %w wrapping the CLIs add on top.
func (p *CellPanic) Unwrap() error {
	if err, ok := p.Value.(error); ok {
		return err
	}
	return nil
}

// ErrInterrupted is the value runCells panics with (wrapped in a
// *CellPanic with Cell -1) when its context is cancelled before every
// cell has run. CLIs match it with errors.Is and translate it to their
// manifest's interrupted status (cliutil.ErrInterrupted) — the
// packages stay decoupled because cliutil already depends on
// experiments for the table flags.
var ErrInterrupted = errors.New("sweep interrupted before all cells ran")

// runCells executes run(0..n-1) with at most `workers` concurrent
// goroutines (0 or less means GOMAXPROCS). Cells are independent
// (topology, scheme, K) measurements whose values are deterministic in
// their inputs, and every cell writes to its own slot, so results are
// identical to the sequential order regardless of scheduling. A panic
// in any cell is re-raised in the caller after all cells finish,
// wrapped in a *CellPanic carrying the cell index and its stack.
//
// A nil ctx means run to completion. When ctx is cancelled, no new
// cells are scheduled; cells already running finish (they are not
// preempted — a cell is the unit of abandonable work), and runCells
// panics with ErrInterrupted wrapped in a *CellPanic unless a cell
// panic occurred first (the cell's own failure is the more useful
// report).
func runCells(ctx context.Context, n, workers int, run func(i int)) {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				panic(&CellPanic{Cell: -1, Value: ErrInterrupted})
			}
			runCell(i, run)
		}
		return
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		first *CellPanic
		ran   atomic.Int64
	)
	sem := make(chan struct{}, workers)
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() {
				<-sem
				if p := recover(); p != nil {
					cp := asCellPanic(i, p)
					mu.Lock()
					if first == nil {
						first = cp
					}
					mu.Unlock()
				}
			}()
			if ctx.Err() != nil {
				return // cancelled while queued behind the semaphore
			}
			ran.Add(1)
			observeCell(run, i)
		}(i)
	}
	wg.Wait()
	if first != nil {
		panic(first)
	}
	if int(ran.Load()) < n {
		panic(&CellPanic{Cell: -1, Value: ErrInterrupted})
	}
}

// runCell is the sequential path, with the same panic wrapping as the
// parallel one.
func runCell(i int, run func(i int)) {
	defer func() {
		if p := recover(); p != nil {
			panic(asCellPanic(i, p))
		}
	}()
	observeCell(run, i)
}

// asCellPanic wraps a recovered value, preserving an existing
// CellPanic from a nested grid (the inner coordinates are the useful
// ones).
func asCellPanic(i int, p any) *CellPanic {
	if cp, ok := p.(*CellPanic); ok {
		return cp
	}
	return &CellPanic{Cell: i, Value: p, Stack: debug.Stack()}
}
