package experiments

import (
	"runtime"
	"sync"
)

// runCells executes run(0..n-1) with at most `workers` concurrent
// goroutines (0 or less means GOMAXPROCS). Cells are independent
// (topology, scheme, K) measurements whose values are deterministic in
// their inputs, and every cell writes to its own slot, so results are
// identical to the sequential order regardless of scheduling. A panic
// in any cell is re-raised in the caller after all cells finish.
func runCells(n, workers int, run func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			run(i)
		}
		return
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		first any
	)
	sem := make(chan struct{}, workers)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() {
				<-sem
				if p := recover(); p != nil {
					mu.Lock()
					if first == nil {
						first = p
					}
					mu.Unlock()
				}
			}()
			run(i)
		}(i)
	}
	wg.Wait()
	if first != nil {
		panic(first)
	}
}
