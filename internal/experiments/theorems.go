package experiments

import (
	"fmt"

	"xgftsim/internal/core"
	"xgftsim/internal/flow"
	"xgftsim/internal/stats"
	"xgftsim/internal/topology"
	"xgftsim/internal/traffic"
)

// Theorem1 verifies PERF(UMULTI) = 1 empirically: the worst observed
// performance ratio of unlimited multi-path routing over many sampled
// traffic matrices on each paper topology. Every cell should be 1.
func Theorem1(sc Scale, seed int64) *Table {
	tbl := &Table{
		Title:   "Theorem 1: oblivious performance ratio of UMULTI (worst sampled ratio; theory: exactly 1)",
		XLabel:  "topology",
		Columns: []string{"worst PERF", "traffic matrices"},
	}
	samples := sc.Sampling.InitialSamples
	if samples < 20 {
		samples = 20
	}
	for _, name := range topology.PaperTopologies() {
		t, err := topology.FromPaper(name)
		if err != nil {
			panic(err)
		}
		if t.NumProcessors() > 1200 {
			continue // keep the verification sweep snappy
		}
		r := core.NewRouting(t, core.UMulti{}, 0, 0)
		ev := flow.NewEvaluator(r) // resident scratch across samples
		worst := 0.0
		n := t.NumProcessors()
		for i := 0; i < samples; i++ {
			rng := stats.Stream(seed, int64(i))
			tm := traffic.FromPermutation(traffic.RandomPermutation(n, rng))
			if tm.NumFlows() == 0 {
				continue
			}
			if ratio := ev.PerformanceRatio(tm); ratio > worst {
				worst = ratio
			}
		}
		tbl.XValues = append(tbl.XValues, string(name))
		tbl.Cells = append(tbl.Cells, []Cell{
			{Mean: worst, Samples: samples},
			{Mean: float64(samples), Samples: samples},
		})
	}
	return tbl
}

// Theorem2 constructs the adversarial pattern on trees satisfying the
// theorem's conditions and reports the realized performance ratio of
// d-mod-k against the Π w_i bound, and how limited multi-path routing
// dissolves the worst case as K grows.
func Theorem2() *Table {
	trees := []*topology.Topology{
		topology.MustNew(2, []int{2, 16}, []int{1, 2}),
		topology.MustNew(2, []int{4, 32}, []int{1, 4}),
		topology.MustNew(2, []int{8, 64}, []int{1, 8}),
		topology.MustNew(3, []int{2, 4, 32}, []int{1, 2, 4}),
	}
	tbl := &Table{
		Title:   "Theorem 2: PERF(d-mod-k) on the adversarial pattern (predicted: M / max_k cut_k; theorem max: Πw)",
		XLabel:  "topology",
		Columns: []string{"PERF d-mod-k", "predicted", "Πw", "PERF disjoint K=2", "PERF disjoint K=4", "PERF UMULTI"},
	}
	for _, t := range trees {
		tm, err := traffic.AdversarialDModK(t)
		if err != nil {
			panic(fmt.Sprintf("experiments: %s: %v", t, err))
		}
		ratio := func(sel core.Selector, k int) float64 {
			return flow.PerformanceRatio(core.NewRouting(t, sel, k, 0), tm)
		}
		// All M = Π_{i<h} m_i flows concentrate on one link under
		// d-mod-k, so MLOAD = M; OLOAD is the tightest subtree cut the
		// pattern saturates: max_k Π_{i<=k} m_i / Π_{i<=k+1} w_i.
		m := t.ProcessorsPerSubtree(t.H() - 1)
		oload := 0.0
		for k := 0; k < t.H(); k++ {
			if v := float64(t.ProcessorsPerSubtree(k)) / float64(t.TL(k)); v > oload {
				oload = v
			}
		}
		tbl.XValues = append(tbl.XValues, t.String())
		tbl.Cells = append(tbl.Cells, []Cell{
			{Mean: ratio(core.DModK{}, 1), Samples: 1},
			{Mean: float64(m) / oload, Samples: 1},
			{Mean: float64(t.WProd(t.H())), Samples: 1},
			{Mean: ratio(core.Disjoint{}, 2), Samples: 1},
			{Mean: ratio(core.Disjoint{}, 4), Samples: 1},
			{Mean: ratio(core.UMulti{}, 0), Samples: 1},
		})
	}
	tbl.Footnote = "each row uses the Theorem 2 traffic: one unit from every node of the first subtree to an aligned far destination"
	return tbl
}
