package experiments

import (
	"context"
	"fmt"
	"runtime"

	"xgftsim/internal/core"
	"xgftsim/internal/flow"
	"xgftsim/internal/stats"
	"xgftsim/internal/topology"
	"xgftsim/internal/traffic"
)

// TableOptions carries the routing-table policy from the CLI into the
// experiments that can run out-of-core: an optional on-disk segment
// cache, the resident-memory budget, and the segment granularity.
type TableOptions struct {
	// CacheDir, when non-empty, persists compiled segments for reuse
	// across runs.
	CacheDir string
	// CacheMaxBytes caps the segment cache's on-disk footprint (oldest
	// records evicted on write); 0 means unbounded.
	CacheMaxBytes int64
	// Budget caps resident table bytes; 0 means core.DefaultTableBudget.
	Budget int64
	// SegmentBytes overrides the experiment's segment size when > 0.
	SegmentBytes int64
	// Prefetch enables the async segment compile pipeline at the given
	// depth; 0 disables it.
	Prefetch int
	// SegmentDelta compiles delta-compatible schemes of a multi-scheme
	// sweep as patches against the first compatible scheme's table,
	// in memory and in the segment cache.
	SegmentDelta bool
}

// MegaConfig describes a mega-fabric Figure-4-style sweep: average
// maximum link load of random permutations versus K, on a fabric too
// large to compile in full, evaluated with block-compiled tables.
type MegaConfig struct {
	Topo *topology.Topology
	// Ks is the requested K grid (clamped/deduped via effectiveKs).
	Ks []int
	// Samples is the fixed permutation count per cell. Mega sweeps use a
	// fixed sample budget instead of the adaptive protocol: each sample
	// costs a full segment-ordered table walk, so the budget — not a
	// convergence test — is the binding constraint, and the reported
	// half-widths state the precision the budget bought.
	Samples int
	// PermSeed salts the permutation streams (sample i is
	// stats.Stream(PermSeed, i), exactly like flow.Experiment).
	PermSeed int64
	// Schemes defaults to the four Figure 4 series.
	Schemes []core.Selector
	// RandSeeds drive randomized selectors; default {101, 202}. A mega
	// deviation from the paper's five seeds: each seed is a separate
	// block-compiled table, and two seeds bound the table-build cost
	// while still averaging out selector randomness.
	RandSeeds []int64
	// SegmentBytes is the compiled size of one source-block segment;
	// 0 means core.DefaultSegmentBytes.
	SegmentBytes int64
	// TableBudget caps resident segment bytes per table; 0 means
	// core.DefaultTableBudget.
	TableBudget int64
	// CacheDir optionally persists compiled segments across runs.
	CacheDir string
	// CacheMaxBytes caps the segment cache's on-disk footprint; 0 means
	// unbounded.
	CacheMaxBytes int64
	// Workers bounds shard parallelism; 0 means GOMAXPROCS. Shards
	// split the segment range, so Workers=1 degenerates to the exact
	// sequential walk (bit-identical to lazy evaluation).
	Workers int
	// EvalBytes bounds total evaluator row memory across shards, which
	// sets how many samples share one table walk; 0 means 512 MiB.
	EvalBytes int64
	// Prefetch enables the async compile pipeline at the given depth
	// (see core.BlockOptions.Prefetch); 0 disables it.
	Prefetch int
	// SegmentDelta compiles each unit whose scheme is delta-compatible
	// with an earlier unit's as a delta against that table (see
	// core.BlockOptions.DeltaBase): the base compiles once, variants
	// copy its shared levels and cache only changed rows. Base tables
	// stay open for the rest of the sweep instead of closing with their
	// unit.
	SegmentDelta bool
	// Ctx cancels the sweep between shard cells (see Scale.Ctx).
	Ctx context.Context
}

// megaUnit is one (scheme, seed) measurement: a block-compiled table
// walked by sharded evaluators over the common permutation stream.
type megaUnit struct {
	scheme int
	seed   int64
}

// MegaFabricSweep runs the mega-fabric sweep. Units — one per (scheme,
// seed) — run sequentially so only one block table is live at a time;
// within a unit, shards own disjoint segment ranges of every walk and
// parallelize across Workers. Per-sample values average over each
// scheme's seeds in seed order, matching flow.Experiment.
func MegaFabricSweep(cfg MegaConfig) (*Table, error) {
	t := cfg.Topo
	if t == nil {
		return nil, fmt.Errorf("experiments: mega sweep needs a topology")
	}
	if cfg.Samples < 1 {
		return nil, fmt.Errorf("experiments: mega sweep needs Samples >= 1, got %d", cfg.Samples)
	}
	schemes := cfg.Schemes
	if len(schemes) == 0 {
		schemes = fig4Schemes()
	}
	randSeeds := cfg.RandSeeds
	if len(randSeeds) == 0 {
		randSeeds = []int64{101, 202}
	}
	eff, rowOf := effectiveKs(t, cfg.Ks)
	nK := len(eff)
	kmax := eff[nK-1]

	var cache *core.SegmentCache
	if cfg.CacheDir != "" {
		var err error
		if cache, err = core.OpenSegmentCache(cfg.CacheDir); err != nil {
			return nil, err
		}
		cache.SetMaxBytes(cfg.CacheMaxBytes)
	}
	evalBytes := cfg.EvalBytes
	if evalBytes <= 0 {
		evalBytes = 512 << 20
	}

	var units []megaUnit
	seedsOf := make([][]int64, len(schemes))
	for j, sel := range schemes {
		seedsOf[j] = []int64{0}
		if !deterministicSelector(sel) {
			seedsOf[j] = randSeeds
		}
		for _, s := range seedsOf[j] {
			units = append(units, megaUnit{scheme: j, seed: s})
		}
	}

	// results[u][i][j]: unit u, sample i, effective-K column j. Units
	// still run one at a time; with SegmentDelta, the first table of
	// each delta-compatible group additionally stays open as the base
	// later units patch against, so only base tables accumulate.
	results := make([][][]float64, len(units))
	var bases []*core.BlockCompiledRouting
	defer func() {
		for _, b := range bases {
			b.Close()
		}
	}()
	for u, unit := range units {
		r := core.NewRouting(t, schemes[unit.scheme], kmax, unit.seed)
		opts := core.BlockOptions{
			SegmentBytes:  cfg.SegmentBytes,
			ResidentBytes: cfg.TableBudget,
			Cache:         cache,
			Prefetch:      cfg.Prefetch,
		}
		if cfg.SegmentDelta {
			for _, cand := range bases {
				if _, ok := core.DeltaSharedLevels(cand.Routing(), r); ok {
					opts.DeltaBase = cand
					break
				}
			}
		}
		b := core.NewBlockCompiledRouting(r, opts)
		isBase := cfg.SegmentDelta && opts.DeltaBase == nil
		if isBase {
			bases = append(bases, b)
		}
		vals, err := runMegaUnit(cfg, b, eff, evalBytes)
		if !isBase {
			b.Close()
		}
		if err != nil {
			return nil, fmt.Errorf("experiments: mega unit %s seed %d: %w", schemes[unit.scheme].Name(), unit.seed, err)
		}
		results[u] = vals
	}

	// Fold per-unit samples into per-scheme accumulators: sample i's
	// value is the seed average, added in sample order.
	accs := make([][]stats.Accumulator, len(schemes))
	for j := range schemes {
		accs[j] = make([]stats.Accumulator, nK)
		var mine []int
		for u, unit := range units {
			if unit.scheme == j {
				mine = append(mine, u)
			}
		}
		for i := 0; i < cfg.Samples; i++ {
			for c := 0; c < nK; c++ {
				sum := 0.0
				for _, u := range mine {
					sum += results[u][i][c]
				}
				accs[j][c].Add(sum / float64(len(mine)))
			}
		}
	}

	tbl := &Table{
		Title:   fmt.Sprintf("Mega-fabric sweep: average maximum link load vs paths, %s (%d endpoints, block-compiled tables)", t, t.NumProcessors()),
		XLabel:  "K",
		Columns: make([]string, len(schemes)),
	}
	for j, s := range schemes {
		tbl.Columns[j] = s.Name()
	}
	for i, k := range cfg.Ks {
		row := make([]Cell, len(schemes))
		for j := range schemes {
			a := &accs[j][rowOf[i]]
			row[j] = Cell{Mean: a.Mean(), HalfWidth: a.ConfidenceHalfWidth(0.99), Samples: a.N()}
		}
		tbl.XValues = append(tbl.XValues, fmt.Sprintf("%d", k))
		tbl.Cells = append(tbl.Cells, row)
	}
	tbl.Footnote = fmt.Sprintf("fixed %d permutations/cell, 99%% CI half-widths; out-of-core block tables (segments ≈ %s)",
		cfg.Samples, byteSize(segBytesOf(cfg)))
	return tbl, nil
}

func segBytesOf(cfg MegaConfig) int64 {
	if cfg.SegmentBytes > 0 {
		return cfg.SegmentBytes
	}
	return core.DefaultSegmentBytes
}

// deterministicSelector mirrors flow's seed-defaulting rule.
func deterministicSelector(sel core.Selector) bool {
	switch sel.(type) {
	case core.DModK, core.SModK, core.Shift1, core.Disjoint, core.UMulti:
		return true
	}
	return false
}

// runMegaUnit measures one (scheme, seed) over its prepared block
// table: Samples permutations × the effective K grid, returning
// vals[i][j]. Samples are processed in rounds sized so evaluator row
// memory stays under evalBytes; each round is one sharded
// segment-ordered walk of the whole batch, so a segment is compiled
// (or mapped) once per round per shard. The caller owns b's lifetime
// (delta base tables outlive their unit).
func runMegaUnit(cfg MegaConfig, b *core.BlockCompiledRouting, eff []int, evalBytes int64) ([][]float64, error) {
	t := cfg.Topo
	shards := cfg.Workers
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards > b.NumSegments() {
		shards = b.NumSegments()
	}
	evals := make([]*flow.BlockEvaluator, shards)
	for i := range evals {
		evals[i] = flow.NewBlockEvaluator(b, eff)
	}
	nK := len(eff)
	n := t.NumProcessors()
	numLinks := t.NumLinks()

	round := int(evalBytes / (8 * int64(numLinks) * int64(nK) * int64(shards)))
	if round < 1 {
		round = 1
	}
	if round > cfg.Samples {
		round = cfg.Samples
	}

	vals := make([][]float64, cfg.Samples)
	for i := range vals {
		vals[i] = make([]float64, nK)
	}
	tms := make([]*traffic.Matrix, 0, round)
	scratch := make([]float64, numLinks)
	var union []int32
	errs := make([]error, shards)
	for s0 := 0; s0 < cfg.Samples; s0 += round {
		s1 := s0 + round
		if s1 > cfg.Samples {
			s1 = cfg.Samples
		}
		tms = tms[:0]
		for i := s0; i < s1; i++ {
			rng := stats.Stream(cfg.PermSeed, int64(i))
			tms = append(tms, traffic.FromPermutation(traffic.RandomPermutation(n, rng)))
		}
		nSeg := b.NumSegments()
		runCells(cfg.Ctx, shards, cfg.Workers, func(i int) {
			g0 := i * nSeg / shards
			g1 := (i + 1) * nSeg / shards
			errs[i] = evals[i].AccumulateSegments(tms, g0, g1)
		})
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		// Merge shard rows: sum per link (one shard per segment range,
		// so with a single shard the sum is the row verbatim), then max.
		for s := 0; s < len(tms); s++ {
			for j := 0; j < nK; j++ {
				union = union[:0]
				for _, e := range evals {
					row := e.Row(s, j)
					for _, l := range e.RowTouched(s, j) {
						if scratch[l] == 0 {
							union = append(union, l)
						}
						scratch[l] += row[l]
					}
				}
				mx := 0.0
				for _, l := range union {
					if v := scratch[l]; v > mx {
						mx = v
					}
					scratch[l] = 0
				}
				vals[s0+s][j] = mx
			}
		}
	}
	return vals, nil
}

// Mega runs the mega-fabric sweep at one of the named scales. The
// quick scale is a smoke test on a small fabric with deliberately tiny
// segments (forcing many blocks through the same machinery); paper and
// full grow the fabric past what CompileRouting's default budget can
// hold — full is ~10× the paper's largest evaluated topology.
func Mega(sc Scale, seed int64, topt TableOptions) (*Table, error) {
	cfg := MegaConfig{
		PermSeed:      seed,
		Workers:       sc.Workers,
		CacheDir:      topt.CacheDir,
		CacheMaxBytes: topt.CacheMaxBytes,
		TableBudget:   topt.Budget,
		SegmentBytes:  topt.SegmentBytes,
		Prefetch:      topt.Prefetch,
		SegmentDelta:  topt.SegmentDelta,
	}
	switch sc.Name {
	case "quick", "":
		cfg.Topo = topology.MustNew(3, []int{8, 8, 8}, []int{1, 8, 8})
		cfg.Ks = []int{1, 2, 4}
		cfg.Samples = 8
		// Shift-1 and disjoint are delta-compatible (equal per-level path
		// counts), so the quick scale exercises the delta path whenever
		// -segment-delta is on; d-mod-k (single-path) stands alone.
		cfg.Schemes = []core.Selector{core.DModK{}, core.Shift1{}, core.Disjoint{}}
		if cfg.SegmentBytes <= 0 {
			cfg.SegmentBytes = 256 << 10
		}
	case "paper":
		cfg.Topo = topology.MustNew(3, []int{12, 24, 24}, []int{1, 12, 12})
		cfg.Ks = []int{1, 4, 16}
		cfg.Samples = 16
		if cfg.SegmentBytes <= 0 {
			cfg.SegmentBytes = 16 << 20
		}
	case "full":
		cfg.Topo = topology.MustNew(3, []int{24, 24, 60}, []int{1, 24, 24})
		cfg.Ks = []int{1, 4}
		cfg.Samples = 16
		if cfg.SegmentBytes <= 0 {
			cfg.SegmentBytes = 64 << 20
		}
	default:
		return nil, fmt.Errorf("experiments: mega sweep has no %q scale", sc.Name)
	}
	return MegaFabricSweep(cfg)
}

// byteSize renders a byte count in the closest binary unit.
func byteSize(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.3g GiB", float64(b)/float64(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.3g MiB", float64(b)/float64(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.3g KiB", float64(b)/float64(1<<10))
	}
	return fmt.Sprintf("%d B", b)
}
