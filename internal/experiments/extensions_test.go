package experiments

import (
	"testing"

	"xgftsim/internal/adversary"
	"xgftsim/internal/topology"
)

func TestAllToAllShiftOptimality(t *testing.T) {
	tp := topology.MustNew(3, []int{4, 4, 8}, []int{1, 4, 4})
	tbl := AllToAllShift(tp, []int{1, 2, 4, 16})
	col := func(name string) int {
		for j, c := range tbl.Columns {
			if c == name {
				return j
			}
		}
		t.Fatalf("column %s missing", name)
		return -1
	}
	dmodk, disjoint, shift := col("d-mod-k"), col("disjoint"), col("shift-1")
	for i := range tbl.Cells {
		// d-mod-k is provably optimal on shifts (Zahavi et al.), and
		// the disjoint heuristic must preserve that at every K.
		if tbl.Cells[i][dmodk].Mean != 1 {
			t.Errorf("row %s: d-mod-k worst shift load %g", tbl.XValues[i], tbl.Cells[i][dmodk].Mean)
		}
		if tbl.Cells[i][disjoint].Mean != 1 {
			t.Errorf("row %s: disjoint worst shift load %g", tbl.XValues[i], tbl.Cells[i][disjoint].Mean)
		}
	}
	// shift-1 temporarily regresses the all-to-all optimality at
	// intermediate K (its fractional top-level spreading misaligns),
	// which is exactly the lower-tier weakness the paper describes.
	if tbl.Cells[1][shift].Mean <= 1 {
		t.Errorf("expected shift-1 to regress at K=2, got %g", tbl.Cells[1][shift].Mean)
	}
	// At K = max paths every heuristic is UMULTI and optimal again.
	last := len(tbl.Cells) - 1
	for j := range tbl.Columns {
		if tbl.Cells[last][j].Mean != 1 {
			t.Errorf("%s at K=max: %g", tbl.Columns[j], tbl.Cells[last][j].Mean)
		}
	}
}

func TestWorstCaseSearchTable(t *testing.T) {
	tp := topology.MustNew(2, []int{4, 8}, []int{1, 4})
	tbl := WorstCaseSearch(tp, []int{1, 4}, adversary.Config{Steps: 400, Restarts: 2, Seed: 3})
	if len(tbl.Cells) != 2 {
		t.Fatalf("rows %d", len(tbl.Cells))
	}
	// d-mod-k's found worst case must exceed the K=4 heuristics'.
	if tbl.Cells[0][0].Mean <= tbl.Cells[1][2].Mean {
		t.Errorf("d-mod-k worst %g not above disjoint(4) worst %g",
			tbl.Cells[0][0].Mean, tbl.Cells[1][2].Mean)
	}
	for i := range tbl.Cells {
		for j := range tbl.Columns {
			if c := tbl.Cells[i][j]; c.Mean < 1 || c.Samples <= 0 {
				t.Errorf("cell %d,%d: %+v", i, j, c)
			}
		}
	}
}

func TestAdaptiveComparisonTable(t *testing.T) {
	tbl := AdaptiveComparison(tinyScale())
	if len(tbl.Cells) != 5 {
		t.Fatalf("rows %d", len(tbl.Cells))
	}
	byName := map[string]float64{}
	for i, x := range tbl.XValues {
		byName[x] = tbl.Cells[i][0].Mean
	}
	if byName["adaptive"] <= byName["d-mod-k"] {
		t.Errorf("adaptive %g not above d-mod-k %g", byName["adaptive"], byName["d-mod-k"])
	}
	if byName["disjoint(8)"] <= byName["d-mod-k"] {
		t.Errorf("disjoint(8) %g not above d-mod-k %g", byName["disjoint(8)"], byName["d-mod-k"])
	}
}

func TestModelValidationTable(t *testing.T) {
	tbl := ModelValidation(tinyScale())
	if len(tbl.Cells) != 6 || len(tbl.Columns) != 3 {
		t.Fatalf("shape %dx%d", len(tbl.Cells), len(tbl.Columns))
	}
	byName := map[string][]Cell{}
	for i, x := range tbl.XValues {
		byName[x] = tbl.Cells[i]
	}
	// Predictions are exact flow-level values: umulti predicts 1
	// (optimal on a derangement of this tree) and d-mod-k far less.
	if byName["umulti"][0].Mean != 1 {
		t.Errorf("umulti predicted %g, want 1", byName["umulti"][0].Mean)
	}
	if byName["d-mod-k"][0].Mean >= byName["disjoint(4)"][0].Mean {
		t.Errorf("flow model must rank disjoint(4) above d-mod-k")
	}
	// Measured side: disjoint(4) must beat d-mod-k, as the model ranks.
	if byName["disjoint(4)"][1].Mean <= byName["d-mod-k"][1].Mean {
		t.Errorf("measured disagrees with model ordering: disjoint(4) %g vs d-mod-k %g",
			byName["disjoint(4)"][1].Mean, byName["d-mod-k"][1].Mean)
	}
	for name, row := range byName {
		if row[1].Mean <= 0 || row[2].Mean <= 0 {
			t.Errorf("%s: non-positive cells %+v", name, row)
		}
	}
}

func TestDelayCrossoverTable(t *testing.T) {
	sc := tinyScale()
	sc.Loads = []float64{0.2, 0.6}
	sc.FlitMeasure = 4000
	tbl := DelayCrossover(sc)
	if len(tbl.Cells) != 2 || len(tbl.Columns) != 3 {
		t.Fatalf("shape %dx%d", len(tbl.Cells), len(tbl.Columns))
	}
	for i, row := range tbl.Cells {
		if row[0].Mean <= 0 || row[1].Mean <= 0 {
			t.Errorf("row %d: non-positive delays %+v", i, row)
		}
		if got := row[0].Mean - row[1].Mean; mathAbs(got-row[2].Mean) > 1e-9 {
			t.Errorf("row %d: delta %g want %g", i, row[2].Mean, got)
		}
	}
	// At the 0.6 point disjoint(8) should already be ahead.
	if tbl.Cells[1][2].Mean <= 0 {
		t.Errorf("disjoint(8) not ahead at load 0.6: delta %g", tbl.Cells[1][2].Mean)
	}
	if tbl.Footnote == "" {
		t.Error("footnote missing")
	}
}

func mathAbs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestBufferDepthTable(t *testing.T) {
	sc := tinyScale()
	sc.Loads = []float64{0.7, 1.0}
	tbl := BufferDepth(sc)
	if len(tbl.Cells) != 4 || len(tbl.Columns) != 4 {
		t.Fatalf("shape %dx%d", len(tbl.Cells), len(tbl.Columns))
	}
	for i, row := range tbl.Cells {
		for j, c := range row {
			if c.Mean <= 0 || c.Mean > 1.01 {
				t.Errorf("cell %d,%d out of range: %g", i, j, c.Mean)
			}
		}
	}
	// Deeper buffers never hurt at fixed K (row-wise monotone within
	// tolerance) — check the K=8 column across buffer rows 4 -> 16.
	if tbl.Cells[3][2].Mean < tbl.Cells[1][2].Mean-0.05 {
		t.Errorf("16-packet buffers (%.3f) worse than 4 (%.3f) at K=8",
			tbl.Cells[3][2].Mean, tbl.Cells[1][2].Mean)
	}
}

func TestVirtualChannelDepthTable(t *testing.T) {
	sc := tinyScale()
	sc.Loads = []float64{0.8, 1.0}
	tbl := VirtualChannelDepth(sc)
	if len(tbl.Cells) != 3 || len(tbl.Columns) != 4 {
		t.Fatalf("shape %dx%d", len(tbl.Cells), len(tbl.Columns))
	}
	// At K=8, 4 VCs must beat 1 VC.
	if tbl.Cells[2][2].Mean <= tbl.Cells[0][2].Mean {
		t.Errorf("4 VCs (%.3f) not above 1 VC (%.3f) at K=8",
			tbl.Cells[2][2].Mean, tbl.Cells[0][2].Mean)
	}
}
