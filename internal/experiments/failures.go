package experiments

import (
	"fmt"
	"sync"

	"xgftsim/internal/core"
	"xgftsim/internal/flow"
	"xgftsim/internal/stats"
	"xgftsim/internal/topology"
)

// failureSchemes is the scheme × K grid of the failure sweep: the
// single-path baseline, each limited multi-path scheme at two budgets,
// and unlimited multi-path as the graceful-degradation reference.
func failureSchemes() []struct {
	sel core.Selector
	k   int
} {
	return []struct {
		sel core.Selector
		k   int
	}{
		{core.DModK{}, 1},
		{core.Shift1{}, 2},
		{core.Shift1{}, 4},
		{core.Disjoint{}, 2},
		{core.Disjoint{}, 4},
		{core.RandomK{}, 2},
		{core.RandomK{}, 4},
		{core.UMulti{}, 1},
	}
}

// faultSeeds derives the sweep's fault-placement seeds from the base
// seed; distinct offsets keep the streams decorrelated across seeds.
func faultSeeds(sc Scale, seed int64) []int64 {
	n := sc.FaultSeeds
	if n <= 0 {
		n = 3
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = seed + int64(i)*1000003
	}
	return out
}

func faultFractions(sc Scale) []float64 {
	if len(sc.FaultFractions) > 0 {
		return sc.FaultFractions
	}
	return []float64{0, 0.02, 0.05, 0.10}
}

// Failures runs the failure sweep on the paper's Figure 4 panel a and
// b topologies: average maximum link load of random permutations
// versus the fraction of failed cables, per scheme × K, with each
// routing repaired against every sampled fault placement. Confidence
// intervals are over the fault placements. The final column reports
// the fraction of SD pairs left with no surviving shortest path —
// traffic the repair reports as undeliverable rather than routing over
// dead links.
func Failures(sc Scale, seed int64) *Table {
	type panel struct {
		label string
		topo  *topology.Topology
	}
	var panels []panel
	for _, p := range []string{"a", "b"} {
		t, err := Fig4Panel(p)
		if err != nil {
			panic(err)
		}
		panels = append(panels, panel{p, t})
	}
	schemes := failureSchemes()
	fracs := faultFractions(sc)
	fseeds := faultSeeds(sc, seed)

	tbl := &Table{
		Title:  "Failure sweep: average maximum link load vs failed cable fraction (permutation traffic, repaired routing)",
		XLabel: "panel frac",
	}
	for _, s := range schemes {
		name := s.sel.Name()
		if s.sel.MultiPath() {
			name = fmt.Sprintf("%s K=%d", name, s.k)
		}
		tbl.Columns = append(tbl.Columns, name)
	}
	tbl.Columns = append(tbl.Columns, "disconn")

	nRows := len(panels) * len(fracs)
	nCols := len(tbl.Columns)
	cells := make([][]Cell, nRows)
	for i := range cells {
		cells[i] = make([]Cell, nCols)
	}
	type job struct{ pi, fi, col int }
	var jobs []job
	for pi := range panels {
		for fi := range fracs {
			for col := 0; col < nCols; col++ {
				jobs = append(jobs, job{pi, fi, col})
			}
		}
	}
	// One failure base per (panel, scheme) column: the healthy compile
	// and its delta repairer are fault-independent, so every fraction's
	// cell patches against the same base instead of recompiling. Built
	// lazily under sync.Once so the first cell of a column pays for it
	// whichever worker gets there first.
	bases := make([][]*flow.FailureBase, len(panels))
	onces := make([][]sync.Once, len(panels))
	for pi := range panels {
		bases[pi] = make([]*flow.FailureBase, len(schemes))
		onces[pi] = make([]sync.Once, len(schemes))
	}
	runCells(sc.Ctx, len(jobs), sc.Workers, func(x int) {
		jb := jobs[x]
		row := jb.pi*len(fracs) + jb.fi
		t, frac := panels[jb.pi].topo, fracs[jb.fi]
		if jb.col == len(schemes) {
			cells[row][jb.col] = disconnectedCell(t, frac, fseeds)
			return
		}
		s := schemes[jb.col]
		x0 := flow.FailureExperiment{
			Topo:       t,
			Sel:        s.sel,
			K:          s.k,
			Fraction:   frac,
			FaultSeeds: fseeds,
			PermSeed:   seed,
			Sampling:   sc.Sampling,
		}
		onces[jb.pi][jb.col].Do(func() { bases[jb.pi][jb.col] = x0.NewBase() })
		x0.Base = bases[jb.pi][jb.col]
		res := x0.Run()
		cells[row][jb.col] = Cell{Mean: res.Acc.Mean(), HalfWidth: res.HalfWidth, Samples: res.Acc.N()}
	})
	for pi, p := range panels {
		for fi, frac := range fracs {
			tbl.XValues = append(tbl.XValues, fmt.Sprintf("%s %g%%", p.label, frac*100))
			tbl.Cells = append(tbl.Cells, cells[pi*len(fracs)+fi])
		}
	}
	tbl.Footnote = fmt.Sprintf("99%% CI over %d fault placements per fraction; disconn = fraction of SD pairs with no surviving shortest path",
		len(fseeds))
	return tbl
}

// FailureSweep is the single-topology failure sweep used by the
// benchmarks: same cells as one panel of Failures.
func FailureSweep(t *topology.Topology, sc Scale, seed int64) *Table {
	schemes := failureSchemes()
	fracs := faultFractions(sc)
	fseeds := faultSeeds(sc, seed)
	tbl := &Table{
		Title:  fmt.Sprintf("Failure sweep: avg max link load vs failed cable fraction, %s", t),
		XLabel: "frac",
	}
	for _, s := range schemes {
		name := s.sel.Name()
		if s.sel.MultiPath() {
			name = fmt.Sprintf("%s K=%d", name, s.k)
		}
		tbl.Columns = append(tbl.Columns, name)
	}
	cells := make([][]Cell, len(fracs))
	for i := range cells {
		cells[i] = make([]Cell, len(schemes))
	}
	// As in Failures: one shared base per scheme column.
	bases := make([]*flow.FailureBase, len(schemes))
	onces := make([]sync.Once, len(schemes))
	runCells(sc.Ctx, len(fracs)*len(schemes), sc.Workers, func(x int) {
		fi, col := x/len(schemes), x%len(schemes)
		s := schemes[col]
		x0 := flow.FailureExperiment{
			Topo:       t,
			Sel:        s.sel,
			K:          s.k,
			Fraction:   fracs[fi],
			FaultSeeds: fseeds,
			PermSeed:   seed,
			Sampling:   sc.Sampling,
		}
		onces[col].Do(func() { bases[col] = x0.NewBase() })
		x0.Base = bases[col]
		res := x0.Run()
		cells[fi][col] = Cell{Mean: res.Acc.Mean(), HalfWidth: res.HalfWidth, Samples: res.Acc.N()}
	})
	for fi, frac := range fracs {
		tbl.XValues = append(tbl.XValues, fmt.Sprintf("%g%%", frac*100))
		tbl.Cells = append(tbl.Cells, cells[fi])
	}
	tbl.Footnote = fmt.Sprintf("99%% CI over %d fault placements per fraction", len(fseeds))
	return tbl
}

// disconnectedCell measures the disconnected-pair fraction across the
// sweep's fault placements; pure topology arithmetic, no flow
// evaluation.
func disconnectedCell(t *topology.Topology, frac float64, fseeds []int64) Cell {
	if frac == 0 {
		return Cell{Samples: 1}
	}
	var acc stats.Accumulator
	for _, fs := range fseeds {
		f, err := topology.RandomCableFaultFraction(t, fs, frac)
		if err != nil {
			panic(err)
		}
		acc.Add(f.DisconnectedFraction())
	}
	c := Cell{Mean: acc.Mean(), Samples: acc.N()}
	if acc.N() > 1 {
		c.HalfWidth = acc.ConfidenceHalfWidth(0.99)
	}
	return c
}
