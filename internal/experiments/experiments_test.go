package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"xgftsim/internal/stats"
	"xgftsim/internal/topology"
)

// tinyScale keeps experiment tests fast.
func tinyScale() Scale {
	return Scale{
		Name:        "tiny",
		Sampling:    stats.AdaptiveConfig{InitialSamples: 20, MaxSamples: 20, RelPrecision: 0.5},
		FlitWarmup:  500,
		FlitMeasure: 1500,
		FlitSeeds:   1,
		Loads:       []float64{0.5, 1.0},
	}
}

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"quick", "full", "", "QUICK"} {
		if _, err := ScaleByName(name); err != nil {
			t.Errorf("ScaleByName(%q): %v", name, err)
		}
	}
	if _, err := ScaleByName("bogus"); err == nil {
		t.Error("bogus scale accepted")
	}
	full := FullScale()
	if full.Sampling.RelPrecision != 0.01 || full.Sampling.Confidence != 0 {
		// Confidence 0 defaults to 0.99 inside stats.
		t.Logf("full scale: %+v", full.Sampling)
	}
	if len(full.Loads) < 15 {
		t.Errorf("full scale has %d load points", len(full.Loads))
	}
}

func TestKGrid(t *testing.T) {
	small := topology.MustNew(2, []int{4, 8}, []int{1, 4})
	ks := KGrid(small)
	if ks[0] != 1 || ks[len(ks)-1] != small.MaxPaths() {
		t.Fatalf("KGrid(small) = %v", ks)
	}
	big := topology.MustNew(3, []int{12, 12, 24}, []int{1, 12, 12})
	ks = KGrid(big)
	if ks[len(ks)-1] != 144 {
		t.Fatalf("KGrid(big) must end at 144, got %v", ks)
	}
	for i := 1; i < len(ks); i++ {
		if ks[i] <= ks[i-1] {
			t.Fatalf("KGrid not increasing: %v", ks)
		}
	}
	if len(ks) > 25 {
		t.Fatalf("KGrid too dense for the Ranger tree: %d points", len(ks))
	}
}

func TestEffectiveKs(t *testing.T) {
	tp := topology.MustNew(2, []int{4, 8}, []int{1, 4}) // MaxPaths = 4
	eff, rowOf := effectiveKs(tp, []int{1, 2, 4, 8, 16})
	if want := []int{1, 2, 4}; len(eff) != len(want) || eff[0] != 1 || eff[1] != 2 || eff[2] != 4 {
		t.Fatalf("eff = %v, want %v", eff, want)
	}
	if want := []int{0, 1, 2, 2, 2}; len(rowOf) != len(want) {
		t.Fatalf("rowOf = %v", rowOf)
	} else {
		for i := range want {
			if rowOf[i] != want[i] {
				t.Fatalf("rowOf = %v, want %v", rowOf, want)
			}
		}
	}
}

// TestFig4KsClampsConvergedKs checks the UMULTI dedupe: every
// requested K at or above the topology's maximum path count must
// reuse one measured cell, with all rows still rendered.
func TestFig4KsClampsConvergedKs(t *testing.T) {
	tp := topology.MustNew(2, []int{4, 8}, []int{1, 4}) // MaxPaths = 4
	tbl := Fig4Ks(tp, []int{1, 2, 4, 8, 16}, tinyScale(), 1)
	if len(tbl.Cells) != 5 {
		t.Fatalf("rows %d, want 5", len(tbl.Cells))
	}
	if tbl.XValues[3] != "8" || tbl.XValues[4] != "16" {
		t.Fatalf("requested K labels must survive clamping: %v", tbl.XValues)
	}
	for j := range tbl.Columns {
		for _, i := range []int{3, 4} {
			if tbl.Cells[i][j] != tbl.Cells[2][j] {
				t.Errorf("column %s: K=%s cell %+v differs from the K=4 (UMULTI) cell %+v",
					tbl.Columns[j], tbl.XValues[i], tbl.Cells[i][j], tbl.Cells[2][j])
			}
		}
	}
}

func TestFig4Panels(t *testing.T) {
	want := map[string]string{
		"a": "XGFT(2; 8,16; 1,8)",
		"b": "XGFT(3; 8,8,16; 1,8,8)",
		"c": "XGFT(2; 12,24; 1,12)",
		"d": "XGFT(3; 12,12,24; 1,12,12)",
	}
	for panel, s := range want {
		tp, err := Fig4Panel(panel)
		if err != nil {
			t.Fatal(err)
		}
		if tp.String() != s {
			t.Errorf("panel %s = %s, want %s", panel, tp, s)
		}
	}
	if _, err := Fig4Panel("z"); err == nil {
		t.Error("panel z accepted")
	}
}

// TestFig4Shape runs a small Figure 4 and checks the paper's
// qualitative findings.
func TestFig4Shape(t *testing.T) {
	tp := topology.MustNew(2, []int{4, 8}, []int{1, 4})
	tbl := Fig4Ks(tp, []int{1, 2, 4}, tinyScale(), 1)
	if len(tbl.Cells) != 3 || len(tbl.Columns) != 4 {
		t.Fatalf("table shape %dx%d", len(tbl.Cells), len(tbl.Columns))
	}
	col := func(name string) int {
		for j, c := range tbl.Columns {
			if c == name {
				return j
			}
		}
		t.Fatalf("column %s missing", name)
		return -1
	}
	dmodk, disjoint := col("d-mod-k"), col("disjoint")
	// d-mod-k flat, disjoint strictly improving and below d-mod-k at K>=2.
	if tbl.Cells[0][dmodk].Mean != tbl.Cells[2][dmodk].Mean {
		t.Error("d-mod-k series should be flat in K")
	}
	if !(tbl.Cells[2][disjoint].Mean < tbl.Cells[0][disjoint].Mean) {
		t.Error("disjoint should improve with K")
	}
	if !(tbl.Cells[1][disjoint].Mean < tbl.Cells[1][dmodk].Mean) {
		t.Error("disjoint(2) should beat d-mod-k")
	}
	// K = max paths reaches the optimal (UMULTI) value: shift==disjoint
	// on two-level trees.
	sh := col("shift-1")
	if tbl.Cells[2][sh].Mean != tbl.Cells[2][disjoint].Mean {
		t.Error("shift-1 and disjoint must coincide on 2-level trees")
	}
}

func TestTableRenderAndCSV(t *testing.T) {
	tbl := &Table{
		Title:    "demo",
		XLabel:   "x",
		XValues:  []string{"1", "2"},
		Columns:  []string{"a", "b,with comma"},
		Cells:    [][]Cell{{{Mean: 1}, {Mean: 2}}, {{Mean: 3, HalfWidth: 0.5}, {Mean: 4}}},
		Footnote: "note",
	}
	var txt bytes.Buffer
	tbl.Render(&txt)
	out := txt.String()
	for _, want := range []string{"demo", "note", "3±0.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
	var csv bytes.Buffer
	if err := tbl.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines: %v", lines)
	}
	if !strings.Contains(lines[0], `"b,with comma"`) {
		t.Errorf("csv header not escaped: %s", lines[0])
	}
	if lines[2] != "2,3,0.5,4,0" {
		t.Errorf("csv row: %s", lines[2])
	}
}

func TestTheorem1AllOnes(t *testing.T) {
	tbl := Theorem1(tinyScale(), 5)
	if len(tbl.Cells) == 0 {
		t.Fatal("no rows")
	}
	for i, row := range tbl.Cells {
		if math.Abs(row[0].Mean-1) > 1e-9 {
			t.Errorf("%s: worst PERF %g", tbl.XValues[i], row[0].Mean)
		}
	}
}

func TestTheorem2MatchesPrediction(t *testing.T) {
	tbl := Theorem2()
	for i, row := range tbl.Cells {
		got, predicted := row[0].Mean, row[1].Mean
		if math.Abs(got-predicted) > 1e-9 {
			t.Errorf("%s: PERF %g, predicted %g", tbl.XValues[i], got, predicted)
		}
		if umulti := row[5].Mean; math.Abs(umulti-1) > 1e-9 {
			t.Errorf("%s: UMULTI PERF %g", tbl.XValues[i], umulti)
		}
	}
}

func TestTierBalanceShowsDisjointAdvantage(t *testing.T) {
	tbl := TierBalance(tinyScale(), 4, 3)
	// Row 1 is tier 1-2; columns: shift up, shift down, disjoint up,
	// disjoint down. Disjoint must be clearly better there.
	shiftUp, disjointUp := tbl.Cells[1][0].Mean, tbl.Cells[1][2].Mean
	if disjointUp >= shiftUp {
		t.Fatalf("tier 1-2: disjoint %g not below shift-1 %g", disjointUp, shiftUp)
	}
}

func TestLIDBudgetMarksRangerUnrealizable(t *testing.T) {
	tbl := LIDBudget()
	var rangerRow []Cell
	for i, x := range tbl.XValues {
		if x == string(topology.Paper24Port3Tree) {
			rangerRow = tbl.Cells[i]
		}
	}
	if rangerRow == nil {
		t.Fatal("ranger row missing")
	}
	// K=1..8 fit; K=16+ do not.
	for j, k := range []int{1, 2, 4, 8} {
		if rangerRow[j].Mean <= 0 {
			t.Errorf("K=%d should fit on the 24-port 3-tree", k)
		}
	}
	for j := 4; j < len(rangerRow); j++ {
		if rangerRow[j].Mean != -1 {
			t.Errorf("column %d should be unrealizable", j)
		}
	}
}

func TestEffectiveDiversityTable(t *testing.T) {
	tbl := EffectiveDiversity(4)
	if len(tbl.Cells) != 3 {
		t.Fatalf("rows %d", len(tbl.Cells))
	}
	// At NCA level 2 disjoint keeps 4 paths, shift-1 fewer.
	if tbl.Cells[1][1].Mean != 4 {
		t.Errorf("disjoint diversity %g", tbl.Cells[1][1].Mean)
	}
	if tbl.Cells[1][0].Mean >= tbl.Cells[1][1].Mean {
		t.Errorf("shift-1 diversity %g not below disjoint", tbl.Cells[1][0].Mean)
	}
	// At the top level all schemes keep K.
	for j := range tbl.Columns {
		if tbl.Cells[2][j].Mean != 4 {
			t.Errorf("%s top-level diversity %g", tbl.Columns[j], tbl.Cells[2][j].Mean)
		}
	}
}

func TestWorkloadSensitivity(t *testing.T) {
	tbl := WorkloadSensitivity(tinyScale())
	if len(tbl.Cells) != 3 || len(tbl.Columns) != 2 {
		t.Fatalf("table shape")
	}
	// Fixed assignment: disjoint(8) must beat d-mod-k.
	if tbl.Cells[2][0].Mean <= tbl.Cells[0][0].Mean {
		t.Errorf("fixed assignment: disjoint(8) %g <= d-mod-k %g",
			tbl.Cells[2][0].Mean, tbl.Cells[0][0].Mean)
	}
	// Per-message uniform: d-mod-k at least on par with disjoint(8).
	if tbl.Cells[2][1].Mean > tbl.Cells[0][1].Mean+0.05 {
		t.Errorf("per-message: disjoint(8) %g should not beat d-mod-k %g",
			tbl.Cells[2][1].Mean, tbl.Cells[0][1].Mean)
	}
}

func TestTable1Shape(t *testing.T) {
	tbl := Table1(tinyScale())
	if len(tbl.Cells) != 4 || len(tbl.Columns) != 4 {
		t.Fatalf("table shape %dx%d", len(tbl.Cells), len(tbl.Columns))
	}
	col := func(name string) int {
		for j, c := range tbl.Columns {
			if c == name {
				return j
			}
		}
		t.Fatalf("column %s missing", name)
		return -1
	}
	// Throughput of disjoint rises from K=1 to K=8 and ends above
	// d-mod-k.
	dj, dk := col("disjoint"), col("d-mod-k")
	if !(tbl.Cells[3][dj].Mean > tbl.Cells[0][dj].Mean) {
		t.Error("disjoint throughput should grow with K")
	}
	if !(tbl.Cells[3][dj].Mean > tbl.Cells[3][dk].Mean) {
		t.Error("disjoint(8) should beat d-mod-k")
	}
}

func TestFig5Shape(t *testing.T) {
	sc := tinyScale()
	sc.Loads = []float64{0.3, 0.9}
	tbl := Fig5(sc)
	if len(tbl.Cells) != 2 || len(tbl.Columns) != 8 {
		t.Fatalf("table shape %dx%d", len(tbl.Cells), len(tbl.Columns))
	}
	for j := range tbl.Columns {
		lo, hi := tbl.Cells[0][j].Mean, tbl.Cells[1][j].Mean
		if lo <= 0 {
			t.Errorf("%s: zero delay at low load", tbl.Columns[j])
		}
		if hi < lo {
			t.Errorf("%s: delay %g at high load below %g at low load", tbl.Columns[j], hi, lo)
		}
	}
}
