package experiments

import "testing"

// TestAdaptiveKExperimentSmoke runs the selector head-to-head at a
// trimmed scale and checks the table's shape and that every cell
// measured real throughput.
func TestAdaptiveKExperimentSmoke(t *testing.T) {
	sc := Scale{
		Name:        "smoke",
		FlitWarmup:  500,
		FlitMeasure: 1500,
		FlitSeeds:   1,
		Loads:       []float64{0.4, 0.8},
		Workers:     4,
	}
	tbl := AdaptiveK(sc)
	if got, want := len(tbl.Cells), 6; got != want {
		t.Fatalf("rows %d, want %d", got, want)
	}
	if got, want := len(tbl.Columns), 3; got != want {
		t.Fatalf("columns %d, want %d", got, want)
	}
	for i, row := range tbl.Cells {
		for j, c := range row {
			if c.Mean <= 0 || c.Mean > 1 {
				t.Errorf("cell %s/%s: throughput %g out of (0,1]",
					tbl.XValues[i], tbl.Columns[j], c.Mean)
			}
		}
	}
}
