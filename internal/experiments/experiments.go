// Package experiments regenerates every table and figure of the
// paper's evaluation section, plus the ablations called out in
// DESIGN.md. Each experiment returns a structured result that can be
// rendered as an aligned text table or CSV; cmd/xgftpaper drives them
// from the command line and bench_test.go exposes one benchmark per
// artifact.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"xgftsim/internal/core"
	"xgftsim/internal/stats"
	"xgftsim/internal/topology"
)

// Scale selects the fidelity/runtime trade-off of a reproduction run.
type Scale struct {
	// Name labels the scale in reports.
	Name string
	// Sampling configures flow-level adaptive sampling.
	Sampling stats.AdaptiveConfig
	// FlitWarmup and FlitMeasure are the flit-level windows (cycles).
	FlitWarmup, FlitMeasure int64
	// FlitSeeds is how many workload seeds flit metrics average over.
	FlitSeeds int
	// Loads is the offered-load grid for sweeps.
	Loads []float64
	// FaultSeeds is how many random fault placements the failure sweep
	// averages over (its confidence intervals are across these).
	FaultSeeds int
	// FaultFractions is the failed-cable-fraction grid for the failure
	// sweep.
	FaultFractions []float64
	// Workers bounds how many grid cells an experiment measures
	// concurrently (each cell may itself parallelize its samples);
	// 0 means GOMAXPROCS. Results are deterministic regardless.
	Workers int
	// Ctx, when non-nil, cancels a sweep between cells: on
	// cancellation the runner stops scheduling new cells and the
	// experiment aborts with ErrInterrupted (wrapped in a *CellPanic).
	// Nil means run to completion.
	Ctx context.Context
}

// QuickScale finishes each experiment in seconds; for smoke runs and
// benchmarks.
func QuickScale() Scale {
	return Scale{
		Name:           "quick",
		Sampling:       stats.AdaptiveConfig{InitialSamples: 40, MaxSamples: 160, RelPrecision: 0.03},
		FlitWarmup:     2000,
		FlitMeasure:    6000,
		FlitSeeds:      1,
		Loads:          []float64{0.2, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0},
		FaultSeeds:     3,
		FaultFractions: []float64{0, 0.02, 0.05, 0.10},
	}
}

// FullScale follows the paper's protocol (99% confidence, 1% relative
// precision, five seeds for randomized schemes).
func FullScale() Scale {
	loads := make([]float64, 0, 19)
	for l := 0.05; l < 1.0001; l += 0.05 {
		loads = append(loads, l)
	}
	return Scale{
		Name:           "full",
		Sampling:       stats.AdaptiveConfig{InitialSamples: 100, MaxSamples: 12800, RelPrecision: 0.01},
		FlitWarmup:     10000,
		FlitMeasure:    30000,
		FlitSeeds:      3,
		Loads:          loads,
		FaultSeeds:     10,
		FaultFractions: []float64{0, 0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07, 0.08, 0.09, 0.10},
	}
}

// PaperScale balances the paper's protocol against single-machine
// runtimes: tight confidence targets with bounded sample caps and
// moderate flit windows. The reported half-widths always state the
// achieved precision.
func PaperScale() Scale {
	loads := make([]float64, 0, 12)
	for l := 0.1; l < 1.0001; l += 0.1 {
		loads = append(loads, l)
	}
	return Scale{
		Name:           "paper",
		Sampling:       stats.AdaptiveConfig{InitialSamples: 200, MaxSamples: 1600, RelPrecision: 0.015},
		FlitWarmup:     4000,
		FlitMeasure:    12000,
		FlitSeeds:      2,
		Loads:          loads,
		FaultSeeds:     5,
		FaultFractions: []float64{0, 0.01, 0.02, 0.05, 0.08, 0.10},
	}
}

// ScaleByName resolves "quick", "paper" or "full".
func ScaleByName(name string) (Scale, error) {
	switch strings.ToLower(name) {
	case "quick", "":
		return QuickScale(), nil
	case "paper":
		return PaperScale(), nil
	case "full":
		return FullScale(), nil
	}
	return Scale{}, fmt.Errorf("experiments: unknown scale %q (want quick, paper or full)", name)
}

// fig4Schemes are the four series in every Figure 4 plot.
func fig4Schemes() []core.Selector {
	return []core.Selector{core.DModK{}, core.Shift1{}, core.Disjoint{}, core.RandomK{}}
}

// KGrid returns the Figure 4 x-axis for a topology: every K up to 16,
// then powers-of-two-ish steps up to the maximum path count.
func KGrid(t *topology.Topology) []int {
	max := t.MaxPaths()
	var ks []int
	for k := 1; k <= max && k <= 16; k++ {
		ks = append(ks, k)
	}
	for k := 24; k < max; k += k / 2 {
		ks = append(ks, k)
	}
	if len(ks) == 0 || ks[len(ks)-1] != max {
		ks = append(ks, max)
	}
	sort.Ints(ks)
	return ks
}

// effectiveKs clamps a requested K grid to a topology's maximum path
// count and dedupes it: every K >= MaxPaths yields the same UMULTI
// path sets, so such cells are measured once and replicated across the
// requested rows (mirroring the flat single-path replication). eff is
// the ascending unique effective grid; rowOf[i] indexes eff for
// requested ks[i].
func effectiveKs(t *topology.Topology, ks []int) (eff []int, rowOf []int) {
	max := t.MaxPaths()
	clamp := func(k int) int {
		if k > max {
			return max
		}
		if k < 1 {
			return 1
		}
		return k
	}
	seen := make(map[int]bool, len(ks))
	for _, k := range ks {
		if c := clamp(k); !seen[c] {
			seen[c] = true
			eff = append(eff, c)
		}
	}
	sort.Ints(eff)
	pos := make(map[int]int, len(eff))
	for i, k := range eff {
		pos[k] = i
	}
	rowOf = make([]int, len(ks))
	for i, k := range ks {
		rowOf[i] = pos[clamp(k)]
	}
	return eff, rowOf
}

// Cell is one measured value with its confidence half-width and
// sample count.
type Cell struct {
	Mean      float64
	HalfWidth float64
	Samples   int
}

// Table is a generic labelled grid of cells used by the experiment
// results: one row per x-axis value, one column per series.
type Table struct {
	Title    string
	XLabel   string
	XValues  []string
	Columns  []string
	Cells    [][]Cell // [row][col]
	Footnote string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s\n", t.Title)
	fmt.Fprintf(w, "%-12s", t.XLabel)
	for _, c := range t.Columns {
		fmt.Fprintf(w, " %14s", c)
	}
	fmt.Fprintln(w)
	for i, x := range t.XValues {
		fmt.Fprintf(w, "%-12s", x)
		for j := range t.Columns {
			c := t.Cells[i][j]
			fmt.Fprintf(w, " %14s", fmt.Sprintf("%.4g±%.2g", c.Mean, c.HalfWidth))
		}
		fmt.Fprintln(w)
	}
	if t.Footnote != "" {
		fmt.Fprintf(w, "  %s\n", t.Footnote)
	}
}

// WriteCSV writes the table as CSV (mean and half-width columns per
// series).
func (t *Table) WriteCSV(w io.Writer) error {
	cols := []string{csvEscape(t.XLabel)}
	for _, c := range t.Columns {
		cols = append(cols, csvEscape(c), csvEscape(c+"_ci"))
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for i, x := range t.XValues {
		row := []string{csvEscape(x)}
		for j := range t.Columns {
			c := t.Cells[i][j]
			row = append(row, fmt.Sprintf("%g", c.Mean), fmt.Sprintf("%g", c.HalfWidth))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
