package experiments

import (
	"fmt"

	"xgftsim/internal/core"
	"xgftsim/internal/flit"
	"xgftsim/internal/stats"
	"xgftsim/internal/topology"
	"xgftsim/internal/traffic"
)

// table1Topology is the paper's flit-level evaluation tree, the
// 8-port 3-tree XGFT(3;4,4,8;1,4,4).
func table1Topology() *topology.Topology {
	t, err := topology.FromPaper(topology.Paper8Port3Tree)
	if err != nil {
		panic(err)
	}
	return t
}

// flitWorkload draws the fixed random source->destination assignment
// used by the flit-level experiments (see DESIGN.md §5 for why the
// paper's "uniform random traffic" is read this way).
func flitWorkload(t *topology.Topology, seed int64) traffic.Pattern {
	rng := stats.Stream(seed, 31)
	return traffic.NewPermutationPattern(
		fmt.Sprintf("uniform-assignment(seed=%d)", seed),
		traffic.RandomDerangementish(t.NumProcessors(), rng))
}

// maxThroughput measures the saturation throughput of one
// (scheme, K) cell, averaged over the scale's workload seeds.
func maxThroughput(t *topology.Topology, sel core.Selector, k int, sc Scale) Cell {
	var acc stats.Accumulator
	for s := 0; s < sc.FlitSeeds; s++ {
		base := flit.Config{
			Routing:       core.NewRouting(t, sel, k, int64(s)),
			Pattern:       flitWorkload(t, int64(s)),
			Seed:          int64(s),
			WarmupCycles:  sc.FlitWarmup,
			MeasureCycles: sc.FlitMeasure,
		}
		results, err := flit.Sweep(flit.SweepConfig{Base: base, Loads: sc.Loads})
		if err != nil {
			panic(err)
		}
		acc.Add(flit.MaxThroughput(results))
	}
	hw := 0.0
	if acc.N() > 1 {
		hw = acc.ConfidenceHalfWidth(0.95)
	}
	return Cell{Mean: acc.Mean(), HalfWidth: hw, Samples: acc.N()}
}

// Table1 reproduces the paper's Table 1: maximum aggregate throughput
// (fraction of capacity) on XGFT(3;4,4,8;1,4,4) for K in {1,2,4,8}
// under each scheme. For d-mod-k the K column is informational only:
// its single cell is measured once and replicated across rows. Cells
// run under the bounded parallel scheduler (sc.Workers slots) with
// deterministic placement.
func Table1(sc Scale) *Table {
	t := table1Topology()
	schemes := []core.Selector{core.DModK{}, core.Shift1{}, core.RandomK{}, core.Disjoint{}}
	ks := []int{1, 2, 4, 8}
	tbl := &Table{
		Title:   fmt.Sprintf("Table 1: maximum throughput (fraction of capacity), %s, uniform assignment", t),
		XLabel:  "K",
		Columns: make([]string, len(schemes)),
	}
	for j, s := range schemes {
		tbl.Columns[j] = s.Name()
	}
	type job struct{ row, col int } // row < 0: K-independent single-path cell
	var jobs []job
	for j, sel := range schemes {
		if !sel.MultiPath() {
			jobs = append(jobs, job{-1, j})
		}
	}
	for i := range ks {
		for j, sel := range schemes {
			if sel.MultiPath() {
				jobs = append(jobs, job{i, j})
			}
		}
	}
	flat := make([]Cell, len(schemes))
	isFlat := make([]bool, len(schemes))
	cells := make([][]Cell, len(ks))
	for i := range cells {
		cells[i] = make([]Cell, len(schemes))
	}
	runCells(sc.Ctx, len(jobs), sc.Workers, func(x int) {
		jb := jobs[x]
		k := 1
		if jb.row >= 0 {
			k = ks[jb.row]
		}
		c := maxThroughput(t, schemes[jb.col], k, sc)
		if jb.row < 0 {
			flat[jb.col], isFlat[jb.col] = c, true
		} else {
			cells[jb.row][jb.col] = c
		}
	})
	for i, k := range ks {
		for j := range schemes {
			if isFlat[j] {
				cells[i][j] = flat[j]
			}
		}
		tbl.XValues = append(tbl.XValues, fmt.Sprintf("%d", k))
		tbl.Cells = append(tbl.Cells, cells[i])
	}
	tbl.Footnote = fmt.Sprintf("%d workload seed(s); packet=8 flits, message=4 packets, buffers=4 packets", sc.FlitSeeds)
	return tbl
}

// fig5Series lists the paper's Figure 5 curves: scheme and K.
type fig5Series struct {
	sel core.Selector
	k   int
}

func fig5SeriesList() []fig5Series {
	return []fig5Series{
		{core.DModK{}, 1},
		{core.Disjoint{}, 2},
		{core.Disjoint{}, 8},
		{core.Shift1{}, 2},
		{core.Shift1{}, 8},
		{core.RandomK{}, 1},
		{core.RandomK{}, 2},
		{core.RandomK{}, 8},
	}
}

// Fig5 reproduces the paper's Figure 5: average message delay (cycles)
// versus offered load for each routing series on XGFT(3;4,4,8;1,4,4).
// Rows are offered loads; beyond-saturation cells grow without bound,
// as virtual cut-through's tree saturation predicts.
func Fig5(sc Scale) *Table {
	t := table1Topology()
	series := fig5SeriesList()
	tbl := &Table{
		Title:   fmt.Sprintf("Figure 5: average message delay (cycles) vs offered load, %s", t),
		XLabel:  "load",
		Columns: make([]string, len(series)),
	}
	for j, s := range series {
		if s.sel.MultiPath() {
			tbl.Columns[j] = fmt.Sprintf("%s(%d)", s.sel.Name(), s.k)
		} else {
			tbl.Columns[j] = s.sel.Name()
		}
	}
	type key struct{ j, row int }
	cells := make(map[key]*stats.Accumulator)
	for s := 0; s < sc.FlitSeeds; s++ {
		pattern := flitWorkload(t, int64(s))
		for j, sr := range series {
			base := flit.Config{
				Routing:       core.NewRouting(t, sr.sel, sr.k, int64(s)),
				Pattern:       pattern,
				Seed:          int64(s),
				WarmupCycles:  sc.FlitWarmup,
				MeasureCycles: sc.FlitMeasure,
			}
			results, err := flit.Sweep(flit.SweepConfig{Base: base, Loads: sc.Loads})
			if err != nil {
				panic(err)
			}
			for row, r := range results {
				k := key{j, row}
				if cells[k] == nil {
					cells[k] = &stats.Accumulator{}
				}
				cells[k].Add(r.AvgDelay)
			}
		}
	}
	for row, l := range sc.Loads {
		tbl.XValues = append(tbl.XValues, fmt.Sprintf("%.2f", l))
		r := make([]Cell, len(series))
		for j := range series {
			acc := cells[key{j, row}]
			hw := 0.0
			if acc.N() > 1 {
				hw = acc.ConfidenceHalfWidth(0.95)
			}
			r[j] = Cell{Mean: acc.Mean(), HalfWidth: hw, Samples: acc.N()}
		}
		tbl.Cells = append(tbl.Cells, r)
	}
	tbl.Footnote = "delay of messages completed in the measurement window; saturated points understate the true (unbounded) delay"
	return tbl
}
