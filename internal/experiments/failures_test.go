package experiments

import (
	"strings"
	"testing"

	"xgftsim/internal/topology"
)

func failScale() Scale {
	sc := tinyScale()
	sc.FaultSeeds = 2
	sc.FaultFractions = []float64{0, 0.05}
	return sc
}

// TestRunCellsPanicCapture: a panicking cell is re-raised as a
// CellPanic carrying the cell index and the goroutine's stack, in both
// the sequential and the parallel path.
func TestRunCellsPanicCapture(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				p := recover()
				cp, ok := p.(*CellPanic)
				if !ok {
					t.Fatalf("workers=%d: recovered %T (%v), want *CellPanic", workers, p, p)
				}
				if cp.Cell != 2 {
					t.Errorf("workers=%d: cell %d, want 2", workers, cp.Cell)
				}
				if cp.Value != "boom" {
					t.Errorf("workers=%d: value %v", workers, cp.Value)
				}
				if !strings.Contains(string(cp.Stack), "runCells") {
					t.Errorf("workers=%d: stack does not reach runCells:\n%s", workers, cp.Stack)
				}
				if !strings.Contains(cp.Error(), "cell 2 panicked: boom") {
					t.Errorf("workers=%d: error %q", workers, cp.Error())
				}
			}()
			runCells(nil, 4, workers, func(i int) {
				if i == 2 {
					panic("boom")
				}
			})
		}()
	}
}

// TestRunCellsPanicNested: a CellPanic escaping through an outer
// runCells keeps the inner coordinates.
func TestRunCellsPanicNested(t *testing.T) {
	defer func() {
		cp, ok := recover().(*CellPanic)
		if !ok || cp.Cell != 3 || cp.Value != "inner" {
			t.Fatalf("nested panic mangled: %+v", cp)
		}
	}()
	runCells(nil, 2, 1, func(i int) {
		if i == 1 {
			runCells(nil, 5, 1, func(j int) {
				if j == 3 {
					panic("inner")
				}
			})
		}
	})
}

// TestFailureSweepShape: the single-topology sweep has one row per
// fraction and one column per scheme, with healthy (fraction 0) loads
// positive and at or below the degraded ones for the single-path
// baseline.
func TestFailureSweepShape(t *testing.T) {
	tp := topology.MustNew(2, []int{4, 8}, []int{1, 4})
	tbl := FailureSweep(tp, failScale(), 3)
	if len(tbl.Cells) != 2 || len(tbl.Columns) != 8 {
		t.Fatalf("table shape %dx%d", len(tbl.Cells), len(tbl.Columns))
	}
	if tbl.XValues[0] != "0%" || tbl.XValues[1] != "5%" {
		t.Fatalf("XValues = %v", tbl.XValues)
	}
	for j, colName := range tbl.Columns {
		healthy, degraded := tbl.Cells[0][j], tbl.Cells[1][j]
		if healthy.Mean <= 0 || degraded.Mean <= 0 {
			t.Errorf("%s: non-positive load %g / %g", colName, healthy.Mean, degraded.Mean)
		}
		if healthy.Samples != 1 {
			t.Errorf("%s: fraction 0 used %d fault seeds", colName, healthy.Samples)
		}
		if degraded.Samples != 2 {
			t.Errorf("%s: degraded row used %d fault seeds, want 2", colName, degraded.Samples)
		}
	}
}

// TestFailuresShape: the full experiment covers both Fig 4 panels with
// the disconnected-pair column appended.
func TestFailuresShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full failure sweep in -short mode")
	}
	tbl := Failures(failScale(), 3)
	if len(tbl.Cells) != 4 || len(tbl.Columns) != 9 {
		t.Fatalf("table shape %dx%d", len(tbl.Cells), len(tbl.Columns))
	}
	if tbl.Columns[8] != "disconn" {
		t.Fatalf("columns %v", tbl.Columns)
	}
	if tbl.XValues[0] != "a 0%" || tbl.XValues[3] != "b 5%" {
		t.Fatalf("XValues = %v", tbl.XValues)
	}
	for i, x := range tbl.XValues {
		disc := tbl.Cells[i][8]
		if strings.HasSuffix(x, " 0%") {
			if disc.Mean != 0 {
				t.Errorf("%s: disconnected fraction %g on healthy fabric", x, disc.Mean)
			}
		} else if disc.Mean < 0 || disc.Mean > 1 {
			t.Errorf("%s: disconnected fraction %g out of range", x, disc.Mean)
		}
	}
}
