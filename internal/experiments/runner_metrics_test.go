package experiments

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"xgftsim/internal/obs"
)

// TestRunCellsMetrics pins the cell-scheduler observability: every cell
// run (parallel or sequential, panicking or not) lands in cells_done
// and the wall-clock histogram, the occupancy gauge returns to zero,
// and the high-water mark reflects real concurrency.
func TestRunCellsMetrics(t *testing.T) {
	before := obs.Default().Snapshot()
	var concurrent, peak atomic.Int64
	runCells(nil, 8, 4, func(i int) {
		c := concurrent.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
		concurrent.Add(-1)
	})
	d := obs.Default().Delta(before)
	if n, _ := d["experiments.cells_done"].(int64); n != 8 {
		t.Errorf("cells_done delta = %v, want 8", d["experiments.cells_done"])
	}
	hs, ok := d["experiments.cell_seconds"].(obs.HistogramSnapshot)
	if !ok || hs.Count != 8 {
		t.Errorf("cell_seconds delta = %+v, want 8 observations", d["experiments.cell_seconds"])
	}
	if hs.Sum < 8*0.005 {
		t.Errorf("cell_seconds sum = %g, want >= %g", hs.Sum, 8*0.005)
	}
	if running, _ := d["experiments.cells_running"].(int64); running != 0 {
		t.Errorf("cells_running = %d after runCells returned, want 0", running)
	}
	if occ, _ := d["experiments.worker_occupancy_max"].(int64); occ < peak.Load() {
		t.Errorf("worker_occupancy_max = %d, want >= observed peak %d", occ, peak.Load())
	}
}

// TestRunCellsMetricsSurvivePanic checks the occupancy gauge does not
// leak when a cell panics.
func TestRunCellsMetricsSurvivePanic(t *testing.T) {
	before := obs.Default().Snapshot()
	func() {
		defer func() { recover() }()
		runCells(nil, 3, 1, func(i int) {
			if i == 1 {
				panic("boom")
			}
		})
	}()
	d := obs.Default().Delta(before)
	if running, _ := d["experiments.cells_running"].(int64); running != 0 {
		t.Errorf("cells_running leaked to %d after a panicking cell", running)
	}
	if n, _ := d["experiments.cells_done"].(int64); n < 2 {
		t.Errorf("cells_done delta = %d, want >= 2", n)
	}
}

// TestRunCellsCancellation: a cancelled context stops the sweep before
// all cells run and surfaces as ErrInterrupted wrapped in a CellPanic;
// a context cancelled only after the last cell is a clean completion.
func TestRunCellsCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		err := func() (err error) {
			defer func() {
				if p := recover(); p != nil {
					cp, ok := p.(*CellPanic)
					if !ok {
						t.Fatalf("workers=%d: panic %v is not a *CellPanic", workers, p)
					}
					err = cp
				}
			}()
			runCells(ctx, 64, workers, func(i int) {
				if ran.Add(1) == 3 {
					cancel() // cancel mid-sweep, from inside a cell
				}
			})
			return nil
		}()
		cancel()
		if err == nil {
			t.Fatalf("workers=%d: cancelled sweep completed without error", workers)
		}
		if !errors.Is(err, ErrInterrupted) {
			t.Fatalf("workers=%d: error %v does not wrap ErrInterrupted", workers, err)
		}
		if n := ran.Load(); n >= 64 {
			t.Fatalf("workers=%d: all %d cells ran despite cancellation", workers, n)
		}
	}

	// Cancellation after completion is not an interruption.
	ctx, cancel := context.WithCancel(context.Background())
	done := func() (interrupted bool) {
		defer func() {
			if p := recover(); p != nil {
				interrupted = true
			}
		}()
		runCells(ctx, 8, 4, func(i int) {})
		return false
	}()
	cancel()
	if done {
		t.Fatal("completed sweep reported interruption")
	}
}
