package experiments

import (
	"fmt"

	"xgftsim/internal/core"
	"xgftsim/internal/flit"
	"xgftsim/internal/flow"
	"xgftsim/internal/lid"
	"xgftsim/internal/stats"
	"xgftsim/internal/topology"
	"xgftsim/internal/traffic"
)

// TierBalance quantifies the design rationale behind the disjoint
// heuristic (Section 4.2.3): shift-1 balances only the top tier while
// disjoint balances every tier. It reports the average per-tier
// maximum link load over random permutations at a fixed K.
func TierBalance(sc Scale, k int, permSeed int64) *Table {
	t := table1Topology()
	schemes := []core.Selector{core.Shift1{}, core.Disjoint{}}
	tbl := &Table{
		Title:   fmt.Sprintf("Ablation: per-tier average max link load at K=%d, %s (permutation traffic)", k, t),
		XLabel:  "tier",
		Columns: []string{"shift-1 up", "shift-1 down", "disjoint up", "disjoint down"},
	}
	samples := sc.Sampling.InitialSamples
	accs := make([][]stats.Accumulator, t.H()) // [tier][column]
	for i := range accs {
		accs[i] = make([]stats.Accumulator, 4)
	}
	n := t.NumProcessors()
	for j, sel := range schemes {
		ev := flow.NewEvaluator(core.NewRouting(t, sel, k, 0))
		for i := 0; i < samples; i++ {
			rng := stats.Stream(permSeed, int64(i))
			tm := traffic.FromPermutation(traffic.RandomPermutation(n, rng))
			ev.Loads(tm)
			tiers := ev.TierLoads()
			for tier := 0; tier < t.H(); tier++ {
				accs[tier][2*j].Add(tiers[tier][0])
				accs[tier][2*j+1].Add(tiers[tier][1])
			}
		}
	}
	for tier := 0; tier < t.H(); tier++ {
		tbl.XValues = append(tbl.XValues, fmt.Sprintf("%d-%d", tier, tier+1))
		row := make([]Cell, 4)
		for c := 0; c < 4; c++ {
			a := accs[tier][c]
			row[c] = Cell{Mean: a.Mean(), HalfWidth: a.ConfidenceHalfWidth(0.95), Samples: a.N()}
		}
		tbl.Cells = append(tbl.Cells, row)
	}
	tbl.Footnote = "disjoint's gains concentrate in the lower tiers, where shift-1's paths coincide"
	return tbl
}

// LIDBudget reproduces the resource argument of the introduction: the
// InfiniBand addresses required for K-path routing on each evaluation
// topology, and whether they fit the unicast LID space.
func LIDBudget() *Table {
	ks := []int{1, 2, 4, 8, 16, 32, 64, 128}
	tbl := &Table{
		Title:   fmt.Sprintf("Ablation: LID budget per topology and K (unicast space: %d)", lid.MaxUnicastLIDs),
		XLabel:  "topology",
		Columns: make([]string, len(ks)),
	}
	for j, k := range ks {
		tbl.Columns[j] = fmt.Sprintf("K=%d", k)
	}
	for _, name := range topology.PaperTopologies() {
		t, err := topology.FromPaper(name)
		if err != nil {
			panic(err)
		}
		row := make([]Cell, len(ks))
		for j, k := range ks {
			p, err := lid.NewPlan(t, k)
			if err != nil {
				row[j] = Cell{Mean: -1, Samples: 1} // does not fit
				continue
			}
			row[j] = Cell{Mean: float64(p.TotalLIDs), Samples: 1}
		}
		tbl.XValues = append(tbl.XValues, string(name))
		tbl.Cells = append(tbl.Cells, row)
	}
	tbl.Footnote = "-1 marks configurations that exceed the LID space or the LMC=7 block limit; unlimited multi-path is unrealizable on the 24-port 3-tree"
	return tbl
}

// EffectiveDiversity measures how much path diversity survives the
// destination-based (LFT) realization for pairs at each NCA level:
// disjoint keeps low-level diversity, shift-1 collapses it.
func EffectiveDiversity(k int) *Table {
	t := table1Topology()
	plan, err := lid.NewPlan(t, k)
	if err != nil {
		panic(err)
	}
	schemes := []core.Selector{core.Shift1{}, core.Disjoint{}, core.RandomK{}}
	tbl := &Table{
		Title:   fmt.Sprintf("Ablation: LFT-realized effective paths by NCA level at K=%d, %s", k, t),
		XLabel:  "NCA level",
		Columns: make([]string, len(schemes)),
	}
	for j, s := range schemes {
		tbl.Columns[j] = s.Name()
	}
	fabrics := make([]*lid.Fabric, len(schemes))
	for j, s := range schemes {
		f, err := lid.BuildFabric(plan, s, 1)
		if err != nil {
			panic(err)
		}
		fabrics[j] = f
	}
	n := t.NumProcessors()
	for lvl := 1; lvl <= t.H(); lvl++ {
		accs := make([]stats.Accumulator, len(schemes))
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				if src == dst || t.NCALevel(src, dst) != lvl {
					continue
				}
				for j := range schemes {
					accs[j].Add(float64(fabrics[j].EffectivePaths(src, dst)))
				}
			}
		}
		tbl.XValues = append(tbl.XValues, fmt.Sprintf("%d", lvl))
		row := make([]Cell, len(schemes))
		for j := range schemes {
			row[j] = Cell{Mean: accs[j].Mean(), Samples: accs[j].N()}
		}
		tbl.Cells = append(tbl.Cells, row)
	}
	tbl.Footnote = "average distinct physical paths per SD pair after truncating full-height LID tags to the pair's subtree"
	return tbl
}

// WorkloadSensitivity contrasts the two readings of "uniform random
// traffic" (DESIGN.md §5): with per-message random destinations
// d-mod-k's tree alignment makes multi-path pointless, while a fixed
// random assignment reproduces the paper's Table 1 ordering.
func WorkloadSensitivity(sc Scale) *Table {
	t := table1Topology()
	schemes := []struct {
		sel core.Selector
		k   int
	}{{core.DModK{}, 1}, {core.Disjoint{}, 2}, {core.Disjoint{}, 8}}
	tbl := &Table{
		Title:   fmt.Sprintf("Ablation: max throughput under the two uniform-workload readings, %s", t),
		XLabel:  "routing",
		Columns: []string{"fixed assignment", "per-message random"},
	}
	for _, s := range schemes {
		name := s.sel.Name()
		if s.sel.MultiPath() {
			name = fmt.Sprintf("%s(%d)", name, s.k)
		}
		row := make([]Cell, 2)
		row[0] = maxThroughput(t, s.sel, s.k, sc)
		// Per-message uniform destinations.
		base := flit.Config{
			Routing:       core.NewRouting(t, s.sel, s.k, 0),
			Pattern:       traffic.UniformPattern{N: t.NumProcessors()},
			Seed:          0,
			WarmupCycles:  sc.FlitWarmup,
			MeasureCycles: sc.FlitMeasure,
		}
		results, err := flit.Sweep(flit.SweepConfig{Base: base, Loads: sc.Loads})
		if err != nil {
			panic(err)
		}
		row[1] = Cell{Mean: flit.MaxThroughput(results), Samples: 1}
		tbl.XValues = append(tbl.XValues, name)
		tbl.Cells = append(tbl.Cells, row)
	}
	tbl.Footnote = "under per-message randomness every down link serves one destination under d-mod-k (perfect alignment)"
	return tbl
}
