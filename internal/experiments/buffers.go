package experiments

import (
	"fmt"

	"xgftsim/internal/core"
	"xgftsim/internal/flit"
	"xgftsim/internal/stats"
)

// BufferDepth resolves the one qualitative discrepancy of the
// reproduction: with the reconstructed 4-packet buffers, saturation
// throughput turns over between K=4 and K=8 (over-spreading fills the
// shallow per-port queues with interleaved flows), while the paper
// reports monotone gains up to K=8. Sweeping the buffer depth shows
// the turnover is purely a buffering artifact: at 8+ packets per port
// the paper's monotonicity reappears. The paper's buffer size digit
// was lost in the source text; this table bounds what it must have
// been.
func BufferDepth(sc Scale) *Table {
	t := table1Topology()
	ks := []int{2, 4, 8, 16}
	bufs := []int{2, 4, 8, 16}
	tbl := &Table{
		Title:   fmt.Sprintf("Extension: disjoint saturation throughput vs buffer depth, %s", t),
		XLabel:  "buffer(pkts)",
		Columns: make([]string, len(ks)),
	}
	for j, k := range ks {
		tbl.Columns[j] = fmt.Sprintf("K=%d", k)
	}
	for _, buf := range bufs {
		row := make([]Cell, len(ks))
		for j, k := range ks {
			var acc stats.Accumulator
			for s := 0; s < sc.FlitSeeds; s++ {
				base := flit.Config{
					Routing:       core.NewRouting(t, core.Disjoint{}, k, int64(s)),
					Pattern:       flitWorkload(t, int64(s)),
					Seed:          int64(s),
					WarmupCycles:  sc.FlitWarmup,
					MeasureCycles: sc.FlitMeasure,
					BufferPackets: buf,
				}
				results, err := flit.Sweep(flit.SweepConfig{Base: base, Loads: sc.Loads})
				if err != nil {
					panic(err)
				}
				acc.Add(flit.MaxThroughput(results))
			}
			row[j] = Cell{Mean: acc.Mean(), HalfWidth: ci95(acc), Samples: acc.N()}
		}
		tbl.XValues = append(tbl.XValues, fmt.Sprintf("%d", buf))
		tbl.Cells = append(tbl.Cells, row)
	}
	tbl.Footnote = "monotone-in-K behaviour (the paper's trend) requires at least ~8-packet buffers; the 4-packet reconstruction turns over at K=8"
	return tbl
}

// VirtualChannelDepth relaxes the paper's other fixed resource: the
// single virtual channel. Per-VC queues decouple interleaved flows the
// same way deeper buffers do, so saturation throughput rises with VC
// count at fixed 4-packet-per-VC buffering.
func VirtualChannelDepth(sc Scale) *Table {
	t := table1Topology()
	ks := []int{2, 4, 8, 16}
	vcs := []int{1, 2, 4}
	tbl := &Table{
		Title:   fmt.Sprintf("Extension: disjoint saturation throughput vs virtual channels, %s", t),
		XLabel:  "VCs",
		Columns: make([]string, len(ks)),
	}
	for j, k := range ks {
		tbl.Columns[j] = fmt.Sprintf("K=%d", k)
	}
	for _, v := range vcs {
		row := make([]Cell, len(ks))
		for j, k := range ks {
			var acc stats.Accumulator
			for s := 0; s < sc.FlitSeeds; s++ {
				base := flit.Config{
					Routing:         core.NewRouting(t, core.Disjoint{}, k, int64(s)),
					Pattern:         flitWorkload(t, int64(s)),
					Seed:            int64(s),
					WarmupCycles:    sc.FlitWarmup,
					MeasureCycles:   sc.FlitMeasure,
					VirtualChannels: v,
				}
				results, err := flit.Sweep(flit.SweepConfig{Base: base, Loads: sc.Loads})
				if err != nil {
					panic(err)
				}
				acc.Add(flit.MaxThroughput(results))
			}
			row[j] = Cell{Mean: acc.Mean(), HalfWidth: ci95(acc), Samples: acc.N()}
		}
		tbl.XValues = append(tbl.XValues, fmt.Sprintf("%d", v))
		tbl.Cells = append(tbl.Cells, row)
	}
	tbl.Footnote = "the paper's evaluation fixes 1 VC; each VC adds a 4-packet queue per port"
	return tbl
}
