package experiments

import (
	"fmt"

	"xgftsim/internal/flow"
	"xgftsim/internal/topology"
)

// Fig4 reproduces one panel of the paper's Figure 4: the average
// maximum link load of random permutations versus the number of paths
// K, for d-mod-k, shift-1, disjoint and random. d-mod-k ignores K and
// appears as a flat reference series.
func Fig4(t *topology.Topology, sc Scale, permSeed int64) *Table {
	return Fig4Ks(t, KGrid(t), sc, permSeed)
}

// Fig4Ks is Fig4 over an explicit K grid (used by the benchmarks to
// bound runtime on the largest topologies). Each unique (scheme, K)
// cell is one flow.Experiment — its routing is compiled (or lazily
// derived) once and shared by that cell's sampler goroutines — and the
// cells fan out across at most sc.Workers concurrent slots with
// deterministic result placement. Single-path baselines ignore K, so
// they are measured once and replicated across rows.
func Fig4Ks(t *topology.Topology, ks []int, sc Scale, permSeed int64) *Table {
	schemes := fig4Schemes()
	tbl := &Table{
		Title:   fmt.Sprintf("Figure 4: average maximum link load vs paths, %s (permutation traffic)", t),
		XLabel:  "K",
		Columns: make([]string, len(schemes)),
	}
	for j, s := range schemes {
		tbl.Columns[j] = s.Name()
	}
	type job struct{ row, col int } // row < 0: flat single-path cell
	var jobs []job
	for j, sel := range schemes {
		if !sel.MultiPath() {
			jobs = append(jobs, job{-1, j})
		}
	}
	for i := range ks {
		for j, sel := range schemes {
			if sel.MultiPath() {
				jobs = append(jobs, job{i, j})
			}
		}
	}
	flat := make([]Cell, len(schemes))
	isFlat := make([]bool, len(schemes))
	cells := make([][]Cell, len(ks))
	for i := range cells {
		cells[i] = make([]Cell, len(schemes))
	}
	runCells(len(jobs), sc.Workers, func(x int) {
		jb := jobs[x]
		k := 1
		if jb.row >= 0 {
			k = ks[jb.row]
		}
		res := flow.Experiment{
			Topo:     t,
			Sel:      schemes[jb.col],
			K:        k,
			PermSeed: permSeed,
			Sampling: sc.Sampling,
		}.Run()
		c := Cell{Mean: res.Acc.Mean(), HalfWidth: res.HalfWidth, Samples: res.Acc.N()}
		if jb.row < 0 {
			flat[jb.col], isFlat[jb.col] = c, true
		} else {
			cells[jb.row][jb.col] = c
		}
	})
	for i, k := range ks {
		for j := range schemes {
			if isFlat[j] {
				cells[i][j] = flat[j]
			}
		}
		tbl.XValues = append(tbl.XValues, fmt.Sprintf("%d", k))
		tbl.Cells = append(tbl.Cells, cells[i])
	}
	tbl.Footnote = fmt.Sprintf("adaptive sampling: %.0f%% confidence, %.0f%% precision target",
		confidencePct(sc), precisionPct(sc))
	return tbl
}

func confidencePct(sc Scale) float64 {
	c := sc.Sampling.Confidence
	if c == 0 {
		c = 0.99
	}
	return c * 100
}

func precisionPct(sc Scale) float64 {
	p := sc.Sampling.RelPrecision
	if p == 0 {
		p = 0.01
	}
	return p * 100
}

// Fig4Panel maps the paper's panel letters to their topologies.
func Fig4Panel(panel string) (*topology.Topology, error) {
	switch panel {
	case "a":
		return topology.FromPaper(topology.Paper16Port2Tree)
	case "b":
		return topology.FromPaper(topology.Paper16Port3Tree)
	case "c":
		return topology.FromPaper(topology.Paper24Port2Tree)
	case "d":
		return topology.FromPaper(topology.Paper24Port3Tree)
	}
	return nil, fmt.Errorf("experiments: Figure 4 has panels a-d, not %q", panel)
}
