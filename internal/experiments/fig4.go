package experiments

import (
	"fmt"

	"xgftsim/internal/flow"
	"xgftsim/internal/topology"
)

// Fig4 reproduces one panel of the paper's Figure 4: the average
// maximum link load of random permutations versus the number of paths
// K, for d-mod-k, shift-1, disjoint and random. d-mod-k ignores K and
// appears as a flat reference series.
func Fig4(t *topology.Topology, sc Scale, permSeed int64) *Table {
	return Fig4Ks(t, KGrid(t), sc, permSeed)
}

// Fig4Ks is Fig4 over an explicit K grid (used by the benchmarks to
// bound runtime on the largest topologies). Each multipath scheme is
// one multi-K cell: a single flow.MultiKExperiment evaluates every K
// of the effective grid in one permutation stream over one Kmax
// routing (compiled once when the policy allows), with the vector
// adaptive sampler freezing each K's accumulator independently.
// Per-sample parallelism inside each cell (Sampling.Parallelism, which
// defaults to GOMAXPROCS) keeps worker occupancy up even though the
// cell count shrank to one per scheme; the cells still fan out across
// at most sc.Workers slots via runCells with deterministic result
// placement. Single-path baselines ignore K, so they are measured once
// and replicated across rows, and requested K values at or above the
// topology's maximum path count — all equivalent to UMULTI — collapse
// to one measured column replicated the same way (see effectiveKs).
func Fig4Ks(t *topology.Topology, ks []int, sc Scale, permSeed int64) *Table {
	schemes := fig4Schemes()
	tbl := &Table{
		Title:   fmt.Sprintf("Figure 4: average maximum link load vs paths, %s (permutation traffic)", t),
		XLabel:  "K",
		Columns: make([]string, len(schemes)),
	}
	for j, s := range schemes {
		tbl.Columns[j] = s.Name()
	}
	eff, rowOf := effectiveKs(t, ks)
	flat := make([]Cell, len(schemes))
	multi := make([][]Cell, len(schemes)) // [col][effective-K index]
	runCells(sc.Ctx, len(schemes), sc.Workers, func(j int) {
		sel := schemes[j]
		if !sel.MultiPath() {
			res := flow.Experiment{
				Topo:     t,
				Sel:      sel,
				K:        1,
				PermSeed: permSeed,
				Sampling: sc.Sampling,
			}.Run()
			flat[j] = Cell{Mean: res.Acc.Mean(), HalfWidth: res.HalfWidth, Samples: res.Acc.N()}
			return
		}
		vec := flow.MultiKExperiment{
			Topo:     t,
			Sel:      sel,
			Ks:       eff,
			PermSeed: permSeed,
			Sampling: sc.Sampling,
		}.Run()
		col := make([]Cell, len(eff))
		for r := range eff {
			col[r] = Cell{Mean: vec.Accs[r].Mean(), HalfWidth: vec.HalfWidths[r], Samples: vec.Accs[r].N()}
		}
		multi[j] = col
	})
	for i, k := range ks {
		row := make([]Cell, len(schemes))
		for j, sel := range schemes {
			if sel.MultiPath() {
				row[j] = multi[j][rowOf[i]]
			} else {
				row[j] = flat[j]
			}
		}
		tbl.XValues = append(tbl.XValues, fmt.Sprintf("%d", k))
		tbl.Cells = append(tbl.Cells, row)
	}
	tbl.Footnote = fmt.Sprintf("adaptive sampling: %.0f%% confidence, %.0f%% precision target",
		confidencePct(sc), precisionPct(sc))
	return tbl
}

func confidencePct(sc Scale) float64 {
	c := sc.Sampling.Confidence
	if c == 0 {
		c = 0.99
	}
	return c * 100
}

func precisionPct(sc Scale) float64 {
	p := sc.Sampling.RelPrecision
	if p == 0 {
		p = 0.01
	}
	return p * 100
}

// Fig4Panel maps the paper's panel letters to their topologies.
func Fig4Panel(panel string) (*topology.Topology, error) {
	switch panel {
	case "a":
		return topology.FromPaper(topology.Paper16Port2Tree)
	case "b":
		return topology.FromPaper(topology.Paper16Port3Tree)
	case "c":
		return topology.FromPaper(topology.Paper24Port2Tree)
	case "d":
		return topology.FromPaper(topology.Paper24Port3Tree)
	}
	return nil, fmt.Errorf("experiments: Figure 4 has panels a-d, not %q", panel)
}
