package experiments

import (
	"fmt"

	"xgftsim/internal/core"
	"xgftsim/internal/flit"
	"xgftsim/internal/stats"
	"xgftsim/internal/topology"
	"xgftsim/internal/traffic"
)

// adaptiveKTopology is the head-to-head fabric for the output-selector
// comparison: the 2-level XGFT(2;8,16;1,8). It is chosen over the
// paper's Table 1 tree because Theorem 2's adversarial construction
// needs W = Πw_i >= M (per-subtree nodes), which XGFT(3;4,4,8;1,4,4)
// violates; here W = M = 8 and every pair has 8 minimal paths, so a
// K = 4 budget is a real restriction for both oblivious-K and
// adaptive-K.
func adaptiveKTopology() *topology.Topology {
	return topology.MustNew(2, []int{8, 16}, []int{1, 8})
}

// adaptiveKScenario is one traffic row of the AdaptiveK table.
type adaptiveKScenario struct {
	name      string
	pattern   func(t *topology.Topology) traffic.Pattern
	vcs       int
	vcScheme  flit.VCScheme
	burstMean float64
}

// adversarialPattern overlays Theorem 2's worst-case flows on an
// otherwise idle fabric: each source of the first height-(h-1) subtree
// sends to its theorem destination, all of which d-mod-k maps through
// one up link. Sources outside the construction stay silent (identity
// entries generate no traffic), so the measured throughput isolates
// the contended subtree.
func adversarialPattern(t *topology.Topology) traffic.Pattern {
	m, err := traffic.AdversarialDModK(t)
	if err != nil {
		panic(err)
	}
	perm := make([]int, t.NumProcessors())
	for i := range perm {
		perm[i] = i
	}
	for _, f := range m.Flows() {
		perm[f.Src] = f.Dst
	}
	return traffic.NewPermutationPattern("adversarial(thm2)", perm)
}

func adaptiveKScenarios(t *topology.Topology) []adaptiveKScenario {
	uniform := func(t *topology.Topology) traffic.Pattern {
		return traffic.UniformPattern{N: t.NumProcessors()}
	}
	hotspot := func(t *topology.Topology) traffic.Pattern {
		return traffic.HotspotPattern{N: t.NumProcessors(), Hot: 0, Fraction: 0.2}
	}
	return []adaptiveKScenario{
		{name: "uniform", pattern: uniform},
		{name: "hotspot", pattern: hotspot},
		{name: "adversarial", pattern: adversarialPattern},
		{name: "bursty", pattern: uniform, burstMean: 4},
		{name: "hotspot 2vc/subtree", pattern: hotspot, vcs: 2, vcScheme: flit.VCDestSubtree},
		{name: "hotspot 2vc/downdig", pattern: hotspot, vcs: 2, vcScheme: flit.VCDownDigit},
	}
}

// adaptiveKSelectors lists the compared output-selection disciplines.
// Oblivious-K and adaptive-K both run on the same Disjoint K-path
// compile; full-adaptive ignores the compiled set and may use every
// minimal path.
func adaptiveKSelectors() []flit.OutputSelector {
	return []flit.OutputSelector{flit.SelectOblivious, flit.SelectAdaptiveK, flit.SelectAdaptive}
}

// adaptiveKPaths is the per-pair path budget the K-limited selectors
// compile with (half of the fabric's 8 minimal paths).
const adaptiveKPaths = 4

// AdaptiveK measures maximum accepted throughput head-to-head across
// output-selection disciplines — oblivious K-path rotation, adaptive-K
// (queue-occupancy steering restricted to the compiled K paths), and
// full minimal-adaptive — on XGFT(2;8,16;1,8) under uniform, hotspot,
// Theorem 2 adversarial, and bursty arrivals, plus hotspot with two
// VCs under each VC-assignment scheme. Rows are traffic scenarios,
// columns selectors.
func AdaptiveK(sc Scale) *Table {
	t := adaptiveKTopology()
	scenarios := adaptiveKScenarios(t)
	sels := adaptiveKSelectors()
	tbl := &Table{
		Title: fmt.Sprintf("Adaptive-K head-to-head: max throughput (fraction of capacity), %s, Disjoint K=%d",
			t, adaptiveKPaths),
		XLabel:  "traffic",
		Columns: make([]string, len(sels)),
	}
	for j, s := range sels {
		switch s {
		case flit.SelectOblivious:
			tbl.Columns[j] = "oblivious-K"
		case flit.SelectAdaptiveK:
			tbl.Columns[j] = "adaptive-K"
		default:
			tbl.Columns[j] = "adaptive"
		}
	}
	cells := make([][]Cell, len(scenarios))
	for i := range cells {
		cells[i] = make([]Cell, len(sels))
	}
	runCells(sc.Ctx, len(scenarios)*len(sels), sc.Workers, func(x int) {
		i, j := x/len(sels), x%len(sels)
		sn := scenarios[i]
		var acc stats.Accumulator
		for s := 0; s < sc.FlitSeeds; s++ {
			base := flit.Config{
				Routing:         core.NewRouting(t, core.Disjoint{}, adaptiveKPaths, int64(s)),
				Pattern:         sn.pattern(t),
				Seed:            int64(s),
				WarmupCycles:    sc.FlitWarmup,
				MeasureCycles:   sc.FlitMeasure,
				Selector:        sels[j],
				VirtualChannels: sn.vcs,
				VCScheme:        sn.vcScheme,
				BurstMean:       sn.burstMean,
			}
			results, err := flit.Sweep(flit.SweepConfig{Base: base, Loads: sc.Loads})
			if err != nil {
				panic(err)
			}
			acc.Add(flit.MaxThroughput(results))
		}
		hw := 0.0
		if acc.N() > 1 {
			hw = acc.ConfidenceHalfWidth(0.95)
		}
		cells[i][j] = Cell{Mean: acc.Mean(), HalfWidth: hw, Samples: acc.N()}
	})
	for i, sn := range scenarios {
		tbl.XValues = append(tbl.XValues, sn.name)
		tbl.Cells = append(tbl.Cells, cells[i])
	}
	tbl.Footnote = fmt.Sprintf(
		"%d workload seed(s); K=%d of %d minimal paths; hotspot: 20%% of traffic to node 0; bursty: geometric bursts, mean %d; adversarial: Theorem 2 flows, idle elsewhere",
		sc.FlitSeeds, adaptiveKPaths, t.MaxPaths(), 4)
	return tbl
}
