package experiments

import (
	"fmt"

	"xgftsim/internal/core"
	"xgftsim/internal/flit"
	"xgftsim/internal/flow"
	"xgftsim/internal/stats"
	"xgftsim/internal/traffic"
)

// ModelValidation cross-validates the two simulators: for a fixed
// assignment workload, the flow level predicts 1/MLOAD as the largest
// *uniform per-source* rate — the fair saturation point at which the
// most loaded link fills. The flit level measures aggregate accepted
// throughput, which can exceed the prediction for unbalanced routings
// (flows that miss the bottleneck keep flowing after it saturates:
// d-mod-k's measured/predicted ratio is large exactly because its
// bottleneck starves few flows), and falls below it for perfectly
// balanced ones (VCT's finite buffers, burstiness and tree saturation
// cost 10-50%). The key validation is ordering: routings the flow
// model ranks better must not measure worse — the assumption under the
// paper's use of max link load as its flow-level figure of merit.
func ModelValidation(sc Scale) *Table {
	t := table1Topology()
	rows := []struct {
		name string
		sel  core.Selector
		k    int
	}{
		{"d-mod-k", core.DModK{}, 1},
		{"shift-1(4)", core.Shift1{}, 4},
		{"random(4)", core.RandomK{}, 4},
		{"disjoint(4)", core.Disjoint{}, 4},
		{"disjoint(8)", core.Disjoint{}, 8},
		{"umulti", core.UMulti{}, 0},
	}
	tbl := &Table{
		Title:   fmt.Sprintf("Extension: flow-model prediction (1/MLOAD) vs flit-level saturation throughput, %s", t),
		XLabel:  "routing",
		Columns: []string{"predicted", "measured", "measured/predicted"},
	}
	n := t.NumProcessors()
	for _, row := range rows {
		var pred, meas stats.Accumulator
		for s := 0; s < sc.FlitSeeds; s++ {
			rng := stats.Stream(int64(s), 31)
			assignment := traffic.RandomDerangementish(n, rng)
			r := core.NewRouting(t, row.sel, row.k, int64(s))
			// Flow-level prediction: unit demand per source, the
			// bottleneck link fills first.
			mload := flow.NewEvaluator(r).MaxLoad(traffic.FromPermutation(assignment))
			pred.Add(1 / mload)
			// Flit-level measurement over the load sweep.
			base := flit.Config{
				Routing:       r,
				Pattern:       traffic.NewPermutationPattern("assignment", assignment),
				Seed:          int64(s),
				WarmupCycles:  sc.FlitWarmup,
				MeasureCycles: sc.FlitMeasure,
			}
			results, err := flit.Sweep(flit.SweepConfig{Base: base, Loads: sc.Loads})
			if err != nil {
				panic(err)
			}
			meas.Add(flit.MaxThroughput(results))
		}
		ratio := 0.0
		if pred.Mean() > 0 {
			ratio = meas.Mean() / pred.Mean()
		}
		tbl.XValues = append(tbl.XValues, row.name)
		tbl.Cells = append(tbl.Cells, []Cell{
			{Mean: pred.Mean(), HalfWidth: ci95(pred), Samples: pred.N()},
			{Mean: meas.Mean(), HalfWidth: ci95(meas), Samples: meas.N()},
			{Mean: ratio, Samples: pred.N()},
		})
	}
	tbl.Footnote = "predicted = fair per-source rate (fluid, infinite buffers); measured = aggregate VCT throughput — above prediction under unfairness, below it under spreading overheads"
	return tbl
}

func ci95(a stats.Accumulator) float64 {
	if a.N() < 2 {
		return 0
	}
	return a.ConfidenceHalfWidth(0.95)
}
