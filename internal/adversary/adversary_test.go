package adversary

import (
	"math"
	"testing"

	"xgftsim/internal/core"
	"xgftsim/internal/flow"
	"xgftsim/internal/topology"
	"xgftsim/internal/traffic"
)

func searchTopo() *topology.Topology {
	return topology.MustNew(2, []int{4, 8}, []int{1, 4}) // 8-port 2-tree, N=32
}

func quickCfg(seed int64) Config {
	return Config{Steps: 600, Restarts: 2, Seed: seed}
}

// TestWorstPermutationBeatsRandomAverage: the search must find a
// permutation clearly worse (higher ratio) than typical random ones
// for d-mod-k.
func TestWorstPermutationBeatsRandomAverage(t *testing.T) {
	tp := searchTopo()
	r := core.NewRouting(tp, core.DModK{}, 1, 0)
	res := WorstPermutation(r, quickCfg(1))
	if res.Evaluations <= 0 || len(res.Perm) != tp.NumProcessors() {
		t.Fatalf("malformed result %+v", res)
	}
	// Random permutations on this tree average a ratio around 3.5;
	// the worst case must reach at least the m1=4 concentration.
	if res.Ratio < 4 {
		t.Fatalf("worst ratio %.2f, expected >= 4", res.Ratio)
	}
	// The reported ratio must be consistent with a fresh evaluation.
	tm := traffic.FromPermutation(res.Perm)
	check := flow.NewEvaluator(r).MaxLoad(tm) / flow.OptimalLoad(tp, tm)
	if math.Abs(check-res.Ratio) > 1e-9 {
		t.Fatalf("reported %.4f, recomputed %.4f", res.Ratio, check)
	}
}

// TestUMultiUnbreakable: no permutation can push UMULTI above ratio 1
// (Theorem 1); the search doubles as a property check.
func TestUMultiUnbreakable(t *testing.T) {
	tp := searchTopo()
	r := core.NewRouting(tp, core.UMulti{}, 0, 0)
	res := WorstPermutation(r, quickCfg(2))
	if math.Abs(res.Ratio-1) > 1e-9 {
		t.Fatalf("UMULTI worst ratio %.4f, want 1", res.Ratio)
	}
}

// TestLimitedMultipathShrinksWorstCase: the worst case found for
// disjoint(K) must shrink as K grows.
func TestLimitedMultipathShrinksWorstCase(t *testing.T) {
	tp := searchTopo()
	worst := func(k int) float64 {
		var sel core.Selector = core.Disjoint{}
		if k == 1 {
			sel = core.DModK{}
		}
		return WorstPermutation(core.NewRouting(tp, sel, k, 0), quickCfg(3)).Ratio
	}
	w1, w2, w4 := worst(1), worst(2), worst(4)
	if !(w2 < w1 && w4 < w2) {
		t.Fatalf("worst ratios not shrinking: K=1 %.2f, K=2 %.2f, K=4 %.2f", w1, w2, w4)
	}
}

// TestDeterministicGivenSeed: the search is reproducible.
func TestDeterministicGivenSeed(t *testing.T) {
	tp := searchTopo()
	r := core.NewRouting(tp, core.Disjoint{}, 2, 0)
	a := WorstPermutation(r, quickCfg(7))
	b := WorstPermutation(r, quickCfg(7))
	if a.Ratio != b.Ratio {
		t.Fatalf("same seed, ratios %.4f vs %.4f", a.Ratio, b.Ratio)
	}
	c := WorstPermutation(r, quickCfg(8))
	_ = c // different seed may find a different permutation; just must not crash
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Steps <= 0 || c.Restarts <= 0 || c.InitialTemp <= 0 {
		t.Fatalf("defaults not filled: %+v", c)
	}
	if c.Cooling <= 0 || c.Cooling >= 1 {
		t.Fatalf("cooling %v", c.Cooling)
	}
}
