// Package adversary searches for worst-case traffic for a given
// routing: the permutation that maximizes the performance ratio
// PERF(r, TM) = MLOAD / OLOAD. Random permutation averages (Figure 4)
// describe typical behaviour; the worst case lower-bounds the oblivious
// performance ratio and exposes how much adversarial slack each
// heuristic leaves at a given K (in the spirit of Towles & Dally's
// worst-case permutation search and of the paper's Theorem 2, which
// hand-constructs such a demand for d-mod-k).
//
// The search is simulated annealing over the permutation group: the
// neighbourhood operator swaps the destinations of two sources, the
// objective is the performance ratio, and temperature decays
// geometrically. Annealing is restarted from several seeds and the
// best permutation found is returned. For single-path destination-
// based routings the search reliably rediscovers Theorem 2-like
// concentrations; for UMULTI it can never exceed 1, which doubles as a
// correctness check.
package adversary

import (
	"math"

	"xgftsim/internal/core"
	"xgftsim/internal/flow"
	"xgftsim/internal/stats"
	"xgftsim/internal/topology"
	"xgftsim/internal/traffic"
)

// Config tunes the annealing search.
type Config struct {
	// Steps per restart. Default 2000.
	Steps int
	// Restarts from fresh random permutations. Default 4.
	Restarts int
	// InitialTemp is the starting acceptance temperature relative to
	// the objective scale. Default 0.5.
	InitialTemp float64
	// Cooling is the per-step geometric temperature decay. Default
	// chosen so the temperature falls to ~1% of initial by the end.
	Cooling float64
	// Seed drives the search.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Steps <= 0 {
		c.Steps = 2000
	}
	if c.Restarts <= 0 {
		c.Restarts = 4
	}
	if c.InitialTemp <= 0 {
		c.InitialTemp = 0.5
	}
	if c.Cooling <= 0 || c.Cooling >= 1 {
		c.Cooling = math.Pow(0.01, 1/float64(c.Steps))
	}
	return c
}

// Result reports the worst permutation found.
type Result struct {
	// Perm is the worst permutation found (Perm[src] = dst).
	Perm []int
	// Ratio is PERF(r, Perm): MLOAD divided by the optimal load.
	Ratio float64
	// Evaluations counts objective evaluations performed.
	Evaluations int
}

// searcher keeps the incremental evaluation state of one annealing
// run.
type searcher struct {
	r    *core.Routing
	topo *topology.Topology
	ev   *flow.Evaluator
	perm []int
}

// ratio evaluates PERF(r, perm) from scratch.
func (s *searcher) ratio() float64 {
	tm := traffic.FromPermutation(s.perm)
	if tm.NumFlows() == 0 {
		return 1
	}
	opt := flow.OptimalLoad(s.topo, tm)
	if opt == 0 {
		return 1
	}
	return s.ev.MaxLoad(tm) / opt
}

// WorstPermutation runs the annealing search against routing r.
func WorstPermutation(r *core.Routing, cfg Config) Result {
	cfg = cfg.withDefaults()
	t := r.Topology()
	n := t.NumProcessors()
	best := Result{Ratio: -1}
	evals := 0
	for restart := 0; restart < cfg.Restarts; restart++ {
		rng := stats.Stream(cfg.Seed, int64(restart))
		s := &searcher{r: r, topo: t, ev: flow.NewEvaluator(r), perm: traffic.RandomPermutation(n, rng)}
		cur := s.ratio()
		evals++
		localBest := append([]int(nil), s.perm...)
		localBestRatio := cur
		temp := cfg.InitialTemp
		for step := 0; step < cfg.Steps; step++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i == j {
				continue
			}
			s.perm[i], s.perm[j] = s.perm[j], s.perm[i]
			cand := s.ratio()
			evals++
			accept := cand >= cur
			if !accept && temp > 0 {
				accept = rng.Float64() < math.Exp((cand-cur)/temp)
			}
			if accept {
				cur = cand
				if cur > localBestRatio {
					localBestRatio = cur
					copy(localBest, s.perm)
				}
			} else {
				s.perm[i], s.perm[j] = s.perm[j], s.perm[i] // undo
			}
			temp *= cfg.Cooling
		}
		if localBestRatio > best.Ratio {
			best.Ratio = localBestRatio
			best.Perm = append([]int(nil), localBest...)
		}
	}
	best.Evaluations = evals
	return best
}
