package flit

import (
	"math"
	"testing"

	"xgftsim/internal/core"
	"xgftsim/internal/stats"
	"xgftsim/internal/topology"
	"xgftsim/internal/traffic"
)

// Virtual-channel tests: the paper evaluates with a single VC; these
// verify the generalized engine preserves that default and behaves
// sanely when the constraint is relaxed.

func TestVCValidation(t *testing.T) {
	tp := topology.MustNew(2, []int{2, 4}, []int{1, 2})
	base := Config{
		Routing:     core.NewRouting(tp, core.DModK{}, 1, 0),
		Pattern:     traffic.UniformPattern{N: tp.NumProcessors()},
		OfferedLoad: 0.5,
	}
	for _, v := range []int{-1, 16, 100} {
		cfg := base
		cfg.VirtualChannels = v
		if _, err := Run(cfg); err == nil {
			t.Errorf("VCs=%d accepted", v)
		}
	}
}

// TestVCZeroLoadDelayUnchanged: extra VCs change nothing on an idle
// network.
func TestVCZeroLoadDelayUnchanged(t *testing.T) {
	tp := topology.MustNew(2, []int{4, 8}, []int{1, 4})
	n := tp.NumProcessors()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	perm[0] = n - 1
	for _, vcs := range []int{1, 2, 4} {
		cfg := Config{
			Routing:         core.NewRouting(tp, core.DModK{}, 1, 0),
			Pattern:         traffic.NewPermutationPattern("single", perm),
			OfferedLoad:     0.02,
			VirtualChannels: vcs,
			WarmupCycles:    1000,
			MeasureCycles:   30000,
			Seed:            1,
		}
		res := MustRun(cfg)
		want := float64(4*8 + 3*2)
		if math.Abs(res.AvgDelay-want) > 0.5 {
			t.Fatalf("VCs=%d: delay %.2f want %.1f", vcs, res.AvgDelay, want)
		}
	}
}

// TestVCConservation: drain-mode conservation holds with multiple VCs,
// for both oblivious and adaptive routing.
func TestVCConservation(t *testing.T) {
	tp := topology.MustNew(3, []int{2, 2, 4}, []int{1, 2, 2})
	for _, adaptive := range []bool{false, true} {
		for _, vcs := range []int{2, 4} {
			cfg := Config{
				Routing:         core.NewRouting(tp, core.Disjoint{}, 2, 0),
				Pattern:         traffic.UniformPattern{N: tp.NumProcessors()},
				OfferedLoad:     0.8,
				Adaptive:        adaptive,
				VirtualChannels: vcs,
				Seed:            3,
				WarmupCycles:    1000,
				MeasureCycles:   5000,
				Drain:           true,
			}
			res := MustRun(cfg)
			if res.BacklogPackets != 0 {
				t.Fatalf("adaptive=%v VCs=%d: backlog %d after drain", adaptive, vcs, res.BacklogPackets)
			}
		}
	}
}

// TestVCRaisesSaturationThroughput: relaxing the paper's single-VC
// constraint raises saturation throughput under the fixed-assignment
// workload (per-VC queues cut head-of-line coupling).
func TestVCRaisesSaturationThroughput(t *testing.T) {
	tp := topology.MustNew(3, []int{4, 4, 8}, []int{1, 4, 4})
	pattern := traffic.NewPermutationPattern("fixed",
		traffic.RandomDerangementish(tp.NumProcessors(), stats.Stream(5, 0)))
	maxThr := func(vcs int) float64 {
		base := Config{
			Routing:         core.NewRouting(tp, core.Disjoint{}, 8, 0),
			Pattern:         pattern,
			VirtualChannels: vcs,
			Seed:            6,
			WarmupCycles:    2000,
			MeasureCycles:   6000,
		}
		results, err := Sweep(SweepConfig{Base: base, Loads: []float64{0.6, 0.8, 1.0}})
		if err != nil {
			t.Fatal(err)
		}
		return MaxThroughput(results)
	}
	one, four := maxThr(1), maxThr(4)
	if four <= one {
		t.Fatalf("4 VCs (%.3f) not above 1 VC (%.3f)", four, one)
	}
}

// TestVCDeterminism: multi-VC runs remain seed-deterministic.
func TestVCDeterminism(t *testing.T) {
	tp := topology.MustNew(2, []int{4, 8}, []int{1, 4})
	cfg := Config{
		Routing:         core.NewRouting(tp, core.Shift1{}, 2, 0),
		Pattern:         traffic.UniformPattern{N: tp.NumProcessors()},
		OfferedLoad:     0.7,
		VirtualChannels: 3,
		Seed:            9,
		WarmupCycles:    1000,
		MeasureCycles:   5000,
	}
	if a, b := MustRun(cfg), MustRun(cfg); a != b {
		t.Fatalf("not deterministic:\n%+v\n%+v", a, b)
	}
}
