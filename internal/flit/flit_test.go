package flit

import (
	"math"
	"testing"

	"xgftsim/internal/core"
	"xgftsim/internal/stats"
	"xgftsim/internal/topology"
	"xgftsim/internal/traffic"
)

func smallTree(t *testing.T) *topology.Topology {
	t.Helper()
	return topology.MustNew(2, []int{4, 8}, []int{1, 4}) // 8-port 2-tree, N=32
}

func TestConfigValidation(t *testing.T) {
	tp := smallTree(t)
	r := core.NewRouting(tp, core.DModK{}, 1, 0)
	pat := traffic.UniformPattern{N: tp.NumProcessors()}
	bad := []Config{
		{},
		{Routing: r},
		{Routing: r, Pattern: pat}, // zero load
		{Routing: r, Pattern: pat, OfferedLoad: 1.5},                        // load > 1
		{Routing: r, Pattern: pat, OfferedLoad: 0.5, FlitsPerPacket: -1},    // bad size
		{Routing: r, Pattern: pat, OfferedLoad: 0.5, MeasureCycles: -5},     // bad window
		{Routing: r, Pattern: pat, OfferedLoad: 0.5, PacketsPerMessage: -2}, // bad size
		{Routing: r, Pattern: pat, OfferedLoad: 0.5, BufferPackets: -1},     // bad size
		{Routing: r, Pattern: pat, OfferedLoad: 0.5, RouterDelay: -1},       // bad delay
		{Routing: r, Pattern: pat, OfferedLoad: 0.5, WarmupCycles: -1},      // bad warmup
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustRun should panic on a bad config")
			}
		}()
		MustRun(Config{})
	}()
}

// TestZeroLoadDelay pins the analytic zero-load message delay: with a
// single sender and no contention, a message of P packets of F flits
// over 2k hops takes exactly P·F + (2k-1)·(1+RouterDelay) cycles.
func TestZeroLoadDelay(t *testing.T) {
	tp := smallTree(t)
	n := tp.NumProcessors()
	// Only node 0 sends, to the farthest node (NCA at level 2 -> 4 hops).
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	perm[0] = n - 1
	const F, P = 8, 4
	cfg := Config{
		Routing:           core.NewRouting(tp, core.DModK{}, 1, 0),
		Pattern:           traffic.NewPermutationPattern("single", perm),
		OfferedLoad:       0.02, // sparse enough that messages never overlap
		FlitsPerPacket:    F,
		PacketsPerMessage: P,
		WarmupCycles:      2000,
		MeasureCycles:     60000,
		Seed:              1,
	}
	res := MustRun(cfg)
	if res.MsgsCompleted < 5 {
		t.Fatalf("too few messages: %d", res.MsgsCompleted)
	}
	hops := 2 * tp.NCALevel(0, n-1)
	want := float64(P*F + (hops-1)*2) // RouterDelay defaults to 1
	if math.Abs(res.AvgDelay-want) > 0.5 {
		t.Fatalf("zero-load delay %.2f, want %.1f", res.AvgDelay, want)
	}
}

// TestZeroLoadDelayScalesWithRouterDelay doubles the router delay and
// checks the per-hop term.
func TestZeroLoadDelayScalesWithRouterDelay(t *testing.T) {
	tp := smallTree(t)
	n := tp.NumProcessors()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	perm[0] = n - 1
	cfg := Config{
		Routing:           core.NewRouting(tp, core.DModK{}, 1, 0),
		Pattern:           traffic.NewPermutationPattern("single", perm),
		OfferedLoad:       0.02,
		FlitsPerPacket:    4,
		PacketsPerMessage: 1,
		RouterDelay:       3,
		WarmupCycles:      2000,
		MeasureCycles:     40000,
		Seed:              2,
	}
	res := MustRun(cfg)
	hops := 2 * tp.NCALevel(0, n-1)
	want := float64(4 + (hops-1)*4) // F + (hops-1)(1+3)
	if math.Abs(res.AvgDelay-want) > 0.5 {
		t.Fatalf("delay %.2f, want %.1f", res.AvgDelay, want)
	}
}

// TestLowLoadThroughputTracksOffered: far below saturation, accepted
// throughput equals offered load.
func TestLowLoadThroughputTracksOffered(t *testing.T) {
	tp := smallTree(t)
	cfg := Config{
		Routing:     core.NewRouting(tp, core.Disjoint{}, 2, 0),
		Pattern:     traffic.UniformPattern{N: tp.NumProcessors()},
		OfferedLoad: 0.2,
		Seed:        3,
	}
	res := MustRun(cfg)
	if math.Abs(res.Throughput-0.2) > 0.02 {
		t.Fatalf("throughput %.4f at load 0.2", res.Throughput)
	}
	if res.Saturated {
		t.Fatal("saturated at load 0.2")
	}
	if res.AvgDelay <= 0 {
		t.Fatal("no delay recorded")
	}
}

func TestDeterminism(t *testing.T) {
	tp := smallTree(t)
	cfg := Config{
		Routing:       core.NewRouting(tp, core.RandomK{}, 2, 5),
		Pattern:       traffic.UniformPattern{N: tp.NumProcessors()},
		OfferedLoad:   0.6,
		Seed:          77,
		WarmupCycles:  1500,
		MeasureCycles: 6000,
	}
	a := MustRun(cfg)
	b := MustRun(cfg)
	if a != b {
		t.Fatalf("same seed, different results:\n%+v\n%+v", a, b)
	}
	cfg.Seed = 78
	c := MustRun(cfg)
	if a == c {
		t.Fatal("different seeds gave identical results")
	}
}

// TestConservation: every measured ejected flit belongs to an injected
// packet, and the end-of-run backlog is non-negative; at low load the
// backlog is tiny.
func TestConservation(t *testing.T) {
	tp := smallTree(t)
	cfg := Config{
		Routing:       core.NewRouting(tp, core.DModK{}, 1, 0),
		Pattern:       traffic.UniformPattern{N: tp.NumProcessors()},
		OfferedLoad:   0.15,
		Seed:          4,
		WarmupCycles:  2000,
		MeasureCycles: 8000,
	}
	res := MustRun(cfg)
	if res.BacklogPackets < 0 {
		t.Fatalf("negative backlog %d", res.BacklogPackets)
	}
	if res.BacklogPackets > 64 {
		t.Fatalf("backlog %d at low load", res.BacklogPackets)
	}
	if res.FlitsEjected%int64(8) != 0 {
		t.Fatalf("ejected flits %d not a whole number of packets", res.FlitsEjected)
	}
}

// TestSaturationBehaviour: at full offered load on single-path routing
// the network saturates: accepted < offered and backlog grows.
func TestSaturationBehaviour(t *testing.T) {
	tp := smallTree(t)
	cfg := Config{
		Routing:       core.NewRouting(tp, core.DModK{}, 1, 0),
		Pattern:       traffic.UniformPattern{N: tp.NumProcessors()},
		OfferedLoad:   1.0,
		Seed:          5,
		WarmupCycles:  3000,
		MeasureCycles: 12000,
	}
	res := MustRun(cfg)
	if !res.Saturated {
		t.Fatalf("not saturated at load 1.0: %v", res)
	}
	if res.Throughput >= 0.95 {
		t.Fatalf("throughput %.3f suspiciously high for d-mod-k", res.Throughput)
	}
	if res.BacklogPackets < 100 {
		t.Fatalf("backlog %d too small beyond saturation", res.BacklogPackets)
	}
}

// TestMultipathRaisesThroughput: the paper's core flit-level claim —
// under the fixed random-assignment workload (see DESIGN.md §5), more
// paths raise maximum throughput over single-path routing.
func TestMultipathRaisesThroughput(t *testing.T) {
	tp := topology.MustNew(3, []int{4, 4, 8}, []int{1, 4, 4}) // Table 1 topology
	rng := stats.Stream(99, 0)
	pat := traffic.NewPermutationPattern("fixed-perm", traffic.RandomDerangementish(tp.NumProcessors(), rng))
	maxThr := func(sel core.Selector, k int) float64 {
		base := Config{
			Routing:       core.NewRouting(tp, sel, k, 0),
			Pattern:       pat,
			Seed:          6,
			WarmupCycles:  2000,
			MeasureCycles: 6000,
		}
		res, err := Sweep(SweepConfig{Base: base, Loads: []float64{0.5, 0.7, 0.9, 1.0}})
		if err != nil {
			t.Fatal(err)
		}
		return MaxThroughput(res)
	}
	single := maxThr(core.DModK{}, 1)
	multi2 := maxThr(core.Disjoint{}, 2)
	multi8 := maxThr(core.Disjoint{}, 8)
	if multi2 <= single {
		t.Fatalf("disjoint(2)=%.3f not above d-mod-k=%.3f", multi2, single)
	}
	if multi8 <= multi2 {
		t.Fatalf("disjoint(8)=%.3f not above disjoint(2)=%.3f", multi8, multi2)
	}
}

// TestPerMessageUniformAlignsDModK documents the ablation that
// motivated the workload reading in DESIGN.md §5: with per-message
// random destinations, d-mod-k's perfect tree alignment keeps it at
// least on par with multi-path routing.
func TestPerMessageUniformAlignsDModK(t *testing.T) {
	tp := topology.MustNew(3, []int{2, 2, 4}, []int{1, 2, 2})
	pat := traffic.UniformPattern{N: tp.NumProcessors()}
	thr := func(sel core.Selector, k int) float64 {
		cfg := Config{
			Routing:       core.NewRouting(tp, sel, k, 0),
			Pattern:       pat,
			OfferedLoad:   0.9,
			Seed:          6,
			WarmupCycles:  2000,
			MeasureCycles: 8000,
		}
		return MustRun(cfg).Throughput
	}
	if single, multi := thr(core.DModK{}, 1), thr(core.Disjoint{}, 4); multi > single+0.05 {
		t.Fatalf("per-message uniform: disjoint(4)=%.3f should not beat aligned d-mod-k=%.3f", multi, single)
	}
}

func TestRoundRobinVsRandomPathPolicies(t *testing.T) {
	tp := smallTree(t)
	base := Config{
		Routing:       core.NewRouting(tp, core.Disjoint{}, 4, 0),
		Pattern:       traffic.UniformPattern{N: tp.NumProcessors()},
		OfferedLoad:   0.25,
		Seed:          8,
		WarmupCycles:  2000,
		MeasureCycles: 8000,
	}
	rr := base
	rr.PathPolicy = RoundRobin
	rp := base
	rp.PathPolicy = RandomPath
	a, b := MustRun(rr), MustRun(rp)
	// Both operate below saturation and deliver the offered load.
	for _, r := range []Result{a, b} {
		if math.Abs(r.Throughput-base.OfferedLoad) > 0.03 {
			t.Fatalf("policy run off target: %v", r)
		}
	}
	if RoundRobin.String() != "round-robin" || RandomPath.String() != "random" {
		t.Fatal("PathPolicy strings")
	}
	if PathPolicy(9).String() == "" {
		t.Fatal("unknown policy string empty")
	}
}

func TestDelayHistogram(t *testing.T) {
	tp := smallTree(t)
	cfg := Config{
		Routing:        core.NewRouting(tp, core.DModK{}, 1, 0),
		Pattern:        traffic.UniformPattern{N: tp.NumProcessors()},
		OfferedLoad:    0.3,
		Seed:           9,
		WarmupCycles:   1000,
		MeasureCycles:  6000,
		DelayHistogram: true,
	}
	res := MustRun(cfg)
	if res.P95Delay <= 0 {
		t.Fatalf("no p95: %v", res)
	}
	if res.P95Delay < res.AvgDelay {
		t.Fatalf("p95 %.1f below mean %.1f", res.P95Delay, res.AvgDelay)
	}
}

func TestSweepAndHelpers(t *testing.T) {
	tp := smallTree(t)
	base := Config{
		Routing:       core.NewRouting(tp, core.Disjoint{}, 4, 0),
		Pattern:       traffic.UniformPattern{N: tp.NumProcessors()},
		Seed:          10,
		WarmupCycles:  1000,
		MeasureCycles: 4000,
	}
	results, err := Sweep(SweepConfig{Base: base, Loads: []float64{0.2, 0.5, 0.9}})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	for i, want := range []float64{0.2, 0.5, 0.9} {
		if results[i].OfferedLoad != want {
			t.Fatalf("result %d at load %g", i, results[i].OfferedLoad)
		}
	}
	if mt := MaxThroughput(results); mt < 0.4 {
		t.Fatalf("max throughput %.3f", mt)
	}
	if sl := SaturationLoad(results); sl <= 0 || sl > 1 {
		t.Fatalf("saturation load %g", sl)
	}
	if got := len(DefaultLoads()); got != 20 {
		t.Fatalf("default grid %d points", got)
	}
	if _, err := Sweep(SweepConfig{Base: base, Loads: []float64{2}}); err == nil {
		t.Fatal("bad sweep load accepted")
	}
	if _, err := Sweep(SweepConfig{Base: Config{}, Loads: []float64{0.5}}); err == nil {
		t.Fatal("bad base config accepted")
	}
	if MaxThroughput(nil) != 0 || SaturationLoad(nil) != 1 {
		t.Fatal("empty helpers")
	}
}

// TestResultString smoke-checks the formatter.
func TestResultString(t *testing.T) {
	r := Result{OfferedLoad: 0.5, Throughput: 0.49}
	if r.String() == "" {
		t.Fatal("empty string")
	}
}
