package flit

// Adaptive-K selector tests: the differential equivalences pinning the
// selector against its two neighbors (K = MaxPaths reproduces full
// adaptive bit-for-bit, K = 1 reproduces the oblivious single path),
// the path-budget restriction, the committed-send-only up-port
// rotation, the dead-link drop accounting, and the VC queue schemes.

import (
	"reflect"
	"strings"
	"testing"

	"xgftsim/internal/core"
	"xgftsim/internal/topology"
	"xgftsim/internal/traffic"
)

// akTopo is the test tree: XGFT(2;4,8;1,4), 32 processors, 4 paths per
// top-level pair.
func akTopo() *topology.Topology {
	return topology.MustNew(2, []int{4, 8}, []int{1, 4})
}

// akBase is a medium-contention base config over akTopo.
func akBase(t *topology.Topology, sel core.Selector, k int) Config {
	return Config{
		Routing:       core.NewRouting(t, sel, k, 3),
		Pattern:       traffic.UniformPattern{N: t.NumProcessors()},
		OfferedLoad:   0.7,
		WarmupCycles:  1000,
		MeasureCycles: 8000,
		Seed:          42,
	}
}

// TestAdaptiveKMatchesFullAdaptiveAtMaxK: with the full path set (K =
// MaxPaths) every up-port at every level below the NCA lies on some
// compiled path, so adaptive-K's admissible set equals full adaptive's
// and — both advancing the rotation identically on committed sends —
// the two runs must be event-for-event identical.
func TestAdaptiveKMatchesFullAdaptiveAtMaxK(t *testing.T) {
	tp := akTopo()
	for _, vcs := range []int{1, 2} {
		base := akBase(tp, core.Disjoint{}, tp.MaxPaths())
		base.VirtualChannels = vcs

		ak := base
		ak.Selector = SelectAdaptiveK
		full := base
		full.Adaptive = true // legacy spelling of SelectAdaptive

		ra, rf := MustRun(ak), MustRun(full)
		if !reflect.DeepEqual(ra, rf) {
			t.Errorf("vcs=%d: adaptive-K at K=MaxPaths diverged from full adaptive:\n  adaptive-K: %+v\n  adaptive:   %+v", vcs, ra, rf)
		}
		if ra.MsgsCompleted == 0 {
			t.Errorf("vcs=%d: no messages completed; equality is vacuous", vcs)
		}
	}
}

// TestAdaptiveKMatchesObliviousAtK1: with a single-path scheme the
// mask admits exactly one port per hop — the oblivious route's port —
// so delivery behavior matches the oblivious table walk exactly.
func TestAdaptiveKMatchesObliviousAtK1(t *testing.T) {
	tp := akTopo()
	base := akBase(tp, core.DModK{}, 1)

	ak := base
	ak.Selector = SelectAdaptiveK

	ro, ra := MustRun(base), MustRun(ak)
	if ro.MsgsGenerated != ra.MsgsGenerated || ro.MsgsCompleted != ra.MsgsCompleted || ro.FlitsEjected != ra.FlitsEjected {
		t.Errorf("adaptive-K at K=1 delivery diverged from oblivious:\n  oblivious:  %+v\n  adaptive-K: %+v", ro, ra)
	}
	if ro.MsgsCompleted == 0 {
		t.Error("no messages completed; equality is vacuous")
	}
}

// TestAdaptiveKRestrictedToCompiledPaths drives a single flow and
// asserts, via the engine's per-link transmission tally, that the only
// up-links the flow's leaf switch ever used are those whose up-digit
// appears in the pair's K compiled path indices.
func TestAdaptiveKRestrictedToCompiledPaths(t *testing.T) {
	tp := akTopo()
	const src, dst, k = 0, 20, 2
	routing := core.NewRouting(tp, core.Disjoint{}, k, 3)
	perm := make([]int, tp.NumProcessors())
	for i := range perm {
		perm[i] = i
	}
	perm[src] = dst
	cfg, err := Config{
		Routing:       routing,
		Pattern:       traffic.NewPermutationPattern("single", perm),
		OfferedLoad:   0.5,
		WarmupCycles:  0,
		MeasureCycles: 20000,
		Seed:          9,
		Selector:      SelectAdaptiveK,
	}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(cfg)
	e.run()

	idxs := routing.Paths(src, dst)
	if len(idxs) != k {
		t.Fatalf("pair (%d,%d) got %d paths, want %d", src, dst, len(idxs), k)
	}
	// NCA level 2, so the digit at the leaf switch (level 1) is the
	// least significant: idx % w_2.
	allowed := map[int]bool{}
	for _, idx := range idxs {
		allowed[idx%tp.W(2)] = true
	}
	leaf := tp.NodeAt(1, 0)
	used := 0
	for p := 0; p < tp.W(2); p++ {
		starts := e.linkStarts[tp.UpLink(leaf, p)]
		switch {
		case !allowed[p] && starts > 0:
			t.Errorf("up-port %d is on no compiled path but carried %d transmissions", p, starts)
		case allowed[p] && starts > 0:
			used++
		}
	}
	if used < 2 {
		t.Errorf("only %d of the %d compiled up-ports carried traffic; want adaptivity across the path budget", used, k)
	}
}

// TestAdaptiveUpPortDistribution pins the committed-send-only rotation
// advance: a lone low-load flow sees all up-port queues equally empty,
// so the tie-breaking rotation alone decides, and every up-port must
// carry a near-equal share. (Advancing the rotation on speculative,
// uncommitted probes would skew this distribution.)
func TestAdaptiveUpPortDistribution(t *testing.T) {
	tp := akTopo()
	const src, dst = 0, 20
	perm := make([]int, tp.NumProcessors())
	for i := range perm {
		perm[i] = i
	}
	perm[src] = dst
	cfg, err := Config{
		Routing:       core.NewRouting(tp, core.Disjoint{}, 4, 3),
		Pattern:       traffic.NewPermutationPattern("single", perm),
		OfferedLoad:   0.5,
		WarmupCycles:  0,
		MeasureCycles: 40000,
		Seed:          11,
		Adaptive:      true,
	}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(cfg)
	e.run()

	leaf := tp.NodeAt(1, 0)
	ups := tp.W(2)
	var total int64
	starts := make([]int64, ups)
	for p := 0; p < ups; p++ {
		starts[p] = e.linkStarts[tp.UpLink(leaf, p)]
		total += starts[p]
	}
	if total == 0 {
		t.Fatal("the flow never left its leaf switch")
	}
	for p, s := range starts {
		if s < total/int64(2*ups) {
			t.Errorf("up-port %d carried %d of %d transmissions (ports: %v); want a near-uniform rotation share", p, s, total, starts)
		}
	}
}

// TestAdaptiveDeadDownLinkDrops covers the former wedge: a failed
// forced downward link left adaptive flows blocked forever until the
// watchdog fired. Both adaptive selectors must now discard the
// affected messages, account them in MsgsUnroutable, name the dead
// link, and keep the rest of the fabric flowing to a clean drain.
func TestAdaptiveDeadDownLinkDrops(t *testing.T) {
	tp := topology.MustNew(2, []int{4, 4}, []int{1, 4})
	n := tp.NumProcessors()
	const deadDst = 5
	perm := make([]int, n)
	for i := range perm {
		perm[i] = (i + 4) % n // every flow crosses subtrees; node 1 targets deadDst
	}
	for _, sel := range []OutputSelector{SelectAdaptive, SelectAdaptiveK} {
		res := MustRun(Config{
			Routing:       core.NewRouting(tp, core.Disjoint{}, 4, 3),
			Pattern:       traffic.NewPermutationPattern("shift", perm),
			OfferedLoad:   0.4,
			WarmupCycles:  500,
			MeasureCycles: 5000,
			Seed:          17,
			Selector:      sel,
			FailedLinks:   []topology.LinkID{tp.DownLink(deadDst, 0)},
			Drain:         true,
		})
		if res.Wedged {
			t.Errorf("%v: run wedged (%s); want unroutable messages dropped instead", sel, res.WedgeDiagnosis)
		}
		if res.MsgsUnroutable == 0 {
			t.Errorf("%v: no messages accounted unroutable despite a dead forced downward link", sel)
		}
		if !strings.Contains(res.WedgeDiagnosis, "link") {
			t.Errorf("%v: diagnosis %q does not name the dead link", sel, res.WedgeDiagnosis)
		}
		if res.MsgsCompleted == 0 {
			t.Errorf("%v: unaffected flows made no progress", sel)
		}
		if res.BacklogPackets != 0 {
			t.Errorf("%v: %d packets leaked after drain", sel, res.BacklogPackets)
		}
	}
}

// TestVCSchemeAssignment pins the per-scheme channel maps directly.
func TestVCSchemeAssignment(t *testing.T) {
	tp := topology.MustNew(2, []int{4, 4}, []int{1, 4})
	base := Config{
		Routing:         core.NewRouting(tp, core.Disjoint{}, 4, 0),
		Pattern:         traffic.UniformPattern{N: tp.NumProcessors()},
		OfferedLoad:     0.5,
		VirtualChannels: 4,
	}
	for _, tc := range []struct {
		scheme VCScheme
		dst    int
		want   int8
	}{
		// dest-subtree: dst / m_1 % vcs (4 processors per leaf subtree).
		{VCDestSubtree, 3, 0},
		{VCDestSubtree, 7, 1},
		{VCDestSubtree, 13, 3},
		// down-digit: dst % m_1 % vcs.
		{VCDownDigit, 3, 3},
		{VCDownDigit, 7, 3},
		{VCDownDigit, 13, 1},
	} {
		cfg := base
		cfg.VCScheme = tc.scheme
		cfg, err := cfg.withDefaults()
		if err != nil {
			t.Fatal(err)
		}
		e := newEngine(cfg)
		if got := e.vcFor(0, tc.dst); got != tc.want {
			t.Errorf("%v: vcFor(dst=%d) = %d, want %d", tc.scheme, tc.dst, got, tc.want)
		}
	}
}

// TestVCSchemesDeliver runs every (selector, VC scheme) combination at
// two VCs and requires healthy delivery with a clean drain.
func TestVCSchemesDeliver(t *testing.T) {
	tp := akTopo()
	for _, sel := range []OutputSelector{SelectOblivious, SelectAdaptive, SelectAdaptiveK} {
		for _, scheme := range []VCScheme{VCRoundRobin, VCDestSubtree, VCDownDigit} {
			res := MustRun(Config{
				Routing:         core.NewRouting(tp, core.Disjoint{}, 4, 3),
				Pattern:         traffic.UniformPattern{N: tp.NumProcessors()},
				OfferedLoad:     0.4,
				WarmupCycles:    500,
				MeasureCycles:   4000,
				Seed:            23,
				Selector:        sel,
				VCScheme:        scheme,
				VirtualChannels: 2,
				Drain:           true,
			})
			if res.MsgsCompleted == 0 || res.Wedged {
				t.Errorf("%v/%v: msgs=%d/%d wedged=%v", sel, scheme, res.MsgsCompleted, res.MsgsGenerated, res.Wedged)
			}
			if res.BacklogPackets != 0 {
				t.Errorf("%v/%v: %d packets leaked after drain", sel, scheme, res.BacklogPackets)
			}
		}
	}
}

// TestBurstyArrivalsDeliver checks the bursty arrival process: load is
// preserved in expectation and the run stays healthy.
func TestBurstyArrivalsDeliver(t *testing.T) {
	tp := akTopo()
	base := Config{
		Routing:       core.NewRouting(tp, core.Disjoint{}, 4, 3),
		Pattern:       traffic.UniformPattern{N: tp.NumProcessors()},
		OfferedLoad:   0.3,
		WarmupCycles:  2000,
		MeasureCycles: 20000,
		Seed:          29,
		Selector:      SelectAdaptiveK,
		Drain:         true,
	}
	plain := MustRun(base)
	bursty := base
	bursty.BurstMean = 4
	rb := MustRun(bursty)
	if rb.MsgsCompleted == 0 || rb.Wedged {
		t.Fatalf("bursty run unhealthy: %+v", rb)
	}
	if rb.BacklogPackets != 0 {
		t.Errorf("bursty drain leaked %d packets", rb.BacklogPackets)
	}
	// Same offered load in expectation: generated message counts agree
	// within 25% (bursty arrivals have higher variance).
	lo, hi := plain.MsgsGenerated*3/4, plain.MsgsGenerated*5/4
	if rb.MsgsGenerated < lo || rb.MsgsGenerated > hi {
		t.Errorf("bursty run generated %d messages; plain Poisson generated %d (want within 25%%)",
			rb.MsgsGenerated, plain.MsgsGenerated)
	}
}

// TestAdaptiveKRejectsOverwideMask: the mask holds 64 paths; routings
// that can assign more must be rejected up front.
func TestAdaptiveKRejectsOverwideMask(t *testing.T) {
	tp := topology.MustNew(2, []int{4, 4}, []int{1, 128}) // 128 paths per top-level pair
	_, err := Run(Config{
		Routing:     core.NewRouting(tp, core.Disjoint{}, 128, 0),
		Pattern:     traffic.UniformPattern{N: tp.NumProcessors()},
		OfferedLoad: 0.5,
		Selector:    SelectAdaptiveK,
	})
	if err == nil || !strings.Contains(err.Error(), "64-bit mask") {
		t.Fatalf("got err=%v; want the 64-bit mask rejection", err)
	}
}
