package flit

import (
	"strings"
	"testing"

	"xgftsim/internal/core"
	"xgftsim/internal/topology"
	"xgftsim/internal/traffic"
)

// failure tests: link-failure injection and the fault-tolerance gap
// between oblivious and adaptive routing.

func failureBase(tp *topology.Topology) Config {
	return Config{
		Routing:       core.NewRouting(tp, core.DModK{}, 1, 0),
		Pattern:       traffic.UniformPattern{N: tp.NumProcessors()},
		OfferedLoad:   0.3,
		Seed:          13,
		WarmupCycles:  2000,
		MeasureCycles: 8000,
	}
}

// TestObliviousStallsOnFailedLink: d-mod-k traffic whose path crosses
// a failed up link never arrives, so throughput drops and backlog
// grows.
func TestObliviousStallsOnFailedLink(t *testing.T) {
	tp := topology.MustNew(2, []int{4, 8}, []int{1, 4})
	healthy := MustRun(failureBase(tp))
	cfg := failureBase(tp)
	// Fail one leaf-to-top up link: leaf switch 0's port 0.
	cfg.FailedLinks = []topology.LinkID{tp.UpLink(tp.NodeAt(1, 0), 0)}
	broken := MustRun(cfg)
	if broken.Throughput >= healthy.Throughput {
		t.Fatalf("failure did not hurt: %.4f vs %.4f", broken.Throughput, healthy.Throughput)
	}
	if broken.BacklogPackets <= healthy.BacklogPackets {
		t.Fatalf("backlog did not grow: %d vs %d", broken.BacklogPackets, healthy.BacklogPackets)
	}
}

// TestAdaptiveRoutesAroundUpFailure: with the same failed up link,
// adaptive routing delivers the full offered load.
func TestAdaptiveRoutesAroundUpFailure(t *testing.T) {
	tp := topology.MustNew(2, []int{4, 8}, []int{1, 4})
	cfg := failureBase(tp)
	cfg.Adaptive = true
	cfg.FailedLinks = []topology.LinkID{tp.UpLink(tp.NodeAt(1, 0), 0)}
	res := MustRun(cfg)
	if res.Saturated || res.Throughput < 0.28 {
		t.Fatalf("adaptive did not absorb the up-link failure: %v", res)
	}
	if res.BacklogPackets > 100 {
		t.Fatalf("backlog %d with adaptive rerouting", res.BacklogPackets)
	}
}

// TestFairnessIndex: balanced uniform traffic scores near 1; a failed
// link skews the shares and lowers the index for oblivious routing.
func TestFairnessIndex(t *testing.T) {
	tp := topology.MustNew(2, []int{4, 8}, []int{1, 4})
	healthy := MustRun(failureBase(tp))
	if healthy.Fairness < 0.95 || healthy.Fairness > 1 {
		t.Fatalf("healthy fairness %.3f", healthy.Fairness)
	}
	cfg := failureBase(tp)
	cfg.FailedLinks = []topology.LinkID{tp.UpLink(tp.NodeAt(1, 0), 0)}
	broken := MustRun(cfg)
	if broken.Fairness >= healthy.Fairness {
		t.Fatalf("failure did not skew fairness: %.3f vs %.3f", broken.Fairness, healthy.Fairness)
	}
}

// TestFailedLinkValidation: out-of-range links are rejected with a
// configuration error (they used to panic deep in engine setup).
func TestFailedLinkValidation(t *testing.T) {
	tp := topology.MustNew(2, []int{4, 8}, []int{1, 4})
	cfg := failureBase(tp)
	cfg.FailedLinks = []topology.LinkID{topology.LinkID(tp.NumLinks())}
	if _, err := Run(cfg); err == nil {
		t.Error("expected error for out-of-range failed link")
	} else if !strings.Contains(err.Error(), "out of range") {
		t.Errorf("error %q does not mention the range violation", err)
	}
	cfg.FailedLinks = []topology.LinkID{-1}
	if _, err := Run(cfg); err == nil {
		t.Error("expected error for negative failed link")
	}
}

// TestFaultSetTopologyValidation: a fault set over a different
// topology is rejected.
func TestFaultSetTopologyValidation(t *testing.T) {
	tp := topology.MustNew(2, []int{4, 8}, []int{1, 4})
	other := topology.MustNew(2, []int{2, 2}, []int{1, 2})
	cfg := failureBase(tp)
	cfg.Faults = topology.NewFaultSet(other)
	if _, err := Run(cfg); err == nil {
		t.Error("expected error for fault set over a different topology")
	}
}

// TestDrainConservation: with drain enabled and a healthy fabric,
// every injected packet is delivered — exact conservation.
func TestDrainConservation(t *testing.T) {
	for _, adaptive := range []bool{false, true} {
		tp := topology.MustNew(3, []int{2, 2, 4}, []int{1, 2, 2})
		cfg := Config{
			Routing:       core.NewRouting(tp, core.Disjoint{}, 2, 0),
			Pattern:       traffic.UniformPattern{N: tp.NumProcessors()},
			OfferedLoad:   0.7,
			Adaptive:      adaptive,
			Seed:          17,
			WarmupCycles:  1000,
			MeasureCycles: 6000,
			Drain:         true,
		}
		res := MustRun(cfg)
		if res.BacklogPackets != 0 {
			t.Fatalf("adaptive=%v: %d packets lost or stuck after drain", adaptive, res.BacklogPackets)
		}
	}
}

// TestDrainWithFailureKeepsBacklog: a failed link leaves permanently
// stuck packets even after draining (oblivious routing). The
// no-progress watchdog spots the wedge and terminates the run with a
// diagnostic well before the drain cycle cap.
func TestDrainWithFailureKeepsBacklog(t *testing.T) {
	tp := topology.MustNew(2, []int{4, 8}, []int{1, 4})
	cfg := failureBase(tp)
	cfg.Drain = true
	cfg.FailedLinks = []topology.LinkID{tp.UpLink(tp.NodeAt(1, 0), 0)}
	res := MustRun(cfg)
	if res.BacklogPackets == 0 {
		t.Fatal("expected stuck packets behind the failed link")
	}
	if !res.Wedged {
		t.Fatal("watchdog did not flag the wedged drain")
	}
	cap10 := (cfg.WarmupCycles + cfg.MeasureCycles) * 10
	if res.WedgedAt >= cap10 {
		t.Fatalf("watchdog fired at cycle %d, no earlier than the %d cycle cap", res.WedgedAt, cap10)
	}
	if !strings.Contains(res.WedgeDiagnosis, "link") {
		t.Fatalf("diagnosis %q does not name a link", res.WedgeDiagnosis)
	}
}

// TestRepairRoutesDeliverOnDegradedFabric: with RepairRoutes the path
// sets are re-selected around the failed cable, so the degraded
// fabric that strands oblivious packets drains completely instead.
func TestRepairRoutesDeliverOnDegradedFabric(t *testing.T) {
	tp := topology.MustNew(2, []int{4, 8}, []int{1, 4})
	faults := topology.NewFaultSet(tp)
	if err := faults.FailCable(tp.NodeAt(1, 0), 0); err != nil {
		t.Fatal(err)
	}
	cfg := failureBase(tp)
	cfg.Routing = core.NewRouting(tp, core.Disjoint{}, 2, 0)
	cfg.Drain = true
	cfg.Faults = faults
	cfg.RepairRoutes = true
	res := MustRun(cfg)
	if res.Wedged {
		t.Fatalf("repaired routing wedged: %s", res.WedgeDiagnosis)
	}
	if res.BacklogPackets != 0 {
		t.Fatalf("%d packets stuck despite repaired routes", res.BacklogPackets)
	}
	if res.MsgsUnroutable != 0 {
		t.Fatalf("%d messages dropped although every pair stays connected", res.MsgsUnroutable)
	}
}

// TestRepairRoutesDropsDisconnected: when a leaf switch loses every up
// cable, its processors cannot reach the rest of the fabric; repaired
// routing reports those messages unroutable instead of wedging, and
// the surviving traffic still drains.
func TestRepairRoutesDropsDisconnected(t *testing.T) {
	tp := topology.MustNew(2, []int{4, 8}, []int{1, 4})
	faults := topology.NewFaultSet(tp)
	leaf := tp.NodeAt(1, 0)
	for p := 0; p < tp.NumParents(leaf); p++ {
		if err := faults.FailCable(leaf, p); err != nil {
			t.Fatal(err)
		}
	}
	cfg := failureBase(tp)
	cfg.Drain = true
	cfg.Faults = faults
	cfg.RepairRoutes = true
	res := MustRun(cfg)
	if res.MsgsUnroutable == 0 {
		t.Fatal("expected unroutable messages for the cut-off leaf switch")
	}
	if res.Wedged {
		t.Fatalf("run wedged despite dropping unroutable traffic: %s", res.WedgeDiagnosis)
	}
	if res.BacklogPackets != 0 {
		t.Fatalf("%d surviving packets stuck after drain", res.BacklogPackets)
	}
}

// TestWedgeDiagnosisNamesFailedSwitch: when the fault set kills an
// entire switch (not just one cable), the watchdog's diagnosis names
// the switch — the unit an operator replaces — instead of enumerating
// its dead links one wedge at a time.
func TestWedgeDiagnosisNamesFailedSwitch(t *testing.T) {
	tp := topology.MustNew(2, []int{4, 8}, []int{1, 4})
	faults := topology.NewFaultSet(tp)
	spine := tp.NodeAt(2, 0)
	if err := faults.FailSwitch(spine); err != nil {
		t.Fatal(err)
	}
	cfg := failureBase(tp)
	cfg.Drain = true
	cfg.Faults = faults
	res := MustRun(cfg)
	if !res.Wedged {
		t.Fatal("oblivious traffic through a dead spine switch did not wedge")
	}
	if !strings.Contains(res.WedgeDiagnosis, "switch") {
		t.Fatalf("diagnosis %q does not name the failed switch", res.WedgeDiagnosis)
	}
}
