package flit

import (
	"testing"

	"xgftsim/internal/core"
	"xgftsim/internal/topology"
	"xgftsim/internal/traffic"
)

// failure tests: link-failure injection and the fault-tolerance gap
// between oblivious and adaptive routing.

func failureBase(tp *topology.Topology) Config {
	return Config{
		Routing:       core.NewRouting(tp, core.DModK{}, 1, 0),
		Pattern:       traffic.UniformPattern{N: tp.NumProcessors()},
		OfferedLoad:   0.3,
		Seed:          13,
		WarmupCycles:  2000,
		MeasureCycles: 8000,
	}
}

// TestObliviousStallsOnFailedLink: d-mod-k traffic whose path crosses
// a failed up link never arrives, so throughput drops and backlog
// grows.
func TestObliviousStallsOnFailedLink(t *testing.T) {
	tp := topology.MustNew(2, []int{4, 8}, []int{1, 4})
	healthy := MustRun(failureBase(tp))
	cfg := failureBase(tp)
	// Fail one leaf-to-top up link: leaf switch 0's port 0.
	cfg.FailedLinks = []topology.LinkID{tp.UpLink(tp.NodeAt(1, 0), 0)}
	broken := MustRun(cfg)
	if broken.Throughput >= healthy.Throughput {
		t.Fatalf("failure did not hurt: %.4f vs %.4f", broken.Throughput, healthy.Throughput)
	}
	if broken.BacklogPackets <= healthy.BacklogPackets {
		t.Fatalf("backlog did not grow: %d vs %d", broken.BacklogPackets, healthy.BacklogPackets)
	}
}

// TestAdaptiveRoutesAroundUpFailure: with the same failed up link,
// adaptive routing delivers the full offered load.
func TestAdaptiveRoutesAroundUpFailure(t *testing.T) {
	tp := topology.MustNew(2, []int{4, 8}, []int{1, 4})
	cfg := failureBase(tp)
	cfg.Adaptive = true
	cfg.FailedLinks = []topology.LinkID{tp.UpLink(tp.NodeAt(1, 0), 0)}
	res := MustRun(cfg)
	if res.Saturated || res.Throughput < 0.28 {
		t.Fatalf("adaptive did not absorb the up-link failure: %v", res)
	}
	if res.BacklogPackets > 100 {
		t.Fatalf("backlog %d with adaptive rerouting", res.BacklogPackets)
	}
}

// TestFairnessIndex: balanced uniform traffic scores near 1; a failed
// link skews the shares and lowers the index for oblivious routing.
func TestFairnessIndex(t *testing.T) {
	tp := topology.MustNew(2, []int{4, 8}, []int{1, 4})
	healthy := MustRun(failureBase(tp))
	if healthy.Fairness < 0.95 || healthy.Fairness > 1 {
		t.Fatalf("healthy fairness %.3f", healthy.Fairness)
	}
	cfg := failureBase(tp)
	cfg.FailedLinks = []topology.LinkID{tp.UpLink(tp.NodeAt(1, 0), 0)}
	broken := MustRun(cfg)
	if broken.Fairness >= healthy.Fairness {
		t.Fatalf("failure did not skew fairness: %.3f vs %.3f", broken.Fairness, healthy.Fairness)
	}
}

// TestFailedLinkValidation: out-of-range links are rejected.
func TestFailedLinkValidation(t *testing.T) {
	tp := topology.MustNew(2, []int{4, 8}, []int{1, 4})
	cfg := failureBase(tp)
	cfg.FailedLinks = []topology.LinkID{topology.LinkID(tp.NumLinks())}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range failed link")
		}
	}()
	MustRun(cfg)
}

// TestDrainConservation: with drain enabled and a healthy fabric,
// every injected packet is delivered — exact conservation.
func TestDrainConservation(t *testing.T) {
	for _, adaptive := range []bool{false, true} {
		tp := topology.MustNew(3, []int{2, 2, 4}, []int{1, 2, 2})
		cfg := Config{
			Routing:       core.NewRouting(tp, core.Disjoint{}, 2, 0),
			Pattern:       traffic.UniformPattern{N: tp.NumProcessors()},
			OfferedLoad:   0.7,
			Adaptive:      adaptive,
			Seed:          17,
			WarmupCycles:  1000,
			MeasureCycles: 6000,
			Drain:         true,
		}
		res := MustRun(cfg)
		if res.BacklogPackets != 0 {
			t.Fatalf("adaptive=%v: %d packets lost or stuck after drain", adaptive, res.BacklogPackets)
		}
	}
}

// TestDrainWithFailureKeepsBacklog: a failed link leaves permanently
// stuck packets even after draining (oblivious routing).
func TestDrainWithFailureKeepsBacklog(t *testing.T) {
	tp := topology.MustNew(2, []int{4, 8}, []int{1, 4})
	cfg := failureBase(tp)
	cfg.Drain = true
	cfg.FailedLinks = []topology.LinkID{tp.UpLink(tp.NodeAt(1, 0), 0)}
	res := MustRun(cfg)
	if res.BacklogPackets == 0 {
		t.Fatal("expected stuck packets behind the failed link")
	}
}
