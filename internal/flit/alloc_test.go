package flit

// Allocation regression tests: the engine's steady-state event loop
// must not allocate per event once its arenas, wheel buckets and
// queues have reached their high-water capacity. The historical
// offenders — container/heap boxing every injection event, a fresh
// *message per message, and the rrPath map — are all pinned here.

import (
	"math/rand"
	"testing"

	"xgftsim/internal/core"
	"xgftsim/internal/topology"
	"xgftsim/internal/traffic"
)

// TestEngineSteadyStateAllocs warms an engine past its transient
// growth phase, then requires additional simulated cycles to run
// allocation-free (amortized below one allocation per 2000 cycles).
func TestEngineSteadyStateAllocs(t *testing.T) {
	tp := topology.MustNew(2, []int{4, 4}, []int{1, 4})
	perm := traffic.RandomDerangementish(tp.NumProcessors(), rand.New(rand.NewSource(9)))
	cfg, err := Config{
		Routing:      core.NewRouting(tp, core.Disjoint{}, 4, 0),
		Pattern:      traffic.NewPermutationPattern("alloc", perm),
		OfferedLoad:  0.6,
		WarmupCycles: 1000,
		// A far-away end keeps injections flowing for every measured
		// window; the test never runs anywhere near this horizon.
		MeasureCycles: 100_000_000,
		Seed:          5,
	}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(cfg)
	if e.rrPathDense == nil {
		t.Fatal("small topology did not get the dense round-robin table")
	}
	e.start()
	e.loop(20_000) // transient: route cache, arenas and queues fill
	if e.pktsInFlight == 0 {
		t.Fatal("no traffic in flight after warmup; test would measure an idle loop")
	}
	// The metric tallies (VC stalls, injection-heap high water) are part
	// of the measured loop, so this pin also guarantees metric
	// increments allocate nothing.
	stallsBefore := e.vcStalls
	allocs := testing.AllocsPerRun(5, func() {
		e.loop(e.now + 2000)
	})
	if allocs >= 1 {
		t.Errorf("steady-state loop allocates %.0f times per 2000 cycles; want 0", allocs)
	}
	if e.vcStalls == stallsBefore {
		t.Log("no VC stalls observed in the pinned window (load too light to exercise the stall tally)")
	}
	if e.injHeapHW == 0 {
		t.Error("injection-heap high-water tally never moved")
	}
	// Folding the tallies into the shared registry happens once per run,
	// off the hot path; it must still be allocation-free so result()
	// cannot disturb callers' pins.
	if fold := testing.AllocsPerRun(5, e.foldMetrics); fold != 0 {
		t.Errorf("foldMetrics allocates %.1f times; want 0", fold)
	}
}

// TestEngineAdaptiveSteadyStateAllocs covers the adaptive path (no
// source routes, per-hop port choice), which shares the injection and
// event machinery.
func TestEngineAdaptiveSteadyStateAllocs(t *testing.T) {
	tp := topology.MustNew(2, []int{4, 4}, []int{1, 4})
	perm := traffic.RandomDerangementish(tp.NumProcessors(), rand.New(rand.NewSource(11)))
	cfg, err := Config{
		Routing:       core.NewRouting(tp, core.Disjoint{}, 4, 0),
		Pattern:       traffic.NewPermutationPattern("alloc-adaptive", perm),
		OfferedLoad:   0.6,
		WarmupCycles:  1000,
		MeasureCycles: 100_000_000,
		Seed:          7,
		Adaptive:      true,
	}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(cfg)
	e.start()
	// Adaptive queues reach their high-water occupancy more slowly than
	// source-routed ones, so warm much longer before pinning.
	e.loop(200_000)
	allocs := testing.AllocsPerRun(5, func() {
		e.loop(e.now + 2000)
	})
	if allocs >= 1 {
		t.Errorf("adaptive steady-state loop allocates %.0f times per 2000 cycles; want 0", allocs)
	}
}

// TestEngineAdaptiveKSteadyStateAllocs covers the adaptive-K selector,
// whose per-hop mask scatter and per-pair path-index cache must stay
// off the allocator once every pair has been seen.
func TestEngineAdaptiveKSteadyStateAllocs(t *testing.T) {
	tp := topology.MustNew(2, []int{4, 4}, []int{1, 4})
	perm := traffic.RandomDerangementish(tp.NumProcessors(), rand.New(rand.NewSource(13)))
	cfg, err := Config{
		Routing:       core.NewRouting(tp, core.Disjoint{}, 4, 0),
		Pattern:       traffic.NewPermutationPattern("alloc-adaptivek", perm),
		OfferedLoad:   0.6,
		WarmupCycles:  1000,
		MeasureCycles: 100_000_000,
		Seed:          7,
		Selector:      SelectAdaptiveK,
	}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(cfg)
	e.start()
	e.loop(200_000)
	allocs := testing.AllocsPerRun(5, func() {
		e.loop(e.now + 2000)
	})
	if allocs >= 1 {
		t.Errorf("adaptive-K steady-state loop allocates %.0f times per 2000 cycles; want 0", allocs)
	}
}
