// Package flit implements the paper's flit-level network simulator: an
// event-driven, cycle-accurate model of virtual cut-through (VCT)
// switching with credit-based flow control and configurable virtual
// channels (the paper evaluates with one, the default), closely
// resembling InfiniBand fabrics. Packets are
// source-routed along the paths computed by a core.Routing; messages
// arrive at each processing node following a Poisson process whose
// rate realizes the configured offered load.
//
// Model summary (see DESIGN.md for the digit-reconstruction notes):
//
//   - Links move one flit per cycle; a packet of F flits occupies its
//     link for F cycles and its head incurs one cycle of latency per
//     hop, so the zero-load network delay of a packet over 2k hops is
//     2k + F cycles (cut-through overlaps serialization across hops).
//   - Every switch input port has a buffer of B packets. A packet may
//     start on an output link only when the link is idle, the packet's
//     head has arrived, the input buffer's read port is free, and the
//     downstream input buffer holds a credit (one free packet slot) —
//     the paper's "a packet is blocked if the destination port does
//     not have available buffer space".
//   - A buffer slot is released (and its credit returned upstream)
//     when the packet's tail leaves the buffer.
//   - Arbitration per output port is round-robin across input sources.
package flit

import (
	"fmt"

	"xgftsim/internal/core"
	"xgftsim/internal/topology"
	"xgftsim/internal/traffic"
)

// PathPolicy selects which of an SD pair's K paths each message takes.
type PathPolicy int

// Path selection policies.
const (
	// RoundRobin cycles deterministically through the pair's path set,
	// realizing the paper's uniform traffic fractions exactly.
	RoundRobin PathPolicy = iota
	// RandomPath draws a path uniformly per message, realizing the
	// fractions in expectation.
	RandomPath
)

func (p PathPolicy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case RandomPath:
		return "random"
	}
	return fmt.Sprintf("PathPolicy(%d)", int(p))
}

// Config parameterizes one simulation run.
type Config struct {
	// Routing supplies topology and per-pair path sets.
	Routing *core.Routing
	// Pattern draws message destinations.
	Pattern traffic.Pattern
	// OfferedLoad is the normalized injection rate in (0, 1]: the
	// fraction of each node's injection bandwidth (w_1 flits/cycle)
	// offered as traffic.
	OfferedLoad float64
	// FlitsPerPacket is the packet length F. Default 8.
	FlitsPerPacket int
	// PacketsPerMessage is the fixed message size in packets. Default 4.
	PacketsPerMessage int
	// BufferPackets is the per-input-port buffer capacity B. Default 4.
	BufferPackets int
	// RouterDelay is the per-hop header processing latency in cycles.
	// Default 1.
	RouterDelay int64
	// VirtualChannels is the number of virtual channels (InfiniBand
	// virtual lanes) per link, each with its own BufferPackets-deep
	// queue. Messages are assigned a VC at injection (round-robin per
	// node) and keep it along the path; the physical link arbitrates
	// round-robin across VCs. The paper evaluates with a single VC
	// (the default), which this knob relaxes.
	VirtualChannels int
	// WarmupCycles are simulated before measurement starts. Default 10000.
	WarmupCycles int64
	// MeasureCycles is the measurement window length. Default 30000.
	MeasureCycles int64
	// Seed drives all randomness in the run.
	Seed int64
	// PathPolicy selects per-message path choice. Default RoundRobin.
	PathPolicy PathPolicy
	// Routes optionally supplies a shared per-pair route cache so
	// engines of a sweep stop re-expanding the same routing. Nil keeps
	// an engine-local cache; flit.Sweep installs a shared table
	// automatically. Oblivious engines read port routes from it,
	// adaptive-K engines read path indices; full adaptive ignores it.
	Routes *RouteTable
	// FailedLinks lists directed links that are down for the whole
	// run: they never transmit. Oblivious routings stall the flows
	// whose precomputed paths cross them (head-of-line backpressure
	// then spreads); adaptive routing steers around failed upward
	// links, losing only the flows whose forced downward path is cut.
	FailedLinks []topology.LinkID
	// Faults optionally supplies a fault set (random or targeted link,
	// cable and switch failures) merged with FailedLinks: every link it
	// marks down never transmits. It must be over the Routing's
	// topology and must not be mutated once the run starts.
	Faults *topology.FaultSet
	// RepairRoutes, when true, expands source routes from the Routing
	// repaired against the combined faults (Faults + FailedLinks)
	// instead of the healthy path sets: flows are re-selected within
	// each scheme's policy around dead links, and messages of
	// disconnected pairs are dropped at injection and counted in
	// Result.MsgsUnroutable instead of wedging the fabric. Ignored
	// under the adaptive selectors, which already steer around
	// failures at run time.
	RepairRoutes bool
	// Adaptive is the legacy switch for minimal adaptive routing; it is
	// equivalent to (and normalized into) Selector: SelectAdaptive.
	// Setting both Adaptive and a non-oblivious Selector is fine as
	// long as they agree.
	Adaptive bool
	// Selector chooses the per-hop output-selection discipline:
	// SelectOblivious (default) walks the source route precomputed from
	// the Routing's K-limited path sets; SelectAdaptive is full minimal
	// adaptive routing ignoring the K-limit (the Routing still supplies
	// the topology; its path selection and PathPolicy are ignored);
	// SelectAdaptiveK steers by VC-queue occupancy among only the
	// up-ports on one of the pair's K compiled paths. Adaptive-K
	// requires the Routing's MaxPathsUsed to fit the 64-bit path mask.
	Selector OutputSelector
	// VCScheme selects how messages are assigned their virtual channel
	// at injection: per-node round-robin (default), VC per destination
	// top-level subtree, or a VOQ-ish channel keyed by the
	// destination's lowest address digit. With one VC all schemes
	// coincide.
	VCScheme VCScheme
	// BurstMean, when > 1, switches arrivals from plain Poisson to
	// bursty: message-generation epochs stay Poisson but are spaced
	// BurstMean times further apart, and each epoch emits a geometric
	// burst of messages with mean BurstMean, preserving the offered
	// load while clustering it. 0 or 1 keeps plain Poisson arrivals.
	BurstMean float64
	// DelayHistogram, when true, collects a message-delay histogram in
	// the result.
	DelayHistogram bool
	// Drain, when true, keeps the simulation running after the
	// measurement window (with injection stopped) until every in-flight
	// packet is delivered, up to a 10x-window safety cap. Measured
	// statistics still cover only the window; with no failed links the
	// final backlog is exactly zero, which the conservation tests
	// assert.
	Drain bool

	// faults and repaired are derived by withDefaults: the validated
	// merge of Faults + FailedLinks, and (under RepairRoutes) the
	// Routing bound to it.
	faults   *topology.FaultSet
	repaired *core.RepairedRouting
}

// combinedFaults merges Faults and FailedLinks into one fault set over
// the routing's topology, validating link ranges (the condition the
// engine used to panic on).
func (c Config) combinedFaults() (*topology.FaultSet, error) {
	t := c.Routing.Topology()
	if c.Faults != nil && c.Faults.Topology() != t {
		return nil, fmt.Errorf("flit: fault set is over %s, routing is over %s", c.Faults.Topology(), t)
	}
	f := topology.NewFaultSet(t)
	if c.Faults != nil {
		if err := f.FailLinks(c.Faults.DownLinks()); err != nil {
			return nil, err
		}
	}
	if err := f.FailLinks(c.FailedLinks); err != nil {
		return nil, fmt.Errorf("flit: %w", err)
	}
	return f, nil
}

// withDefaults fills zero fields and validates.
func (c Config) withDefaults() (Config, error) {
	if c.Routing == nil {
		return c, fmt.Errorf("flit: Config.Routing is required")
	}
	if c.Pattern == nil {
		return c, fmt.Errorf("flit: Config.Pattern is required")
	}
	if c.OfferedLoad <= 0 || c.OfferedLoad > 1 {
		return c, fmt.Errorf("flit: offered load %g out of (0,1]", c.OfferedLoad)
	}
	if c.FlitsPerPacket == 0 {
		c.FlitsPerPacket = 8
	}
	if c.PacketsPerMessage == 0 {
		c.PacketsPerMessage = 4
	}
	if c.BufferPackets == 0 {
		c.BufferPackets = 4
	}
	if c.RouterDelay == 0 {
		c.RouterDelay = 1
	}
	if c.VirtualChannels == 0 {
		c.VirtualChannels = 1
	}
	if c.VirtualChannels < 1 || c.VirtualChannels > 15 {
		return c, fmt.Errorf("flit: virtual channels %d out of [1,15] (InfiniBand VLs)", c.VirtualChannels)
	}
	if c.WarmupCycles == 0 {
		c.WarmupCycles = 10000
	}
	if c.MeasureCycles == 0 {
		c.MeasureCycles = 30000
	}
	if c.FlitsPerPacket < 1 || c.PacketsPerMessage < 1 || c.BufferPackets < 1 {
		return c, fmt.Errorf("flit: packet/message/buffer sizes must be >= 1")
	}
	if c.RouterDelay < 0 || c.WarmupCycles < 0 || c.MeasureCycles < 1 {
		return c, fmt.Errorf("flit: negative timing parameters")
	}
	// Normalize the legacy Adaptive flag and the Selector into one
	// consistent pair so the engine and sweep sharing logic read either.
	if c.Selector < SelectOblivious || c.Selector > SelectAdaptiveK {
		return c, fmt.Errorf("flit: unknown output selector %d", int(c.Selector))
	}
	if c.Adaptive && c.Selector == SelectOblivious {
		c.Selector = SelectAdaptive
	}
	if c.Selector == SelectAdaptive {
		c.Adaptive = true
	}
	if c.Selector == SelectAdaptiveK {
		if mp := c.Routing.MaxPathsUsed(); mp > 64 {
			return c, fmt.Errorf("flit: adaptive-K tracks paths in a 64-bit mask; routing assigns up to %d paths per pair (lower K)", mp)
		}
	}
	if c.VCScheme < VCRoundRobin || c.VCScheme > VCDownDigit {
		return c, fmt.Errorf("flit: unknown VC scheme %d", int(c.VCScheme))
	}
	if c.BurstMean == 0 {
		c.BurstMean = 1
	}
	if c.BurstMean < 1 {
		return c, fmt.Errorf("flit: burst mean %g out of [1, inf) (1 = plain Poisson)", c.BurstMean)
	}
	if c.Faults != nil || len(c.FailedLinks) > 0 {
		faults, err := c.combinedFaults()
		if err != nil {
			return c, err
		}
		c.faults = faults
		if c.RepairRoutes && c.Selector == SelectOblivious {
			rr, err := c.Routing.Repair(faults)
			if err != nil {
				return c, err
			}
			c.repaired = rr
		}
	}
	return c, nil
}

// Result reports one simulation run.
type Result struct {
	// OfferedLoad echoes the configured load.
	OfferedLoad float64
	// Throughput is the normalized accepted throughput: flits ejected
	// during measurement divided by the aggregate ejection capacity
	// (cycles × N × w_1). Below saturation it tracks OfferedLoad.
	Throughput float64
	// AvgDelay is the mean message delay in cycles (generation to
	// ejection of the last flit) over messages generated and completed
	// inside the measurement window.
	AvgDelay float64
	// DelayCI is the 95% confidence half-width of AvgDelay estimated
	// by the method of batch means (the measurement window is split
	// into equal batches whose means are treated as independent
	// samples, absorbing the autocorrelation of queueing delays).
	DelayCI float64
	// P95Delay is the 95th-percentile message delay (bucketed upper
	// bound); only collected when Config.DelayHistogram is set.
	P95Delay float64
	// MsgsGenerated and MsgsCompleted count messages generated during
	// measurement and message completions attributed to them.
	MsgsGenerated, MsgsCompleted int64
	// MsgsUnroutable counts messages (whole run, not just the window)
	// dropped as permanently undeliverable: at injection because
	// repaired routing found their SD pair disconnected, or — under the
	// adaptive selectors — in transit because the packet reached a
	// point whose every admissible next link is failed (typically a
	// dead forced downward link). Each message counts once, even when
	// several of its packets are discarded.
	MsgsUnroutable int64
	// FlitsEjected counts measured ejected flits.
	FlitsEjected int64
	// BacklogPackets is the number of packets still queued or in
	// flight at the end of the run — a growing backlog indicates
	// operation beyond saturation.
	BacklogPackets int64
	// VCStalls counts transmissions skipped because the packet's next
	// queue on its virtual channel had no free slot (whole run): the
	// engine's backpressure events, also exported as the flit.vc_stalls
	// metric.
	VCStalls int64
	// Fairness is Jain's fairness index over the per-destination
	// ejected flit counts: 1 means every node received an equal share,
	// 1/N means one node got everything. Quantifies how unevenly a
	// saturated routing starves flows.
	Fairness float64
	// Saturated reports the heuristic judgment that accepted
	// throughput fell measurably below offered load.
	Saturated bool
	// Cycles is the measured window length.
	Cycles int64
	// Wedged reports that the no-progress watchdog fired: packets were
	// in flight but no event could ever fire again (every one of them
	// permanently blocked, typically behind a failed link), so the run
	// terminated at WedgedAt instead of spinning to its cycle cap.
	// WedgeDiagnosis names an exemplar stuck packet; when the run did
	// NOT wedge but the adaptive selectors discarded unroutable
	// messages (MsgsUnroutable > 0), it instead names the dead link
	// behind the first drop.
	Wedged         bool
	WedgedAt       int64
	WedgeDiagnosis string
}

// String summarizes the result on one line.
func (r Result) String() string {
	s := fmt.Sprintf("load=%.3f thr=%.4f delay=%.1f msgs=%d/%d sat=%v",
		r.OfferedLoad, r.Throughput, r.AvgDelay, r.MsgsCompleted, r.MsgsGenerated, r.Saturated)
	if r.Wedged {
		s += fmt.Sprintf(" WEDGED@%d", r.WedgedAt)
	}
	return s
}
