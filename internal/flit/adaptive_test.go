package flit

import (
	"math"
	"testing"

	"xgftsim/internal/core"
	"xgftsim/internal/stats"
	"xgftsim/internal/topology"
	"xgftsim/internal/traffic"
)

func adaptiveBase(t *testing.T, tp *topology.Topology, pattern traffic.Pattern) Config {
	t.Helper()
	return Config{
		Routing:       core.NewRouting(tp, core.DModK{}, 1, 0),
		Pattern:       pattern,
		Adaptive:      true,
		Seed:          21,
		WarmupCycles:  2000,
		MeasureCycles: 8000,
	}
}

// TestAdaptiveZeroLoadDelay: adaptive routing still takes shortest
// paths, so the zero-load delay formula holds unchanged.
func TestAdaptiveZeroLoadDelay(t *testing.T) {
	tp := topology.MustNew(2, []int{4, 8}, []int{1, 4})
	n := tp.NumProcessors()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	perm[0] = n - 1
	cfg := adaptiveBase(t, tp, traffic.NewPermutationPattern("single", perm))
	cfg.OfferedLoad = 0.02
	cfg.MeasureCycles = 40000
	res := MustRun(cfg)
	hops := 2 * tp.NCALevel(0, n-1)
	want := float64(4*8 + (hops-1)*2)
	if math.Abs(res.AvgDelay-want) > 0.5 {
		t.Fatalf("adaptive zero-load delay %.2f, want %.1f", res.AvgDelay, want)
	}
}

// TestAdaptiveDelivers: conservation and delivery under load on a
// 3-level tree.
func TestAdaptiveDelivers(t *testing.T) {
	tp := topology.MustNew(3, []int{2, 2, 4}, []int{1, 2, 2})
	cfg := adaptiveBase(t, tp, traffic.UniformPattern{N: tp.NumProcessors()})
	cfg.OfferedLoad = 0.5
	res := MustRun(cfg)
	if res.MsgsCompleted == 0 {
		t.Fatal("nothing delivered")
	}
	if math.Abs(res.Throughput-0.5) > 0.05 {
		t.Fatalf("adaptive throughput %.3f at load 0.5", res.Throughput)
	}
	if res.BacklogPackets < 0 {
		t.Fatal("negative backlog")
	}
}

// TestAdaptiveBeatsSinglePathOnAssignment: with a fixed assignment
// workload, spreading over all up links must raise the saturation
// throughput above oblivious d-mod-k.
func TestAdaptiveBeatsSinglePathOnAssignment(t *testing.T) {
	tp := topology.MustNew(3, []int{4, 4, 8}, []int{1, 4, 4})
	pattern := traffic.NewPermutationPattern("fixed",
		traffic.RandomDerangementish(tp.NumProcessors(), stats.Stream(5, 0)))
	run := func(adaptive bool) float64 {
		base := adaptiveBase(t, tp, pattern)
		base.Adaptive = adaptive
		base.MeasureCycles = 6000
		results, err := Sweep(SweepConfig{Base: base, Loads: []float64{0.5, 0.7, 0.9, 1.0}})
		if err != nil {
			t.Fatal(err)
		}
		return MaxThroughput(results)
	}
	oblivious := run(false)
	adaptive := run(true)
	if adaptive <= oblivious {
		t.Fatalf("adaptive %.3f not above oblivious d-mod-k %.3f", adaptive, oblivious)
	}
}

// TestAdaptiveDeterministic: reproducible under a fixed seed.
func TestAdaptiveDeterministic(t *testing.T) {
	tp := topology.MustNew(2, []int{4, 8}, []int{1, 4})
	cfg := adaptiveBase(t, tp, traffic.UniformPattern{N: tp.NumProcessors()})
	cfg.OfferedLoad = 0.7
	a, b := MustRun(cfg), MustRun(cfg)
	if a != b {
		t.Fatalf("adaptive not deterministic:\n%+v\n%+v", a, b)
	}
}
