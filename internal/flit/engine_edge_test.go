package flit

import (
	"math"
	"testing"
	"testing/quick"

	"xgftsim/internal/core"
	"xgftsim/internal/topology"
	"xgftsim/internal/traffic"
)

// TestSingleFlitPackets: the wheel must handle F=1 (horizon dominated
// by the router delay).
func TestSingleFlitPackets(t *testing.T) {
	tp := topology.MustNew(2, []int{4, 8}, []int{1, 4})
	n := tp.NumProcessors()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	perm[0] = n - 1
	cfg := Config{
		Routing:           core.NewRouting(tp, core.DModK{}, 1, 0),
		Pattern:           traffic.NewPermutationPattern("single", perm),
		OfferedLoad:       0.05,
		FlitsPerPacket:    1,
		PacketsPerMessage: 1,
		WarmupCycles:      500,
		MeasureCycles:     20000,
		Seed:              1,
	}
	res := MustRun(cfg)
	hops := 2 * tp.NCALevel(0, n-1)
	want := float64(1 + (hops-1)*2) // P·F + (hops-1)·(1+RD)
	if math.Abs(res.AvgDelay-want) > 0.5 {
		t.Fatalf("delay %.2f want %.1f", res.AvgDelay, want)
	}
}

// TestZeroRouterDelay: RouterDelay is an explicit knob; -1 means 0 is
// not supported by config (0 defaults to 1), so drive it via a long
// packet where the wheel span comes from F.
func TestLongPacketsSmallBuffers(t *testing.T) {
	tp := topology.MustNew(2, []int{2, 4}, []int{1, 2})
	cfg := Config{
		Routing:           core.NewRouting(tp, core.Shift1{}, 2, 0),
		Pattern:           traffic.UniformPattern{N: tp.NumProcessors()},
		OfferedLoad:       0.8,
		FlitsPerPacket:    32,
		PacketsPerMessage: 2,
		BufferPackets:     1, // minimum legal buffering
		WarmupCycles:      2000,
		MeasureCycles:     8000,
		Seed:              2,
	}
	res := MustRun(cfg)
	if res.FlitsEjected == 0 {
		t.Fatal("nothing delivered with single-packet buffers")
	}
	if res.Throughput > 0.8+0.02 {
		t.Fatalf("throughput %.3f exceeds offered", res.Throughput)
	}
}

// TestTinyTree: the smallest legal XGFT (one switch) works.
func TestTinyTree(t *testing.T) {
	tp := topology.MustNew(1, []int{4}, []int{1})
	cfg := Config{
		Routing:       core.NewRouting(tp, core.DModK{}, 1, 0),
		Pattern:       traffic.UniformPattern{N: 4},
		OfferedLoad:   0.9,
		WarmupCycles:  1000,
		MeasureCycles: 5000,
		Seed:          3,
	}
	res := MustRun(cfg)
	// A single crossbar under uniform traffic: near-full throughput.
	if res.Throughput < 0.7 {
		t.Fatalf("crossbar throughput %.3f", res.Throughput)
	}
}

// TestMultiParentInjection: trees with w_1 > 1 give processing nodes
// several up links; routing and injection must use them.
func TestMultiParentInjection(t *testing.T) {
	tp := topology.MustNew(2, []int{3, 4}, []int{2, 2})
	for _, adaptive := range []bool{false, true} {
		cfg := Config{
			Routing:       core.NewRouting(tp, core.Disjoint{}, 4, 0),
			Pattern:       traffic.UniformPattern{N: tp.NumProcessors()},
			OfferedLoad:   0.5,
			Adaptive:      adaptive,
			WarmupCycles:  1500,
			MeasureCycles: 6000,
			Seed:          4,
		}
		res := MustRun(cfg)
		// Offered load is normalized to w_1 = 2 flits/cycle/node.
		if math.Abs(res.Throughput-0.5) > 0.06 {
			t.Fatalf("adaptive=%v: throughput %.3f at load 0.5 (w1=2)", adaptive, res.Throughput)
		}
	}
}

// TestOfferedLoadTracking (property): below saturation, accepted
// throughput tracks offered load for arbitrary small loads.
func TestOfferedLoadTrackingQuick(t *testing.T) {
	tp := topology.MustNew(2, []int{4, 8}, []int{1, 4})
	pat := traffic.UniformPattern{N: tp.NumProcessors()}
	f := func(loadRaw uint8, seed int64) bool {
		load := 0.05 + float64(loadRaw%25)/100 // 0.05 .. 0.29
		cfg := Config{
			Routing:       core.NewRouting(tp, core.DModK{}, 1, 0),
			Pattern:       pat,
			OfferedLoad:   load,
			WarmupCycles:  2000,
			MeasureCycles: 20000,
			Seed:          seed,
		}
		res := MustRun(cfg)
		// The saturation flag compares against nominal offered load and
		// may trip on Poisson sampling noise; the accepted-vs-offered
		// distance is the real property.
		return math.Abs(res.Throughput-load) < 0.03
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestMessageAccounting: completed messages never exceed generated,
// and generation matches the Poisson rate closely.
func TestMessageAccounting(t *testing.T) {
	tp := topology.MustNew(2, []int{4, 8}, []int{1, 4})
	cfg := Config{
		Routing:       core.NewRouting(tp, core.Disjoint{}, 2, 0),
		Pattern:       traffic.UniformPattern{N: tp.NumProcessors()},
		OfferedLoad:   0.4,
		WarmupCycles:  2000,
		MeasureCycles: 20000,
		Seed:          5,
	}
	res := MustRun(cfg)
	if res.MsgsCompleted > res.MsgsGenerated {
		t.Fatalf("completed %d > generated %d", res.MsgsCompleted, res.MsgsGenerated)
	}
	// Expected messages: load * N * w1 / (F*P) per cycle.
	expected := 0.4 * float64(tp.NumProcessors()) / 32 * float64(res.Cycles)
	if math.Abs(float64(res.MsgsGenerated)-expected) > 0.1*expected {
		t.Fatalf("generated %d, expected ~%.0f", res.MsgsGenerated, expected)
	}
}

// TestWarmupExcluded: messages generated during warmup never appear in
// the measured statistics.
func TestWarmupExcluded(t *testing.T) {
	tp := topology.MustNew(2, []int{4, 8}, []int{1, 4})
	cfg := Config{
		Routing:       core.NewRouting(tp, core.DModK{}, 1, 0),
		Pattern:       traffic.UniformPattern{N: tp.NumProcessors()},
		OfferedLoad:   0.3,
		WarmupCycles:  50000,
		MeasureCycles: 1000,
		Seed:          6,
	}
	res := MustRun(cfg)
	// Roughly load·N·w1/(F·P)·cycles messages; a huge warmup must not
	// leak in.
	if res.MsgsGenerated > 3*int64(0.3*128.0/32*1000+10) {
		t.Fatalf("generated %d in a 1000-cycle window", res.MsgsGenerated)
	}
}

// TestDelayCIPresent: the batch-means CI is produced under steady
// traffic and is small relative to the mean below saturation.
func TestDelayCIPresent(t *testing.T) {
	tp := topology.MustNew(2, []int{4, 8}, []int{1, 4})
	cfg := Config{
		Routing:       core.NewRouting(tp, core.Disjoint{}, 2, 0),
		Pattern:       traffic.UniformPattern{N: tp.NumProcessors()},
		OfferedLoad:   0.4,
		WarmupCycles:  3000,
		MeasureCycles: 20000,
		Seed:          9,
	}
	res := MustRun(cfg)
	if res.DelayCI <= 0 {
		t.Fatalf("no delay CI: %+v", res)
	}
	if res.DelayCI > res.AvgDelay {
		t.Fatalf("CI %.1f exceeds mean %.1f below saturation", res.DelayCI, res.AvgDelay)
	}
}
