package flit

// Whitebox tests of the timing-wheel scheduler and arena internals.

import (
	"testing"

	"xgftsim/internal/core"
	"xgftsim/internal/topology"
	"xgftsim/internal/traffic"
)

func testEngine(t *testing.T) *engine {
	t.Helper()
	tp := topology.MustNew(2, []int{2, 4}, []int{1, 2})
	cfg, err := Config{
		Routing:     core.NewRouting(tp, core.DModK{}, 1, 0),
		Pattern:     traffic.UniformPattern{N: tp.NumProcessors()},
		OfferedLoad: 0.5,
	}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	return newEngine(cfg)
}

func TestWheelHorizonGuard(t *testing.T) {
	e := testEngine(t)
	// Within horizon: fine.
	e.schedule(10, 11, evFree, 0, -1)
	e.schedule(10, 10+e.wheelSpan-1, evFree, 0, -1)
	if e.pending != 2 {
		t.Fatalf("pending %d", e.pending)
	}
	for _, bad := range []int64{10, 9, 10 + e.wheelSpan, 10 + 2*e.wheelSpan} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("schedule at %d accepted (now=10, span=%d)", bad, e.wheelSpan)
				}
			}()
			e.schedule(10, bad, evFree, 0, -1)
		}()
	}
}

func TestWheelSpanCoversAllEvents(t *testing.T) {
	// Span must exceed both the packet length and the router delay + 1.
	tp := topology.MustNew(2, []int{2, 4}, []int{1, 2})
	for _, c := range []struct {
		flits int
		rd    int64
	}{{1, 1}, {8, 1}, {1, 7}, {16, 16}} {
		cfg, err := Config{
			Routing:        core.NewRouting(tp, core.DModK{}, 1, 0),
			Pattern:        traffic.UniformPattern{N: tp.NumProcessors()},
			OfferedLoad:    0.5,
			FlitsPerPacket: c.flits,
			RouterDelay:    c.rd,
		}.withDefaults()
		if err != nil {
			t.Fatal(err)
		}
		e := newEngine(cfg)
		if e.wheelSpan <= int64(c.flits) || e.wheelSpan <= c.rd+1 {
			t.Errorf("flits=%d rd=%d: span %d too small", c.flits, c.rd, e.wheelSpan)
		}
	}
}

func TestPacketArenaReuse(t *testing.T) {
	e := testEngine(t)
	a := e.allocPacket(packet{flits: 8})
	b := e.allocPacket(packet{flits: 8})
	if a == b {
		t.Fatal("distinct allocations shared a slot")
	}
	// Simulate delivery freeing slot a (and its message's arena slot).
	m := e.allocMessage(message{packetsLeft: 1})
	e.packets[a].msg = m
	e.pktsInFlight = 1
	e.deliver(a, e.warmEnd)
	c := e.allocPacket(packet{flits: 4})
	if c != a {
		t.Fatalf("freed slot %d not reused (got %d)", a, c)
	}
	if e.packets[c].flits != 4 {
		t.Fatal("reused slot kept stale contents")
	}
	if m2 := e.allocMessage(message{packetsLeft: 2}); m2 != m {
		t.Fatalf("freed message slot %d not reused (got %d)", m, m2)
	}
}

func TestInjectionHeapOrder(t *testing.T) {
	e := testEngine(t)
	e.inj = nil
	for _, ev := range []injEvent{{5, 2}, {3, 1}, {5, 0}, {4, 3}} {
		e.inj = append(e.inj, ev)
	}
	// Rebuild through the typed heap's own push.
	events := append([]injEvent(nil), e.inj...)
	e.inj = nil
	for _, ev := range events {
		e.inj.push(ev)
	}
	var got []injEvent
	for len(e.inj) > 0 {
		got = append(got, e.inj.pop())
	}
	want := []injEvent{{3, 1}, {4, 3}, {5, 0}, {5, 2}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

// TestInjectionHeapRandomized drains a randomized heap and checks the
// pops come out sorted by (time, node) — the invariant the typed
// sift-up/down must preserve without container/heap's checks.
func TestInjectionHeapRandomized(t *testing.T) {
	var h injHeap
	const n = 500
	for i := 0; i < n; i++ {
		h.push(injEvent{time: int64(i*7919) % 97, node: int32(i % 13)})
	}
	prev := injEvent{time: -1, node: -1}
	for i := 0; i < n; i++ {
		ev := h.pop()
		if ev.time < prev.time || (ev.time == prev.time && ev.node < prev.node) {
			t.Fatalf("pop %d: %v after %v out of order", i, ev, prev)
		}
		prev = ev
	}
	if len(h) != 0 {
		t.Fatalf("%d events left after draining", len(h))
	}
}
