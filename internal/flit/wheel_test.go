package flit

// Whitebox tests of the timing-wheel scheduler and arena internals.

import (
	"testing"

	"xgftsim/internal/core"
	"xgftsim/internal/topology"
	"xgftsim/internal/traffic"
)

func testEngine(t *testing.T) *engine {
	t.Helper()
	tp := topology.MustNew(2, []int{2, 4}, []int{1, 2})
	cfg, err := Config{
		Routing:     core.NewRouting(tp, core.DModK{}, 1, 0),
		Pattern:     traffic.UniformPattern{N: tp.NumProcessors()},
		OfferedLoad: 0.5,
	}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	return newEngine(cfg)
}

func TestWheelHorizonGuard(t *testing.T) {
	e := testEngine(t)
	// Within horizon: fine.
	e.schedule(10, 11, evFree, 0, -1)
	e.schedule(10, 10+e.wheelSpan-1, evFree, 0, -1)
	if e.pending != 2 {
		t.Fatalf("pending %d", e.pending)
	}
	for _, bad := range []int64{10, 9, 10 + e.wheelSpan, 10 + 2*e.wheelSpan} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("schedule at %d accepted (now=10, span=%d)", bad, e.wheelSpan)
				}
			}()
			e.schedule(10, bad, evFree, 0, -1)
		}()
	}
}

func TestWheelSpanCoversAllEvents(t *testing.T) {
	// Span must exceed both the packet length and the router delay + 1.
	tp := topology.MustNew(2, []int{2, 4}, []int{1, 2})
	for _, c := range []struct {
		flits int
		rd    int64
	}{{1, 1}, {8, 1}, {1, 7}, {16, 16}} {
		cfg, err := Config{
			Routing:        core.NewRouting(tp, core.DModK{}, 1, 0),
			Pattern:        traffic.UniformPattern{N: tp.NumProcessors()},
			OfferedLoad:    0.5,
			FlitsPerPacket: c.flits,
			RouterDelay:    c.rd,
		}.withDefaults()
		if err != nil {
			t.Fatal(err)
		}
		e := newEngine(cfg)
		if e.wheelSpan <= int64(c.flits) || e.wheelSpan <= c.rd+1 {
			t.Errorf("flits=%d rd=%d: span %d too small", c.flits, c.rd, e.wheelSpan)
		}
	}
}

func TestPacketArenaReuse(t *testing.T) {
	e := testEngine(t)
	a := e.allocPacket(packet{flits: 8})
	b := e.allocPacket(packet{flits: 8})
	if a == b {
		t.Fatal("distinct allocations shared a slot")
	}
	// Simulate delivery freeing slot a.
	e.packets[a].msg = &message{packetsLeft: 1}
	e.pktsInFlight = 1
	e.deliver(a, e.warmEnd)
	c := e.allocPacket(packet{flits: 4})
	if c != a {
		t.Fatalf("freed slot %d not reused (got %d)", a, c)
	}
	if e.packets[c].flits != 4 {
		t.Fatal("reused slot kept stale contents")
	}
}

func TestInjectionHeapOrder(t *testing.T) {
	e := testEngine(t)
	e.inj = nil
	for _, ev := range []injEvent{{5, 2}, {3, 1}, {5, 0}, {4, 3}} {
		e.inj = append(e.inj, ev)
	}
	// heap.Init via push order instead: rebuild properly.
	events := append([]injEvent(nil), e.inj...)
	e.inj = nil
	for _, ev := range events {
		pushInj(e, ev)
	}
	var got []injEvent
	for len(e.inj) > 0 {
		got = append(got, popInj(e))
	}
	want := []injEvent{{3, 1}, {4, 3}, {5, 0}, {5, 2}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

func pushInj(e *engine, ev injEvent) {
	e.inj = append(e.inj, ev)
	// Sift up (mirrors container/heap semantics through the Less impl).
	i := len(e.inj) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !e.inj.Less(i, parent) {
			break
		}
		e.inj.Swap(i, parent)
		i = parent
	}
}

func popInj(e *engine) injEvent {
	top := e.inj[0]
	n := len(e.inj) - 1
	e.inj.Swap(0, n)
	e.inj = e.inj[:n]
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && e.inj.Less(l, small) {
			small = l
		}
		if r < n && e.inj.Less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		e.inj.Swap(i, small)
		i = small
	}
	return top
}
