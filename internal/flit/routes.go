package flit

import (
	"sync"

	"xgftsim/internal/core"
)

// RouteTable is a thread-safe cache of per-pair port routes shared
// across engine instances, so a load sweep (or repeated-seed study)
// expands each SD pair's paths into source routes once instead of once
// per engine. When hydrated from a core.CompiledRouting the expansion
// skips the selector (and its RNG streams) entirely; otherwise routes
// come from the Routing on first use. Entries are immutable once
// stored, so readers may hold the returned slices without copying.
type RouteTable struct {
	routing  *core.Routing
	repaired *core.RepairedRouting
	compiled *core.CompiledRouting
	n        int

	mu     sync.RWMutex
	routes map[int64][][]int
	paths  map[int64]pathEntry // adaptive-K: per-pair path indices + NCA level
}

// pathEntry caches one pair's compiled path indices for the adaptive-K
// selector: the canonical path-index slice (immutable, aliased by
// every packet of the pair) and the pair's nearest-common-ancestor
// level, which fixes the mixed-radix digit decomposition.
type pathEntry struct {
	idxs []int32
	nca  int8
}

// NewRouteTable creates a shared route cache for r. compiled may be
// nil; when set it must have been compiled from a routing over the
// same topology and is used as the route source.
func NewRouteTable(r *core.Routing, compiled *core.CompiledRouting) *RouteTable {
	if compiled != nil && compiled.Topology() != r.Topology() {
		panic("flit: RouteTable compiled table is over a different topology")
	}
	return &RouteTable{
		routing:  r,
		compiled: compiled,
		n:        r.Topology().NumProcessors(),
		routes:   make(map[int64][][]int),
		paths:    make(map[int64]pathEntry),
	}
}

// NewRepairedRouteTable creates a shared route cache expanding rr's
// repaired path sets, so every engine of a degraded-fabric sweep sees
// routes that avoid the failed links (and empty route sets for
// disconnected pairs). The fault set must not be mutated afterwards.
// compiled may be nil; when set it must hold rr's degraded paths —
// either its full CompileRepaired or a delta patch against the healthy
// base table (core.CompileRepairedDelta) — and routes then hydrate
// from the patched CSR rows instead of re-running per-pair lazy
// repair.
func NewRepairedRouteTable(rr *core.RepairedRouting, compiled *core.CompiledRouting) *RouteTable {
	if compiled != nil {
		if compiled.Routing() != rr.Base() {
			panic("flit: RouteTable compiled table is over a different routing")
		}
		if rep := compiled.Repaired(); rep != nil && rep != rr {
			// A healthy base table (rep == nil) is fine: delta repair
			// returns it unchanged when no selected path died.
			panic("flit: RouteTable compiled table repairs a different fault set")
		}
	}
	return &RouteTable{
		routing:  rr.Base(),
		repaired: rr,
		compiled: compiled,
		n:        rr.Topology().NumProcessors(),
		routes:   make(map[int64][][]int),
		paths:    make(map[int64]pathEntry),
	}
}

// RoutesFor returns the pair's port routes, computing and caching them
// on first use. Safe for concurrent use.
func (rt *RouteTable) RoutesFor(src, dst int) [][]int {
	key := int64(src)*int64(rt.n) + int64(dst)
	rt.mu.RLock()
	r, ok := rt.routes[key]
	rt.mu.RUnlock()
	if ok {
		return r
	}
	switch {
	case rt.compiled != nil:
		r = rt.compiled.PortRoutes(src, dst)
	case rt.repaired != nil:
		r = rt.repaired.PortRoutes(src, dst)
	default:
		r = rt.routing.PortRoutes(src, dst)
	}
	rt.mu.Lock()
	// A concurrent fill may have won; keep the stored value so every
	// engine sees one canonical slice.
	if prev, ok := rt.routes[key]; ok {
		r = prev
	} else {
		rt.routes[key] = r
	}
	rt.mu.Unlock()
	return r
}

// PathIndicesFor returns the pair's canonical path indices and NCA
// level for the adaptive-K selector, computing and caching them on
// first use. Indices hydrate from a healthy compiled table when one is
// attached; otherwise (including repaired tables) they come from the
// healthy routing's enumeration — adaptive-K steers around failures at
// run time, so repair never narrows its path budget. Safe for
// concurrent use; the returned slice is immutable.
func (rt *RouteTable) PathIndicesFor(src, dst int) ([]int32, int) {
	key := int64(src)*int64(rt.n) + int64(dst)
	rt.mu.RLock()
	ent, ok := rt.paths[key]
	rt.mu.RUnlock()
	if !ok {
		var idxs []int32
		if rt.compiled != nil && rt.compiled.Repaired() == nil {
			idxs = rt.compiled.PathIndices(src, dst)
		} else {
			ids := rt.routing.Paths(src, dst)
			idxs = make([]int32, len(ids))
			for i, id := range ids {
				idxs[i] = int32(id)
			}
		}
		ent = pathEntry{idxs: idxs, nca: int8(rt.routing.Topology().NCALevel(src, dst))}
		rt.mu.Lock()
		if prev, ok := rt.paths[key]; ok {
			ent = prev
		} else {
			rt.paths[key] = ent
		}
		rt.mu.Unlock()
	}
	return ent.idxs, int(ent.nca)
}
