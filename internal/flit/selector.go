package flit

import (
	"fmt"
	"math/bits"

	"xgftsim/internal/topology"
)

// OutputSelector names the engine's per-hop route decision discipline.
// Every packet movement — out of the injection queue and at every
// switch — goes through exactly one hopSelector implementation, so the
// three regimes differ only in how a hop is chosen, never in the
// event machinery around it.
type OutputSelector int

const (
	// SelectOblivious walks the source route precomputed at injection
	// (the paper's K-limited multipath routing): the per-hop output
	// port is fixed before the packet enters the network.
	SelectOblivious OutputSelector = iota
	// SelectAdaptive is minimal adaptive routing (the comparator of
	// Gomez et al., IPDPS 2007): on the way up every switch sends the
	// packet to its least-occupied upward output, ignoring the K-limit
	// entirely, and the forced downward path is followed from the
	// nearest common ancestor.
	SelectAdaptive
	// SelectAdaptiveK steers by VC-queue occupancy like SelectAdaptive,
	// but only among up-ports that lie on one of the pair's K compiled
	// paths: the packet carries a bitmask over its path-index set,
	// narrowed at every upward hop to the paths crossing the chosen
	// port, so adaptivity never escapes the K-limited path budget.
	SelectAdaptiveK
)

func (s OutputSelector) String() string {
	switch s {
	case SelectOblivious:
		return "oblivious"
	case SelectAdaptive:
		return "adaptive"
	case SelectAdaptiveK:
		return "adaptive-k"
	}
	return fmt.Sprintf("OutputSelector(%d)", int(s))
}

// ParseOutputSelector resolves a selector name as printed by String.
func ParseOutputSelector(name string) (OutputSelector, error) {
	switch name {
	case "oblivious":
		return SelectOblivious, nil
	case "adaptive":
		return SelectAdaptive, nil
	case "adaptive-k", "adaptivek":
		return SelectAdaptiveK, nil
	}
	return 0, fmt.Errorf("flit: unknown output selector %q (want oblivious, adaptive or adaptive-k)", name)
}

// VCScheme selects how messages are assigned a virtual channel at
// injection. The assignment is fixed for the message's lifetime; with
// one VC (the paper's setup) every scheme degenerates to VC 0.
type VCScheme int

const (
	// VCRoundRobin rotates per source node, spreading consecutive
	// messages across channels regardless of destination (the historic
	// default).
	VCRoundRobin VCScheme = iota
	// VCDestSubtree keys the channel on the destination's top-level
	// subtree, so traffic crossing into different spines never shares a
	// VC queue — the "VC per destination subtree" scheme.
	VCDestSubtree
	// VCDownDigit keys the channel on the destination's lowest address
	// digit (its leaf-switch down-port), a VOQ-flavored scheme that
	// separates flows by their final output even within one subtree.
	VCDownDigit
)

func (s VCScheme) String() string {
	switch s {
	case VCRoundRobin:
		return "rr-injection"
	case VCDestSubtree:
		return "dest-subtree"
	case VCDownDigit:
		return "down-digit"
	}
	return fmt.Sprintf("VCScheme(%d)", int(s))
}

// ParseVCScheme resolves a VC scheme name as printed by String.
func ParseVCScheme(name string) (VCScheme, error) {
	switch name {
	case "rr-injection", "rr":
		return VCRoundRobin, nil
	case "dest-subtree", "subtree":
		return VCDestSubtree, nil
	case "down-digit", "voq":
		return VCDownDigit, nil
	}
	return 0, fmt.Errorf("flit: unknown VC scheme %q (want rr-injection, dest-subtree or down-digit)", name)
}

// hopStatus classifies one output-selection outcome.
type hopStatus uint8

const (
	// hopOK: the choice carries the link to cross next.
	hopOK hopStatus = iota
	// hopBlocked: every admissible next queue is full right now; the
	// caller's retry machinery fires when a slot frees.
	hopBlocked
	// hopDead: no admissible next link will ever transmit (a failed
	// forced downward link, or every admissible up-port failed). The
	// packet is permanently unroutable from here and must be dropped,
	// not retried.
	hopDead
)

// hopChoice is one per-hop output selection.
type hopChoice struct {
	link   int32  // link to cross next (hopOK only)
	mask   uint64 // narrowed path mask, committed to the packet (adaptive-K up-hops)
	dead   int32  // exemplar dead link for the diagnosis (hopDead only), or -1
	status hopStatus
	up     bool // the choice was among up-ports (rotation advances on commit)
}

// hopSelector is the per-hop output-selection interface. next inspects
// the network state without mutating it, so the engine may probe
// speculatively (e.g. from tryStart's VC arbitration loop); commit is
// called exactly once per committed send and applies the selector's
// side effects — advancing the up-port rotation and narrowing the
// packet's path mask. Implementations are stateless values; all state
// lives in the engine.
type hopSelector interface {
	next(e *engine, x topology.NodeID, p *packet, hopIdx int, vc int8) hopChoice
	commit(e *engine, x topology.NodeID, p *packet, c hopChoice)
}

// obliviousSel walks the packet's precomputed source route: the output
// port at hop i is route[i], and the only gate is downstream buffer
// space. It never reports hopDead — a failed link on an oblivious
// route stalls the flow (head-of-line backpressure then spreads),
// which is exactly the degraded behavior the failure experiments
// measure; RepairRoutes is the oblivious answer to faults.
type obliviousSel struct{}

func (obliviousSel) next(e *engine, x topology.NodeID, p *packet, hopIdx int, vc int8) hopChoice {
	l := e.outLinks[x][p.route[hopIdx]]
	if e.occ[e.qid(l, vc)] >= e.cfg.BufferPackets {
		return hopChoice{status: hopBlocked}
	}
	return hopChoice{link: l, status: hopOK}
}

func (obliviousSel) commit(*engine, topology.NodeID, *packet, hopChoice) {}

// forcedDown picks the unique downward hop once dst lies in x's
// subtree: the child digit at x's level addresses the subtree copy
// holding dst. Shared by both adaptive selectors — below the nearest
// common ancestor there is exactly one minimal continuation, so a
// failed link here is a permanent loss (hopDead), not a detour.
func (e *engine) forcedDown(x topology.NodeID, dst int, vc int8) hopChoice {
	l := int(e.nodeLevel[x])
	digit := dst / e.mLow[l-1] % e.mArr[l]
	port := digit
	if l < e.h {
		port += e.w[l+1]
	}
	next := e.outLinks[x][port]
	if e.failed[next] {
		return hopChoice{status: hopDead, dead: next}
	}
	if e.occ[e.qid(next, vc)] >= e.cfg.BufferPackets {
		return hopChoice{status: hopBlocked}
	}
	return hopChoice{link: next, status: hopOK}
}

// adaptiveSel is full minimal-adaptive routing: any upward output
// leads to a nearest common ancestor, so pick the least occupied
// non-failed one (ties resolve in rotation order from the per-node
// pointer, advanced only on commit).
type adaptiveSel struct{}

func (adaptiveSel) next(e *engine, x topology.NodeID, p *packet, _ int, vc int8) hopChoice {
	dst := int(p.dst)
	l := int(e.nodeLevel[x])
	if l > 0 && dst/e.mLow[l] == int(e.subtreeIdx[x]) {
		return e.forcedDown(x, dst, vc)
	}
	ups := e.w[l+1]
	start := int(e.adaptRR[x])
	best, bestOcc := int32(-1), e.cfg.BufferPackets
	dead, live := int32(-1), false
	for i := 0; i < ups; i++ {
		link := e.outLinks[x][(start+i)%ups]
		if e.failed[link] {
			if dead < 0 {
				dead = link
			}
			continue // adaptivity routes around failed upward links
		}
		live = true
		if o := e.occ[e.qid(link, vc)]; o < bestOcc {
			best, bestOcc = link, o
		}
	}
	if !live {
		return hopChoice{status: hopDead, dead: dead}
	}
	if best < 0 {
		return hopChoice{status: hopBlocked}
	}
	return hopChoice{link: best, status: hopOK, up: true}
}

func (adaptiveSel) commit(e *engine, x topology.NodeID, _ *packet, c hopChoice) {
	if !c.up {
		return
	}
	l := int(e.nodeLevel[x])
	e.adaptRR[x] = int32((int(e.adaptRR[x]) + 1) % e.w[l+1])
}

// adaptiveKSel restricts the adaptive comparator to the packet's
// surviving compiled paths. The packet's mask has bit i set while path
// pidx[i] is still reachable; an upward hop at level l scatters the
// set bits into per-port masks by each path's up-digit at l+1, ranks
// only ports with a non-empty mask, and (on commit) narrows the mask
// to the chosen port's paths. The scatter reuses an engine-owned
// scratch array, so steady state allocates nothing.
type adaptiveKSel struct{}

func (adaptiveKSel) next(e *engine, x topology.NodeID, p *packet, _ int, vc int8) hopChoice {
	dst := int(p.dst)
	l := int(e.nodeLevel[x])
	if l > 0 && dst/e.mLow[l] == int(e.subtreeIdx[x]) {
		return e.forcedDown(x, dst, vc)
	}
	ups := e.w[l+1]
	// Path index digits are mixed-radix over the up-choices with u_1
	// most significant: the digit at level l+1 of a pair with NCA
	// level k is idx / (WProd(k)/WProd(l+1)) % w_{l+1}.
	div := e.wprod[p.nca] / e.wprod[l+1]
	pm := e.portMask[:ups]
	for i := range pm {
		pm[i] = 0
	}
	for m := p.mask; m != 0; m &= m - 1 {
		i := bits.TrailingZeros64(m)
		pm[int(p.pidx[i])/div%ups] |= 1 << uint(i)
	}
	start := int(e.adaptRR[x])
	best, bestOcc := int32(-1), e.cfg.BufferPackets
	var bestMask uint64
	dead, live := int32(-1), false
	for i := 0; i < ups; i++ {
		pt := (start + i) % ups
		if pm[pt] == 0 {
			continue // no compiled path crosses this parent
		}
		link := e.outLinks[x][pt]
		if e.failed[link] {
			if dead < 0 {
				dead = link
			}
			continue
		}
		live = true
		if o := e.occ[e.qid(link, vc)]; o < bestOcc {
			best, bestOcc, bestMask = link, o, pm[pt]
		}
	}
	if !live {
		return hopChoice{status: hopDead, dead: dead}
	}
	if best < 0 {
		return hopChoice{status: hopBlocked}
	}
	return hopChoice{link: best, mask: bestMask, status: hopOK, up: true}
}

func (adaptiveKSel) commit(e *engine, x topology.NodeID, p *packet, c hopChoice) {
	if !c.up {
		return
	}
	l := int(e.nodeLevel[x])
	e.adaptRR[x] = int32((int(e.adaptRR[x]) + 1) % e.w[l+1])
	p.mask = c.mask
}

// fullMask covers n path indices (n <= 64, enforced by withDefaults).
func fullMask(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(n) - 1
}
