package flit

import (
	"fmt"
	"math/rand"

	"xgftsim/internal/stats"
	"xgftsim/internal/topology"
)

// The engine is a discrete-event simulator of output-queued virtual
// cut-through switches. Every directed link carries V virtual channels
// (VCs); each (link, VC) pair has a FIFO packet queue at the link's
// sending side, and a packet always sits in the queue of the next link
// it will traverse, on the VC it was assigned at injection.
// Transmitting a packet over link L requires (a) L idle, (b) the
// packet's head to have arrived (cut-through), and (c) a free slot in
// the (next link, same VC) queue — the paper's "a packet is blocked if
// the destination port does not have available buffer space", enforced
// with credit-style slot reservations. Slots are reserved when a
// transmission toward the queue starts and released when the packet's
// tail later leaves the queue, so backpressure propagates exactly as
// credits do. The physical link arbitrates round-robin across VCs, so
// a blocked VC does not idle the wire if another VC can proceed.
//
// Scheduling uses a timing wheel: every network event lands at most
// max(packet length, router delay + 1) cycles in the future, so a
// fixed ring of buckets gives O(1) push and pop with FIFO-per-cycle
// determinism. Only Poisson injection events, whose horizon is
// unbounded, live in a small binary heap. Packets are arena-allocated
// and referenced by index, keeping events pointer-free.

type message struct {
	genTime     int64
	packetsLeft int
	measured    bool
	dropped     bool // a packet was discarded as permanently unroutable
}

type packet struct {
	msg   int32   // message arena index
	route []int   // output port at the i-th node on the path; nil => adaptive
	pidx  []int32 // adaptive-K: the pair's compiled path indices (shared, immutable)
	mask  uint64  // adaptive-K: bit i set while path pidx[i] is still reachable
	hop   int     // index into route of the link queue the packet is in
	dst   int32   // destination processor
	nca   int8    // adaptive-K: the pair's nearest-common-ancestor level
	vc    int8    // virtual channel, fixed for the packet's lifetime
	flits int
}

type evKind uint8

const (
	evArrive  evKind = iota // packet joins queue a (a = link*V + vc)
	evDeliver               // packet tail ejected at destination
	evFree                  // queue a's transmission drained: link idle, slot back
)

// wheelEvent is a pointer-free scheduled action.
type wheelEvent struct {
	kind evKind
	a    int32 // queue id (link*V + vc)
	pkt  int32 // packet arena index, or -1
}

// injEvent schedules the next Poisson message of one node.
type injEvent struct {
	time int64
	node int32
}

// injHeap is a typed binary min-heap ordered by (time, node). The
// container/heap version boxed every event through `any` in Push/Pop,
// allocating on each of the millions of steady-state injections; the
// explicit sift-up/down below keeps the slice's backing array and
// allocates nothing once it has reached its high-water capacity.
type injHeap []injEvent

func (h injHeap) less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].node < h[j].node
}

func (h *injHeap) push(e injEvent) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *injHeap) pop() injEvent {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && s.less(r, c) {
			c = r
		}
		if !s.less(c, i) {
			break
		}
		s[i], s[c] = s[c], s[i]
		i = c
	}
	return top
}

type engine struct {
	cfg  Config
	topo *topology.Topology
	rng  *rand.Rand
	vcs  int

	// Per-hop output selection (see selector.go): sel names the
	// discipline, hop implements it, vcScheme maps destinations to
	// virtual channels at injection.
	sel      OutputSelector
	hop      hopSelector
	vcScheme VCScheme

	// Timing wheel. All network events land within wheelSpan cycles,
	// so bucket (t % wheelSpan) is unambiguous.
	wheel     [][]wheelEvent
	wheelSpan int64
	pending   int // events currently in the wheel

	inj injHeap

	// Packet and message arenas. Messages are referenced by index so a
	// steady-state injection reuses a freed slot instead of allocating.
	packets []packet
	freePkt []int32
	msgs    []message
	freeMsg []int32

	// Per queue (link*V + vc): output queue state at the sending side.
	outQ [][]int32
	occ  []int // reserved slots (inbound + queued + draining tails)

	// Per physical link.
	linkFree []int64
	linkRR   []int32   // VC arbitration pointer
	rrIdx    []int     // feeder arbitration pointer
	feeders  [][]int32 // upstream links whose packets can enter this link's queues
	failed   []bool    // down for the whole run

	// Link endpoint tables (LinkEndpoints is arithmetic-heavy).
	linkSrc []topology.NodeID
	linkDst []topology.NodeID

	// Per node.
	outLinks    [][]int32 // outgoing directed link per port number
	injQueue    [][]int32
	nextArrival []float64 // fractional Poisson clocks
	rrVC        []int8    // per-node VC assignment pointer

	// Adaptive-routing tables (see the selectors in selector.go).
	nodeLevel  []int8
	subtreeIdx []int32 // height-l subtree copy a switch roots
	adaptRR    []int32 // per-node up-port rotation for tie-breaking
	mLow       []int   // mLow[l] = Π_{i=1..l} m_i
	mArr       []int   // mArr[l] = m_l
	w          []int   // w[l] = w_l (up-port count of a level l-1 node)
	wprod      []int   // wprod[l] = Π_{i=1..l} w_i
	h          int     // tree height
	portMask   []uint64 // adaptive-K per-up-port path-mask scratch
	pathIdx    map[int64]pathEntry // adaptive-K engine-local path-index cache
	vcSubDiv   int     // processors per top-level subtree (VCDestSubtree)

	// Routing caches. The round-robin pointers live in a dense array
	// keyed by pair id for topologies up to rrDenseLimit pairs (a
	// per-packet array load instead of a map probe); the map is the
	// fallback above the threshold.
	routes      map[int64][][]int // SD pair -> port routes per path
	rrPathDense []int32           // SD pair -> round-robin pointer, or
	rrPath      map[int64]int     // ... the sparse fallback

	// Workload parameters.
	numProc   int
	msgRate   float64 // messages per cycle per node
	burstMean float64 // mean geometric burst length (1 = plain Poisson)
	endTime   int64

	// Event-loop state (split across start/loop/result so tests can
	// pin the steady-state loop's allocation behavior mid-run).
	now       int64
	evScratch []wheelEvent

	// Statistics.
	warmEnd        int64
	flitsEjected   int64
	ejectedPer     []int64 // measured ejected flits per destination
	delay          stats.Accumulator
	batches        []stats.Accumulator // batch means over the window
	batchLen       int64
	hist           *stats.Histogram
	msgsGen        int64
	msgsDone       int64
	msgsUnroutable int64
	pktsInFlight   int64
	vcStalls       int64   // VC-blocked transmission skips in tryStart
	injHeapHW      int     // injection-heap high-water depth
	linkStarts     []int64 // transmissions started per physical link
	unroutableDiag string  // first permanently-unroutable drop, for Result

	// Watchdog state (see run).
	wedged    bool
	wedgedAt  int64
	wedgeDiag string
}

func newEngine(cfg Config) *engine {
	t := cfg.Routing.Topology()
	e := &engine{
		cfg:     cfg,
		topo:    t,
		rng:     stats.Stream(cfg.Seed, 0),
		vcs:     cfg.VirtualChannels,
		numProc: t.NumProcessors(),
		routes:  make(map[int64][][]int),
	}
	if nn := e.numProc * e.numProc; nn <= rrDenseLimit {
		e.rrPathDense = make([]int32, nn)
	} else {
		e.rrPath = make(map[int64]int)
	}
	span := int64(cfg.FlitsPerPacket)
	if alt := cfg.RouterDelay + 1; alt > span {
		span = alt
	}
	e.wheelSpan = span + 1
	e.wheel = make([][]wheelEvent, e.wheelSpan)
	nl := t.NumLinks()
	nq := nl * e.vcs
	e.outQ = make([][]int32, nq)
	e.occ = make([]int, nq)
	e.linkFree = make([]int64, nl)
	e.linkRR = make([]int32, nl)
	e.rrIdx = make([]int, nl)
	e.feeders = make([][]int32, nl)
	e.linkSrc = make([]topology.NodeID, nl)
	e.linkDst = make([]topology.NodeID, nl)
	for l := 0; l < nl; l++ {
		e.linkSrc[l], e.linkDst[l] = t.LinkEndpoints(topology.LinkID(l))
	}
	nn := t.NumNodes()
	e.outLinks = make([][]int32, nn)
	inbound := make([][]int32, nn) // inbound transit links per node
	for n := topology.NodeID(0); int(n) < nn; n++ {
		level, _ := t.LevelIndex(n)
		up := t.NumParents(n)
		down := t.NumChildren(n)
		out := make([]int32, up+down)
		for p := 0; p < up; p++ {
			out[p] = int32(t.UpLink(n, p))
			inbound[n] = append(inbound[n], int32(t.DownLink(n, p)))
		}
		for c := 0; c < down; c++ {
			child := t.Child(n, c)
			childUpPort := t.LabelOf(n).Digit(level)
			out[t.DownPortTo(n, c)] = int32(t.DownLink(child, childUpPort))
			inbound[n] = append(inbound[n], int32(t.UpLink(child, childUpPort)))
		}
		e.outLinks[n] = out
	}
	// A link's queues are fed by the transit links arriving at its
	// source node; packets never transit through processing nodes
	// (their queues are fed by injection alone).
	for l := 0; l < nl; l++ {
		if src := e.linkSrc[l]; int(src) >= e.numProc { // switch-sourced
			e.feeders[l] = inbound[src]
		}
	}
	e.nodeLevel = make([]int8, nn)
	e.subtreeIdx = make([]int32, nn)
	e.adaptRR = make([]int32, nn)
	e.h = t.H()
	e.mLow = make([]int, e.h+1)
	e.mArr = make([]int, e.h+1)
	e.w = make([]int, e.h+1)
	e.wprod = make([]int, e.h+1)
	e.mLow[0] = 1
	e.wprod[0] = 1
	maxW := 0
	for l := 1; l <= e.h; l++ {
		e.mArr[l] = t.M(l)
		e.mLow[l] = e.mLow[l-1] * e.mArr[l]
		e.w[l] = t.W(l)
		e.wprod[l] = t.WProd(l)
		if e.w[l] > maxW {
			maxW = e.w[l]
		}
	}
	e.vcSubDiv = e.mLow[e.h-1]
	e.sel = cfg.Selector
	e.vcScheme = cfg.VCScheme
	e.burstMean = cfg.BurstMean
	switch cfg.Selector {
	case SelectAdaptive:
		e.hop = adaptiveSel{}
	case SelectAdaptiveK:
		e.hop = adaptiveKSel{}
		e.portMask = make([]uint64, maxW)
		if cfg.Routes == nil {
			e.pathIdx = make(map[int64]pathEntry)
		}
	default:
		e.hop = obliviousSel{}
	}
	e.linkStarts = make([]int64, nl)
	for n := topology.NodeID(0); int(n) < nn; n++ {
		l, idx := t.LevelIndex(n)
		e.nodeLevel[n] = int8(l)
		e.subtreeIdx[n] = int32(idx / t.WProd(l))
	}
	e.injQueue = make([][]int32, e.numProc)
	e.nextArrival = make([]float64, e.numProc)
	e.rrVC = make([]int8, e.numProc)
	flitsPerMsg := float64(cfg.FlitsPerPacket * cfg.PacketsPerMessage)
	e.msgRate = cfg.OfferedLoad * float64(t.W(1)) / flitsPerMsg
	e.warmEnd = cfg.WarmupCycles
	e.endTime = cfg.WarmupCycles + cfg.MeasureCycles
	if cfg.DelayHistogram {
		e.hist = stats.NewHistogram(4096, 4)
	}
	// Batch means: 10 equal sub-windows of the measurement phase.
	const numBatches = 10
	e.batches = make([]stats.Accumulator, numBatches)
	e.batchLen = (cfg.MeasureCycles + numBatches - 1) / numBatches
	e.ejectedPer = make([]int64, e.numProc)
	// cfg.faults is the validated merge of Faults + FailedLinks
	// (withDefaults rejects out-of-range links with an error, the
	// condition this used to panic on).
	e.failed = make([]bool, nl)
	if cfg.faults != nil {
		for _, l := range cfg.faults.DownLinks() {
			e.failed[l] = true
		}
	}
	return e
}

// rrDenseLimit bounds the dense round-robin table: up to 2^20 pairs
// (4 MiB of pointers) buys O(1) per-packet path rotation; larger
// fabrics fall back to the sparse map.
const rrDenseLimit = 1 << 20

// qid maps (link, vc) to its queue index.
func (e *engine) qid(l int32, vc int8) int32 { return l*int32(e.vcs) + int32(vc) }

// qlink recovers the physical link of a queue id.
func (e *engine) qlink(q int32) int32 { return q / int32(e.vcs) }

// schedule places a network event delta cycles ahead (0 < delta <
// wheelSpan).
func (e *engine) schedule(now, at int64, kind evKind, q int32, pkt int32) {
	if at <= now || at-now >= e.wheelSpan {
		panic("flit: event outside wheel horizon") // invariant guard
	}
	b := at % e.wheelSpan
	e.wheel[b] = append(e.wheel[b], wheelEvent{kind: kind, a: q, pkt: pkt})
	e.pending++
}

// allocPacket takes a slot from the arena.
func (e *engine) allocPacket(p packet) int32 {
	if n := len(e.freePkt); n > 0 {
		idx := e.freePkt[n-1]
		e.freePkt = e.freePkt[:n-1]
		e.packets[idx] = p
		return idx
	}
	e.packets = append(e.packets, p)
	return int32(len(e.packets) - 1)
}

// allocMessage takes a slot from the message arena; the slot returns
// to the free list when the last packet of the message is delivered.
func (e *engine) allocMessage(m message) int32 {
	if n := len(e.freeMsg); n > 0 {
		idx := e.freeMsg[n-1]
		e.freeMsg = e.freeMsg[:n-1]
		e.msgs[idx] = m
		return idx
	}
	e.msgs = append(e.msgs, m)
	return int32(len(e.msgs) - 1)
}

// routesFor lazily builds and caches the port routes of an SD pair,
// consulting the shared sweep-level table when one is configured. The
// route source is the repaired routing when RepairRoutes derived one,
// so the expanded routes avoid every failed link; disconnected pairs
// get an empty route set. pair is the caller's src·N + dst key (hoisted
// so injection computes it once for the route lookup and the path
// rotation).
func (e *engine) routesFor(pair int64, src, dst int) [][]int {
	if e.cfg.Routes != nil {
		return e.cfg.Routes.RoutesFor(src, dst)
	}
	if r, ok := e.routes[pair]; ok {
		return r
	}
	var r [][]int
	if e.cfg.repaired != nil {
		r = e.cfg.repaired.PortRoutes(src, dst)
	} else {
		r = e.cfg.Routing.PortRoutes(src, dst)
	}
	e.routes[pair] = r
	return r
}

// pathsFor returns the pair's compiled path indices and NCA level for
// the adaptive-K selector, consulting the shared sweep-level table when
// one is configured. The healthy path set is always used — adaptive-K
// steers around failures at run time, not by reselection. The returned
// slice is cached and immutable; packets alias it without copying.
func (e *engine) pathsFor(pair int64, src, dst int) ([]int32, int8) {
	if e.cfg.Routes != nil {
		idxs, nca := e.cfg.Routes.PathIndicesFor(src, dst)
		return idxs, int8(nca)
	}
	if ent, ok := e.pathIdx[pair]; ok {
		return ent.idxs, ent.nca
	}
	ids := e.cfg.Routing.Paths(src, dst)
	idxs := make([]int32, len(ids))
	for i, id := range ids {
		idxs[i] = int32(id)
	}
	ent := pathEntry{idxs: idxs, nca: int8(e.topo.NCALevel(src, dst))}
	e.pathIdx[pair] = ent
	return ent.idxs, ent.nca
}

// pickRoute applies the path policy to a non-empty route set.
func (e *engine) pickRoute(routes [][]int, pair int64) []int {
	if len(routes) == 1 {
		return routes[0]
	}
	switch e.cfg.PathPolicy {
	case RandomPath:
		return routes[e.rng.Intn(len(routes))]
	default:
		if e.rrPathDense != nil {
			i := int(e.rrPathDense[pair])
			e.rrPathDense[pair] = int32((i + 1) % len(routes))
			return routes[i]
		}
		i := e.rrPath[pair]
		e.rrPath[pair] = (i + 1) % len(routes)
		return routes[i]
	}
}

// scheduleArrival advances node's Poisson clock and queues the next
// injection event, unless it falls beyond the simulation end. Under
// bursty arrivals (BurstMean > 1) the epochs are spaced BurstMean
// times further apart; each epoch then emits a geometric burst of
// messages with the same mean, so the offered load is preserved.
func (e *engine) scheduleArrival(node int, now int64) {
	e.nextArrival[node] += e.rng.ExpFloat64() * e.burstMean / e.msgRate
	t := int64(e.nextArrival[node]) + 1
	if t < now {
		t = now // high-rate clocks may floor into the past
	}
	if t >= e.endTime {
		return
	}
	e.inj.push(injEvent{time: t, node: int32(node)})
	if n := len(e.inj); n > e.injHeapHW {
		e.injHeapHW = n
	}
}

// inject handles one arrival epoch at node: a single message under
// plain Poisson arrivals, or a geometric burst of them under bursty
// arrivals (the burst-length draw keeps the RNG untouched when
// BurstMean is 1, so default runs are bit-identical to the pre-burst
// engine).
func (e *engine) inject(node int, now int64) {
	n := 1
	if e.burstMean > 1 {
		// Geometric with mean BurstMean: continue with p = 1 - 1/mean.
		p := 1 - 1/e.burstMean
		for e.rng.Float64() < p {
			n++
		}
	}
	for ; n > 0; n-- {
		e.injectOne(node, now)
	}
}

// vcFor assigns the message's virtual channel per the configured
// scheme. With one VC every scheme returns 0 (and the round-robin
// pointer arithmetic is a no-op).
func (e *engine) vcFor(node, dst int) int8 {
	switch e.vcScheme {
	case VCDestSubtree:
		return int8(dst / e.vcSubDiv % e.vcs)
	case VCDownDigit:
		return int8(dst % e.mArr[1] % e.vcs)
	}
	vc := e.rrVC[node]
	e.rrVC[node] = int8((int(vc) + 1) % e.vcs)
	return vc
}

// injectOne creates one message at node and enqueues its packets,
// moving as many as fit into the first link's queue.
func (e *engine) injectOne(node int, now int64) {
	dst := e.cfg.Pattern.Dest(node, e.rng)
	if dst == node {
		return // pattern chose a self-destination; nothing to send
	}
	var route []int
	var pidx []int32
	var mask uint64
	var nca int8
	switch e.sel {
	case SelectOblivious:
		pair := int64(node)*int64(e.numProc) + int64(dst)
		routes := e.routesFor(pair, node, dst)
		if len(routes) == 0 {
			// Repaired routing found the pair disconnected: the message
			// is undeliverable by any minimal route, so drop it at the
			// source instead of wedging the injection queue.
			e.msgsUnroutable++
			return
		}
		route = e.pickRoute(routes, pair)
	case SelectAdaptiveK:
		pair := int64(node)*int64(e.numProc) + int64(dst)
		pidx, nca = e.pathsFor(pair, node, dst)
		if len(pidx) == 0 {
			e.msgsUnroutable++
			return
		}
		mask = fullMask(len(pidx))
	}
	vc := e.vcFor(node, dst)
	measured := now >= e.warmEnd && now < e.endTime
	msg := e.allocMessage(message{
		genTime:     now,
		packetsLeft: e.cfg.PacketsPerMessage,
		measured:    measured,
	})
	if measured {
		e.msgsGen++
	}
	for i := 0; i < e.cfg.PacketsPerMessage; i++ {
		idx := e.allocPacket(packet{
			msg:   msg,
			route: route,
			pidx:  pidx,
			mask:  mask,
			nca:   nca,
			dst:   int32(dst),
			vc:    vc,
			flits: e.cfg.FlitsPerPacket,
		})
		e.injQueue[node] = append(e.injQueue[node], idx)
		e.pktsInFlight++
	}
	e.drainInjection(node, now)
}

// drainInjection moves injection-queue packets into their first link
// queue while slots are available. Every movement goes through the
// configured hop selector; a hopDead packet (its forced first link is
// down) is discarded so it cannot wedge the queue behind it.
func (e *engine) drainInjection(node int, now int64) {
	for len(e.injQueue[node]) > 0 {
		idx := e.injQueue[node][0]
		p := &e.packets[idx]
		c := e.hop.next(e, topology.NodeID(node), p, 0, p.vc)
		if c.status == hopBlocked {
			return
		}
		q := e.injQueue[node]
		copy(q, q[1:])
		e.injQueue[node] = q[:len(q)-1]
		if c.status == hopDead {
			e.discard(idx, c.dead)
			continue
		}
		e.hop.commit(e, topology.NodeID(node), p, c)
		qi := e.qid(c.link, p.vc)
		e.occ[qi]++
		e.outQ[qi] = append(e.outQ[qi], idx)
		e.tryStart(c.link, now)
	}
}

// discard releases a permanently-unroutable packet: its message is
// accounted once in MsgsUnroutable, and the first drop of the run
// records a diagnosis naming the dead link for Result.WedgeDiagnosis.
func (e *engine) discard(idx int32, dead int32) {
	p := &e.packets[idx]
	e.pktsInFlight--
	m := &e.msgs[p.msg]
	if !m.dropped {
		m.dropped = true
		e.msgsUnroutable++
		if e.unroutableDiag == "" && dead >= 0 {
			e.unroutableDiag = fmt.Sprintf("messages for node %d dropped as unroutable: %s",
				p.dst, e.failedLinkWhy(dead, "is their forced next link"))
		}
	}
	m.packetsLeft--
	if m.packetsLeft == 0 {
		e.freeMsg = append(e.freeMsg, p.msg)
	}
	p.msg = -1
	p.route = nil
	p.pidx = nil
	e.freePkt = append(e.freePkt, idx)
}

// tryStart attempts to begin a transmission on link l, arbitrating
// round-robin across its VC queues. Safe to call speculatively: all
// gates re-checked.
func (e *engine) tryStart(l int32, now int64) {
	if e.failed[l] || e.linkFree[l] > now {
		return
	}
	start := int(e.linkRR[l])
	for i := 0; i < e.vcs; i++ {
		vc := int8((start + i) % e.vcs)
		q := e.qid(l, vc)
		if len(e.outQ[q]) == 0 {
			continue
		}
		idx := e.outQ[q][0]
		p := &e.packets[idx]
		var last bool
		if p.route != nil {
			last = p.hop == len(p.route)-1
		} else {
			last = int(e.linkDst[l]) < e.numProc
		}
		var next int32
		if !last {
			c := e.hop.next(e, e.linkDst[l], p, p.hop+1, vc)
			if c.status == hopBlocked {
				e.vcStalls++
				continue // this VC blocked; let another VC use the wire
			}
			if c.status == hopDead {
				// Permanently unroutable from here (a failed forced
				// downward link, or every admissible up-port dead):
				// discard the packet so the queue keeps draining
				// instead of wedging the fabric behind it. The slot it
				// held drains through the ordinary evFree path, which
				// also re-arms this link and unblocks upstream feeders.
				qq := e.outQ[q]
				copy(qq, qq[1:])
				e.outQ[q] = qq[:len(qq)-1]
				e.schedule(now, now+1, evFree, q, -1)
				e.discard(idx, c.dead)
				return
			}
			next = c.link
			e.hop.commit(e, e.linkDst[l], p, c)
			e.occ[e.qid(next, vc)]++
		}
		// Commit: pop, busy the link, free our slot when the tail
		// leaves.
		f := int64(p.flits)
		qq := e.outQ[q]
		copy(qq, qq[1:])
		e.outQ[q] = qq[:len(qq)-1]
		e.linkFree[l] = now + f
		e.linkRR[l] = int32((int(vc) + 1) % e.vcs)
		e.linkStarts[l]++
		e.schedule(now, now+f, evFree, q, -1)
		if last {
			e.schedule(now, now+f, evDeliver, q, idx)
			return
		}
		p.hop++
		e.schedule(now, now+1+e.cfg.RouterDelay, evArrive, e.qid(next, vc), idx)
		return
	}
}

// free handles the tail of a transmission leaving queue q: the link
// idles and the queue slot returns, unblocking the next local packet,
// upstream senders (round-robin) and the injection queue.
func (e *engine) free(q int32, now int64) {
	e.occ[q]--
	if e.occ[q] < 0 {
		panic("flit: occupancy underflow") // invariant guard
	}
	l := e.qlink(q)
	e.tryStart(l, now)
	src := int(e.linkSrc[l])
	if src < e.numProc {
		e.drainInjection(src, now)
		return
	}
	fs := e.feeders[l]
	start := e.rrIdx[l]
	for i := 0; i < len(fs); i++ {
		li := fs[(start+i)%len(fs)]
		e.tryStart(li, now)
		if e.occ[q] >= e.cfg.BufferPackets {
			e.rrIdx[l] = (start + i + 1) % len(fs)
			return
		}
	}
	e.rrIdx[l] = start
}

// deliver finalizes a packet at its destination.
func (e *engine) deliver(idx int32, now int64) {
	p := &e.packets[idx]
	e.pktsInFlight--
	if now >= e.warmEnd && now < e.endTime {
		e.flitsEjected += int64(p.flits)
		e.ejectedPer[p.dst] += int64(p.flits)
	}
	m := &e.msgs[p.msg]
	m.packetsLeft--
	if m.packetsLeft == 0 {
		if m.measured && !m.dropped && now < e.endTime {
			e.msgsDone++
			d := float64(now - m.genTime)
			e.delay.Add(d)
			if b := (now - e.warmEnd) / e.batchLen; b >= 0 && int(b) < len(e.batches) {
				e.batches[b].Add(d)
			}
			if e.hist != nil {
				e.hist.Observe(d)
			}
		}
		e.freeMsg = append(e.freeMsg, p.msg)
	}
	p.msg = -1
	p.route = nil
	p.pidx = nil
	e.freePkt = append(e.freePkt, idx)
}

// start primes the simulation: every node's first Poisson injection.
func (e *engine) start() {
	for n := 0; n < e.numProc; n++ {
		e.scheduleArrival(n, 0)
	}
}

// runLimit is the cycle cap of a full run: the configured end, or ten
// windows when draining the backlog.
func (e *engine) runLimit() int64 {
	limit := e.endTime
	if e.cfg.Drain {
		limit = e.endTime * 10
		if limit < e.endTime+1000 {
			limit = e.endTime + 1000
		}
	}
	return limit
}

// loop advances the simulation from e.now up to (but excluding) limit,
// or until no event can ever fire again. Resumable: a test can warm the
// engine up, then measure additional cycles in isolation.
func (e *engine) loop(limit int64) {
	for ; e.now < limit; e.now++ {
		now := e.now
		if e.pending == 0 && len(e.inj) == 0 {
			// Nothing scheduled and no injections left: no event can
			// ever fire again (events exist iff transmissions are in
			// flight). With packets still in flight that is a
			// permanently wedged fabric — the no-progress watchdog ends
			// the run with a diagnostic instead of spinning to the
			// cycle cap. Leftover backlog after the window without
			// Drain is ordinary post-saturation state, not a wedge.
			if e.pktsInFlight > 0 && (e.cfg.Drain || now < e.endTime) {
				e.wedged, e.wedgedAt = true, now
				e.wedgeDiag = e.stallDiagnosis()
			}
			return
		}
		// Injections first (they were scheduled far in advance, as the
		// former global ordering had them).
		for len(e.inj) > 0 && e.inj[0].time <= now {
			ev := e.inj.pop()
			e.inject(int(ev.node), now)
			e.scheduleArrival(int(ev.node), now)
		}
		// Then this cycle's network events, in scheduling order. No
		// handler schedules into the current cycle, so the bucket can
		// be detached wholesale.
		b := now % e.wheelSpan
		if len(e.wheel[b]) == 0 {
			if e.pending == 0 && len(e.inj) > 0 {
				// Idle network: jump to the next injection. (With the
				// heap also empty the next top-of-loop check ends the
				// run, wedged or done.)
				if t := e.inj[0].time; t > now+1 {
					e.now = t - 1
				}
			}
			continue
		}
		scratch := e.evScratch
		scratch, e.wheel[b] = e.wheel[b], scratch[:0]
		e.pending -= len(scratch)
		for _, ev := range scratch {
			switch ev.kind {
			case evArrive:
				q := ev.a
				if len(e.outQ[q]) >= e.cfg.BufferPackets {
					panic("flit: queue overflow") // invariant guard
				}
				e.outQ[q] = append(e.outQ[q], ev.pkt)
				if len(e.outQ[q]) == 1 {
					e.tryStart(e.qlink(q), now)
				}
			case evDeliver:
				e.deliver(ev.pkt, now)
			case evFree:
				e.free(ev.a, now)
			}
		}
		e.evScratch = scratch[:0]
	}
}

// run executes the simulation and gathers the result.
func (e *engine) run() Result {
	e.start()
	e.loop(e.runLimit())
	return e.result()
}

// result gathers the statistics of a finished run and folds the
// engine's metric tallies into the shared obs registry.
func (e *engine) result() Result {
	e.foldMetrics()
	capacity := float64(e.cfg.MeasureCycles) * float64(e.numProc) * float64(e.topo.W(1))
	res := Result{
		OfferedLoad:    e.cfg.OfferedLoad,
		Throughput:     float64(e.flitsEjected) / capacity,
		AvgDelay:       e.delay.Mean(),
		MsgsGenerated:  e.msgsGen,
		MsgsCompleted:  e.msgsDone,
		MsgsUnroutable: e.msgsUnroutable,
		FlitsEjected:   e.flitsEjected,
		BacklogPackets: e.pktsInFlight,
		VCStalls:       e.vcStalls,
		Cycles:         e.cfg.MeasureCycles,
		Wedged:         e.wedged,
		WedgedAt:       e.wedgedAt,
		WedgeDiagnosis: e.wedgeDiag,
	}
	if res.WedgeDiagnosis == "" {
		// Not wedged, but the adaptive selectors may have discarded
		// unroutable messages: surface the first drop's diagnosis.
		res.WedgeDiagnosis = e.unroutableDiag
	}
	if e.hist != nil {
		res.P95Delay = e.hist.Percentile(95)
	}
	// Batch-means CI: treat non-empty batch means as i.i.d. samples.
	var bm stats.Accumulator
	for i := range e.batches {
		if e.batches[i].N() > 0 {
			bm.Add(e.batches[i].Mean())
		}
	}
	if bm.N() >= 2 {
		res.DelayCI = bm.ConfidenceHalfWidth(0.95)
	}
	res.Saturated = res.Throughput < 0.95*e.cfg.OfferedLoad
	// Jain's fairness index over per-destination ejections.
	var sum, sumSq float64
	for _, x := range e.ejectedPer {
		v := float64(x)
		sum += v
		sumSq += v * v
	}
	if sumSq > 0 {
		res.Fairness = sum * sum / (float64(len(e.ejectedPer)) * sumSq)
	}
	return res
}

// stallDiagnosis names an exemplar permanently blocked packet and why
// it cannot move, for the watchdog's report.
func (e *engine) stallDiagnosis() string {
	for q, pkts := range e.outQ {
		if len(pkts) == 0 {
			continue
		}
		p := &e.packets[pkts[0]]
		l := e.qlink(int32(q))
		why := "downstream buffers never free"
		switch {
		case e.failed[l]:
			why = e.failedLinkWhy(l, "itself is failed")
		case p.route != nil && p.hop < len(p.route)-1:
			next := e.outLinks[e.linkDst[l]][p.route[p.hop+1]]
			if e.failed[next] {
				why = e.failedLinkWhy(next, "is its failed next link")
			}
		}
		return fmt.Sprintf("%d packets in flight with no schedulable event; e.g. a packet for node %d queued on link %d (vc %d): %s",
			e.pktsInFlight, p.dst, l, q%e.vcs, why)
	}
	for n, iq := range e.injQueue {
		if len(iq) > 0 {
			p := &e.packets[iq[0]]
			return fmt.Sprintf("%d packets in flight with no schedulable event; e.g. a packet for node %d stuck in node %d's injection queue",
				e.pktsInFlight, p.dst, n)
		}
	}
	return fmt.Sprintf("%d packets in flight with no schedulable event and no queued location (accounting violation)", e.pktsInFlight)
}

// failedLinkWhy explains a failed link for the wedge diagnosis. When
// the fault set covers an entire switch at either endpoint the whole
// node is gone — naming it beats reporting its dead cables one wedge
// at a time, and is what an operator acts on.
func (e *engine) failedLinkWhy(link int32, role string) string {
	l := topology.LinkID(link)
	if f := e.cfg.faults; f != nil {
		from, to := e.topo.LinkEndpoints(l)
		for _, n := range [2]topology.NodeID{from, to} {
			if f.SwitchDead(n) {
				return fmt.Sprintf("switch %d is failed (link %d %s)", n, l, role)
			}
		}
	}
	return fmt.Sprintf("link %d %s", l, role)
}

// Run executes one flit-level simulation.
func Run(cfg Config) (Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Result{}, err
	}
	return newEngine(cfg).run(), nil
}

// MustRun is Run but panics on configuration errors; for tests and
// examples.
func MustRun(cfg Config) Result {
	r, err := Run(cfg)
	if err != nil {
		panic(err)
	}
	return r
}
