package flit

import (
	"fmt"
	"math/rand"

	"xgftsim/internal/stats"
	"xgftsim/internal/topology"
)

// The engine is a discrete-event simulator of output-queued virtual
// cut-through switches. Every directed link carries V virtual channels
// (VCs); each (link, VC) pair has a FIFO packet queue at the link's
// sending side, and a packet always sits in the queue of the next link
// it will traverse, on the VC it was assigned at injection.
// Transmitting a packet over link L requires (a) L idle, (b) the
// packet's head to have arrived (cut-through), and (c) a free slot in
// the (next link, same VC) queue — the paper's "a packet is blocked if
// the destination port does not have available buffer space", enforced
// with credit-style slot reservations. Slots are reserved when a
// transmission toward the queue starts and released when the packet's
// tail later leaves the queue, so backpressure propagates exactly as
// credits do. The physical link arbitrates round-robin across VCs, so
// a blocked VC does not idle the wire if another VC can proceed.
//
// Scheduling uses a timing wheel: every network event lands at most
// max(packet length, router delay + 1) cycles in the future, so a
// fixed ring of buckets gives O(1) push and pop with FIFO-per-cycle
// determinism. Only Poisson injection events, whose horizon is
// unbounded, live in a small binary heap. Packets are arena-allocated
// and referenced by index, keeping events pointer-free.

type message struct {
	genTime     int64
	packetsLeft int
	measured    bool
}

type packet struct {
	msg   int32 // message arena index
	route []int // output port at the i-th node on the path; nil => adaptive
	hop   int   // index into route of the link queue the packet is in
	dst   int32 // destination processor
	vc    int8  // virtual channel, fixed for the packet's lifetime
	flits int
}

type evKind uint8

const (
	evArrive  evKind = iota // packet joins queue a (a = link*V + vc)
	evDeliver               // packet tail ejected at destination
	evFree                  // queue a's transmission drained: link idle, slot back
)

// wheelEvent is a pointer-free scheduled action.
type wheelEvent struct {
	kind evKind
	a    int32 // queue id (link*V + vc)
	pkt  int32 // packet arena index, or -1
}

// injEvent schedules the next Poisson message of one node.
type injEvent struct {
	time int64
	node int32
}

// injHeap is a typed binary min-heap ordered by (time, node). The
// container/heap version boxed every event through `any` in Push/Pop,
// allocating on each of the millions of steady-state injections; the
// explicit sift-up/down below keeps the slice's backing array and
// allocates nothing once it has reached its high-water capacity.
type injHeap []injEvent

func (h injHeap) less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].node < h[j].node
}

func (h *injHeap) push(e injEvent) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *injHeap) pop() injEvent {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && s.less(r, c) {
			c = r
		}
		if !s.less(c, i) {
			break
		}
		s[i], s[c] = s[c], s[i]
		i = c
	}
	return top
}

type engine struct {
	cfg  Config
	topo *topology.Topology
	rng  *rand.Rand
	vcs  int

	// Timing wheel. All network events land within wheelSpan cycles,
	// so bucket (t % wheelSpan) is unambiguous.
	wheel     [][]wheelEvent
	wheelSpan int64
	pending   int // events currently in the wheel

	inj injHeap

	// Packet and message arenas. Messages are referenced by index so a
	// steady-state injection reuses a freed slot instead of allocating.
	packets []packet
	freePkt []int32
	msgs    []message
	freeMsg []int32

	// Per queue (link*V + vc): output queue state at the sending side.
	outQ [][]int32
	occ  []int // reserved slots (inbound + queued + draining tails)

	// Per physical link.
	linkFree []int64
	linkRR   []int32   // VC arbitration pointer
	rrIdx    []int     // feeder arbitration pointer
	feeders  [][]int32 // upstream links whose packets can enter this link's queues
	failed   []bool    // down for the whole run

	// Link endpoint tables (LinkEndpoints is arithmetic-heavy).
	linkSrc []topology.NodeID
	linkDst []topology.NodeID

	// Per node.
	outLinks    [][]int32 // outgoing directed link per port number
	injQueue    [][]int32
	nextArrival []float64 // fractional Poisson clocks
	rrVC        []int8    // per-node VC assignment pointer

	// Adaptive-routing tables (see adaptiveNext).
	nodeLevel  []int8
	subtreeIdx []int32 // height-l subtree copy a switch roots
	adaptRR    []int32 // per-node up-port rotation for tie-breaking
	mLow       []int   // mLow[l] = Π_{i=1..l} m_i

	// Routing caches. The round-robin pointers live in a dense array
	// keyed by pair id for topologies up to rrDenseLimit pairs (a
	// per-packet array load instead of a map probe); the map is the
	// fallback above the threshold.
	routes      map[int64][][]int // SD pair -> port routes per path
	rrPathDense []int32           // SD pair -> round-robin pointer, or
	rrPath      map[int64]int     // ... the sparse fallback

	// Workload parameters.
	numProc int
	msgRate float64 // messages per cycle per node
	endTime int64

	// Event-loop state (split across start/loop/result so tests can
	// pin the steady-state loop's allocation behavior mid-run).
	now       int64
	evScratch []wheelEvent

	// Statistics.
	warmEnd        int64
	flitsEjected   int64
	ejectedPer     []int64 // measured ejected flits per destination
	delay          stats.Accumulator
	batches        []stats.Accumulator // batch means over the window
	batchLen       int64
	hist           *stats.Histogram
	msgsGen        int64
	msgsDone       int64
	msgsUnroutable int64
	pktsInFlight   int64
	vcStalls       int64 // VC-blocked transmission skips in tryStart
	injHeapHW      int   // injection-heap high-water depth

	// Watchdog state (see run).
	wedged    bool
	wedgedAt  int64
	wedgeDiag string
}

func newEngine(cfg Config) *engine {
	t := cfg.Routing.Topology()
	e := &engine{
		cfg:     cfg,
		topo:    t,
		rng:     stats.Stream(cfg.Seed, 0),
		vcs:     cfg.VirtualChannels,
		numProc: t.NumProcessors(),
		routes:  make(map[int64][][]int),
	}
	if nn := e.numProc * e.numProc; nn <= rrDenseLimit {
		e.rrPathDense = make([]int32, nn)
	} else {
		e.rrPath = make(map[int64]int)
	}
	span := int64(cfg.FlitsPerPacket)
	if alt := cfg.RouterDelay + 1; alt > span {
		span = alt
	}
	e.wheelSpan = span + 1
	e.wheel = make([][]wheelEvent, e.wheelSpan)
	nl := t.NumLinks()
	nq := nl * e.vcs
	e.outQ = make([][]int32, nq)
	e.occ = make([]int, nq)
	e.linkFree = make([]int64, nl)
	e.linkRR = make([]int32, nl)
	e.rrIdx = make([]int, nl)
	e.feeders = make([][]int32, nl)
	e.linkSrc = make([]topology.NodeID, nl)
	e.linkDst = make([]topology.NodeID, nl)
	for l := 0; l < nl; l++ {
		e.linkSrc[l], e.linkDst[l] = t.LinkEndpoints(topology.LinkID(l))
	}
	nn := t.NumNodes()
	e.outLinks = make([][]int32, nn)
	inbound := make([][]int32, nn) // inbound transit links per node
	for n := topology.NodeID(0); int(n) < nn; n++ {
		level, _ := t.LevelIndex(n)
		up := t.NumParents(n)
		down := t.NumChildren(n)
		out := make([]int32, up+down)
		for p := 0; p < up; p++ {
			out[p] = int32(t.UpLink(n, p))
			inbound[n] = append(inbound[n], int32(t.DownLink(n, p)))
		}
		for c := 0; c < down; c++ {
			child := t.Child(n, c)
			childUpPort := t.LabelOf(n).Digit(level)
			out[t.DownPortTo(n, c)] = int32(t.DownLink(child, childUpPort))
			inbound[n] = append(inbound[n], int32(t.UpLink(child, childUpPort)))
		}
		e.outLinks[n] = out
	}
	// A link's queues are fed by the transit links arriving at its
	// source node; packets never transit through processing nodes
	// (their queues are fed by injection alone).
	for l := 0; l < nl; l++ {
		if src := e.linkSrc[l]; int(src) >= e.numProc { // switch-sourced
			e.feeders[l] = inbound[src]
		}
	}
	e.nodeLevel = make([]int8, nn)
	e.subtreeIdx = make([]int32, nn)
	e.adaptRR = make([]int32, nn)
	e.mLow = make([]int, t.H()+1)
	e.mLow[0] = 1
	for l := 1; l <= t.H(); l++ {
		e.mLow[l] = e.mLow[l-1] * t.M(l)
	}
	for n := topology.NodeID(0); int(n) < nn; n++ {
		l, idx := t.LevelIndex(n)
		e.nodeLevel[n] = int8(l)
		e.subtreeIdx[n] = int32(idx / t.WProd(l))
	}
	e.injQueue = make([][]int32, e.numProc)
	e.nextArrival = make([]float64, e.numProc)
	e.rrVC = make([]int8, e.numProc)
	flitsPerMsg := float64(cfg.FlitsPerPacket * cfg.PacketsPerMessage)
	e.msgRate = cfg.OfferedLoad * float64(t.W(1)) / flitsPerMsg
	e.warmEnd = cfg.WarmupCycles
	e.endTime = cfg.WarmupCycles + cfg.MeasureCycles
	if cfg.DelayHistogram {
		e.hist = stats.NewHistogram(4096, 4)
	}
	// Batch means: 10 equal sub-windows of the measurement phase.
	const numBatches = 10
	e.batches = make([]stats.Accumulator, numBatches)
	e.batchLen = (cfg.MeasureCycles + numBatches - 1) / numBatches
	e.ejectedPer = make([]int64, e.numProc)
	// cfg.faults is the validated merge of Faults + FailedLinks
	// (withDefaults rejects out-of-range links with an error, the
	// condition this used to panic on).
	e.failed = make([]bool, nl)
	if cfg.faults != nil {
		for _, l := range cfg.faults.DownLinks() {
			e.failed[l] = true
		}
	}
	return e
}

// rrDenseLimit bounds the dense round-robin table: up to 2^20 pairs
// (4 MiB of pointers) buys O(1) per-packet path rotation; larger
// fabrics fall back to the sparse map.
const rrDenseLimit = 1 << 20

// qid maps (link, vc) to its queue index.
func (e *engine) qid(l int32, vc int8) int32 { return l*int32(e.vcs) + int32(vc) }

// qlink recovers the physical link of a queue id.
func (e *engine) qlink(q int32) int32 { return q / int32(e.vcs) }

// schedule places a network event delta cycles ahead (0 < delta <
// wheelSpan).
func (e *engine) schedule(now, at int64, kind evKind, q int32, pkt int32) {
	if at <= now || at-now >= e.wheelSpan {
		panic("flit: event outside wheel horizon") // invariant guard
	}
	b := at % e.wheelSpan
	e.wheel[b] = append(e.wheel[b], wheelEvent{kind: kind, a: q, pkt: pkt})
	e.pending++
}

// allocPacket takes a slot from the arena.
func (e *engine) allocPacket(p packet) int32 {
	if n := len(e.freePkt); n > 0 {
		idx := e.freePkt[n-1]
		e.freePkt = e.freePkt[:n-1]
		e.packets[idx] = p
		return idx
	}
	e.packets = append(e.packets, p)
	return int32(len(e.packets) - 1)
}

// allocMessage takes a slot from the message arena; the slot returns
// to the free list when the last packet of the message is delivered.
func (e *engine) allocMessage(m message) int32 {
	if n := len(e.freeMsg); n > 0 {
		idx := e.freeMsg[n-1]
		e.freeMsg = e.freeMsg[:n-1]
		e.msgs[idx] = m
		return idx
	}
	e.msgs = append(e.msgs, m)
	return int32(len(e.msgs) - 1)
}

// routesFor lazily builds and caches the port routes of an SD pair,
// consulting the shared sweep-level table when one is configured. The
// route source is the repaired routing when RepairRoutes derived one,
// so the expanded routes avoid every failed link; disconnected pairs
// get an empty route set. pair is the caller's src·N + dst key (hoisted
// so injection computes it once for the route lookup and the path
// rotation).
func (e *engine) routesFor(pair int64, src, dst int) [][]int {
	if e.cfg.Routes != nil {
		return e.cfg.Routes.RoutesFor(src, dst)
	}
	if r, ok := e.routes[pair]; ok {
		return r
	}
	var r [][]int
	if e.cfg.repaired != nil {
		r = e.cfg.repaired.PortRoutes(src, dst)
	} else {
		r = e.cfg.Routing.PortRoutes(src, dst)
	}
	e.routes[pair] = r
	return r
}

// pickRoute applies the path policy to a non-empty route set.
func (e *engine) pickRoute(routes [][]int, pair int64) []int {
	if len(routes) == 1 {
		return routes[0]
	}
	switch e.cfg.PathPolicy {
	case RandomPath:
		return routes[e.rng.Intn(len(routes))]
	default:
		if e.rrPathDense != nil {
			i := int(e.rrPathDense[pair])
			e.rrPathDense[pair] = int32((i + 1) % len(routes))
			return routes[i]
		}
		i := e.rrPath[pair]
		e.rrPath[pair] = (i + 1) % len(routes)
		return routes[i]
	}
}

// scheduleArrival advances node's Poisson clock and queues the next
// injection event, unless it falls beyond the simulation end.
func (e *engine) scheduleArrival(node int, now int64) {
	e.nextArrival[node] += e.rng.ExpFloat64() / e.msgRate
	t := int64(e.nextArrival[node]) + 1
	if t < now {
		t = now // high-rate clocks may floor into the past
	}
	if t >= e.endTime {
		return
	}
	e.inj.push(injEvent{time: t, node: int32(node)})
	if n := len(e.inj); n > e.injHeapHW {
		e.injHeapHW = n
	}
}

// inject creates one message at node and enqueues its packets, moving
// as many as fit into the first link's queue.
func (e *engine) inject(node int, now int64) {
	dst := e.cfg.Pattern.Dest(node, e.rng)
	if dst == node {
		return // pattern chose a self-destination; nothing to send
	}
	var route []int
	if !e.cfg.Adaptive {
		pair := int64(node)*int64(e.numProc) + int64(dst)
		routes := e.routesFor(pair, node, dst)
		if len(routes) == 0 {
			// Repaired routing found the pair disconnected: the message
			// is undeliverable by any minimal route, so drop it at the
			// source instead of wedging the injection queue.
			e.msgsUnroutable++
			return
		}
		route = e.pickRoute(routes, pair)
	}
	vc := e.rrVC[node]
	e.rrVC[node] = int8((int(vc) + 1) % e.vcs)
	measured := now >= e.warmEnd && now < e.endTime
	msg := e.allocMessage(message{
		genTime:     now,
		packetsLeft: e.cfg.PacketsPerMessage,
		measured:    measured,
	})
	if measured {
		e.msgsGen++
	}
	for i := 0; i < e.cfg.PacketsPerMessage; i++ {
		idx := e.allocPacket(packet{
			msg:   msg,
			route: route,
			dst:   int32(dst),
			vc:    vc,
			flits: e.cfg.FlitsPerPacket,
		})
		e.injQueue[node] = append(e.injQueue[node], idx)
		e.pktsInFlight++
	}
	e.drainInjection(node, now)
}

// drainInjection moves injection-queue packets into their first link
// queue while slots are available.
func (e *engine) drainInjection(node int, now int64) {
	for len(e.injQueue[node]) > 0 {
		idx := e.injQueue[node][0]
		p := &e.packets[idx]
		var l int32
		if p.route != nil {
			l = e.outLinks[node][p.route[0]]
			if e.occ[e.qid(l, p.vc)] >= e.cfg.BufferPackets {
				return
			}
		} else {
			var ok bool
			l, ok = e.adaptiveNext(topology.NodeID(node), int(p.dst), p.vc)
			if !ok {
				return
			}
		}
		q := e.injQueue[node]
		copy(q, q[1:])
		e.injQueue[node] = q[:len(q)-1]
		qi := e.qid(l, p.vc)
		e.occ[qi]++
		e.outQ[qi] = append(e.outQ[qi], idx)
		e.tryStart(l, now)
	}
}

// adaptiveNext picks the link a packet at node x heading to dst (on
// the given VC) crosses next: the forced downward port once dst lies
// in x's subtree, or the upward output whose VC queue is least
// occupied otherwise (ties rotate per node). It reports false when
// every admissible queue is full; the caller's retry machinery fires
// when any of them frees a slot.
func (e *engine) adaptiveNext(x topology.NodeID, dst int, vc int8) (int32, bool) {
	l := int(e.nodeLevel[x])
	if l > 0 && dst/e.mLow[l] == int(e.subtreeIdx[x]) {
		// Downward: the child digit at level l addresses the subtree
		// copy holding dst.
		digit := dst / e.mLow[l-1] % e.topo.M(l)
		port := digit
		if l < e.topo.H() {
			port += e.topo.W(l + 1)
		}
		next := e.outLinks[x][port]
		if e.failed[next] || e.occ[e.qid(next, vc)] >= e.cfg.BufferPackets {
			return 0, false // a failed forced downward link stalls the flow
		}
		return next, true
	}
	ups := e.topo.W(l + 1)
	start := int(e.adaptRR[x])
	best, bestOcc := int32(-1), e.cfg.BufferPackets
	for i := 0; i < ups; i++ {
		link := e.outLinks[x][(start+i)%ups]
		if e.failed[link] {
			continue // adaptivity routes around failed upward links
		}
		if o := e.occ[e.qid(link, vc)]; o < bestOcc {
			best, bestOcc = link, o
		}
	}
	if best < 0 {
		return 0, false
	}
	e.adaptRR[x] = int32((start + 1) % ups)
	return best, true
}

// tryStart attempts to begin a transmission on link l, arbitrating
// round-robin across its VC queues. Safe to call speculatively: all
// gates re-checked.
func (e *engine) tryStart(l int32, now int64) {
	if e.failed[l] || e.linkFree[l] > now {
		return
	}
	start := int(e.linkRR[l])
	for i := 0; i < e.vcs; i++ {
		vc := int8((start + i) % e.vcs)
		q := e.qid(l, vc)
		if len(e.outQ[q]) == 0 {
			continue
		}
		idx := e.outQ[q][0]
		p := &e.packets[idx]
		var last bool
		if p.route != nil {
			last = p.hop == len(p.route)-1
		} else {
			last = int(e.linkDst[l]) < e.numProc
		}
		var next int32
		if !last {
			if p.route != nil {
				next = e.outLinks[e.linkDst[l]][p.route[p.hop+1]]
				if e.occ[e.qid(next, vc)] >= e.cfg.BufferPackets {
					e.vcStalls++
					continue // this VC blocked; let another VC use the wire
				}
			} else {
				var ok bool
				next, ok = e.adaptiveNext(e.linkDst[l], int(p.dst), vc)
				if !ok {
					e.vcStalls++
					continue
				}
			}
			e.occ[e.qid(next, vc)]++
		}
		// Commit: pop, busy the link, free our slot when the tail
		// leaves.
		f := int64(p.flits)
		qq := e.outQ[q]
		copy(qq, qq[1:])
		e.outQ[q] = qq[:len(qq)-1]
		e.linkFree[l] = now + f
		e.linkRR[l] = int32((int(vc) + 1) % e.vcs)
		e.schedule(now, now+f, evFree, q, -1)
		if last {
			e.schedule(now, now+f, evDeliver, q, idx)
			return
		}
		p.hop++
		e.schedule(now, now+1+e.cfg.RouterDelay, evArrive, e.qid(next, vc), idx)
		return
	}
}

// free handles the tail of a transmission leaving queue q: the link
// idles and the queue slot returns, unblocking the next local packet,
// upstream senders (round-robin) and the injection queue.
func (e *engine) free(q int32, now int64) {
	e.occ[q]--
	if e.occ[q] < 0 {
		panic("flit: occupancy underflow") // invariant guard
	}
	l := e.qlink(q)
	e.tryStart(l, now)
	src := int(e.linkSrc[l])
	if src < e.numProc {
		e.drainInjection(src, now)
		return
	}
	fs := e.feeders[l]
	start := e.rrIdx[l]
	for i := 0; i < len(fs); i++ {
		li := fs[(start+i)%len(fs)]
		e.tryStart(li, now)
		if e.occ[q] >= e.cfg.BufferPackets {
			e.rrIdx[l] = (start + i + 1) % len(fs)
			return
		}
	}
	e.rrIdx[l] = start
}

// deliver finalizes a packet at its destination.
func (e *engine) deliver(idx int32, now int64) {
	p := &e.packets[idx]
	e.pktsInFlight--
	if now >= e.warmEnd && now < e.endTime {
		e.flitsEjected += int64(p.flits)
		e.ejectedPer[p.dst] += int64(p.flits)
	}
	m := &e.msgs[p.msg]
	m.packetsLeft--
	if m.packetsLeft == 0 {
		if m.measured && now < e.endTime {
			e.msgsDone++
			d := float64(now - m.genTime)
			e.delay.Add(d)
			if b := (now - e.warmEnd) / e.batchLen; b >= 0 && int(b) < len(e.batches) {
				e.batches[b].Add(d)
			}
			if e.hist != nil {
				e.hist.Observe(d)
			}
		}
		e.freeMsg = append(e.freeMsg, p.msg)
	}
	p.msg = -1
	p.route = nil
	e.freePkt = append(e.freePkt, idx)
}

// start primes the simulation: every node's first Poisson injection.
func (e *engine) start() {
	for n := 0; n < e.numProc; n++ {
		e.scheduleArrival(n, 0)
	}
}

// runLimit is the cycle cap of a full run: the configured end, or ten
// windows when draining the backlog.
func (e *engine) runLimit() int64 {
	limit := e.endTime
	if e.cfg.Drain {
		limit = e.endTime * 10
		if limit < e.endTime+1000 {
			limit = e.endTime + 1000
		}
	}
	return limit
}

// loop advances the simulation from e.now up to (but excluding) limit,
// or until no event can ever fire again. Resumable: a test can warm the
// engine up, then measure additional cycles in isolation.
func (e *engine) loop(limit int64) {
	for ; e.now < limit; e.now++ {
		now := e.now
		if e.pending == 0 && len(e.inj) == 0 {
			// Nothing scheduled and no injections left: no event can
			// ever fire again (events exist iff transmissions are in
			// flight). With packets still in flight that is a
			// permanently wedged fabric — the no-progress watchdog ends
			// the run with a diagnostic instead of spinning to the
			// cycle cap. Leftover backlog after the window without
			// Drain is ordinary post-saturation state, not a wedge.
			if e.pktsInFlight > 0 && (e.cfg.Drain || now < e.endTime) {
				e.wedged, e.wedgedAt = true, now
				e.wedgeDiag = e.stallDiagnosis()
			}
			return
		}
		// Injections first (they were scheduled far in advance, as the
		// former global ordering had them).
		for len(e.inj) > 0 && e.inj[0].time <= now {
			ev := e.inj.pop()
			e.inject(int(ev.node), now)
			e.scheduleArrival(int(ev.node), now)
		}
		// Then this cycle's network events, in scheduling order. No
		// handler schedules into the current cycle, so the bucket can
		// be detached wholesale.
		b := now % e.wheelSpan
		if len(e.wheel[b]) == 0 {
			if e.pending == 0 && len(e.inj) > 0 {
				// Idle network: jump to the next injection. (With the
				// heap also empty the next top-of-loop check ends the
				// run, wedged or done.)
				if t := e.inj[0].time; t > now+1 {
					e.now = t - 1
				}
			}
			continue
		}
		scratch := e.evScratch
		scratch, e.wheel[b] = e.wheel[b], scratch[:0]
		e.pending -= len(scratch)
		for _, ev := range scratch {
			switch ev.kind {
			case evArrive:
				q := ev.a
				if len(e.outQ[q]) >= e.cfg.BufferPackets {
					panic("flit: queue overflow") // invariant guard
				}
				e.outQ[q] = append(e.outQ[q], ev.pkt)
				if len(e.outQ[q]) == 1 {
					e.tryStart(e.qlink(q), now)
				}
			case evDeliver:
				e.deliver(ev.pkt, now)
			case evFree:
				e.free(ev.a, now)
			}
		}
		e.evScratch = scratch[:0]
	}
}

// run executes the simulation and gathers the result.
func (e *engine) run() Result {
	e.start()
	e.loop(e.runLimit())
	return e.result()
}

// result gathers the statistics of a finished run and folds the
// engine's metric tallies into the shared obs registry.
func (e *engine) result() Result {
	e.foldMetrics()
	capacity := float64(e.cfg.MeasureCycles) * float64(e.numProc) * float64(e.topo.W(1))
	res := Result{
		OfferedLoad:    e.cfg.OfferedLoad,
		Throughput:     float64(e.flitsEjected) / capacity,
		AvgDelay:       e.delay.Mean(),
		MsgsGenerated:  e.msgsGen,
		MsgsCompleted:  e.msgsDone,
		MsgsUnroutable: e.msgsUnroutable,
		FlitsEjected:   e.flitsEjected,
		BacklogPackets: e.pktsInFlight,
		VCStalls:       e.vcStalls,
		Cycles:         e.cfg.MeasureCycles,
		Wedged:         e.wedged,
		WedgedAt:       e.wedgedAt,
		WedgeDiagnosis: e.wedgeDiag,
	}
	if e.hist != nil {
		res.P95Delay = e.hist.Percentile(95)
	}
	// Batch-means CI: treat non-empty batch means as i.i.d. samples.
	var bm stats.Accumulator
	for i := range e.batches {
		if e.batches[i].N() > 0 {
			bm.Add(e.batches[i].Mean())
		}
	}
	if bm.N() >= 2 {
		res.DelayCI = bm.ConfidenceHalfWidth(0.95)
	}
	res.Saturated = res.Throughput < 0.95*e.cfg.OfferedLoad
	// Jain's fairness index over per-destination ejections.
	var sum, sumSq float64
	for _, x := range e.ejectedPer {
		v := float64(x)
		sum += v
		sumSq += v * v
	}
	if sumSq > 0 {
		res.Fairness = sum * sum / (float64(len(e.ejectedPer)) * sumSq)
	}
	return res
}

// stallDiagnosis names an exemplar permanently blocked packet and why
// it cannot move, for the watchdog's report.
func (e *engine) stallDiagnosis() string {
	for q, pkts := range e.outQ {
		if len(pkts) == 0 {
			continue
		}
		p := &e.packets[pkts[0]]
		l := e.qlink(int32(q))
		why := "downstream buffers never free"
		switch {
		case e.failed[l]:
			why = e.failedLinkWhy(l, "itself is failed")
		case p.route != nil && p.hop < len(p.route)-1:
			next := e.outLinks[e.linkDst[l]][p.route[p.hop+1]]
			if e.failed[next] {
				why = e.failedLinkWhy(next, "is its failed next link")
			}
		}
		return fmt.Sprintf("%d packets in flight with no schedulable event; e.g. a packet for node %d queued on link %d (vc %d): %s",
			e.pktsInFlight, p.dst, l, q%e.vcs, why)
	}
	for n, iq := range e.injQueue {
		if len(iq) > 0 {
			p := &e.packets[iq[0]]
			return fmt.Sprintf("%d packets in flight with no schedulable event; e.g. a packet for node %d stuck in node %d's injection queue",
				e.pktsInFlight, p.dst, n)
		}
	}
	return fmt.Sprintf("%d packets in flight with no schedulable event and no queued location (accounting violation)", e.pktsInFlight)
}

// failedLinkWhy explains a failed link for the wedge diagnosis. When
// the fault set covers an entire switch at either endpoint the whole
// node is gone — naming it beats reporting its dead cables one wedge
// at a time, and is what an operator acts on.
func (e *engine) failedLinkWhy(link int32, role string) string {
	l := topology.LinkID(link)
	if f := e.cfg.faults; f != nil {
		from, to := e.topo.LinkEndpoints(l)
		for _, n := range [2]topology.NodeID{from, to} {
			if f.SwitchDead(n) {
				return fmt.Sprintf("switch %d is failed (link %d %s)", n, l, role)
			}
		}
	}
	return fmt.Sprintf("link %d %s", l, role)
}

// Run executes one flit-level simulation.
func Run(cfg Config) (Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Result{}, err
	}
	return newEngine(cfg).run(), nil
}

// MustRun is Run but panics on configuration errors; for tests and
// examples.
func MustRun(cfg Config) Result {
	r, err := Run(cfg)
	if err != nil {
		panic(err)
	}
	return r
}
