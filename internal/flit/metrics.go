package flit

import "xgftsim/internal/obs"

// Shared flit-engine metrics in the process-wide obs registry. The
// engine tallies into plain per-engine fields on the hot path (a field
// increment is branch-free and allocation-free; engines of parallel
// experiment cells never contend on a shared cache line) and folds the
// tallies into these metrics once per run, when the result is gathered.
// TestEngineSteadyStateAllocs pins the tallying loop at zero
// allocations.
var met = struct {
	runs           *obs.Counter
	cycles         *obs.Counter
	flitsEjected   *obs.Counter
	msgsGenerated  *obs.Counter
	msgsCompleted  *obs.Counter
	msgsUnroutable *obs.Counter
	vcStalls       *obs.Counter
	wedges         *obs.Counter
	injHeapDepth   *obs.Gauge
}{
	runs:           obs.Default().Counter("flit.runs"),
	cycles:         obs.Default().Counter("flit.cycles"),
	flitsEjected:   obs.Default().Counter("flit.flits_ejected"),
	msgsGenerated:  obs.Default().Counter("flit.msgs_generated"),
	msgsCompleted:  obs.Default().Counter("flit.msgs_completed"),
	msgsUnroutable: obs.Default().Counter("flit.msgs_unroutable"),
	vcStalls:       obs.Default().Counter("flit.vc_stalls"),
	wedges:         obs.Default().Counter("flit.wedges"),
	injHeapDepth:   obs.Default().Gauge("flit.inj_heap_depth_max"),
}

// foldMetrics publishes one finished run's tallies; called exactly once
// per engine, from result().
func (e *engine) foldMetrics() {
	met.runs.Inc()
	met.cycles.Add(e.now)
	met.flitsEjected.Add(e.flitsEjected)
	met.msgsGenerated.Add(e.msgsGen)
	met.msgsCompleted.Add(e.msgsDone)
	met.msgsUnroutable.Add(e.msgsUnroutable)
	met.vcStalls.Add(e.vcStalls)
	if e.wedged {
		met.wedges.Inc()
	}
	met.injHeapDepth.SetMax(int64(e.injHeapHW))
}
