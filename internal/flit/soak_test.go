package flit

// Randomized soak test: throw arbitrary configurations at the engine
// and rely on the built-in invariant guards (credit/occupancy
// underflow, queue overflow, wheel horizon) to catch scheduling bugs,
// while asserting the external conservation properties.

import (
	"testing"
	"testing/quick"

	"xgftsim/internal/core"
	"xgftsim/internal/stats"
	"xgftsim/internal/topology"
	"xgftsim/internal/traffic"
)

func TestEngineSoakQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	trees := []*topology.Topology{
		topology.MustNew(1, []int{4}, []int{2}),
		topology.MustNew(2, []int{3, 4}, []int{2, 2}),
		topology.MustNew(2, []int{4, 8}, []int{1, 4}),
		topology.MustNew(3, []int{2, 2, 4}, []int{1, 2, 2}),
	}
	sels := []core.Selector{core.DModK{}, core.SModK{}, core.RandomSingle{}, core.Shift1{}, core.Disjoint{}, core.RandomK{}, core.UMulti{}}
	f := func(ti, si, ki, fl, pk, bu, lo uint8, seed int64, adaptive, randomPolicy bool) bool {
		tp := trees[int(ti)%len(trees)]
		sel := sels[int(si)%len(sels)]
		cfg := Config{
			Routing:           core.NewRouting(tp, sel, int(ki)%6+1, seed),
			Pattern:           traffic.UniformPattern{N: tp.NumProcessors()},
			OfferedLoad:       0.1 + float64(lo%90)/100,
			FlitsPerPacket:    int(fl)%12 + 1,
			PacketsPerMessage: int(pk)%4 + 1,
			BufferPackets:     int(bu)%6 + 1,
			WarmupCycles:      300,
			MeasureCycles:     1500,
			Seed:              seed,
			Adaptive:          adaptive,
			Drain:             true,
		}
		if randomPolicy {
			cfg.PathPolicy = RandomPath
		}
		res, err := Run(cfg)
		if err != nil {
			return false
		}
		// Conservation after drain: nothing lost on a healthy fabric.
		if res.BacklogPackets != 0 {
			return false
		}
		// Sanity of every reported statistic.
		return res.Throughput >= 0 && res.Throughput <= 1.01 &&
			res.AvgDelay >= 0 && res.MsgsCompleted <= res.MsgsGenerated &&
			res.Fairness >= 0 && res.Fairness <= 1.0001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: stats.Stream(2024, 0)}); err != nil {
		t.Fatal(err)
	}
}
