package flit

import (
	"fmt"
	"runtime"
	"sync"

	"xgftsim/internal/core"
)

// SweepConfig describes a load sweep: the base Config is replicated at
// each offered load point. Points run in parallel (each simulation is
// single-threaded and deterministic in its seed).
type SweepConfig struct {
	Base Config
	// Loads are the offered load points; empty defaults to
	// 0.05, 0.10, ..., 1.00.
	Loads []float64
	// Parallelism bounds concurrent runs; 0 means GOMAXPROCS.
	Parallelism int
}

// DefaultLoads returns the standard sweep grid 0.05..1.00 step 0.05.
func DefaultLoads() []float64 {
	loads := make([]float64, 20)
	for i := range loads {
		loads[i] = float64(i+1) * 0.05
	}
	return loads
}

// Sweep runs the base configuration at every load point and returns
// the results in load order.
func Sweep(sc SweepConfig) ([]Result, error) {
	loads := sc.Loads
	if len(loads) == 0 {
		loads = DefaultLoads()
	}
	for _, l := range loads {
		if l <= 0 || l > 1 {
			return nil, fmt.Errorf("flit: sweep load %g out of (0,1]", l)
		}
	}
	// All points share one routing, so share one route cache: paths are
	// expanded once for the whole sweep instead of once per load point.
	// (withDefaults has not normalized the config yet, so resolve the
	// effective selector from both the Selector and the legacy flag.)
	effSel := sc.Base.Selector
	if effSel == SelectOblivious && sc.Base.Adaptive {
		effSel = SelectAdaptive
	}
	if sc.Base.Routes == nil && sc.Base.Routing != nil {
		switch effSel {
		case SelectOblivious:
			if sc.Base.RepairRoutes {
				// Repaired expansion, so every engine of the sweep shares
				// the fault-avoiding routes. Invalid fault configurations
				// fall through to each run's own validation error.
				if faults, err := sc.Base.combinedFaults(); err == nil {
					if rr, err := sc.Base.Routing.Repair(faults); err == nil {
						sc.Base.Routes = NewRepairedRouteTable(rr, repairedTable(rr))
					}
				}
			} else {
				sc.Base.Routes = NewRouteTable(sc.Base.Routing, nil)
			}
		case SelectAdaptiveK:
			// Adaptive-K consults only the healthy per-pair path indices
			// (failures are steered around at run time), so the shared
			// cache never involves repair.
			sc.Base.Routes = NewRouteTable(sc.Base.Routing, nil)
		}
	}
	par := sc.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(loads) {
		par = len(loads)
	}
	results := make([]Result, len(loads))
	errs := make([]error, len(loads))
	var wg sync.WaitGroup
	sem := make(chan struct{}, par)
	for i, l := range loads {
		wg.Add(1)
		go func(i int, l float64) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			cfg := sc.Base
			cfg.OfferedLoad = l
			results[i], errs[i] = Run(cfg)
		}(i, l)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// repairedCompileBudget caps the healthy base compile a degraded sweep
// hydrates its route table from (1 GiB of rows, matching the flow
// layer's default).
const repairedCompileBudget = 1 << 30

// repairedTable builds the compiled degraded table a sweep's shared
// route cache hydrates from: one healthy compile plus an incremental
// delta patch over the pairs the faults actually touch. Any failure
// (budget exceeded, custom scheme) returns nil and the table falls
// back to lazy per-pair repair, preserving the old behavior.
func repairedTable(rr *core.RepairedRouting) *core.CompiledRouting {
	base, err := core.CompileRouting(rr.Base(), repairedCompileBudget)
	if err != nil {
		return nil
	}
	d, err := core.NewDeltaRepairer(base)
	if err != nil {
		return nil
	}
	c, err := d.CompileRepairedDelta(rr)
	if err != nil {
		return nil
	}
	return c
}

// MaxThroughput returns the paper's Table 1 metric: the maximum
// normalized accepted throughput over a load sweep, expressed as a
// fraction of capacity (multiply by 100 for the paper's percentages).
func MaxThroughput(results []Result) float64 {
	max := 0.0
	for _, r := range results {
		if r.Throughput > max {
			max = r.Throughput
		}
	}
	return max
}

// SaturationLoad returns the lowest offered load at which the run
// reported saturation, or 1 if none did. Results must be in ascending
// load order.
func SaturationLoad(results []Result) float64 {
	for _, r := range results {
		if r.Saturated {
			return r.OfferedLoad
		}
	}
	return 1
}
