package loadgen

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"xgftsim/internal/experiments"
	"xgftsim/internal/serve"
)

// bootServer starts an in-process serve instance over the small edge
// fabric and returns its base URL.
func bootServer(t *testing.T) string {
	t.Helper()
	s, err := serve.New(serve.Config{
		Fabrics: []serve.FabricSpec{{Name: "edge", XGFT: "2;4,4;1,4", Scheme: "d-mod-k", K: 4, Seed: 2012}},
		Dir:     t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	s.Start(ctx)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return hs.URL
}

func TestRunClosedLoop(t *testing.T) {
	url := bootServer(t)
	res, err := Run(context.Background(), Config{
		BaseURL: url, Fabric: "edge", Endpoints: 16,
		Concurrency: 4, Requests: 200, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors: %v", res.Errors, res)
	}
	if res.Requests != 200 || res.Pairs != 200 {
		t.Fatalf("completed %d requests / %d pairs, want 200/200", res.Requests, res.Pairs)
	}
	if res.Hist.Count() != res.Requests {
		t.Errorf("histogram holds %d samples, want %d", res.Hist.Count(), res.Requests)
	}
	if res.QPS <= 0 || res.P50 <= 0 || res.P99 < res.P50 || res.Max < res.P99 {
		t.Errorf("implausible quantiles: %v", res)
	}
}

func TestRunBatchAndMaxLoad(t *testing.T) {
	url := bootServer(t)
	for _, binary := range []bool{false, true} {
		res, err := Run(context.Background(), Config{
			BaseURL: url, Fabric: "edge", Endpoints: 16,
			Concurrency: 2, Requests: 20, Seed: 2,
			Mix: Mix{Batch: 1}, BatchSize: 32, Binary: binary,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Errors != 0 || res.Requests != 20 {
			t.Fatalf("binary=%v: %v", binary, res)
		}
		if res.Pairs != 20*32 {
			t.Fatalf("binary=%v: %d pairs, want %d", binary, res.Pairs, 20*32)
		}
	}
	res, err := Run(context.Background(), Config{
		BaseURL: url, Fabric: "edge", Endpoints: 16,
		Concurrency: 2, Requests: 12, Seed: 3,
		Mix: Mix{Path: 1, Batch: 1, MaxLoad: 1}, BatchSize: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 || res.Requests != 12 {
		t.Fatalf("mixed run: %v", res)
	}
}

func TestRunOpenLoop(t *testing.T) {
	url := bootServer(t)
	res, err := Run(context.Background(), Config{
		BaseURL: url, Fabric: "edge", Endpoints: 16,
		Concurrency: 4, Duration: 300 * time.Millisecond,
		TargetQPS: 500, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors", res.Errors)
	}
	// The schedule releases ~Duration*QPS requests; allow wide slack
	// for slow CI but catch a broken (unpaced or stalled) loop.
	want := 0.3 * 500
	if float64(res.Requests) < want/3 || float64(res.Requests) > want*2 {
		t.Errorf("open loop completed %d requests, scheduled ~%.0f", res.Requests, want)
	}
}

func TestRunChurn(t *testing.T) {
	url := bootServer(t)
	res, err := Run(context.Background(), Config{
		BaseURL: url, Fabric: "edge", Endpoints: 16,
		Concurrency: 2, Duration: 400 * time.Millisecond, Seed: 5,
		ChurnPeriod: 40 * time.Millisecond, ChurnNode: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Churn == 0 {
		t.Error("churn flapper admitted no events")
	}
	if res.Errors != 0 {
		t.Errorf("%d query errors during churn", res.Errors)
	}
}

// TestQuery429RetryAfter serves alternating 429 (with Retry-After: 0)
// and 200 responses: every request must eventually complete, the
// throttles must land in Query429, and none of them may count as an
// error.
func TestQuery429RetryAfter(t *testing.T) {
	var hits atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1)%2 == 1 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer hs.Close()
	res, err := Run(context.Background(), Config{
		BaseURL: hs.URL, Fabric: "edge", Endpoints: 16,
		Concurrency: 2, Requests: 40, Duration: 5 * time.Second, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors; throttles must not count as errors: %v", res.Errors, res)
	}
	if res.Requests != 40 {
		t.Fatalf("completed %d requests, want 40 (throttled requests must retry to completion)", res.Requests)
	}
	if res.Query429 == 0 {
		t.Fatal("no 429s tallied despite the server throttling every other request")
	}
}

func TestRetryAfterDelay(t *testing.T) {
	for _, tc := range []struct {
		h    string
		want time.Duration
	}{
		{"", 10 * time.Millisecond},
		{"garbage", 10 * time.Millisecond},
		{"-1", 10 * time.Millisecond},
		{"0", 0},
		{"0.05", 50 * time.Millisecond},
		{"1", time.Second},
		{"3600", 2 * time.Second}, // bounded
	} {
		if got := retryAfterDelay(tc.h); got != tc.want {
			t.Errorf("retryAfterDelay(%q) = %v, want %v", tc.h, got, tc.want)
		}
	}
}

func TestRunValidation(t *testing.T) {
	for _, cfg := range []Config{
		{},
		{BaseURL: "http://x", Fabric: "edge", Endpoints: 1},
		{Fabric: "edge", Endpoints: 16},
	} {
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

// TestServeBenchSmoke runs the full experiment at quick scale (this is
// the `make ci` smoke: race-enabled, in-process) and pins the two
// load-bearing acceptance properties — batching multiplies pair
// throughput at equal concurrency, and open-loop p99 stays measurable
// and error-free while churn is flapping a cable.
func TestServeBenchSmoke(t *testing.T) {
	scale, err := experiments.ScaleByName("quick")
	if err != nil {
		t.Fatal(err)
	}
	tab, err := ServeBench(scale, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.XValues) != 5 || len(tab.Cells) != 5 {
		t.Fatalf("want 5 scenarios, got %d", len(tab.XValues))
	}
	col := func(name string) int {
		for i, c := range tab.Columns {
			if c == name {
				return i
			}
		}
		t.Fatalf("column %q missing from %v", name, tab.Columns)
		return -1
	}
	row := func(name string) []experiments.Cell {
		for i, x := range tab.XValues {
			if x == name {
				return tab.Cells[i]
			}
		}
		t.Fatalf("row %q missing from %v", name, tab.XValues)
		return nil
	}
	qps, pairs, p99, errs, churn :=
		col("qps"), col("pairs/s"), col("p99 us"), col("errors"), col("churn evs")

	for i, x := range tab.XValues {
		if tab.Cells[i][qps].Mean <= 0 {
			t.Errorf("%s: zero qps", x)
		}
		if tab.Cells[i][errs].Mean != 0 {
			t.Errorf("%s: %v errors", x, tab.Cells[i][errs].Mean)
		}
	}
	// Acceptance: batch pair throughput >= 5x single-request qps at
	// equal concurrency.
	single := row("single/closed")[qps].Mean
	batch := row("batch/closed")[pairs].Mean
	if batch < 5*single {
		t.Errorf("batch pairs/s %.0f < 5x single qps %.0f", batch, single)
	}
	// Churned open loop still reports a meaningful (bounded) p99.
	churned := row("mixed/open+churn")
	if churned[p99].Mean <= 0 {
		t.Error("open+churn: no p99 measured")
	}
	if churned[churn].Mean == 0 {
		t.Error("open+churn: churn flapper admitted no events")
	}
}
