// Package loadgen drives the serve control plane's query API at high
// rate and reports latency quantiles. It supports two loops:
//
//   - Closed loop: Concurrency workers issue back-to-back requests;
//     throughput is whatever the server sustains. Good for peak-qps
//     measurement, blind to queueing delay.
//   - Open loop (TargetQPS > 0): requests are released on a fixed
//     schedule independent of responses, and each latency is measured
//     from the request's *scheduled* time, not its send time. A slow
//     server therefore shows up as growing latency (queueing delay is
//     charged to the laggards) instead of silently shedding load —
//     the standard defense against coordinated omission.
//
// The request mix blends single-pair path queries, batched path
// queries (JSON or the binary frame), and maxload evaluations, with a
// background fault-churn goroutine optionally flapping a cable to
// measure tail latency while the control plane is repairing.
//
// Latencies land in per-worker stats.DurationHist instances (no
// cross-worker contention) merged after the run.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"xgftsim/internal/serve"
	"xgftsim/internal/stats"
)

// Mix weights the request types; zero-weight kinds are never issued.
// The default (all zero) means path-only.
type Mix struct {
	Path    int
	Batch   int
	MaxLoad int
}

func (m Mix) total() int { return m.Path + m.Batch + m.MaxLoad }

// Config parameterizes one load run against a serve instance.
type Config struct {
	BaseURL   string // http://host:port of the serve API
	Fabric    string // fabric name to query
	Endpoints int    // processor count; sources/destinations draw from [0,Endpoints)

	Concurrency int           // workers (default 4)
	Duration    time.Duration // stop after this long (default 1s when Requests == 0)
	Requests    int           // or after this many requests (0 = duration only)

	// TargetQPS > 0 switches to the open loop at that aggregate rate.
	TargetQPS float64

	Mix       Mix
	BatchSize int  // pairs per batch request (default 64)
	K         int  // per-batch path limit (0 = all)
	Binary    bool // batch requests negotiate the binary frame

	// ChurnPeriod > 0 flaps a cable fault every period from a
	// background goroutine while the run is in flight.
	ChurnPeriod time.Duration
	ChurnNode   int // child node of the flapped cable

	Seed   int64
	Client *http.Client // default http.DefaultClient
}

// Result is the merged outcome of a run.
type Result struct {
	Requests int64         // requests completed with 200
	Pairs    int64         // pairs answered (batch counts BatchSize per request)
	Errors   int64         // non-2xx (except 429) responses and transport errors
	Query429 int64         // query throttles (429) retried after Retry-After
	Churn    int64         // churn events admitted in the background
	Churn429 int64         // churn events rejected by backpressure
	Elapsed  time.Duration // wall time of the measurement window

	QPS         float64 // completed requests / elapsed
	PairsPerSec float64

	P50, P95, P99, Max time.Duration
	Mean               time.Duration
	Hist               *stats.DurationHist
}

func (r *Result) String() string {
	return fmt.Sprintf("%d req (%d pairs) in %v: %.0f qps, %.0f pairs/s, p50 %v p95 %v p99 %v max %v, %d errors, %d throttled",
		r.Requests, r.Pairs, r.Elapsed.Round(time.Millisecond), r.QPS, r.PairsPerSec,
		r.P50.Round(time.Microsecond), r.P95.Round(time.Microsecond),
		r.P99.Round(time.Microsecond), r.Max.Round(time.Microsecond), r.Errors, r.Query429)
}

// reqKind is one drawn request type.
type reqKind int

const (
	kindPath reqKind = iota
	kindBatch
	kindMaxLoad
)

// worker holds one goroutine's private state: its RNG, its histogram,
// and reusable request scratch (URL and batch-body buffers), so the
// measurement loop itself allocates as little as possible.
type worker struct {
	cfg  *Config
	rng  *rand.Rand
	hist stats.DurationHist
	url  []byte
	body bytes.Buffer

	requests int64
	pairs    int64
	errors   int64
	query429 int64
}

func (w *worker) draw() reqKind {
	m := w.cfg.Mix
	t := m.total()
	if t == 0 {
		return kindPath
	}
	r := w.rng.Intn(t)
	if r < m.Path {
		return kindPath
	}
	if r < m.Path+m.Batch {
		return kindBatch
	}
	return kindMaxLoad
}

var maxloadPatterns = []string{"shift", "random", "bitcomp"}

// issue sends one request and reports whether it succeeded; the
// response body is drained so the connection is reused. A 429 from the
// server is backpressure, not a failure: it is tallied separately, the
// worker honors the Retry-After header (bounded), and the request is
// retried until it resolves or the run window closes.
func (w *worker) issue(ctx context.Context, kind reqKind) bool {
	cfg := w.cfg
	client := cfg.Client
	var method, url string
	var body []byte
	switch kind {
	case kindBatch:
		w.body.Reset()
		w.body.WriteString(`{"pairs":[`)
		for i := 0; i < cfg.BatchSize; i++ {
			if i > 0 {
				w.body.WriteByte(',')
			}
			fmt.Fprintf(&w.body, "[%d,%d]", w.rng.Intn(cfg.Endpoints), w.rng.Intn(cfg.Endpoints))
		}
		w.body.WriteString(`],"k":`)
		w.body.WriteString(strconv.Itoa(cfg.K))
		w.body.WriteByte('}')
		method, url = "POST", cfg.BaseURL+"/fabrics/"+cfg.Fabric+"/paths"
		body = w.body.Bytes()
	case kindMaxLoad:
		w.url = w.url[:0]
		w.url = append(w.url, cfg.BaseURL...)
		w.url = append(w.url, "/fabrics/"...)
		w.url = append(w.url, cfg.Fabric...)
		w.url = append(w.url, "/maxload?pattern="...)
		w.url = append(w.url, maxloadPatterns[w.rng.Intn(len(maxloadPatterns))]...)
		w.url = append(w.url, "&arg="...)
		w.url = strconv.AppendInt(w.url, int64(1+w.rng.Intn(cfg.Endpoints-1)), 10)
		method, url = "GET", string(w.url)
	default:
		w.url = w.url[:0]
		w.url = append(w.url, cfg.BaseURL...)
		w.url = append(w.url, "/fabrics/"...)
		w.url = append(w.url, cfg.Fabric...)
		w.url = append(w.url, "/path?src="...)
		w.url = strconv.AppendInt(w.url, int64(w.rng.Intn(cfg.Endpoints)), 10)
		w.url = append(w.url, "&dst="...)
		w.url = strconv.AppendInt(w.url, int64(w.rng.Intn(cfg.Endpoints)), 10)
		method, url = "GET", string(w.url)
	}
	for {
		// A fresh reader per attempt: a retried POST must resend the
		// full body, which a consumed bytes.Buffer cannot.
		var br io.Reader
		if body != nil {
			br = bytes.NewReader(body)
		}
		req, err := http.NewRequest(method, url, br)
		if err != nil {
			w.errors++
			return false
		}
		if kind == kindBatch && cfg.Binary {
			req.Header.Set("Accept", serve.BinaryBatchContentType)
		}
		resp, err := client.Do(req)
		if err != nil {
			w.errors++
			return false
		}
		_, cerr := io.Copy(io.Discard, resp.Body)
		retryAfter := resp.Header.Get("Retry-After")
		resp.Body.Close()
		if cerr != nil {
			w.errors++
			return false
		}
		switch resp.StatusCode {
		case http.StatusOK:
			w.requests++
			if kind == kindBatch {
				w.pairs += int64(cfg.BatchSize)
			} else {
				w.pairs++
			}
			return true
		case http.StatusTooManyRequests:
			w.query429++
			select {
			case <-time.After(retryAfterDelay(retryAfter)):
			case <-ctx.Done():
				return false
			}
		default:
			w.errors++
			return false
		}
	}
}

// retryAfterDelay converts a Retry-After header (delta-seconds form)
// into a wait. Missing or malformed headers fall back to a short
// pause, and the wait is bounded so a hostile or confused server
// cannot park a worker past the run window.
func retryAfterDelay(h string) time.Duration {
	const fallback = 10 * time.Millisecond
	const maxWait = 2 * time.Second
	secs, err := strconv.ParseFloat(h, 64)
	if err != nil || secs < 0 {
		return fallback
	}
	d := time.Duration(secs * float64(time.Second))
	if d > maxWait {
		return maxWait
	}
	return d
}

// Run executes the configured load and blocks until the measurement
// window closes (or ctx cancels, whichever is first).
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.BaseURL == "" || cfg.Fabric == "" {
		return nil, fmt.Errorf("loadgen: BaseURL and Fabric are required")
	}
	if cfg.Endpoints < 2 {
		return nil, fmt.Errorf("loadgen: Endpoints must be >= 2, got %d", cfg.Endpoints)
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 4
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 64
	}
	if cfg.Duration <= 0 && cfg.Requests <= 0 {
		cfg.Duration = time.Second
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	if cfg.Duration > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, cfg.Duration)
		defer tcancel()
	}

	var churn churnState
	if cfg.ChurnPeriod > 0 {
		churn.start(ctx, &cfg)
	}

	workers := make([]*worker, cfg.Concurrency)
	for i := range workers {
		workers[i] = &worker{cfg: &cfg, rng: stats.Stream(cfg.Seed, int64(i))}
	}

	// remaining caps total requests when cfg.Requests > 0.
	var issued atomic.Int64
	budget := int64(cfg.Requests)
	take := func() bool {
		if budget <= 0 {
			return ctx.Err() == nil
		}
		return issued.Add(1) <= budget && ctx.Err() == nil
	}

	start := time.Now()
	var wg sync.WaitGroup
	if cfg.TargetQPS > 0 {
		// Open loop: a global tick counter hands out scheduled send
		// times; latency is measured from the schedule, so time a
		// request spends waiting behind a slow server still counts.
		interval := float64(time.Second) / cfg.TargetQPS
		var tick atomic.Int64
		for _, w := range workers {
			wg.Add(1)
			go func(w *worker) {
				defer wg.Done()
				for take() {
					i := tick.Add(1) - 1
					sched := start.Add(time.Duration(float64(i) * interval))
					if d := time.Until(sched); d > 0 {
						select {
						case <-time.After(d):
						case <-ctx.Done():
							return
						}
					}
					if w.issue(ctx, w.draw()) {
						w.hist.Observe(time.Since(sched))
					}
				}
			}(w)
		}
	} else {
		// Closed loop: back-to-back requests, latency from send time.
		for _, w := range workers {
			wg.Add(1)
			go func(w *worker) {
				defer wg.Done()
				for take() {
					t0 := time.Now()
					if w.issue(ctx, w.draw()) {
						w.hist.Observe(time.Since(t0))
					}
				}
			}(w)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	cancel()
	churn.wait()

	res := &Result{Elapsed: elapsed, Hist: &stats.DurationHist{},
		Churn: churn.admitted.Load(), Churn429: churn.rejected.Load()}
	for _, w := range workers {
		res.Requests += w.requests
		res.Pairs += w.pairs
		res.Errors += w.errors
		res.Query429 += w.query429
		res.Hist.Merge(&w.hist)
	}
	if sec := elapsed.Seconds(); sec > 0 {
		res.QPS = float64(res.Requests) / sec
		res.PairsPerSec = float64(res.Pairs) / sec
	}
	res.P50 = res.Hist.Quantile(0.50)
	res.P95 = res.Hist.Quantile(0.95)
	res.P99 = res.Hist.Quantile(0.99)
	res.Max = res.Hist.Max()
	res.Mean = res.Hist.Mean()
	return res, nil
}

// churnState runs the background fault flapper: fail, wait, heal,
// wait, repeat. 429 backpressure responses are expected under load
// and counted separately from hard errors; the flapper always leaves
// the fabric healed on exit (best effort).
type churnState struct {
	wg       sync.WaitGroup
	admitted atomic.Int64
	rejected atomic.Int64
}

func (c *churnState) start(ctx context.Context, cfg *Config) {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		failed := false
		post := func(op string) {
			body, _ := json.Marshal(map[string]any{
				"op": op, "kind": "cable", "node": cfg.ChurnNode, "port": 0,
			})
			resp, err := cfg.Client.Post(cfg.BaseURL+"/fabrics/"+cfg.Fabric+"/faults",
				"application/json", bytes.NewReader(body))
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK, http.StatusAccepted:
				c.admitted.Add(1)
				failed = op == "fail"
			case http.StatusTooManyRequests:
				c.rejected.Add(1)
			}
		}
		t := time.NewTicker(cfg.ChurnPeriod)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				if failed {
					post("heal")
				}
				return
			case <-t.C:
				if failed {
					post("heal")
				} else {
					post("fail")
				}
			}
		}
	}()
}

func (c *churnState) wait() { c.wg.Wait() }
