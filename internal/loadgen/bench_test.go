package loadgen

import (
	"context"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"xgftsim/internal/serve"
)

// The serve benchmarks drive a live in-process server end to end
// (HTTP included) and report throughput and latency quantiles as
// custom metrics, so `make bench-json` lands them in BENCH_serve.json
// and `make bench-compare` gates qps (higher is better) and p99_ms
// (lower is better) alongside ns/op. b.N is the request budget: the
// closed-loop rows measure peak service rate, the open-loop row holds
// a fixed schedule so its p99 includes queueing delay (coordinated-
// omission safe).

func benchServer(b *testing.B) string {
	b.Helper()
	dir, err := os.MkdirTemp("", "xgft-servebench-*")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { os.RemoveAll(dir) })
	s, err := serve.New(serve.Config{
		Fabrics: []serve.FabricSpec{{
			Name: benchFabricName, XGFT: benchXGFT, Scheme: benchScheme, K: benchK, Seed: 2012,
		}},
		Dir: dir,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(s.Close)
	ctx, cancel := context.WithCancel(context.Background())
	b.Cleanup(cancel)
	s.Start(ctx)
	hs := httptest.NewServer(s.Handler())
	b.Cleanup(hs.Close)
	return hs.URL
}

func runBench(b *testing.B, mut func(*Config)) {
	url := benchServer(b)
	cfg := Config{
		BaseURL: url, Fabric: benchFabricName, Endpoints: benchEndpoints,
		Concurrency: 8, Requests: b.N, BatchSize: 256, Seed: 7,
	}
	mut(&cfg)
	b.ReportAllocs()
	b.ResetTimer()
	res, err := Run(context.Background(), cfg)
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	if res.Errors > 0 {
		b.Fatalf("%d errors: %v", res.Errors, res)
	}
	b.ReportMetric(res.QPS, "qps")
	b.ReportMetric(res.PairsPerSec, "pairs_per_sec")
	b.ReportMetric(float64(res.P50)/1e6, "p50_ms")
	b.ReportMetric(float64(res.P99)/1e6, "p99_ms")
}

func BenchmarkServeSingle(b *testing.B) {
	runBench(b, func(c *Config) { c.Mix = Mix{Path: 1} })
}

func BenchmarkServeBatch(b *testing.B) {
	runBench(b, func(c *Config) { c.Mix = Mix{Batch: 1} })
}

func BenchmarkServeBatchBinary(b *testing.B) {
	runBench(b, func(c *Config) { c.Mix = Mix{Batch: 1}; c.Binary = true })
}

func BenchmarkServeOpenLoop(b *testing.B) {
	runBench(b, func(c *Config) {
		c.Mix = Mix{Path: 90, Batch: 5, MaxLoad: 5}
		c.TargetQPS = 2000
	})
}

func BenchmarkServeOpenChurn(b *testing.B) {
	runBench(b, func(c *Config) {
		c.Mix = Mix{Path: 90, Batch: 5, MaxLoad: 5}
		c.TargetQPS = 2000
		c.ChurnPeriod = 50 * time.Millisecond
		c.ChurnNode = 3
	})
}
