package loadgen

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"time"

	"xgftsim/internal/experiments"
	"xgftsim/internal/serve"
)

// benchFabric is the fabric every servebench scenario queries: large
// enough that path answers vary, small enough to boot instantly.
const (
	benchFabricName = "edge"
	benchXGFT       = "2;8,8;1,8"
	benchScheme     = "d-mod-k"
	benchK          = 8
	benchEndpoints  = 64
)

// scenario is one row of the servebench table.
type scenario struct {
	name string
	mut  func(*Config)
}

// ServeBench is the experiment behind `xgftpaper -exp servebench`: it
// boots an in-process control-plane server and measures the query
// API's throughput and latency quantiles across five scenarios —
// closed-loop single-pair, closed-loop batched (JSON and binary
// frame), an open-loop mixed workload at a fixed target rate, and the
// same open loop with background fault churn. The open-loop rows are
// coordinated-omission safe: latency is charged from each request's
// scheduled send time.
func ServeBench(scale experiments.Scale, seed int64) (*experiments.Table, error) {
	dur := 500 * time.Millisecond
	conc := 8
	if scale.Name == "full" || scale.Name == "paper" {
		dur = 3 * time.Second
	}

	dir, err := os.MkdirTemp("", "xgft-servebench-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	s, err := serve.New(serve.Config{
		Fabrics: []serve.FabricSpec{{
			Name: benchFabricName, XGFT: benchXGFT, Scheme: benchScheme, K: benchK, Seed: 2012,
		}},
		Dir: dir,
	})
	if err != nil {
		return nil, err
	}
	defer s.Close()
	ctx := scale.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	s.Start(ctx)
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	base := Config{
		BaseURL:     hs.URL,
		Fabric:      benchFabricName,
		Endpoints:   benchEndpoints,
		Concurrency: conc,
		Duration:    dur,
		BatchSize:   256,
		Seed:        seed,
	}
	// The open-loop target stays intentionally below the closed-loop
	// ceiling so the schedule is sustainable and p99 measures queueing
	// jitter, not saturation collapse.
	openQPS := 2000.0
	scenarios := []scenario{
		{"single/closed", func(c *Config) { c.Mix = Mix{Path: 1} }},
		{"batch/closed", func(c *Config) { c.Mix = Mix{Batch: 1} }},
		{"batch/binary", func(c *Config) { c.Mix = Mix{Batch: 1}; c.Binary = true }},
		{"mixed/open", func(c *Config) {
			c.Mix = Mix{Path: 90, Batch: 5, MaxLoad: 5}
			c.TargetQPS = openQPS
		}},
		{"mixed/open+churn", func(c *Config) {
			c.Mix = Mix{Path: 90, Batch: 5, MaxLoad: 5}
			c.TargetQPS = openQPS
			c.ChurnPeriod = dur / 10
			c.ChurnNode = 3
		}},
	}

	tab := &experiments.Table{
		Title:  fmt.Sprintf("Serve bench: %v/scenario, %d workers (scale %s)", dur, conc, scale.Name),
		XLabel: "scenario",
		Columns: []string{"qps", "pairs/s", "p50 us", "p95 us", "p99 us", "max us",
			"errors", "429s", "churn evs"},
		Footnote: "open-loop rows schedule " + fmt.Sprintf("%.0f", openQPS) + " req/s and charge latency " +
			"from the scheduled send time (coordinated-omission safe); batch rows answer 256 pairs/request",
	}
	for i, sc := range scenarios {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		cfg := base
		cfg.Seed = seed + int64(i)
		sc.mut(&cfg)
		res, err := Run(ctx, cfg)
		if err != nil {
			return nil, fmt.Errorf("servebench: %s: %w", sc.name, err)
		}
		if res.Requests == 0 {
			return nil, fmt.Errorf("servebench: %s: no requests completed", sc.name)
		}
		tab.XValues = append(tab.XValues, sc.name)
		tab.Cells = append(tab.Cells, []experiments.Cell{
			{Mean: res.QPS, Samples: int(res.Requests)},
			{Mean: res.PairsPerSec},
			{Mean: float64(res.P50.Microseconds())},
			{Mean: float64(res.P95.Microseconds())},
			{Mean: float64(res.P99.Microseconds())},
			{Mean: float64(res.Max.Microseconds())},
			{Mean: float64(res.Errors)},
			{Mean: float64(res.Query429)},
			{Mean: float64(res.Churn)},
		})
	}
	return tab, nil
}
