package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	if a.N() != 0 || a.Mean() != 0 || a.Variance() != 0 {
		t.Fatal("zero value not clean")
	}
	if !math.IsInf(a.ConfidenceHalfWidth(0.99), 1) {
		t.Fatal("CI of empty accumulator should be +Inf")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	a.AddAll(xs)
	if a.N() != 8 {
		t.Fatalf("N=%d", a.N())
	}
	if got := a.Mean(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Mean=%g want 5", got)
	}
	// Sample variance of this classic data set is 32/7.
	if got := a.Variance(); math.Abs(got-32.0/7) > 1e-12 {
		t.Fatalf("Variance=%g want %g", got, 32.0/7)
	}
	if a.Min() != 2 || a.Max() != 9 || a.Sum() != 40 {
		t.Fatalf("min/max/sum wrong: %v %v %v", a.Min(), a.Max(), a.Sum())
	}
	if a.String() == "" {
		t.Fatal("String empty")
	}
}

// TestAccumulatorMatchesNaive cross-checks Welford against the naive
// two-pass formulas on random data.
func TestAccumulatorMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200) + 2
		xs := make([]float64, n)
		var a Accumulator
		for i := range xs {
			xs[i] = rng.NormFloat64()*10 + 100
			a.Add(xs[i])
		}
		mean := 0.0
		for _, x := range xs {
			mean += x
		}
		mean /= float64(n)
		v := 0.0
		for _, x := range xs {
			v += (x - mean) * (x - mean)
		}
		v /= float64(n - 1)
		return math.Abs(a.Mean()-mean) < 1e-9 && math.Abs(a.Variance()-v) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestMergeEquivalence: merging two accumulators must equal
// accumulating the concatenated stream.
func TestMergeEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var a, b, all Accumulator
		na, nb := rng.Intn(50), rng.Intn(50)
		for i := 0; i < na; i++ {
			x := rng.Float64() * 100
			a.Add(x)
			all.Add(x)
		}
		for i := 0; i < nb; i++ {
			x := rng.Float64()*100 - 50
			b.Add(x)
			all.Add(x)
		}
		a.Merge(&b)
		if a.N() != all.N() {
			return false
		}
		if all.N() == 0 {
			return true
		}
		return math.Abs(a.Mean()-all.Mean()) < 1e-9 &&
			math.Abs(a.Variance()-all.Variance()) < 1e-7 &&
			a.Min() == all.Min() && a.Max() == all.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestStudentTQuantile checks against standard table values.
func TestStudentTQuantile(t *testing.T) {
	cases := []struct {
		p    float64
		df   int
		want float64
	}{
		{0.975, 1, 12.706},
		{0.975, 10, 2.228},
		{0.995, 10, 3.169},
		{0.995, 30, 2.750},
		{0.975, 120, 1.980},
		{0.995, 1000, 2.581}, // ~normal 2.576
		{0.95, 5, 2.015},
	}
	for _, c := range cases {
		got := StudentTQuantile(c.p, c.df)
		if math.Abs(got-c.want) > 0.01*c.want {
			t.Errorf("t(%.3f, df=%d) = %.4f want %.4f", c.p, c.df, got, c.want)
		}
		// Symmetry.
		if neg := StudentTQuantile(1-c.p, c.df); math.Abs(neg+got) > 1e-6 {
			t.Errorf("quantile not symmetric: %g vs %g", neg, got)
		}
	}
	if StudentTQuantile(0.5, 7) != 0 {
		t.Error("median should be 0")
	}
	for _, f := range []func(){
		func() { StudentTQuantile(0, 5) },
		func() { StudentTQuantile(1, 5) },
		func() { StudentTQuantile(0.9, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// TestConfidenceCoverage: the 95% CI should cover the true mean about
// 95% of the time (loose bounds to keep the test robust).
func TestConfidenceCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const trials = 400
	covered := 0
	for tr := 0; tr < trials; tr++ {
		var a Accumulator
		for i := 0; i < 25; i++ {
			a.Add(rng.NormFloat64()*3 + 10)
		}
		hw := a.ConfidenceHalfWidth(0.95)
		if math.Abs(a.Mean()-10) <= hw {
			covered++
		}
	}
	if covered < trials*88/100 || covered > trials*99/100 {
		t.Fatalf("95%% CI covered %d/%d", covered, trials)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 5 {
		t.Fatal("extremes wrong")
	}
	if got := Quantile(xs, 0.5); got != 3 {
		t.Fatalf("median %g", got)
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Fatalf("q1 %g", got)
	}
	if got := Quantile(xs, 0.125); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("interpolated %g", got)
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Fatal("Quantile mutated input")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty Quantile should panic")
			}
		}()
		Quantile(nil, 0.5)
	}()
}

func TestMeanHelper(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil)")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean=%g", got)
	}
}

func TestSampleAdaptiveConverges(t *testing.T) {
	// Low-variance distribution: should converge quickly.
	res := SampleAdaptive(AdaptiveConfig{InitialSamples: 20, MaxSamples: 10000, RelPrecision: 0.05}, func(i int) float64 {
		rng := Stream(1, int64(i))
		return 100 + rng.Float64()
	})
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if math.Abs(res.Acc.Mean()-100.5) > 0.5 {
		t.Fatalf("mean %g", res.Acc.Mean())
	}
	if res.Acc.N() > 200 {
		t.Fatalf("used %d samples for an easy target", res.Acc.N())
	}
}

func TestSampleAdaptiveHitsCap(t *testing.T) {
	// Unbounded-variance-ish target with a tiny cap: must stop at cap.
	res := SampleAdaptive(AdaptiveConfig{InitialSamples: 10, MaxSamples: 40, RelPrecision: 1e-9}, func(i int) float64 {
		rng := Stream(2, int64(i))
		return rng.Float64() * 1000
	})
	if res.Converged {
		t.Fatal("should not converge")
	}
	if res.Acc.N() != 40 {
		t.Fatalf("sampled %d want 40", res.Acc.N())
	}
}

// TestSampleAdaptiveDeterministic: results must not depend on the
// parallelism level when samples derive their randomness from the
// index.
func TestSampleAdaptiveDeterministic(t *testing.T) {
	sample := func(i int) float64 {
		rng := Stream(7, int64(i))
		return rng.NormFloat64()*5 + 50
	}
	cfg1 := AdaptiveConfig{InitialSamples: 64, MaxSamples: 256, RelPrecision: 1e-9, Parallelism: 1}
	cfg8 := cfg1
	cfg8.Parallelism = 8
	r1 := SampleAdaptive(cfg1, sample)
	r8 := SampleAdaptive(cfg8, sample)
	if r1.Acc.N() != r8.Acc.N() || math.Abs(r1.Acc.Mean()-r8.Acc.Mean()) > 1e-12 {
		t.Fatalf("parallelism changed the result: %v vs %v", r1.Acc, r8.Acc)
	}
}

func TestStreamIndependence(t *testing.T) {
	a := Stream(1, 0)
	b := Stream(1, 1)
	c := Stream(1, 0)
	sameAC := true
	diffAB := false
	for i := 0; i < 16; i++ {
		va, vb, vc := a.Int63(), b.Int63(), c.Int63()
		if va != vc {
			sameAC = false
		}
		if va != vb {
			diffAB = true
		}
	}
	if !sameAC {
		t.Fatal("same (seed,stream) diverged")
	}
	if !diffAB {
		t.Fatal("different streams identical")
	}
}

func TestMix64Bijectivity(t *testing.T) {
	// Spot-check avalanche: flipping one input bit changes many output
	// bits, and no collisions among a small dense range.
	seen := make(map[uint64]bool)
	for i := uint64(0); i < 4096; i++ {
		h := Mix64(i)
		if seen[h] {
			t.Fatal("collision in Mix64 over dense range")
		}
		seen[h] = true
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 5) // buckets [0,5), [5,10) ... [45,50)
	for _, v := range []float64{1, 2, 7, 12, 49, 60, -1} {
		h.Observe(v)
	}
	if h.Total() != 7 {
		t.Fatalf("Total=%d", h.Total())
	}
	if h.Counts[0] != 3 { // 1, 2, and clamped -1
		t.Fatalf("bucket0=%d", h.Counts[0])
	}
	if h.Overflow != 1 {
		t.Fatalf("overflow=%d", h.Overflow)
	}
	if got := h.Mean(); math.Abs(got-130.0/7) > 1e-12 {
		t.Fatalf("Mean=%g", got)
	}
	if p := h.Percentile(50); p <= 0 || p > 50 {
		t.Fatalf("p50=%g", p)
	}
	if p := h.Percentile(100); p != 50 {
		t.Fatalf("p100=%g want 50 (overflow reports range edge)", p)
	}
	var empty Histogram
	empty.BucketWidth = 1
	empty.Counts = make([]int64, 1)
	if empty.Percentile(50) != 0 || empty.Mean() != 0 {
		t.Fatal("empty histogram percentile/mean")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewHistogram(0,1) should panic")
			}
		}()
		NewHistogram(0, 1)
	}()
}
