package stats

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestDurationHistIndexRoundTrip(t *testing.T) {
	// Every value's bucket upper edge must be >= the value and within
	// 1/durSubBuckets relative error.
	vals := []int64{0, 1, 5, 31, 32, 33, 100, 999, 1 << 20, (1 << 20) + 12345, 1e9, 5e9, 1 << 40}
	for _, v := range vals {
		idx := durIndex(v)
		up := durValue(idx)
		if up < v {
			t.Errorf("value %d: bucket edge %d below value", v, up)
		}
		if v >= durSubBuckets {
			if rel := float64(up-v) / float64(v); rel > 2.0/durSubBuckets {
				t.Errorf("value %d: bucket edge %d off by %.3f", v, up, rel)
			}
		}
		// Monotone: the next bucket's edge is strictly larger.
		if durValue(idx+1) <= up {
			t.Errorf("bucket %d: edges not monotone", idx)
		}
	}
}

func TestDurationHistQuantiles(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h DurationHist
	n := 20000
	raw := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		// Log-uniform latencies between 1µs and 100ms.
		v := time.Duration(float64(time.Microsecond) * pow10(rng.Float64()*5))
		h.Observe(v)
		raw = append(raw, float64(v))
	}
	sort.Float64s(raw)
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 0.999} {
		exact := raw[int(q*float64(n-1))]
		got := float64(h.Quantile(q))
		if got < exact*0.97 || got > exact*1.10 {
			t.Errorf("q=%.3f: hist %v, exact %v (ratio %.3f)", q, time.Duration(got), time.Duration(exact), got/exact)
		}
	}
	if h.Count() != int64(n) {
		t.Errorf("count %d, want %d", h.Count(), n)
	}
	if h.Quantile(1) != h.Max() {
		t.Errorf("q=1 (%v) != max (%v)", h.Quantile(1), h.Max())
	}
}

func pow10(x float64) float64 {
	v := 1.0
	for x >= 1 {
		v *= 10
		x--
	}
	// Linear interpolation is fine for test data spread.
	return v * (1 + 9*x/1)
}

func TestDurationHistMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var all, a, b DurationHist
	for i := 0; i < 5000; i++ {
		v := time.Duration(rng.Int63n(int64(time.Second)))
		all.Observe(v)
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
	}
	a.Merge(&b)
	if a.Count() != all.Count() || a.Sum() != all.Sum() || a.Max() != all.Max() {
		t.Fatalf("merge totals differ: %d/%v/%v vs %d/%v/%v",
			a.Count(), a.Sum(), a.Max(), all.Count(), all.Sum(), all.Max())
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if a.Quantile(q) != all.Quantile(q) {
			t.Errorf("q=%.2f: merged %v, sequential %v", q, a.Quantile(q), all.Quantile(q))
		}
	}
}

func TestDurationHistEmptyAndNegative(t *testing.T) {
	var h DurationHist
	if h.Quantile(0.99) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Error("empty histogram should report zeros")
	}
	h.Observe(-time.Second) // clamps, does not panic
	if h.Count() != 1 || h.Quantile(0.5) != 0 {
		t.Errorf("negative observation: count %d q50 %v", h.Count(), h.Quantile(0.5))
	}
}

func TestDurationHistObserveAllocs(t *testing.T) {
	var h DurationHist
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(123456 * time.Nanosecond)
	})
	if allocs != 0 {
		t.Errorf("Observe allocates %.1f/op, want 0", allocs)
	}
}
