package stats

import (
	"math"
	"runtime"
	"sync"
)

// AdaptiveConfig controls the adaptive sampling protocol used by the
// paper for permutation experiments: draw an initial batch of samples,
// compute the confidence interval at the configured level, and keep
// doubling the sample count until the interval half-width falls below
// RelPrecision times the running mean (or MaxSamples is reached).
type AdaptiveConfig struct {
	// InitialSamples is the size of the first batch. Default 50.
	InitialSamples int
	// MaxSamples caps the total number of samples. Default 12800.
	MaxSamples int
	// Confidence is the confidence level for the interval. Default 0.99.
	Confidence float64
	// RelPrecision is the target half-width relative to the mean.
	// Default 0.01 (1% as in the paper's protocol).
	RelPrecision float64
	// Parallelism bounds the number of concurrent workers. Default
	// runtime.GOMAXPROCS(0).
	Parallelism int
}

// WithDefaults returns the config with every zero field replaced by
// its documented default — the exact config SampleAdaptive runs under.
// Exported for callers that replicate the adaptive protocol around a
// batched sampler (see flow's block-compiled experiment runner) and
// must match SampleAdaptive's decisions bit for bit.
func (c AdaptiveConfig) WithDefaults() AdaptiveConfig { return c.withDefaults() }

func (c AdaptiveConfig) withDefaults() AdaptiveConfig {
	if c.InitialSamples <= 0 {
		c.InitialSamples = 50
	}
	if c.MaxSamples <= 0 {
		c.MaxSamples = 12800
	}
	if c.MaxSamples < c.InitialSamples {
		c.MaxSamples = c.InitialSamples
	}
	if c.Confidence <= 0 || c.Confidence >= 1 {
		c.Confidence = 0.99
	}
	if c.RelPrecision <= 0 {
		c.RelPrecision = 0.01
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	return c
}

// AdaptiveResult reports the outcome of an adaptive sampling run.
type AdaptiveResult struct {
	Acc       Accumulator
	Converged bool    // interval reached the requested precision
	HalfWidth float64 // final confidence-interval half-width
}

// SampleAdaptive runs sample(i) for sample indices i = 0, 1, 2, ...
// following the adaptive protocol in cfg, fanning batches out over
// goroutines. sample must be safe for concurrent use and deterministic
// in its index (derive per-sample RNG state from i) so results are
// independent of scheduling.
func SampleAdaptive(cfg AdaptiveConfig, sample func(i int) float64) AdaptiveResult {
	cfg = cfg.withDefaults()
	var acc Accumulator
	next := 0
	batch := cfg.InitialSamples
	for {
		if next+batch > cfg.MaxSamples {
			batch = cfg.MaxSamples - next
		}
		if batch > 0 {
			vals := sampleParallel(next, batch, cfg.Parallelism, sample)
			acc.AddAll(vals)
			next += batch
		}
		rel := acc.RelativeCI(cfg.Confidence)
		if rel <= cfg.RelPrecision {
			return AdaptiveResult{Acc: acc, Converged: true, HalfWidth: acc.ConfidenceHalfWidth(cfg.Confidence)}
		}
		if next >= cfg.MaxSamples {
			hw := acc.ConfidenceHalfWidth(cfg.Confidence)
			if math.IsInf(hw, 1) {
				hw = 0
			}
			return AdaptiveResult{Acc: acc, Converged: false, HalfWidth: hw}
		}
		// Double the total sample count, as in the paper.
		batch = next
	}
}

// sampleParallel evaluates sample(start)..sample(start+n-1) using at
// most parallelism workers and returns the values in index order.
func sampleParallel(start, n, parallelism int, sample func(i int) float64) []float64 {
	vals := make([]float64, n)
	if parallelism > n {
		parallelism = n
	}
	if parallelism <= 1 {
		for i := 0; i < n; i++ {
			vals[i] = sample(start + i)
		}
		return vals
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				vals[i-start] = sample(i)
			}
		}()
	}
	for i := start; i < start+n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return vals
}
