package stats

import (
	"math"
	"sync"
)

// AdaptiveVecResult reports a vector adaptive sampling run: one
// accumulator, convergence flag and confidence-interval half-width per
// component, exactly as |dim| scalar SampleAdaptive runs would report.
type AdaptiveVecResult struct {
	Accs       []Accumulator
	Converged  []bool
	HalfWidths []float64
}

// SampleAdaptiveVec runs the adaptive protocol of SampleAdaptive over a
// vector of jointly sampled components with common random numbers:
// sample(i, out, active) must fill out[j] for every j with active[j]
// true, deriving all randomness from the sample index i alone so that
// results are independent of scheduling (components of one sample may
// share the expensive common state — e.g. one traffic matrix serving a
// whole K grid).
//
// Every component follows exactly the scalar schedule (initial batch,
// doubling, cap) against the same sample-index stream. A component
// whose confidence interval reaches the target after a batch is frozen:
// its accumulator stops at precisely the sample count a scalar run over
// the same stream would have stopped at, so per-component means, sample
// counts, half-widths and convergence flags are identical to |dim|
// independent scalar runs — the vector run merely evaluates the shared
// sample once instead of |dim| times, and stops evaluating a component
// as soon as it is frozen. The run ends when every component is frozen.
func SampleAdaptiveVec(cfg AdaptiveConfig, dim int, sample func(i int, out []float64, active []bool)) AdaptiveVecResult {
	cfg = cfg.withDefaults()
	res := AdaptiveVecResult{
		Accs:       make([]Accumulator, dim),
		Converged:  make([]bool, dim),
		HalfWidths: make([]float64, dim),
	}
	if dim == 0 {
		return res
	}
	active := make([]bool, dim)
	for j := range active {
		active[j] = true
	}
	nActive := dim
	next := 0
	batch := cfg.InitialSamples
	for nActive > 0 {
		if next+batch > cfg.MaxSamples {
			batch = cfg.MaxSamples - next
		}
		if batch > 0 {
			vals := sampleVecParallel(next, batch, dim, cfg.Parallelism, active, sample)
			for b := 0; b < batch; b++ {
				row := vals[b*dim : (b+1)*dim]
				for j, v := range row {
					if active[j] {
						res.Accs[j].Add(v)
					}
				}
			}
			next += batch
		}
		for j := 0; j < dim; j++ {
			if !active[j] {
				continue
			}
			if rel := res.Accs[j].RelativeCI(cfg.Confidence); rel <= cfg.RelPrecision {
				res.Converged[j] = true
				res.HalfWidths[j] = res.Accs[j].ConfidenceHalfWidth(cfg.Confidence)
				active[j] = false
				nActive--
				continue
			}
			if next >= cfg.MaxSamples {
				hw := res.Accs[j].ConfidenceHalfWidth(cfg.Confidence)
				if math.IsInf(hw, 1) {
					hw = 0
				}
				res.HalfWidths[j] = hw
				active[j] = false
				nActive--
			}
		}
		// Double the total sample count, as in the paper.
		batch = next
	}
	return res
}

// sampleVecParallel evaluates one batch of vector samples using at most
// parallelism workers, returning the dim-strided values in index order.
// Workers only read active; it is mutated between batches.
func sampleVecParallel(start, n, dim, parallelism int, active []bool, sample func(i int, out []float64, active []bool)) []float64 {
	vals := make([]float64, n*dim)
	if parallelism > n {
		parallelism = n
	}
	if parallelism <= 1 {
		for i := 0; i < n; i++ {
			sample(start+i, vals[i*dim:(i+1)*dim], active)
		}
		return vals
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				sample(i, vals[(i-start)*dim:(i-start+1)*dim], active)
			}
		}()
	}
	for i := start; i < start+n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return vals
}
