package stats

import (
	"math"
	"sync/atomic"
	"testing"
)

// vecComponent deterministically synthesizes a sample stream per
// component with very different variances, so components converge
// after different numbers of batches.
func vecComponent(j, i int) float64 {
	r := CheapStream(int64(j)*1009, int64(i))
	switch j {
	case 0:
		return 10 + 0.01*r.Float64() // converges in the first batch
	case 1:
		return 5 + 2*r.Float64()
	default:
		return 1 + 10*r.Float64() // may hit the cap
	}
}

// TestSampleAdaptiveVecMatchesScalar is the contract the multi-K
// pipeline rests on: every component of a vector run must stop at
// exactly the sample count, mean, half-width and convergence flag of
// an independent scalar run over the same sample-index stream.
func TestSampleAdaptiveVecMatchesScalar(t *testing.T) {
	cfg := AdaptiveConfig{InitialSamples: 10, MaxSamples: 80, RelPrecision: 0.05, Parallelism: 3}
	const dim = 3
	vec := SampleAdaptiveVec(cfg, dim, func(i int, out []float64, active []bool) {
		for j := 0; j < dim; j++ {
			if active[j] {
				out[j] = vecComponent(j, i)
			}
		}
	})
	sawDifferentN := false
	for j := 0; j < dim; j++ {
		ref := SampleAdaptive(cfg, func(i int) float64 { return vecComponent(j, i) })
		if got, want := vec.Accs[j].N(), ref.Acc.N(); got != want {
			t.Errorf("component %d: vector sampled %d, scalar %d", j, got, want)
		}
		if vec.Accs[j].Mean() != ref.Acc.Mean() {
			t.Errorf("component %d: mean %v vs scalar %v", j, vec.Accs[j].Mean(), ref.Acc.Mean())
		}
		if vec.HalfWidths[j] != ref.HalfWidth {
			t.Errorf("component %d: half-width %v vs scalar %v", j, vec.HalfWidths[j], ref.HalfWidth)
		}
		if vec.Converged[j] != ref.Converged {
			t.Errorf("component %d: converged %v vs scalar %v", j, vec.Converged[j], ref.Converged)
		}
		if j > 0 && vec.Accs[j].N() != vec.Accs[0].N() {
			sawDifferentN = true
		}
	}
	if !sawDifferentN {
		t.Error("test is vacuous: all components converged at the same batch; adjust vecComponent variances")
	}
}

// TestSampleAdaptiveVecFreezing checks that frozen components are not
// evaluated again: the per-component call count must equal the
// component's final sample count.
func TestSampleAdaptiveVecFreezing(t *testing.T) {
	cfg := AdaptiveConfig{InitialSamples: 10, MaxSamples: 80, RelPrecision: 0.05, Parallelism: 1}
	const dim = 3
	var calls [dim]int64
	vec := SampleAdaptiveVec(cfg, dim, func(i int, out []float64, active []bool) {
		for j := 0; j < dim; j++ {
			if active[j] {
				atomic.AddInt64(&calls[j], 1)
				out[j] = vecComponent(j, i)
			}
		}
	})
	for j := 0; j < dim; j++ {
		if got, want := calls[j], int64(vec.Accs[j].N()); got != want {
			t.Errorf("component %d: %d evaluations for %d samples", j, got, want)
		}
	}
}

// TestSampleAdaptiveVecEdgeCases covers dim 0 and a component whose
// variance is exactly zero (half-width 0 after the first batch).
func TestSampleAdaptiveVecEdgeCases(t *testing.T) {
	res := SampleAdaptiveVec(AdaptiveConfig{}, 0, func(i int, out []float64, active []bool) {
		t.Fatal("sample called for dim 0")
	})
	if len(res.Accs) != 0 {
		t.Fatalf("dim 0: %d accumulators", len(res.Accs))
	}
	cfg := AdaptiveConfig{InitialSamples: 5, MaxSamples: 20, RelPrecision: 0.01, Parallelism: 1}
	res = SampleAdaptiveVec(cfg, 1, func(i int, out []float64, active []bool) { out[0] = 3 })
	if res.Accs[0].N() != 5 || !res.Converged[0] || res.Accs[0].Mean() != 3 {
		t.Fatalf("constant component: %+v", res)
	}
	if !(res.HalfWidths[0] == 0 || math.IsNaN(res.HalfWidths[0]) == false) {
		t.Fatalf("constant component half-width: %v", res.HalfWidths[0])
	}
}
