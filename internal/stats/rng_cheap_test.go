package stats

import "testing"

// TestCheapStreamGolden pins the splitmix-backed stream's output so the
// derived routing randomness cannot drift silently across revisions.
func TestCheapStreamGolden(t *testing.T) {
	s := CheapStream(3, 5)
	want := []int64{6574120187858860325, 7270311994819056925, 3714056596174980537}
	for i, w := range want {
		if got := s.Int63(); got != w {
			t.Fatalf("CheapStream(3,5) draw %d: %d, want %d", i, got, w)
		}
	}
}

// TestCheapStreamIndependence: distinct (seed, stream) pairs must give
// distinct sequences, and equal pairs identical ones.
func TestCheapStreamIndependence(t *testing.T) {
	a, b := CheapStream(1, 2), CheapStream(1, 2)
	for i := 0; i < 8; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same (seed,stream) diverged")
		}
	}
	c, d := CheapStream(1, 3), CheapStream(2, 2)
	same := true
	for i := 0; i < 8; i++ {
		if c.Int63() != d.Int63() {
			same = false
		}
	}
	if same {
		t.Fatal("distinct (seed,stream) pairs produced identical draws")
	}
}
