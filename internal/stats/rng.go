package stats

import "math/rand"

// Stream derives a deterministic, well-mixed RNG for the given
// (seed, stream) pair. Distinct stream indices yield independent
// sequences even for adjacent seeds, which lets parallel sample workers
// draw reproducible randomness regardless of goroutine scheduling.
func Stream(seed int64, stream int64) *rand.Rand {
	return rand.New(rand.NewSource(int64(Mix64(uint64(seed) ^ Mix64(uint64(stream)+0x9e3779b97f4a7c15)))))
}

// Mix64 is the SplitMix64 finalizer: a bijective mixing function over
// 64-bit integers with excellent avalanche behaviour.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SplitMix is a SplitMix64 generator implementing rand.Source64. Unlike
// the standard library's default source it carries no seeding loop and
// only eight bytes of state, so constructing one per (seed, stream)
// pair is essentially free — the property the per-pair RNG streams of
// randomized routing schemes rely on.
type SplitMix struct{ state uint64 }

// Seed implements rand.Source.
func (s *SplitMix) Seed(seed int64) { s.state = uint64(seed) }

// Uint64 implements rand.Source64.
func (s *SplitMix) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	x := s.state
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Int63 implements rand.Source.
func (s *SplitMix) Int63() int64 { return int64(s.Uint64() >> 1) }

// SeedStream positions the generator at the start of the deterministic
// (seed, stream) sequence — the one CheapStream(seed, stream) draws.
// Reseeding in place lets a hot loop reuse one generator across
// millions of streams without allocating.
func (s *SplitMix) SeedStream(seed, stream int64) {
	s.state = Mix64(uint64(seed) ^ Mix64(uint64(stream)+0x9e3779b97f4a7c15))
}

// CheapStream is Stream over a SplitMix source: the same well-mixed
// (seed, stream) derivation, but with O(1) construction cost instead of
// the default source's ~600-word seeding pass. Use it on hot paths that
// derive huge numbers of short-lived streams (e.g. one per SD pair).
// The sequences differ from Stream's for the same arguments.
func CheapStream(seed, stream int64) *rand.Rand {
	s := &SplitMix{}
	s.SeedStream(seed, stream)
	return rand.New(s)
}

// Histogram is a fixed-width bucket histogram over [0, BucketWidth*len)
// with an overflow bucket, used for message-latency distributions.
type Histogram struct {
	BucketWidth float64
	Counts      []int64
	Overflow    int64
	total       int64
	sum         float64
}

// NewHistogram creates a histogram with n buckets of the given width.
func NewHistogram(n int, width float64) *Histogram {
	if n <= 0 || width <= 0 {
		panic("stats: NewHistogram requires positive bucket count and width")
	}
	return &Histogram{BucketWidth: width, Counts: make([]int64, n)}
}

// Observe records one value.
func (h *Histogram) Observe(x float64) {
	h.total++
	h.sum += x
	i := int(x / h.BucketWidth)
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		h.Overflow++
		return
	}
	h.Counts[i]++
}

// Total returns the number of observations.
func (h *Histogram) Total() int64 { return h.total }

// Mean returns the mean of all observed values (exact, not bucketed).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Percentile returns an upper bound for the p-th percentile (0<p<=100)
// using bucket boundaries. Overflowed observations report the histogram
// range upper edge.
func (h *Histogram) Percentile(p float64) float64 {
	if h.total == 0 {
		return 0
	}
	target := int64(p / 100 * float64(h.total))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			return float64(i+1) * h.BucketWidth
		}
	}
	return float64(len(h.Counts)) * h.BucketWidth
}
