// Package stats provides the statistical machinery used by the
// simulation experiments: running mean/variance accumulators,
// Student-t confidence intervals, the paper's adaptive permutation
// sampling protocol (sample until the 99% confidence interval is
// smaller than a fraction of the mean), histograms for latency
// distributions, and deterministic per-stream random number sources.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Accumulator maintains running statistics over a stream of float64
// observations using Welford's numerically stable algorithm. The zero
// value is ready to use.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
	sum  float64
}

// Add records one observation.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	a.sum += x
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// AddAll records every observation in xs.
func (a *Accumulator) AddAll(xs []float64) {
	for _, x := range xs {
		a.Add(x)
	}
}

// N returns the number of observations recorded so far.
func (a *Accumulator) N() int { return a.n }

// Mean returns the sample mean, or 0 if no observations were recorded.
func (a *Accumulator) Mean() float64 { return a.mean }

// Sum returns the sum of all observations.
func (a *Accumulator) Sum() float64 { return a.sum }

// Min returns the smallest observation, or 0 if none were recorded.
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest observation, or 0 if none were recorded.
func (a *Accumulator) Max() float64 { return a.max }

// Variance returns the unbiased sample variance (n-1 denominator).
// It returns 0 when fewer than two observations were recorded.
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// StdErr returns the standard error of the mean.
func (a *Accumulator) StdErr() float64 {
	if a.n == 0 {
		return 0
	}
	return a.StdDev() / math.Sqrt(float64(a.n))
}

// ConfidenceHalfWidth returns the half-width of the confidence interval
// for the mean at the given confidence level (e.g. 0.99), using the
// Student-t distribution with n-1 degrees of freedom. It returns +Inf
// when fewer than two observations were recorded.
func (a *Accumulator) ConfidenceHalfWidth(level float64) float64 {
	if a.n < 2 {
		return math.Inf(1)
	}
	t := StudentTQuantile(1-(1-level)/2, a.n-1)
	return t * a.StdErr()
}

// RelativeCI returns ConfidenceHalfWidth(level) / |Mean|, the relative
// precision of the estimate. It returns +Inf for a zero mean or fewer
// than two observations.
func (a *Accumulator) RelativeCI(level float64) float64 {
	m := math.Abs(a.Mean())
	if m == 0 {
		return math.Inf(1)
	}
	return a.ConfidenceHalfWidth(level) / m
}

// String summarizes the accumulator for debugging output.
func (a *Accumulator) String() string {
	return fmt.Sprintf("n=%d mean=%.6g sd=%.6g min=%.6g max=%.6g",
		a.n, a.Mean(), a.StdDev(), a.min, a.max)
}

// Merge folds the observations summarized by b into a, as if every
// observation recorded in b had been recorded in a (Chan et al.
// parallel variance combination).
func (a *Accumulator) Merge(b *Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	n := a.n + b.n
	delta := b.mean - a.mean
	mean := a.mean + delta*float64(b.n)/float64(n)
	m2 := a.m2 + b.m2 + delta*delta*float64(a.n)*float64(b.n)/float64(n)
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	a.n, a.mean, a.m2 = n, mean, m2
	a.sum += b.sum
}

// StudentTQuantile returns the p-quantile (0 < p < 1) of the Student-t
// distribution with df degrees of freedom. It inverts the regularized
// incomplete beta function by bisection on the CDF, which is plenty
// accurate (and fast) for confidence-interval use.
func StudentTQuantile(p float64, df int) float64 {
	if df <= 0 {
		panic("stats: StudentTQuantile requires df >= 1")
	}
	if p <= 0 || p >= 1 {
		panic("stats: StudentTQuantile requires 0 < p < 1")
	}
	if p == 0.5 {
		return 0
	}
	// Symmetry: solve for p > 0.5 and negate as needed.
	if p < 0.5 {
		return -StudentTQuantile(1-p, df)
	}
	lo, hi := 0.0, 1.0
	for studentTCDF(hi, df) < p {
		hi *= 2
		if hi > 1e8 {
			break
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if studentTCDF(mid, df) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// studentTCDF returns P(T <= t) for the Student-t distribution with df
// degrees of freedom, via the regularized incomplete beta function.
func studentTCDF(t float64, df int) float64 {
	if t == 0 {
		return 0.5
	}
	v := float64(df)
	x := v / (v + t*t)
	ib := regIncBeta(v/2, 0.5, x)
	if t > 0 {
		return 1 - ib/2
	}
	return ib / 2
}

// regIncBeta computes the regularized incomplete beta function
// I_x(a, b) using the continued-fraction expansion (Numerical Recipes
// style, Lentz's method).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta := lgamma(a) + lgamma(b) - lgamma(a+b)
	front := math.Exp(a*math.Log(x)+b*math.Log(1-x)-lbeta) / a
	if x > (a+1)/(a+b+2) {
		// Use the symmetry relation for faster convergence.
		return 1 - regIncBeta(b, a, 1-x)
	}
	const eps = 1e-14
	const tiny = 1e-300
	f, c, d := 1.0, 1.0, 0.0
	for i := 0; i <= 300; i++ {
		m := i / 2
		var num float64
		switch {
		case i == 0:
			num = 1
		case i%2 == 0:
			num = float64(m) * (b - float64(m)) * x / ((a + 2*float64(m) - 1) * (a + 2*float64(m)))
		default:
			num = -(a + float64(m)) * (a + b + float64(m)) * x / ((a + 2*float64(m)) * (a + 2*float64(m) + 1))
		}
		d = 1 + num*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		d = 1 / d
		c = 1 + num/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		cd := c * d
		f *= cd
		if math.Abs(1-cd) < eps {
			break
		}
	}
	return front * (f - 1)
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. xs need not be sorted; the
// slice is not modified. It panics on an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
