package stats

import (
	"math/bits"
	"time"
)

// DurationHist is a log-linear latency histogram in the HDR spirit:
// values bucket by their binary exponent, and each exponent splits into
// durSubBuckets linear sub-buckets, so every recorded duration is
// reproduced by Quantile to within 1/durSubBuckets relative error
// (~3%) across the full int64 nanosecond range. Observe is a shift,
// a mask and one increment — no allocation, no branching on magnitude
// classes — so a load-generator worker can record every response.
//
// A DurationHist is NOT safe for concurrent use; give each worker its
// own and Merge them when the run ends (merging is exact: buckets are
// positional).
type DurationHist struct {
	counts [64 * durSubBuckets]int64
	n      int64
	sum    int64
	max    int64
}

const (
	durSubShift   = 5 // log2(durSubBuckets)
	durSubBuckets = 1 << durSubShift
)

// durIndex maps a non-negative nanosecond value to its bucket. Values
// below 2·durSubBuckets index linearly (exact buckets); above that,
// the leading bit picks the row and the durSubShift bits below it the
// linear sub-bucket, so indices stay contiguous across the boundary.
func durIndex(v int64) int {
	if v < 2*durSubBuckets {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 // position of the leading bit
	sub := int((v >> (uint(exp) - durSubShift)) & (durSubBuckets - 1))
	return (exp-durSubShift)*durSubBuckets + sub + durSubBuckets
}

// durValue is the upper-edge nanosecond value of a bucket, the inverse
// of durIndex up to sub-bucket resolution.
func durValue(idx int) int64 {
	if idx < 2*durSubBuckets {
		return int64(idx)
	}
	exp := uint(idx>>durSubShift) + durSubShift - 1
	sub := int64(idx & (durSubBuckets - 1))
	step := int64(1) << (exp - durSubShift)
	return int64(1)<<exp + (sub+1)*step - 1
}

// Observe records one duration. Negative durations clamp to zero.
func (h *DurationHist) Observe(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.counts[durIndex(v)]++
	h.n++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *DurationHist) Count() int64 { return h.n }

// Sum returns the total of all observations.
func (h *DurationHist) Sum() time.Duration { return time.Duration(h.sum) }

// Max returns the exact largest observation (not bucketed).
func (h *DurationHist) Max() time.Duration { return time.Duration(h.max) }

// Mean returns the average observation, 0 when empty.
func (h *DurationHist) Mean() time.Duration {
	if h.n == 0 {
		return 0
	}
	return time.Duration(h.sum / h.n)
}

// Merge folds o into h (bucket-exact; o is unchanged).
func (h *DurationHist) Merge(o *DurationHist) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.n += o.n
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// Reset clears the histogram for reuse.
func (h *DurationHist) Reset() {
	*h = DurationHist{}
}

// Quantile returns the upper edge of the bucket holding the
// q-quantile observation (q clamped to [0,1]); the true value is at
// most one sub-bucket width (~3%) below the returned one. The top
// quantile is capped at Max, which is tracked exactly. Zero when
// empty.
func (h *DurationHist) Quantile(q float64) time.Duration {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	target := int64(q * float64(h.n))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			v := durValue(i)
			if v > h.max {
				v = h.max
			}
			return time.Duration(v)
		}
	}
	return time.Duration(h.max)
}
