package stats

import (
	"math"
	"math/rand"
	"testing"
)

// TestMergePropertyRandomSplits is the property test for Merge: for
// random data split at random points into several accumulators, merging
// them must agree with a single accumulator fed every observation
// sequentially — same N, sum, min, max, mean and variance (up to
// floating-point tolerance). This is the contract the parallel
// experiment cells rely on when they fold per-cell accumulators.
func TestMergePropertyRandomSplits(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	relClose := func(got, want float64) bool {
		if got == want {
			return true
		}
		diff := math.Abs(got - want)
		scale := math.Max(math.Abs(got), math.Abs(want))
		return diff <= 1e-9*math.Max(scale, 1)
	}
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(400)
		xs := make([]float64, n)
		for i := range xs {
			switch trial % 3 {
			case 0: // well-scaled
				xs[i] = rng.NormFloat64()
			case 1: // large offset, small spread — stresses cancellation
				xs[i] = 1e6 + rng.Float64()
			default: // mixed signs and magnitudes
				xs[i] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(6)))
			}
		}

		var seq Accumulator
		seq.AddAll(xs)

		// Split xs into 1..8 contiguous parts (some possibly empty),
		// accumulate each separately, and merge in order.
		parts := 1 + rng.Intn(8)
		cuts := make([]int, parts+1)
		cuts[parts] = n
		for i := 1; i < parts; i++ {
			cuts[i] = rng.Intn(n + 1)
		}
		// Sorting the interior cut points keeps the parts contiguous.
		for i := 1; i < parts; i++ {
			for j := i + 1; j < parts; j++ {
				if cuts[j] < cuts[i] {
					cuts[i], cuts[j] = cuts[j], cuts[i]
				}
			}
		}
		var merged Accumulator
		for i := 0; i < parts; i++ {
			var part Accumulator
			part.AddAll(xs[cuts[i]:cuts[i+1]])
			merged.Merge(&part)
		}

		if merged.N() != seq.N() {
			t.Fatalf("trial %d: N = %d, want %d", trial, merged.N(), seq.N())
		}
		if merged.Min() != seq.Min() || merged.Max() != seq.Max() {
			t.Fatalf("trial %d: min/max = %g/%g, want %g/%g",
				trial, merged.Min(), merged.Max(), seq.Min(), seq.Max())
		}
		if !relClose(merged.Sum(), seq.Sum()) {
			t.Fatalf("trial %d: sum = %g, want %g", trial, merged.Sum(), seq.Sum())
		}
		if !relClose(merged.Mean(), seq.Mean()) {
			t.Fatalf("trial %d: mean = %g, want %g", trial, merged.Mean(), seq.Mean())
		}
		if !relClose(merged.Variance(), seq.Variance()) {
			t.Fatalf("trial %d: variance = %g, want %g (n=%d parts=%d)",
				trial, merged.Variance(), seq.Variance(), n, parts)
		}
	}
}

// TestMergeEmptySides pins Merge's edge cases: merging an empty
// accumulator in either direction must not disturb (or must adopt) the
// other side's statistics.
func TestMergeEmptySides(t *testing.T) {
	var full Accumulator
	full.AddAll([]float64{3, 1, 2})

	got := full // copy
	var empty Accumulator
	got.Merge(&empty)
	if got != full {
		t.Errorf("merging an empty accumulator changed stats: %v, want %v", &got, &full)
	}

	var adopt Accumulator
	adopt.Merge(&full)
	if adopt != full {
		t.Errorf("empty.Merge(full) = %v, want %v", &adopt, &full)
	}
}

// TestAccumulatorZeroValueSemantics pins the documented behavior of an
// accumulator with no observations: Min, Max, Mean, Sum and Variance
// all return 0 (not NaN or ±Inf), and the first Add initializes min and
// max to the observation rather than comparing against the zero value.
func TestAccumulatorZeroValueSemantics(t *testing.T) {
	var a Accumulator
	if a.Min() != 0 || a.Max() != 0 {
		t.Errorf("empty Min/Max = %g/%g, want 0/0", a.Min(), a.Max())
	}
	if a.Mean() != 0 || a.Sum() != 0 || a.Variance() != 0 {
		t.Errorf("empty Mean/Sum/Variance = %g/%g/%g, want 0/0/0", a.Mean(), a.Sum(), a.Variance())
	}

	// A first observation above zero must set Min; below zero must set
	// Max. A fresh zero-value comparison would get both wrong.
	var pos Accumulator
	pos.Add(5)
	if pos.Min() != 5 || pos.Max() != 5 {
		t.Errorf("after Add(5): Min/Max = %g/%g, want 5/5", pos.Min(), pos.Max())
	}
	var neg Accumulator
	neg.Add(-5)
	if neg.Min() != -5 || neg.Max() != -5 {
		t.Errorf("after Add(-5): Min/Max = %g/%g, want -5/-5", neg.Min(), neg.Max())
	}
}
