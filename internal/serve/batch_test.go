package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

type batchJSONResponse struct {
	Gen       uint64 `json:"gen"`
	Staleness uint64 `json:"staleness"`
	Degraded  bool   `json:"degraded"`
	Mode      string `json:"mode"`
	Count     int    `json:"count"`
	Results   []struct {
		Src   int   `json:"src"`
		Dst   int   `json:"dst"`
		Paths []int `json:"paths"`
	} `json:"results"`
}

func postBatch(t *testing.T, url, accept string, body string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest("POST", url+"/fabrics/edge/paths", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// TestBatchMatchesSingleQueries: every pair in a batch answer equals
// the single-pair /path answer, in both JSON and binary encodings, and
// K-limiting takes the compiled prefix.
func TestBatchMatchesSingleQueries(t *testing.T) {
	s, hs := newTestServer(t, Config{})
	f := s.Fabric("edge")
	n := f.Topology().NumProcessors()

	var pairs [][]int
	for src := 0; src < n; src += 3 {
		for dst := 0; dst < n; dst += 2 {
			pairs = append(pairs, []int{src, dst})
		}
	}
	body, _ := json.Marshal(map[string]any{"pairs": pairs})

	code, data := postBatch(t, hs.URL, "", string(body))
	if code != 200 {
		t.Fatalf("batch: %d %s", code, data)
	}
	var br batchJSONResponse
	if err := json.Unmarshal(data, &br); err != nil {
		t.Fatalf("batch response not JSON: %v\n%s", err, data)
	}
	if br.Count != len(pairs) || len(br.Results) != len(pairs) {
		t.Fatalf("count %d, %d results, want %d", br.Count, len(br.Results), len(pairs))
	}
	if br.Mode != "compiled" || br.Degraded {
		t.Fatalf("mode %q degraded %v on a healthy fabric", br.Mode, br.Degraded)
	}

	// Binary frame for the same batch.
	code, bin := postBatch(t, hs.URL, BinaryBatchContentType, string(body))
	if code != 200 {
		t.Fatalf("binary batch: %d", code)
	}
	fr, err := DecodeBatchFrame(bin)
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.Paths) != len(pairs) || fr.Gen != br.Gen || fr.Degraded != br.Degraded {
		t.Fatalf("binary frame mismatch: %d pairs gen %d", len(fr.Paths), fr.Gen)
	}

	for i, p := range pairs {
		var pr pathResponse
		getJSON(t, fmt.Sprintf("%s/fabrics/edge/path?src=%d&dst=%d", hs.URL, p[0], p[1]), &pr)
		if br.Results[i].Src != p[0] || br.Results[i].Dst != p[1] {
			t.Fatalf("pair %d: got (%d,%d) want (%d,%d)", i, br.Results[i].Src, br.Results[i].Dst, p[0], p[1])
		}
		if fmt.Sprint(br.Results[i].Paths) != fmt.Sprint(pr.Paths) {
			t.Fatalf("pair (%d,%d): batch %v single %v", p[0], p[1], br.Results[i].Paths, pr.Paths)
		}
		if len(fr.Paths[i]) != len(pr.Paths) {
			t.Fatalf("pair (%d,%d): binary %d paths, single %d", p[0], p[1], len(fr.Paths[i]), len(pr.Paths))
		}
		for j, id := range fr.Paths[i] {
			if int(id) != pr.Paths[j] {
				t.Fatalf("pair (%d,%d) path %d: binary %d single %d", p[0], p[1], j, id, pr.Paths[j])
			}
		}
	}

	// K-limiting: a top-level k and a per-pair k both take the prefix
	// of the unlimited answer (selectors are prefix-nested). d-mod-k
	// is single-path, so use a disjoint-scheme fabric for this part.
	_, hs2 := newTestServer(t, Config{Fabrics: []FabricSpec{
		{Name: "edge", XGFT: "2;4,4;1,4", Scheme: "disjoint", K: 4, Seed: 2012},
	}})
	code, data = postBatch(t, hs2.URL, "", `{"pairs": [[0,7]]}`)
	if code != 200 {
		t.Fatalf("disjoint batch: %d %s", code, data)
	}
	var ur batchJSONResponse
	json.Unmarshal(data, &ur)
	full := ur.Results[0].Paths
	if len(full) < 2 {
		t.Fatalf("disjoint (0,7) should be multipath, got %v", full)
	}
	kbody, _ := json.Marshal(map[string]any{"pairs": [][]int{{0, 7}, {0, 7, 1}}, "k": 2})
	code, data = postBatch(t, hs2.URL, "", string(kbody))
	if code != 200 {
		t.Fatalf("k batch: %d %s", code, data)
	}
	var kr batchJSONResponse
	json.Unmarshal(data, &kr)
	if fmt.Sprint(kr.Results[0].Paths) != fmt.Sprint(full[:2]) {
		t.Errorf("default k=2: got %v want %v", kr.Results[0].Paths, full[:2])
	}
	if fmt.Sprint(kr.Results[1].Paths) != fmt.Sprint(full[:1]) {
		t.Errorf("per-pair k=1: got %v want %v", kr.Results[1].Paths, full[:1])
	}
}

// TestBatchRejections covers the error surface: malformed body,
// empty, oversized, out-of-range endpoints, bad pair arity, bad k —
// and that a rejected batch consumes no fault sequence number and
// writes nothing to the journal.
func TestBatchRejections(t *testing.T) {
	s, hs := newTestServer(t, Config{MaxBatch: 4})
	f := s.Fabric("edge")

	seqBefore := f.ackedSeq.Load()
	recBefore := f.journal.Records()
	rejBefore := met.batchRejected.Value()

	cases := []struct {
		name string
		body string
		code int
		want string
	}{
		{"malformed", `{"pairs": [[0,`, 400, "bad batch body"},
		{"not-json", `hello`, 400, "bad batch body"},
		{"empty", `{"pairs": []}`, 400, "empty batch"},
		{"oversized", `{"pairs": [[0,1],[0,2],[0,3],[0,4],[0,5]]}`, 413, "exceeds the 4-pair limit"},
		{"bad-arity", `{"pairs": [[0,1,2,3]]}`, 400, "want [src,dst]"},
		{"src-out-of-range", `{"pairs": [[16,1]]}`, 400, "out of range"},
		{"dst-negative", `{"pairs": [[0,-1]]}`, 400, "out of range"},
		{"bad-pair-k", `{"pairs": [[0,1,-2]]}`, 400, "bad k"},
		{"bad-default-k", `{"pairs": [[0,1]], "k": -1}`, 400, "bad default k"},
	}
	for _, c := range cases {
		code, data := postBatch(t, hs.URL, "", c.body)
		if code != c.code {
			t.Errorf("%s: code %d want %d (%s)", c.name, code, c.code, data)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(data, &e); err != nil || !strings.Contains(e.Error, c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, e.Error, c.want)
		}
	}

	if got := f.ackedSeq.Load(); got != seqBefore {
		t.Errorf("rejected batches moved ackedSeq %d -> %d", seqBefore, got)
	}
	if got := f.journal.Records(); got != recBefore {
		t.Errorf("rejected batches wrote journal records %d -> %d", recBefore, got)
	}
	if got := met.batchRejected.Value(); got-rejBefore != int64(len(cases)) {
		t.Errorf("batchRejected moved by %d, want %d", got-rejBefore, len(cases))
	}

	// Unknown fabric 404s before any batch parsing.
	code, _ := postBatch(t, hs.URL, "", `{"pairs": [[0,1]]}`)
	if code != 200 {
		t.Fatalf("valid batch after rejections: %d", code)
	}
	req, _ := http.NewRequest("POST", hs.URL+"/fabrics/nope/paths", strings.NewReader(`{"pairs":[[0,1]]}`))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("unknown fabric: %d want 404", resp.StatusCode)
	}
}

// TestBatchDuringChurn: a batch answered mid-churn is internally
// consistent — one snapshot answers every pair, and after the fabric
// settles batches agree with the degraded-aware single-pair path.
func TestBatchDuringChurn(t *testing.T) {
	s, hs := newTestServer(t, Config{})
	f := s.Fabric("edge")

	postFault(t, hs.URL, Event{Op: "fail", Kind: "cable", Node: 3, Port: 0})
	waitSettled(t, f)

	body, _ := json.Marshal(map[string]any{"pairs": [][]int{{3, 12}, {0, 7}, {3, 3}}})
	code, data := postBatch(t, hs.URL, "", string(body))
	if code != 200 {
		t.Fatalf("batch: %d %s", code, data)
	}
	var br batchJSONResponse
	if err := json.Unmarshal(data, &br); err != nil {
		t.Fatal(err)
	}
	if br.Gen != 1 {
		t.Errorf("gen %d, want 1 after one fault", br.Gen)
	}
	for i, p := range [][]int{{3, 12}, {0, 7}, {3, 3}} {
		var pr pathResponse
		getJSON(t, fmt.Sprintf("%s/fabrics/edge/path?src=%d&dst=%d", hs.URL, p[0], p[1]), &pr)
		if fmt.Sprint(br.Results[i].Paths) != fmt.Sprint(pr.Paths) {
			t.Errorf("pair %v: batch %v single %v", p, br.Results[i].Paths, pr.Paths)
		}
	}

	// Binary agrees and carries the degraded flag state.
	code, bin := postBatch(t, hs.URL, BinaryBatchContentType+";q=0.9, application/json;q=0.1", string(body))
	if code != 200 {
		t.Fatalf("binary batch: %d", code)
	}
	fr, err := DecodeBatchFrame(bin)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Gen != br.Gen || fr.Degraded != br.Degraded {
		t.Errorf("binary gen %d degraded %v, JSON gen %d degraded %v", fr.Gen, fr.Degraded, br.Gen, br.Degraded)
	}
}

func TestDecodeBatchFrameErrors(t *testing.T) {
	// Build one good frame to corrupt.
	s, hs := newTestServer(t, Config{})
	_ = s
	code, good := postBatch(t, hs.URL, BinaryBatchContentType, `{"pairs": [[0,7],[1,2]]}`)
	if code != 200 {
		t.Fatalf("batch: %d", code)
	}
	if _, err := DecodeBatchFrame(good); err != nil {
		t.Fatal(err)
	}
	bad := [][]byte{
		nil,
		[]byte("XGFB"),                      // too short
		append([]byte("NOPE"), good[4:]...), // wrong magic
		good[:len(good)-1],                  // truncated path id
		append(bytes.Clone(good), 0),        // trailing byte
	}
	wrongVer := bytes.Clone(good)
	wrongVer[4] = 99
	bad = append(bad, wrongVer)
	for i, b := range bad {
		if _, err := DecodeBatchFrame(b); err == nil {
			t.Errorf("corrupt frame %d decoded without error", i)
		}
	}
}
