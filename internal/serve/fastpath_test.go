package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"xgftsim/internal/lid"
	"xgftsim/internal/topology"
)

// nopResponseWriter is a reusable ResponseWriter for alloc pins: the
// header map persists across requests (a real server allocates it per
// request before the handler runs, outside the handler's alloc
// budget) and the body buffer is recycled.
type nopResponseWriter struct {
	h      http.Header
	status int
	buf    []byte
}

func newNopRW() *nopResponseWriter { return &nopResponseWriter{h: make(http.Header)} }

func (w *nopResponseWriter) Header() http.Header  { return w.h }
func (w *nopResponseWriter) WriteHeader(code int) { w.status = code }
func (w *nopResponseWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf[:0], p...)
	return len(p), nil
}

// newBareServer builds an unstarted server (no workers, no listener)
// for direct handler calls.
func newBareServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	if len(cfg.Fabrics) == 0 {
		cfg.Fabrics = []FabricSpec{edgeSpec()}
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestQueryParam(t *testing.T) {
	raw := "src=3&dst=14&ports=1&pattern=shift&empty=&flag"
	cases := []struct {
		key, want string
		present   bool
	}{
		{"src", "3", true},
		{"dst", "14", true},
		{"ports", "1", true},
		{"pattern", "shift", true},
		{"empty", "", true},
		{"flag", "", true},
		{"missing", "", false},
		{"sr", "", false}, // no prefix matching
		{"attern", "", false},
	}
	for _, c := range cases {
		got, ok := queryParam(raw, c.key)
		if got != c.want || ok != c.present {
			t.Errorf("queryParam(%q) = %q,%v want %q,%v", c.key, got, ok, c.want, c.present)
		}
	}
	if v, ok := parseInt("123"); !ok || v != 123 {
		t.Errorf("parseInt(123) = %d,%v", v, ok)
	}
	if v, ok := parseInt("-7"); !ok || v != -7 {
		t.Errorf("parseInt(-7) = %d,%v", v, ok)
	}
	for _, bad := range []string{"", "-", "1.5", "12x", "99999999999999999999"} {
		if _, ok := parseInt(bad); ok {
			t.Errorf("parseInt(%q) accepted", bad)
		}
	}
}

// TestFastPathMatchesGenericHandlers drives the same queries through
// the fast ServeHTTP route and the generic mux handlers and requires
// field-identical JSON.
func TestFastPathMatchesGenericHandlers(t *testing.T) {
	s := newBareServer(t, Config{})
	f := s.Fabric("edge")
	n := f.Topology().NumProcessors()

	get := func(h http.Handler, url string) (int, string) {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("GET", url, nil))
		return w.Code, w.Body.String()
	}
	for src := 0; src < n; src += 2 {
		for dst := 0; dst < n; dst += 3 {
			url := fmt.Sprintf("/fabrics/edge/path?src=%d&dst=%d", src, dst)
			fastCode, fast := get(s, url)
			muxCode, generic := get(s.mux, url)
			if fastCode != muxCode {
				t.Fatalf("%s: fast %d, generic %d", url, fastCode, muxCode)
			}
			var a, b map[string]any
			if err := json.Unmarshal([]byte(fast), &a); err != nil {
				t.Fatalf("%s: fast body not JSON: %v\n%s", url, err, fast)
			}
			if err := json.Unmarshal([]byte(generic), &b); err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(a) != fmt.Sprint(b) {
				t.Fatalf("%s:\nfast    %v\ngeneric %v", url, a, b)
			}
		}
	}
	// LID and maxload answers agree too.
	for _, url := range []string{
		"/fabrics/edge/lid?dst=5",
		"/fabrics/edge/maxload?pattern=shift&arg=3",
		"/fabrics/edge/maxload?pattern=random",
	} {
		fastCode, fast := get(s, url)
		muxCode, generic := get(s.mux, url)
		if fastCode != muxCode || fastCode != 200 {
			t.Fatalf("%s: fast %d, generic %d", url, fastCode, muxCode)
		}
		var a, b map[string]any
		json.Unmarshal([]byte(fast), &a)
		json.Unmarshal([]byte(generic), &b)
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Fatalf("%s:\nfast    %v\ngeneric %v", url, a, b)
		}
	}
	// Errors keep their shapes and codes.
	for _, c := range []struct {
		url  string
		code int
	}{
		{"/fabrics/edge/path?src=-1&dst=2", 400},
		{"/fabrics/edge/path?src=0", 400},
		{"/fabrics/edge/path?src=0&dst=999", 400},
		{"/fabrics/edge/lid?dst=banana", 400},
		{"/fabrics/edge/maxload?pattern=nope", 400},
		{"/fabrics/edge/maxload?pattern=shift&arg=x", 400},
		{"/fabrics/nope/path?src=0&dst=1", 404},
	} {
		code, body := get(s, c.url)
		if code != c.code {
			t.Errorf("%s: %d want %d (%s)", c.url, code, c.code, body)
		}
		if !strings.Contains(body, `"error"`) {
			t.Errorf("%s: error body missing: %s", c.url, body)
		}
	}
	// ports=1 still expands port routes through the generic handler.
	code, body := get(s, "/fabrics/edge/path?src=0&dst=7&ports=1")
	if code != 200 || !strings.Contains(body, `"port_routes"`) {
		t.Errorf("ports=1: code %d body %s", code, body)
	}
}

// TestFastPathZeroAlloc pins the tentpole claim: a single-pair path
// query on the compiled-table fast path allocates nothing per request
// after warmup; memoized maxload and LID answers are alloc-free too.
func TestFastPathZeroAlloc(t *testing.T) {
	s := newBareServer(t, Config{})
	w := newNopRW()

	pin := func(name, url string, want float64) {
		req := httptest.NewRequest("GET", url, nil)
		// Warmup: fill the buffer pool, the memo caches, and the
		// response writer's buffer.
		for i := 0; i < 8; i++ {
			s.ServeHTTP(w, req)
		}
		if w.status != 200 {
			t.Fatalf("%s: status %d body %s", name, w.status, w.buf)
		}
		allocs := testing.AllocsPerRun(500, func() {
			s.ServeHTTP(w, req)
		})
		if allocs > want {
			t.Errorf("%s allocates %.1f/request, want <= %.0f", name, allocs, want)
		}
	}
	pin("path", "/fabrics/edge/path?src=0&dst=7", 0)
	pin("path-disconnected-self", "/fabrics/edge/path?src=3&dst=3", 0)
	pin("lid-memoized", "/fabrics/edge/lid?dst=5", 0)
	pin("maxload-memoized", "/fabrics/edge/maxload?pattern=shift&arg=3", 0)
	pin("maxload-default-arg", "/fabrics/edge/maxload?pattern=random", 0)
}

// TestMaxLoadMemoization checks the memo actually serves repeats (the
// memo-hit counter moves) and that answers survive memoization
// bit-identically across a fault/heal cycle's snapshot changes.
func TestMaxLoadMemoization(t *testing.T) {
	s, hs := newTestServer(t, Config{})
	f := s.Fabric("edge")

	var first maxloadResponse
	if code := getJSON(t, hs.URL+"/fabrics/edge/maxload?pattern=shift&arg=3", &first); code != 200 {
		t.Fatalf("maxload: %d", code)
	}
	before := met.memoHits.Value()
	var repeat maxloadResponse
	getJSON(t, hs.URL+"/fabrics/edge/maxload?pattern=shift&arg=3", &repeat)
	if met.memoHits.Value() <= before {
		t.Error("repeat query did not hit the memo")
	}
	if repeat.MaxLoad != first.MaxLoad || repeat.Flows != first.Flows {
		t.Errorf("memoized answer differs: %+v vs %+v", repeat, first)
	}

	// A fault publishes a fresh snapshot: the memo must not leak the
	// healthy answer into the new state. The generic mux handler
	// computes fresh on every call, so fast (memoized) vs generic
	// (unmemoized) on the faulted snapshot catches a stale memo.
	postFault(t, hs.URL, Event{Op: "fail", Kind: "cable", Node: 3, Port: 0})
	waitSettled(t, f)
	var faulted maxloadResponse
	getJSON(t, hs.URL+"/fabrics/edge/maxload?pattern=shift&arg=3", &faulted)
	if faulted.Gen != 1 {
		t.Fatalf("faulted gen %d, want 1", faulted.Gen)
	}
	rec := httptest.NewRecorder()
	s.mux.ServeHTTP(rec, httptest.NewRequest("GET", "/fabrics/edge/maxload?pattern=shift&arg=3", nil))
	var fresh maxloadResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &fresh); err != nil {
		t.Fatal(err)
	}
	if faulted.MaxLoad != fresh.MaxLoad || faulted.Flows != fresh.Flows {
		t.Errorf("memoized faulted answer %+v differs from fresh computation %+v", faulted, fresh)
	}
	postFault(t, hs.URL, Event{Op: "heal", Kind: "cable", Node: 3, Port: 0})
	waitSettled(t, f)
	var healed maxloadResponse
	getJSON(t, hs.URL+"/fabrics/edge/maxload?pattern=shift&arg=3", &healed)
	if healed.MaxLoad != first.MaxLoad {
		t.Errorf("healed maxload %g, want healthy %g", healed.MaxLoad, first.MaxLoad)
	}
}

// TestLFTDumpGolden pins the LFT endpoint's output: byte-identical to
// an offline lid build, stable header lines, and degraded-aware after
// a fault.
func TestLFTDumpGolden(t *testing.T) {
	s, hs := newTestServer(t, Config{})
	f := s.Fabric("edge")

	get := func() (string, *http.Response) {
		resp, err := http.Get(hs.URL + "/fabrics/edge/lft")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp
	}

	body, resp := get()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	if g := resp.Header.Get("X-XGFT-Gen"); g != "0" {
		t.Errorf("gen header %q, want 0", g)
	}
	// Golden header: the dump format is a stable external contract
	// (ParseFabric and OpenSM-style tooling consume it).
	if !strings.HasPrefix(body, "# xgftsim LFT dump\n# topology XGFT(2; 4,4; 1,4) scheme d-mod-k K 4 lmc ") {
		t.Fatalf("dump does not start with golden header:\n%s", body[:min(len(body), 200)])
	}
	// Byte-identical to the offline builder.
	if off := offlineLFT(t, f, nil); body != off {
		t.Fatalf("served dump differs from offline build:\nserved %d bytes, offline %d bytes", len(body), len(off))
	}

	// Degraded-aware: after a fault the dump reflects the fault set.
	postFault(t, hs.URL, Event{Op: "fail", Kind: "cable", Node: 3, Port: 0})
	waitSettled(t, f)
	degraded, resp := get()
	if g := resp.Header.Get("X-XGFT-Gen"); g != "1" {
		t.Errorf("gen header %q, want 1", g)
	}
	if degraded == body {
		t.Error("dump unchanged after cable fault")
	}
	if off := offlineLFT(t, f, f.State().faults); degraded != off {
		t.Fatal("degraded dump differs from offline degraded build")
	}
}

// offlineLFT builds the same dump the endpoint should serve, straight
// from internal/lid.
func offlineLFT(t *testing.T, f *Fabric, fs *topology.FaultSet) string {
	t.Helper()
	p, err := lid.NewPlan(f.topo, f.Spec.K)
	if err != nil {
		t.Fatal(err)
	}
	var lf *lid.Fabric
	if fs != nil {
		lf, err = lid.BuildDegradedFabric(p, f.routing.Selector(), f.Spec.Seed, fs)
	} else {
		lf, err = lid.BuildFabric(p, f.routing.Selector(), f.Spec.Seed)
	}
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := lf.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}
