package serve

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"xgftsim/internal/cliutil"
	"xgftsim/internal/core"
	"xgftsim/internal/topology"
)

// FabricSpec names one served fabric and its routing policy, parsed
// from the CLI form NAME:XGFT[:SCHEME[:K[:SEED]]], e.g.
// "edge:2;4,4;1,4:d-mod-k:4:2012". The XGFT spec field uses ';' and
// ',' internally, so ':' is the field separator.
type FabricSpec struct {
	Name   string
	XGFT   string
	Scheme string
	K      int
	Seed   int64
}

// ParseFabricSpec parses the CLI fabric form, defaulting the scheme to
// d-mod-k, K to 4 and the seed to 2012.
func ParseFabricSpec(s string) (FabricSpec, error) {
	parts := strings.Split(s, ":")
	if len(parts) < 2 || parts[0] == "" || parts[1] == "" {
		return FabricSpec{}, fmt.Errorf("serve: fabric spec %q: want NAME:XGFT[:SCHEME[:K[:SEED]]]", s)
	}
	spec := FabricSpec{Name: parts[0], XGFT: parts[1], Scheme: "d-mod-k", K: 4, Seed: 2012}
	if len(parts) > 2 && parts[2] != "" {
		spec.Scheme = parts[2]
	}
	if len(parts) > 3 && parts[3] != "" {
		k, err := strconv.Atoi(parts[3])
		if err != nil || k < 1 {
			return FabricSpec{}, fmt.Errorf("serve: fabric spec %q: bad K %q", s, parts[3])
		}
		spec.K = k
	}
	if len(parts) > 4 && parts[4] != "" {
		seed, err := strconv.ParseInt(parts[4], 10, 64)
		if err != nil {
			return FabricSpec{}, fmt.Errorf("serve: fabric spec %q: bad seed %q", s, parts[4])
		}
		spec.Seed = seed
	}
	if len(parts) > 5 {
		return FabricSpec{}, fmt.Errorf("serve: fabric spec %q: too many fields", s)
	}
	return spec, nil
}

// fabState is one immutable published snapshot of a fabric: the table
// and repaired routing reflecting events up to gen. States are swapped
// in whole via an atomic pointer — readers pin a state once per
// request and never observe a partial repair.
type fabState struct {
	// table is the CSR table to serve from: the healthy base table, or
	// a delta-patched copy-on-write repair of it. Nil in lazy mode.
	// When degraded it reflects tableGen < gen (the last good table).
	table    *core.CompiledRouting
	tableGen uint64
	// rep is the repaired routing at gen; nil while the fabric is
	// healthy. It is always fresh even when the table is stale, so path
	// queries on a degraded fabric fall back to lazy per-pair repair
	// instead of serving routes over links known to be dead.
	rep    *core.RepairedRouting
	faults *topology.FaultSet
	gen    uint64
	// degraded marks a state whose table could not be rebuilt (repair
	// error, over-budget delta, or timeout): CSR-backed answers come
	// from the stale table or lazy evaluation and responses carry the
	// degraded flag until a later rebuild succeeds.
	degraded    bool
	lastErr     string
	unreachable int
	built       time.Time
	// cache memoizes answers derived from this snapshot (maxload per
	// traffic pattern, LID tags per destination): repeated queries
	// between repairs are O(1) map hits instead of full evaluations.
	// The cache is dropped with the state on the next table swap.
	cache *snapCache
}

// mlEntry is one memoized maxload answer (or its sticky error).
type mlEntry struct {
	load  float64
	flows int
	err   string
}

// tagEntry is one memoized LID tag answer (or its sticky error).
type tagEntry struct {
	tags []int
	err  string
}

// snapCache memoizes per-snapshot derived answers. Lookups take one
// short mutex hold and allocate nothing on a hit; misses compute
// outside the lock and race benignly (last writer wins, values are
// deterministic for a given snapshot).
type snapCache struct {
	mu      sync.Mutex
	maxload map[string]map[int]mlEntry
	tags    map[int]tagEntry
}

func newSnapCache() *snapCache { return &snapCache{} }

func (c *snapCache) maxloadFor(pattern string, arg int) (mlEntry, bool) {
	c.mu.Lock()
	e, ok := c.maxload[pattern][arg]
	c.mu.Unlock()
	return e, ok
}

func (c *snapCache) storeMaxload(pattern string, arg int, e mlEntry) {
	c.mu.Lock()
	if c.maxload == nil {
		c.maxload = make(map[string]map[int]mlEntry)
	}
	m := c.maxload[pattern]
	if m == nil {
		m = make(map[int]mlEntry)
		c.maxload[pattern] = m
	}
	m[arg] = e
	c.mu.Unlock()
}

func (c *snapCache) tagsFor(dst int) (tagEntry, bool) {
	c.mu.Lock()
	e, ok := c.tags[dst]
	c.mu.Unlock()
	return e, ok
}

func (c *snapCache) storeTags(dst int, e tagEntry) {
	c.mu.Lock()
	if c.tags == nil {
		c.tags = make(map[int]tagEntry)
	}
	c.tags[dst] = e
	c.mu.Unlock()
}

// ErrQueueFull is returned by Submit when the fabric's bounded event
// queue has no room; HTTP maps it to 429 with a Retry-After hint.
var ErrQueueFull = errors.New("serve: event queue full")

// Fabric is one served topology: its routing, compiled base table and
// delta repairer, the write-ahead fault journal, a bounded event
// queue, and the atomically-published serving state.
type Fabric struct {
	Spec FabricSpec

	topo    *topology.Topology
	routing *core.Routing
	base    *core.CompiledRouting // nil in lazy mode
	delta   *core.DeltaRepairer   // nil in lazy mode
	journal *Journal
	lazy    bool

	state atomic.Pointer[fabState]

	mu     sync.Mutex // guards seq and queue admission
	seq    uint64     // last acknowledged (journaled) event seq
	events chan Event

	ackedSeq     atomic.Uint64
	pendingSince atomic.Int64 // unix nanos of oldest unapplied admission; 0 = caught up

	// Repair-loop tuning (fixed at construction).
	repairTimeout time.Duration
	backoffBase   time.Duration
	backoffCap    time.Duration
	maxAttempts   int
	budget        int64

	// counts is the worker-owned fault bookkeeping: live failure count
	// per unit, so overlapping classes (a dead switch plus dead cables
	// under it) and fail/heal flapping compose by reference counting.
	counts map[eventKey]int
}

// fabricOptions bundles the serve-wide knobs New applies per fabric.
type fabricOptions struct {
	journalPath   string
	queueSize     int
	repairTimeout time.Duration
	backoffBase   time.Duration
	backoffCap    time.Duration
	maxAttempts   int
	budget        int64
}

// newFabric builds the fabric: topology, routing, compiled table
// (lazy mode when the compile would exceed the byte budget), journal
// replay, and the initial published state. Replayed faults are applied
// synchronously, so a restarted server converges to the degraded state
// it crashed in before it serves its first query.
func newFabric(spec FabricSpec, opt fabricOptions) (*Fabric, error) {
	t, err := cliutil.ParseXGFT(spec.XGFT)
	if err != nil {
		return nil, fmt.Errorf("serve: fabric %s: %w", spec.Name, err)
	}
	sel, err := core.SelectorByName(spec.Scheme)
	if err != nil {
		return nil, fmt.Errorf("serve: fabric %s: %w", spec.Name, err)
	}
	r := core.NewRouting(t, sel, spec.K, spec.Seed)
	// Reject schemes that cannot repair up front: a fabric that cannot
	// apply fault events has no business in a fault-churn control plane.
	if _, err := r.Repair(topology.NewFaultSet(t)); err != nil {
		return nil, fmt.Errorf("serve: fabric %s: %w", spec.Name, err)
	}
	f := &Fabric{
		Spec:          spec,
		topo:          t,
		routing:       r,
		events:        make(chan Event, opt.queueSize),
		repairTimeout: opt.repairTimeout,
		backoffBase:   opt.backoffBase,
		backoffCap:    opt.backoffCap,
		maxAttempts:   opt.maxAttempts,
		budget:        opt.budget,
		counts:        make(map[eventKey]int),
	}
	if est := core.CompiledBytes(r); est <= opt.budget {
		base, err := core.CompileRouting(r, opt.budget)
		if err != nil {
			return nil, fmt.Errorf("serve: fabric %s: compile: %w", spec.Name, err)
		}
		d, err := core.NewDeltaRepairer(base)
		if err != nil {
			return nil, fmt.Errorf("serve: fabric %s: %w", spec.Name, err)
		}
		f.base, f.delta = base, d
	} else {
		f.lazy = true // degradation ladder bottom: per-query path walks
	}

	j, history, err := OpenJournal(opt.journalPath)
	if err != nil {
		return nil, err
	}
	f.journal = j
	for _, e := range history {
		if err := validateEvent(t, e); err != nil {
			j.Close()
			return nil, fmt.Errorf("serve: fabric %s: journal replay: %w", spec.Name, err)
		}
		f.applyToCounts(e)
		if e.Seq > f.seq {
			f.seq = e.Seq
		}
	}
	f.ackedSeq.Store(f.seq)

	st, err := f.buildState(f.seq)
	if err != nil {
		// Boot with a degraded healthy-table state rather than refusing
		// to serve: the journal is intact, a later event retries.
		st = &fabState{
			table: f.base, tableGen: 0, gen: f.seq,
			degraded: f.seq > 0, lastErr: err.Error(), built: time.Now(),
			cache: newSnapCache(),
		}
	}
	f.state.Store(st)
	return f, nil
}

// State returns the current published state (never nil after New).
func (f *Fabric) State() *fabState { return f.state.Load() }

// Gen is the event generation the published state reflects.
func (f *Fabric) Gen() uint64 { return f.State().gen }

// Degraded reports whether the published state is serving with a
// stale table after a failed rebuild.
func (f *Fabric) Degraded() bool { return f.State().degraded }

// Staleness is how many acknowledged events the published state does
// not yet reflect.
func (f *Fabric) Staleness() uint64 {
	return f.ackedSeq.Load() - f.State().gen
}

// RepairLag is how long the oldest unapplied admission has been
// waiting; 0 when caught up.
func (f *Fabric) RepairLag() time.Duration {
	since := f.pendingSince.Load()
	if since == 0 {
		return 0
	}
	return time.Duration(time.Now().UnixNano() - since)
}

// QueueDepth is the current occupancy of the bounded event queue.
func (f *Fabric) QueueDepth() int { return len(f.events) }

// Topology returns the served topology.
func (f *Fabric) Topology() *topology.Topology { return f.topo }

// Mode names the serving mode of the degradation ladder this fabric
// operates in: "compiled" (CSR base + delta repairs) or "lazy"
// (per-query path walks; the table exceeded the byte budget).
func (f *Fabric) Mode() string {
	if f.lazy {
		return "lazy"
	}
	return "compiled"
}

// Submit admits one fault/repair event: it is validated by the caller,
// assigned the next sequence number, journaled durably, and only then
// enqueued for the repair worker and acknowledged. A full queue
// returns ErrQueueFull without consuming a sequence number — the
// client retries after the worker drains.
func (f *Fabric) Submit(e Event) (uint64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.events) == cap(f.events) {
		met.eventsRejected.Inc()
		return 0, ErrQueueFull
	}
	e.Seq = f.seq + 1
	if err := f.journal.Append(e); err != nil {
		return 0, err
	}
	f.seq = e.Seq
	f.ackedSeq.Store(e.Seq)
	f.pendingSince.CompareAndSwap(0, time.Now().UnixNano())
	f.events <- e // room checked above; only Submit sends
	met.eventsAccepted.Inc()
	depth := int64(len(f.events))
	met.queueDepth.Set(depth)
	met.queueDepthMax.SetMax(depth)
	return e.Seq, nil
}

// validateEvent rejects events that do not name a failure unit of t.
func validateEvent(t *topology.Topology, e Event) error {
	if e.Op != "fail" && e.Op != "heal" {
		return fmt.Errorf("bad op %q (want fail or heal)", e.Op)
	}
	switch e.Kind {
	case "cable":
		if e.Node < 0 || e.Node >= t.NumNodes() {
			return fmt.Errorf("cable node %d out of range [0,%d)", e.Node, t.NumNodes())
		}
		n := topology.NodeID(e.Node)
		if np := t.NumParents(n); e.Port < 0 || e.Port >= np {
			return fmt.Errorf("cable port %d out of range [0,%d) at node %d", e.Port, np, e.Node)
		}
	case "switch":
		if e.Node < 0 || e.Node >= t.NumNodes() {
			return fmt.Errorf("switch node %d out of range [0,%d)", e.Node, t.NumNodes())
		}
		if t.Level(topology.NodeID(e.Node)) == 0 {
			return fmt.Errorf("node %d is a processor, not a switch", e.Node)
		}
	case "link":
		if e.Link < 0 || e.Link >= t.NumLinks() {
			return fmt.Errorf("link %d out of range [0,%d)", e.Link, t.NumLinks())
		}
	default:
		return fmt.Errorf("bad kind %q (want cable, switch or link)", e.Kind)
	}
	return nil
}

// applyToCounts folds one event into the worker's reference counts.
// Heals floor at zero, so healing a unit that was never failed (or
// was failed once and healed twice) is a no-op, not corruption.
func (f *Fabric) applyToCounts(e Event) {
	k := e.key()
	switch e.Op {
	case "fail":
		f.counts[k]++
	case "heal":
		if f.counts[k] > 0 {
			f.counts[k]--
		}
		if f.counts[k] == 0 {
			delete(f.counts, k)
		}
	}
}

// faultSet materializes the current counts as a FaultSet; nil when the
// fabric is healthy.
func (f *Fabric) faultSet() (*topology.FaultSet, error) {
	if len(f.counts) == 0 {
		return nil, nil
	}
	fs := topology.NewFaultSet(f.topo)
	for k := range f.counts {
		var err error
		switch k.Kind {
		case "cable":
			err = fs.FailCable(topology.NodeID(k.Node), k.Port)
		case "switch":
			err = fs.FailSwitch(topology.NodeID(k.Node))
		case "link":
			err = fs.FailLink(topology.LinkID(k.Link))
		}
		if err != nil {
			return nil, err
		}
	}
	return fs, nil
}

// snapshotEvents renders the live counts as a compact replayable
// history, each stamped with the current sequence number so a replayed
// snapshot reports the same generation.
func (f *Fabric) snapshotEvents(seq uint64) []Event {
	var out []Event
	for k, c := range f.counts {
		for i := 0; i < c; i++ {
			out = append(out, Event{Seq: seq, Op: "fail", Kind: k.Kind, Node: k.Node, Port: k.Port, Link: k.Link})
		}
	}
	return out
}

// buildState computes the published state for the current counts at
// generation gen: repair, delta-compile (compiled mode), and the
// budget check. It is the synchronous core the worker wraps with
// timeout and backoff.
func (f *Fabric) buildState(gen uint64) (*fabState, error) {
	fs, err := f.faultSet()
	if err != nil {
		return nil, err
	}
	if fs == nil {
		return &fabState{table: f.base, tableGen: gen, gen: gen, built: time.Now(), cache: newSnapCache()}, nil
	}
	rr, err := f.routing.Repair(fs)
	if err != nil {
		return nil, err
	}
	st := &fabState{rep: rr, faults: fs, gen: gen, built: time.Now(), cache: newSnapCache()}
	if f.lazy {
		st.unreachable = len(rr.DisconnectedPairs())
		return st, nil
	}
	table, err := f.delta.CompileRepairedDelta(rr)
	if err != nil {
		return nil, err
	}
	if b := table.Bytes(); b > f.budget {
		// The repair succeeded; only the compiled artifact is over
		// budget. Publish a degraded state that answers path queries
		// from the fresh lazy repair and keeps the last good table for
		// CSR-backed queries — correct answers, stale aggregates.
		st.degraded = true
		st.lastErr = fmt.Sprintf("serve: repaired table %d bytes exceeds budget %d", b, f.budget)
		st.unreachable = len(rr.DisconnectedPairs())
		if prev := f.state.Load(); prev != nil && prev.table != nil {
			st.table, st.tableGen = prev.table, prev.tableGen
		} else {
			st.table, st.tableGen = f.base, 0
		}
		return st, nil
	}
	st.table, st.tableGen = table, gen
	st.unreachable = table.UnreachablePairs()
	return st, nil
}

// run is the fabric's repair worker: it drains the event queue in
// coalesced batches, rebuilds the state, and publishes it atomically.
// Rebuild failures and timeouts publish a degraded state that keeps
// the last good table serving; retries back off exponentially (capped)
// and give up after maxAttempts until the next event arrives.
func (f *Fabric) run(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		case e := <-f.events:
			f.applyToCounts(e)
			gen := e.Seq
			// Coalesce everything already queued: one rebuild covers
			// the whole burst.
			for {
				select {
				case e := <-f.events:
					f.applyToCounts(e)
					gen = e.Seq
				default:
					goto drained
				}
			}
		drained:
			met.queueDepth.Set(int64(len(f.events)))
			f.rebuild(ctx, gen)
		}
	}
}

type buildResult struct {
	st  *fabState
	err error
}

// rebuild drives buildState with the per-fabric timeout, capped
// exponential backoff, and bounded attempts. On timeout it publishes
// the degraded state immediately (queries see the staleness right
// away) and keeps waiting for the in-flight compile — a late success
// still swaps in if no newer rebuild superseded it.
func (f *Fabric) rebuild(ctx context.Context, gen uint64) {
	for attempt := 0; ; attempt++ {
		start := time.Now()
		ch := make(chan buildResult, 1)
		go func() {
			st, err := f.buildState(gen)
			ch <- buildResult{st, err}
		}()
		var res buildResult
		timer := time.NewTimer(f.repairTimeout)
		select {
		case res = <-ch:
			timer.Stop()
		case <-timer.C:
			met.repairTimeouts.Inc()
			f.publishDegraded(fmt.Errorf("serve: repair exceeded %v", f.repairTimeout))
			// The compile goroutine cannot be cancelled mid-flight;
			// wait for it so a late success still lands. A newer event
			// burst will supersede via a later rebuild anyway.
			select {
			case res = <-ch:
			case <-ctx.Done():
				return
			}
		case <-ctx.Done():
			return
		}
		met.repairSeconds.Observe(time.Since(start).Seconds())
		if res.err == nil {
			f.publish(res.st)
			f.maybeCompact(gen)
			return
		}
		met.repairFailures.Inc()
		f.publishDegraded(res.err)
		if attempt+1 >= f.maxAttempts {
			return // stay degraded; the next event triggers a fresh rebuild
		}
		backoff := f.backoffBase << uint(attempt)
		if backoff > f.backoffCap || backoff <= 0 {
			backoff = f.backoffCap
		}
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return
		}
	}
}

// publish swaps the new state in and clears the repair-lag clock when
// the fabric is caught up.
func (f *Fabric) publish(st *fabState) {
	f.state.Store(st)
	met.tableSwaps.Inc()
	if st.gen == f.ackedSeq.Load() && len(f.events) == 0 {
		f.pendingSince.Store(0)
	}
}

// publishDegraded publishes a state that keeps the previous table (and
// previous repaired routing, if any) serving while recording the
// failure. The state still reflects the previous generation, so
// staleness (ackedSeq - gen) counts exactly the events the served
// answers miss.
func (f *Fabric) publishDegraded(err error) {
	prev := f.State()
	st := &fabState{
		table:       prev.table,
		tableGen:    prev.tableGen,
		rep:         prev.rep,
		faults:      prev.faults,
		gen:         prev.gen,
		degraded:    true,
		lastErr:     err.Error(),
		unreachable: prev.unreachable,
		built:       time.Now(),
		// The degraded state serves the same table and repair as prev,
		// so its memoized answers stay valid — keep them.
		cache: prev.cache,
	}
	f.state.Store(st)
	met.tableSwaps.Inc()
}

// maybeCompact rewrites the journal as a snapshot once the history is
// several times larger than the live fault set, bounding replay time
// under sustained churn.
func (f *Fabric) maybeCompact(seq uint64) {
	live := 0
	for _, c := range f.counts {
		live += c
	}
	if f.journal.Records() <= 4*live+64 {
		return
	}
	if err := f.journal.Compact(f.snapshotEvents(seq)); err == nil {
		met.compactions.Inc()
	}
}

// Close releases the fabric's journal.
func (f *Fabric) Close() error { return f.journal.Close() }
