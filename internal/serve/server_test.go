package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"xgftsim/internal/cliutil"
	"xgftsim/internal/core"
	"xgftsim/internal/topology"
)

func edgeSpec() FabricSpec {
	return FabricSpec{Name: "edge", XGFT: "2;4,4;1,4", Scheme: "d-mod-k", K: 4, Seed: 2012}
}

func podSpec() FabricSpec {
	return FabricSpec{Name: "pod", XGFT: "3;2,2,2;1,2,2", Scheme: "disjoint", K: 2, Seed: 7}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	if len(cfg.Fabrics) == 0 {
		cfg.Fabrics = []FabricSpec{edgeSpec()}
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.Start(ctx)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		cancel()
		s.Close()
	})
	return s, hs
}

func postFault(t *testing.T, url string, e Event) (int, uint64) {
	t.Helper()
	body, _ := json.Marshal(e)
	resp, err := http.Post(url+"/fabrics/edge/faults", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ack faultAck
	json.NewDecoder(resp.Body).Decode(&ack)
	return resp.StatusCode, ack.Seq
}

func waitSettled(t *testing.T, f *Fabric) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if f.Staleness() == 0 && !f.Degraded() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("fabric %s did not settle: staleness=%d degraded=%v lastErr=%q",
				f.Spec.Name, f.Staleness(), f.Degraded(), f.State().lastErr)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp.StatusCode
}

func TestParseFabricSpec(t *testing.T) {
	spec, err := ParseFabricSpec("edge:2;4,4;1,4:disjoint:2:99")
	if err != nil {
		t.Fatal(err)
	}
	want := FabricSpec{Name: "edge", XGFT: "2;4,4;1,4", Scheme: "disjoint", K: 2, Seed: 99}
	if spec != want {
		t.Errorf("got %+v, want %+v", spec, want)
	}
	if _, err := ParseFabricSpec("noxgft"); err == nil {
		t.Error("missing xgft accepted")
	}
	if _, err := ParseFabricSpec("e:2;4,4;1,4:d-mod-k:0"); err == nil {
		t.Error("K=0 accepted")
	}
	// Defaults.
	spec, err = ParseFabricSpec("e:2;4,4;1,4")
	if err != nil || spec.Scheme != "d-mod-k" || spec.K != 4 || spec.Seed != 2012 {
		t.Errorf("defaults: %+v, err %v", spec, err)
	}
}

func TestPathQueryMatchesRouting(t *testing.T) {
	s, hs := newTestServer(t, Config{})
	f := s.Fabric("edge")
	n := f.Topology().NumProcessors()
	for src := 0; src < n; src += 3 {
		for dst := 0; dst < n; dst += 5 {
			if src == dst {
				continue
			}
			var pr pathResponse
			if code := getJSON(t, fmt.Sprintf("%s/fabrics/edge/path?src=%d&dst=%d", hs.URL, src, dst), &pr); code != 200 {
				t.Fatalf("path query: %d", code)
			}
			want := f.routing.Paths(src, dst)
			if len(pr.Paths) != len(want) {
				t.Fatalf("(%d,%d): got %v, want %v", src, dst, pr.Paths, want)
			}
			for i := range want {
				if pr.Paths[i] != want[i] {
					t.Fatalf("(%d,%d): got %v, want %v", src, dst, pr.Paths, want)
				}
			}
		}
	}
	// Bad inputs are 400s, unknown fabrics 404s.
	resp, _ := http.Get(hs.URL + "/fabrics/edge/path?src=-1&dst=2")
	if resp.StatusCode != 400 {
		t.Errorf("src=-1: %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
	resp, _ = http.Get(hs.URL + "/fabrics/nope/path?src=0&dst=1")
	if resp.StatusCode != 404 {
		t.Errorf("unknown fabric: %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestFaultHealRoundTripRestoresChecksum(t *testing.T) {
	s, hs := newTestServer(t, Config{})
	f := s.Fabric("edge")
	healthy := f.State().table.Checksum()

	code, seq := postFault(t, hs.URL, Event{Op: "fail", Kind: "cable", Node: 3, Port: 0})
	if code != 202 || seq != 1 {
		t.Fatalf("fail: code %d seq %d", code, seq)
	}
	waitSettled(t, f)
	st := f.State()
	if st.gen != 1 || st.table == nil {
		t.Fatalf("state after fail: gen %d", st.gen)
	}
	if st.table.Checksum() == healthy {
		t.Error("fault did not change the table")
	}
	if st.unreachable == 0 {
		t.Error("cutting node 3's only cable should strand pairs")
	}
	// Served paths match an independently repaired oracle.
	fs := topology.NewFaultSet(f.Topology())
	fs.FailCable(topology.NodeID(3), 0)
	rr := f.routing.MustRepair(fs)
	var pr pathResponse
	getJSON(t, hs.URL+"/fabrics/edge/path?src=0&dst=7", &pr)
	want := rr.Paths(0, 7)
	if fmt.Sprint(pr.Paths) != fmt.Sprint(want) {
		t.Errorf("degraded paths: got %v, want %v", pr.Paths, want)
	}

	code, _ = postFault(t, hs.URL, Event{Op: "heal", Kind: "cable", Node: 3, Port: 0})
	if code != 202 {
		t.Fatalf("heal: %d", code)
	}
	waitSettled(t, f)
	st = f.State()
	if got := st.table.Checksum(); got != healthy {
		t.Errorf("heal did not restore the healthy table: %016x vs %016x", got, healthy)
	}
	if st.unreachable != 0 || st.rep != nil {
		t.Errorf("healed state still degraded: unreachable %d", st.unreachable)
	}
}

func TestOverlappingSwitchAndCableFaults(t *testing.T) {
	// A dead switch plus dead cables incident to it must converge to
	// the same served table as the switch alone (the cable events are
	// subsumed), and heal back out in any order.
	s, hs := newTestServer(t, Config{Fabrics: []FabricSpec{edgeSpec()}})
	f := s.Fabric("edge")
	sw := f.Topology().NumProcessors() // first level-1 switch node id
	if f.Topology().Level(topology.NodeID(sw)) != 1 {
		t.Fatalf("node %d is not a level-1 switch", sw)
	}
	child := f.Topology().Child(topology.NodeID(sw), 0)

	postFault(t, hs.URL, Event{Op: "fail", Kind: "switch", Node: sw})
	waitSettled(t, f)
	switchOnly := f.State().table.Checksum()

	// Add a cable that is already inside the switch's dead closure.
	up := f.Topology().UpPortOf(child, topology.NodeID(sw))
	postFault(t, hs.URL, Event{Op: "fail", Kind: "cable", Node: int(child), Port: up})
	waitSettled(t, f)
	if got := f.State().table.Checksum(); got != switchOnly {
		t.Errorf("subsumed cable fault changed the table: %016x vs %016x", got, switchOnly)
	}

	// Heal the switch; the cable stays down.
	postFault(t, hs.URL, Event{Op: "heal", Kind: "switch", Node: sw})
	waitSettled(t, f)
	fs := topology.NewFaultSet(f.Topology())
	fs.FailCable(child, up)
	want, err := f.delta.CompileRepairedDelta(f.routing.MustRepair(fs))
	if err != nil {
		t.Fatal(err)
	}
	if got := f.State().table.Checksum(); got != want.Checksum() {
		t.Errorf("after switch heal: %016x, want cable-only %016x", got, want.Checksum())
	}
}

func TestBackpressure429(t *testing.T) {
	// Build but do not start workers: the queue fills at its bound.
	s, err := New(Config{Fabrics: []FabricSpec{edgeSpec()}, Dir: t.TempDir(), QueueSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	for i := 0; i < 2; i++ {
		code, _ := postFault(t, hs.URL, Event{Op: "fail", Kind: "link", Link: i})
		if code != 202 {
			t.Fatalf("event %d: %d, want 202", i, code)
		}
	}
	body, _ := json.Marshal(Event{Op: "fail", Kind: "link", Link: 9})
	resp, err := http.Post(hs.URL+"/fabrics/edge/faults", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	// The rejected event consumed no sequence number and was not
	// journaled: the acknowledged count is still 2.
	if got := s.Fabric("edge").journal.Records(); got != 2 {
		t.Errorf("journal records = %d, want 2", got)
	}
	// Queries still succeed while the queue is full — admission
	// control never blocks the read path.
	var pr pathResponse
	if code := getJSON(t, hs.URL+"/fabrics/edge/path?src=0&dst=1", &pr); code != 200 {
		t.Fatalf("query during backpressure: %d", code)
	}
	if pr.Staleness != 2 {
		t.Errorf("staleness = %d, want 2 (two acked, none applied)", pr.Staleness)
	}
}

func TestOverBudgetRepairDegradesGracefully(t *testing.T) {
	// Budget exactly fits the healthy table; any delta overlay exceeds
	// it, so the first fault degrades the fabric: the stale table keeps
	// serving CSR queries, but path answers fall back to fresh lazy
	// repair and carry the degraded flag.
	spec := edgeSpec()
	tpo, _ := cliutil.ParseXGFT(spec.XGFT)
	sel, _ := core.SelectorByName(spec.Scheme)
	budget := core.CompiledBytes(core.NewRouting(tpo, sel, spec.K, spec.Seed))
	s, hs := newTestServer(t, Config{
		Fabrics:     []FabricSpec{spec},
		TableBudget: budget,
		MaxAttempts: 1,
		WedgeAfter:  time.Hour, // degraded, not wedged
	})
	f := s.Fabric("edge")
	healthy := f.State().table.Checksum()

	postFault(t, hs.URL, Event{Op: "fail", Kind: "cable", Node: 3, Port: 0})
	deadline := time.Now().Add(10 * time.Second)
	for !f.Degraded() {
		if time.Now().After(deadline) {
			t.Fatal("fabric never reported degraded")
		}
		time.Sleep(2 * time.Millisecond)
	}
	st := f.State()
	if st.table == nil || st.table.Checksum() != healthy {
		t.Error("degraded state lost the last good table")
	}
	if st.lastErr == "" {
		t.Error("degraded state has no lastErr")
	}

	var pr pathResponse
	getJSON(t, hs.URL+"/fabrics/edge/path?src=3&dst=7", &pr)
	if !pr.Degraded {
		t.Error("response not flagged degraded")
	}
	// The lazy repair is fresh (only the table is stale), so path
	// answers miss no acknowledged event.
	if pr.Staleness != 0 {
		t.Errorf("staleness = %d, want 0 (rep is fresh)", pr.Staleness)
	}
	// But the served paths are still correct: node 3 is cut off, so the
	// degraded fallback must answer disconnected, not routes over the
	// dead cable.
	if len(pr.Paths) != 0 || !pr.Disconnected {
		t.Errorf("degraded fallback served %v over a dead cable", pr.Paths)
	}

	var rz struct {
		Ready bool `json:"ready"`
	}
	if code := getJSON(t, hs.URL+"/readyz", &rz); code != 200 || !rz.Ready {
		t.Errorf("degraded-but-progressing fabric should stay ready: code %d ready %v", code, rz.Ready)
	}
}

func TestCrashRecoveryConvergesBitIdentical(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Fabrics: []FabricSpec{edgeSpec(), podSpec()}, Dir: dir}
	s, hs := newTestServer(t, cfg)
	f := s.Fabric("edge")

	events := []Event{
		{Op: "fail", Kind: "cable", Node: 1, Port: 0},
		{Op: "fail", Kind: "switch", Node: 17},
		{Op: "fail", Kind: "link", Link: 40},
		{Op: "heal", Kind: "cable", Node: 1, Port: 0},
		{Op: "fail", Kind: "cable", Node: 5, Port: 0},
	}
	for _, e := range events {
		if code, _ := postFault(t, hs.URL, e); code != 202 {
			t.Fatalf("event %+v: %d", e, code)
		}
	}
	waitSettled(t, f)
	before := f.State()
	beforeSum := before.table.Checksum()
	beforeGen := before.gen

	// "Crash": the journal was fsync'd per event, so simply abandoning
	// the server (no graceful close) models a kill -9. Reopen on the
	// same directory.
	hs.Close()
	s.Close()

	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	f2 := s2.Fabric("edge")
	after := f2.State()
	if after.gen != beforeGen {
		t.Errorf("replayed gen %d, want %d", after.gen, beforeGen)
	}
	if got := after.table.Checksum(); got != beforeSum {
		t.Fatalf("replayed table checksum %016x, want %016x", got, beforeSum)
	}
	// Bit-compare every pair's rows, not just the checksum.
	n := f.Topology().NumProcessors()
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			l1, p1 := before.table.PairLinks(src, dst)
			l2, p2 := after.table.PairLinks(src, dst)
			if p1 != p2 || len(l1) != len(l2) {
				t.Fatalf("(%d,%d): shape differs after replay", src, dst)
			}
			for i := range l1 {
				if l1[i] != l2[i] {
					t.Fatalf("(%d,%d): link %d differs after replay", src, dst, i)
				}
			}
		}
	}
}

func TestConcurrentQueriesDuringChurnRaceClean(t *testing.T) {
	// Hammer path queries from several goroutines while faults and
	// heals stream in: swaps are atomic, so every response must be
	// internally consistent and 200. Run under -race in CI.
	s, hs := newTestServer(t, Config{Fabrics: []FabricSpec{edgeSpec()}})
	f := s.Fabric("edge")
	n := f.Topology().NumProcessors()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := &http.Client{Timeout: 5 * time.Second}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				src, dst := (i+w)%n, (i*7+w*3+1)%n
				if src == dst {
					continue
				}
				resp, err := client.Get(fmt.Sprintf("%s/fabrics/edge/path?src=%d&dst=%d", hs.URL, src, dst))
				if err != nil {
					errs <- err
					return
				}
				var pr pathResponse
				err = json.NewDecoder(resp.Body).Decode(&pr)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != 200 {
					errs <- fmt.Errorf("query dropped: %d", resp.StatusCode)
					return
				}
			}
		}(w)
	}
	for i := 0; i < 60; i++ {
		e := Event{Op: "fail", Kind: "cable", Node: i % n, Port: 0}
		if i%2 == 1 {
			e.Op = "heal"
		}
		for {
			code, _ := postFault(t, hs.URL, e)
			if code == 202 {
				break
			}
			if code != 429 {
				t.Fatalf("event %d: %d", i, code)
			}
			time.Sleep(time.Millisecond)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	waitSettled(t, f)
}
