package serve

import (
	"os"
	"path/filepath"
	"testing"
)

func TestJournalAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.journal")
	j, events, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Fatalf("fresh journal replayed %d events", len(events))
	}
	in := []Event{
		{Seq: 1, Op: "fail", Kind: "cable", Node: 3, Port: 0},
		{Seq: 2, Op: "fail", Kind: "switch", Node: 17},
		{Seq: 3, Op: "heal", Kind: "cable", Node: 3, Port: 0},
	}
	for _, e := range in {
		if err := j.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if got := j.Records(); got != 3 {
		t.Errorf("Records = %d, want 3", got)
	}
	j.Close()

	_, replayed, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != len(in) {
		t.Fatalf("replayed %d events, want %d", len(replayed), len(in))
	}
	for i := range in {
		if replayed[i] != in[i] {
			t.Errorf("event %d: got %+v, want %+v", i, replayed[i], in[i])
		}
	}
}

func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.journal")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(Event{Seq: 1, Op: "fail", Kind: "link", Link: 9})
	j.Append(Event{Seq: 2, Op: "fail", Kind: "link", Link: 10})
	j.Close()

	// Simulate a crash mid-write: an unterminated garbage tail.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"seq":3,"op":"fa`)
	f.Close()

	j2, replayed, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 2 {
		t.Fatalf("replayed %d events after torn tail, want 2", len(replayed))
	}
	// The torn bytes must be gone: a new append must parse cleanly on
	// the next replay.
	if err := j2.Append(Event{Seq: 3, Op: "fail", Kind: "link", Link: 11}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	_, replayed, err = OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 3 || replayed[2].Link != 11 {
		t.Fatalf("after truncate+append: replayed %+v", replayed)
	}
}

func TestJournalCorruptMiddleTailStops(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.journal")
	os.WriteFile(path, []byte("{\"seq\":1,\"op\":\"fail\",\"kind\":\"link\",\"link\":4}\nnot-json\n{\"seq\":2,\"op\":\"heal\",\"kind\":\"link\",\"link\":4}\n"), 0o644)
	_, replayed, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	// Replay stops at the first unparseable record: everything after it
	// was written after a corruption and cannot be trusted to be in
	// acknowledged order.
	if len(replayed) != 1 {
		t.Fatalf("replayed %d events, want 1 (stop at corrupt record)", len(replayed))
	}
}

func TestJournalCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.journal")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		j.Append(Event{Seq: uint64(2*i + 1), Op: "fail", Kind: "link", Link: i})
		j.Append(Event{Seq: uint64(2*i + 2), Op: "heal", Kind: "link", Link: i})
	}
	// Compact to a single live fault stamped with the latest seq.
	if err := j.Compact([]Event{{Seq: 100, Op: "fail", Kind: "link", Link: 7}}); err != nil {
		t.Fatal(err)
	}
	if got := j.Records(); got != 1 {
		t.Errorf("Records after compact = %d, want 1", got)
	}
	// The compacted journal still accepts appends and replays both.
	if err := j.Append(Event{Seq: 101, Op: "heal", Kind: "link", Link: 7}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	_, replayed, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 2 || replayed[0].Seq != 100 || replayed[1].Seq != 101 {
		t.Fatalf("replayed %+v", replayed)
	}
}
