package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"xgftsim/internal/flow"
	"xgftsim/internal/lid"
	"xgftsim/internal/obs"
	"xgftsim/internal/stats"
	"xgftsim/internal/traffic"
)

// Config configures a Server.
type Config struct {
	// Fabrics are the served topologies; at least one is required, and
	// names must be unique.
	Fabrics []FabricSpec
	// Dir is where each fabric's write-ahead journal lives
	// (<dir>/<name>.journal).
	Dir string
	// QueueSize bounds each fabric's pending-event queue; a full queue
	// answers 429 with Retry-After. Default 1024.
	QueueSize int
	// RepairTimeout bounds one table rebuild before the fabric is
	// marked degraded. Default 30s.
	RepairTimeout time.Duration
	// BackoffBase/BackoffCap shape the capped exponential retry after
	// a failed rebuild. Defaults 100ms / 5s.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// MaxAttempts bounds rebuild retries per event batch (the fabric
	// then stays degraded until the next event). Default 4.
	MaxAttempts int
	// WedgeAfter is the repair lag past which /readyz reports the
	// fabric wedged. Default 10s.
	WedgeAfter time.Duration
	// TableBudget caps compiled-table bytes per fabric; larger fabrics
	// serve lazily. Default core's 1 GiB.
	TableBudget int64
	// MaxBatch bounds the pair count of one POST /fabrics/{name}/paths
	// batch; larger batches are rejected whole with 413. Default 8192.
	MaxBatch int
}

// Server is the multi-fabric routing control plane: an http.Handler
// answering path/LID/load queries from atomically-swapped compiled
// tables while its per-fabric workers ingest fault events.
type Server struct {
	cfg     Config
	fabrics map[string]*Fabric
	order   []string
	mux     *http.ServeMux

	runOnce sync.Once
	cancel  context.CancelFunc
	done    sync.WaitGroup
}

// New builds the server: every fabric is compiled (or declared lazy),
// its journal replayed, and its initial state published. Workers do
// not run until Start.
func New(cfg Config) (*Server, error) {
	if len(cfg.Fabrics) == 0 {
		return nil, fmt.Errorf("serve: need at least one fabric")
	}
	if cfg.Dir == "" {
		return nil, fmt.Errorf("serve: need a journal directory")
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 1024
	}
	if cfg.RepairTimeout <= 0 {
		cfg.RepairTimeout = 30 * time.Second
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 100 * time.Millisecond
	}
	if cfg.BackoffCap <= 0 {
		cfg.BackoffCap = 5 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	if cfg.WedgeAfter <= 0 {
		cfg.WedgeAfter = 10 * time.Second
	}
	if cfg.TableBudget <= 0 {
		cfg.TableBudget = 1 << 30
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 8192
	}
	s := &Server{cfg: cfg, fabrics: make(map[string]*Fabric)}
	for _, spec := range cfg.Fabrics {
		if _, dup := s.fabrics[spec.Name]; dup {
			s.closeAll()
			return nil, fmt.Errorf("serve: duplicate fabric name %q", spec.Name)
		}
		f, err := newFabric(spec, fabricOptions{
			journalPath:   filepath.Join(cfg.Dir, spec.Name+".journal"),
			queueSize:     cfg.QueueSize,
			repairTimeout: cfg.RepairTimeout,
			backoffBase:   cfg.BackoffBase,
			backoffCap:    cfg.BackoffCap,
			maxAttempts:   cfg.MaxAttempts,
			budget:        cfg.TableBudget,
		})
		if err != nil {
			s.closeAll()
			return nil, err
		}
		s.fabrics[spec.Name] = f
		s.order = append(s.order, spec.Name)
	}
	s.mux = s.buildMux()
	return s, nil
}

func (s *Server) closeAll() {
	for _, f := range s.fabrics {
		f.Close()
	}
}

// Start launches the per-fabric repair workers under ctx.
func (s *Server) Start(ctx context.Context) {
	s.runOnce.Do(func() {
		ctx, s.cancel = context.WithCancel(ctx)
		for _, name := range s.order {
			f := s.fabrics[name]
			s.done.Add(1)
			go func() {
				defer s.done.Done()
				f.run(ctx)
			}()
		}
	})
}

// Close stops the workers and closes every journal.
func (s *Server) Close() {
	if s.cancel != nil {
		s.cancel()
	}
	s.done.Wait()
	s.closeAll()
}

// Handler returns the HTTP API: the server itself, whose ServeHTTP
// fast-routes the query hot path and delegates everything else to the
// generic mux.
func (s *Server) Handler() http.Handler { return s }

// ServeHTTP routes requests. The single-pair query endpoints — the
// read hot path — are matched with allocation-free string slicing and
// dispatched to the pooled-buffer handlers in fastpath.go; everything
// else (faults, state, health, batch, LFT dumps) goes through the
// ServeMux. Unknown fabrics fall through to the mux's withFabric 404.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodGet {
		if rest, ok := strings.CutPrefix(r.URL.Path, "/fabrics/"); ok {
			if i := strings.IndexByte(rest, '/'); i > 0 {
				if f := s.fabrics[rest[:i]]; f != nil {
					switch rest[i+1:] {
					case "path":
						s.fastPath(w, r, f)
						return
					case "lid":
						s.fastLID(w, r, f)
						return
					case "maxload":
						s.fastMaxLoad(w, r, f)
						return
					}
				}
			}
		}
	}
	s.mux.ServeHTTP(w, r)
}

// Fabric returns the named fabric, nil if absent (for tests and the
// churn driver's oracle).
func (s *Server) Fabric(name string) *Fabric { return s.fabrics[name] }

func (s *Server) buildMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /fabrics", s.handleFabrics)
	mux.HandleFunc("GET /fabrics/{name}/path", s.withFabric(s.handlePath))
	mux.HandleFunc("GET /fabrics/{name}/lid", s.withFabric(s.handleLID))
	mux.HandleFunc("GET /fabrics/{name}/maxload", s.withFabric(s.handleMaxLoad))
	mux.HandleFunc("GET /fabrics/{name}/state", s.withFabric(s.handleState))
	mux.HandleFunc("GET /fabrics/{name}/lft", s.withFabric(s.handleLFT))
	mux.HandleFunc("POST /fabrics/{name}/paths", s.withFabric(s.handleBatchPaths))
	mux.HandleFunc("POST /fabrics/{name}/faults", s.withFabric(s.handleFaults))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// writeJSON encodes v as the response body. The Content-Type header
// must be installed before WriteHeader locks the headers in, and an
// Encode failure (client gone mid-body, unencodable value) is counted
// in serve.encode_errors rather than silently dropped — the status
// line is already on the wire by then, so counting is all that is
// left to do.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		met.encodeErrors.Inc()
	}
}

type errorBody struct {
	Error string `json:"error"`
}

func (s *Server) withFabric(h func(http.ResponseWriter, *http.Request, *Fabric)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		f := s.fabrics[r.PathValue("name")]
		if f == nil {
			writeJSON(w, http.StatusNotFound, errorBody{fmt.Sprintf("unknown fabric %q", r.PathValue("name"))})
			return
		}
		h(w, r, f)
	}
}

// fabricInfo is one row of GET /fabrics.
type fabricInfo struct {
	Name       string `json:"name"`
	XGFT       string `json:"xgft"`
	Scheme     string `json:"scheme"`
	K          int    `json:"k"`
	Seed       int64  `json:"seed"`
	Mode       string `json:"mode"`
	Endpoints  int    `json:"endpoints"`
	Links      int    `json:"links"`
	Gen        uint64 `json:"gen"`
	Staleness  uint64 `json:"staleness"`
	Degraded   bool   `json:"degraded"`
	QueueDepth int    `json:"queue_depth"`
}

func (s *Server) handleFabrics(w http.ResponseWriter, r *http.Request) {
	out := make([]fabricInfo, 0, len(s.order))
	for _, name := range s.order {
		f := s.fabrics[name]
		st := f.State()
		out = append(out, fabricInfo{
			Name: name, XGFT: f.Spec.XGFT, Scheme: f.Spec.Scheme, K: f.Spec.K, Seed: f.Spec.Seed,
			Mode: f.Mode(), Endpoints: f.topo.NumProcessors(), Links: f.topo.NumLinks(),
			Gen: st.gen, Staleness: f.Staleness(), Degraded: st.degraded, QueueDepth: f.QueueDepth(),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// pathResponse answers GET /fabrics/{name}/path?src=&dst=[&ports=1].
type pathResponse struct {
	Src          int     `json:"src"`
	Dst          int     `json:"dst"`
	Paths        []int   `json:"paths"` // path indices in selection order
	PortRoutes   [][]int `json:"port_routes,omitempty"`
	Gen          uint64  `json:"gen"`
	Staleness    uint64  `json:"staleness"`
	Degraded     bool    `json:"degraded"`
	Disconnected bool    `json:"disconnected,omitempty"`
	Unreachable  int     `json:"unreachable_pairs"`
	Mode         string  `json:"mode"`
}

func (s *Server) handlePath(w http.ResponseWriter, r *http.Request, f *Fabric) {
	met.queries.Inc()
	src, err1 := strconv.Atoi(r.URL.Query().Get("src"))
	dst, err2 := strconv.Atoi(r.URL.Query().Get("dst"))
	n := f.topo.NumProcessors()
	if err1 != nil || err2 != nil || src < 0 || src >= n || dst < 0 || dst >= n {
		writeJSON(w, http.StatusBadRequest, errorBody{fmt.Sprintf("want integer src,dst in [0,%d)", n)})
		return
	}
	st := f.State() // pin one state: the answer is consistent even mid-swap
	resp := pathResponse{
		Src: src, Dst: dst,
		Gen: st.gen, Staleness: f.ackedSeq.Load() - st.gen,
		Degraded: st.degraded, Unreachable: st.unreachable, Mode: f.Mode(),
	}
	if st.degraded {
		met.degradedResponses.Inc()
	}
	wantPorts := r.URL.Query().Get("ports") == "1"
	switch {
	case src == dst:
		resp.Paths = []int{}
	case st.rep != nil && (st.degraded || st.table == nil):
		// Fresh lazy repair: correct even when the table is stale.
		resp.Paths = st.rep.Paths(src, dst)
		if wantPorts {
			resp.PortRoutes = st.rep.PortRoutes(src, dst)
		}
	case st.table != nil:
		idx := st.table.PathIndices(src, dst)
		resp.Paths = make([]int, len(idx))
		for i, x := range idx {
			resp.Paths[i] = int(x)
		}
		if wantPorts {
			resp.PortRoutes = st.table.PortRoutes(src, dst)
		}
	default: // lazy mode, healthy
		resp.Paths = f.routing.Paths(src, dst)
		if wantPorts {
			resp.PortRoutes = f.routing.PortRoutes(src, dst)
		}
	}
	if len(resp.Paths) == 0 && src != dst {
		resp.Disconnected = true
	}
	writeJSON(w, http.StatusOK, resp)
}

// lidResponse answers GET /fabrics/{name}/lid?dst=.
type lidResponse struct {
	Dst       int    `json:"dst"`
	Tags      []int  `json:"tags"`
	Gen       uint64 `json:"gen"`
	Staleness uint64 `json:"staleness"`
	Degraded  bool   `json:"degraded"`
}

func (s *Server) handleLID(w http.ResponseWriter, r *http.Request, f *Fabric) {
	met.queries.Inc()
	dst, err := strconv.Atoi(r.URL.Query().Get("dst"))
	n := f.topo.NumProcessors()
	if err != nil || dst < 0 || dst >= n {
		writeJSON(w, http.StatusBadRequest, errorBody{fmt.Sprintf("want integer dst in [0,%d)", n)})
		return
	}
	st := f.State()
	rng := stats.Stream(f.Spec.Seed, int64(dst))
	var tags []int
	if st.faults != nil {
		tags, err = lid.DegradedDestinationTags(f.topo, f.routing.Selector(), dst, f.Spec.K, rng, st.faults)
	} else {
		tags, err = lid.DestinationTags(f.topo, f.routing.Selector(), dst, f.Spec.K, rng)
	}
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, errorBody{err.Error()})
		return
	}
	if st.degraded {
		met.degradedResponses.Inc()
	}
	writeJSON(w, http.StatusOK, lidResponse{
		Dst: dst, Tags: tags, Gen: st.gen,
		Staleness: f.ackedSeq.Load() - st.gen, Degraded: st.degraded,
	})
}

// maxloadResponse answers GET /fabrics/{name}/maxload?pattern=&arg=.
type maxloadResponse struct {
	Pattern   string  `json:"pattern"`
	MaxLoad   float64 `json:"max_load"`
	Flows     int     `json:"flows"`
	Gen       uint64  `json:"gen"`
	Staleness uint64  `json:"staleness"`
	Degraded  bool    `json:"degraded"`
	Mode      string  `json:"mode"`
}

func (s *Server) handleMaxLoad(w http.ResponseWriter, r *http.Request, f *Fabric) {
	met.queries.Inc()
	pattern := r.URL.Query().Get("pattern")
	arg := 1
	if a := r.URL.Query().Get("arg"); a != "" {
		var err error
		if arg, err = strconv.Atoi(a); err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{"bad arg"})
			return
		}
	}
	tm, err := traffic.BuildMatrix(f.topo, pattern, arg, f.Spec.Seed)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{err.Error()})
		return
	}
	st := f.State()
	var mload float64
	switch {
	case st.rep != nil && (st.degraded || st.table == nil):
		mload = flow.NewDegradedEvaluator(st.rep).MaxLoad(tm)
	case st.table != nil:
		mload = flow.NewCompiledEvaluator(st.table).MaxLoad(tm)
	default:
		mload = flow.NewEvaluator(f.routing).MaxLoad(tm)
	}
	if st.degraded {
		met.degradedResponses.Inc()
	}
	writeJSON(w, http.StatusOK, maxloadResponse{
		Pattern: pattern, MaxLoad: mload, Flows: tm.NumFlows(),
		Gen: st.gen, Staleness: f.ackedSeq.Load() - st.gen,
		Degraded: st.degraded, Mode: f.Mode(),
	})
}

// stateResponse answers GET /fabrics/{name}/state: the full picture a
// churn driver or operator needs to reason about convergence.
type stateResponse struct {
	Name        string `json:"name"`
	Mode        string `json:"mode"`
	Gen         uint64 `json:"gen"`
	TableGen    uint64 `json:"table_gen"`
	AckedSeq    uint64 `json:"acked_seq"`
	Staleness   uint64 `json:"staleness"`
	Degraded    bool   `json:"degraded"`
	LastError   string `json:"last_error,omitempty"`
	Unreachable int    `json:"unreachable_pairs"`
	DownLinks   []int  `json:"down_links"`
	Checksum    string `json:"checksum,omitempty"` // FNV-1a of the served table
	QueueDepth  int    `json:"queue_depth"`
	Journal     int    `json:"journal_records"`
}

func (s *Server) handleState(w http.ResponseWriter, r *http.Request, f *Fabric) {
	st := f.State()
	resp := stateResponse{
		Name: f.Spec.Name, Mode: f.Mode(),
		Gen: st.gen, TableGen: st.tableGen, AckedSeq: f.ackedSeq.Load(),
		Staleness: f.ackedSeq.Load() - st.gen,
		Degraded:  st.degraded, LastError: st.lastErr, Unreachable: st.unreachable,
		DownLinks:  []int{},
		QueueDepth: f.QueueDepth(), Journal: f.journal.Records(),
	}
	if st.faults != nil {
		for _, l := range st.faults.DownLinks() {
			resp.DownLinks = append(resp.DownLinks, int(l))
		}
	}
	if st.table != nil {
		resp.Checksum = fmt.Sprintf("%016x", st.table.Checksum())
	}
	writeJSON(w, http.StatusOK, resp)
}

// faultAck answers POST /fabrics/{name}/faults.
type faultAck struct {
	Seq uint64 `json:"seq"`
}

func (s *Server) handleFaults(w http.ResponseWriter, r *http.Request, f *Fabric) {
	var e Event
	if err := json.NewDecoder(r.Body).Decode(&e); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{fmt.Sprintf("bad event: %v", err)})
		return
	}
	if err := validateEvent(f.topo, e); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{err.Error()})
		return
	}
	seq, err := f.Submit(e)
	if err == ErrQueueFull {
		// Hint a retry after roughly the time the worker needs to chew
		// through the backlog (it coalesces, so 1s is generous).
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorBody{err.Error()})
		return
	}
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{err.Error()})
		return
	}
	updateStaleness(s.fabricSlice())
	writeJSON(w, http.StatusAccepted, faultAck{Seq: seq})
}

func (s *Server) fabricSlice() []*Fabric {
	out := make([]*Fabric, 0, len(s.order))
	for _, name := range s.order {
		out = append(out, s.fabrics[name])
	}
	return out
}

// healthFabric is one fabric's row in /healthz and /readyz.
type healthFabric struct {
	Name         string  `json:"name"`
	Gen          uint64  `json:"gen"`
	Staleness    uint64  `json:"staleness"`
	RepairLagSec float64 `json:"repair_lag_seconds"`
	Degraded     bool    `json:"degraded"`
	Wedged       bool    `json:"wedged"`
	QueueDepth   int     `json:"queue_depth"`
	LastError    string  `json:"last_error,omitempty"`
}

func (s *Server) health() (rows []healthFabric, ready bool) {
	ready = true
	for _, name := range s.order {
		f := s.fabrics[name]
		st := f.State()
		lag := f.RepairLag()
		wedged := lag > s.cfg.WedgeAfter
		if wedged {
			ready = false
		}
		rows = append(rows, healthFabric{
			Name: name, Gen: st.gen, Staleness: f.Staleness(),
			RepairLagSec: lag.Seconds(), Degraded: st.degraded, Wedged: wedged,
			QueueDepth: f.QueueDepth(), LastError: st.lastErr,
		})
	}
	return rows, ready
}

// handleHealthz always answers 200 with per-fabric repair lag: it
// reports liveness plus diagnosis, not fitness.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	rows, _ := s.health()
	writeJSON(w, http.StatusOK, map[string]any{"fabrics": rows})
}

// handleReadyz answers 503 while any fabric's repair loop is wedged
// (lag beyond WedgeAfter), 200 otherwise — degraded-but-progressing
// fabrics stay ready, they just flag their responses.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	rows, ready := s.health()
	status := http.StatusOK
	if !ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]any{"ready": ready, "fabrics": rows})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	updateStaleness(s.fabricSlice())
	w.Header().Set("Content-Type", "application/json")
	obs.Default().WriteJSON(w)
}
