// Package churn is the fault-churn soak driver for the routing
// control plane: it replays a seeded flap sequence (fail → heal →
// refail) against a live server over HTTP, interleaves path queries,
// and cross-checks every served path against a freshly repaired lazy
// oracle built from the event history the server acknowledged. A soak
// passes when no response routes over a link that was dead at the
// response's generation, no query is dropped during table swaps, and
// the server's repair lag stays bounded.
package churn

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"

	"xgftsim/internal/core"
	"xgftsim/internal/stats"
	"xgftsim/internal/topology"
)

// Config drives one soak against one fabric of a running server.
type Config struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Fabric names the fabric to churn.
	Fabric string
	// Topo / Scheme / K / Seed must match the server's fabric spec —
	// the oracle rebuilds routing state independently from them.
	Topo   *topology.Topology
	Scheme core.Selector
	K      int
	Seed   int64
	// Events is how many fault/heal events to replay.
	Events int
	// QueriesPerEvent is how many random path queries follow each
	// event (default 3).
	QueriesPerEvent int
	// FlapSeed seeds the flap and query streams.
	FlapSeed int64
	// Client overrides the HTTP client (default: 10s timeout).
	Client *http.Client
	// SettleEvery, when > 0, waits for the fabric to report staleness
	// 0 after every SettleEvery events (keeps the queue bounded on
	// slow machines). Default 64.
	SettleEvery int
	// Settle bounds one settle wait. Default 30s.
	Settle time.Duration
}

// Result summarizes a soak.
type Result struct {
	Events       int // accepted fault/heal events
	Rejected     int // 429 backpressure responses (retried)
	Queries      int
	Mismatches   int // served paths != oracle paths at same gen
	DeadLinkHits int // served paths crossing a link dead at that gen
	Degraded     int // responses flagged degraded
	MaxStaleness uint64
}

// flapUnit is one failure unit the flap sequence toggles.
type flapUnit struct {
	kind       string
	node, port int
	link       int
}

// pathResp mirrors the server's path response.
type pathResp struct {
	Paths     []int  `json:"paths"`
	Gen       uint64 `json:"gen"`
	Staleness uint64 `json:"staleness"`
	Degraded  bool   `json:"degraded"`
}

// Run executes the soak: a seeded flap sequence with interleaved
// oracle-checked path queries. It returns an error only on transport
// or protocol failures; correctness violations are counted in Result
// (callers assert on the counts so one soak reports every violation).
func (c Config) Run() (*Result, error) {
	if c.QueriesPerEvent <= 0 {
		c.QueriesPerEvent = 3
	}
	if c.SettleEvery <= 0 {
		c.SettleEvery = 64
	}
	if c.Settle <= 0 {
		c.Settle = 30 * time.Second
	}
	client := c.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	t := c.Topo
	rng := stats.Stream(c.FlapSeed, 0)
	qrng := stats.Stream(c.FlapSeed, 1)
	res := &Result{}

	// history[i] = event with seq history[i].seq, in acknowledged
	// order; the oracle replays a prefix of it to reconstruct the
	// fault set at any generation.
	type acked struct {
		seq  uint64
		op   string
		unit flapUnit
	}
	var history []acked
	oracle := newOracle(t, c.Scheme, c.K, c.Seed)

	// failed tracks currently-failed units so heals and refails target
	// real failures (the flap shape: fail fresh, heal failed, refail).
	var failed []flapUnit
	n := t.NumProcessors()

	for sent := 0; sent < c.Events; sent++ {
		var op string
		var unit flapUnit
		switch {
		case len(failed) > 0 && rng.Intn(3) == 0: // heal one in three
			op = "heal"
			i := rng.Intn(len(failed))
			unit = failed[i]
			failed = append(failed[:i], failed[i+1:]...)
		default:
			op = "fail"
			unit = randomUnit(t, rng)
			failed = append(failed, unit)
		}
		seq, rejected, err := c.post(client, op, unit)
		if err != nil {
			return res, err
		}
		res.Rejected += rejected
		res.Events++
		history = append(history, acked{seq: seq, op: op, unit: unit})

		for q := 0; q < c.QueriesPerEvent; q++ {
			src, dst := qrng.Intn(n), qrng.Intn(n)
			if src == dst {
				dst = (dst + 1) % n
			}
			pr, err := c.queryPath(client, src, dst)
			if err != nil {
				return res, err
			}
			res.Queries++
			if pr.Staleness > res.MaxStaleness {
				res.MaxStaleness = pr.Staleness
			}
			if pr.Degraded {
				res.Degraded++
				continue // a degraded response is flagged, not checked
			}
			// Reconstruct the fault set at the response's generation
			// and cross-check the served paths.
			prefix := 0
			for prefix < len(history) && history[prefix].seq <= pr.Gen {
				prefix++
			}
			events := make([]oracleEvent, prefix)
			for i := 0; i < prefix; i++ {
				events[i] = oracleEvent{op: history[i].op, unit: history[i].unit}
			}
			want, deadCrossed := oracle.check(events, src, dst, pr.Paths)
			if !want {
				res.Mismatches++
			}
			if deadCrossed {
				res.DeadLinkHits++
			}
		}

		if (sent+1)%c.SettleEvery == 0 {
			if err := c.waitSettled(client); err != nil {
				return res, err
			}
		}
	}
	if err := c.waitSettled(client); err != nil {
		return res, err
	}
	return res, nil
}

// randomUnit draws a flap unit: mostly cables, some switches, some
// bare directed links — the overlapping fault classes the repair
// closure must compose.
func randomUnit(t *topology.Topology, rng *rand.Rand) flapUnit {
	switch rng.Intn(6) {
	case 0: // a switch (levels >= 1)
		for {
			node := rng.Intn(t.NumNodes())
			if t.Level(topology.NodeID(node)) >= 1 {
				return flapUnit{kind: "switch", node: node}
			}
		}
	case 1: // one directed link
		return flapUnit{kind: "link", link: rng.Intn(t.NumLinks())}
	default: // a cable
		for {
			node := rng.Intn(t.NumNodes())
			if np := t.NumParents(topology.NodeID(node)); np > 0 {
				return flapUnit{kind: "cable", node: node, port: rng.Intn(np)}
			}
		}
	}
}

// post submits one event, retrying on 429 backpressure (honoring
// Retry-After) until accepted. Returns the acknowledged seq and how
// many rejections were retried through.
func (c Config) post(client *http.Client, op string, unit flapUnit) (uint64, int, error) {
	body, _ := json.Marshal(map[string]any{
		"op": op, "kind": unit.kind, "node": unit.node, "port": unit.port, "link": unit.link,
	})
	url := c.BaseURL + "/fabrics/" + c.Fabric + "/faults"
	rejected := 0
	for {
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, rejected, err
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
			var ack struct {
				Seq uint64 `json:"seq"`
			}
			if err := json.Unmarshal(data, &ack); err != nil {
				return 0, rejected, fmt.Errorf("churn: bad ack: %v", err)
			}
			return ack.Seq, rejected, nil
		case http.StatusTooManyRequests:
			rejected++
			wait := time.Second
			if ra := resp.Header.Get("Retry-After"); ra != "" {
				if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
					wait = time.Duration(secs) * time.Second
				}
			}
			if wait < 50*time.Millisecond {
				wait = 50 * time.Millisecond
			}
			time.Sleep(wait)
		default:
			return 0, rejected, fmt.Errorf("churn: POST faults: %s: %s", resp.Status, data)
		}
	}
}

// queryPath fetches one path response; any non-200 is a dropped query
// and fails the soak immediately.
func (c Config) queryPath(client *http.Client, src, dst int) (*pathResp, error) {
	url := fmt.Sprintf("%s/fabrics/%s/path?src=%d&dst=%d", c.BaseURL, c.Fabric, src, dst)
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		return nil, fmt.Errorf("churn: dropped query %s: %s: %s", url, resp.Status, data)
	}
	var pr pathResp
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		return nil, err
	}
	return &pr, nil
}

// waitSettled polls the fabric state until staleness reaches 0 (the
// worker caught up with every acknowledged event).
func (c Config) waitSettled(client *http.Client) error {
	deadline := time.Now().Add(c.Settle)
	url := c.BaseURL + "/fabrics/" + c.Fabric + "/state"
	for {
		resp, err := client.Get(url)
		if err != nil {
			return err
		}
		var st struct {
			Staleness uint64 `json:"staleness"`
			Degraded  bool   `json:"degraded"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if st.Staleness == 0 && !st.Degraded {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("churn: fabric %s did not settle within %v (staleness %d, degraded %v)",
				c.Fabric, c.Settle, st.Staleness, st.Degraded)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// oracleEvent is the oracle's view of one acknowledged event.
type oracleEvent struct {
	op   string
	unit flapUnit
}

// oracle independently reconstructs the repaired routing at any event
// prefix and verifies served paths. It memoizes by prefix length —
// generations are monotone, so an LRU of one per distinct prefix
// suffices for the soak's access pattern.
type oracle struct {
	topo   *topology.Topology
	r      *core.Routing
	lastN  int
	lastRR *core.RepairedRouting
	lastFS *topology.FaultSet
}

func newOracle(t *topology.Topology, sel core.Selector, k int, seed int64) *oracle {
	return &oracle{topo: t, r: core.NewRouting(t, sel, k, seed), lastN: -1}
}

// check verifies served paths for (src, dst) at the fault state after
// the given event prefix: match = indices equal the oracle's repaired
// selection, deadCrossed = any served path crosses a currently-dead
// link.
func (o *oracle) check(events []oracleEvent, src, dst int, served []int) (match, deadCrossed bool) {
	if len(events) != o.lastN {
		fs := topology.NewFaultSet(o.topo)
		counts := make(map[flapUnit]int)
		for _, e := range events {
			if e.op == "fail" {
				counts[e.unit]++
			} else if counts[e.unit] > 0 {
				counts[e.unit]--
			}
		}
		for u, c := range counts {
			if c == 0 {
				continue
			}
			switch u.kind {
			case "cable":
				fs.FailCable(topology.NodeID(u.node), u.port)
			case "switch":
				fs.FailSwitch(topology.NodeID(u.node))
			case "link":
				fs.FailLink(topology.LinkID(u.link))
			}
		}
		o.lastFS = fs
		o.lastRR = o.r.MustRepair(fs)
		o.lastN = len(events)
	}
	want := o.lastRR.Paths(src, dst)
	match = len(want) == len(served)
	if match {
		for i := range want {
			if want[i] != served[i] {
				match = false
				break
			}
		}
	}
	k := o.topo.NCALevel(src, dst)
	up := make([]int, 0, 8)
	var links []topology.LinkID
	for _, idx := range served {
		up = core.DecodePathIndex(o.topo, k, idx, up[:0])
		links = o.topo.AppendPathLinksNCA(links[:0], src, dst, k, up)
		for _, l := range links {
			if o.lastFS.LinkDown(l) {
				deadCrossed = true
			}
		}
	}
	return match, deadCrossed
}
