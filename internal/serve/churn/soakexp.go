package churn

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"

	"xgftsim/internal/cliutil"
	"xgftsim/internal/core"
	"xgftsim/internal/experiments"
	"xgftsim/internal/serve"
)

// Soak is the churn-soak experiment behind `xgftpaper -exp churnsoak`:
// it boots an in-process control-plane server over two fabrics, drives
// the seeded flap soak against each, and reports the oracle-checked
// counters as a table. Quick scale replays ~150 events per fabric, the
// full/paper scales ~600. Any violation (mismatch, dead-link hit,
// dropped query) shows up as a non-zero cell; transport errors abort.
func Soak(scale experiments.Scale, seed int64) (*experiments.Table, error) {
	specs := []serve.FabricSpec{
		{Name: "edge", XGFT: "2;4,4;1,4", Scheme: "d-mod-k", K: 4, Seed: 2012},
		{Name: "pod", XGFT: "3;2,2,2;1,2,2", Scheme: "disjoint", K: 2, Seed: 7},
	}
	events := 150
	if scale.Name == "full" || scale.Name == "paper" {
		events = 600
	}

	dir, err := os.MkdirTemp("", "xgft-churnsoak-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	s, err := serve.New(serve.Config{Fabrics: specs, Dir: dir})
	if err != nil {
		return nil, err
	}
	defer s.Close()
	ctx := scale.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	s.Start(ctx)
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	tab := &experiments.Table{
		Title:   fmt.Sprintf("Churn soak: %d events/fabric, oracle-checked (scale %s)", events, scale.Name),
		XLabel:  "fabric",
		Columns: []string{"events", "429 retries", "queries", "mismatches", "dead-link hits", "degraded", "max staleness"},
		Footnote: "mismatches/dead-link hits/degraded must be 0: every served path equals an " +
			"independently repaired oracle's and crosses no dead link",
	}
	for i, spec := range specs {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		topo, err := cliutil.ParseXGFT(spec.XGFT)
		if err != nil {
			return nil, err
		}
		sel, err := core.SelectorByName(spec.Scheme)
		if err != nil {
			return nil, err
		}
		res, err := Config{
			BaseURL:  hs.URL,
			Fabric:   spec.Name,
			Topo:     topo,
			Scheme:   sel,
			K:        spec.K,
			Seed:     spec.Seed,
			Events:   events,
			FlapSeed: seed + int64(i),
		}.Run()
		if err != nil {
			return nil, fmt.Errorf("churn soak: fabric %s: %w", spec.Name, err)
		}
		tab.XValues = append(tab.XValues, spec.Name)
		tab.Cells = append(tab.Cells, []experiments.Cell{
			{Mean: float64(res.Events), Samples: res.Events},
			{Mean: float64(res.Rejected)},
			{Mean: float64(res.Queries), Samples: res.Queries},
			{Mean: float64(res.Mismatches)},
			{Mean: float64(res.DeadLinkHits)},
			{Mean: float64(res.Degraded)},
			{Mean: float64(res.MaxStaleness)},
		})
	}
	return tab, nil
}
