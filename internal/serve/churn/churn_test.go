package churn

import (
	"context"
	"net/http/httptest"
	"testing"

	"xgftsim/internal/cliutil"
	"xgftsim/internal/core"
	"xgftsim/internal/serve"
)

// TestChurnSoak replays a seeded flap sequence of 500+ events against a
// two-fabric server and cross-checks every served path against the
// lazy oracle: zero mismatches, zero paths over dead links, zero
// dropped queries (Run errors on any non-200), bounded repair lag.
func TestChurnSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak is seconds-long; skipped under -short")
	}
	specs := []serve.FabricSpec{
		{Name: "edge", XGFT: "2;4,4;1,4", Scheme: "d-mod-k", K: 4, Seed: 2012},
		{Name: "pod", XGFT: "3;2,2,2;1,2,2", Scheme: "disjoint", K: 2, Seed: 7},
	}
	s, err := serve.New(serve.Config{Fabrics: specs, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	defer s.Close()
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	events := []int{500, 150} // edge takes the long soak, pod a shorter one
	for i, spec := range specs {
		topo, err := cliutil.ParseXGFT(spec.XGFT)
		if err != nil {
			t.Fatal(err)
		}
		sel, err := core.SelectorByName(spec.Scheme)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Config{
			BaseURL:  hs.URL,
			Fabric:   spec.Name,
			Topo:     topo,
			Scheme:   sel,
			K:        spec.K,
			Seed:     spec.Seed,
			Events:   events[i],
			FlapSeed: 42 + int64(i),
		}.Run()
		if err != nil {
			t.Fatalf("fabric %s: soak aborted (dropped query or transport error): %v", spec.Name, err)
		}
		t.Logf("fabric %s: %d events (%d retried through 429), %d queries, maxStaleness %d, %d degraded",
			spec.Name, res.Events, res.Rejected, res.Queries, res.MaxStaleness, res.Degraded)
		if res.Events != events[i] {
			t.Errorf("fabric %s: %d events accepted, want %d", spec.Name, res.Events, events[i])
		}
		if res.Mismatches != 0 {
			t.Errorf("fabric %s: %d served paths disagreed with the oracle", spec.Name, res.Mismatches)
		}
		if res.DeadLinkHits != 0 {
			t.Errorf("fabric %s: %d served paths crossed dead links", spec.Name, res.DeadLinkHits)
		}
		if res.Degraded != 0 {
			t.Errorf("fabric %s: %d degraded responses with the default budget", spec.Name, res.Degraded)
		}
	}
}
