package serve

import "xgftsim/internal/obs"

// Control-plane metrics, registered in the shared obs registry the
// /metrics endpoint exports: event admission and rejection, queue
// occupancy, repair latency and failures, table swaps, and how stale
// and degraded the served tables currently are. All are process-wide
// (summed over fabrics); per-fabric detail lives on /healthz.
var met = struct {
	eventsAccepted    *obs.Counter
	eventsRejected    *obs.Counter
	queueDepth        *obs.Gauge
	queueDepthMax     *obs.Gauge
	tableSwaps        *obs.Counter
	repairSeconds     *obs.Histogram
	repairFailures    *obs.Counter
	repairTimeouts    *obs.Counter
	compactions       *obs.Counter
	queries           *obs.Counter
	degradedResponses *obs.Counter
	staleness         *obs.Gauge
	encodeErrors      *obs.Counter
	memoHits          *obs.Counter
	batchQueries      *obs.Counter
	batchPairs        *obs.Counter
	batchRejected     *obs.Counter
	batchAborted      *obs.Counter
	lftDumps          *obs.Counter
}{
	eventsAccepted:    obs.Default().Counter("serve.events_accepted"),
	eventsRejected:    obs.Default().Counter("serve.events_rejected"),
	queueDepth:        obs.Default().Gauge("serve.queue_depth"),
	queueDepthMax:     obs.Default().Gauge("serve.queue_depth_max"),
	tableSwaps:        obs.Default().Counter("serve.table_swaps"),
	repairSeconds:     obs.Default().Histogram("serve.repair_seconds", []float64{0.0001, 0.001, 0.01, 0.05, 0.1, 0.5, 1, 5, 15, 60}),
	repairFailures:    obs.Default().Counter("serve.repair_failures"),
	repairTimeouts:    obs.Default().Counter("serve.repair_timeouts"),
	compactions:       obs.Default().Counter("serve.journal_compactions"),
	queries:           obs.Default().Counter("serve.queries"),
	degradedResponses: obs.Default().Counter("serve.degraded_responses"),
	staleness:         obs.Default().Gauge("serve.staleness_events"),
	encodeErrors:      obs.Default().Counter("serve.encode_errors"),
	memoHits:          obs.Default().Counter("serve.memo_hits"),
	batchQueries:      obs.Default().Counter("serve.batch_queries"),
	batchPairs:        obs.Default().Counter("serve.batch_pairs"),
	batchRejected:     obs.Default().Counter("serve.batch_rejected"),
	batchAborted:      obs.Default().Counter("serve.batch_aborted"),
	lftDumps:          obs.Default().Counter("serve.lft_dumps"),
}

// updateStaleness recomputes the summed staleness gauge; called after
// swaps and admissions (cheap: a load per fabric).
func updateStaleness(fabrics []*Fabric) {
	var total int64
	for _, f := range fabrics {
		total += int64(f.Staleness())
	}
	met.staleness.Set(total)
}
