package serve

import (
	"net/http"
	"strconv"
	"strings"
	"sync"

	"xgftsim/internal/flow"
	"xgftsim/internal/lid"
	"xgftsim/internal/stats"
	"xgftsim/internal/traffic"
)

// The query hot path. GET path / lid / maxload answers are the
// control plane's read traffic, and at production fan-out their cost
// is dominated by per-request heap churn, not routing math: the
// generic handlers burn a url.Values map, a reflective json.Encoder
// and a fresh response struct per request. The handlers in this file
// answer the same queries with zero heap allocation per request on the
// compiled-table path after warmup (pinned by TestFastPathZeroAlloc):
//
//   - query parameters are scanned straight out of RawQuery (no map),
//   - responses are appended into a pooled byte buffer with
//     strconv appenders (no reflection),
//   - compiled-table path answers encode directly from the table's
//     CSR rows (PathIndices aliases, never copies),
//   - maxload and LID-tag answers are memoized per published fabState
//     snapshot, so repeated queries between repairs are O(1) map hits.
//
// Lazy-mode and degraded-path answers still allocate (they walk or
// repair per pair); that is the documented cost of the degradation
// ladder, not of the hot path.

// jsonCT is the shared Content-Type value the fast path installs
// without allocating a fresh one-element slice per request. Handlers
// must never mutate it.
var jsonCT = []string{"application/json"}

// setJSONContentType installs the JSON content type allocation-free.
func setJSONContentType(w http.ResponseWriter) {
	h := w.Header()
	if len(h["Content-Type"]) == 0 {
		h["Content-Type"] = jsonCT
	}
}

// respBuf is a pooled response scratch buffer. The pool holds pointers
// so Get/Put never box.
type respBuf struct {
	b []byte
}

var bufPool = sync.Pool{New: func() any { return &respBuf{b: make([]byte, 0, 4096)} }}

// queryParam scans the raw query string for key and returns its value
// without building a url.Values map. The value aliases raw and is not
// percent-unescaped: the fast-path parameters (integers and pattern
// names) never contain escapes, and anything else fails validation
// downstream exactly as an escaped value would.
func queryParam(raw, key string) (string, bool) {
	for len(raw) > 0 {
		var kv string
		if i := strings.IndexByte(raw, '&'); i >= 0 {
			kv, raw = raw[:i], raw[i+1:]
		} else {
			kv, raw = raw, ""
		}
		eq := strings.IndexByte(kv, '=')
		if eq < 0 {
			if kv == key {
				return "", true
			}
			continue
		}
		if kv[:eq] == key {
			return kv[eq+1:], true
		}
	}
	return "", false
}

// parseInt is strconv.Atoi without the error allocation on bad input.
func parseInt(s string) (int, bool) {
	if s == "" {
		return 0, false
	}
	neg := false
	i := 0
	if s[0] == '-' {
		if len(s) == 1 {
			return 0, false
		}
		neg, i = true, 1
	}
	n := 0
	for ; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
		if n > 1<<31 {
			return 0, false
		}
	}
	if neg {
		n = -n
	}
	return n, true
}

// queryIntParam extracts an integer query parameter; ok is false when
// the key is absent or not an integer.
func queryIntParam(raw, key string) (int, bool) {
	v, present := queryParam(raw, key)
	if !present {
		return 0, false
	}
	return parseInt(v)
}

// appendBool appends "true" or "false".
func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, "true"...)
	}
	return append(b, "false"...)
}

// finishJSON writes the buffer as the 200 response and returns it to
// the pool.
func finishJSON(w http.ResponseWriter, rb *respBuf, b []byte) {
	b = append(b, '\n')
	setJSONContentType(w)
	w.WriteHeader(http.StatusOK)
	w.Write(b)
	rb.b = b[:0]
	bufPool.Put(rb)
}

// fastPath answers GET /fabrics/{name}/path?src=&dst= with the same
// JSON the generic handler produced, zero-alloc on the compiled path.
func (s *Server) fastPath(w http.ResponseWriter, r *http.Request, f *Fabric) {
	raw := r.URL.RawQuery
	if v, ok := queryParam(raw, "ports"); ok && v == "1" {
		// Port-route expansion is inherently allocating; use the
		// generic handler (which counts the query itself).
		s.handlePath(w, r, f)
		return
	}
	met.queries.Inc()
	src, okS := queryIntParam(raw, "src")
	dst, okD := queryIntParam(raw, "dst")
	n := f.topo.NumProcessors()
	if !okS || !okD || src < 0 || src >= n || dst < 0 || dst >= n {
		writeError(w, http.StatusBadRequest, "want integer src,dst in [0,", n)
		return
	}
	st := f.State()
	if st.degraded {
		met.degradedResponses.Inc()
	}
	rb := bufPool.Get().(*respBuf)
	b := rb.b[:0]
	b = append(b, `{"src":`...)
	b = strconv.AppendInt(b, int64(src), 10)
	b = append(b, `,"dst":`...)
	b = strconv.AppendInt(b, int64(dst), 10)
	b = append(b, `,"paths":[`...)
	npaths := 0
	switch {
	case src == dst:
	case st.rep != nil && (st.degraded || st.table == nil):
		// Fresh lazy repair: correct even when the table is stale.
		b, npaths = appendIntList(b, st.rep.Paths(src, dst))
	case st.table != nil:
		b, npaths = appendInt32List(b, st.table.PathIndices(src, dst))
	default: // lazy mode, healthy
		b, npaths = appendIntList(b, f.routing.Paths(src, dst))
	}
	b = append(b, `],"gen":`...)
	b = strconv.AppendUint(b, st.gen, 10)
	b = append(b, `,"staleness":`...)
	b = strconv.AppendUint(b, f.ackedSeq.Load()-st.gen, 10)
	b = append(b, `,"degraded":`...)
	b = appendBool(b, st.degraded)
	if npaths == 0 && src != dst {
		b = append(b, `,"disconnected":true`...)
	}
	b = append(b, `,"unreachable_pairs":`...)
	b = strconv.AppendInt(b, int64(st.unreachable), 10)
	b = append(b, `,"mode":"`...)
	b = append(b, f.Mode()...)
	b = append(b, `"}`...)
	finishJSON(w, rb, b)
}

func appendIntList(b []byte, xs []int) ([]byte, int) {
	for i, x := range xs {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(x), 10)
	}
	return b, len(xs)
}

func appendInt32List(b []byte, xs []int32) ([]byte, int) {
	for i, x := range xs {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(x), 10)
	}
	return b, len(xs)
}

// fastLID answers GET /fabrics/{name}/lid?dst=. Tag computation runs
// the selector with its RNG streams and allocates, so the answer is
// memoized per snapshot: the first query per destination pays, every
// repeat between repairs is a map hit.
func (s *Server) fastLID(w http.ResponseWriter, r *http.Request, f *Fabric) {
	met.queries.Inc()
	dst, ok := queryIntParam(r.URL.RawQuery, "dst")
	n := f.topo.NumProcessors()
	if !ok || dst < 0 || dst >= n {
		writeError(w, http.StatusBadRequest, "want integer dst in [0,", n)
		return
	}
	st := f.State()
	e, hit := st.cache.tagsFor(dst)
	if hit {
		met.memoHits.Inc()
	} else {
		rng := stats.Stream(f.Spec.Seed, int64(dst))
		var tags []int
		var err error
		if st.faults != nil {
			tags, err = lid.DegradedDestinationTags(f.topo, f.routing.Selector(), dst, f.Spec.K, rng, st.faults)
		} else {
			tags, err = lid.DestinationTags(f.topo, f.routing.Selector(), dst, f.Spec.K, rng)
		}
		e = tagEntry{tags: tags}
		if err != nil {
			e = tagEntry{err: err.Error()}
		}
		st.cache.storeTags(dst, e)
	}
	if e.err != "" {
		writeJSON(w, http.StatusUnprocessableEntity, errorBody{e.err})
		return
	}
	if st.degraded {
		met.degradedResponses.Inc()
	}
	rb := bufPool.Get().(*respBuf)
	b := rb.b[:0]
	b = append(b, `{"dst":`...)
	b = strconv.AppendInt(b, int64(dst), 10)
	b = append(b, `,"tags":[`...)
	b, _ = appendIntList(b, e.tags)
	b = append(b, `],"gen":`...)
	b = strconv.AppendUint(b, st.gen, 10)
	b = append(b, `,"staleness":`...)
	b = strconv.AppendUint(b, f.ackedSeq.Load()-st.gen, 10)
	b = append(b, `,"degraded":`...)
	b = appendBool(b, st.degraded)
	b = append(b, '}')
	finishJSON(w, rb, b)
}

// fastMaxLoad answers GET /fabrics/{name}/maxload?pattern=&arg=. A
// maxload evaluation walks every flow of the traffic matrix, so it is
// memoized per snapshot: repeated queries between repairs are O(1).
// Only syntactically valid pattern names reach the 200 encoder (an
// unknown pattern caches a sticky error and answers 400 through the
// generic JSON writer), so the raw pattern substring can be embedded
// in the response without escaping.
func (s *Server) fastMaxLoad(w http.ResponseWriter, r *http.Request, f *Fabric) {
	met.queries.Inc()
	raw := r.URL.RawQuery
	pattern, _ := queryParam(raw, "pattern")
	arg := 1
	if a, ok := queryParam(raw, "arg"); ok {
		var okInt bool
		if arg, okInt = parseInt(a); !okInt {
			writeJSON(w, http.StatusBadRequest, errorBody{"bad arg"})
			return
		}
	}
	st := f.State()
	e, hit := st.cache.maxloadFor(pattern, arg)
	if hit {
		met.memoHits.Inc()
	} else {
		e = f.evalMaxLoad(st, pattern, arg)
		// Clone: pattern aliases the request's query string.
		st.cache.storeMaxload(strings.Clone(pattern), arg, e)
	}
	if e.err != "" {
		writeJSON(w, http.StatusBadRequest, errorBody{e.err})
		return
	}
	if st.degraded {
		met.degradedResponses.Inc()
	}
	rb := bufPool.Get().(*respBuf)
	b := rb.b[:0]
	b = append(b, `{"pattern":"`...)
	b = append(b, pattern...)
	b = append(b, `","max_load":`...)
	b = strconv.AppendFloat(b, e.load, 'g', -1, 64)
	b = append(b, `,"flows":`...)
	b = strconv.AppendInt(b, int64(e.flows), 10)
	b = append(b, `,"gen":`...)
	b = strconv.AppendUint(b, st.gen, 10)
	b = append(b, `,"staleness":`...)
	b = strconv.AppendUint(b, f.ackedSeq.Load()-st.gen, 10)
	b = append(b, `,"degraded":`...)
	b = appendBool(b, st.degraded)
	b = append(b, `,"mode":"`...)
	b = append(b, f.Mode()...)
	b = append(b, `"}`...)
	finishJSON(w, rb, b)
}

// evalMaxLoad computes one maxload answer against the pinned state —
// the uncached slow half of fastMaxLoad.
func (f *Fabric) evalMaxLoad(st *fabState, pattern string, arg int) mlEntry {
	tm, err := traffic.BuildMatrix(f.topo, pattern, arg, f.Spec.Seed)
	if err != nil {
		return mlEntry{err: err.Error()}
	}
	var mload float64
	switch {
	case st.rep != nil && (st.degraded || st.table == nil):
		mload = flow.NewDegradedEvaluator(st.rep).MaxLoad(tm)
	case st.table != nil:
		mload = flow.NewCompiledEvaluator(st.table).MaxLoad(tm)
	default:
		mload = flow.NewEvaluator(f.routing).MaxLoad(tm)
	}
	return mlEntry{load: mload, flows: tm.NumFlows()}
}

// writeError emits a {"error": "<msg><n>)"} body for the fast path's
// range errors. It allocates (error paths may), but keeps the message
// format of the generic handlers.
func writeError(w http.ResponseWriter, status int, prefix string, n int) {
	writeJSON(w, status, errorBody{prefix + strconv.Itoa(n) + ")"})
}
