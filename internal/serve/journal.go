// Package serve is the long-running routing control plane: it holds
// compiled routing tables for multiple named fabrics, answers path /
// LID / load queries over HTTP, and ingests live fault and repair
// events. Every accepted event is journaled before it is acknowledged,
// applied as a delta-compiled copy-on-write table swap (readers never
// block), and degradations — repair failures, over-budget recompiles,
// wedged repair loops — keep the last good table serving, flagged as
// stale, instead of failing queries.
package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Event is one fault or repair notification. Kind selects the failure
// unit and which locator fields matter: a cable (child Node + up-port
// Port, both directed links), a whole switch (Node), or a single
// directed link (Link). Seq is assigned by the server at admission, in
// journal order; clients submit events with Seq zero.
type Event struct {
	Seq  uint64 `json:"seq"`
	Op   string `json:"op"`   // "fail" | "heal"
	Kind string `json:"kind"` // "cable" | "switch" | "link"
	Node int    `json:"node,omitempty"`
	Port int    `json:"port,omitempty"`
	Link int    `json:"link,omitempty"`
}

// key collapses an event to its failure unit, so fail and heal of the
// same unit cancel in the fault bookkeeping.
func (e Event) key() eventKey { return eventKey{Kind: e.Kind, Node: e.Node, Port: e.Port, Link: e.Link} }

type eventKey struct {
	Kind       string
	Node, Port int
	Link       int
}

// Journal is a write-ahead fault log: JSON lines, one event per line,
// fsync'd before an event is acknowledged, so a crashed or killed
// server replays exactly the events it accepted and converges to the
// same degraded state. A torn final line (crash mid-write) is
// truncated away on open — it was never acknowledged, so dropping it
// is correct.
type Journal struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	records int // acknowledged events currently in the file
}

// OpenJournal opens (creating if absent) the journal at path and
// replays its events in order. The returned slice is the acknowledged
// history; a torn tail is truncated before the file is reopened for
// appending.
func OpenJournal(path string) (*Journal, []Event, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, nil, fmt.Errorf("serve: journal dir: %w", err)
	}
	events, keep, err := readJournal(path)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: open journal: %w", err)
	}
	if err := f.Truncate(keep); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("serve: truncate torn journal tail: %w", err)
	}
	if _, err := f.Seek(keep, 0); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &Journal{f: f, path: path, records: len(events)}, events, nil
}

// readJournal parses the journal, returning the valid events and the
// byte offset the valid prefix ends at (where a torn tail, if any,
// begins).
func readJournal(path string) ([]Event, int64, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("serve: read journal: %w", err)
	}
	var events []Event
	var keep int64
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // unterminated tail: crash mid-write, never acknowledged
		}
		line := data[off : off+nl]
		var e Event
		if len(bytes.TrimSpace(line)) > 0 {
			if err := json.Unmarshal(line, &e); err != nil {
				break // corrupt tail record: treat like a torn write
			}
			events = append(events, e)
		}
		off += nl + 1
		keep = int64(off)
	}
	return events, keep, nil
}

// Append durably records one event: the line is written and fsync'd
// before Append returns, so an acknowledged event survives a crash.
func (j *Journal) Append(e Event) error {
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(data); err != nil {
		return fmt.Errorf("serve: journal append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("serve: journal fsync: %w", err)
	}
	j.records++
	return nil
}

// Records returns how many acknowledged events the file holds
// (including compacted history).
func (j *Journal) Records() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.records
}

// Compact atomically replaces the journal with the given snapshot
// events (typically the currently-failed units re-stamped with the
// latest sequence number): they are written to a temp file, fsync'd,
// and renamed over the journal, so a crash at any point leaves either
// the old complete log or the new one. Replaying the snapshot yields
// the same fault state as replaying the full history.
func (j *Journal) Compact(events []Event) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	dir := filepath.Dir(j.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(j.path)+".compact-*")
	if err != nil {
		return err
	}
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	w := bufio.NewWriter(tmp)
	for _, e := range events {
		data, err := json.Marshal(e)
		if err != nil {
			return cleanup(err)
		}
		data = append(data, '\n')
		if _, err := w.Write(data); err != nil {
			return cleanup(err)
		}
	}
	if err := w.Flush(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		return cleanup(err)
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	syncDir(dir)
	old := j.f
	f, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		// The compacted file is in place but we lost our handle; keep
		// appending to the old (now unlinked) handle would lose events,
		// so surface the error and leave the journal closed for writes.
		return fmt.Errorf("serve: reopen compacted journal: %w", err)
	}
	j.f = f
	old.Close()
	j.records = len(events)
	return nil
}

// syncDir fsyncs a directory so a rename within it is durable;
// best-effort on platforms where directories cannot be opened.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// Close releases the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
