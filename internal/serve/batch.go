package serve

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// Batch query API: POST /fabrics/{name}/paths answers up to MaxBatch
// (src, dst[, k]) triples in one round trip, so one request amortizes
// connection handling, routing-table pinning (one atomic snapshot for
// the whole batch) and encoding across thousands of pairs.
//
// Request body (JSON):
//
//	{"pairs": [[0,5], [3,7,2], ...], "k": 0}
//
// Each pair is [src, dst] or [src, dst, k]; the optional top-level
// "k" is the default path limit for pairs without their own (0 = all
// compiled paths). Because every built-in selector is prefix-nested
// (core.PrefixNested), the first k compiled indices ARE the pair's
// K-limited path set, so limiting costs a slice bound, not a reroute.
//
// The whole batch is validated before any answer is produced: a
// malformed body, an out-of-range endpoint or a bad k rejects the
// batch (400; 413 when oversized) without consuming any server state —
// batch queries never touch the fault sequence numbers.
//
// Responses are streamed. The default encoding is JSON:
//
//	{"gen":3,"staleness":0,"degraded":false,"mode":"compiled","count":2,
//	 "results":[{"src":0,"dst":5,"paths":[..]}, ...]}
//
// A client that sends Accept: application/x-xgft-batch gets the
// compact binary frame instead (little-endian):
//
//	offset 0  magic "XGFB"
//	       4  version  uint8 = 1
//	       5  flags    uint8 (bit0 = degraded)
//	       6  reserved uint16 = 0
//	       8  gen       uint64
//	      16  staleness uint64
//	      24  count     uint32
//	      28  per pair: npaths uint32, then npaths × uint32 path ids
//
// npaths == 0 for a disconnected (or self) pair. The frame holds
// exactly count pair records in request order.

// BinaryBatchContentType is the negotiated compact encoding of the
// batch path endpoint.
const BinaryBatchContentType = "application/x-xgft-batch"

// binaryBatchVersion is stamped into every binary frame.
const binaryBatchVersion = 1

// batchRequest is the decoded POST /fabrics/{name}/paths body.
type batchRequest struct {
	Pairs [][]int `json:"pairs"`
	K     int     `json:"k"`
}

// batchFlushBytes bounds how much response accumulates in the pooled
// buffer before it is flushed to the client mid-batch.
const batchFlushBytes = 64 << 10

func (s *Server) handleBatchPaths(w http.ResponseWriter, r *http.Request, f *Fabric) {
	var req batchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<24))
	if err := dec.Decode(&req); err != nil {
		met.batchRejected.Inc()
		writeJSON(w, http.StatusBadRequest, errorBody{fmt.Sprintf("bad batch body: %v", err)})
		return
	}
	if len(req.Pairs) == 0 {
		met.batchRejected.Inc()
		writeJSON(w, http.StatusBadRequest, errorBody{"empty batch: want pairs [[src,dst],...]"})
		return
	}
	if len(req.Pairs) > s.cfg.MaxBatch {
		met.batchRejected.Inc()
		writeJSON(w, http.StatusRequestEntityTooLarge,
			errorBody{fmt.Sprintf("batch of %d pairs exceeds the %d-pair limit", len(req.Pairs), s.cfg.MaxBatch)})
		return
	}
	n := f.topo.NumProcessors()
	if req.K < 0 {
		met.batchRejected.Inc()
		writeJSON(w, http.StatusBadRequest, errorBody{fmt.Sprintf("bad default k %d", req.K)})
		return
	}
	// Validate the whole batch up front: rejection is all-or-nothing,
	// so a client never has to pick partial answers out of an error.
	for i, p := range req.Pairs {
		if len(p) != 2 && len(p) != 3 {
			met.batchRejected.Inc()
			writeJSON(w, http.StatusBadRequest,
				errorBody{fmt.Sprintf("pair %d: want [src,dst] or [src,dst,k], got %d elements", i, len(p))})
			return
		}
		if p[0] < 0 || p[0] >= n || p[1] < 0 || p[1] >= n {
			met.batchRejected.Inc()
			writeJSON(w, http.StatusBadRequest,
				errorBody{fmt.Sprintf("pair %d: endpoints (%d,%d) out of range [0,%d)", i, p[0], p[1], n)})
			return
		}
		if len(p) == 3 && p[2] < 0 {
			met.batchRejected.Inc()
			writeJSON(w, http.StatusBadRequest, errorBody{fmt.Sprintf("pair %d: bad k %d", i, p[2])})
			return
		}
	}

	met.batchQueries.Inc()
	met.batchPairs.Add(int64(len(req.Pairs)))
	st := f.State() // one pinned snapshot answers the whole batch
	if st.degraded {
		met.degradedResponses.Inc()
	}
	if acceptsBinaryBatch(r.Header.Get("Accept")) {
		s.writeBatchBinary(w, f, st, req)
		return
	}
	s.writeBatchJSON(w, f, st, req)
}

// acceptsBinaryBatch reports whether the Accept header asks for the
// compact frame (an exact media-type match anywhere in the list).
func acceptsBinaryBatch(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		part = strings.TrimSpace(part)
		if i := strings.IndexByte(part, ';'); i >= 0 {
			part = strings.TrimSpace(part[:i])
		}
		if part == BinaryBatchContentType {
			return true
		}
	}
	return false
}

// batchPaths resolves one pair's path indices against the pinned
// snapshot, appending them as int32 into idxBuf (reused across pairs);
// k == 0 means no limit.
func (f *Fabric) batchPaths(st *fabState, src, dst, k int, idxBuf []int32) []int32 {
	idxBuf = idxBuf[:0]
	switch {
	case src == dst:
	case st.rep != nil && (st.degraded || st.table == nil):
		for _, p := range st.rep.Paths(src, dst) {
			idxBuf = append(idxBuf, int32(p))
		}
	case st.table != nil:
		idxBuf = append(idxBuf, st.table.PathIndices(src, dst)...)
	default:
		for _, p := range f.routing.Paths(src, dst) {
			idxBuf = append(idxBuf, int32(p))
		}
	}
	if k > 0 && len(idxBuf) > k {
		idxBuf = idxBuf[:k]
	}
	return idxBuf
}

func pairK(p []int, defaultK int) int {
	if len(p) == 3 {
		return p[2]
	}
	return defaultK
}

func (s *Server) writeBatchJSON(w http.ResponseWriter, f *Fabric, st *fabState, req batchRequest) {
	setJSONContentType(w)
	w.WriteHeader(http.StatusOK)
	rb := bufPool.Get().(*respBuf)
	b := rb.b[:0]
	var idxBuf []int32
	b = append(b, `{"gen":`...)
	b = strconv.AppendUint(b, st.gen, 10)
	b = append(b, `,"staleness":`...)
	b = strconv.AppendUint(b, f.ackedSeq.Load()-st.gen, 10)
	b = append(b, `,"degraded":`...)
	b = appendBool(b, st.degraded)
	b = append(b, `,"mode":"`...)
	b = append(b, f.Mode()...)
	b = append(b, `","count":`...)
	b = strconv.AppendInt(b, int64(len(req.Pairs)), 10)
	b = append(b, `,"results":[`...)
	for i, p := range req.Pairs {
		if i > 0 {
			b = append(b, ',')
		}
		src, dst := p[0], p[1]
		idxBuf = f.batchPaths(st, src, dst, pairK(p, req.K), idxBuf)
		b = append(b, `{"src":`...)
		b = strconv.AppendInt(b, int64(src), 10)
		b = append(b, `,"dst":`...)
		b = strconv.AppendInt(b, int64(dst), 10)
		b = append(b, `,"paths":[`...)
		b, _ = appendInt32List(b, idxBuf)
		b = append(b, `]}`...)
		if len(b) >= batchFlushBytes {
			if _, err := w.Write(b); err != nil {
				met.batchAborted.Inc()
				rb.b = b[:0]
				bufPool.Put(rb)
				return
			}
			b = b[:0]
		}
	}
	b = append(b, `]}`...)
	b = append(b, '\n')
	if _, err := w.Write(b); err != nil {
		met.batchAborted.Inc()
	}
	rb.b = b[:0]
	bufPool.Put(rb)
}

var binaryCT = []string{BinaryBatchContentType}

func (s *Server) writeBatchBinary(w http.ResponseWriter, f *Fabric, st *fabState, req batchRequest) {
	h := w.Header()
	if len(h["Content-Type"]) == 0 {
		h["Content-Type"] = binaryCT
	}
	w.WriteHeader(http.StatusOK)
	rb := bufPool.Get().(*respBuf)
	b := rb.b[:0]
	var idxBuf []int32
	b = append(b, "XGFB"...)
	b = append(b, binaryBatchVersion)
	var flags byte
	if st.degraded {
		flags |= 1
	}
	b = append(b, flags, 0, 0)
	b = binary.LittleEndian.AppendUint64(b, st.gen)
	b = binary.LittleEndian.AppendUint64(b, f.ackedSeq.Load()-st.gen)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(req.Pairs)))
	for _, p := range req.Pairs {
		idxBuf = f.batchPaths(st, p[0], p[1], pairK(p, req.K), idxBuf)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(idxBuf)))
		for _, id := range idxBuf {
			b = binary.LittleEndian.AppendUint32(b, uint32(id))
		}
		if len(b) >= batchFlushBytes {
			if _, err := w.Write(b); err != nil {
				met.batchAborted.Inc()
				rb.b = b[:0]
				bufPool.Put(rb)
				return
			}
			b = b[:0]
		}
	}
	if _, err := w.Write(b); err != nil {
		met.batchAborted.Inc()
	}
	rb.b = b[:0]
	bufPool.Put(rb)
}

// BatchFrame is a decoded binary batch response (client-side helper
// for the load generator and tests).
type BatchFrame struct {
	Gen       uint64
	Staleness uint64
	Degraded  bool
	Paths     [][]uint32 // per requested pair, in request order
}

// DecodeBatchFrame parses a binary batch response frame.
func DecodeBatchFrame(data []byte) (*BatchFrame, error) {
	if len(data) < 28 || string(data[:4]) != "XGFB" {
		return nil, fmt.Errorf("serve: not a batch frame (%d bytes)", len(data))
	}
	if data[4] != binaryBatchVersion {
		return nil, fmt.Errorf("serve: batch frame version %d, want %d", data[4], binaryBatchVersion)
	}
	fr := &BatchFrame{
		Degraded:  data[5]&1 != 0,
		Gen:       binary.LittleEndian.Uint64(data[8:]),
		Staleness: binary.LittleEndian.Uint64(data[16:]),
	}
	count := binary.LittleEndian.Uint32(data[24:])
	off := 28
	fr.Paths = make([][]uint32, 0, count)
	for i := uint32(0); i < count; i++ {
		if off+4 > len(data) {
			return nil, fmt.Errorf("serve: batch frame truncated at pair %d", i)
		}
		np := binary.LittleEndian.Uint32(data[off:])
		off += 4
		if np > uint32(len(data)-off)/4 {
			return nil, fmt.Errorf("serve: batch frame pair %d claims %d paths beyond frame end", i, np)
		}
		ids := make([]uint32, np)
		for j := range ids {
			ids[j] = binary.LittleEndian.Uint32(data[off:])
			off += 4
		}
		fr.Paths = append(fr.Paths, ids)
	}
	if off != len(data) {
		return nil, fmt.Errorf("serve: %d trailing bytes after batch frame", len(data)-off)
	}
	return fr, nil
}
