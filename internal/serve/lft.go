package serve

import (
	"net/http"
	"strconv"

	"xgftsim/internal/lid"
)

// handleLFT answers GET /fabrics/{name}/lft: the fabric's linear
// forwarding tables in the OpenSM-style dump format of
// internal/lid.WriteTo, built degraded-aware against the currently
// published snapshot's fault set. The dump streams (bufio inside
// WriteTo); gen and degraded travel as headers so the body stays
// byte-compatible with `xgftlft` output and ParseFabric round-trips.
func (s *Server) handleLFT(w http.ResponseWriter, r *http.Request, f *Fabric) {
	st := f.State()
	p, err := lid.NewPlan(f.topo, f.Spec.K)
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, errorBody{err.Error()})
		return
	}
	var lf *lid.Fabric
	if st.faults != nil {
		lf, err = lid.BuildDegradedFabric(p, f.routing.Selector(), f.Spec.Seed, st.faults)
	} else {
		lf, err = lid.BuildFabric(p, f.routing.Selector(), f.Spec.Seed)
	}
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, errorBody{err.Error()})
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/plain; charset=utf-8")
	h.Set("X-XGFT-Gen", strconv.FormatUint(st.gen, 10))
	if st.degraded {
		h.Set("X-XGFT-Degraded", "1")
	}
	met.lftDumps.Inc()
	if _, err := lf.WriteTo(w); err != nil {
		met.encodeErrors.Inc()
	}
}
