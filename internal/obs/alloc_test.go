package obs

// Allocation pins: metric updates are the only obs operations that run
// on simulation hot paths (the flit event loop, the flow samplers, the
// cell runner), so they must never allocate. Registration and
// snapshotting may.

import "testing"

func TestMetricUpdatesAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pin.count")
	g := r.Gauge("pin.gauge")
	h := r.Histogram("pin.hist", []float64{1, 10, 100, 1000})

	if allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(3)
	}); allocs != 0 {
		t.Errorf("Counter updates allocate %.1f times per run; want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		g.Set(5)
		g.Add(1)
		g.SetMax(7)
	}); allocs != 0 {
		t.Errorf("Gauge updates allocate %.1f times per run; want 0", allocs)
	}
	x := 0.0
	if allocs := testing.AllocsPerRun(100, func() {
		h.Observe(x)
		x += 17 // walk across buckets, including overflow
	}); allocs != 0 {
		t.Errorf("Histogram.Observe allocates %.1f times per run; want 0", allocs)
	}
}

func TestLookupOfExistingMetricAllocFree(t *testing.T) {
	r := NewRegistry()
	r.Counter("pin.lookup")
	if allocs := testing.AllocsPerRun(100, func() {
		r.Counter("pin.lookup").Inc()
	}); allocs != 0 {
		t.Errorf("re-lookup of an existing counter allocates %.1f times; want 0", allocs)
	}
}
