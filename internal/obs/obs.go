// Package obs is a small, dependency-free metrics layer for the
// simulation stack: atomic counters and gauges, fixed-bucket
// histograms, and a named registry with JSON and expvar-style export.
// Hot-path increments are branch-cheap and allocation-free — a counter
// add is one atomic add, a histogram observation is a short linear
// bucket scan plus two atomic updates — so the flit engine's event loop
// and the flow samplers can record into shared metrics without
// disturbing their steady-state allocation pins (see alloc_test.go).
//
// Registration is the only allocating operation and is idempotent:
// asking a registry for an existing name returns the existing metric,
// so packages can declare their metrics in package-level vars against
// the shared Default() registry and commands can snapshot everything
// that ran into a manifest.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d (d should be non-negative; counters are monotone).
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value. The zero value is ready to
// use.
type Gauge struct {
	v atomic.Int64
}

// Set stores x.
func (g *Gauge) Set(x int64) { g.v.Store(x) }

// Add adjusts the gauge by d (may be negative) and returns the new
// value, so callers tracking occupancy can feed a high-water mark
// without a second load.
func (g *Gauge) Add(d int64) int64 { return g.v.Add(d) }

// SetMax raises the gauge to x if x exceeds the current value
// (a lock-free high-water mark).
func (g *Gauge) SetMax(x int64) {
	for {
		cur := g.v.Load()
		if x <= cur || g.v.CompareAndSwap(cur, x) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed buckets. Bucket i counts
// observations x <= bounds[i]; the final implicit bucket counts
// overflow (x > bounds[len-1]). Observations also accumulate into a
// running sum so snapshots can report a mean. All updates are atomic;
// a Histogram is safe for concurrent use and its Observe path does not
// allocate.
type Histogram struct {
	bounds []float64 // ascending, immutable after construction
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram builds a histogram over the given ascending bucket
// bounds. It panics on empty or unsorted bounds (a construction-time
// programming error, never a runtime condition).
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at %d: %v", i, bounds))
		}
	}
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(x float64) {
	i := 0
	for i < len(h.bounds) && x > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + x)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the running sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// snapshot captures the histogram's current state.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:  h.Count(),
		Sum:    h.Sum(),
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// HistogramSnapshot is the JSON-ready state of a Histogram. Counts has
// one more entry than Bounds; the last entry is the overflow bucket
// (observations above the largest bound), so infinities never reach the
// JSON encoder.
type HistogramSnapshot struct {
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
}

// Mean returns Sum/Count, or 0 with no observations.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile returns a bucketed upper bound for the q-quantile of the
// observations: the smallest bucket bound whose cumulative count
// reaches q·Count. Observations in the overflow bucket report the
// largest configured bound (the histogram does not track a maximum),
// so a Quantile equal to the last bound means "at least this much".
// Zero with no observations; q is clamped to [0, 1].
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(s.Count)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if cum >= target && i < len(s.Bounds) {
			return s.Bounds[i]
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}

// ExpBuckets builds log-spaced histogram bounds: perDecade bounds per
// factor of 10 from lo up to and including the first bound >= hi.
// Useful for latency histograms whose interesting range spans several
// orders of magnitude (e.g. 1e-6 .. 10 seconds). It panics on
// non-positive lo/hi/perDecade or hi <= lo (construction-time
// programming errors, like NewHistogram's).
func ExpBuckets(lo, hi float64, perDecade int) []float64 {
	if lo <= 0 || hi <= lo || perDecade <= 0 {
		panic(fmt.Sprintf("obs: bad ExpBuckets(%g, %g, %d)", lo, hi, perDecade))
	}
	step := math.Pow(10, 1/float64(perDecade))
	var out []float64
	for b := lo; ; b *= step {
		out = append(out, b)
		if b >= hi {
			return out
		}
	}
}

// Snapshot is a point-in-time copy of a registry: metric name to int64
// (counters and gauges) or HistogramSnapshot. It is JSON-marshalable as
// is.
type Snapshot map[string]any

// metricKind tags a registry entry so Delta knows how to difference it.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

type entry struct {
	name string
	kind metricKind
	ref  any
}

// Registry is a named collection of metrics. Lookup/registration take a
// lock; the returned metrics are lock-free. The zero value is not
// usable — call NewRegistry.
type Registry struct {
	mu      sync.Mutex
	entries []entry
	byName  map[string]int
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]int)}
}

// defaultRegistry backs Default().
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry the simulation packages
// register into.
func Default() *Registry { return defaultRegistry }

// Counter returns the counter registered under name, creating it on
// first use. It panics if the name is already registered as a different
// metric kind.
func (r *Registry) Counter(name string) *Counter {
	return lookup(r, name, kindCounter, func() *Counter { return &Counter{} })
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	return lookup(r, name, kindGauge, func() *Gauge { return &Gauge{} })
}

// Histogram returns the histogram registered under name, creating it
// with the given bounds on first use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	return lookup(r, name, kindHistogram, func() *Histogram { return NewHistogram(bounds) })
}

func lookup[T any](r *Registry, name string, kind metricKind, mk func() T) T {
	r.mu.Lock()
	defer r.mu.Unlock()
	if i, ok := r.byName[name]; ok {
		e := r.entries[i]
		if e.kind != kind {
			panic(fmt.Sprintf("obs: metric %q already registered with a different kind", name))
		}
		return e.ref.(T)
	}
	m := mk()
	r.byName[name] = len(r.entries)
	r.entries = append(r.entries, entry{name: name, kind: kind, ref: m})
	return m
}

// Each calls f for every registered metric in registration order, with
// the value a snapshot (int64 or HistogramSnapshot).
func (r *Registry) Each(f func(name string, value any)) {
	for _, e := range r.copyEntries() {
		f(e.name, snapshotValue(e))
	}
}

func (r *Registry) copyEntries() []entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]entry, len(r.entries))
	copy(out, r.entries)
	return out
}

func snapshotValue(e entry) any {
	switch e.kind {
	case kindCounter:
		return e.ref.(*Counter).Value()
	case kindGauge:
		return e.ref.(*Gauge).Value()
	default:
		return e.ref.(*Histogram).snapshot()
	}
}

// Snapshot captures every registered metric.
func (r *Registry) Snapshot() Snapshot {
	entries := r.copyEntries()
	s := make(Snapshot, len(entries))
	for _, e := range entries {
		s[e.name] = snapshotValue(e)
	}
	return s
}

// Delta captures the registry's change since prev: counters and
// histograms are differenced (entries absent from prev report their
// full current value), gauges report their current value. Useful for
// per-experiment metric records inside one process-wide registry.
func (r *Registry) Delta(prev Snapshot) Snapshot {
	entries := r.copyEntries()
	s := make(Snapshot, len(entries))
	for _, e := range entries {
		cur := snapshotValue(e)
		switch e.kind {
		case kindCounter:
			if p, ok := prev[e.name].(int64); ok {
				cur = cur.(int64) - p
			}
		case kindHistogram:
			if p, ok := prev[e.name].(HistogramSnapshot); ok {
				cur = diffHistogram(cur.(HistogramSnapshot), p)
			}
		}
		s[e.name] = cur
	}
	return s
}

func diffHistogram(cur, prev HistogramSnapshot) HistogramSnapshot {
	if len(prev.Counts) != len(cur.Counts) {
		return cur
	}
	d := HistogramSnapshot{
		Count:  cur.Count - prev.Count,
		Sum:    cur.Sum - prev.Sum,
		Bounds: cur.Bounds,
		Counts: make([]int64, len(cur.Counts)),
	}
	for i := range cur.Counts {
		d.Counts[i] = cur.Counts[i] - prev.Counts[i]
	}
	return d
}

// WriteJSON writes the registry's snapshot as indented JSON with keys
// sorted by name.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// String renders the registry expvar-style: one JSON object with a
// sorted key per metric. Implements fmt.Stringer so a registry can be
// published or logged directly.
func (r *Registry) String() string {
	s := r.Snapshot()
	names := make([]string, 0, len(s))
	for n := range s {
		names = append(names, n)
	}
	sort.Strings(names)
	var b []byte
	b = append(b, '{')
	for i, n := range names {
		if i > 0 {
			b = append(b, ", "...)
		}
		k, _ := json.Marshal(n)
		v, err := json.Marshal(s[n])
		if err != nil {
			v = []byte(`"?"`)
		}
		b = append(b, k...)
		b = append(b, ": "...)
		b = append(b, v...)
	}
	b = append(b, '}')
	return string(b)
}
