package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	var g Gauge
	g.Set(7)
	if got := g.Add(-3); got != 4 {
		t.Fatalf("gauge Add returned %d, want 4", got)
	}
	g.SetMax(2) // below current: no-op
	if g.Value() != 4 {
		t.Fatalf("SetMax lowered the gauge to %d", g.Value())
	}
	g.SetMax(9)
	if g.Value() != 9 {
		t.Fatalf("SetMax failed to raise the gauge: %d", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, x := range []float64{0.5, 1, 2, 50, 1000} {
		h.Observe(x)
	}
	s := h.snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	want := []int64{2, 1, 1, 1} // <=1: {0.5, 1}; <=10: {2}; <=100: {50}; overflow: {1000}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if got := s.Sum; got != 1053.5 {
		t.Fatalf("sum = %g, want 1053.5", got)
	}
	if got := s.Mean(); got != 1053.5/5 {
		t.Fatalf("mean = %g", got)
	}
}

func TestHistogramBadBoundsPanic(t *testing.T) {
	for _, bounds := range [][]float64{nil, {}, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("a.count")
	c2 := r.Counter("a.count")
	if c1 != c2 {
		t.Fatal("re-registering a counter returned a different metric")
	}
	h1 := r.Histogram("a.hist", []float64{1, 2})
	h2 := r.Histogram("a.hist", []float64{9}) // bounds ignored on re-lookup
	if h1 != h2 {
		t.Fatal("re-registering a histogram returned a different metric")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("cross-kind registration did not panic")
			}
		}()
		r.Gauge("a.count")
	}()
}

func TestSnapshotAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("flit.cycles").Add(100)
	r.Gauge("runner.occupancy").Set(3)
	r.Histogram("cell.seconds", []float64{1, 10}).Observe(2.5)

	s := r.Snapshot()
	if s["flit.cycles"].(int64) != 100 {
		t.Fatalf("snapshot counter = %v", s["flit.cycles"])
	}
	hs := s["cell.seconds"].(HistogramSnapshot)
	if hs.Count != 1 || hs.Counts[1] != 1 {
		t.Fatalf("snapshot histogram = %+v", hs)
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("WriteJSON output not valid JSON: %v\n%s", err, buf.String())
	}
	for _, name := range []string{"flit.cycles", "runner.occupancy", "cell.seconds"} {
		if _, ok := decoded[name]; !ok {
			t.Fatalf("JSON missing %q:\n%s", name, buf.String())
		}
	}

	str := r.String()
	if !strings.HasPrefix(str, "{") || !strings.Contains(str, `"flit.cycles": 100`) {
		t.Fatalf("expvar-style String: %s", str)
	}
	if !json.Valid([]byte(str)) {
		t.Fatalf("String() not valid JSON: %s", str)
	}
}

func TestDelta(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", []float64{10})

	c.Add(5)
	g.Set(2)
	h.Observe(3)
	prev := r.Snapshot()

	c.Add(7)
	g.Set(11)
	h.Observe(42)
	d := r.Delta(prev)
	if d["c"].(int64) != 7 {
		t.Fatalf("counter delta = %v, want 7", d["c"])
	}
	if d["g"].(int64) != 11 {
		t.Fatalf("gauge delta should report current value, got %v", d["g"])
	}
	hs := d["h"].(HistogramSnapshot)
	if hs.Count != 1 || hs.Sum != 42 || hs.Counts[1] != 1 || hs.Counts[0] != 0 {
		t.Fatalf("histogram delta = %+v", hs)
	}

	// A metric registered after prev reports its full value.
	r.Counter("late").Add(3)
	d = r.Delta(prev)
	if d["late"].(int64) != 3 {
		t.Fatalf("late counter delta = %v, want 3", d["late"])
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const goroutines, perG = 8, 10000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := r.Counter("shared.count")
			g := r.Gauge("shared.max")
			h := r.Histogram("shared.hist", []float64{0.5})
			for j := 0; j < perG; j++ {
				c.Inc()
				g.SetMax(int64(i*perG + j))
				h.Observe(1)
			}
		}(i)
	}
	wg.Wait()
	if got := r.Counter("shared.count").Value(); got != goroutines*perG {
		t.Fatalf("count = %d, want %d", got, goroutines*perG)
	}
	if got := r.Gauge("shared.max").Value(); got != goroutines*perG-1 {
		t.Fatalf("max = %d, want %d", got, goroutines*perG-1)
	}
	h := r.Histogram("shared.hist", nil)
	if h.Count() != goroutines*perG || h.Sum() != float64(goroutines*perG) {
		t.Fatalf("hist count=%d sum=%g", h.Count(), h.Sum())
	}
}

func TestDefaultRegistryShared(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default() is not stable")
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1e-6, 10, 5)
	if b[0] != 1e-6 {
		t.Errorf("first bound %g, want 1e-6", b[0])
	}
	if last := b[len(b)-1]; last < 10 {
		t.Errorf("last bound %g does not cover hi", last)
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not ascending at %d: %g <= %g", i, b[i], b[i-1])
		}
	}
	// The generated bounds must be valid NewHistogram input.
	NewHistogram(b).Observe(0.01)
	defer func() {
		if recover() == nil {
			t.Error("ExpBuckets(0, ...) did not panic")
		}
	}()
	ExpBuckets(0, 1, 5)
}
