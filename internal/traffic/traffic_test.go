package traffic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"xgftsim/internal/topology"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(8)
	if m.NumFlows() != 0 || m.Total() != 0 {
		t.Fatal("empty matrix not empty")
	}
	m.Add(0, 1, 2)
	m.Add(0, 1, 1)
	m.Add(3, 2, 5)
	if m.NumFlows() != 3 || m.Total() != 8 {
		t.Fatalf("flows=%d total=%g", m.NumFlows(), m.Total())
	}
	m.Scale(0.5)
	if m.Total() != 4 {
		t.Fatalf("after scale total=%g", m.Total())
	}
	can := m.Canonical()
	if len(can) != 2 || can[0] != (Flow{0, 1, 1.5}) || can[1] != (Flow{3, 2, 2.5}) {
		t.Fatalf("canonical=%v", can)
	}
	for _, f := range []func(){
		func() { NewMatrix(0) },
		func() { m.Add(0, 0, 1) },
		func() { m.Add(-1, 2, 1) },
		func() { m.Add(0, 8, 1) },
		func() { m.Add(0, 1, 0) },
		func() { m.Add(0, 1, -2) },
		func() { m.Scale(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestFromPermutationSkipsFixedPoints(t *testing.T) {
	m := FromPermutation([]int{0, 2, 1, 3})
	if m.NumFlows() != 2 {
		t.Fatalf("flows=%d want 2", m.NumFlows())
	}
	if m.Total() != 2 {
		t.Fatalf("total=%g", m.Total())
	}
}

func isPerm(p []int) bool {
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

func TestPermutationGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for n := 2; n <= 64; n *= 2 {
		if !isPerm(RandomPermutation(n, rng)) {
			t.Fatal("RandomPermutation not a permutation")
		}
		d := RandomDerangementish(n, rng)
		if !isPerm(d) {
			t.Fatal("derangement not a permutation")
		}
		for i, v := range d {
			if v == i {
				t.Fatalf("derangement has fixed point at %d", i)
			}
		}
		for s := 0; s < n; s++ {
			p := ShiftPermutation(n, s)
			if !isPerm(p) || p[0] != s {
				t.Fatalf("shift(%d,%d) wrong", n, s)
			}
		}
		bc, err := BitComplement(n)
		if err != nil || !isPerm(bc) {
			t.Fatalf("bit-complement: %v", err)
		}
		for i, v := range bc {
			if i&v != 0 || i|v != n-1 {
				t.Fatalf("complement of %d is %d", i, v)
			}
		}
		br, err := BitReversal(n)
		if err != nil || !isPerm(br) {
			t.Fatalf("bit-reversal: %v", err)
		}
		// Reversal is an involution.
		for i := range br {
			if br[br[i]] != i {
				t.Fatal("bit-reversal not an involution")
			}
		}
		if !isPerm(Tornado(n)) {
			t.Fatal("tornado not a permutation")
		}
	}
	if _, err := BitComplement(12); err == nil {
		t.Error("non-power-of-two accepted")
	}
	if _, err := BitReversal(12); err == nil {
		t.Error("non-power-of-two accepted")
	}
	tr, err := Transpose(16)
	if err != nil || !isPerm(tr) {
		t.Fatalf("transpose: %v", err)
	}
	if tr[1] != 4 || tr[4] != 1 { // (0,1) <-> (1,0) on a 4x4 grid
		t.Fatalf("transpose mapping wrong: %v", tr[:6])
	}
	if _, err := Transpose(12); err == nil {
		t.Error("non-square size accepted")
	}
}

func TestUniformMatrix(t *testing.T) {
	m := Uniform(5)
	if m.NumFlows() != 20 {
		t.Fatalf("flows=%d", m.NumFlows())
	}
	if math.Abs(m.Total()-5) > 1e-12 {
		t.Fatalf("total=%g want 5 (one unit per source)", m.Total())
	}
	if Uniform(1).NumFlows() != 0 {
		t.Fatal("Uniform(1) should be empty")
	}
}

func TestHotspotMatrix(t *testing.T) {
	m := Hotspot(6, 2, 0)
	if m.NumFlows() != 5 {
		t.Fatalf("flows=%d", m.NumFlows())
	}
	for _, f := range m.Flows() {
		if f.Dst != 2 {
			t.Fatal("non-hotspot destination")
		}
	}
	// With background, every non-hot node still sources exactly one
	// unit, split between the hot node and the rest.
	bg := Hotspot(4, 0, 0.5)
	if math.Abs(bg.Total()-3) > 1e-12 {
		t.Fatalf("total=%g want 3", bg.Total())
	}
	hasBackground := false
	for _, f := range bg.Flows() {
		if f.Dst != 0 {
			hasBackground = true
		}
	}
	if !hasBackground {
		t.Fatal("background traffic missing")
	}
}

func TestAdversarialDModK(t *testing.T) {
	// XGFT(2; 4, 32; 1, 8): W=8, M=4, A=1; destinations 8,16,24,32.
	tp := topology.MustNew(2, []int{4, 32}, []int{1, 8})
	m, err := AdversarialDModK(tp)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumFlows() != 4 {
		t.Fatalf("flows=%d want 4", m.NumFlows())
	}
	w := tp.WProd(tp.H())
	subSize := tp.ProcessorsPerSubtree(tp.H() - 1)
	seenSub := make(map[int]bool)
	for _, f := range m.Flows() {
		if f.Dst%w != 0 {
			t.Fatalf("destination %d not a multiple of W=%d", f.Dst, w)
		}
		if f.Src/subSize != 0 {
			t.Fatalf("source %d outside first subtree", f.Src)
		}
		ds := f.Dst / subSize
		if ds == 0 || seenSub[ds] {
			t.Fatalf("destination subtree %d invalid or repeated", ds)
		}
		seenSub[ds] = true
	}
	// Too-small trees must be rejected with a clear error.
	if _, err := AdversarialDModK(topology.MustNew(3, []int{4, 4, 8}, []int{1, 4, 4})); err == nil {
		t.Error("8-port 3-tree should not satisfy the Theorem 2 conditions")
	}
}

func TestUniformPattern(t *testing.T) {
	p := UniformPattern{N: 16}
	if p.Name() != "uniform" {
		t.Fatal("name")
	}
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, 16)
	const draws = 16000
	for i := 0; i < draws; i++ {
		d := p.Dest(3, rng)
		if d == 3 || d < 0 || d >= 16 {
			t.Fatalf("bad destination %d", d)
		}
		counts[d]++
	}
	for d, c := range counts {
		if d == 3 {
			continue
		}
		want := draws / 15
		if c < want-250 || c > want+250 {
			t.Fatalf("destination %d drawn %d times, want ~%d", d, c, want)
		}
	}
}

func TestUniformPatternQuickNoSelf(t *testing.T) {
	f := func(seed int64, src uint8, n uint8) bool {
		nn := int(n)%30 + 2
		s := int(src) % nn
		p := UniformPattern{N: nn}
		rng := rand.New(rand.NewSource(seed))
		d := p.Dest(s, rng)
		return d != s && d >= 0 && d < nn
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPermutationPattern(t *testing.T) {
	p := NewPermutationPattern("shift", []int{1, 2, 0})
	if p.Name() != "shift" || p.Dest(0, nil) != 1 || p.Dest(2, nil) != 0 {
		t.Fatal("permutation pattern wrong")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("bad permutation accepted")
			}
		}()
		NewPermutationPattern("bad", []int{0, 5})
	}()
}

func TestHotspotPattern(t *testing.T) {
	p := HotspotPattern{N: 8, Hot: 1, Fraction: 1}
	rng := rand.New(rand.NewSource(2))
	for src := 0; src < 8; src++ {
		d := p.Dest(src, rng)
		if src != 1 && d != 1 {
			t.Fatalf("src %d went to %d", src, d)
		}
		if src == 1 && d == 1 {
			t.Fatal("hot node sent to itself")
		}
	}
	if p.Name() != "hotspot" {
		t.Fatal("name")
	}
}

func TestNeighborExchange(t *testing.T) {
	p, err := NeighborExchange(8)
	if err != nil || !isPerm(p) {
		t.Fatalf("%v %v", p, err)
	}
	for i, v := range p {
		if p[v] != i {
			t.Fatal("not an involution")
		}
		if v/2 != i/2 {
			t.Fatal("partner outside the pair")
		}
	}
	if _, err := NeighborExchange(7); err == nil {
		t.Error("odd size accepted")
	}
}

func TestButterfly(t *testing.T) {
	p, err := Butterfly(16)
	if err != nil || !isPerm(p) {
		t.Fatalf("%v %v", p, err)
	}
	// Swapping lowest and highest bit is an involution; 0 and n-1 are
	// fixed points, 1 maps to 8.
	for i, v := range p {
		if p[v] != i {
			t.Fatal("not an involution")
		}
	}
	if p[0] != 0 || p[15] != 15 || p[1] != 8 || p[8] != 1 {
		t.Fatalf("mapping wrong: %v", p[:9])
	}
	if _, err := Butterfly(12); err == nil {
		t.Error("non power of two accepted")
	}
}
