package traffic

import (
	"fmt"

	"xgftsim/internal/stats"
	"xgftsim/internal/topology"
)

// PatternNames lists the named matrix generators BuildMatrix accepts,
// for CLI usage strings and HTTP error messages.
func PatternNames() []string {
	return []string{
		"shift", "bitcomp", "bitrev", "transpose", "tornado", "neighbor",
		"butterfly", "uniform", "hotspot", "adversarial", "random",
	}
}

// BuildMatrix constructs the named traffic matrix on t: the structured
// permutations (shift, bitcomp, bitrev, transpose, tornado, neighbor,
// butterfly), uniform, hotspot (arg selects the hot node), the
// Theorem 2 adversarial pattern for d-mod-k, or a seeded random
// permutation. arg is the pattern argument (shift amount, hot node);
// seed only matters for "random". Shared by the CLIs and the routing
// service so a pattern name means the same demand everywhere.
func BuildMatrix(t *topology.Topology, pattern string, arg int, seed int64) (*Matrix, error) {
	n := t.NumProcessors()
	switch pattern {
	case "shift":
		return FromPermutation(ShiftPermutation(n, arg)), nil
	case "bitcomp":
		p, err := BitComplement(n)
		if err != nil {
			return nil, err
		}
		return FromPermutation(p), nil
	case "bitrev":
		p, err := BitReversal(n)
		if err != nil {
			return nil, err
		}
		return FromPermutation(p), nil
	case "transpose":
		p, err := Transpose(n)
		if err != nil {
			return nil, err
		}
		return FromPermutation(p), nil
	case "tornado":
		return FromPermutation(Tornado(n)), nil
	case "neighbor":
		p, err := NeighborExchange(n)
		if err != nil {
			return nil, err
		}
		return FromPermutation(p), nil
	case "butterfly":
		p, err := Butterfly(n)
		if err != nil {
			return nil, err
		}
		return FromPermutation(p), nil
	case "uniform":
		return Uniform(n), nil
	case "hotspot":
		return Hotspot(n, arg%n, 0), nil
	case "adversarial":
		return AdversarialDModK(t)
	case "random":
		return FromPermutation(RandomPermutation(n, stats.Stream(seed, 0))), nil
	}
	return nil, fmt.Errorf("traffic: unknown pattern %q", pattern)
}
