// Package traffic models traffic demands for fat-tree routing studies:
// sparse traffic matrices (the paper's TM), generators for the workload
// families used in the evaluation (random permutations for the
// flow-level study, uniform random for the flit-level study), classic
// structured permutations, and the adversarial pattern from the
// paper's Theorem 2 that drives d-mod-k to its worst case.
package traffic

import (
	"fmt"
	"math/rand"
	"sort"

	"xgftsim/internal/topology"
)

// Flow is one demand entry: Amount units of traffic from Src to Dst.
type Flow struct {
	Src, Dst int
	Amount   float64
}

// Matrix is a sparse traffic matrix over N processing nodes. The zero
// value with N set is an empty demand. Entries with Src == Dst never
// touch the network and are rejected on Add.
type Matrix struct {
	N     int
	flows []Flow
}

// NewMatrix creates an empty traffic matrix over n processing nodes.
func NewMatrix(n int) *Matrix {
	if n < 1 {
		panic(fmt.Sprintf("traffic: matrix needs n >= 1, got %d", n))
	}
	return &Matrix{N: n}
}

// Add records a demand of amount units from src to dst. Self-traffic
// and non-positive amounts are rejected with a panic: they indicate a
// generator bug.
func (m *Matrix) Add(src, dst int, amount float64) {
	if src < 0 || src >= m.N || dst < 0 || dst >= m.N {
		panic(fmt.Sprintf("traffic: flow (%d,%d) out of range [0,%d)", src, dst, m.N))
	}
	if src == dst {
		panic(fmt.Sprintf("traffic: self flow at node %d", src))
	}
	if amount <= 0 {
		panic(fmt.Sprintf("traffic: non-positive amount %g", amount))
	}
	m.flows = append(m.flows, Flow{Src: src, Dst: dst, Amount: amount})
}

// Flows returns the demand entries. The slice is owned by the matrix;
// callers must not modify it.
func (m *Matrix) Flows() []Flow { return m.flows }

// NumFlows returns the number of demand entries.
func (m *Matrix) NumFlows() int { return len(m.flows) }

// Total returns the sum of all demands.
func (m *Matrix) Total() float64 {
	s := 0.0
	for _, f := range m.flows {
		s += f.Amount
	}
	return s
}

// Scale multiplies every demand by c (> 0).
func (m *Matrix) Scale(c float64) {
	if c <= 0 {
		panic(fmt.Sprintf("traffic: non-positive scale %g", c))
	}
	for i := range m.flows {
		m.flows[i].Amount *= c
	}
}

// Canonical returns the flows sorted by (src, dst), merging duplicate
// pairs; useful for comparisons in tests.
func (m *Matrix) Canonical() []Flow {
	out := append([]Flow(nil), m.flows...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	merged := out[:0]
	for _, f := range out {
		if n := len(merged); n > 0 && merged[n-1].Src == f.Src && merged[n-1].Dst == f.Dst {
			merged[n-1].Amount += f.Amount
			continue
		}
		merged = append(merged, f)
	}
	return merged
}

// FromPermutation builds the unit-demand matrix of a permutation:
// node i sends one unit to perm[i]. Fixed points (perm[i] == i) are
// skipped — such traffic never enters the network.
func FromPermutation(perm []int) *Matrix {
	m := NewMatrix(len(perm))
	for src, dst := range perm {
		if dst == src {
			continue
		}
		m.Add(src, dst, 1)
	}
	return m
}

// RandomPermutation draws a uniform random permutation of n nodes, the
// paper's flow-level workload ("each processing node sends messages to
// another processing node, possibly itself").
func RandomPermutation(n int, rng *rand.Rand) []int {
	return rng.Perm(n)
}

// RandomDerangementish draws a random permutation and then swaps away
// fixed points, producing a permutation where every node sends to a
// different node. Useful when full network load is wanted.
func RandomDerangementish(n int, rng *rand.Rand) []int {
	p := rng.Perm(n)
	for i := 0; i < n; i++ {
		if p[i] == i {
			j := (i + 1 + rng.Intn(n-1)) % n
			p[i], p[j] = p[j], p[i]
		}
	}
	return p
}

// ShiftPermutation maps src to (src + s) mod n: the pattern behind
// all-to-all phases (Zahavi et al.).
func ShiftPermutation(n, s int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = (i + s) % n
	}
	return p
}

// BitComplement maps each node to its bitwise complement; n must be a
// power of two.
func BitComplement(n int) ([]int, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("traffic: bit-complement needs a power-of-two size, got %d", n)
	}
	p := make([]int, n)
	for i := range p {
		p[i] = (n - 1) ^ i
	}
	return p, nil
}

// BitReversal maps each node to the reversal of its bits; n must be a
// power of two.
func BitReversal(n int) ([]int, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("traffic: bit-reversal needs a power-of-two size, got %d", n)
	}
	bits := 0
	for 1<<bits < n {
		bits++
	}
	p := make([]int, n)
	for i := range p {
		r := 0
		for b := 0; b < bits; b++ {
			if i&(1<<b) != 0 {
				r |= 1 << (bits - 1 - b)
			}
		}
		p[i] = r
	}
	return p, nil
}

// Transpose views node ids as (row, col) over a square grid and maps
// (r,c) to (c,r); n must be a perfect square.
func Transpose(n int) ([]int, error) {
	side := 1
	for side*side < n {
		side++
	}
	if side*side != n {
		return nil, fmt.Errorf("traffic: transpose needs a square size, got %d", n)
	}
	p := make([]int, n)
	for i := range p {
		r, c := i/side, i%side
		p[i] = c*side + r
	}
	return p, nil
}

// Tornado maps src to (src + n/2 - 1) mod n, the classic worst case for
// minimal routing on rings; on fat-trees it is simply a far shift.
func Tornado(n int) []int {
	return ShiftPermutation(n, n/2-1)
}

// NeighborExchange pairs adjacent nodes: even i sends to i+1 and odd i
// to i-1 (the halo-exchange inner step). n must be even.
func NeighborExchange(n int) ([]int, error) {
	if n < 2 || n%2 != 0 {
		return nil, fmt.Errorf("traffic: neighbor exchange needs an even size, got %d", n)
	}
	p := make([]int, n)
	for i := 0; i < n; i += 2 {
		p[i], p[i+1] = i+1, i
	}
	return p, nil
}

// Butterfly maps each node to the value with its lowest and highest
// bits swapped (FFT communication stage); n must be a power of two.
func Butterfly(n int) ([]int, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("traffic: butterfly needs a power-of-two size, got %d", n)
	}
	bits := 0
	for 1<<bits < n {
		bits++
	}
	hi := bits - 1
	p := make([]int, n)
	for i := range p {
		lo := i & 1
		top := (i >> hi) & 1
		v := i &^ (1 | 1<<hi)
		p[i] = v | lo<<hi | top
	}
	return p, nil
}

// Uniform builds the dense uniform demand: every ordered pair (i,j),
// i != j, carries 1/(n-1) units so each node sources one unit total.
// Intended for small n; the matrix has n(n-1) entries.
func Uniform(n int) *Matrix {
	m := NewMatrix(n)
	if n == 1 {
		return m
	}
	amt := 1.0 / float64(n-1)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				m.Add(i, j, amt)
			}
		}
	}
	return m
}

// Hotspot sends one unit from every node to a single hot node (plus an
// optional background uniform component with weight bg in [0,1)).
func Hotspot(n, hot int, bg float64) *Matrix {
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		if i == hot {
			continue
		}
		m.Add(i, hot, 1-bg)
		if bg > 0 {
			for j := 0; j < n; j++ {
				if j != i {
					m.Add(i, j, bg/float64(n-1))
				}
			}
		}
	}
	return m
}

// AdversarialDModK constructs the Theorem 2 traffic pattern that
// concentrates all of a subtree's outbound d-mod-k traffic on a single
// up link: every processing node j in the first height-(h-1) subtree
// sends one unit to destination (A+j)·W, where W = Π_{i=1..h} w_i and A
// is the smallest integer with A·W >= M, M = Π_{i=1..h-1} m_i being the
// subtree's node count. All destinations are multiples of W, so d-mod-k
// assigns them up port 0 at every level. The construction requires the
// destinations to exist and to land in M distinct height-(h-1) subtrees
// (W >= M and (A+M-1)·W < N); an error describes the violated
// condition otherwise. The realized performance ratio of d-mod-k on
// the pattern is min(M·w_1, W): the theorem's full Πw_i bound needs
// M·w_1 >= W, which the topology chosen in the theorem's proof
// satisfies by construction.
func AdversarialDModK(t *topology.Topology) (*Matrix, error) {
	h := t.H()
	w := t.WProd(h)                      // W
	sub := t.ProcessorsPerSubtree(h - 1) // M
	a := (sub + w - 1) / w
	if a == 0 {
		a = 1
	}
	n := t.NumProcessors()
	if last := (a + sub - 1) * w; last >= n {
		return nil, fmt.Errorf("traffic: %s too small for Theorem 2 pattern: need destination %d < %d", t, last, n)
	}
	if w < sub {
		return nil, fmt.Errorf("traffic: %s needs W=Πw_i (%d) >= per-subtree nodes (%d) for distinct destination subtrees", t, w, sub)
	}
	m := NewMatrix(n)
	for j := 0; j < sub; j++ {
		m.Add(j, (a+j)*w, 1)
	}
	return m, nil
}
