package traffic

import (
	"fmt"
	"math/rand"
)

// Pattern draws message destinations for the flit-level simulator.
// Implementations must be safe for concurrent use through distinct rng
// instances.
type Pattern interface {
	// Name identifies the pattern.
	Name() string
	// Dest returns the destination for a message sourced at src. The
	// result is never src itself: self-messages bypass the network.
	Dest(src int, rng *rand.Rand) int
}

// UniformPattern is the paper's flit-level workload: each message picks
// a destination uniformly at random among all other nodes.
type UniformPattern struct {
	N int
}

// Name implements Pattern.
func (u UniformPattern) Name() string { return "uniform" }

// Dest implements Pattern.
func (u UniformPattern) Dest(src int, rng *rand.Rand) int {
	d := rng.Intn(u.N - 1)
	if d >= src {
		d++
	}
	return d
}

// PermutationPattern sends every message from src to a fixed
// destination perm[src]. Sources with perm[src] == src generate no
// network traffic; the simulator skips them.
type PermutationPattern struct {
	Perm []int
	name string
}

// NewPermutationPattern wraps a permutation with a display name.
func NewPermutationPattern(name string, perm []int) *PermutationPattern {
	for i, d := range perm {
		if d < 0 || d >= len(perm) {
			panic(fmt.Sprintf("traffic: permutation entry %d -> %d out of range", i, d))
		}
	}
	return &PermutationPattern{Perm: perm, name: name}
}

// Name implements Pattern.
func (p *PermutationPattern) Name() string { return p.name }

// Dest implements Pattern.
func (p *PermutationPattern) Dest(src int, _ *rand.Rand) int { return p.Perm[src] }

// HotspotPattern sends a fraction of traffic to a hot node and the rest
// uniformly.
type HotspotPattern struct {
	N        int
	Hot      int
	Fraction float64 // probability a message targets Hot
}

// Name implements Pattern.
func (h HotspotPattern) Name() string { return "hotspot" }

// Dest implements Pattern.
func (h HotspotPattern) Dest(src int, rng *rand.Rand) int {
	if src != h.Hot && rng.Float64() < h.Fraction {
		return h.Hot
	}
	u := UniformPattern{N: h.N}
	return u.Dest(src, rng)
}
