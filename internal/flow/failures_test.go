package flow

import (
	"math"
	"testing"

	"xgftsim/internal/core"
	"xgftsim/internal/stats"
	"xgftsim/internal/topology"
	"xgftsim/internal/traffic"
)

// TestDegradedEvaluatorMatchesCompiled: lazy repaired evaluation and
// the compiled repaired table produce identical loads, for every
// scheme (the randomized ones exercise the dedicated repair RNG
// substream both ways).
func TestDegradedEvaluatorMatchesCompiled(t *testing.T) {
	tp := topology.MustNew(2, []int{4, 4}, []int{1, 4})
	f, err := topology.RandomCableFaults(tp, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	sels := []core.Selector{core.DModK{}, core.SModK{}, core.RandomSingle{}, core.Shift1{}, core.Disjoint{}, core.RandomK{}, core.UMulti{}}
	for _, sel := range sels {
		rr := core.NewRouting(tp, sel, 2, 17).MustRepair(f)
		c, err := core.CompileRepaired(rr, 0)
		if err != nil {
			t.Fatal(err)
		}
		lazy := NewDegradedEvaluator(rr)
		comp := NewCompiledEvaluator(c)
		for i := 0; i < 20; i++ {
			rng := stats.Stream(99, int64(i))
			tm := traffic.FromPermutation(traffic.RandomPermutation(tp.NumProcessors(), rng))
			a, b := lazy.MaxLoad(tm), comp.MaxLoad(tm)
			if a != b {
				t.Fatalf("%s perm %d: lazy %g, compiled %g", rr, i, a, b)
			}
		}
	}
}

// TestDegradedEvaluatorSkipsDisconnected: flows of disconnected pairs
// contribute no load instead of crashing or loading dead links.
func TestDegradedEvaluatorSkipsDisconnected(t *testing.T) {
	tp := topology.MustNew(2, []int{4, 4}, []int{1, 4})
	f := topology.NewFaultSet(tp)
	leaf := tp.NodeAt(1, 0)
	for p := 0; p < tp.NumParents(leaf); p++ {
		if err := f.FailCable(leaf, p); err != nil {
			t.Fatal(err)
		}
	}
	rr := core.NewRouting(tp, core.DModK{}, 1, 0).MustRepair(f)
	ev := NewDegradedEvaluator(rr)
	// One disconnected flow (leaf 0 to outside) and one connected one.
	tm := traffic.NewMatrix(tp.NumProcessors())
	tm.Add(0, 8, 1)
	tm.Add(8, 12, 1)
	loads := ev.Loads(tm)
	sum := 0.0
	for _, l := range loads {
		sum += l
	}
	want := float64(2 * tp.NCALevel(8, 12)) // only the connected flow's links
	if math.Abs(sum-want) > 1e-12 {
		t.Fatalf("total load %g, want %g (disconnected flow must contribute nothing)", sum, want)
	}
	if ev.Routing() != nil {
		t.Fatal("degraded evaluator claims a healthy routing")
	}
}

// TestFailureExperimentZeroFraction: a zero fault fraction reproduces
// the healthy experiment's mean with a single fault seed.
func TestFailureExperimentZeroFraction(t *testing.T) {
	tp := topology.MustNew(2, []int{4, 4}, []int{1, 4})
	sampling := stats.AdaptiveConfig{InitialSamples: 20, MaxSamples: 40, RelPrecision: 0.05}
	fx := FailureExperiment{Topo: tp, Sel: core.Disjoint{}, K: 2, Fraction: 0, PermSeed: 5, Sampling: sampling}.Run()
	hx := Experiment{Topo: tp, Sel: core.Disjoint{}, K: 2, PermSeed: 5, Sampling: sampling}.Run()
	if fx.Acc.N() != 1 {
		t.Fatalf("zero fraction ran %d fault seeds, want 1", fx.Acc.N())
	}
	if fx.Acc.Mean() != hx.Acc.Mean() {
		t.Fatalf("zero-fraction mean %g != healthy mean %g", fx.Acc.Mean(), hx.Acc.Mean())
	}
	if fx.HalfWidth != 0 {
		t.Fatalf("single fault seed reported half-width %g", fx.HalfWidth)
	}
}

// TestFailureExperimentRuns: a degraded sweep cell aggregates over its
// fault seeds, with compile and lazy policies agreeing.
func TestFailureExperimentRuns(t *testing.T) {
	tp := topology.MustNew(2, []int{4, 4}, []int{1, 4})
	sampling := stats.AdaptiveConfig{InitialSamples: 20, MaxSamples: 40, RelPrecision: 0.05}
	base := FailureExperiment{
		Topo: tp, Sel: core.Shift1{}, K: 2,
		Fraction:   0.1,
		FaultSeeds: []int64{1, 2, 3},
		PermSeed:   5,
		Sampling:   sampling,
	}
	compiled := base
	compiled.Compile = CompileAlways
	lazy := base
	lazy.Compile = CompileNever
	a, b := compiled.Run(), lazy.Run()
	if a.Acc.N() != 3 || b.Acc.N() != 3 {
		t.Fatalf("fault seed counts %d/%d, want 3", a.Acc.N(), b.Acc.N())
	}
	if a.Acc.Mean() != b.Acc.Mean() {
		t.Fatalf("compiled mean %g != lazy mean %g", a.Acc.Mean(), b.Acc.Mean())
	}
	if a.Acc.Mean() <= 0 {
		t.Fatalf("degraded mean %g not positive", a.Acc.Mean())
	}
	if a.HalfWidth < 0 {
		t.Fatalf("negative half-width %g", a.HalfWidth)
	}
	if a.Disconnected.N() != 0 {
		t.Fatal("disconnected scan ran without MeasureDisconnected")
	}
	md := base
	md.MeasureDisconnected = true
	mres := md.Run()
	if got := mres.Disconnected.N(); got != 3 {
		t.Fatalf("MeasureDisconnected recorded %d fault seeds, want 3", got)
	}
}
