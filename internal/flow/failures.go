package flow

import (
	"fmt"

	"xgftsim/internal/core"
	"xgftsim/internal/stats"
	"xgftsim/internal/topology"
	"xgftsim/internal/traffic"
)

// FailureExperiment is the degraded-fabric analogue of Experiment: for
// each fault seed it draws a random set of failed cables, repairs the
// routing against it, and measures the average maximum link load of
// random permutations with the adaptive protocol. The reported value
// aggregates over fault seeds, so its confidence interval captures the
// fault-placement variance the failure sweep is about (per-permutation
// sampling noise is already driven below the adaptive target inside
// each fault seed).
type FailureExperiment struct {
	Topo *topology.Topology
	Sel  core.Selector
	K    int
	// Fraction of cables failed (both directions each), in [0,1].
	Fraction float64
	// FaultSeeds each draw one random fault placement; the result's CI
	// is over these. nil defaults to three seeds. A zero fraction runs
	// a single seed (all placements are the same empty set).
	FaultSeeds []int64
	// Seeds drive randomized selectors, as in Experiment.
	Seeds []int64
	// PermSeed salts the permutation sample streams.
	PermSeed int64
	// Sampling configures the per-fault-seed adaptive protocol.
	Sampling stats.AdaptiveConfig
	// Confidence is the level of the over-fault-seeds interval;
	// 0 means 0.99, matching the paper's protocol.
	Confidence float64
	// Compile / CompileBudget follow Experiment, using CompileRepaired
	// for the degraded tables.
	Compile       CompileMode
	CompileBudget int64
	// MeasureDisconnected additionally records the fraction of SD
	// pairs left with no surviving shortest path per fault seed (an
	// O(N²) connectivity scan, so off by default).
	MeasureDisconnected bool
}

// FailureResult reports one failure-sweep cell.
type FailureResult struct {
	// Acc accumulates one avg-max-load value per fault seed.
	Acc stats.Accumulator
	// HalfWidth is the confidence half-width over fault seeds (0 when
	// only one seed ran).
	HalfWidth float64
	// Disconnected accumulates the per-fault-seed fraction of
	// disconnected SD pairs; only filled under MeasureDisconnected.
	Disconnected stats.Accumulator
}

// Run executes the failure experiment. Invalid parameters panic (the
// grid runners capture panics with their cell index).
func (x FailureExperiment) Run() FailureResult {
	fseeds := x.FaultSeeds
	if len(fseeds) == 0 {
		fseeds = []int64{11, 22, 33}
	}
	if x.Fraction == 0 {
		fseeds = fseeds[:1]
	}
	seeds := x.Seeds
	if len(seeds) == 0 {
		if deterministicSelector(x.Sel) {
			seeds = []int64{0}
		} else {
			seeds = []int64{101, 202, 303, 404, 505}
		}
	}
	conf := x.Confidence
	if conf == 0 {
		conf = 0.99
	}
	var res FailureResult
	n := x.Topo.NumProcessors()
	for _, fs := range fseeds {
		faults, err := topology.RandomCableFaultFraction(x.Topo, fs, x.Fraction)
		if err != nil {
			panic(fmt.Sprintf("flow: %v", err))
		}
		if x.MeasureDisconnected {
			res.Disconnected.Add(faults.DisconnectedFraction())
		}
		pools := make([]*evalPool, len(seeds))
		for i, s := range seeds {
			rr := core.NewRouting(x.Topo, x.Sel, x.K, s).MustRepair(faults)
			if c := x.compiled(rr); c != nil {
				pools[i] = newEvalPool(func() maxLoader { return NewCompiledEvaluator(c) })
			} else {
				pools[i] = newEvalPool(func() maxLoader { return NewDegradedEvaluator(rr) })
			}
		}
		sample := func(i int) float64 {
			rng := stats.Stream(x.PermSeed, int64(i))
			tm := traffic.FromPermutation(traffic.RandomPermutation(n, rng))
			sum := 0.0
			for _, p := range pools {
				sum += p.maxLoad(tm)
			}
			return sum / float64(len(pools))
		}
		r := stats.SampleAdaptive(x.Sampling, sample)
		res.Acc.Add(r.Acc.Mean())
	}
	if res.Acc.N() > 1 {
		res.HalfWidth = res.Acc.ConfidenceHalfWidth(conf)
	}
	return res
}

// compiled builds the degraded compiled table for rr under the
// experiment's policy, or returns nil to use the lazy repaired path.
func (x FailureExperiment) compiled(rr *core.RepairedRouting) *core.CompiledRouting {
	if x.Compile == CompileNever {
		return nil
	}
	budget := x.CompileBudget
	if budget <= 0 {
		budget = DefaultCompileBudget
	}
	if x.Compile == CompileAuto {
		ms := x.Sampling.MaxSamples
		if ms <= 0 {
			ms = 12800 // stats.AdaptiveConfig's default cap
		}
		if x.Topo.NumProcessors() > ms {
			return nil
		}
	}
	c, err := core.CompileRepaired(rr, budget)
	if err != nil {
		return nil // over budget: lazy fallback
	}
	return c
}
