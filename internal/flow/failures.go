package flow

import (
	"fmt"
	"runtime"
	"sync"

	"xgftsim/internal/core"
	"xgftsim/internal/stats"
	"xgftsim/internal/topology"
	"xgftsim/internal/traffic"
)

// FailureExperiment is the degraded-fabric analogue of Experiment: for
// each fault seed it draws a random set of failed cables, repairs the
// routing against it, and measures the average maximum link load of
// random permutations with the adaptive protocol. The reported value
// aggregates over fault seeds, so its confidence interval captures the
// fault-placement variance the failure sweep is about (per-permutation
// sampling noise is already driven below the adaptive target inside
// each fault seed).
type FailureExperiment struct {
	Topo *topology.Topology
	Sel  core.Selector
	K    int
	// Fraction of cables failed (both directions each), in [0,1].
	Fraction float64
	// FaultSeeds each draw one random fault placement; the result's CI
	// is over these. nil defaults to three seeds. A zero fraction runs
	// a single seed (all placements are the same empty set).
	FaultSeeds []int64
	// Seeds drive randomized selectors, as in Experiment.
	Seeds []int64
	// PermSeed salts the permutation sample streams.
	PermSeed int64
	// Sampling configures the per-fault-seed adaptive protocol.
	Sampling stats.AdaptiveConfig
	// Confidence is the level of the over-fault-seeds interval;
	// 0 means 0.99, matching the paper's protocol.
	Confidence float64
	// Compile / CompileBudget follow Experiment. Under a compiling
	// policy the degraded tables are built incrementally: one healthy
	// compile per selector seed (shared through Base when the caller
	// provides one) plus a per-fault-placement delta patch.
	Compile       CompileMode
	CompileBudget int64
	// Base, when non-nil, supplies the healthy compiled tables and
	// delta repairers shared across every fraction of a sweep column;
	// see NewBase. It must have been built by an experiment with the
	// same topology, scheme, K, seeds and compile policy.
	Base *FailureBase
	// MeasureDisconnected additionally records the fraction of SD
	// pairs left with no surviving shortest path per fault seed (an
	// O(N²) connectivity scan, so off by default).
	MeasureDisconnected bool
}

// FailureBase is the fault-independent part of a failure experiment:
// the repairable routing per selector seed and — under a compiling
// policy — its healthy compiled table wrapped in a delta repairer.
// A sweep column builds one base and reuses it for every fraction and
// fault seed, so each placement costs one incremental patch instead of
// a whole-fabric recompile. Immutable after NewBase and safe for
// concurrent use.
type FailureBase struct {
	topo     *topology.Topology
	sel      core.Selector
	k        int
	seeds    []int64
	routings []*core.Routing
	reps     []*core.DeltaRepairer // nil entries: lazy repaired path
}

// FailureResult reports one failure-sweep cell.
type FailureResult struct {
	// Acc accumulates one avg-max-load value per fault seed.
	Acc stats.Accumulator
	// HalfWidth is the confidence half-width over fault seeds (0 when
	// only one seed ran).
	HalfWidth float64
	// Disconnected accumulates the per-fault-seed fraction of
	// disconnected SD pairs; only filled under MeasureDisconnected.
	Disconnected stats.Accumulator
}

// resolveSeeds applies the selector-seed defaulting shared by Run and
// NewBase: deterministic schemes need a single seed.
func (x FailureExperiment) resolveSeeds() []int64 {
	if len(x.Seeds) > 0 {
		return x.Seeds
	}
	if deterministicSelector(x.Sel) {
		return []int64{0}
	}
	return []int64{101, 202, 303, 404, 505}
}

// NewBase precomputes everything a failure sweep shares across fault
// placements: per selector seed, the routing and (policy permitting)
// the healthy compiled table with its link→pairs delta repairer. The
// base does not depend on Fraction or FaultSeeds, so one base serves a
// whole sweep column. A compile failure (budget exceeded) or a
// non-compiling policy leaves the corresponding entry on the lazy
// repaired path, exactly as the per-cell fallback used to.
func (x FailureExperiment) NewBase() *FailureBase {
	seeds := x.resolveSeeds()
	b := &FailureBase{
		topo:     x.Topo,
		sel:      x.Sel,
		k:        x.K,
		seeds:    seeds,
		routings: make([]*core.Routing, len(seeds)),
		reps:     make([]*core.DeltaRepairer, len(seeds)),
	}
	for i, s := range seeds {
		b.routings[i] = core.NewRouting(x.Topo, x.Sel, x.K, s)
		if !x.wantCompiled() {
			continue
		}
		budget := x.CompileBudget
		if budget <= 0 {
			budget = DefaultCompileBudget
		}
		c, err := core.CompileRouting(b.routings[i], budget)
		if err != nil {
			continue // over budget: lazy fallback
		}
		d, err := core.NewDeltaRepairer(c)
		if err != nil {
			continue
		}
		b.reps[i] = d
	}
	return b
}

// wantCompiled applies the CompileMode policy (without a concrete
// routing: the amortization heuristic only needs sizes). Under
// CompileAuto the healthy compile (≈N² pair expansions) must be
// recouped by the per-cell sampling that reuses it, so light-sampling
// configurations on fabrics wider than their sample budget stay on the
// lazy evaluators even though a sweep column shares the base.
func (x FailureExperiment) wantCompiled() bool {
	if x.Compile == CompileNever {
		return false
	}
	if x.Compile == CompileAuto {
		ms := x.Sampling.MaxSamples
		if ms <= 0 {
			ms = 12800 // stats.AdaptiveConfig's default cap
		}
		if x.Topo.NumProcessors() > ms {
			return false
		}
	}
	return true
}

// patchBudget is the pair re-selection count below which an
// incremental table patch beats lazy per-sample repair for one fault
// placement: the lazy evaluator re-derives every pair's path set on
// each of up to MaxSamples permutations (N pairs apiece, nothing
// cached across samples), while a patch re-selects each affected pair
// exactly once and leaves per-sample evaluation a plain CSR walk.
// Beyond the budget — heavy fault fractions on small fabrics with
// light sampling — lazy evaluation touches fewer pairs than the patch
// would, so Run keeps the placement on the degraded evaluator.
func (x FailureExperiment) patchBudget() int64 {
	ms := x.Sampling.MaxSamples
	if ms <= 0 {
		ms = 12800 // stats.AdaptiveConfig's default cap
	}
	return int64(ms) * int64(x.Topo.NumProcessors())
}

// matches reports whether the base was built for this experiment's
// fault-independent parameters.
func (b *FailureBase) matches(x FailureExperiment, seeds []int64) bool {
	if b.topo != x.Topo || b.sel != x.Sel || b.k != x.K || len(b.seeds) != len(seeds) {
		return false
	}
	for i, s := range seeds {
		if b.seeds[i] != s {
			return false
		}
	}
	return true
}

// Run executes the failure experiment. Invalid parameters panic (the
// grid runners capture panics with their cell index).
func (x FailureExperiment) Run() FailureResult {
	fseeds := x.FaultSeeds
	if len(fseeds) == 0 {
		fseeds = []int64{11, 22, 33}
	}
	if x.Fraction == 0 {
		fseeds = fseeds[:1]
	}
	seeds := x.resolveSeeds()
	conf := x.Confidence
	if conf == 0 {
		conf = 0.99
	}
	base := x.Base
	if base == nil {
		base = x.NewBase()
	} else if !base.matches(x, seeds) {
		panic(fmt.Sprintf("flow: failure base was built for %s K=%d on %s, experiment wants %s K=%d on %s",
			base.sel.Name(), base.k, base.topo, x.Sel.Name(), x.K, x.Topo))
	}
	// Fault placement, repair and incremental table patching are
	// independent across fault seeds — run them in parallel before the
	// serial sampling loop (which accumulates in fault-seed order for
	// deterministic confidence intervals). Panics are carried back to
	// this goroutine so the grid runner still captures them.
	type prep struct {
		pools []*evalPool
		disc  float64
	}
	preps := make([]prep, len(fseeds))
	panics := make([]any, len(fseeds))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for fi, fs := range fseeds {
		wg.Add(1)
		go func(fi int, fs int64) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[fi] = r
				}
			}()
			sem <- struct{}{}
			defer func() { <-sem }()
			faults, err := topology.RandomCableFaultFraction(x.Topo, fs, x.Fraction)
			if err != nil {
				panic(fmt.Sprintf("flow: %v", err))
			}
			if x.MeasureDisconnected {
				preps[fi].disc = faults.DisconnectedFraction()
			}
			budget := x.patchBudget()
			pools := make([]*evalPool, len(seeds))
			for i := range seeds {
				rr := base.routings[i].MustRepair(faults)
				if d := base.reps[i]; d != nil && int64(d.AffectedCount(faults)) <= budget {
					c, err := d.CompileRepairedDelta(rr)
					if err != nil {
						panic(fmt.Sprintf("flow: %v", err))
					}
					met.repairPatched.Inc()
					pools[i] = newEvalPool(func() maxLoader { return NewCompiledEvaluator(c) })
				} else {
					met.repairLazy.Inc()
					pools[i] = newEvalPool(func() maxLoader { return NewDegradedEvaluator(rr) })
				}
			}
			preps[fi].pools = pools
		}(fi, fs)
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
	var res FailureResult
	n := x.Topo.NumProcessors()
	for fi := range fseeds {
		if x.MeasureDisconnected {
			res.Disconnected.Add(preps[fi].disc)
		}
		pools := preps[fi].pools
		sample := func(i int) float64 {
			rng := stats.Stream(x.PermSeed, int64(i))
			tm := traffic.FromPermutation(traffic.RandomPermutation(n, rng))
			sum := 0.0
			for _, p := range pools {
				sum += p.maxLoad(tm)
			}
			return sum / float64(len(pools))
		}
		r := stats.SampleAdaptive(x.Sampling, sample)
		res.Acc.Add(r.Acc.Mean())
	}
	if res.Acc.N() > 1 {
		res.HalfWidth = res.Acc.ConfidenceHalfWidth(conf)
	}
	return res
}
