package flow

import (
	"sync"
	"testing"

	"xgftsim/internal/core"
	"xgftsim/internal/stats"
	"xgftsim/internal/topology"
	"xgftsim/internal/traffic"
)

func fiveSchemes() []core.Selector {
	return []core.Selector{core.DModK{}, core.SModK{}, core.Shift1{}, core.Disjoint{}, core.RandomK{}}
}

// diffOne asserts compiled Loads/MaxLoad equal the lazy evaluator
// bit-for-bit for one routing over the given demands.
func diffOne(t *testing.T, r *core.Routing, tms []*traffic.Matrix) {
	t.Helper()
	c, err := core.CompileRouting(r, 0)
	if err != nil {
		t.Fatalf("%s: compile: %v", r, err)
	}
	lazy := NewEvaluator(r)
	comp := NewCompiledEvaluator(c)
	for ti, tm := range tms {
		a := lazy.Loads(tm)
		b := comp.Loads(tm)
		for l := range a {
			if a[l] != b[l] {
				t.Fatalf("%s over %s, demand %d: link %d load %v (lazy) vs %v (compiled)",
					r, r.Topology(), ti, l, a[l], b[l])
			}
		}
		if ml, mc := lazy.MaxLoad(tm), comp.MaxLoad(tm); ml != mc {
			t.Fatalf("%s demand %d: MaxLoad %v (lazy) vs %v (compiled)", r, ti, ml, mc)
		}
	}
}

func permDemands(n, count int, seed int64) []*traffic.Matrix {
	tms := make([]*traffic.Matrix, 0, count+1)
	for i := 0; i < count; i++ {
		rng := stats.Stream(seed, int64(i))
		tms = append(tms, traffic.FromPermutation(traffic.RandomPermutation(n, rng)))
	}
	// One sparse non-uniform demand to cover fractional amounts.
	m := traffic.NewMatrix(n)
	rng := stats.Stream(seed, 1<<20)
	for i := 0; i < n/2; i++ {
		src, dst := rng.Intn(n), rng.Intn(n)
		if src != dst {
			m.Add(src, dst, 0.25+rng.Float64())
		}
	}
	return append(tms, m)
}

// TestCompiledEvaluatorDifferential: compiled and lazy evaluation must
// agree exactly across all five paper schemes on the small Figure 4
// panels, several seeds and K values.
func TestCompiledEvaluatorDifferential(t *testing.T) {
	panels := []*topology.Topology{
		topology.MustNew(2, []int{8, 16}, []int{1, 8}),   // panel a
		topology.MustNew(2, []int{12, 24}, []int{1, 12}), // panel c
	}
	for _, tp := range panels {
		tms := permDemands(tp.NumProcessors(), 3, 42)
		for _, sel := range fiveSchemes() {
			for _, k := range []int{1, 2, 4, tp.MaxPaths()} {
				for _, seed := range []int64{0, 101, 505} {
					diffOne(t, core.NewRouting(tp, sel, k, seed), tms)
				}
			}
		}
	}
}

// TestCompiledEvaluatorDifferentialLarge extends the differential to
// the 3-level panels b and d (the TACC-Ranger-scale tree), where the
// compiled table is hundreds of megabytes; skipped with -short.
func TestCompiledEvaluatorDifferentialLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("large-panel differential skipped in -short mode")
	}
	b := topology.MustNew(3, []int{8, 8, 16}, []int{1, 8, 8}) // panel b
	tms := permDemands(b.NumProcessors(), 2, 7)
	for _, sel := range fiveSchemes() {
		diffOne(t, core.NewRouting(b, sel, 2, 101), tms)
	}
	d := topology.MustNew(3, []int{12, 12, 24}, []int{1, 12, 12}) // panel d
	tmsD := permDemands(d.NumProcessors(), 1, 9)
	for _, sel := range []core.Selector{core.Disjoint{}, core.RandomK{}} {
		diffOne(t, core.NewRouting(d, sel, 2, 303), tmsD)
	}
}

// TestCompiledTableSharedRace exercises one compiled table from many
// goroutines at once (run under -race): each worker owns an evaluator
// but shares the read-only CSR arrays, and every result must match the
// single-threaded lazy answer.
func TestCompiledTableSharedRace(t *testing.T) {
	tp := topology.MustNew(2, []int{8, 16}, []int{1, 8})
	r := core.NewRouting(tp, core.RandomK{}, 4, 2012)
	c, err := core.CompileRouting(r, 0)
	if err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 8, 16
	n := tp.NumProcessors()
	want := make([][]float64, workers*perWorker)
	lazy := NewEvaluator(r)
	for i := range want {
		rng := stats.Stream(5, int64(i))
		tm := traffic.FromPermutation(traffic.RandomPermutation(n, rng))
		want[i] = append([]float64(nil), lazy.Loads(tm)...)
	}
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ev := NewCompiledEvaluator(c)
			for i := w * perWorker; i < (w+1)*perWorker; i++ {
				rng := stats.Stream(5, int64(i))
				tm := traffic.FromPermutation(traffic.RandomPermutation(n, rng))
				got := ev.Loads(tm)
				for l := range got {
					if got[l] != want[i][l] {
						errs <- "concurrent compiled Loads diverged from lazy"
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	if msg, bad := <-errs; bad {
		t.Fatal(msg)
	}
}

// TestExperimentCompileModesAgree: the full adaptive permutation
// experiment must produce identical statistics with compiled tables
// forced on and forced off.
func TestExperimentCompileModesAgree(t *testing.T) {
	tp := topology.MustNew(2, []int{8, 16}, []int{1, 8})
	cfg := stats.AdaptiveConfig{InitialSamples: 12, MaxSamples: 24, RelPrecision: 0.2}
	for _, sel := range []core.Selector{core.Disjoint{}, core.RandomK{}} {
		base := Experiment{Topo: tp, Sel: sel, K: 3, PermSeed: 11, Sampling: cfg}
		on, off := base, base
		on.Compile, off.Compile = CompileAlways, CompileNever
		a, b := on.Run(), off.Run()
		if a.Acc.Mean() != b.Acc.Mean() || a.Acc.N() != b.Acc.N() || a.HalfWidth != b.HalfWidth {
			t.Fatalf("%s: compiled experiment (mean %v, n %d) != lazy (mean %v, n %d)",
				sel.Name(), a.Acc.Mean(), a.Acc.N(), b.Acc.Mean(), b.Acc.N())
		}
	}
}

// TestEvaluatorOptimalLoadResident: the evaluator-resident OLOAD and
// PERF must match the package-level functions.
func TestEvaluatorOptimalLoadResident(t *testing.T) {
	tp := topology.MustNew(3, []int{4, 4, 8}, []int{1, 4, 4})
	r := core.NewRouting(tp, core.Disjoint{}, 4, 0)
	ev := NewEvaluator(r)
	for i := 0; i < 5; i++ {
		rng := stats.Stream(3, int64(i))
		tm := traffic.FromPermutation(traffic.RandomPermutation(tp.NumProcessors(), rng))
		if got, want := ev.OptimalLoad(tm), OptimalLoad(tp, tm); got != want {
			t.Fatalf("demand %d: resident OLOAD %v, free function %v", i, got, want)
		}
		if got, want := ev.PerformanceRatio(tm), PerformanceRatio(r, tm); got != want {
			t.Fatalf("demand %d: resident PERF %v, free function %v", i, got, want)
		}
	}
}
