package flow

import (
	"fmt"
	"sync"

	"xgftsim/internal/core"
	"xgftsim/internal/stats"
	"xgftsim/internal/topology"
	"xgftsim/internal/traffic"
)

// MultiKEvaluator computes, in one walk of a traffic matrix, the
// maximum link load of the same scheme at every K of an ascending
// grid. It exploits the selectors' prefix-nesting guarantee
// (core.PrefixNested): a pair's path set at limit K is a prefix of its
// set at K+1, so one derivation of the longest needed prefix serves
// every K column. Per pair it accumulates link-hit counts path by
// path and, at each K boundary of the grid, folds count·amount/min(K,X)
// into that K's load vector; columns whose boundary reaches a level's
// full path count replay that level's X paths with direct adds (the
// same adds, in the same order, as a per-K evaluator). Touched-link
// lists replace the O(numLinks) clear and the maximum is folded into
// accumulation.
//
// Columns whose effective path count is the full X at EVERY NCA level
// (K >= MaxPaths for limited schemes; always for UMULTI) route exactly
// like UMULTI, and by Theorem 1 MLOAD(UMULTI, TM) == OLOAD(TM) on
// XGFTs. Those columns skip the per-pair walk entirely: one
// subtree-cut optimalLoad pass per call produces their value, turning
// the grid's most expensive column (X paths per pair) into its
// cheapest. The result is bit-identical to OptimalLoad and agrees
// with a per-K evaluator's repeated-add MLOAD to ulp-level rounding.
//
// The evaluator reuses all scratch across calls and is not safe for
// concurrent use; create one per goroutine (see MultiKExperiment).
type MultiKEvaluator struct {
	topo *topology.Topology
	ks   []int
	c    *core.CompiledRouting // compiled table at Kmax, or nil
	r    *core.Routing         // lazy source when c == nil
	ps   *core.PathScratch

	class selClass
	// oload[j]: column j's effective count is X at every level, so its
	// value is OLOAD (Theorem 1) — computed per call, never walked.
	oload []bool

	numLinks int
	backing  []float64   // len(ks)·numLinks load entries
	rows     [][]float64 // rows[j] = backing row of ks[j]

	// Per-sample touched bookkeeping: stamp[l] == epoch marks that some
	// row loaded link l this sample; touched lists those links so the
	// next call clears only them (in every still-active row).
	stamp   []uint32
	epoch   uint32
	touched []int32

	// Per-pair prefix counting scratch.
	counts      []int32
	pairTouched []int32

	plans []multiKPlan // indexed by NCA level, rebuilt per call

	pathBuf     []int
	linkBuf     []topology.LinkID
	fullLinkBuf []topology.LinkID
	allActive   []bool
	opt         optScratch
}

// selClass tells how a scheme's effective per-pair path count depends
// on K: single-path schemes always use 1, UMULTI always all X, limited
// multipath schemes min(K, X).
type selClass int

const (
	classLimited selClass = iota
	classSingle
	classUnlimited
)

func classify(sel core.Selector) selClass {
	if _, ok := sel.(core.UMulti); ok {
		return classUnlimited
	}
	if !sel.MultiPath() {
		return classSingle
	}
	return classLimited
}

// multiKPlan is the per-NCA-level evaluation plan for one MaxLoads
// call: which active K columns fold at which path-count boundary (all
// boundaries < X, ascending, rows grouped per boundary), which active
// columns use the full X-path set, and how long the derived prefix
// must be.
type multiKPlan struct {
	x      int
	stride int   // links per path segment (2·level)
	allIdx []int // canonical 0..x-1, for the lazy full-set pass
	bPre   int   // longest prefix any fold boundary needs (0: none)
	bounds []foldBound
	full   []int

	boundsStore []foldBound
}

type foldBound struct {
	b    int
	rows []int
}

// NewMultiKEvaluator creates a lazy multi-K evaluator for the routing
// r over the ascending, strictly increasing K grid ks (every K >= 1).
// The routing's own configured K is superseded by the grid: paths are
// derived with explicit per-call limits. The routing's selector must
// be prefix-nested (core.PrefixNested) or this panics.
func NewMultiKEvaluator(r *core.Routing, ks []int) *MultiKEvaluator {
	e := newMultiK(r.Topology(), r.Selector(), ks)
	e.r = r
	e.ps = core.NewPathScratch()
	return e
}

// NewCompiledMultiKEvaluator creates a multi-K evaluator walking the
// shared compiled table c, which must hold a healthy routing compiled
// with a path limit of at least the grid's largest K (so that every
// prefix the grid needs is materialized). The table's path-major
// layout (CompiledRouting.PairPathLinks) makes each fold a contiguous
// scan.
func NewCompiledMultiKEvaluator(c *core.CompiledRouting, ks []int) *MultiKEvaluator {
	if c.Repaired() != nil {
		panic("flow: MultiKEvaluator requires a healthy compiled table (repaired path sets are not K-nested)")
	}
	r := c.Routing()
	e := newMultiK(c.Topology(), r.Selector(), ks)
	if rk := r.K(); rk > 0 && rk < ks[len(ks)-1] && classify(r.Selector()) == classLimited {
		panic(fmt.Sprintf("flow: compiled table built at K=%d cannot serve grid up to K=%d", rk, ks[len(ks)-1]))
	}
	e.c = c
	return e
}

func newMultiK(t *topology.Topology, sel core.Selector, ks []int) *MultiKEvaluator {
	if len(ks) == 0 {
		panic("flow: MultiKEvaluator requires a non-empty K grid")
	}
	for i, k := range ks {
		if k < 1 || (i > 0 && k <= ks[i-1]) {
			panic(fmt.Sprintf("flow: MultiKEvaluator K grid must be ascending and >= 1, got %v", ks))
		}
	}
	if !core.PrefixNested(sel) {
		panic(fmt.Sprintf("flow: selector %s does not guarantee prefix nesting; MultiKEvaluator requires it", sel.Name()))
	}
	nK := len(ks)
	nL := t.NumLinks()
	e := &MultiKEvaluator{
		topo:     t,
		ks:       append([]int(nil), ks...),
		class:    classify(sel),
		numLinks: nL,
		backing:  make([]float64, nK*nL),
		rows:     make([][]float64, nK),
		stamp:    make([]uint32, nL),
		counts:   make([]int32, nL),
		plans:    make([]multiKPlan, t.H()+1),
		allActive: func() []bool {
			a := make([]bool, nK)
			for i := range a {
				a[i] = true
			}
			return a
		}(),
	}
	for j := range e.rows {
		e.rows[j] = e.backing[j*nL : (j+1)*nL]
	}
	e.oload = make([]bool, nK)
	for j, k := range ks {
		e.oload[j] = e.effCount(k, t.MaxPaths()) == t.MaxPaths()
	}
	for lev := 1; lev <= t.H(); lev++ {
		p := &e.plans[lev]
		p.x = t.WProd(lev)
		p.stride = 2 * lev
		p.allIdx = make([]int, p.x)
		for i := range p.allIdx {
			p.allIdx[i] = i
		}
		p.boundsStore = make([]foldBound, nK)
	}
	return e
}

// Ks returns the evaluator's K grid.
func (e *MultiKEvaluator) Ks() []int { return e.ks }

// effCount is the scheme's effective path count at limit k for a pair
// with x shortest paths.
func (e *MultiKEvaluator) effCount(k, x int) int {
	switch e.class {
	case classSingle:
		return 1
	case classUnlimited:
		return x
	}
	if k > x {
		return x
	}
	return k
}

// buildPlans groups the active K columns of every NCA level into fold
// boundaries (< X) and full-set columns (= X) for this call.
func (e *MultiKEvaluator) buildPlans(active []bool) {
	for lev := 1; lev < len(e.plans); lev++ {
		p := &e.plans[lev]
		p.bounds = p.boundsStore[:0]
		p.full = p.full[:0]
		p.bPre = 0
		for j, k := range e.ks {
			if !active[j] || e.oload[j] {
				continue
			}
			b := e.effCount(k, p.x)
			if b >= p.x {
				p.full = append(p.full, j)
				continue
			}
			if n := len(p.bounds); n > 0 && p.bounds[n-1].b == b {
				p.bounds[n-1].rows = append(p.bounds[n-1].rows, j)
			} else {
				p.bounds = p.boundsStore[:n+1]
				fb := &p.bounds[n]
				fb.b = b
				fb.rows = append(fb.rows[:0], j)
			}
			p.bPre = b // ks ascending ⇒ boundaries non-decreasing
		}
	}
}

// MaxLoads computes MLOAD at every active K of the grid under tm,
// writing out[j] for each j with active[j] true and leaving frozen
// entries untouched (nil active means all). The active set must be
// non-increasing across calls on one evaluator — a column, once
// frozen, must stay frozen (this matches stats.SampleAdaptiveVec) —
// because frozen rows keep their stale loads and are excluded from the
// touched-link clearing.
func (e *MultiKEvaluator) MaxLoads(tm *traffic.Matrix, active []bool, out []float64) {
	if tm.N != e.topo.NumProcessors() {
		panic(fmt.Sprintf("flow: traffic matrix over %d nodes, topology has %d", tm.N, e.topo.NumProcessors()))
	}
	if active == nil {
		active = e.allActive
	}
	nAct, nWalk, nOpt := 0, 0, 0
	for j, a := range active {
		if !a {
			continue
		}
		nAct++
		if e.oload[j] {
			nOpt++
		} else {
			nWalk++
		}
	}
	met.multikWalks.Inc()
	met.multikColumns.Add(int64(nAct))
	// Theorem-1 columns: one subtree-cut pass serves them all; their
	// load rows stay untouched (always zero).
	if nOpt > 0 {
		ol := e.opt.optimalLoad(e.topo, tm)
		for j := range e.ks {
			if active[j] && e.oload[j] {
				out[j] = ol
			}
		}
	}
	if nWalk == 0 {
		return
	}
	met.pairsEvaluated.Add(int64(len(tm.Flows())))
	// Clear only what the previous sample loaded, in the rows that are
	// still live, then stamp a fresh epoch.
	for j := range e.ks {
		if !active[j] || e.oload[j] {
			continue
		}
		row := e.rows[j]
		for _, l := range e.touched {
			row[l] = 0
		}
		out[j] = 0
	}
	e.touched = e.touched[:0]
	e.epoch++
	if e.epoch == 0 { // wrapped: stamps from the old era are ambiguous
		for i := range e.stamp {
			e.stamp[i] = 0
		}
		e.epoch = 1
	}
	e.buildPlans(active)
	for _, f := range tm.Flows() {
		e.evalPair(f.Src, f.Dst, f.Amount, out)
	}
}

func (e *MultiKEvaluator) evalPair(src, dst int, amount float64, out []float64) {
	p := &e.plans[e.topo.NCALevel(src, dst)]
	if len(p.bounds) > 0 {
		if e.c != nil {
			links, _, _ := e.c.PairPathLinks(src, dst)
			walkBounds(e, p, links, amount, out)
		} else {
			e.pathBuf = e.r.AppendPathsLimitedScratch(e.ps, e.pathBuf[:0], src, dst, p.bPre)
			e.linkBuf = core.AppendPathSetLinks(e.topo, src, dst, e.pathBuf, e.linkBuf[:0])
			walkBounds(e, p, e.linkBuf, amount, out)
		}
	}
	if len(p.full) > 0 {
		share := amount / float64(p.x)
		if e.c != nil {
			links, _, _ := e.c.PairPathLinks(src, dst)
			for _, row := range p.full {
				addFull(e, row, links, share, out)
			}
		} else {
			e.fullLinkBuf = core.AppendPathSetLinks(e.topo, src, dst, p.allIdx, e.fullLinkBuf[:0])
			for _, row := range p.full {
				addFull(e, row, e.fullLinkBuf, share, out)
			}
		}
	}
}

// walkBounds advances the pair's per-link hit counts boundary by
// boundary and folds count·amount/b into every row grouped at each
// boundary b. links must cover at least p.bPre path segments of
// p.stride links each.
func walkBounds[L ~int | ~int32](e *MultiKEvaluator, p *multiKPlan, links []L, amount float64, out []float64) {
	prev := 0
	for bi := range p.bounds {
		fb := &p.bounds[bi]
		for _, l := range links[prev*p.stride : fb.b*p.stride] {
			if e.counts[l] == 0 {
				e.pairTouched = append(e.pairTouched, int32(l))
			}
			e.counts[l]++
		}
		prev = fb.b
		share := amount / float64(fb.b)
		for _, row := range fb.rows {
			loads := e.rows[row]
			mx := out[row]
			for _, l := range e.pairTouched {
				if e.stamp[l] != e.epoch {
					e.stamp[l] = e.epoch
					e.touched = append(e.touched, l)
				}
				v := loads[l] + float64(e.counts[l])*share
				loads[l] = v
				if v > mx {
					mx = v
				}
			}
			out[row] = mx
		}
	}
	for _, l := range e.pairTouched {
		e.counts[l] = 0
	}
	e.pairTouched = e.pairTouched[:0]
}

// addFull replays the pair's full path set into one row with direct
// per-link adds — the same adds, in the same order, as a per-K
// evaluator at any K >= X performs, so full-set columns stay
// bit-identical to per-cell evaluation.
func addFull[L ~int | ~int32](e *MultiKEvaluator, row int, links []L, share float64, out []float64) {
	loads := e.rows[row]
	mx := out[row]
	for _, l := range links {
		if e.stamp[l] != e.epoch {
			e.stamp[l] = e.epoch
			e.touched = append(e.touched, int32(l))
		}
		v := loads[l] + share
		loads[l] = v
		if v > mx {
			mx = v
		}
	}
	out[row] = mx
}

// Loads returns the load vector of the given K column as computed by
// the most recent MaxLoads call (valid until the next call; the slice
// is owned by the evaluator). Theorem-1 columns are never walked, so
// their rows stay all-zero. Intended for differential tests.
func (e *MultiKEvaluator) Loads(j int) []float64 { return e.rows[j] }

// OptimalLoad computes OLOAD(TM) reusing evaluator-resident scratch —
// OLOAD is routing-independent, so one call serves every K column of a
// sample.
func (e *MultiKEvaluator) OptimalLoad(tm *traffic.Matrix) float64 {
	return e.opt.optimalLoad(e.topo, tm)
}

// MultiKExperiment is the paper's permutation study for a whole
// (topology, scheme) column of a K grid at once: one permutation
// stream, one compile and one evaluator walk serve every K, with the
// vector adaptive sampler freezing each K's accumulator exactly where
// an independent per-K run would have stopped. Per-K means, sample
// counts and half-widths are therefore identical to running
// flow.Experiment once per K up to ulp-level rounding: count-folded
// prefix columns add count·share instead of count repeated shares,
// and columns with K >= X at every level short-circuit to OLOAD
// (Theorem 1) instead of replaying X paths per pair.
type MultiKExperiment struct {
	Topo *topology.Topology
	Sel  core.Selector
	// Ks is the ascending, strictly increasing K grid (every K >= 1).
	Ks []int
	// Seeds, PermSeed, Sampling, Compile, CompileBudget behave exactly
	// as in Experiment; the compile policy is applied once at the
	// grid's largest K.
	Seeds         []int64
	PermSeed      int64
	Sampling      stats.AdaptiveConfig
	Compile       CompileMode
	CompileBudget int64
}

// Run executes the experiment, returning one accumulator per K in grid
// order.
func (x MultiKExperiment) Run() stats.AdaptiveVecResult {
	seeds := x.Seeds
	if len(seeds) == 0 {
		if deterministicSelector(x.Sel) {
			seeds = []int64{0}
		} else {
			seeds = []int64{101, 202, 303, 404, 505}
		}
	}
	kmax := x.Ks[len(x.Ks)-1]
	pools := make([]*sync.Pool, len(seeds))
	for i, s := range seeds {
		r := core.NewRouting(x.Topo, x.Sel, kmax, s)
		c := Experiment{Topo: x.Topo, Sel: x.Sel, K: kmax, Sampling: x.Sampling,
			Compile: x.Compile, CompileBudget: x.CompileBudget}.compiled(r)
		pools[i] = &sync.Pool{New: func() any {
			if c != nil {
				return NewCompiledMultiKEvaluator(c, x.Ks)
			}
			return NewMultiKEvaluator(r, x.Ks)
		}}
	}
	n := x.Topo.NumProcessors()
	nK := len(x.Ks)
	tmpPool := sync.Pool{New: func() any { s := make([]float64, nK); return &s }}
	sample := func(i int, out []float64, active []bool) {
		rng := stats.Stream(x.PermSeed, int64(i))
		tm := traffic.FromPermutation(traffic.RandomPermutation(n, rng))
		for j := range out {
			if active[j] {
				out[j] = 0
			}
		}
		tp := tmpPool.Get().(*[]float64)
		tmp := *tp
		for _, p := range pools {
			ev := p.Get().(*MultiKEvaluator)
			ev.MaxLoads(tm, active, tmp)
			p.Put(ev)
			for j := range out {
				if active[j] {
					out[j] += tmp[j]
				}
			}
		}
		tmpPool.Put(tp)
		for j := range out {
			if active[j] {
				out[j] /= float64(len(pools))
			}
		}
	}
	return stats.SampleAdaptiveVec(x.Sampling, nK, sample)
}
