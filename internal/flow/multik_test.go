package flow

import (
	"math"
	"testing"

	"xgftsim/internal/core"
	"xgftsim/internal/stats"
	"xgftsim/internal/topology"
	"xgftsim/internal/traffic"
)

func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	if m := math.Max(math.Abs(a), math.Abs(b)); m > 1 {
		return d / m
	}
	return d
}

// TestMultiKEvaluatorMatchesPerK pins the multi-K evaluator against
// independent per-K evaluators on every scheme class and both
// backends: each K column's MLOAD must agree within 1e-12 (count
// folding / the Theorem-1 OLOAD shortcut vs repeated adds), and
// columns whose effective count is X at every level must be
// bit-identical to OptimalLoad (they are computed by the same
// subtree-cut pass, never walked).
func TestMultiKEvaluatorMatchesPerK(t *testing.T) {
	topos := []*topology.Topology{
		topology.MustNew(2, []int{4, 8}, []int{1, 4}),       // X = 4
		topology.MustNew(3, []int{2, 3, 2}, []int{2, 2, 3}), // X = 12, multi-level
		topology.MustNew(2, []int{5, 20}, []int{1, 18}),     // X = 18, sparse random regime
	}
	sels := []core.Selector{core.Shift1{}, core.Disjoint{}, core.RandomK{}, core.DModK{}, core.UMulti{}}
	for _, tp := range topos {
		maxX := tp.MaxPaths()
		ks := []int{1, 2, 3}
		if maxX > 4 {
			ks = append(ks, maxX-1)
		}
		ks = append(ks, maxX)
		n := tp.NumProcessors()
		for _, sel := range sels {
			lazy := NewMultiKEvaluator(core.NewRouting(tp, sel, ks[len(ks)-1], 7), ks)
			c, err := core.CompileRouting(core.NewRouting(tp, sel, ks[len(ks)-1], 7), 1<<30)
			if err != nil {
				t.Fatalf("%s on %s: compile: %v", sel.Name(), tp, err)
			}
			comp := NewCompiledMultiKEvaluator(c, ks)
			outL := make([]float64, len(ks))
			outC := make([]float64, len(ks))
			for sample := 0; sample < 4; sample++ {
				rng := stats.Stream(99, int64(sample))
				tm := traffic.FromPermutation(traffic.RandomPermutation(n, rng))
				lazy.MaxLoads(tm, nil, outL)
				comp.MaxLoads(tm, nil, outC)
				for j, k := range ks {
					ref := NewEvaluator(core.NewRouting(tp, sel, k, 7)).MaxLoad(tm)
					if d := relDiff(outL[j], ref); d > 1e-12 {
						t.Errorf("%s on %s K=%d sample %d: lazy multi-K %v vs per-K %v (rel %g)",
							sel.Name(), tp, k, sample, outL[j], ref, d)
					}
					if d := relDiff(outC[j], ref); d > 1e-12 {
						t.Errorf("%s on %s K=%d sample %d: compiled multi-K %v vs per-K %v (rel %g)",
							sel.Name(), tp, k, sample, outC[j], ref, d)
					}
					_, isUMulti := sel.(core.UMulti)
					if x := tp.MaxPaths(); (sel.MultiPath() && k >= x) || isUMulti {
						opt := OptimalLoad(tp, tm)
						if outL[j] != opt || outC[j] != opt {
							t.Errorf("%s on %s K=%d (X=%d) sample %d: Theorem-1 column must equal OptimalLoad %v exactly, got lazy %v compiled %v",
								sel.Name(), tp, k, x, sample, opt, outL[j], outC[j])
						}
					}
				}
				if lazy.OptimalLoad(tm) != OptimalLoad(tp, tm) {
					t.Errorf("OptimalLoad mismatch on %s", tp)
				}
			}
		}
	}
}

// TestMultiKEvaluatorActiveFreezing checks that frozen columns are
// skipped without corrupting the live ones across calls (the vector
// sampler shrinks the active set monotonically).
func TestMultiKEvaluatorActiveFreezing(t *testing.T) {
	tp := topology.MustNew(3, []int{2, 2, 4}, []int{1, 2, 2})
	ks := []int{1, 2, 4}
	n := tp.NumProcessors()
	ev := NewMultiKEvaluator(core.NewRouting(tp, core.Disjoint{}, 4, 3), ks)
	ref := NewMultiKEvaluator(core.NewRouting(tp, core.Disjoint{}, 4, 3), ks)
	active := []bool{true, true, true}
	out := make([]float64, len(ks))
	refOut := make([]float64, len(ks))
	for sample := 0; sample < 6; sample++ {
		if sample == 2 {
			active[2] = false // freeze the largest K
		}
		if sample == 4 {
			active[0] = false
		}
		rng := stats.Stream(5, int64(sample))
		tm := traffic.FromPermutation(traffic.RandomPermutation(n, rng))
		for j := range out {
			out[j] = -1
		}
		ev.MaxLoads(tm, active, out)
		ref.MaxLoads(tm, nil, refOut)
		for j := range ks {
			if !active[j] {
				if out[j] != -1 {
					t.Fatalf("sample %d: frozen column %d written: %v", sample, j, out[j])
				}
				continue
			}
			if out[j] != refOut[j] {
				t.Fatalf("sample %d column %d: active-subset run %v vs full run %v", sample, j, out[j], refOut[j])
			}
		}
	}
}

// TestMultiKExperimentMatchesPerCell is the pipeline-level
// differential: MultiKExperiment must reproduce per-K flow.Experiment
// runs exactly — same sample counts (the vector sampler freezes each
// component where a scalar run stops), same half-widths and
// convergence flags, and means within 1e-12 — including when different
// K columns converge after different numbers of batches.
func TestMultiKExperimentMatchesPerCell(t *testing.T) {
	tp := topology.MustNew(3, []int{2, 2, 4}, []int{1, 2, 2})
	ks := []int{1, 2, 3, 4}
	cfg := stats.AdaptiveConfig{InitialSamples: 20, MaxSamples: 160, RelPrecision: 0.02, Parallelism: 2}
	for _, sel := range []core.Selector{core.Disjoint{}, core.RandomK{}} {
		vec := MultiKExperiment{Topo: tp, Sel: sel, Ks: ks, PermSeed: 42, Sampling: cfg}.Run()
		sawDifferentN := false
		for j, k := range ks {
			res := Experiment{Topo: tp, Sel: sel, K: k, PermSeed: 42, Sampling: cfg}.Run()
			if got, want := vec.Accs[j].N(), res.Acc.N(); got != want {
				t.Errorf("%s K=%d: multi-K sampled %d, per-cell %d", sel.Name(), k, got, want)
			}
			if d := relDiff(vec.Accs[j].Mean(), res.Acc.Mean()); d > 1e-12 {
				t.Errorf("%s K=%d: multi-K mean %v vs per-cell %v (rel %g)", sel.Name(), k, vec.Accs[j].Mean(), res.Acc.Mean(), d)
			}
			if d := relDiff(vec.HalfWidths[j], res.HalfWidth); d > 1e-9 {
				t.Errorf("%s K=%d: multi-K half-width %v vs per-cell %v", sel.Name(), k, vec.HalfWidths[j], res.HalfWidth)
			}
			if vec.Converged[j] != res.Converged {
				t.Errorf("%s K=%d: converged %v vs per-cell %v", sel.Name(), k, vec.Converged[j], res.Converged)
			}
			if j > 0 && vec.Accs[j].N() != vec.Accs[0].N() {
				sawDifferentN = true
			}
		}
		if !sawDifferentN {
			t.Logf("%s: all K columns converged at the same batch (freezing untested here)", sel.Name())
		}
	}
}

// TestLoadsTouchedClearing differential-tests the touched-link
// clearing in both per-K evaluators against an independent naive
// accumulation, across repeated calls with different matrices (the
// second call must fully clear the first call's footprint).
func TestLoadsTouchedClearing(t *testing.T) {
	tp := topology.MustNew(3, []int{2, 3, 2}, []int{2, 2, 3})
	n := tp.NumProcessors()
	for _, sel := range []core.Selector{core.DModK{}, core.Disjoint{}, core.RandomK{}} {
		r := core.NewRouting(tp, sel, 3, 11)
		lazy := NewEvaluator(r)
		c, err := core.CompileRouting(r, 1<<30)
		if err != nil {
			t.Fatal(err)
		}
		comp := NewCompiledEvaluator(c)
		for sample := 0; sample < 3; sample++ {
			rng := stats.Stream(7, int64(sample))
			tm := traffic.FromPermutation(traffic.RandomPermutation(n, rng))
			naive := make([]float64, tp.NumLinks())
			for _, f := range tm.Flows() {
				paths := r.Paths(f.Src, f.Dst)
				links := core.AppendPathSetLinks(tp, f.Src, f.Dst, paths, nil)
				share := f.Amount / float64(len(paths))
				for _, l := range links {
					naive[l] += share
				}
			}
			wantMax := 0.0
			for _, v := range naive {
				if v > wantMax {
					wantMax = v
				}
			}
			gotL := lazy.Loads(tm)
			for l := range naive {
				if gotL[l] != naive[l] {
					t.Fatalf("%s sample %d: lazy loads[%d] = %v, naive %v", sel.Name(), sample, l, gotL[l], naive[l])
				}
			}
			if got := lazy.MaxLoad(tm); got != wantMax {
				t.Fatalf("%s sample %d: lazy MaxLoad %v, naive %v", sel.Name(), sample, got, wantMax)
			}
			gotC := comp.Loads(tm)
			for l := range naive {
				if gotC[l] != naive[l] {
					t.Fatalf("%s sample %d: compiled loads[%d] = %v, naive %v", sel.Name(), sample, l, gotC[l], naive[l])
				}
			}
			if got := comp.MaxLoad(tm); got != wantMax {
				t.Fatalf("%s sample %d: compiled MaxLoad %v, naive %v", sel.Name(), sample, got, wantMax)
			}
		}
	}
}

// TestEvaluatorSteadyStateAllocs pins the zero-allocation steady state
// of the evaluation hot paths, including random-K routing (whose
// selector now draws inside the caller's path buffer instead of
// allocating a map or permutation per pair).
func TestEvaluatorSteadyStateAllocs(t *testing.T) {
	tp := topology.MustNew(3, []int{2, 3, 2}, []int{2, 2, 3})
	n := tp.NumProcessors()
	tms := make([]*traffic.Matrix, 4)
	for i := range tms {
		tms[i] = traffic.FromPermutation(traffic.RandomPermutation(n, stats.Stream(3, int64(i))))
	}
	for _, sel := range []core.Selector{core.Disjoint{}, core.RandomK{}} {
		r := core.NewRouting(tp, sel, 3, 1)
		lazy := NewEvaluator(r)
		lazy.MaxLoad(tms[0]) // warm scratch
		i := 0
		if got := testing.AllocsPerRun(20, func() {
			i++
			lazy.MaxLoad(tms[i%len(tms)])
		}); got != 0 {
			t.Errorf("%s: lazy Evaluator.MaxLoad allocates %.1f/op in steady state", sel.Name(), got)
		}
		c, err := core.CompileRouting(r, 1<<30)
		if err != nil {
			t.Fatal(err)
		}
		comp := NewCompiledEvaluator(c)
		comp.MaxLoad(tms[0])
		if got := testing.AllocsPerRun(20, func() {
			i++
			comp.MaxLoad(tms[i%len(tms)])
		}); got != 0 {
			t.Errorf("%s: CompiledEvaluator.MaxLoad allocates %.1f/op in steady state", sel.Name(), got)
		}
		ks := []int{1, 2, 4, tp.MaxPaths()}
		multi := NewMultiKEvaluator(core.NewRouting(tp, sel, tp.MaxPaths(), 1), ks)
		out := make([]float64, len(ks))
		multi.MaxLoads(tms[0], nil, out)
		if got := testing.AllocsPerRun(20, func() {
			i++
			multi.MaxLoads(tms[i%len(tms)], nil, out)
		}); got != 0 {
			t.Errorf("%s: MultiKEvaluator.MaxLoads allocates %.1f/op in steady state", sel.Name(), got)
		}
	}
}
