package flow

import (
	"testing"

	"xgftsim/internal/core"
	"xgftsim/internal/obs"
	"xgftsim/internal/stats"
	"xgftsim/internal/topology"
	"xgftsim/internal/traffic"
)

func blockFlowTopo(t *testing.T) *topology.Topology {
	t.Helper()
	return topology.MustNew(3, []int{4, 4, 8}, []int{1, 4, 4})
}

// TestBlockEvaluatorMatchesLazy pins the bit-identity contract: for
// source-sorted matrices, MaxLoadsBatch over streamed segments equals
// the lazy per-K Evaluator's MaxLoad exactly (same shares, same add
// order, so the same floating-point results bit for bit).
func TestBlockEvaluatorMatchesLazy(t *testing.T) {
	topo := blockFlowTopo(t)
	n := topo.NumProcessors()
	tms := []*traffic.Matrix{
		traffic.FromPermutation(traffic.RandomPermutation(n, stats.Stream(7, 0))),
		traffic.FromPermutation(traffic.RandomPermutation(n, stats.Stream(7, 1))),
		traffic.FromPermutation(traffic.ShiftPermutation(n, 3)),
		traffic.FromPermutation(traffic.Tornado(n)),
	}
	for _, tc := range []struct {
		name string
		sel  core.Selector
		ks   []int
	}{
		{"disjoint", core.Disjoint{}, []int{1, 2, 4, 8}},
		{"random", core.RandomK{}, []int{1, 3, 4}},
		{"shift1", core.Shift1{}, []int{2, 4}},
		{"dmodk", core.DModK{}, []int{1, 4}},
		{"umulti", core.UMulti{}, []int{16}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			kmax := tc.ks[len(tc.ks)-1]
			b := core.NewBlockCompiledRouting(core.NewRouting(topo, tc.sel, kmax, 11), core.BlockOptions{SegmentBytes: 64 << 10})
			defer b.Close()
			e := NewBlockEvaluator(b, tc.ks)
			out := make([][]float64, len(tms))
			for i := range out {
				out[i] = make([]float64, len(tc.ks))
			}
			if err := e.MaxLoadsBatch(tms, out); err != nil {
				t.Fatalf("MaxLoadsBatch: %v", err)
			}
			for j, k := range tc.ks {
				ek := k
				if cl := classify(tc.sel); cl == classUnlimited || cl == classSingle {
					ek = kmax // lazy path ignores K differences within a class
				}
				lazy := NewEvaluator(core.NewRouting(topo, tc.sel, ek, 11))
				for s, tm := range tms {
					want := lazy.MaxLoad(tm)
					if got := out[s][j]; got != want {
						t.Fatalf("K=%d matrix %d: block %v != lazy %v", k, s, got, want)
					}
				}
			}
		})
	}
}

// TestBlockEvaluatorShardedMerge pins the sharded path: two disjoint
// segment ranges accumulated by separate evaluators, merged by sparse
// row union, equal the single-walk result exactly.
func TestBlockEvaluatorShardedMerge(t *testing.T) {
	topo := blockFlowTopo(t)
	n := topo.NumProcessors()
	tms := []*traffic.Matrix{
		traffic.FromPermutation(traffic.RandomPermutation(n, stats.Stream(3, 0))),
	}
	ks := []int{1, 4}
	b := core.NewBlockCompiledRouting(core.NewRouting(topo, core.Disjoint{}, 4, 0), core.BlockOptions{SegmentBytes: 64 << 10})
	defer b.Close()
	if b.NumSegments() < 2 {
		t.Fatalf("need >= 2 segments, got %d", b.NumSegments())
	}

	whole := NewBlockEvaluator(b, ks)
	want := [][]float64{make([]float64, len(ks))}
	if err := whole.MaxLoadsBatch(tms, want); err != nil {
		t.Fatalf("MaxLoadsBatch: %v", err)
	}

	mid := b.NumSegments() / 2
	shards := []*BlockEvaluator{NewBlockEvaluator(b, ks), NewBlockEvaluator(b, ks)}
	if err := shards[0].AccumulateSegments(tms, 0, mid); err != nil {
		t.Fatalf("shard 0: %v", err)
	}
	if err := shards[1].AccumulateSegments(tms, mid, b.NumSegments()); err != nil {
		t.Fatalf("shard 1: %v", err)
	}
	scratch := make([]float64, topo.NumLinks())
	for j := range ks {
		var union []int32
		for _, sh := range shards {
			row := sh.Row(0, j)
			for _, l := range sh.RowTouched(0, j) {
				if scratch[l] == 0 {
					union = append(union, l)
				}
				scratch[l] += row[l]
			}
		}
		mx := 0.0
		for _, l := range union {
			if v := scratch[l]; v > mx {
				mx = v
			}
			scratch[l] = 0
		}
		if mx != want[0][j] {
			t.Fatalf("K=%d: sharded merge %v != whole walk %v", ks[j], mx, want[0][j])
		}
	}
}

// TestBlockEvaluatorPrefetchMatches pins the pipeline's transparency:
// the same batch evaluated over a prefetching table produces bitwise
// the same loads as over a plain one, and the workers actually serve
// segments (nonzero core.segments_prefetched).
func TestBlockEvaluatorPrefetchMatches(t *testing.T) {
	topo := blockFlowTopo(t)
	n := topo.NumProcessors()
	tms := []*traffic.Matrix{
		traffic.FromPermutation(traffic.RandomPermutation(n, stats.Stream(13, 0))),
		traffic.FromPermutation(traffic.RandomPermutation(n, stats.Stream(13, 1))),
	}
	ks := []int{1, 4}
	r := core.NewRouting(topo, core.Disjoint{}, 4, 0)
	plain := core.NewBlockCompiledRouting(r, core.BlockOptions{SegmentBytes: 64 << 10})
	defer plain.Close()
	pref := core.NewBlockCompiledRouting(r, core.BlockOptions{SegmentBytes: 64 << 10, Prefetch: 4})
	defer pref.Close()
	want := [][]float64{make([]float64, len(ks)), make([]float64, len(ks))}
	got := [][]float64{make([]float64, len(ks)), make([]float64, len(ks))}
	if err := NewBlockEvaluator(plain, ks).MaxLoadsBatch(tms, want); err != nil {
		t.Fatalf("plain MaxLoadsBatch: %v", err)
	}
	prefetched0 := obsCounter(t, "core.segments_prefetched")
	if err := NewBlockEvaluator(pref, ks).MaxLoadsBatch(tms, got); err != nil {
		t.Fatalf("prefetch MaxLoadsBatch: %v", err)
	}
	for s := range want {
		for j := range ks {
			if got[s][j] != want[s][j] {
				t.Fatalf("matrix %d K=%d: prefetch %v != plain %v", s, ks[j], got[s][j], want[s][j])
			}
		}
	}
	if obsCounter(t, "core.segments_prefetched") == prefetched0 {
		t.Fatalf("prefetch workers served no segments")
	}
}

// TestBlockPrefetchSteadyStateAllocs pins the CI allocation contract:
// with every segment resident (the steady state), enabling prefetch
// adds zero allocations per AccumulateSegments call over the plain
// walk — admission's warm-pool early return is allocation-free.
func TestBlockPrefetchSteadyStateAllocs(t *testing.T) {
	topo := blockFlowTopo(t)
	n := topo.NumProcessors()
	tms := []*traffic.Matrix{
		traffic.FromPermutation(traffic.RandomPermutation(n, stats.Stream(17, 0))),
	}
	ks := []int{1, 4}
	r := core.NewRouting(topo, core.Disjoint{}, 4, 0)
	run := func(prefetch int) float64 {
		b := core.NewBlockCompiledRouting(r, core.BlockOptions{SegmentBytes: 64 << 10, Prefetch: prefetch})
		defer b.Close()
		e := NewBlockEvaluator(b, ks)
		// Warm: pool every segment and size the evaluator's rows.
		if err := e.AccumulateSegments(tms, 0, b.NumSegments()); err != nil {
			t.Fatalf("warm-up: %v", err)
		}
		return testing.AllocsPerRun(10, func() {
			if err := e.AccumulateSegments(tms, 0, b.NumSegments()); err != nil {
				t.Fatalf("AccumulateSegments: %v", err)
			}
		})
	}
	base := run(0)
	with := run(4)
	if with > base {
		t.Fatalf("prefetch adds steady-state allocations: %v/run with vs %v/run without", with, base)
	}
}

// TestExperimentBlockMatchesNever pins runBlock end to end: the block
// experiment reproduces the lazy experiment's sampling result exactly
// (same sample count, same mean bits) on deterministic and randomized
// schemes.
func TestExperimentBlockMatchesNever(t *testing.T) {
	topo := blockFlowTopo(t)
	for _, sel := range []core.Selector{core.Disjoint{}, core.RandomK{}} {
		base := Experiment{
			Topo:     topo,
			Sel:      sel,
			K:        4,
			PermSeed: 99,
			Sampling: stats.AdaptiveConfig{InitialSamples: 20, MaxSamples: 40, RelPrecision: 0.05},
		}
		never := base
		never.Compile = CompileNever
		block := base
		block.Compile = CompileBlock
		block.Block = BlockPolicy{SegmentBytes: 64 << 10}

		rn := never.Run()
		rb := block.Run()
		if rn.Acc.N() != rb.Acc.N() {
			t.Fatalf("%s: sample counts differ: never %d, block %d", sel.Name(), rn.Acc.N(), rb.Acc.N())
		}
		if rn.Acc.Mean() != rb.Acc.Mean() || rn.HalfWidth != rb.HalfWidth {
			t.Fatalf("%s: block result (%v ± %v) != lazy (%v ± %v)",
				sel.Name(), rb.Acc.Mean(), rb.HalfWidth, rn.Acc.Mean(), rn.HalfWidth)
		}
	}
}

// TestExperimentBlockUsesCache checks a warm-cache block run maps
// segments back instead of recompiling them.
func TestExperimentBlockUsesCache(t *testing.T) {
	topo := blockFlowTopo(t)
	cache, err := core.OpenSegmentCache(t.TempDir())
	if err != nil {
		t.Fatalf("OpenSegmentCache: %v", err)
	}
	x := Experiment{
		Topo:     topo,
		Sel:      core.Disjoint{},
		K:        4,
		PermSeed: 5,
		Sampling: stats.AdaptiveConfig{InitialSamples: 4, MaxSamples: 4, RelPrecision: 0.5},
		Compile:  CompileBlock,
		Block:    BlockPolicy{SegmentBytes: 64 << 10, Cache: cache},
	}
	cold := x.Run()
	hitsBefore := obsCounter(t, "core.segments_cache_hit")
	warm := x.Run()
	if warm.Acc.Mean() != cold.Acc.Mean() {
		t.Fatalf("warm run mean %v != cold %v", warm.Acc.Mean(), cold.Acc.Mean())
	}
	if obsCounter(t, "core.segments_cache_hit") == hitsBefore {
		t.Fatalf("warm block run hit the cache zero times")
	}
}

// TestCompiledFallbacksAreCounted pins the Auto-mode observability
// satellite: both silent compiled→lazy decisions (budget refusal,
// amortization refusal) now increment dedicated counters.
func TestCompiledFallbacksAreCounted(t *testing.T) {
	topo := blockFlowTopo(t)
	r := core.NewRouting(topo, core.Disjoint{}, 4, 0)

	budgetBefore := met.compileFallbackBudget.Value()
	x := Experiment{Topo: topo, Sel: core.Disjoint{}, K: 4, CompileBudget: 1}
	if c := x.compiled(r); c != nil {
		t.Fatalf("1-byte budget compiled a table")
	}
	if met.compileFallbackBudget.Value() != budgetBefore+1 {
		t.Fatalf("budget fallback not counted")
	}

	amortBefore := met.compileFallbackAmortize.Value()
	x = Experiment{Topo: topo, Sel: core.Disjoint{}, K: 4, Sampling: stats.AdaptiveConfig{MaxSamples: 8}}
	if c := x.compiled(r); c != nil {
		t.Fatalf("amortization cap compiled a table (%d nodes > %d samples)", topo.NumProcessors(), 8)
	}
	if met.compileFallbackAmortize.Value() != amortBefore+1 {
		t.Fatalf("amortization fallback not counted")
	}
}

func obsCounter(t *testing.T, name string) int64 {
	t.Helper()
	return obs.Default().Counter(name).Value()
}
