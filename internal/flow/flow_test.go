package flow

import (
	"math"
	"testing"
	"testing/quick"

	"xgftsim/internal/core"
	"xgftsim/internal/stats"
	"xgftsim/internal/topology"
	"xgftsim/internal/traffic"
)

func fig3Topo(t *testing.T) *topology.Topology {
	t.Helper()
	tp, err := topology.FromPaper(topology.PaperFigure3Tree)
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

// TestLoadsConservation: for any routing, the total load summed over
// the up links of each tier-crossing cut must equal the total traffic
// whose path crosses that cut (and same for down links).
func TestLoadsConservation(t *testing.T) {
	tp := fig3Topo(t)
	rng := stats.Stream(3, 0)
	tm := traffic.FromPermutation(traffic.RandomPermutation(tp.NumProcessors(), rng))
	for _, sel := range []core.Selector{core.DModK{}, core.Shift1{}, core.Disjoint{}, core.RandomK{}, core.UMulti{}} {
		r := core.NewRouting(tp, sel, 3, 42)
		ev := NewEvaluator(r)
		loads := ev.Loads(tm)
		if len(loads) != tp.NumLinks() {
			t.Fatalf("loads length %d", len(loads))
		}
		// Traffic crossing tier l (upward) = flows whose NCA level > l.
		upWant := make([]float64, tp.H())
		for _, f := range tm.Flows() {
			k := tp.NCALevel(f.Src, f.Dst)
			for l := 0; l < k; l++ {
				upWant[l] += f.Amount
			}
		}
		upGot := make([]float64, tp.H())
		downGot := make([]float64, tp.H())
		for link, load := range loads {
			id := topology.LinkID(link)
			if tp.LinkIsUp(id) {
				upGot[tp.LinkTier(id)] += load
			} else {
				downGot[tp.LinkTier(id)] += load
			}
		}
		for l := 0; l < tp.H(); l++ {
			if math.Abs(upGot[l]-upWant[l]) > 1e-9 || math.Abs(downGot[l]-upWant[l]) > 1e-9 {
				t.Fatalf("%s tier %d: up=%g down=%g want %g", r, l, upGot[l], downGot[l], upWant[l])
			}
		}
	}
}

// TestTheorem1UMultiOptimal: PERF(UMULTI, TM) == 1 for every traffic
// matrix — checked on random permutations, uniform, hotspot and random
// sparse demands across several topologies.
func TestTheorem1UMultiOptimal(t *testing.T) {
	trees := []*topology.Topology{
		fig3Topo(t),
		topology.MustNew(2, []int{4, 8}, []int{1, 4}),
		topology.MustNew(3, []int{2, 3, 2}, []int{2, 2, 3}),
		topology.MustNew(2, []int{3, 5}, []int{2, 3}),
	}
	for _, tp := range trees {
		n := tp.NumProcessors()
		r := core.NewRouting(tp, core.UMulti{}, 0, 0)
		var tms []*traffic.Matrix
		for s := int64(0); s < 5; s++ {
			rng := stats.Stream(s, 77)
			tms = append(tms, traffic.FromPermutation(traffic.RandomPermutation(n, rng)))
		}
		tms = append(tms, traffic.Uniform(n), traffic.Hotspot(n, n/2, 0))
		// Random sparse demand with varied amounts.
		rng := stats.Stream(9, 9)
		sparse := traffic.NewMatrix(n)
		for i := 0; i < 3*n; i++ {
			s, d := rng.Intn(n), rng.Intn(n)
			if s != d {
				sparse.Add(s, d, rng.Float64()*10+0.1)
			}
		}
		tms = append(tms, sparse)
		for i, tm := range tms {
			ratio := PerformanceRatio(r, tm)
			if math.Abs(ratio-1) > 1e-9 {
				t.Fatalf("%s tm#%d: PERF(UMULTI)=%g, want 1", tp, i, ratio)
			}
		}
	}
}

// TestTheorem2DModKWorstCase: on a tree satisfying the Theorem 2
// conditions, the adversarial pattern drives PERF(d-mod-k) to at least
// Π w_i while UMULTI stays optimal.
func TestTheorem2DModKWorstCase(t *testing.T) {
	// Theorem 2 realizes ratio min(M·w_1, Πw_i); pick M = Π_{i>1} w_i
	// so the full Πw_i is achieved: XGFT(2;8,64;1,8) with M=8, W=8.
	tp := topology.MustNew(2, []int{8, 64}, []int{1, 8})
	tm, err := traffic.AdversarialDModK(tp)
	if err != nil {
		t.Fatal(err)
	}
	wProd := float64(tp.WProd(tp.H()))
	ratio := PerformanceRatio(core.NewRouting(tp, core.DModK{}, 1, 0), tm)
	if ratio < wProd-1e-9 {
		t.Fatalf("PERF(d-mod-k)=%g, want >= Πw=%g", ratio, wProd)
	}
	// All adversarial traffic concentrates on a single link: MLOAD
	// equals the subtree population.
	ev := NewEvaluator(core.NewRouting(tp, core.DModK{}, 1, 0))
	if ml := ev.MaxLoad(tm); ml != float64(tp.ProcessorsPerSubtree(tp.H()-1)) {
		t.Fatalf("MLOAD(d-mod-k)=%g, want %d", ml, tp.ProcessorsPerSubtree(tp.H()-1))
	}
	if umr := PerformanceRatio(core.NewRouting(tp, core.UMulti{}, 0, 0), tm); math.Abs(umr-1) > 1e-9 {
		t.Fatalf("PERF(UMULTI)=%g on adversarial TM", umr)
	}
	// Limited multi-path interpolates: K paths cut the worst load by
	// about a factor K for the disjoint heuristic.
	base := ev.MaxLoad(tm)
	for _, k := range []int{2, 4, 8} {
		ml := NewEvaluator(core.NewRouting(tp, core.Disjoint{}, k, 0)).MaxLoad(tm)
		if want := base / float64(k); math.Abs(ml-want) > 1e-9 {
			t.Fatalf("disjoint(K=%d) MLOAD=%g want %g", k, ml, want)
		}
	}
}

// TestOptimalLoadLowerBoundsEveryRouting: property check of Lemma 1 —
// no routing can beat OLOAD.
func TestOptimalLoadLowerBoundsEveryRouting(t *testing.T) {
	tp := topology.MustNew(3, []int{2, 2, 2}, []int{1, 2, 2})
	n := tp.NumProcessors()
	sels := []core.Selector{core.DModK{}, core.SModK{}, core.RandomSingle{}, core.Shift1{}, core.Disjoint{}, core.RandomK{}, core.UMulti{}}
	f := func(seed int64, kk uint8) bool {
		rng := stats.Stream(seed, 1)
		tm := traffic.FromPermutation(traffic.RandomPermutation(n, rng))
		if tm.NumFlows() == 0 {
			return true
		}
		opt := OptimalLoad(tp, tm)
		for _, sel := range sels {
			ml := NewEvaluator(core.NewRouting(tp, sel, int(kk)%5+1, seed)).MaxLoad(tm)
			if ml < opt-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestMonotonicImprovementWithK: on average over permutations, the
// deterministic heuristics must not get worse as K grows (allowing a
// small sampling tolerance).
func TestMonotonicImprovementWithK(t *testing.T) {
	tp := topology.MustNew(3, []int{4, 4, 8}, []int{1, 4, 4})
	n := tp.NumProcessors()
	const samples = 30
	for _, sel := range []core.Selector{core.Shift1{}, core.Disjoint{}} {
		prev := math.Inf(1)
		for _, k := range []int{1, 2, 4, 8, 16} {
			ev := NewEvaluator(core.NewRouting(tp, sel, k, 0))
			var acc stats.Accumulator
			for i := 0; i < samples; i++ {
				rng := stats.Stream(55, int64(i))
				tm := traffic.FromPermutation(traffic.RandomPermutation(n, rng))
				acc.Add(ev.MaxLoad(tm))
			}
			if acc.Mean() > prev*1.05 {
				t.Fatalf("%s: K=%d mean %.3f worse than previous %.3f", sel.Name(), k, acc.Mean(), prev)
			}
			prev = acc.Mean()
		}
		// At K = max paths the heuristic must be optimal on every
		// sampled permutation.
		evAll := NewEvaluator(core.NewRouting(tp, sel, tp.MaxPaths(), 0))
		for i := 0; i < 10; i++ {
			rng := stats.Stream(56, int64(i))
			tm := traffic.FromPermutation(traffic.RandomPermutation(n, rng))
			if tm.NumFlows() == 0 {
				continue
			}
			if ml, opt := evAll.MaxLoad(tm), OptimalLoad(tp, tm); math.Abs(ml-opt) > 1e-9 {
				t.Fatalf("%s at K=max: MLOAD=%g OLOAD=%g", sel.Name(), ml, opt)
			}
		}
	}
}

// TestDisjointBeatsShiftOnThreeLevel: the paper's headline flow-level
// finding, as an average over permutations at small K.
func TestDisjointBeatsShiftOnThreeLevel(t *testing.T) {
	tp := topology.MustNew(3, []int{4, 4, 8}, []int{1, 4, 4})
	n := tp.NumProcessors()
	const samples = 40
	mean := func(sel core.Selector, k int) float64 {
		ev := NewEvaluator(core.NewRouting(tp, sel, k, 0))
		var acc stats.Accumulator
		for i := 0; i < samples; i++ {
			rng := stats.Stream(7, int64(i))
			tm := traffic.FromPermutation(traffic.RandomPermutation(n, rng))
			acc.Add(ev.MaxLoad(tm))
		}
		return acc.Mean()
	}
	for _, k := range []int{2, 4} {
		dj, sh := mean(core.Disjoint{}, k), mean(core.Shift1{}, k)
		if dj >= sh {
			t.Fatalf("K=%d: disjoint %.3f not better than shift-1 %.3f", k, dj, sh)
		}
	}
}

func TestTierLoads(t *testing.T) {
	tp := fig3Topo(t)
	r := core.NewRouting(tp, core.DModK{}, 1, 0)
	ev := NewEvaluator(r)
	tm := traffic.NewMatrix(tp.NumProcessors())
	tm.Add(0, 63, 1)
	_ = ev.Loads(tm)
	tiers := ev.TierLoads()
	if len(tiers) != tp.H() {
		t.Fatalf("tiers=%d", len(tiers))
	}
	for l := 0; l < tp.H(); l++ {
		if tiers[l][0] != 1 || tiers[l][1] != 1 {
			t.Fatalf("tier %d loads %v, want 1/1 for a single unit flow", l, tiers[l])
		}
	}
}

func TestEvaluatorPanicsOnMismatchedMatrix(t *testing.T) {
	tp := fig3Topo(t)
	ev := NewEvaluator(core.NewRouting(tp, core.DModK{}, 1, 0))
	bad := traffic.NewMatrix(10)
	for _, f := range []func(){
		func() { ev.Loads(bad) },
		func() { OptimalLoad(tp, bad) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestPerformanceRatioEmptyMatrix(t *testing.T) {
	tp := fig3Topo(t)
	r := core.NewRouting(tp, core.DModK{}, 1, 0)
	if got := PerformanceRatio(r, traffic.NewMatrix(tp.NumProcessors())); got != 1 {
		t.Fatalf("empty TM ratio=%g", got)
	}
}

// TestExperimentRun exercises the full adaptive permutation experiment
// end to end on a small tree and sanity-checks the paper's ordering at
// K=2: disjoint <= random <= shift-1 (with slack), all below d-mod-k.
func TestExperimentRun(t *testing.T) {
	tp := topology.MustNew(3, []int{2, 2, 4}, []int{1, 2, 2})
	cfg := stats.AdaptiveConfig{InitialSamples: 60, MaxSamples: 240, RelPrecision: 0.02}
	run := func(sel core.Selector, k int) float64 {
		res := Experiment{Topo: tp, Sel: sel, K: k, PermSeed: 11, Sampling: cfg}.Run()
		if res.Acc.N() < 60 {
			t.Fatalf("too few samples: %d", res.Acc.N())
		}
		return res.Acc.Mean()
	}
	dmodk := run(core.DModK{}, 1)
	disjoint := run(core.Disjoint{}, 2)
	shift := run(core.Shift1{}, 2)
	random := run(core.RandomK{}, 2)
	if !(disjoint < dmodk && shift < dmodk && random < dmodk) {
		t.Fatalf("multi-path not better than single path: dmodk=%.3f dj=%.3f sh=%.3f rnd=%.3f",
			dmodk, disjoint, shift, random)
	}
	if disjoint > shift+0.05 {
		t.Fatalf("disjoint (%.3f) unexpectedly worse than shift-1 (%.3f)", disjoint, shift)
	}
	// Determinism: same configuration, same result.
	again := Experiment{Topo: tp, Sel: core.Disjoint{}, K: 2, PermSeed: 11, Sampling: cfg}.Run()
	if math.Abs(again.Acc.Mean()-disjoint) > 1e-12 {
		t.Fatal("experiment not reproducible")
	}
}

func TestExperimentDefaultSeeds(t *testing.T) {
	tp := topology.MustNew(2, []int{2, 4}, []int{1, 2})
	cfg := stats.AdaptiveConfig{InitialSamples: 20, MaxSamples: 20, RelPrecision: 0.5}
	// Randomized scheme gets five seeds by default; just ensure it runs
	// deterministically and produces a sane value.
	a := Experiment{Topo: tp, Sel: core.RandomK{}, K: 2, PermSeed: 3, Sampling: cfg}.Run()
	b := Experiment{Topo: tp, Sel: core.RandomK{}, K: 2, PermSeed: 3, Sampling: cfg}.Run()
	if a.Acc.Mean() != b.Acc.Mean() {
		t.Fatal("randomized experiment not seed-stable")
	}
	if a.Acc.Mean() <= 0 {
		t.Fatal("degenerate mean")
	}
}
