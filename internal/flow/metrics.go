package flow

import "xgftsim/internal/obs"

// Shared flow-evaluation metrics: how many SD pairs the evaluators
// walked (one atomic add per Loads call, never per pair) and which
// repair strategy each failure-sweep fault placement chose.
var met = struct {
	loadsCalls     *obs.Counter
	pairsEvaluated *obs.Counter
	repairPatched  *obs.Counter
	repairLazy     *obs.Counter
	// Multi-K evaluation: walks of one permutation serving a whole K
	// grid, and how many K columns those walks served in total (the
	// per-cell equivalent would have been one loads_calls each).
	multikWalks   *obs.Counter
	multikColumns *obs.Counter
}{
	loadsCalls:     obs.Default().Counter("flow.loads_calls"),
	pairsEvaluated: obs.Default().Counter("flow.pairs_evaluated"),
	repairPatched:  obs.Default().Counter("flow.repair_patched"),
	repairLazy:     obs.Default().Counter("flow.repair_lazy"),
	multikWalks:    obs.Default().Counter("flow.multik_walks"),
	multikColumns:  obs.Default().Counter("flow.multik_columns"),
}
