package flow

import "xgftsim/internal/obs"

// Shared flow-evaluation metrics: how many SD pairs the evaluators
// walked (one atomic add per Loads call, never per pair) and which
// repair strategy each failure-sweep fault placement chose.
var met = struct {
	loadsCalls     *obs.Counter
	pairsEvaluated *obs.Counter
	repairPatched  *obs.Counter
	repairLazy     *obs.Counter
	// Multi-K evaluation: walks of one permutation serving a whole K
	// grid, and how many K columns those walks served in total (the
	// per-cell equivalent would have been one loads_calls each).
	multikWalks   *obs.Counter
	multikColumns *obs.Counter
	// Block-compiled evaluation: segment-ordered walks over an
	// out-of-core table and the segments those walks actually fetched
	// (skipped segments are never compiled). The fallback counters make
	// Auto mode's silent compiled→lazy decisions visible in manifests:
	// budget means CompileRouting refused the table size, amortized
	// means the fabric exceeds the sample cap so compilation would not
	// pay for itself.
	blockWalks              *obs.Counter
	blockSegments           *obs.Counter
	compileFallbackBudget   *obs.Counter
	compileFallbackAmortize *obs.Counter
}{
	loadsCalls:     obs.Default().Counter("flow.loads_calls"),
	pairsEvaluated: obs.Default().Counter("flow.pairs_evaluated"),
	repairPatched:  obs.Default().Counter("flow.repair_patched"),
	repairLazy:     obs.Default().Counter("flow.repair_lazy"),
	multikWalks:             obs.Default().Counter("flow.multik_walks"),
	multikColumns:           obs.Default().Counter("flow.multik_columns"),
	blockWalks:              obs.Default().Counter("flow.block_walks"),
	blockSegments:           obs.Default().Counter("flow.block_segments_walked"),
	compileFallbackBudget:   obs.Default().Counter("flow.compile_fallback_budget"),
	compileFallbackAmortize: obs.Default().Counter("flow.compile_fallback_amortized"),
}
