package flow

import (
	"fmt"
	"sort"

	"xgftsim/internal/core"
	"xgftsim/internal/topology"
	"xgftsim/internal/traffic"
)

// BlockEvaluator evaluates traffic matrices against a block-compiled
// routing by walking them in segment order: flows are visited sorted
// by source, each needed segment is fetched once (compiled, mapped
// from the cache, or popped from the resident pool), used for every
// matrix of the batch and every K column of the grid, then released.
// Peak table memory is one segment, not N² rows — the evaluator for
// the regime where core.CompileRouting cannot fit its budget.
//
// Per flow and per K column it performs exactly the per-K lazy
// Evaluator's adds — share = amount/min(K, numPaths) over the pair's
// first min(K, numPaths) path-link segments, in matrix order for
// source-sorted matrices (traffic.FromPermutation emits those) — so
// the resulting loads and maxima are bit-identical to lazy
// evaluation. That per-K directness is deliberate: MultiKEvaluator's
// count-folding is faster per walk but associates the additions
// differently, and block mode's contract is exact interchangeability
// with the evaluator it replaces out-of-budget.
//
// Not safe for concurrent use; create one per goroutine. Shards of a
// sweep each hold their own evaluator over a shared
// BlockCompiledRouting and accumulate disjoint segment ranges (see
// AccumulateSegments), merged by the caller.
type BlockEvaluator struct {
	b     *core.BlockCompiledRouting
	topo  *topology.Topology
	class selClass
	ks    []int

	numLinks int
	batch    int           // matrices covered by the current rows
	rows     [][]float64   // batch·len(ks) load rows
	touched  [][]int32     // per-row touched-link lists
	orders   [][]int       // per-matrix flow order by source (nil: matrix order)
	cursors  []int
	walked   int64
}

// NewBlockEvaluator creates a block evaluator over the ascending,
// strictly increasing K grid ks (every K >= 1; a single-K evaluation
// is a grid of length one). The table's routing must be prefix-nested
// and, for limited schemes, compiled with a path limit of at least the
// grid's largest K — the same contract as NewCompiledMultiKEvaluator.
func NewBlockEvaluator(b *core.BlockCompiledRouting, ks []int) *BlockEvaluator {
	if len(ks) == 0 {
		panic("flow: BlockEvaluator requires a non-empty K grid")
	}
	for i, k := range ks {
		if k < 1 || (i > 0 && k <= ks[i-1]) {
			panic(fmt.Sprintf("flow: BlockEvaluator K grid must be ascending and >= 1, got %v", ks))
		}
	}
	r := b.Routing()
	sel := r.Selector()
	if !core.PrefixNested(sel) {
		panic(fmt.Sprintf("flow: selector %s does not guarantee prefix nesting; BlockEvaluator requires it", sel.Name()))
	}
	if rk := r.K(); rk > 0 && rk < ks[len(ks)-1] && classify(sel) == classLimited {
		panic(fmt.Sprintf("flow: block table built at K=%d cannot serve grid up to K=%d", rk, ks[len(ks)-1]))
	}
	return &BlockEvaluator{
		b:        b,
		topo:     b.Topology(),
		class:    classify(sel),
		ks:       append([]int(nil), ks...),
		numLinks: b.Topology().NumLinks(),
	}
}

// Ks returns the evaluator's K grid.
func (e *BlockEvaluator) Ks() []int { return e.ks }

// Table returns the block-compiled routing the evaluator walks.
func (e *BlockEvaluator) Table() *core.BlockCompiledRouting { return e.b }

// MaxLoadsBatch computes MLOAD at every K of the grid for every matrix
// of the batch in one segment-ordered walk, writing out[s][j] for
// matrix s and grid column j. Each needed segment is fetched exactly
// once per call regardless of batch and grid size; segments no matrix
// touches are never fetched (and so never compiled).
func (e *BlockEvaluator) MaxLoadsBatch(tms []*traffic.Matrix, out [][]float64) error {
	if err := e.AccumulateSegments(tms, 0, e.b.NumSegments()); err != nil {
		return err
	}
	e.FinishMax(out)
	return nil
}

// AccumulateSegments walks only segments [g0, g1) of the batch's
// flows, accumulating into the evaluator's own load rows; flows routed
// by other segments are left to other shards. Call FinishMax (single
// shard) or merge the rows across shards (Row/RowTouched) afterwards.
func (e *BlockEvaluator) AccumulateSegments(tms []*traffic.Matrix, g0, g1 int) error {
	for _, tm := range tms {
		if tm.N != e.topo.NumProcessors() {
			panic(fmt.Sprintf("flow: traffic matrix over %d nodes, topology has %d", tm.N, e.topo.NumProcessors()))
		}
	}
	if g0 < 0 || g1 > e.b.NumSegments() || g0 > g1 {
		panic(fmt.Sprintf("flow: segment range [%d,%d) out of [0,%d)", g0, g1, e.b.NumSegments()))
	}
	met.blockWalks.Inc()
	met.pairsEvaluated.Add(countFlows(tms))
	e.reset(tms, g0)
	depth := e.b.PrefetchDepth()
	for g := g0; g < g1; g++ {
		if e.allDone(tms) {
			break
		}
		lo, hi := e.b.SegmentSpan(g)
		if !e.anyFlowIn(tms, hi) {
			continue
		}
		// Prime the compile pipeline before blocking on this segment:
		// upcoming segments materialize on the worker pool while this one
		// is accumulated. Issuance stops at the first segment no remaining
		// flow can reach (cursors only advance, so later walk iterations
		// re-issue as the frontier moves). Prefetch never blocks and its
		// admission is budget-bounded, so over-issuing is safe.
		for n := g + 1; n <= g+depth && n < g1; n++ {
			_, nhi := e.b.SegmentSpan(n)
			if !e.anyFlowIn(tms, nhi) {
				break
			}
			e.b.Prefetch(n)
		}
		seg, err := e.b.Segment(g)
		if err != nil {
			return err
		}
		e.walked++
		for s, tm := range tms {
			e.evalSpan(s, tm, seg, lo, hi)
		}
		e.b.Release(seg)
	}
	met.blockSegments.Add(e.walked)
	e.walked = 0
	return nil
}

// FinishMax writes out[s][j] = max over links of the accumulated row
// (s, j). Loads only grow during accumulation, so the final scan over
// the touched links equals the lazy evaluator's inline running max
// bit-for-bit.
func (e *BlockEvaluator) FinishMax(out [][]float64) {
	nK := len(e.ks)
	for s := 0; s < e.batch; s++ {
		for j := 0; j < nK; j++ {
			ri := s*nK + j
			row := e.rows[ri]
			mx := 0.0
			for _, l := range e.touched[ri] {
				if v := row[l]; v > mx {
					mx = v
				}
			}
			out[s][j] = mx
		}
	}
}

// Row returns the accumulated load row of (matrix s, grid column j);
// valid until the next AccumulateSegments call. Only entries listed by
// RowTouched are meaningful (the rest are stale zeros).
func (e *BlockEvaluator) Row(s, j int) []float64 { return e.rows[s*len(e.ks)+j] }

// RowTouched lists the links Row(s, j) loaded, for sparse merging
// across shards.
func (e *BlockEvaluator) RowTouched(s, j int) []int32 { return e.touched[s*len(e.ks)+j] }

// reset sizes and clears the batch rows (touched-list clearing — dense
// mega-fabric link vectors make a full zeroing per call the dominant
// cost for sparse batches) and positions each matrix's cursor at its
// first flow inside segment g0's span.
func (e *BlockEvaluator) reset(tms []*traffic.Matrix, g0 int) {
	need := len(tms) * len(e.ks)
	for i := 0; i < len(e.rows) && i < need; i++ {
		row := e.rows[i]
		for _, l := range e.touched[i] {
			row[l] = 0
		}
		e.touched[i] = e.touched[i][:0]
	}
	for len(e.rows) < need {
		e.rows = append(e.rows, make([]float64, e.numLinks))
		e.touched = append(e.touched, nil)
	}
	e.batch = len(tms)

	if cap(e.orders) < len(tms) {
		e.orders = make([][]int, len(tms))
		e.cursors = make([]int, len(tms))
	}
	e.orders = e.orders[:len(tms)]
	e.cursors = e.cursors[:len(tms)]
	lo, _ := e.b.SegmentSpan(g0)
	for s, tm := range tms {
		e.orders[s] = flowOrder(tm, e.orders[s])
		e.cursors[s] = lowerBound(tm.Flows(), e.orders[s], lo)
	}
}

// flowOrder returns the matrix's flow indices sorted (stably) by
// source, or nil when the flows are already source-sorted — the
// permutation generators emit them that way, and the nil fast path
// also guarantees the walk visits flows in matrix order, the property
// the bit-identity contract leans on.
func flowOrder(tm *traffic.Matrix, buf []int) []int {
	flows := tm.Flows()
	sorted := true
	for i := 1; i < len(flows); i++ {
		if flows[i].Src < flows[i-1].Src {
			sorted = false
			break
		}
	}
	if sorted {
		return nil
	}
	if cap(buf) < len(flows) {
		buf = make([]int, len(flows))
	}
	buf = buf[:len(flows)]
	for i := range buf {
		buf[i] = i
	}
	sort.SliceStable(buf, func(a, c int) bool { return flows[buf[a]].Src < flows[buf[c]].Src })
	return buf
}

// lowerBound finds the first position (in walk order) whose flow
// source is >= lo.
func lowerBound(flows []traffic.Flow, order []int, lo int) int {
	srcAt := func(i int) int {
		if order != nil {
			return flows[order[i]].Src
		}
		return flows[i].Src
	}
	return sort.Search(len(flows), func(i int) bool { return srcAt(i) >= lo })
}

// allDone reports whether every matrix's cursor is exhausted, ending
// the segment walk early instead of skip-checking the remaining tail
// (a sweep's last populated segment can be thousands of segments
// before g1 when a shard's flows are front-loaded).
func (e *BlockEvaluator) allDone(tms []*traffic.Matrix) bool {
	for s, tm := range tms {
		if e.cursors[s] < len(tm.Flows()) {
			return false
		}
	}
	return true
}

// anyFlowIn reports whether any matrix's cursor points at a flow below
// hi — i.e. whether the next segment is needed at all. Cursors only
// ever advance, so skipped segments cost one comparison per matrix.
func (e *BlockEvaluator) anyFlowIn(tms []*traffic.Matrix, hi int) bool {
	for s, tm := range tms {
		flows := tm.Flows()
		c := e.cursors[s]
		if c >= len(flows) {
			continue
		}
		src := flows[c].Src
		if e.orders[s] != nil {
			src = flows[e.orders[s][c]].Src
		}
		if src < hi {
			return true
		}
	}
	return false
}

// evalSpan advances matrix s through every flow with source in
// [lo, hi), adding each flow's per-K shares from the segment's rows.
func (e *BlockEvaluator) evalSpan(s int, tm *traffic.Matrix, seg *core.RoutingSegment, lo, hi int) {
	flows := tm.Flows()
	order := e.orders[s]
	c := e.cursors[s]
	nK := len(e.ks)
	for c < len(flows) {
		f := flows[c]
		if order != nil {
			f = flows[order[c]]
		}
		if f.Src >= hi {
			break
		}
		c++
		links, np, stride := seg.PairPathLinks(f.Src, f.Dst)
		if np == 0 {
			continue
		}
		for j, k := range e.ks {
			// The scheme's effective path count at limit k: min(k, np)
			// for limited schemes (prefix nesting makes the first
			// min(k, np) segments exactly the K=k path set), all np for
			// UMULTI, and np == 1 already for single-path schemes.
			b := np
			if e.class == classLimited && k < np {
				b = k
			}
			share := f.Amount / float64(b)
			ri := s*nK + j
			row := e.rows[ri]
			tch := e.touched[ri]
			for _, l := range links[:b*stride] {
				v := row[l]
				if v == 0 {
					tch = append(tch, l)
				}
				row[l] = v + share
			}
			e.touched[ri] = tch
		}
	}
	e.cursors[s] = c
}

func countFlows(tms []*traffic.Matrix) int64 {
	var n int64
	for _, tm := range tms {
		n += int64(tm.NumFlows())
	}
	return n
}
