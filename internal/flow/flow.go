// Package flow implements the paper's flow-level evaluation: given a
// routing and a traffic matrix it computes per-link loads, the maximum
// link load MLOAD(r, TM), the optimal load OLOAD(TM) (exactly, via the
// subtree-cut bound ML(TM) that Lemma 1 and Theorem 1 pin down), and
// performance ratios. It also provides the paper's permutation
// experiment: the average maximum link load over random permutations
// with adaptive 99%-confidence sampling.
package flow

import (
	"fmt"
	"math"
	"sync"

	"xgftsim/internal/core"
	"xgftsim/internal/stats"
	"xgftsim/internal/topology"
	"xgftsim/internal/traffic"
)

// pathSource is the common lazy surface of core.Routing and
// core.RepairedRouting: everything the evaluator needs to expand one
// pair's path set with caller-owned scratch.
type pathSource interface {
	Topology() *topology.Topology
	AppendPathsScratch(ps *core.PathScratch, buf []int, src, dst int) []int
}

// Evaluator computes link loads for one routing (healthy or repaired),
// reusing internal scratch buffers across calls. It is not safe for
// concurrent use; create one per goroutine (see Experiment).
type Evaluator struct {
	src     pathSource
	r       *core.Routing // nil when evaluating a repaired routing
	topo    *topology.Topology
	loads   []float64
	touched []int32 // links loaded by the most recent Loads call
	dense   bool    // bulk-clear mode: tm touches too many links to track
	lastMax float64 // max load of the most recent Loads call
	pathBuf []int
	linkBuf []topology.LinkID
	ps      *core.PathScratch
	opt     optScratch
}

// NewEvaluator creates an evaluator for routing r.
func NewEvaluator(r *core.Routing) *Evaluator {
	e := newEvaluator(r)
	e.r = r
	return e
}

// NewDegradedEvaluator creates an evaluator for a repaired routing on
// a degraded fabric. Traffic of disconnected pairs (empty repaired
// path sets) contributes no load; Loads silently skips it, matching
// the repair contract of reporting rather than routing such pairs.
func NewDegradedEvaluator(rr *core.RepairedRouting) *Evaluator {
	return newEvaluator(rr)
}

func newEvaluator(src pathSource) *Evaluator {
	t := src.Topology()
	return &Evaluator{
		src:   src,
		topo:  t,
		loads: make([]float64, t.NumLinks()),
		ps:    core.NewPathScratch(),
	}
}

// Routing returns the routing under evaluation, or nil for a degraded
// evaluator (whose source is a core.RepairedRouting).
func (e *Evaluator) Routing() *core.Routing { return e.r }

// Loads computes the load of every directed link under tm: the paper's
// Σ tm_{i,j}·f^k_{i,j} over paths crossing the link. The returned slice
// is owned by the evaluator and valid until the next call.
//
// Only the links the previous call loaded are re-zeroed (sparse
// matrices touch a small fraction of a large fabric's links) and the
// maximum is folded into accumulation, so neither a full O(numLinks)
// clear nor a rescan runs per sample. Flow amounts are strictly
// positive (traffic.Matrix enforces this), so a zero entry means
// "untouched this call" and the touched list needs no dedup structure.
// When a call touches a large fraction of the fabric the per-add
// bookkeeping costs more than it saves; the evaluator then switches
// permanently to bulk clearing with branch-free adds and a single
// max scan (identical values, identical add order).
func (e *Evaluator) Loads(tm *traffic.Matrix) []float64 {
	if tm.N != e.topo.NumProcessors() {
		panic(fmt.Sprintf("flow: traffic matrix over %d nodes, topology has %d", tm.N, e.topo.NumProcessors()))
	}
	met.loadsCalls.Inc()
	met.pairsEvaluated.Add(int64(len(tm.Flows())))
	max := 0.0
	if e.dense {
		for i := range e.loads {
			e.loads[i] = 0
		}
		for _, f := range tm.Flows() {
			e.pathBuf = e.src.AppendPathsScratch(e.ps, e.pathBuf[:0], f.Src, f.Dst)
			if len(e.pathBuf) == 0 {
				continue
			}
			share := f.Amount / float64(len(e.pathBuf))
			e.linkBuf = core.AppendPathSetLinks(e.topo, f.Src, f.Dst, e.pathBuf, e.linkBuf[:0])
			for _, link := range e.linkBuf {
				e.loads[link] += share
			}
		}
		for _, v := range e.loads {
			if v > max {
				max = v
			}
		}
		e.lastMax = max
		return e.loads
	}
	for _, l := range e.touched {
		e.loads[l] = 0
	}
	e.touched = e.touched[:0]
	for _, f := range tm.Flows() {
		e.pathBuf = e.src.AppendPathsScratch(e.ps, e.pathBuf[:0], f.Src, f.Dst)
		if len(e.pathBuf) == 0 {
			continue
		}
		share := f.Amount / float64(len(e.pathBuf))
		e.linkBuf = core.AppendPathSetLinks(e.topo, f.Src, f.Dst, e.pathBuf, e.linkBuf[:0])
		for _, link := range e.linkBuf {
			v := e.loads[link]
			if v == 0 {
				e.touched = append(e.touched, int32(link))
			}
			v += share
			e.loads[link] = v
			if v > max {
				max = v
			}
		}
	}
	if len(e.touched)*4 >= len(e.loads) {
		e.dense = true
		e.touched = e.touched[:0]
	}
	e.lastMax = max
	return e.loads
}

// MaxLoad computes MLOAD(r, TM): the largest link load under tm.
func (e *Evaluator) MaxLoad(tm *traffic.Matrix) float64 {
	e.Loads(tm)
	return e.lastMax
}

// TierLoads reports, for each tier (links between levels l and l+1)
// and direction, the maximum link load under the most recent Loads
// call. Index [l][0] is the up direction, [l][1] the down direction.
// Used by the ablation study of where each heuristic leaves contention.
func (e *Evaluator) TierLoads() [][2]float64 {
	return tierLoads(e.topo, e.loads)
}

// tierLoads folds a per-link load vector into per-tier directional
// maxima; shared by the lazy and compiled evaluators.
func tierLoads(t *topology.Topology, loads []float64) [][2]float64 {
	out := make([][2]float64, t.H())
	for link, l := range loads {
		if l == 0 {
			continue
		}
		id := topology.LinkID(link)
		tier := t.LinkTier(id)
		dir := 1
		if t.LinkIsUp(id) {
			dir = 0
		}
		if l > out[tier][dir] {
			out[tier][dir] = l
		}
	}
	return out
}

// OptimalLoad computes OLOAD(TM) reusing evaluator-resident scratch,
// so permutation studies that report PERF ratios allocate nothing per
// sample.
func (e *Evaluator) OptimalLoad(tm *traffic.Matrix) float64 {
	return e.opt.optimalLoad(e.topo, tm)
}

// PerformanceRatio computes PERF(r, TM) = MLOAD/OLOAD with the
// evaluator's scratch buffers.
func (e *Evaluator) PerformanceRatio(tm *traffic.Matrix) float64 {
	opt := e.OptimalLoad(tm)
	if opt == 0 {
		return 1
	}
	return e.MaxLoad(tm) / opt
}

// OptimalLoad computes OLOAD(TM) for a topology: by Lemma 1 every
// routing has maximum link load at least ML(TM), and by Theorem 1
// UMULTI attains it, so the subtree-cut bound is exact on XGFTs:
//
//	ML(TM) = max_{k, st_k} MT(TM, st_k) / TL(k)
//
// where MT is the larger of the traffic entering and leaving subtree
// st_k and TL(k) = Π_{i=1..k+1} w_i is the subtree's up-link count.
func OptimalLoad(t *topology.Topology, tm *traffic.Matrix) float64 {
	var s optScratch
	return s.optimalLoad(t, tm)
}

// optScratch holds the per-subtree in/out traffic accumulators of the
// subtree-cut bound, sized once for the largest level (k = 0, one
// subtree per processing node) and reused across levels and calls.
type optScratch struct {
	in, out []float64
}

func (s *optScratch) optimalLoad(t *topology.Topology, tm *traffic.Matrix) float64 {
	if tm.N != t.NumProcessors() {
		panic(fmt.Sprintf("flow: traffic matrix over %d nodes, topology has %d", tm.N, t.NumProcessors()))
	}
	if n := t.NumProcessors(); cap(s.in) < n {
		s.in = make([]float64, n)
		s.out = make([]float64, n)
	}
	best := 0.0
	// k = 0 (single processing nodes) up to h-1; the height-h "subtree"
	// is the whole network and has no crossing links.
	for k := 0; k < t.H(); k++ {
		nSub := t.MProd(k)
		in := s.in[:nSub]
		out := s.out[:nSub]
		for i := range in {
			in[i], out[i] = 0, 0
		}
		for _, f := range tm.Flows() {
			ss := t.SubtreeOfProcessor(f.Src, k)
			ds := t.SubtreeOfProcessor(f.Dst, k)
			if ss == ds {
				continue
			}
			out[ss] += f.Amount
			in[ds] += f.Amount
		}
		tl := float64(t.TL(k))
		for i := 0; i < nSub; i++ {
			mt := in[i]
			if out[i] > mt {
				mt = out[i]
			}
			if v := mt / tl; v > best {
				best = v
			}
		}
	}
	return best
}

// PerformanceRatio computes PERF(r, TM) = MLOAD(r, TM) / OLOAD(TM).
// A ratio of 1 means the routing is optimal for this demand. Demands
// with zero optimal load (empty matrices) return 1. Loops evaluating
// many demands should hold one Evaluator and call its
// PerformanceRatio method instead, which reuses scratch buffers.
func PerformanceRatio(r *core.Routing, tm *traffic.Matrix) float64 {
	return NewEvaluator(r).PerformanceRatio(tm)
}

// maxLoader is the common surface of the lazy and compiled evaluators.
type maxLoader interface {
	MaxLoad(tm *traffic.Matrix) float64
}

// evalPool amortizes evaluator allocation across concurrent samples.
type evalPool struct {
	pool sync.Pool
}

func newEvalPool(newFn func() maxLoader) *evalPool {
	return &evalPool{pool: sync.Pool{New: func() any { return newFn() }}}
}

func (p *evalPool) maxLoad(tm *traffic.Matrix) float64 {
	e := p.pool.Get().(maxLoader)
	v := e.MaxLoad(tm)
	p.pool.Put(e)
	return v
}

// Experiment is the paper's flow-level permutation study for a single
// (topology, scheme, K) cell: sample random permutations, measure the
// maximum link load of each, and average with the adaptive
// 99%-confidence protocol. For randomized schemes the per-permutation
// value is itself averaged over Seeds (the paper uses five).
type Experiment struct {
	Topo *topology.Topology
	Sel  core.Selector
	K    int
	// Seeds drive randomized selectors; nil defaults to a single zero
	// seed for deterministic schemes and five seeds for randomized
	// ones, matching the paper.
	Seeds []int64
	// PermSeed salts the permutation sample streams.
	PermSeed int64
	// Sampling configures the adaptive protocol; the zero value uses
	// the defaults in stats.AdaptiveConfig.
	Sampling stats.AdaptiveConfig
	// Compile selects whether Run precompiles each seed's routing into
	// a read-only core.CompiledRouting shared by all sampler
	// goroutines. The default CompileAuto compiles when the table fits
	// CompileBudget and the sample cap can amortize the one-shot build;
	// large fabrics whose pair count defeats either bound fall back to
	// the lazy per-sample path derivation transparently.
	Compile CompileMode
	// CompileBudget caps each compiled table's estimated size in
	// bytes; 0 means DefaultCompileBudget.
	CompileBudget int64
	// Block configures CompileBlock mode; ignored otherwise.
	Block BlockPolicy
}

// BlockPolicy configures the out-of-core block-compiled mode: segment
// granularity and residency for the table itself and a separate bound
// on evaluator load-row memory (which scales with batch size, not with
// the table).
type BlockPolicy struct {
	// SegmentBytes is the target compiled size of one source-block
	// segment; 0 means core.DefaultSegmentBytes.
	SegmentBytes int64
	// ResidentBytes caps the segment pool kept hot between walks; 0
	// means the experiment's CompileBudget (block mode's whole point is
	// that the budget bounds resident table memory, not table size).
	ResidentBytes int64
	// Cache, when non-nil, persists compiled segments on disk so later
	// runs map them back instead of recompiling.
	Cache *core.SegmentCache
	// EvalBytes bounds the per-batch evaluator row memory (8 bytes ×
	// links × batch × seeds); 0 means DefaultEvalBytes. Larger batches
	// amortize segment fetches over more samples per walk.
	EvalBytes int64
	// Prefetch enables the async compile pipeline (see
	// core.BlockOptions.Prefetch): when > 0, the evaluator issues
	// prefetches that many segments ahead of its walk so segment
	// materialization overlaps load accumulation. 0 disables it.
	Prefetch int
}

// DefaultEvalBytes bounds block-mode evaluator row memory when
// BlockPolicy.EvalBytes is zero.
const DefaultEvalBytes int64 = 256 << 20

// CompileMode selects Experiment's use of compiled routing tables.
type CompileMode int

const (
	// CompileAuto precompiles when both the memory budget and the
	// amortization heuristic allow it.
	CompileAuto CompileMode = iota
	// CompileNever always uses the lazy evaluator.
	CompileNever
	// CompileAlways precompiles whenever the table fits the budget,
	// regardless of amortization.
	CompileAlways
	// CompileBlock streams the table as block-compiled segments
	// (core.BlockCompiledRouting): samples are evaluated in
	// segment-ordered batches and peak table memory stays near one
	// segment per walker no matter how large the fabric. Never chosen
	// automatically — out-of-core evaluation is an explicit decision.
	CompileBlock
)

// DefaultCompileBudget bounds a compiled table's size when
// Experiment.CompileBudget is zero.
const DefaultCompileBudget int64 = 1 << 30

// compiled builds the compiled table for r under the experiment's
// policy, or returns nil to use the lazy path.
func (x Experiment) compiled(r *core.Routing) *core.CompiledRouting {
	if x.Compile == CompileNever {
		return nil
	}
	budget := x.CompileBudget
	if budget <= 0 {
		budget = DefaultCompileBudget
	}
	if x.Compile == CompileAuto {
		// Compiling derives all N² pair blocks once; each lazy sample
		// derives N. Compile only when the sample cap exceeds N, so the
		// build is amortized even if sampling stops at the cap.
		ms := x.Sampling.MaxSamples
		if ms <= 0 {
			ms = 12800 // stats.AdaptiveConfig's default cap
		}
		if x.Topo.NumProcessors() > ms {
			met.compileFallbackAmortize.Inc()
			return nil
		}
	}
	c, err := core.CompileRouting(r, budget)
	if err != nil {
		met.compileFallbackBudget.Inc()
		return nil // over budget: lazy fallback
	}
	return c
}

// deterministicSelector reports whether sel ignores its RNG.
func deterministicSelector(sel core.Selector) bool {
	switch sel.(type) {
	case core.DModK, core.SModK, core.Shift1, core.Disjoint, core.UMulti:
		return true
	}
	return false
}

// Run executes the experiment and returns the sampling result; the
// accumulator's mean is the paper's "Average of Maximum Load".
func (x Experiment) Run() stats.AdaptiveResult {
	seeds := x.Seeds
	if len(seeds) == 0 {
		if deterministicSelector(x.Sel) {
			seeds = []int64{0}
		} else {
			seeds = []int64{101, 202, 303, 404, 505}
		}
	}
	if x.Compile == CompileBlock {
		return x.runBlock(seeds)
	}
	pools := make([]*evalPool, len(seeds))
	for i, s := range seeds {
		r := core.NewRouting(x.Topo, x.Sel, x.K, s)
		if c := x.compiled(r); c != nil {
			pools[i] = newEvalPool(func() maxLoader { return NewCompiledEvaluator(c) })
		} else {
			pools[i] = newEvalPool(func() maxLoader { return NewEvaluator(r) })
		}
	}
	n := x.Topo.NumProcessors()
	sample := func(i int) float64 {
		rng := stats.Stream(x.PermSeed, int64(i))
		tm := traffic.FromPermutation(traffic.RandomPermutation(n, rng))
		sum := 0.0
		for _, p := range pools {
			sum += p.maxLoad(tm)
		}
		return sum / float64(len(pools))
	}
	return stats.SampleAdaptive(x.Sampling, sample)
}

// runBlock executes the experiment out-of-core: one block-compiled
// table per seed, samples evaluated in segment-ordered batches so each
// segment is fetched once per batch and peak table memory stays near
// one segment. The adaptive protocol below mirrors
// stats.SampleAdaptive batch for batch — same batch boundaries, same
// accumulator feed order, same convergence checks — so for matching
// seeds the result is bit-identical to a lazy or compiled run; only
// the evaluation order inside a sample differs, and permutation
// matrices are source-sorted so even that order matches.
func (x Experiment) runBlock(seeds []int64) stats.AdaptiveResult {
	budget := x.CompileBudget
	if budget <= 0 {
		budget = DefaultCompileBudget
	}
	resident := x.Block.ResidentBytes
	if resident <= 0 {
		resident = budget
	}
	opts := core.BlockOptions{
		SegmentBytes:  x.Block.SegmentBytes,
		ResidentBytes: resident,
		Cache:         x.Block.Cache,
		Prefetch:      x.Block.Prefetch,
	}
	k := x.K
	if mp := x.Topo.MaxPaths(); k <= 0 || k > mp {
		k = mp
	}
	evals := make([]*BlockEvaluator, len(seeds))
	for i, s := range seeds {
		b := core.NewBlockCompiledRouting(core.NewRouting(x.Topo, x.Sel, x.K, s), opts)
		defer b.Close()
		evals[i] = NewBlockEvaluator(b, []int{k})
	}

	n := x.Topo.NumProcessors()
	eb := x.Block.EvalBytes
	if eb <= 0 {
		eb = DefaultEvalBytes
	}
	chunk := int(eb / (8 * int64(x.Topo.NumLinks()) * int64(len(seeds))))
	if chunk < 1 {
		chunk = 1
	}
	tms := make([]*traffic.Matrix, 0, chunk)
	outs := make([][]float64, 0, chunk)
	sampleChunk := func(start int, vals []float64) {
		tms = tms[:0]
		for i := range vals {
			rng := stats.Stream(x.PermSeed, int64(start+i))
			tms = append(tms, traffic.FromPermutation(traffic.RandomPermutation(n, rng)))
		}
		for len(outs) < len(vals) {
			outs = append(outs, make([]float64, 1))
		}
		for i := range vals {
			vals[i] = 0
		}
		for _, e := range evals {
			if err := e.MaxLoadsBatch(tms, outs[:len(vals)]); err != nil {
				panic(fmt.Sprintf("flow: block evaluation: %v", err))
			}
			for i := range vals {
				vals[i] += outs[i][0]
			}
		}
		// Match Run's per-sample value: sum of per-seed maxima divided
		// by the seed count (same operation, so same rounding).
		for i := range vals {
			vals[i] /= float64(len(seeds))
		}
	}

	cfg := x.Sampling.WithDefaults()
	var acc stats.Accumulator
	next := 0
	batch := cfg.InitialSamples
	vals := make([]float64, 0, cfg.MaxSamples)
	for {
		if next+batch > cfg.MaxSamples {
			batch = cfg.MaxSamples - next
		}
		if batch > 0 {
			vals = vals[:0]
			vals = append(vals, make([]float64, batch)...)
			for off := 0; off < batch; off += chunk {
				c := chunk
				if off+c > batch {
					c = batch - off
				}
				sampleChunk(next+off, vals[off:off+c])
			}
			acc.AddAll(vals)
			next += batch
		}
		rel := acc.RelativeCI(cfg.Confidence)
		if rel <= cfg.RelPrecision {
			return stats.AdaptiveResult{Acc: acc, Converged: true, HalfWidth: acc.ConfidenceHalfWidth(cfg.Confidence)}
		}
		if next >= cfg.MaxSamples {
			hw := acc.ConfidenceHalfWidth(cfg.Confidence)
			if math.IsInf(hw, 1) {
				hw = 0
			}
			return stats.AdaptiveResult{Acc: acc, Converged: false, HalfWidth: hw}
		}
		batch = next
	}
}
