package flow

import (
	"fmt"

	"xgftsim/internal/core"
	"xgftsim/internal/topology"
	"xgftsim/internal/traffic"
)

// CompiledEvaluator computes link loads by walking a shared
// core.CompiledRouting: per flow it scans the pair's precompiled link
// list and adds the uniform per-path share, with no path selection, no
// RNG derivation and no per-sample allocation. The compiled table is
// read-only and may be shared by any number of evaluators; the
// evaluator itself only owns its scratch load vector and, like
// Evaluator, is not safe for concurrent use — create one per goroutine.
type CompiledEvaluator struct {
	c       *core.CompiledRouting
	topo    *topology.Topology
	loads   []float64
	touched []int32 // links loaded by the most recent Loads call
	dense   bool    // bulk-clear mode: tm touches too many links to track
	lastMax float64 // max load of the most recent Loads call
	opt     optScratch
}

// NewCompiledEvaluator creates an evaluator over the shared table c.
func NewCompiledEvaluator(c *core.CompiledRouting) *CompiledEvaluator {
	t := c.Topology()
	return &CompiledEvaluator{c: c, topo: t, loads: make([]float64, t.NumLinks())}
}

// Compiled returns the shared table under evaluation.
func (e *CompiledEvaluator) Compiled() *core.CompiledRouting { return e.c }

// Loads computes the load of every directed link under tm, exactly as
// Evaluator.Loads does for the lazy routing, including its touched-link
// clearing, in-line max, and the permanent switch to bulk clearing
// with branch-free adds once a call touches a large fraction of the
// fabric (see Evaluator.Loads). The returned slice is owned by the
// evaluator and valid until the next call.
func (e *CompiledEvaluator) Loads(tm *traffic.Matrix) []float64 {
	if tm.N != e.topo.NumProcessors() {
		panic(fmt.Sprintf("flow: traffic matrix over %d nodes, topology has %d", tm.N, e.topo.NumProcessors()))
	}
	met.loadsCalls.Inc()
	met.pairsEvaluated.Add(int64(len(tm.Flows())))
	max := 0.0
	if e.dense {
		for i := range e.loads {
			e.loads[i] = 0
		}
		for _, f := range tm.Flows() {
			links, np := e.c.PairLinks(f.Src, f.Dst)
			if np == 0 {
				continue
			}
			share := f.Amount / float64(np)
			for _, l := range links {
				e.loads[l] += share
			}
		}
		for _, v := range e.loads {
			if v > max {
				max = v
			}
		}
		e.lastMax = max
		return e.loads
	}
	for _, l := range e.touched {
		e.loads[l] = 0
	}
	e.touched = e.touched[:0]
	for _, f := range tm.Flows() {
		links, np := e.c.PairLinks(f.Src, f.Dst)
		if np == 0 {
			continue
		}
		share := f.Amount / float64(np)
		for _, l := range links {
			v := e.loads[l]
			if v == 0 {
				e.touched = append(e.touched, l)
			}
			v += share
			e.loads[l] = v
			if v > max {
				max = v
			}
		}
	}
	if len(e.touched)*4 >= len(e.loads) {
		e.dense = true
		e.touched = e.touched[:0]
	}
	e.lastMax = max
	return e.loads
}

// MaxLoad computes MLOAD(r, TM) over the compiled table.
func (e *CompiledEvaluator) MaxLoad(tm *traffic.Matrix) float64 {
	e.Loads(tm)
	return e.lastMax
}

// TierLoads reports per-tier maximum loads of the most recent Loads
// call; see Evaluator.TierLoads.
func (e *CompiledEvaluator) TierLoads() [][2]float64 {
	return tierLoads(e.topo, e.loads)
}

// OptimalLoad computes OLOAD(TM) reusing evaluator-resident scratch.
func (e *CompiledEvaluator) OptimalLoad(tm *traffic.Matrix) float64 {
	return e.opt.optimalLoad(e.topo, tm)
}

// PerformanceRatio computes PERF = MLOAD/OLOAD without allocating.
func (e *CompiledEvaluator) PerformanceRatio(tm *traffic.Matrix) float64 {
	opt := e.OptimalLoad(tm)
	if opt == 0 {
		return 1
	}
	return e.MaxLoad(tm) / opt
}
