package cliutil

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"xgftsim/internal/obs"
)

func TestManifestWriteFile(t *testing.T) {
	dir := t.TempDir()
	obs.Default().Counter("cliutil.test_counter").Add(7)

	m := NewManifest("testtool")
	m.Scale = "quick"
	m.Seed = 2012
	m.Workers = 4
	m.Experiments = append(m.Experiments, ExperimentRecord{
		Name: "fig4a", WallSeconds: 1.5, CSV: "fig4a.csv",
		Metrics: obs.Snapshot{"flow.loads_calls": int64(3)},
	})
	m.Finish(0, nil)
	if err := m.WriteFile(dir); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var got Manifest
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("manifest not valid JSON: %v\n%s", err, data)
	}
	if got.Tool != "testtool" || got.Scale != "quick" || got.Seed != 2012 || got.Workers != 4 {
		t.Fatalf("round-trip lost fields: %+v", got)
	}
	if got.ExitCode != 0 || got.ExitStatus != "ok" || got.Error != "" {
		t.Fatalf("unexpected status: %+v", got)
	}
	if len(got.Experiments) != 1 || got.Experiments[0].Name != "fig4a" {
		t.Fatalf("experiments: %+v", got.Experiments)
	}
	if got.Finished.Before(got.Started) {
		t.Fatalf("finished %v before started %v", got.Finished, got.Started)
	}
	if _, ok := got.Metrics["cliutil.test_counter"]; !ok {
		t.Fatalf("Finish did not snapshot the default registry: %v", got.Metrics)
	}
	// No temp residue from the atomic write.
	matches, _ := filepath.Glob(filepath.Join(dir, "manifest-*.json.tmp"))
	if len(matches) != 0 {
		t.Fatalf("leftover temp files: %v", matches)
	}
}

func TestManifestRecordsFailure(t *testing.T) {
	dir := t.TempDir()
	m := NewManifest("testtool")
	m.Finish(1, fmt.Errorf("experiment fig5 panicked"))
	if err := m.WriteFile(dir); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(filepath.Join(dir, "manifest.json"))
	var got Manifest
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.ExitCode != 1 || got.ExitStatus != "error" || got.Error != "experiment fig5 panicked" {
		t.Fatalf("failure not recorded: %+v", got)
	}
}

func TestFlagValues(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	fs.Int("workers", 0, "")
	fs.String("scale", "quick", "")
	if err := fs.Parse([]string{"-workers", "3"}); err != nil {
		t.Fatal(err)
	}
	m := FlagValues(fs)
	if m["workers"] != "3" || m["scale"] != "quick" {
		t.Fatalf("FlagValues = %v", m)
	}
}

func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	p := AddProfileFlags(fs)
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	tr := filepath.Join(dir, "trace.out")
	if err := fs.Parse([]string{"-cpuprofile", cpu, "-memprofile", mem, "-trace", tr}); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has samples to flush.
	s := 0
	for i := 0; i < 1_000_000; i++ {
		s += i
	}
	_ = s
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := p.Stop(); err != nil { // idempotent
		t.Fatalf("second Stop: %v", err)
	}
	for _, f := range []string{cpu, mem, tr} {
		st, err := os.Stat(f)
		if err != nil {
			t.Fatalf("%s not written: %v", f, err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", f)
		}
	}
}

func TestProfileNoFlagsIsNoop(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	p := AddProfileFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
}
