package cliutil

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"time"

	"xgftsim/internal/obs"
)

// Manifest records what a CLI run actually did — tool and build
// identity, the exact flag values, seeds and worker bounds, per-
// experiment wall-clock and metric deltas, and the exit status — so a
// results directory is self-describing: when a benchmark or sweep moves
// between runs, the manifests say what ran. Written as manifest.json
// next to the run's CSVs.
type Manifest struct {
	Tool        string             `json:"tool"`
	Version     string             `json:"version,omitempty"`
	GoVersion   string             `json:"go_version"`
	Started     time.Time          `json:"started"`
	Finished    time.Time          `json:"finished"`
	WallSeconds float64            `json:"wall_seconds"`
	Args        []string           `json:"args"`
	Flags       map[string]string  `json:"flags,omitempty"`
	Scale       string             `json:"scale,omitempty"`
	Seed        int64              `json:"seed"`
	Workers     int                `json:"workers"`
	// Routing-table policy of the run (see TableFlags): where segments
	// were cached, the resident byte budget, and the block-mode segment
	// size. Zero values mean the tool ran with defaults / no cache.
	TableCache         string `json:"table_cache,omitempty"`
	TableCacheMaxBytes int64  `json:"table_cache_max_bytes,omitempty"`
	TableBudget        int64  `json:"table_budget,omitempty"`
	SegmentBytes       int64  `json:"segment_bytes,omitempty"`
	Prefetch           int    `json:"prefetch,omitempty"`
	SegmentDelta       bool   `json:"segment_delta,omitempty"`
	Experiments []ExperimentRecord `json:"experiments,omitempty"`
	Results     map[string]any     `json:"results,omitempty"`
	Metrics     obs.Snapshot       `json:"metrics,omitempty"`
	// ExitCode is the process exit code; ExitStatus names the outcome:
	// "ok", "error", or "interrupted" (the run was cancelled by
	// SIGINT/SIGTERM but still sealed its manifest on the way out).
	ExitCode   int    `json:"exit_code"`
	ExitStatus string `json:"exit_status"`
	Error      string `json:"error,omitempty"`
}

// ErrInterrupted marks a run cancelled by SIGINT/SIGTERM. CLIs pass it
// (or an error wrapping it) to Finish so the manifest records
// exit_status "interrupted" instead of a generic error.
var ErrInterrupted = errors.New("interrupted")

// ExperimentRecord is one experiment's slice of a run: its wall-clock,
// output file, and the change in every registered metric while it ran.
type ExperimentRecord struct {
	Name        string       `json:"name"`
	WallSeconds float64      `json:"wall_seconds"`
	CSV         string       `json:"csv,omitempty"`
	Metrics     obs.Snapshot `json:"metrics,omitempty"`
}

// NewManifest starts a manifest for the named tool: build identity and
// start time are captured now, command-line arguments verbatim.
func NewManifest(tool string) *Manifest {
	return &Manifest{
		Tool:      tool,
		Version:   buildVersion(),
		GoVersion: runtime.Version(),
		Started:   time.Now(),
		Args:      append([]string(nil), os.Args[1:]...),
	}
}

// buildVersion derives a version string from the embedded build info:
// the VCS revision (with a +dirty suffix) when the binary was built
// from a checkout, the module version otherwise.
func buildVersion() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	var rev, dirty string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "+dirty"
			}
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		return rev + dirty
	}
	if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		return bi.Main.Version
	}
	return ""
}

// FlagValues captures every flag of fs (set or defaulted) as strings,
// so the manifest records the run's full effective configuration.
func FlagValues(fs *flag.FlagSet) map[string]string {
	m := make(map[string]string)
	fs.VisitAll(func(f *flag.Flag) {
		m[f.Name] = f.Value.String()
	})
	return m
}

// Finish stamps the end time, exit code and error (nil for success),
// and snapshots the shared metrics registry. An error wrapping
// ErrInterrupted records exit_status "interrupted".
func (m *Manifest) Finish(exitCode int, err error) {
	m.Finished = time.Now()
	m.WallSeconds = m.Finished.Sub(m.Started).Seconds()
	m.ExitCode = exitCode
	switch {
	case errors.Is(err, ErrInterrupted):
		m.ExitStatus = "interrupted"
		m.Error = err.Error()
	case err != nil:
		m.ExitStatus = "error"
		m.Error = err.Error()
	case exitCode != 0:
		m.ExitStatus = "error"
	default:
		m.ExitStatus = "ok"
	}
	m.Metrics = obs.Default().Snapshot()
}

// WriteFile writes the manifest as dir/manifest.json, atomically: the
// JSON is written to a temp file in dir and renamed into place, so a
// crash mid-write never destroys a previous manifest.
func (m *Manifest) WriteFile(dir string) error {
	if m.Finished.IsZero() {
		m.Finish(0, nil)
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("cliutil: marshal manifest: %w", err)
	}
	data = append(data, '\n')
	tmp, err := os.CreateTemp(dir, "manifest-*.json.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(dir, "manifest.json"))
}
