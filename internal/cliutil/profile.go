package cliutil

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Profile bundles the standard -cpuprofile/-memprofile/-trace flags the
// simulation CLIs share. Register with AddProfileFlags before parsing,
// Start after, and Stop on every exit path (it is idempotent and safe
// when no profiling flag was given).
type Profile struct {
	cpuPath, memPath, tracePath *string
	cpuFile, traceFile          *os.File
	stopped                     bool
}

// AddProfileFlags registers the profiling flags on fs and returns the
// handle that drives them.
func AddProfileFlags(fs *flag.FlagSet) *Profile {
	p := &Profile{}
	p.cpuPath = fs.String("cpuprofile", "", "write a CPU profile to this file")
	p.memPath = fs.String("memprofile", "", "write a heap profile to this file on exit")
	p.tracePath = fs.String("trace", "", "write a runtime execution trace to this file")
	return p
}

// Start begins CPU profiling and execution tracing for the flags that
// were set.
func (p *Profile) Start() error {
	if *p.cpuPath != "" {
		f, err := os.Create(*p.cpuPath)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("cliutil: start CPU profile: %w", err)
		}
		p.cpuFile = f
	}
	if *p.tracePath != "" {
		f, err := os.Create(*p.tracePath)
		if err != nil {
			p.Stop()
			return err
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			p.Stop()
			return fmt.Errorf("cliutil: start trace: %w", err)
		}
		p.traceFile = f
	}
	return nil
}

// Stop finishes the CPU profile and trace and writes the heap profile.
// The first error wins but every profiler is still torn down.
func (p *Profile) Stop() error {
	if p.stopped {
		return nil
	}
	p.stopped = true
	var first error
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := p.cpuFile.Close(); err != nil && first == nil {
			first = err
		}
		p.cpuFile = nil
	}
	if p.traceFile != nil {
		trace.Stop()
		if err := p.traceFile.Close(); err != nil && first == nil {
			first = err
		}
		p.traceFile = nil
	}
	if *p.memPath != "" {
		f, err := os.Create(*p.memPath)
		if err != nil {
			if first == nil {
				first = err
			}
		} else {
			runtime.GC() // materialize a settled heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil && first == nil {
				first = fmt.Errorf("cliutil: write heap profile: %w", err)
			}
			if err := f.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
