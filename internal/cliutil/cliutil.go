// Package cliutil holds the small shared helpers of the command-line
// tools: parsing topology specifications and resolving tree variants.
package cliutil

import (
	"fmt"
	"strconv"
	"strings"

	"xgftsim/internal/topology"
)

// BuildTopology resolves the common -xgft / -mport / -ntree flag trio:
// an explicit spec wins; otherwise an m-port n-tree is built.
func BuildTopology(spec string, mport, ntree int) (*topology.Topology, error) {
	if spec != "" {
		return ParseXGFT(spec)
	}
	if mport > 0 && ntree > 0 {
		return topology.MPortNTree(mport, ntree)
	}
	return nil, fmt.Errorf("give -xgft \"h;m1,..;w1,..\" or -mport/-ntree")
}

// ParseXGFT parses the paper notation "h;m1,..,mh;w1,..,wh" into a
// topology.
func ParseXGFT(spec string) (*topology.Topology, error) {
	parts := strings.Split(spec, ";")
	if len(parts) != 3 {
		return nil, fmt.Errorf("bad XGFT spec %q (want h;m1,..;w1,..)", spec)
	}
	h, err := strconv.Atoi(strings.TrimSpace(parts[0]))
	if err != nil {
		return nil, fmt.Errorf("bad height in %q: %v", spec, err)
	}
	m, err := parseInts(parts[1])
	if err != nil {
		return nil, fmt.Errorf("bad m arities in %q: %v", spec, err)
	}
	w, err := parseInts(parts[2])
	if err != nil {
		return nil, fmt.Errorf("bad w arities in %q: %v", spec, err)
	}
	return topology.New(h, m, w)
}

func parseInts(s string) ([]int, error) {
	fields := strings.Split(s, ",")
	out := make([]int, 0, len(fields))
	for _, f := range fields {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
