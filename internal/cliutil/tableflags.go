package cliutil

import (
	"flag"

	"xgftsim/internal/core"
	"xgftsim/internal/experiments"
)

// TableFlags is the shared routing-table policy flag trio of the CLIs:
// where (and whether) to cache compiled segments on disk, how many
// bytes of table may stay resident, and the segment granularity of the
// out-of-core block mode.
type TableFlags struct {
	CacheDir     string
	Budget       int64
	SegmentBytes int64
}

// AddTableFlags registers -table-cache, -table-budget and
// -segment-bytes on fs and returns the destination struct.
func AddTableFlags(fs *flag.FlagSet) *TableFlags {
	tf := &TableFlags{}
	fs.StringVar(&tf.CacheDir, "table-cache", "", "directory caching compiled routing segments across runs (empty: no cache)")
	fs.Int64Var(&tf.Budget, "table-budget", core.DefaultTableBudget, "resident routing-table byte budget (full compile must fit it; block mode pools segments under it)")
	fs.Int64Var(&tf.SegmentBytes, "segment-bytes", 0, "compiled bytes per source-block segment in block mode (0: experiment default)")
	return tf
}

// Options converts the flags to the experiments-layer table policy.
func (tf *TableFlags) Options() experiments.TableOptions {
	return experiments.TableOptions{CacheDir: tf.CacheDir, Budget: tf.Budget, SegmentBytes: tf.SegmentBytes}
}

// OpenCache opens the segment cache named by -table-cache, or returns
// nil when no cache was requested.
func (tf *TableFlags) OpenCache() (*core.SegmentCache, error) {
	if tf.CacheDir == "" {
		return nil, nil
	}
	return core.OpenSegmentCache(tf.CacheDir)
}

// Stamp records the effective table policy in the run manifest.
func (tf *TableFlags) Stamp(m *Manifest) {
	m.TableCache = tf.CacheDir
	m.TableBudget = tf.Budget
	m.SegmentBytes = tf.SegmentBytes
}
