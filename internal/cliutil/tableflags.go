package cliutil

import (
	"flag"

	"xgftsim/internal/core"
	"xgftsim/internal/experiments"
)

// TableFlags is the shared routing-table policy flag trio of the CLIs:
// where (and whether) to cache compiled segments on disk, how many
// bytes of table may stay resident, and the segment granularity of the
// out-of-core block mode.
type TableFlags struct {
	CacheDir      string
	CacheMaxBytes int64
	Budget        int64
	SegmentBytes  int64
	Prefetch      int
	SegmentDelta  bool
}

// AddTableFlags registers -table-cache, -table-cache-max-bytes,
// -table-budget, -segment-bytes, -prefetch and -segment-delta on fs
// and returns the destination struct.
func AddTableFlags(fs *flag.FlagSet) *TableFlags {
	tf := &TableFlags{}
	fs.StringVar(&tf.CacheDir, "table-cache", "", "directory caching compiled routing segments across runs (empty: no cache)")
	fs.Int64Var(&tf.CacheMaxBytes, "table-cache-max-bytes", 0, "cap on segment-cache disk bytes, oldest records evicted on write (0: unbounded)")
	fs.Int64Var(&tf.Budget, "table-budget", core.DefaultTableBudget, "resident routing-table byte budget (full compile must fit it; block mode pools segments under it)")
	fs.Int64Var(&tf.SegmentBytes, "segment-bytes", 0, "compiled bytes per source-block segment in block mode (0: experiment default)")
	fs.IntVar(&tf.Prefetch, "prefetch", 0, "segments compiled ahead of the evaluator by the async worker pool (0: synchronous)")
	fs.BoolVar(&tf.SegmentDelta, "segment-delta", false, "delta-encode compatible schemes' segments against the sweep's base scheme, in memory and in the cache")
	return tf
}

// Options converts the flags to the experiments-layer table policy.
func (tf *TableFlags) Options() experiments.TableOptions {
	return experiments.TableOptions{
		CacheDir:      tf.CacheDir,
		CacheMaxBytes: tf.CacheMaxBytes,
		Budget:        tf.Budget,
		SegmentBytes:  tf.SegmentBytes,
		Prefetch:      tf.Prefetch,
		SegmentDelta:  tf.SegmentDelta,
	}
}

// OpenCache opens the segment cache named by -table-cache, or returns
// nil when no cache was requested.
func (tf *TableFlags) OpenCache() (*core.SegmentCache, error) {
	if tf.CacheDir == "" {
		return nil, nil
	}
	c, err := core.OpenSegmentCache(tf.CacheDir)
	if err != nil {
		return nil, err
	}
	c.SetMaxBytes(tf.CacheMaxBytes)
	return c, nil
}

// Stamp records the effective table policy in the run manifest.
func (tf *TableFlags) Stamp(m *Manifest) {
	m.TableCache = tf.CacheDir
	m.TableCacheMaxBytes = tf.CacheMaxBytes
	m.TableBudget = tf.Budget
	m.SegmentBytes = tf.SegmentBytes
	m.Prefetch = tf.Prefetch
	m.SegmentDelta = tf.SegmentDelta
}
