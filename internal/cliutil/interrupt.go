package cliutil

import (
	"context"
	"os"
	"os/signal"
	"syscall"
)

// WithInterrupt returns a context cancelled on the first SIGINT or
// SIGTERM, for CLIs that want to unwind gracefully (stop scheduling
// work, seal the manifest with exit_status "interrupted") instead of
// dying mid-sweep. The returned stop deregisters the handler and
// restores the default disposition, so calling it once the context has
// fired makes a second signal kill the process immediately — the
// escape hatch when a cancelled run takes too long to unwind.
func WithInterrupt(parent context.Context) (context.Context, context.CancelFunc) {
	return signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
}
