package cliutil

import "testing"

func TestParseXGFT(t *testing.T) {
	tp, err := ParseXGFT("3;4,4,8;1,4,4")
	if err != nil {
		t.Fatal(err)
	}
	if tp.String() != "XGFT(3; 4,4,8; 1,4,4)" {
		t.Fatalf("parsed %s", tp)
	}
	tp, err = ParseXGFT(" 2 ; 8 , 16 ; 1 , 8 ")
	if err != nil {
		t.Fatal(err)
	}
	if tp.NumProcessors() != 128 {
		t.Fatalf("whitespace spec parsed wrong: %s", tp)
	}
	for _, bad := range []string{
		"", "3;4,4,8", "x;1;1", "2;a,b;1,2", "2;4,8;1,x", "2;4;1,2", "1;0;1",
	} {
		if _, err := ParseXGFT(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestBuildTopology(t *testing.T) {
	tp, err := BuildTopology("2;4,8;1,4", 0, 0)
	if err != nil || tp.NumProcessors() != 32 {
		t.Fatalf("spec path: %v %v", tp, err)
	}
	tp, err = BuildTopology("", 8, 3)
	if err != nil || tp.String() != "XGFT(3; 4,4,8; 1,4,4)" {
		t.Fatalf("mport path: %v %v", tp, err)
	}
	// Spec wins over mport.
	tp, err = BuildTopology("1;2;1", 8, 3)
	if err != nil || tp.NumProcessors() != 2 {
		t.Fatalf("precedence: %v %v", tp, err)
	}
	if _, err := BuildTopology("", 0, 0); err == nil {
		t.Error("no topology accepted")
	}
	if _, err := BuildTopology("", 7, 2); err == nil {
		t.Error("odd m-port accepted")
	}
}
