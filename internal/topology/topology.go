// Package topology implements extended generalized fat-trees
// (XGFTs, Ohring et al. 1995) as pure-arithmetic graphs: node labels,
// port numbering, link identities, nearest-common-ancestor queries and
// shortest-path realization are all computed from the (h; m1..mh;
// w1..wh) parameters without materializing adjacency tables, so even
// the 3456-node 24-port 3-tree costs a few hundred bytes.
//
// An XGFT(h; m1,...,mh; w1,...,wh) has h+1 levels of nodes. Level 0
// holds the processing nodes; levels 1..h hold switches. Each level-i
// node (i < h) has w_{i+1} parents, and each level-i node (i >= 1) has
// m_i children. Ports on a level-i node are numbered with the up ports
// first (0..w_{i+1}-1) followed by the down ports, matching the paper.
package topology

import (
	"fmt"
	"strings"
)

// maxHeight bounds the tree height; real installations use h <= 4 and
// the bound lets hot paths use fixed-size digit buffers.
const maxHeight = 16

// NodeID identifies a node (processing node or switch) in an XGFT.
// IDs are dense: all level-0 nodes first, then level 1, and so on.
type NodeID int

// LinkID identifies a directed link. Every cable between a child and a
// parent contributes two directed links: the up direction (child to
// parent) and the down direction (parent to child). IDs are dense.
type LinkID int

// Topology is an immutable extended generalized fat-tree. The zero
// value is not usable; construct with New or one of the variant
// constructors (MPortNTree, KAryNTree, GFT).
type Topology struct {
	h int
	m []int // m[1..h]; m[0] unused
	w []int // w[1..h]; w[0] unused

	levelCount  []int // levelCount[l]: number of nodes at level l
	levelOffset []int // levelOffset[l]: first NodeID at level l
	numNodes    int

	edgeOffset []int // edgeOffset[l]: first (undirected) edge index for edges between levels l and l+1
	numEdges   int

	mprod []int // mprod[l] = Π_{i=l+1..h} m_i
	wprod []int // wprod[l] = Π_{i=1..l} w_i
}

// New constructs XGFT(h; m[0..h-1]; w[0..h-1]). The slices use natural
// 0-based Go indexing: m[i-1] and w[i-1] hold the paper's m_i and w_i.
// All arities must be at least 1 and h at least 1. Topologies with
// more than about a billion nodes are rejected to keep arithmetic in
// range.
func New(h int, m, w []int) (*Topology, error) {
	if h < 1 {
		return nil, fmt.Errorf("topology: height h must be >= 1, got %d", h)
	}
	if h > maxHeight {
		return nil, fmt.Errorf("topology: height h must be <= %d, got %d", maxHeight, h)
	}
	if len(m) != h || len(w) != h {
		return nil, fmt.Errorf("topology: need exactly h=%d arities, got |m|=%d |w|=%d", h, len(m), len(w))
	}
	t := &Topology{
		h: h,
		m: make([]int, h+1),
		w: make([]int, h+1),
	}
	for i := 1; i <= h; i++ {
		if m[i-1] < 1 {
			return nil, fmt.Errorf("topology: m_%d must be >= 1, got %d", i, m[i-1])
		}
		if w[i-1] < 1 {
			return nil, fmt.Errorf("topology: w_%d must be >= 1, got %d", i, w[i-1])
		}
		t.m[i] = m[i-1]
		t.w[i] = w[i-1]
	}
	t.mprod = make([]int, h+1)
	t.wprod = make([]int, h+1)
	t.mprod[h] = 1
	for l := h - 1; l >= 0; l-- {
		t.mprod[l] = t.mprod[l+1] * t.m[l+1]
		if t.mprod[l] < 0 || t.mprod[l] > 1<<30 {
			return nil, fmt.Errorf("topology: node count overflow at level %d", l)
		}
	}
	t.wprod[0] = 1
	for l := 1; l <= h; l++ {
		t.wprod[l] = t.wprod[l-1] * t.w[l]
		if t.wprod[l] < 0 || t.wprod[l] > 1<<30 {
			return nil, fmt.Errorf("topology: switch count overflow at level %d", l)
		}
	}
	t.levelCount = make([]int, h+1)
	t.levelOffset = make([]int, h+2)
	for l := 0; l <= h; l++ {
		t.levelCount[l] = t.mprod[l] * t.wprod[l]
		t.levelOffset[l+1] = t.levelOffset[l] + t.levelCount[l]
	}
	t.numNodes = t.levelOffset[h+1]
	t.edgeOffset = make([]int, h+1)
	for l := 0; l < h; l++ {
		t.edgeOffset[l+1] = t.edgeOffset[l] + t.levelCount[l]*t.w[l+1]
	}
	t.numEdges = t.edgeOffset[h]
	return t, nil
}

// MustNew is New but panics on error; intended for tests, examples and
// literal topology tables.
func MustNew(h int, m, w []int) *Topology {
	t, err := New(h, m, w)
	if err != nil {
		panic(err)
	}
	return t
}

// H returns the number of switch levels (the tree height).
func (t *Topology) H() int { return t.h }

// M returns m_i, the child arity at level i, for 1 <= i <= h.
func (t *Topology) M(i int) int {
	t.checkLevelIndex(i)
	return t.m[i]
}

// W returns w_i, the parent arity of level i-1 nodes, for 1 <= i <= h.
func (t *Topology) W(i int) int {
	t.checkLevelIndex(i)
	return t.w[i]
}

func (t *Topology) checkLevelIndex(i int) {
	if i < 1 || i > t.h {
		panic(fmt.Sprintf("topology: arity index %d out of range [1,%d]", i, t.h))
	}
}

// NumProcessors returns the number of level-0 processing nodes,
// Π_{i=1..h} m_i.
func (t *Topology) NumProcessors() int { return t.mprod[0] }

// NumSwitches returns the number of switch nodes (levels 1..h).
func (t *Topology) NumSwitches() int { return t.numNodes - t.mprod[0] }

// NumNodes returns the total number of nodes across all levels.
func (t *Topology) NumNodes() int { return t.numNodes }

// NumTopSwitches returns the number of level-h switches, Π_{i=1..h} w_i.
func (t *Topology) NumTopSwitches() int { return t.wprod[t.h] }

// NodesAtLevel returns the number of nodes at level l (0 <= l <= h):
// (Π_{i=l+1..h} m_i) · (Π_{i=1..l} w_i).
func (t *Topology) NodesAtLevel(l int) int {
	t.checkLevel(l)
	return t.levelCount[l]
}

func (t *Topology) checkLevel(l int) {
	if l < 0 || l > t.h {
		panic(fmt.Sprintf("topology: level %d out of range [0,%d]", l, t.h))
	}
}

// MaxPaths returns the largest number of shortest paths between any
// two processing nodes, Π_{i=1..h} w_i (Property 1 with k = h).
func (t *Topology) MaxPaths() int { return t.wprod[t.h] }

// WProd returns Π_{i=1..l} w_i for 0 <= l <= h (WProd(0) == 1). This is
// the number of shortest paths for SD pairs whose NCA is at level l,
// and also the number of level-l top switches in a height-l subtree.
func (t *Topology) WProd(l int) int {
	t.checkLevel(l)
	return t.wprod[l]
}

// MProd returns Π_{i=l+1..h} m_i for 0 <= l <= h (MProd(h) == 1): the
// number of height-l subtrees the XGFT decomposes into.
func (t *Topology) MProd(l int) int {
	t.checkLevel(l)
	return t.mprod[l]
}

// TL returns the number of one-directional links connecting a height-k
// subtree (0 <= k < h) to the rest of the XGFT in one direction:
// TL(k) = Π_{i=1..k+1} w_i. Every level-k top switch of the subtree has
// w_{k+1} parents outside it.
func (t *Topology) TL(k int) int {
	if k < 0 || k >= t.h {
		panic(fmt.Sprintf("topology: TL level %d out of range [0,%d)", k, t.h))
	}
	return t.wprod[k+1]
}

// String renders the topology in the paper's notation, e.g.
// "XGFT(3; 4,4,8; 1,4,4)".
func (t *Topology) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "XGFT(%d; ", t.h)
	for i := 1; i <= t.h; i++ {
		if i > 1 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", t.m[i])
	}
	b.WriteString("; ")
	for i := 1; i <= t.h; i++ {
		if i > 1 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", t.w[i])
	}
	b.WriteByte(')')
	return b.String()
}

// Equal reports whether two topologies have identical parameters.
func (t *Topology) Equal(o *Topology) bool {
	if t.h != o.h {
		return false
	}
	for i := 1; i <= t.h; i++ {
		if t.m[i] != o.m[i] || t.w[i] != o.w[i] {
			return false
		}
	}
	return true
}
