package topology

import (
	"fmt"
	"io"
	"strings"
)

// Draw renders the topology level by level in the style of the paper's
// Figures 1-3: top switches first, processing nodes last, each node
// printed with its tuple label and, for switches, the port-ordered list
// of neighbours. Intended for small illustration trees; larger levels
// are elided after maxPerLevel nodes.
func (t *Topology) Draw(w io.Writer, maxPerLevel int) {
	if maxPerLevel <= 0 {
		maxPerLevel = 16
	}
	fmt.Fprintf(w, "%s — %d processing nodes, %d switches\n", t, t.NumProcessors(), t.NumSwitches())
	for l := t.h; l >= 0; l-- {
		kind := "switches"
		switch {
		case l == 0:
			kind = "processing nodes"
		case l == t.h:
			kind = "top switches"
		}
		fmt.Fprintf(w, "level %d (%d %s):\n", l, t.levelCount[l], kind)
		shown := t.levelCount[l]
		if shown > maxPerLevel {
			shown = maxPerLevel
		}
		for i := 0; i < shown; i++ {
			n := t.NodeAt(l, i)
			fmt.Fprintf(w, "  %-14s", t.LabelOf(n).String())
			if l > 0 {
				var ports []string
				for p := 0; p < t.NumPorts(n); p++ {
					ports = append(ports, t.LabelOf(t.PortPeer(n, p)).String())
				}
				fmt.Fprintf(w, " ports-> %s", strings.Join(ports, " "))
			} else if t.NumParents(n) > 0 {
				var ups []string
				for p := 0; p < t.NumParents(n); p++ {
					ups = append(ups, t.LabelOf(t.Parent(n, p)).String())
				}
				fmt.Fprintf(w, " up-> %s", strings.Join(ups, " "))
			}
			fmt.Fprintln(w)
		}
		if t.levelCount[l] > shown {
			fmt.Fprintf(w, "  ... %d more\n", t.levelCount[l]-shown)
		}
	}
}

// DrawPath renders one shortest path (by up-port choices) as an
// indented hop list, for illustrating the paper's Path enumeration
// examples.
func (t *Topology) DrawPath(w io.Writer, src, dst int, up []int) {
	nodes := t.PathNodes(src, dst, up)
	fmt.Fprintf(w, "path %d -> %d via up ports %v:\n", src, dst, up)
	for i, n := range nodes {
		l, _ := t.LevelIndex(n)
		fmt.Fprintf(w, "  %s%s (level %d)\n", strings.Repeat("  ", levelIndent(i, len(nodes))), t.LabelOf(n), l)
	}
}

// levelIndent makes the hop list rise and fall with the path.
func levelIndent(i, total int) int {
	peak := total / 2
	if i <= peak {
		return i
	}
	return total - 1 - i
}
