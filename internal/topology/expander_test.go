package topology

import "testing"

// TestLinkExpanderMatchesAppend pins the expander's factored arithmetic
// to AppendPathLinksNCA: for every pair and every canonical path index,
// PairLinks must emit the exact int32 link sequence the per-hop
// derivation produces.
func TestLinkExpanderMatchesAppend(t *testing.T) {
	for _, topo := range []*Topology{
		MustNew(2, []int{4, 3}, []int{2, 3}),
		MustNew(3, []int{4, 4, 8}, []int{1, 4, 4}),
		MustNew(3, []int{2, 3, 4}, []int{3, 2, 2}),
	} {
		t.Run(topo.String(), func(t *testing.T) {
			n := topo.NumProcessors()
			exp := topo.NewLinkExpander()
			var up [maxHeight]int
			var want []LinkID
			idxs := make([]int32, 0, topo.MaxPaths())
			out := make([]int32, 0)
			for src := 0; src < n; src++ {
				exp.SetSource(src)
				for dst := 0; dst < n; dst++ {
					if dst == src {
						continue
					}
					k := topo.NCALevel(src, dst)
					x := topo.WProd(k)
					// All indices at once, in canonical order.
					idxs = idxs[:0]
					want = want[:0]
					for idx := 0; idx < x; idx++ {
						idxs = append(idxs, int32(idx))
						v := idx
						for j := k; j >= 1; j-- {
							up[j-1] = v % topo.W(j)
							v /= topo.W(j)
						}
						want = topo.AppendPathLinksNCA(want, src, dst, k, up[:k])
					}
					if cap(out) < len(want) {
						out = make([]int32, len(want))
					}
					out = out[:len(want)]
					exp.PairLinks(dst, k, idxs, out)
					for i := range want {
						if int32(want[i]) != out[i] {
							t.Fatalf("pair (%d,%d) k=%d link %d: expander %d != append %d",
								src, dst, k, i, out[i], want[i])
						}
					}
				}
			}
		})
	}
}

// TestLinkExpanderSubsetOrder pins that PairLinks honours the order of
// an arbitrary (non-contiguous, repeated) index list, as selectors
// produce them.
func TestLinkExpanderSubsetOrder(t *testing.T) {
	topo := MustNew(3, []int{4, 4, 8}, []int{1, 4, 4})
	exp := topo.NewLinkExpander()
	src, dst := 5, 100
	k := topo.NCALevel(src, dst)
	if k < 2 {
		t.Fatalf("want deep pair, got NCA level %d", k)
	}
	idxs := []int32{7, 0, 7, 3}
	out := make([]int32, len(idxs)*2*k)
	exp.SetSource(src)
	exp.PairLinks(dst, k, idxs, out)
	var up [maxHeight]int
	var want []LinkID
	for _, idx := range idxs {
		v := int(idx)
		for j := k; j >= 1; j-- {
			up[j-1] = v % topo.W(j)
			v /= topo.W(j)
		}
		want = topo.AppendPathLinksNCA(want, src, dst, k, up[:k])
	}
	for i := range want {
		if int32(want[i]) != out[i] {
			t.Fatalf("link %d: expander %d != append %d", i, out[i], want[i])
		}
	}
}
