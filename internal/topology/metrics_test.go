package topology

import (
	"math"
	"strings"
	"testing"
)

func TestDiameter(t *testing.T) {
	if d := MustNew(3, []int{4, 4, 8}, []int{1, 4, 4}).Diameter(); d != 6 {
		t.Fatalf("diameter %d", d)
	}
	if d := MustNew(1, []int{4}, []int{1}).Diameter(); d != 2 {
		t.Fatalf("diameter %d", d)
	}
}

// TestAvgShortestPathLenBruteForce cross-checks the closed form
// against direct enumeration.
func TestAvgShortestPathLenBruteForce(t *testing.T) {
	trees := []*Topology{
		MustNew(2, []int{4, 8}, []int{1, 4}),
		MustNew(3, []int{2, 3, 2}, []int{2, 2, 3}),
		MustNew(1, []int{5}, []int{2}),
	}
	for _, tp := range trees {
		n := tp.NumProcessors()
		sum, cnt := 0, 0
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				if s == d {
					continue
				}
				sum += tp.PathLen(s, d)
				cnt++
			}
		}
		want := float64(sum) / float64(cnt)
		if got := tp.AvgShortestPathLen(); math.Abs(got-want) > 1e-12 {
			t.Errorf("%s: avg path len %g want %g", tp, got, want)
		}
	}
	if MustNew(1, []int{1}, []int{1}).AvgShortestPathLen() != 0 {
		t.Error("single node average should be 0")
	}
}

func TestOversubscription(t *testing.T) {
	// m-port n-trees have full bisection: ratio 1 at every level.
	full := MustNew(3, []int{4, 4, 8}, []int{1, 4, 4})
	for l := 0; l < full.H(); l++ {
		if r := full.Oversubscription(l); r != 1 {
			t.Errorf("level %d ratio %g, want 1", l, r)
		}
	}
	if full.MaxOversubscription() != 1 {
		t.Error("max ratio should be 1")
	}
	if full.Oversubscription(full.H()) != 0 {
		t.Error("top level should report 0")
	}
	// A 2:1 tapered top level.
	tapered := MustNew(2, []int{4, 8}, []int{1, 2})
	if r := tapered.Oversubscription(1); r != 2 {
		t.Errorf("tapered ratio %g, want 2", r)
	}
	if tapered.MaxOversubscription() != 2 {
		t.Error("max should pick the tapered cut")
	}
}

func TestIdealUniformThroughput(t *testing.T) {
	// Full-bisection tree: uniform throughput 1.
	full := MustNew(2, []int{4, 8}, []int{1, 4})
	if v := full.IdealUniformThroughput(); v != 1 {
		t.Errorf("full bisection throughput %g", v)
	}
	// 2:1 tapered: uniform traffic crossing the top is (N-4)/N = 7/8
	// per node, capacity 2/4 = 0.5 -> bound 0.5/(7/8) ~ 0.571.
	tapered := MustNew(2, []int{4, 8}, []int{1, 2})
	want := 0.5 / (28.0 / 32.0)
	if v := tapered.IdealUniformThroughput(); math.Abs(v-want) > 1e-12 {
		t.Errorf("tapered throughput %g want %g", v, want)
	}
}

func TestCost(t *testing.T) {
	tp := MustNew(2, []int{4, 8}, []int{1, 4}) // 8 leaf switches, 4 tops
	c := tp.Cost()
	if c.Switches != 12 {
		t.Fatalf("switches %d", c.Switches)
	}
	if c.Cables != tp.NumCables() {
		t.Fatalf("cables %d", c.Cables)
	}
	// Leaf switches: 4 down + 4 up = 8 ports x 8 switches; tops: 8
	// ports x 4 switches.
	if c.SwitchPorts != 8*8+8*4 {
		t.Fatalf("ports %d", c.SwitchPorts)
	}
}

func TestDraw(t *testing.T) {
	var buf strings.Builder
	tp := MustNew(2, []int{2, 2}, []int{1, 2})
	tp.Draw(&buf, 0)
	out := buf.String()
	for _, want := range []string{
		"XGFT(2; 2,2; 1,2)",
		"level 2 (2 top switches)",
		"level 0 (4 processing nodes)",
		"ports->",
		"up->",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Draw output missing %q:\n%s", want, out)
		}
	}
	// Eliding kicks in for wide levels.
	buf.Reset()
	MustNew(2, []int{8, 16}, []int{1, 8}).Draw(&buf, 4)
	if !strings.Contains(buf.String(), "more") {
		t.Error("elision marker missing")
	}
	// DrawPath renders every hop.
	buf.Reset()
	tp.DrawPath(&buf, 0, 3, []int{0, 1})
	if got := strings.Count(buf.String(), "level"); got != 5 {
		t.Errorf("DrawPath hops: %d lines with level, want 5\n%s", got, buf.String())
	}
}
