package topology

import "fmt"

// The XGFT is the most generic fat-tree description: the common
// variants used in HPC installations are all special cases. These
// constructors build them with the parameter mappings used in the
// paper's evaluation section ("topologically equivalent to ...").

// MPortNTree constructs the XGFT equivalent of an m-port n-tree
// (Lin et al.): XGFT(n; m/2, ..., m/2, m; 1, m/2, ..., m/2). Leaf
// switches use half their m ports down to processing nodes and half up;
// the top level uses all m ports down. m must be even and >= 2, n >= 1.
//
// Examples from the paper: the 8-port 3-tree is XGFT(3;4,4,8;1,4,4)
// with 128 processing nodes; the 24-port 3-tree (TACC Ranger scale) is
// XGFT(3;12,12,24;1,12,12) with 3456 processing nodes and 144 shortest
// paths between far-apart pairs.
func MPortNTree(m, n int) (*Topology, error) {
	if m < 2 || m%2 != 0 {
		return nil, fmt.Errorf("topology: m-port n-tree needs even m >= 2, got m=%d", m)
	}
	if n < 1 {
		return nil, fmt.Errorf("topology: m-port n-tree needs n >= 1, got n=%d", n)
	}
	ms := make([]int, n)
	ws := make([]int, n)
	for i := 0; i < n; i++ {
		ms[i] = m / 2
		ws[i] = m / 2
	}
	ms[n-1] = m
	ws[0] = 1
	return New(n, ms, ws)
}

// KAryNTree constructs the XGFT equivalent of a k-ary n-tree (Petrini &
// Vanneschi): XGFT(n; k, ..., k; 1, k, ..., k). Every switch has k
// ports down and k up except the k-port top level.
func KAryNTree(k, n int) (*Topology, error) {
	if k < 1 || n < 1 {
		return nil, fmt.Errorf("topology: k-ary n-tree needs k,n >= 1, got k=%d n=%d", k, n)
	}
	ms := make([]int, n)
	ws := make([]int, n)
	for i := 0; i < n; i++ {
		ms[i] = k
		ws[i] = k
	}
	ws[0] = 1
	return New(n, ms, ws)
}

// GFT constructs the generalized fat-tree GFT(h; m, w) of Ohring et
// al.: the XGFT with uniform arities, XGFT(h; m,...,m; w,...,w).
func GFT(h, m, w int) (*Topology, error) {
	ms := make([]int, h)
	ws := make([]int, h)
	for i := 0; i < h; i++ {
		ms[i] = m
		ws[i] = w
	}
	return New(h, ms, ws)
}

// PaperTopology names one of the six evaluation topologies from the
// paper (see DESIGN.md §4) plus the Figure 3 illustration tree.
type PaperTopology string

// The evaluation topologies used in the paper's Section 5 and the
// Figure 3 example.
const (
	Paper8Port2Tree  PaperTopology = "8-port-2-tree"  // XGFT(2;4,8;1,4), N=32
	Paper16Port2Tree PaperTopology = "16-port-2-tree" // XGFT(2;8,16;1,8), N=128 (Fig 4a)
	Paper24Port2Tree PaperTopology = "24-port-2-tree" // XGFT(2;12,24;1,12), N=288 (Fig 4c)
	Paper8Port3Tree  PaperTopology = "8-port-3-tree"  // XGFT(3;4,4,8;1,4,4), N=128 (Table 1, Fig 5)
	Paper16Port3Tree PaperTopology = "16-port-3-tree" // XGFT(3;8,8,16;1,8,8), N=1024 (Fig 4b)
	Paper24Port3Tree PaperTopology = "24-port-3-tree" // XGFT(3;12,12,24;1,12,12), N=3456 (Fig 4d)
	PaperFigure3Tree PaperTopology = "figure-3"       // XGFT(3;4,4,4;1,4,2), N=64, X=8
)

// FromPaper constructs one of the named paper topologies.
func FromPaper(name PaperTopology) (*Topology, error) {
	switch name {
	case Paper8Port2Tree:
		return MPortNTree(8, 2)
	case Paper16Port2Tree:
		return MPortNTree(16, 2)
	case Paper24Port2Tree:
		return MPortNTree(24, 2)
	case Paper8Port3Tree:
		return MPortNTree(8, 3)
	case Paper16Port3Tree:
		return MPortNTree(16, 3)
	case Paper24Port3Tree:
		return MPortNTree(24, 3)
	case PaperFigure3Tree:
		return New(3, []int{4, 4, 4}, []int{1, 4, 2})
	}
	return nil, fmt.Errorf("topology: unknown paper topology %q", name)
}

// PaperTopologies lists the named topologies in presentation order.
func PaperTopologies() []PaperTopology {
	return []PaperTopology{
		Paper8Port2Tree, Paper16Port2Tree, Paper24Port2Tree,
		Paper8Port3Tree, Paper16Port3Tree, Paper24Port3Tree,
		PaperFigure3Tree,
	}
}
