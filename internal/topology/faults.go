package topology

import (
	"fmt"

	"xgftsim/internal/stats"
)

// FaultSet models a degraded fabric: a set of directed links that are
// down. Faults are injected per directed link, per cable (both
// directions) or per switch (every incident link), either from explicit
// targets or drawn from a seeded RNG so failure sweeps are reproducible.
// A FaultSet is mutable while being built; once handed to a routing
// repair or a simulation it must no longer be modified, after which all
// read methods are safe for concurrent use.
type FaultSet struct {
	topo *Topology
	down []bool // down[l]: directed link l is failed
	num  int    // number of down directed links
}

// NewFaultSet creates an empty fault set over t (a healthy fabric).
func NewFaultSet(t *Topology) *FaultSet {
	return &FaultSet{topo: t, down: make([]bool, t.NumLinks())}
}

// Topology returns the fabric the faults apply to.
func (f *FaultSet) Topology() *Topology { return f.topo }

// NumDown returns the number of failed directed links.
func (f *FaultSet) NumDown() int { return f.num }

// Empty reports whether no link is failed.
func (f *FaultSet) Empty() bool { return f.num == 0 }

// LinkDown reports whether directed link l is failed.
func (f *FaultSet) LinkDown(l LinkID) bool {
	if l < 0 || int(l) >= len(f.down) {
		panic(fmt.Sprintf("topology: link %d out of range [0,%d)", l, len(f.down)))
	}
	return f.down[l]
}

// DownLinks returns the failed directed links in ascending order.
func (f *FaultSet) DownLinks() []LinkID {
	out := make([]LinkID, 0, f.num)
	for l, d := range f.down {
		if d {
			out = append(out, LinkID(l))
		}
	}
	return out
}

// FailLink marks one directed link as down. Failing a link twice is a
// no-op. It returns an error for out-of-range links, the condition the
// flit engine used to panic on.
func (f *FaultSet) FailLink(l LinkID) error {
	if l < 0 || int(l) >= len(f.down) {
		return fmt.Errorf("topology: failed link %d out of range [0,%d)", l, len(f.down))
	}
	if !f.down[l] {
		f.down[l] = true
		f.num++
	}
	return nil
}

// FailLinks marks every listed directed link as down.
func (f *FaultSet) FailLinks(links []LinkID) error {
	for _, l := range links {
		if err := f.FailLink(l); err != nil {
			return err
		}
	}
	return nil
}

// FailCable fails both directions of the cable between child and its
// parent through up port p — the usual physical failure mode.
func (f *FaultSet) FailCable(child NodeID, p int) error {
	if err := f.FailLink(f.topo.UpLink(child, p)); err != nil {
		return err
	}
	return f.FailLink(f.topo.DownLink(child, p))
}

// failCableIndex fails both directions of the i-th undirected cable.
func (f *FaultSet) failCableIndex(i int) {
	f.FailLink(LinkID(2 * i))   //nolint:errcheck // index is in range
	f.FailLink(LinkID(2*i + 1)) //nolint:errcheck
}

// FailSwitch fails every link incident to switch n, in both
// directions: the node disappears from the fabric. Processing nodes
// are rejected (an endpoint failure is a workload change, not a fabric
// fault).
func (f *FaultSet) FailSwitch(n NodeID) error {
	t := f.topo
	l, _ := t.LevelIndex(n)
	if l == 0 {
		return fmt.Errorf("topology: node %d is a processing node, not a switch", n)
	}
	for p := 0; p < t.NumParents(n); p++ {
		if err := f.FailCable(n, p); err != nil {
			return err
		}
	}
	childUpPort := t.LabelOf(n).Digit(l)
	for c := 0; c < t.NumChildren(n); c++ {
		if err := f.FailCable(t.Child(n, c), childUpPort); err != nil {
			return err
		}
	}
	return nil
}

// RandomCableFaults fails `count` distinct cables (both directions
// each) drawn uniformly from the fabric, deterministically in seed.
func RandomCableFaults(t *Topology, seed int64, count int) (*FaultSet, error) {
	if count < 0 || count > t.NumCables() {
		return nil, fmt.Errorf("topology: cable fault count %d out of [0,%d]", count, t.NumCables())
	}
	f := NewFaultSet(t)
	rng := stats.Stream(seed, 0x0fa17)
	// Partial Fisher-Yates over the cable indices.
	perm := make([]int, t.NumCables())
	for i := range perm {
		perm[i] = i
	}
	for i := 0; i < count; i++ {
		j := i + rng.Intn(len(perm)-i)
		perm[i], perm[j] = perm[j], perm[i]
		f.failCableIndex(perm[i])
	}
	return f, nil
}

// RandomCableFaultFraction fails round(fraction · NumCables) distinct
// cables; the failure-sweep experiments express degradation this way.
func RandomCableFaultFraction(t *Topology, seed int64, fraction float64) (*FaultSet, error) {
	if fraction < 0 || fraction > 1 {
		return nil, fmt.Errorf("topology: fault fraction %g out of [0,1]", fraction)
	}
	return RandomCableFaults(t, seed, int(fraction*float64(t.NumCables())+0.5))
}

// RandomSwitchFaults fails `count` distinct switches drawn uniformly
// from levels 1..h, deterministically in seed.
func RandomSwitchFaults(t *Topology, seed int64, count int) (*FaultSet, error) {
	if count < 0 || count > t.NumSwitches() {
		return nil, fmt.Errorf("topology: switch fault count %d out of [0,%d]", count, t.NumSwitches())
	}
	f := NewFaultSet(t)
	rng := stats.Stream(seed, 0x5a1c4)
	perm := make([]int, t.NumSwitches())
	for i := range perm {
		perm[i] = i
	}
	for i := 0; i < count; i++ {
		j := i + rng.Intn(len(perm)-i)
		perm[i], perm[j] = perm[j], perm[i]
		if err := f.FailSwitch(NodeID(t.NumProcessors() + perm[i])); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// SwitchDead reports whether every link incident to switch n is down —
// the closure FailSwitch leaves behind, however it was reached (one
// FailSwitch call, or cable faults that happen to cover the switch).
// Diagnostics use it to name the node instead of listing its cables.
// Processing nodes are never "dead" (endpoint failures are workload
// changes, not fabric faults).
func (f *FaultSet) SwitchDead(n NodeID) bool {
	t := f.topo
	l, _ := t.LevelIndex(n)
	if l == 0 || f.num == 0 {
		return false
	}
	for p := 0; p < t.NumParents(n); p++ {
		if !f.down[t.UpLink(n, p)] || !f.down[t.DownLink(n, p)] {
			return false
		}
	}
	childUpPort := t.LabelOf(n).Digit(l)
	for c := 0; c < t.NumChildren(n); c++ {
		ch := t.Child(n, c)
		if !f.down[t.UpLink(ch, childUpPort)] || !f.down[t.DownLink(ch, childUpPort)] {
			return false
		}
	}
	return true
}

// PathAlive reports whether the shortest path from src to dst through
// up-port choices up crosses no failed link. It mirrors the arithmetic
// of AppendPathLinksNCA without materializing the links.
func (f *FaultSet) PathAlive(src, dst int, up []int) bool {
	t := f.topo
	k := t.checkUpChoices(src, dst, up)
	return f.pathAliveNCA(src, dst, k, up)
}

// pathAliveNCA is PathAlive for pre-validated digits (see
// AppendPathLinksNCA for the trust contract).
func (f *FaultSet) pathAliveNCA(src, dst, k int, up []int) bool {
	t := f.topo
	sHigh, dHigh := src, dst
	uLow := 0
	for j := 1; j <= k; j++ {
		upEdge := t.edgeOffset[j-1] + (sHigh*t.wprod[j-1]+uLow)*t.w[j] + up[j-1]
		downEdge := t.edgeOffset[j-1] + (dHigh*t.wprod[j-1]+uLow)*t.w[j] + up[j-1]
		if f.down[2*upEdge] || f.down[2*downEdge+1] {
			return false
		}
		sHigh /= t.m[j]
		dHigh /= t.m[j]
		uLow += up[j-1] * t.wprod[j-1]
	}
	return true
}

// Connected reports whether at least one shortest path between src and
// dst survives the faults. The search walks the up-digit prefix tree
// with pruning: the up link chosen at level j and the down link it
// forces are both determined by the digit prefix u_1..u_j, so a dead
// prefix removes its whole subtree of path indices at once. Self pairs
// are always connected.
func (f *FaultSet) Connected(src, dst int) bool {
	t := f.topo
	k := t.NCALevel(src, dst)
	if k == 0 {
		return true
	}
	if f.num == 0 {
		return true
	}
	var sHigh, dHigh [maxHeight + 1]int
	sHigh[1], dHigh[1] = src, dst
	for j := 2; j <= k; j++ {
		sHigh[j] = sHigh[j-1] / t.m[j-1]
		dHigh[j] = dHigh[j-1] / t.m[j-1]
	}
	return f.connectedFrom(1, k, 0, &sHigh, &dHigh)
}

func (f *FaultSet) connectedFrom(j, k, uLow int, sHigh, dHigh *[maxHeight + 1]int) bool {
	t := f.topo
	base := t.edgeOffset[j-1]
	for u := 0; u < t.w[j]; u++ {
		upEdge := base + (sHigh[j]*t.wprod[j-1]+uLow)*t.w[j] + u
		downEdge := base + (dHigh[j]*t.wprod[j-1]+uLow)*t.w[j] + u
		if f.down[2*upEdge] || f.down[2*downEdge+1] {
			continue
		}
		if j == k || f.connectedFrom(j+1, k, uLow+u*t.wprod[j-1], sHigh, dHigh) {
			return true
		}
	}
	return false
}

// AlivePaths returns the number of surviving shortest paths between src
// and dst (the healthy count is NumPathsBetween). Self pairs return 1.
func (f *FaultSet) AlivePaths(src, dst int) int {
	t := f.topo
	k := t.NCALevel(src, dst)
	if k == 0 {
		return 1
	}
	if f.num == 0 {
		return t.WProd(k)
	}
	var sHigh, dHigh [maxHeight + 1]int
	sHigh[1], dHigh[1] = src, dst
	for j := 2; j <= k; j++ {
		sHigh[j] = sHigh[j-1] / t.m[j-1]
		dHigh[j] = dHigh[j-1] / t.m[j-1]
	}
	return f.alivePathsFrom(1, k, 0, &sHigh, &dHigh)
}

func (f *FaultSet) alivePathsFrom(j, k, uLow int, sHigh, dHigh *[maxHeight + 1]int) int {
	t := f.topo
	base := t.edgeOffset[j-1]
	n := 0
	for u := 0; u < t.w[j]; u++ {
		upEdge := base + (sHigh[j]*t.wprod[j-1]+uLow)*t.w[j] + u
		downEdge := base + (dHigh[j]*t.wprod[j-1]+uLow)*t.w[j] + u
		if f.down[2*upEdge] || f.down[2*downEdge+1] {
			continue
		}
		if j == k {
			n++
		} else {
			n += f.alivePathsFrom(j+1, k, uLow+u*t.wprod[j-1], sHigh, dHigh)
		}
	}
	return n
}

// AlivePathBits appends the pair's surviving-path bitmap to bits[:0]:
// bit idx is set iff the shortest path with index idx crosses no failed
// link, for all NumPathsBetween indices. One call answers every
// PathAlive query for the pair, and like Connected/AlivePaths the walk
// prunes a whole subtree of path indices at the first dead prefix link
// — this is what lets a routing repair re-rank a damaged pair's
// preference order in O(X) instead of X separate link walks.
func (f *FaultSet) AlivePathBits(src, dst int, bits []uint64) []uint64 {
	t := f.topo
	k := t.NCALevel(src, dst)
	x := t.wprod[k]
	bits = bits[:0]
	for i := 0; i < (x+63)/64; i++ {
		bits = append(bits, 0)
	}
	if k == 0 {
		bits[0] = 1 // self pairs have the single trivial path
		return bits
	}
	if f.num == 0 {
		for i := range bits {
			bits[i] = ^uint64(0)
		}
		if r := x & 63; r != 0 {
			bits[len(bits)-1] = 1<<uint(r) - 1
		}
		return bits
	}
	var sHigh, dHigh [maxHeight + 1]int
	sHigh[1], dHigh[1] = src, dst
	for j := 2; j <= k; j++ {
		sHigh[j] = sHigh[j-1] / t.m[j-1]
		dHigh[j] = dHigh[j-1] / t.m[j-1]
	}
	f.alivePathBitsFrom(1, k, 0, 0, x, &sHigh, &dHigh, bits)
	return bits
}

// alivePathBitsFrom sets the bit of every surviving path index below
// the digit prefix u_1..u_{j-1}. idx carries the prefix's contribution
// to the path index (u_1 is the most significant digit, mirroring the
// decode in AppendPathSetLinks); stride is the index weight of the
// digit chosen at this level before division, i.e. Π_{i=j..k} w_i.
func (f *FaultSet) alivePathBitsFrom(j, k, uLow, idx, stride int, sHigh, dHigh *[maxHeight + 1]int, bits []uint64) {
	t := f.topo
	base := t.edgeOffset[j-1]
	stride /= t.w[j]
	for u := 0; u < t.w[j]; u++ {
		upEdge := base + (sHigh[j]*t.wprod[j-1]+uLow)*t.w[j] + u
		downEdge := base + (dHigh[j]*t.wprod[j-1]+uLow)*t.w[j] + u
		if f.down[2*upEdge] || f.down[2*downEdge+1] {
			continue
		}
		if j == k {
			bits[(idx+u)>>6] |= 1 << (uint(idx+u) & 63)
		} else {
			f.alivePathBitsFrom(j+1, k, uLow+u*t.wprod[j-1], idx+u*stride, stride, sHigh, dHigh, bits)
		}
	}
}

// DisconnectedFraction returns the fraction of ordered distinct SD
// pairs with no surviving shortest path — the traffic a repaired
// oblivious routing must report as undeliverable.
func (f *FaultSet) DisconnectedFraction() float64 {
	n := f.topo.NumProcessors()
	if n < 2 || f.num == 0 {
		return 0
	}
	bad := 0
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src != dst && !f.Connected(src, dst) {
				bad++
			}
		}
	}
	return float64(bad) / float64(n*(n-1))
}

// String summarizes the fault set.
func (f *FaultSet) String() string {
	return fmt.Sprintf("faults(%d/%d links down)", f.num, len(f.down))
}
