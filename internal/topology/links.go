package topology

import "fmt"

// Links are identified by the undirected edge they run along plus a
// direction. An edge is named by its lower endpoint (the child) and the
// child's up-port number; edges between levels l and l+1 are numbered
// densely after all edges below them.

// NumLinks returns the number of directed links in the topology
// (twice the cable count).
func (t *Topology) NumLinks() int { return 2 * t.numEdges }

// NumCables returns the number of undirected child-parent connections.
func (t *Topology) NumCables() int { return t.numEdges }

// UpLink returns the directed link from child upward through its up
// port p.
func (t *Topology) UpLink(child NodeID, p int) LinkID {
	return LinkID(2 * t.edgeIndex(child, p))
}

// DownLink returns the directed link from the parent reached through
// child's up port p down to child.
func (t *Topology) DownLink(child NodeID, p int) LinkID {
	return LinkID(2*t.edgeIndex(child, p) + 1)
}

func (t *Topology) edgeIndex(child NodeID, p int) int {
	l, idx := t.levelIndex(child)
	if l == t.h {
		panic(fmt.Sprintf("topology: node %d is a top switch and has no up links", child))
	}
	if p < 0 || p >= t.w[l+1] {
		panic(fmt.Sprintf("topology: up port %d out of range [0,%d)", p, t.w[l+1]))
	}
	return t.edgeOffset[l] + idx*t.w[l+1] + p
}

// LinkEndpoints returns the origin and destination nodes of a directed
// link.
func (t *Topology) LinkEndpoints(link LinkID) (from, to NodeID) {
	child, parent, up := t.linkParts(link)
	if up {
		return child, parent
	}
	return parent, child
}

// LinkIsUp reports whether the link points from a child to a parent.
func (t *Topology) LinkIsUp(link LinkID) bool {
	return int(link)%2 == 0
}

// LinkTier returns the level of the link's lower endpoint: links
// between levels l and l+1 have tier l. Tier 0 links touch processing
// nodes.
func (t *Topology) LinkTier(link LinkID) int {
	edge := int(link) / 2
	t.checkEdge(edge)
	for l := t.h - 1; l >= 0; l-- {
		if edge >= t.edgeOffset[l] {
			return l
		}
	}
	panic("unreachable")
}

func (t *Topology) checkEdge(edge int) {
	if edge < 0 || edge >= t.numEdges {
		panic(fmt.Sprintf("topology: edge %d out of range [0,%d)", edge, t.numEdges))
	}
}

func (t *Topology) linkParts(link LinkID) (child, parent NodeID, up bool) {
	if link < 0 || int(link) >= 2*t.numEdges {
		panic(fmt.Sprintf("topology: link %d out of range [0,%d)", link, 2*t.numEdges))
	}
	edge := int(link) / 2
	up = int(link)%2 == 0
	l := t.h - 1
	for ; l >= 0; l-- {
		if edge >= t.edgeOffset[l] {
			break
		}
	}
	rel := edge - t.edgeOffset[l]
	idx := rel / t.w[l+1]
	p := rel % t.w[l+1]
	child = NodeID(t.levelOffset[l] + idx)
	parent = t.Parent(child, p)
	return child, parent, up
}

// CablesAtTier returns the number of undirected cables between levels
// l and l+1 (0 <= l < h).
func (t *Topology) CablesAtTier(l int) int {
	if l < 0 || l >= t.h {
		panic(fmt.Sprintf("topology: tier %d out of range [0,%d)", l, t.h))
	}
	return t.levelCount[l] * t.w[l+1]
}

// LinkString renders a link as "up(child->parent)" or
// "down(parent->child)" with tuple labels, for debugging.
func (t *Topology) LinkString(link LinkID) string {
	child, parent, up := t.linkParts(link)
	if up {
		return fmt.Sprintf("up(%s->%s)", t.LabelOf(child), t.LabelOf(parent))
	}
	return fmt.Sprintf("down(%s->%s)", t.LabelOf(parent), t.LabelOf(child))
}
