package topology

import (
	"testing"
)

// decodeUp expands a canonical path index into up digits (u_1 most
// significant), mirroring the routing convention.
func decodeUp(t *Topology, k, idx int) []int {
	up := make([]int, k)
	for j := k; j >= 1; j-- {
		up[j-1] = idx % t.W(j)
		idx /= t.W(j)
	}
	return up
}

func TestFaultSetBasics(t *testing.T) {
	tp := MustNew(2, []int{4, 4}, []int{1, 4})
	f := NewFaultSet(tp)
	if !f.Empty() || f.NumDown() != 0 {
		t.Fatal("new fault set not empty")
	}
	if err := f.FailLink(3); err != nil {
		t.Fatal(err)
	}
	if err := f.FailLink(3); err != nil {
		t.Fatal(err)
	}
	if f.NumDown() != 1 {
		t.Fatalf("double fail counted twice: %d", f.NumDown())
	}
	if !f.LinkDown(3) || f.LinkDown(4) {
		t.Fatal("LinkDown wrong")
	}
	if err := f.FailLink(LinkID(tp.NumLinks())); err == nil {
		t.Fatal("out-of-range link accepted")
	}
	if err := f.FailLink(-1); err == nil {
		t.Fatal("negative link accepted")
	}
	if got := f.DownLinks(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("DownLinks = %v", got)
	}
}

func TestFailCableBothDirections(t *testing.T) {
	tp := MustNew(2, []int{4, 4}, []int{1, 4})
	f := NewFaultSet(tp)
	leaf := tp.NodeAt(1, 0)
	if err := f.FailCable(leaf, 2); err != nil {
		t.Fatal(err)
	}
	if !f.LinkDown(tp.UpLink(leaf, 2)) || !f.LinkDown(tp.DownLink(leaf, 2)) {
		t.Fatal("cable failure missed a direction")
	}
	if f.NumDown() != 2 {
		t.Fatalf("NumDown = %d, want 2", f.NumDown())
	}
}

func TestFailSwitch(t *testing.T) {
	tp := MustNew(2, []int{4, 4}, []int{1, 4})
	f := NewFaultSet(tp)
	if err := f.FailSwitch(tp.Processor(0)); err == nil {
		t.Fatal("processor accepted as switch")
	}
	leaf := tp.NodeAt(1, 1)
	if err := f.FailSwitch(leaf); err != nil {
		t.Fatal(err)
	}
	// Every incident link in both directions: parents + children.
	want := 2 * (tp.NumParents(leaf) + tp.NumChildren(leaf))
	if f.NumDown() != want {
		t.Fatalf("NumDown = %d, want %d", f.NumDown(), want)
	}
	for p := 0; p < tp.NumParents(leaf); p++ {
		if !f.LinkDown(tp.UpLink(leaf, p)) || !f.LinkDown(tp.DownLink(leaf, p)) {
			t.Fatalf("parent cable %d survived switch failure", p)
		}
	}
}

// TestPathAliveMatchesLinkScan: PathAlive's closed-form liveness check
// agrees with scanning the path's materialized links on every path of
// every pair, across random fault draws and both tree heights.
func TestPathAliveMatchesLinkScan(t *testing.T) {
	topos := []*Topology{
		MustNew(2, []int{4, 4}, []int{1, 4}),
		MustNew(3, []int{2, 2, 4}, []int{1, 2, 2}),
	}
	for _, tp := range topos {
		for seed := int64(1); seed <= 3; seed++ {
			f, err := RandomCableFaults(tp, seed, tp.NumCables()/10+1)
			if err != nil {
				t.Fatal(err)
			}
			n := tp.NumProcessors()
			for src := 0; src < n; src++ {
				for dst := 0; dst < n; dst++ {
					if src == dst {
						continue
					}
					k := tp.NCALevel(src, dst)
					for idx := 0; idx < tp.WProd(k); idx++ {
						up := decodeUp(tp, k, idx)
						want := true
						for _, l := range tp.PathLinks(src, dst, up) {
							if f.LinkDown(l) {
								want = false
								break
							}
						}
						if got := f.PathAlive(src, dst, up); got != want {
							t.Fatalf("%s seed=%d pair (%d,%d) idx=%d: PathAlive=%v, link scan=%v",
								tp, seed, src, dst, idx, got, want)
						}
					}
				}
			}
		}
	}
}

// TestConnectedAndAlivePaths: the pruned connectivity DFS and the
// surviving-path count agree with exhaustive enumeration over PathAlive.
func TestConnectedAndAlivePaths(t *testing.T) {
	tp := MustNew(3, []int{2, 2, 4}, []int{1, 2, 2})
	for seed := int64(1); seed <= 4; seed++ {
		f, err := RandomCableFaults(tp, seed, 6)
		if err != nil {
			t.Fatal(err)
		}
		n := tp.NumProcessors()
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				if src == dst {
					continue
				}
				k := tp.NCALevel(src, dst)
				alive := 0
				for idx := 0; idx < tp.WProd(k); idx++ {
					if f.PathAlive(src, dst, decodeUp(tp, k, idx)) {
						alive++
					}
				}
				if got := f.AlivePaths(src, dst); got != alive {
					t.Fatalf("seed=%d pair (%d,%d): AlivePaths=%d, enumeration=%d", seed, src, dst, got, alive)
				}
				if got := f.Connected(src, dst); got != (alive > 0) {
					t.Fatalf("seed=%d pair (%d,%d): Connected=%v with %d alive paths", seed, src, dst, got, alive)
				}
			}
		}
	}
}

// TestAlivePathBitsMatchesPathAlive: the one-shot surviving-path bitmap
// agrees with PathAlive for every index of every pair, across fault
// draws, both tree heights and the empty fault set (all bits set).
func TestAlivePathBitsMatchesPathAlive(t *testing.T) {
	topos := []*Topology{
		MustNew(2, []int{4, 4}, []int{1, 4}),
		MustNew(3, []int{2, 2, 4}, []int{1, 2, 2}),
	}
	for _, tp := range topos {
		for seed := int64(0); seed <= 3; seed++ {
			count := tp.NumCables()/10 + 1
			if seed == 0 {
				count = 0 // healthy fabric: every path alive
			}
			f, err := RandomCableFaults(tp, seed, count)
			if err != nil {
				t.Fatal(err)
			}
			n := tp.NumProcessors()
			var bits []uint64
			for src := 0; src < n; src++ {
				for dst := 0; dst < n; dst++ {
					if src == dst {
						continue
					}
					k := tp.NCALevel(src, dst)
					x := tp.WProd(k)
					bits = f.AlivePathBits(src, dst, bits)
					if len(bits) != (x+63)/64 {
						t.Fatalf("%s pair (%d,%d): bitmap has %d words for %d paths", tp, src, dst, len(bits), x)
					}
					for idx := 0; idx < x; idx++ {
						got := bits[idx>>6]&(1<<(uint(idx)&63)) != 0
						want := f.PathAlive(src, dst, decodeUp(tp, k, idx))
						if got != want {
							t.Fatalf("%s seed=%d pair (%d,%d) idx=%d: bitmap=%v, PathAlive=%v",
								tp, seed, src, dst, idx, got, want)
						}
					}
				}
			}
		}
	}
}

func TestRandomCableFaultsDeterministicAndCounted(t *testing.T) {
	tp := MustNew(2, []int{4, 8}, []int{1, 4})
	a, err := RandomCableFaults(tp, 7, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomCableFaults(tp, 7, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumDown() != 10 { // 5 cables, both directions
		t.Fatalf("NumDown = %d, want 10", a.NumDown())
	}
	al, bl := a.DownLinks(), b.DownLinks()
	for i := range al {
		if al[i] != bl[i] {
			t.Fatal("same seed drew different faults")
		}
	}
	c, err := RandomCableFaults(tp, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	cl := c.DownLinks()
	for i := range al {
		if al[i] != cl[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds drew identical faults")
	}
	if _, err := RandomCableFaults(tp, 1, tp.NumCables()+1); err == nil {
		t.Fatal("over-count accepted")
	}
}

func TestRandomCableFaultFraction(t *testing.T) {
	tp := MustNew(2, []int{4, 8}, []int{1, 4})
	f, err := RandomCableFaultFraction(tp, 3, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	want := int(0.1*float64(tp.NumCables()) + 0.5)
	if f.NumDown() != 2*want {
		t.Fatalf("NumDown = %d, want %d", f.NumDown(), 2*want)
	}
	if _, err := RandomCableFaultFraction(tp, 3, 1.5); err == nil {
		t.Fatal("fraction > 1 accepted")
	}
	zero, err := RandomCableFaultFraction(tp, 3, 0)
	if err != nil || !zero.Empty() {
		t.Fatalf("zero fraction: %v %v", zero, err)
	}
}

func TestDisconnectedFraction(t *testing.T) {
	tp := MustNew(2, []int{4, 4}, []int{1, 4})
	f := NewFaultSet(tp)
	if f.DisconnectedFraction() != 0 {
		t.Fatal("healthy fabric reports disconnections")
	}
	// Cut every up cable of leaf switch 0: its 4 processors lose all
	// 12 outside peers, in both directions.
	leaf := tp.NodeAt(1, 0)
	for p := 0; p < tp.NumParents(leaf); p++ {
		if err := f.FailCable(leaf, p); err != nil {
			t.Fatal(err)
		}
	}
	n := tp.NumProcessors()
	want := float64(2*4*(n-4)) / float64(n*(n-1))
	if got := f.DisconnectedFraction(); got != want {
		t.Fatalf("DisconnectedFraction = %g, want %g", got, want)
	}
}
