package topology

import (
	"testing"
	"testing/quick"
)

func testTrees(t *testing.T) []*Topology {
	t.Helper()
	var out []*Topology
	for _, name := range PaperTopologies() {
		tp, err := FromPaper(name)
		if err != nil {
			t.Fatalf("FromPaper(%s): %v", name, err)
		}
		out = append(out, tp)
	}
	// A few irregular trees to exercise non-uniform arities.
	out = append(out,
		MustNew(1, []int{5}, []int{3}),
		MustNew(2, []int{3, 2}, []int{2, 3}),
		MustNew(3, []int{2, 3, 2}, []int{2, 1, 3}),
		MustNew(4, []int{2, 2, 2, 2}, []int{1, 2, 2, 2}),
	)
	return out
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		h    int
		m, w []int
	}{
		{0, nil, nil},
		{2, []int{2}, []int{1, 1}},
		{2, []int{2, 2}, []int{1}},
		{1, []int{0}, []int{1}},
		{1, []int{2}, []int{0}},
		{1, []int{-3}, []int{1}},
		{17, make([]int, 17), make([]int, 17)},
	}
	for _, c := range cases {
		if _, err := New(c.h, c.m, c.w); err == nil {
			t.Errorf("New(%d,%v,%v) should fail", c.h, c.m, c.w)
		}
	}
}

func TestPaperCounts(t *testing.T) {
	cases := []struct {
		name           PaperTopology
		n, top, maxPth int
	}{
		{Paper8Port2Tree, 32, 4, 4},
		{Paper16Port2Tree, 128, 8, 8},
		{Paper24Port2Tree, 288, 12, 12},
		{Paper8Port3Tree, 128, 16, 16},
		{Paper16Port3Tree, 1024, 64, 64},
		{Paper24Port3Tree, 3456, 144, 144},
		{PaperFigure3Tree, 64, 8, 8},
	}
	for _, c := range cases {
		tp, err := FromPaper(c.name)
		if err != nil {
			t.Fatal(err)
		}
		if got := tp.NumProcessors(); got != c.n {
			t.Errorf("%s: NumProcessors=%d want %d", c.name, got, c.n)
		}
		if got := tp.NumTopSwitches(); got != c.top {
			t.Errorf("%s: NumTopSwitches=%d want %d", c.name, got, c.top)
		}
		if got := tp.MaxPaths(); got != c.maxPth {
			t.Errorf("%s: MaxPaths=%d want %d", c.name, got, c.maxPth)
		}
	}
}

func TestStringNotation(t *testing.T) {
	tp := MustNew(3, []int{4, 4, 8}, []int{1, 4, 4})
	want := "XGFT(3; 4,4,8; 1,4,4)"
	if got := tp.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestLevelCountsFormula(t *testing.T) {
	for _, tp := range testTrees(t) {
		total := 0
		for l := 0; l <= tp.H(); l++ {
			mp := 1
			for i := l + 1; i <= tp.H(); i++ {
				mp *= tp.M(i)
			}
			wp := 1
			for i := 1; i <= l; i++ {
				wp *= tp.W(i)
			}
			if got := tp.NodesAtLevel(l); got != mp*wp {
				t.Errorf("%s level %d: NodesAtLevel=%d want %d", tp, l, got, mp*wp)
			}
			total += mp * wp
		}
		if tp.NumNodes() != total {
			t.Errorf("%s: NumNodes=%d want %d", tp, tp.NumNodes(), total)
		}
		if tp.NumProcessors()+tp.NumSwitches() != total {
			t.Errorf("%s: processors+switches != nodes", tp)
		}
	}
}

func TestLabelRoundTrip(t *testing.T) {
	for _, tp := range testTrees(t) {
		for n := NodeID(0); int(n) < tp.NumNodes(); n++ {
			lb := tp.LabelOf(n)
			if back := tp.NodeOf(lb); back != n {
				t.Fatalf("%s: NodeOf(LabelOf(%d)) = %d (label %s)", tp, n, back, lb)
			}
			l, idx := tp.LevelIndex(n)
			if lb.Level != l {
				t.Fatalf("%s: label level %d != %d", tp, lb.Level, l)
			}
			if tp.NodeAt(l, idx) != n {
				t.Fatalf("%s: NodeAt(LevelIndex(%d)) mismatch", tp, n)
			}
		}
	}
}

// TestAdjacencyConsistency checks the paper's connection rule: A at
// level l connects to B at level l+1 iff their labels match at all
// digits except position l+1.
func TestAdjacencyConsistency(t *testing.T) {
	for _, tp := range testTrees(t) {
		if tp.NumNodes() > 2000 {
			continue // keep exhaustive check cheap
		}
		for n := NodeID(0); int(n) < tp.NumNodes(); n++ {
			l, _ := tp.LevelIndex(n)
			lbn := tp.LabelOf(n)
			if l < tp.H() {
				for p := 0; p < tp.NumParents(n); p++ {
					par := tp.Parent(n, p)
					lbp := tp.LabelOf(par)
					if lbp.Level != l+1 {
						t.Fatalf("%s: parent level %d want %d", tp, lbp.Level, l+1)
					}
					for i := 1; i <= tp.H(); i++ {
						if i == l+1 {
							if lbp.Digit(i) != p {
								t.Fatalf("%s: parent digit a_%d=%d want port %d", tp, i, lbp.Digit(i), p)
							}
						} else if lbp.Digit(i) != lbn.Digit(i) {
							t.Fatalf("%s: parent digit a_%d differs: %s vs %s", tp, i, lbn, lbp)
						}
					}
					// Parent/Child must be inverses.
					if back := tp.Child(par, lbn.Digit(l+1)); back != n {
						t.Fatalf("%s: Child(Parent(%d,%d)) = %d", tp, n, p, back)
					}
					if tp.UpPortOf(n, par) != p {
						t.Fatalf("%s: UpPortOf mismatch", tp)
					}
				}
			}
			if l > 0 {
				for c := 0; c < tp.NumChildren(n); c++ {
					ch := tp.Child(n, c)
					lc, _ := tp.LevelIndex(ch)
					if lc != l-1 {
						t.Fatalf("%s: child level %d want %d", tp, lc, l-1)
					}
					if back := tp.Parent(ch, lbn.Digit(l)); back != n {
						t.Fatalf("%s: Parent(Child(%d,%d)) = %d want %d", tp, n, c, back, n)
					}
				}
			}
		}
	}
}

func TestPortNumbering(t *testing.T) {
	tp := MustNew(3, []int{3, 2, 2}, []int{1, 2, 3})
	for n := NodeID(0); int(n) < tp.NumNodes(); n++ {
		l, _ := tp.LevelIndex(n)
		wantUp, wantDown := 0, 0
		if l < tp.H() {
			wantUp = tp.W(l + 1)
		}
		if l > 0 {
			wantDown = tp.M(l)
		}
		if tp.NumParents(n) != wantUp || tp.NumChildren(n) != wantDown {
			t.Fatalf("node %d level %d: parents=%d children=%d want %d,%d",
				n, l, tp.NumParents(n), tp.NumChildren(n), wantUp, wantDown)
		}
		if tp.NumPorts(n) != wantUp+wantDown {
			t.Fatalf("node %d: NumPorts=%d", n, tp.NumPorts(n))
		}
		// PortPeer must agree with Parent/Child for every port.
		for p := 0; p < tp.NumPorts(n); p++ {
			peer := tp.PortPeer(n, p)
			if p < wantUp {
				if peer != tp.Parent(n, p) {
					t.Fatalf("node %d port %d: peer mismatch (up)", n, p)
				}
			} else if peer != tp.Child(n, p-wantUp) {
				t.Fatalf("node %d port %d: peer mismatch (down)", n, p)
			}
		}
		// Down port numbering per paper: top level starts at 0,
		// others after the up ports.
		if l > 0 {
			base := wantUp
			for c := 0; c < wantDown; c++ {
				if got := tp.DownPortTo(n, c); got != base+c {
					t.Fatalf("node %d: DownPortTo(%d)=%d want %d", n, c, got, base+c)
				}
			}
		}
	}
}

func TestLinkIdentities(t *testing.T) {
	for _, tp := range testTrees(t) {
		if tp.NumNodes() > 2000 {
			continue
		}
		// Count cables per tier and validate the dense link space.
		wantCables := 0
		for l := 0; l < tp.H(); l++ {
			wantCables += tp.NodesAtLevel(l) * tp.W(l+1)
			if tp.CablesAtTier(l) != tp.NodesAtLevel(l)*tp.W(l+1) {
				t.Fatalf("%s: CablesAtTier(%d)", tp, l)
			}
		}
		if tp.NumCables() != wantCables || tp.NumLinks() != 2*wantCables {
			t.Fatalf("%s: cables=%d links=%d want %d/%d", tp, tp.NumCables(), tp.NumLinks(), wantCables, 2*wantCables)
		}
		seen := make(map[LinkID]bool)
		for n := NodeID(0); int(n) < tp.NumNodes(); n++ {
			l, _ := tp.LevelIndex(n)
			if l == tp.H() {
				continue
			}
			for p := 0; p < tp.NumParents(n); p++ {
				upL := tp.UpLink(n, p)
				dnL := tp.DownLink(n, p)
				if seen[upL] || seen[dnL] {
					t.Fatalf("%s: duplicate link id", tp)
				}
				seen[upL], seen[dnL] = true, true
				if !tp.LinkIsUp(upL) || tp.LinkIsUp(dnL) {
					t.Fatalf("%s: direction flags wrong", tp)
				}
				if tp.LinkTier(upL) != l || tp.LinkTier(dnL) != l {
					t.Fatalf("%s: LinkTier wrong: %d want %d", tp, tp.LinkTier(upL), l)
				}
				from, to := tp.LinkEndpoints(upL)
				if from != n || to != tp.Parent(n, p) {
					t.Fatalf("%s: up endpoints wrong", tp)
				}
				from, to = tp.LinkEndpoints(dnL)
				if to != n || from != tp.Parent(n, p) {
					t.Fatalf("%s: down endpoints wrong", tp)
				}
			}
		}
		if len(seen) != tp.NumLinks() {
			t.Fatalf("%s: enumerated %d links, want %d", tp, len(seen), tp.NumLinks())
		}
	}
}

func TestNCALevel(t *testing.T) {
	for _, tp := range testTrees(t) {
		n := tp.NumProcessors()
		if n > 300 {
			n = 300
		}
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				k := tp.NCALevel(s, d)
				if (s == d) != (k == 0) {
					t.Fatalf("%s: NCALevel(%d,%d)=%d", tp, s, d, k)
				}
				if k != tp.NCALevel(d, s) {
					t.Fatalf("%s: NCALevel not symmetric", tp)
				}
				// Cross-check with label digits.
				ls, ld := tp.LabelOf(tp.Processor(s)), tp.LabelOf(tp.Processor(d))
				want := 0
				for i := 1; i <= tp.H(); i++ {
					if ls.Digit(i) != ld.Digit(i) {
						want = i
					}
				}
				if k != want {
					t.Fatalf("%s: NCALevel(%d,%d)=%d want %d", tp, s, d, k, want)
				}
				if tp.NumPathsBetween(s, d) != tp.WProd(k) {
					t.Fatalf("%s: NumPathsBetween(%d,%d) != WProd(%d)", tp, s, d, k)
				}
			}
		}
	}
}

// TestPathRealization validates PathNodes/PathLinks against each other
// and against Parent/Child traversal for every up-digit combination on
// small trees.
func TestPathRealization(t *testing.T) {
	for _, tp := range testTrees(t) {
		n := tp.NumProcessors()
		if n > 72 {
			n = 72
		}
		var buf []LinkID
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				if s == d {
					continue
				}
				k := tp.NCALevel(s, d)
				up := make([]int, k)
				for {
					nodes := tp.PathNodes(s, d, up)
					if len(nodes) != 2*k+1 {
						t.Fatalf("%s: path node count %d want %d", tp, len(nodes), 2*k+1)
					}
					if tp.ProcessorID(nodes[0]) != s || tp.ProcessorID(nodes[len(nodes)-1]) != d {
						t.Fatalf("%s: path endpoints wrong", tp)
					}
					buf = tp.AppendPathLinks(buf[:0], s, d, up)
					if len(buf) != 2*k {
						t.Fatalf("%s: path link count %d want %d", tp, len(buf), 2*k)
					}
					for i, link := range buf {
						from, to := tp.LinkEndpoints(link)
						if from != nodes[i] || to != nodes[i+1] {
							t.Fatalf("%s (%d->%d up=%v): link %d is %s, want %v->%v",
								tp, s, d, up, i, tp.LinkString(link), nodes[i], nodes[i+1])
						}
						if up := tp.LinkIsUp(link); up != (i < k) {
							t.Fatalf("%s: link %d direction wrong", tp, i)
						}
					}
					// Advance mixed-radix odometer over up digits.
					j := 0
					for ; j < k; j++ {
						up[j]++
						if up[j] < tp.W(j+1) {
							break
						}
						up[j] = 0
					}
					if j == k {
						break
					}
				}
			}
		}
	}
}

func TestSubtreeHelpers(t *testing.T) {
	tp := MustNew(3, []int{4, 4, 4}, []int{1, 4, 2})
	if tp.TL(0) != 1 || tp.TL(1) != 4 || tp.TL(2) != 8 {
		t.Fatalf("TL wrong: %d %d %d", tp.TL(0), tp.TL(1), tp.TL(2))
	}
	for p := 0; p < tp.NumProcessors(); p++ {
		if tp.SubtreeOfProcessor(p, 0) != p {
			t.Fatal("height-0 subtree should be the processor itself")
		}
		if tp.SubtreeOfProcessor(p, tp.H()) != 0 {
			t.Fatal("height-h subtree should be 0")
		}
		if tp.SubtreeOfProcessor(p, 1) != p/4 {
			t.Fatal("height-1 subtree wrong")
		}
	}
	if tp.ProcessorsPerSubtree(1) != 4 || tp.ProcessorsPerSubtree(2) != 16 {
		t.Fatal("ProcessorsPerSubtree wrong")
	}
	// NCA level k means same height-k subtree but different height-(k-1)
	// subtrees.
	for s := 0; s < tp.NumProcessors(); s++ {
		for d := 0; d < tp.NumProcessors(); d++ {
			if s == d {
				continue
			}
			k := tp.NCALevel(s, d)
			if tp.SubtreeOfProcessor(s, k) != tp.SubtreeOfProcessor(d, k) {
				t.Fatalf("NCA(%d,%d)=%d but different height-%d subtrees", s, d, k, k)
			}
			if tp.SubtreeOfProcessor(s, k-1) == tp.SubtreeOfProcessor(d, k-1) {
				t.Fatalf("NCA(%d,%d)=%d but same height-%d subtrees", s, d, k, k-1)
			}
		}
	}
}

func TestVariantEquivalences(t *testing.T) {
	// k-ary n-tree with k=2,n=3 has 8 processors and 4 top switches.
	tp, err := KAryNTree(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tp.NumProcessors() != 8 || tp.NumTopSwitches() != 4 {
		t.Fatalf("2-ary 3-tree: %d procs %d tops", tp.NumProcessors(), tp.NumTopSwitches())
	}
	// GFT(2;3,2): 9 processors, 4 top switches.
	g, err := GFT(2, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumProcessors() != 9 || g.NumTopSwitches() != 4 {
		t.Fatalf("GFT(2;3,2): %d procs %d tops", g.NumProcessors(), g.NumTopSwitches())
	}
	if _, err := MPortNTree(7, 2); err == nil {
		t.Error("odd m must be rejected")
	}
	if _, err := MPortNTree(8, 0); err == nil {
		t.Error("n=0 must be rejected")
	}
	if _, err := KAryNTree(0, 2); err == nil {
		t.Error("k=0 must be rejected")
	}
	if _, err := FromPaper("nope"); err == nil {
		t.Error("unknown paper topology must be rejected")
	}
}

func TestEqual(t *testing.T) {
	a := MustNew(2, []int{4, 8}, []int{1, 4})
	b := MustNew(2, []int{4, 8}, []int{1, 4})
	c := MustNew(2, []int{4, 8}, []int{1, 3})
	d := MustNew(1, []int{4}, []int{1})
	if !a.Equal(b) || a.Equal(c) || a.Equal(d) {
		t.Error("Equal misbehaves")
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	tp := MustNew(2, []int{3, 2}, []int{1, 2})
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("Level range", func() { tp.Level(NodeID(tp.NumNodes())) })
	mustPanic("Level negative", func() { tp.Level(-1) })
	mustPanic("Processor range", func() { tp.Processor(tp.NumProcessors()) })
	mustPanic("ProcessorID switch", func() { tp.ProcessorID(tp.NodeAt(1, 0)) })
	mustPanic("Parent of top", func() { tp.Parent(tp.NodeAt(2, 0), 0) })
	mustPanic("Parent port range", func() { tp.Parent(tp.Processor(0), 1) })
	mustPanic("Child of processor", func() { tp.Child(tp.Processor(0), 0) })
	mustPanic("Child range", func() { tp.Child(tp.NodeAt(1, 0), 3) })
	mustPanic("M range", func() { tp.M(0) })
	mustPanic("W range", func() { tp.W(3) })
	mustPanic("NodeAt range", func() { tp.NodeAt(0, 6) })
	mustPanic("TL range", func() { tp.TL(2) })
	mustPanic("bad up choices", func() { tp.PathLinks(0, 5, []int{0}) })
	mustPanic("up choice range", func() { tp.PathLinks(0, 5, []int{0, 2}) })
	mustPanic("DownPortTo on processor", func() { tp.DownPortTo(tp.Processor(0), 0) })
	mustPanic("PortPeer range", func() { tp.PortPeer(tp.Processor(0), 5) })
	mustPanic("NCALevel range", func() { tp.NCALevel(0, 99) })
	mustPanic("UpPortOf non-parent", func() { tp.UpPortOf(tp.Processor(0), tp.NodeAt(2, 0)) })
}

// TestRandomTreesQuick: property-based check over random arities —
// label round trips, parent/child inversion and path realization hold
// on arbitrary small XGFTs, not just the paper's.
func TestRandomTreesQuick(t *testing.T) {
	f := func(h8, m1, m2, m3, w1, w2, w3 uint8, sd uint16) bool {
		h := int(h8)%3 + 1
		ms := []int{int(m1)%3 + 1, int(m2)%3 + 1, int(m3)%3 + 1}[:h]
		ws := []int{int(w1)%3 + 1, int(w2)%3 + 1, int(w3)%3 + 1}[:h]
		tp, err := New(h, ms, ws)
		if err != nil {
			return true
		}
		// Label round trip on a sampled node.
		n := NodeID(int(sd) % tp.NumNodes())
		if tp.NodeOf(tp.LabelOf(n)) != n {
			return false
		}
		// Parent/child inversion.
		l, _ := tp.LevelIndex(n)
		if l < tp.H() {
			for p := 0; p < tp.NumParents(n); p++ {
				par := tp.Parent(n, p)
				if tp.Child(par, tp.LabelOf(n).Digit(l+1)) != n {
					return false
				}
			}
		}
		// Path realization between two sampled processors.
		np := tp.NumProcessors()
		src, dst := int(sd)%np, (int(sd)*7+3)%np
		if src == dst {
			return true
		}
		k := tp.NCALevel(src, dst)
		up := make([]int, k)
		for j := 1; j <= k; j++ {
			up[j-1] = (int(sd) + j) % tp.W(j)
		}
		nodes := tp.PathNodes(src, dst, up)
		links := tp.PathLinks(src, dst, up)
		if len(nodes) != 2*k+1 || len(links) != 2*k {
			return false
		}
		for i, link := range links {
			from, to := tp.LinkEndpoints(link)
			if from != nodes[i] || to != nodes[i+1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
