package topology

import "fmt"

// A shortest path between processing nodes src and dst whose NCA is at
// level k is fully determined by the k up-port choices u_1..u_k taken
// at levels 0..k-1 (Property 1): the downward half is forced by dst.
// These helpers realize such a path as nodes or directed links.

// checkUpChoices validates the up-port digit slice for an (src,dst)
// pair and returns the NCA level.
func (t *Topology) checkUpChoices(src, dst int, up []int) int {
	k := t.NCALevel(src, dst)
	if len(up) != k {
		panic(fmt.Sprintf("topology: pair (%d,%d) has NCA level %d, got %d up choices", src, dst, k, len(up)))
	}
	for j := 1; j <= k; j++ {
		if up[j-1] < 0 || up[j-1] >= t.w[j] {
			panic(fmt.Sprintf("topology: up choice u_%d=%d out of range [0,%d)", j, up[j-1], t.w[j]))
		}
	}
	return k
}

// PathNodes returns the 2k+1 nodes of the shortest path from src to
// dst through up-port choices up (up[j-1] is the port used from level
// j-1 to level j). For src == dst it returns the single node.
func (t *Topology) PathNodes(src, dst int, up []int) []NodeID {
	k := t.checkUpChoices(src, dst, up)
	nodes := make([]NodeID, 0, 2*k+1)
	n := t.Processor(src)
	nodes = append(nodes, n)
	for j := 1; j <= k; j++ {
		n = t.Parent(n, up[j-1])
		nodes = append(nodes, n)
	}
	// Down phase: at level j the child digit a_j must become dst's
	// digit d_j.
	d := make([]int, k+1)
	rest := dst
	for i := 1; i <= k; i++ {
		d[i] = rest % t.m[i]
		rest /= t.m[i]
	}
	for j := k; j >= 1; j-- {
		n = t.Child(n, d[j])
		nodes = append(nodes, n)
	}
	if got := t.ProcessorID(n); got != dst {
		panic(fmt.Sprintf("topology: internal error, path ended at %d, want %d", got, dst))
	}
	return nodes
}

// AppendPathLinks appends the 2k directed links of the shortest path
// from src to dst through up-port choices up to buf and returns the
// extended slice. It allocates nothing when buf has capacity. The
// links appear in traversal order: k up links then k down links.
//
// The implementation is pure arithmetic (no Parent/Child calls): the
// within-level index of the up-path node at level l is
// sHigh_l·WProd(l) + uLow_l where sHigh_l strips l low m-digits from
// src and uLow_l packs u_1..u_l little-endian over bases w_1..w_l; the
// down-path node swaps in dst's high digits.
func (t *Topology) AppendPathLinks(buf []LinkID, src, dst int, up []int) []LinkID {
	k := t.checkUpChoices(src, dst, up)
	return t.AppendPathLinksNCA(buf, src, dst, k, up)
}

// AppendPathLinksNCA is AppendPathLinks for callers that have already
// established k = NCALevel(src, dst) and that the k digits in up are in
// range (e.g. by decoding a validated canonical path index). It skips
// the revalidation, which matters when expanding K paths for each of N
// pairs per sampled permutation; passing untrusted arguments corrupts
// the returned link IDs.
func (t *Topology) AppendPathLinksNCA(buf []LinkID, src, dst, k int, up []int) []LinkID {
	sHigh, dHigh := src, dst
	uLow := 0
	// Up links: tier j-1 edge = edgeOffset[j-1] + idx_{j-1}·w_j + u_j.
	for j := 1; j <= k; j++ {
		idx := sHigh*t.wprod[j-1] + uLow
		edge := t.edgeOffset[j-1] + idx*t.w[j] + up[j-1]
		buf = append(buf, LinkID(2*edge))
		sHigh /= t.m[j]
		uLow += up[j-1] * t.wprod[j-1]
	}
	// Down links, from tier k-1 back to tier 0. First strip dst's k low
	// digits; then re-add them most-significant-first as we descend.
	var dLow [maxHeight + 1]int
	for j := 1; j <= k; j++ {
		dLow[j] = dHigh % t.m[j]
		dHigh /= t.m[j]
	}
	for j := k; j >= 1; j-- {
		dHigh = dHigh*t.m[j] + dLow[j]
		uLow -= up[j-1] * t.wprod[j-1]
		idx := dHigh*t.wprod[j-1] + uLow // index of the level j-1 down node
		edge := t.edgeOffset[j-1] + idx*t.w[j] + up[j-1]
		buf = append(buf, LinkID(2*edge+1))
	}
	return buf
}

// PathLinks is AppendPathLinks with a fresh slice.
func (t *Topology) PathLinks(src, dst int, up []int) []LinkID {
	return t.AppendPathLinks(make([]LinkID, 0, 2*len(up)), src, dst, up)
}

// PathLen returns the hop count (number of links) of a shortest path
// between src and dst: twice the NCA level.
func (t *Topology) PathLen(src, dst int) int {
	return 2 * t.NCALevel(src, dst)
}

// SubtreeOfProcessor returns the index of the height-k subtree
// (0 <= k <= h) containing the given processing node; subtrees of
// height k are the MProd(k) copies of XGFT(k; m_1..m_k; w_1..w_k).
func (t *Topology) SubtreeOfProcessor(proc, k int) int {
	t.checkLevel(k)
	if proc < 0 || proc >= t.mprod[0] {
		panic(fmt.Sprintf("topology: processor %d out of range [0,%d)", proc, t.mprod[0]))
	}
	for i := 1; i <= k; i++ {
		proc /= t.m[i]
	}
	return proc
}

// ProcessorsPerSubtree returns the number of processing nodes in a
// height-k subtree: Π_{i=1..k} m_i.
func (t *Topology) ProcessorsPerSubtree(k int) int {
	t.checkLevel(k)
	n := 1
	for i := 1; i <= k; i++ {
		n *= t.m[i]
	}
	return n
}
