package topology

import "fmt"

// LinkExpander accelerates bulk path-to-link expansion for callers that
// expand many destinations against one source at a time (the block
// segment compiler walks every dst for each source of a block). The
// 2k links of a path split cleanly in (source, path index) versus
// destination:
//
//	up link at level j   = 2·(edgeOffset[j-1] + (sHigh_j·WProd(j-1) + uLow_j)·w_j + u_j)
//	down link at level j = 2·(edgeOffset[j-1] + dHigh_j·WProd(j-1)·w_j) + 1
//	                       + 2·(uLow_j·w_j + u_j)
//
// where sHigh_j/dHigh_j strip j-1 low m-digits from src/dst and uLow_j
// packs the digits below j. Everything except the dHigh_j term is a
// function of (src, path index) alone, so the expander caches, per NCA
// level, the k absolute up links and the k down-link addends of every
// canonical path index of the current source. Expanding a pair then
// costs one k-division dst pass plus a copy and k adds per path,
// instead of re-deriving every hop.
//
// Results are bit-identical to AppendPathLinksNCA (the arithmetic above
// is the same formula, just factored); TestLinkExpanderMatchesAppend
// pins that. Not safe for concurrent use; each compiling goroutine
// holds its own.
type LinkExpander struct {
	t   *Topology
	src int
	// Per level k (1..h), lazily built for the current source:
	// upLinks[k] holds WProd(k) rows of k absolute up-link IDs in
	// traversal order, downAdd[k] the matching k down-link addends in
	// emit order (level k first). Row r is path index r.
	built    []bool
	upLinks  [][]int32
	downAdd  [][]int32
	digits   []int
	dstParts []int32
}

// NewLinkExpander creates an expander over t with no source selected.
func (t *Topology) NewLinkExpander() *LinkExpander {
	return &LinkExpander{
		t:        t,
		src:      -1,
		built:    make([]bool, t.h+1),
		upLinks:  make([][]int32, t.h+1),
		downAdd:  make([][]int32, t.h+1),
		digits:   make([]int, t.h+1),
		dstParts: make([]int32, t.h+1),
	}
}

// SetSource selects the source whose paths subsequent PairLinks calls
// expand, invalidating the per-source caches. Selecting the current
// source again is a no-op.
func (e *LinkExpander) SetSource(src int) {
	if src == e.src {
		return
	}
	if src < 0 || src >= e.t.mprod[0] {
		panic(fmt.Sprintf("topology: source %d out of range [0,%d)", src, e.t.mprod[0]))
	}
	e.src = src
	for k := range e.built {
		e.built[k] = false
	}
}

// build materializes the level-k cache for the current source: one row
// per canonical path index, digits enumerated exactly as
// DecodePathIndex defines them (u_1 most significant).
func (e *LinkExpander) build(k int) {
	t := e.t
	x := t.wprod[k]
	if cap(e.upLinks[k]) < x*k {
		e.upLinks[k] = make([]int32, x*k)
		e.downAdd[k] = make([]int32, x*k)
	}
	up := e.upLinks[k][:x*k]
	da := e.downAdd[k][:x*k]
	dig := e.digits
	for j := range dig {
		dig[j] = 0
	}
	for idx := 0; idx < x; idx++ {
		row := idx * k
		sHigh := e.src
		uLow := 0
		for j := 1; j <= k; j++ {
			u := dig[j]
			nodeIdx := sHigh*t.wprod[j-1] + uLow
			up[row+j-1] = int32(2 * (t.edgeOffset[j-1] + nodeIdx*t.w[j] + u))
			sHigh /= t.m[j]
			uLow += u * t.wprod[j-1]
		}
		for j := k; j >= 1; j-- {
			u := dig[j]
			uLow -= u * t.wprod[j-1]
			da[row+k-j] = int32(2 * (uLow*t.w[j] + u))
		}
		// Advance the digit odometer: u_k is least significant, which
		// makes row order equal canonical index order.
		for j := k; j >= 1; j-- {
			dig[j]++
			if dig[j] < t.w[j] {
				break
			}
			dig[j] = 0
		}
	}
	e.built[k] = true
	e.upLinks[k] = up
	e.downAdd[k] = da
}

// PairLinks writes the 2k links of every path index in idxs for the
// pair (current source, dst) — NCA level k, caller-established — into
// out, path-major in idxs order, exactly as AppendPathSetLinks would
// emit them. out must hold len(idxs)·2k values. Path indices are not
// revalidated; callers pass indices produced by a Selector.
func (e *LinkExpander) PairLinks(dst, k int, idxs []int32, out []int32) {
	if e.src < 0 {
		panic("topology: LinkExpander has no source; call SetSource first")
	}
	if !e.built[k] {
		e.build(k)
	}
	t := e.t
	dp := e.dstParts
	q := dst
	for j := 1; j <= k; j++ {
		dp[k-j] = int32(2*(t.edgeOffset[j-1]+q*t.wprod[j-1]*t.w[j]) + 1)
		q /= t.m[j]
	}
	up := e.upLinks[k]
	da := e.downAdd[k]
	o := 0
	for _, idx := range idxs {
		row := int(idx) * k
		copy(out[o:o+k], up[row:row+k])
		o += k
		add := da[row : row+k]
		for i := 0; i < k; i++ {
			out[o+i] = dp[i] + add[i]
		}
		o += k
	}
}
