package topology

// Network-level metrics used when sizing and comparing fat-tree
// configurations.

// Diameter returns the longest shortest-path hop count between two
// processing nodes: 2h, up to a top switch and back down.
func (t *Topology) Diameter() int { return 2 * t.h }

// AvgShortestPathLen returns the average shortest-path length over all
// ordered pairs of distinct processing nodes. Pairs whose NCA sits at
// level k contribute 2k hops; counting pairs per level is pure
// arithmetic.
func (t *Topology) AvgShortestPathLen() float64 {
	n := t.NumProcessors()
	if n < 2 {
		return 0
	}
	// Nodes sharing a height-k subtree but not a height-(k-1) one:
	// perK(k) = nodesPer(k) - nodesPer(k-1) partners per node.
	total := 0.0
	for k := 1; k <= t.h; k++ {
		perK := t.ProcessorsPerSubtree(k) - t.ProcessorsPerSubtree(k-1)
		total += float64(n) * float64(perK) * float64(2*k)
	}
	return total / (float64(n) * float64(n-1))
}

// Oversubscription returns the oversubscription ratio at level l
// (1 <= l <= h): the processing nodes below a height-l subtree divided
// by its up links, Π_{i<=l} m_i / Π_{i<=l+1} w_i. A ratio of 1 at
// every level means the tree has full bisection bandwidth; the ratio
// at level l bounds achievable uniform throughput by its reciprocal.
// Level h has no up links and reports 0.
func (t *Topology) Oversubscription(l int) float64 {
	t.checkLevel(l)
	if l == t.h {
		return 0
	}
	return float64(t.ProcessorsPerSubtree(l)) / float64(t.TL(l))
}

// MaxOversubscription returns the worst oversubscription ratio across
// levels 0..h-1 (level 0 covers the node-to-leaf-switch links).
func (t *Topology) MaxOversubscription() float64 {
	worst := 0.0
	for l := 0; l < t.h; l++ {
		if r := t.Oversubscription(l); r > worst {
			worst = r
		}
	}
	return worst
}

// IdealUniformThroughput returns the per-node throughput (as a
// fraction of injection bandwidth w_1) that a perfectly balanced
// routing sustains under all-to-all uniform traffic, limited by the
// most oversubscribed cut: for each level, a node's uniform traffic
// crosses the cut with probability (N - below)/N.
func (t *Topology) IdealUniformThroughput() float64 {
	n := float64(t.NumProcessors())
	best := 1.0
	for l := 0; l < t.h; l++ {
		below := float64(t.ProcessorsPerSubtree(l))
		crossFrac := (n - below) / n // traffic share leaving the subtree
		if crossFrac <= 0 {
			continue
		}
		// Per node capacity across the cut, normalized by w_1.
		cap := float64(t.TL(l)) / (below * float64(t.w[1]))
		if v := cap / crossFrac; v < best {
			best = v
		}
	}
	return best
}

// CostSummary aggregates the component counts procurement cares about.
type CostSummary struct {
	Switches    int
	Cables      int
	SwitchPorts int
}

// Cost returns the topology's component counts. SwitchPorts counts
// ports on switches only (processing-node ports are NICs).
func (t *Topology) Cost() CostSummary {
	c := CostSummary{Switches: t.NumSwitches(), Cables: t.NumCables()}
	for l := 1; l <= t.h; l++ {
		nodes := t.NodesAtLevel(l)
		ports := t.m[l]
		if l < t.h {
			ports += t.w[l+1]
		}
		c.SwitchPorts += nodes * ports
	}
	return c
}
