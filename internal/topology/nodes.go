package topology

import "fmt"

// Label is the paper's h+1 digit tuple (l, a_h, ..., a_1) identifying a
// node. Digit(i) for i > Level ranges over [0, m_i) (which copy of the
// height-(i-1) sub-XGFT the node sits in); Digit(i) for i <= Level
// ranges over [0, w_i) (which switch within the level group).
type Label struct {
	Level  int
	digits []int // digits[i-1] holds a_i, i in 1..h
}

// Digit returns a_i for 1 <= i <= h.
func (lb Label) Digit(i int) int { return lb.digits[i-1] }

// Digits returns a copy of (a_1, ..., a_h) in ascending digit order.
func (lb Label) Digits() []int {
	out := make([]int, len(lb.digits))
	copy(out, lb.digits)
	return out
}

// String renders the label in the paper's tuple notation
// (l, a_h, ..., a_1).
func (lb Label) String() string {
	s := fmt.Sprintf("(%d", lb.Level)
	for i := len(lb.digits) - 1; i >= 0; i-- {
		s += fmt.Sprintf(",%d", lb.digits[i])
	}
	return s + ")"
}

// Level returns the level of node n (0 = processing nodes, h = top
// switches).
func (t *Topology) Level(n NodeID) int {
	l, _ := t.levelIndex(n)
	return l
}

// LevelIndex splits a NodeID into its level and its dense index within
// that level.
func (t *Topology) LevelIndex(n NodeID) (level, index int) {
	return t.levelIndex(n)
}

func (t *Topology) levelIndex(n NodeID) (int, int) {
	if n < 0 || int(n) >= t.numNodes {
		panic(fmt.Sprintf("topology: node %d out of range [0,%d)", n, t.numNodes))
	}
	// h is at most a handful; a linear scan beats binary search here.
	for l := t.h; l >= 0; l-- {
		if int(n) >= t.levelOffset[l] {
			return l, int(n) - t.levelOffset[l]
		}
	}
	panic("unreachable")
}

// NodeAt returns the NodeID of the index-th node at the given level.
func (t *Topology) NodeAt(level, index int) NodeID {
	t.checkLevel(level)
	if index < 0 || index >= t.levelCount[level] {
		panic(fmt.Sprintf("topology: index %d out of range [0,%d) at level %d", index, t.levelCount[level], level))
	}
	return NodeID(t.levelOffset[level] + index)
}

// Processor returns the NodeID of processing node id (0-based).
// Processing-node IDs coincide with NodeIDs at level 0, so this is a
// checked conversion.
func (t *Topology) Processor(id int) NodeID {
	if id < 0 || id >= t.mprod[0] {
		panic(fmt.Sprintf("topology: processor %d out of range [0,%d)", id, t.mprod[0]))
	}
	return NodeID(id)
}

// ProcessorID converts a level-0 NodeID back to its processing-node
// number. It panics if n is a switch.
func (t *Topology) ProcessorID(n NodeID) int {
	l, idx := t.levelIndex(n)
	if l != 0 {
		panic(fmt.Sprintf("topology: node %d is at level %d, not a processing node", n, l))
	}
	return idx
}

// LabelOf decodes a NodeID into its tuple label. The within-level index
// is the mixed-radix number over digits a_h (most significant) down to
// a_1, with base m_i above the node's level and w_i at or below it.
func (t *Topology) LabelOf(n NodeID) Label {
	l, idx := t.levelIndex(n)
	digits := make([]int, t.h)
	for i := 1; i <= t.h; i++ {
		base := t.digitBase(l, i)
		digits[i-1] = idx % base
		idx /= base
	}
	return Label{Level: l, digits: digits}
}

// NodeOf encodes a tuple label back into a NodeID. It panics if any
// digit is out of range for the label's level.
func (t *Topology) NodeOf(lb Label) NodeID {
	t.checkLevel(lb.Level)
	if len(lb.digits) != t.h {
		panic(fmt.Sprintf("topology: label has %d digits, want %d", len(lb.digits), t.h))
	}
	idx := 0
	for i := t.h; i >= 1; i-- {
		base := t.digitBase(lb.Level, i)
		d := lb.digits[i-1]
		if d < 0 || d >= base {
			panic(fmt.Sprintf("topology: digit a_%d=%d out of range [0,%d) for level %d", i, d, base, lb.Level))
		}
		idx = idx*base + d
	}
	return NodeID(t.levelOffset[lb.Level] + idx)
}

// digitBase returns the radix of digit a_i for a node at the given
// level: m_i above the level, w_i at or below it.
func (t *Topology) digitBase(level, i int) int {
	if i > level {
		return t.m[i]
	}
	return t.w[i]
}

// NumParents returns the number of parents of node n: w_{l+1} for
// l < h, 0 for top switches.
func (t *Topology) NumParents(n NodeID) int {
	l, _ := t.levelIndex(n)
	if l == t.h {
		return 0
	}
	return t.w[l+1]
}

// NumChildren returns the number of children of node n: m_l for l >= 1,
// 0 for processing nodes.
func (t *Topology) NumChildren(n NodeID) int {
	l, _ := t.levelIndex(n)
	if l == 0 {
		return 0
	}
	return t.m[l]
}

// NumPorts returns the total port count of node n per the paper's
// numbering: parents plus children.
func (t *Topology) NumPorts(n NodeID) int {
	return t.NumParents(n) + t.NumChildren(n)
}

// Parent returns the node reached from n through up port p
// (0 <= p < NumParents(n)): the level-(l+1) node whose label matches n
// at every digit except a_{l+1}, which becomes p.
func (t *Topology) Parent(n NodeID, p int) NodeID {
	l, idx := t.levelIndex(n)
	if l == t.h {
		panic(fmt.Sprintf("topology: node %d is a top switch and has no parents", n))
	}
	if p < 0 || p >= t.w[l+1] {
		panic(fmt.Sprintf("topology: up port %d out of range [0,%d)", p, t.w[l+1]))
	}
	// Replace digit a_{l+1}: at level l its base is m_{l+1} (stride
	// below it uses bases for level l); at level l+1 the digit becomes
	// p with base w_{l+1}. Recompute the within-level index directly.
	// Digits a_1..a_l have the same bases (w_i) at both levels, and
	// digits a_{l+2}..a_h have the same bases (m_i); only position
	// l+1 changes base and value, so:
	//   idx = high·(base_{l+1})·low' + a_{l+1}·low' + lowBits
	// where low' = Π_{i<=l} base_i is identical at both levels.
	low := 1
	for i := 1; i <= l; i++ {
		low *= t.w[i]
	}
	lowBits := idx % low
	rest := idx / low
	rest /= t.m[l+1] // drop a_{l+1}
	newIdx := (rest*t.w[l+1]+p)*low + lowBits
	return NodeID(t.levelOffset[l+1] + newIdx)
}

// Child returns the c-th child of node n (0 <= c < NumChildren(n)): the
// level-(l-1) node whose label matches n at every digit except a_l,
// which becomes c.
func (t *Topology) Child(n NodeID, c int) NodeID {
	l, idx := t.levelIndex(n)
	if l == 0 {
		panic(fmt.Sprintf("topology: node %d is a processing node and has no children", n))
	}
	if c < 0 || c >= t.m[l] {
		panic(fmt.Sprintf("topology: child %d out of range [0,%d)", c, t.m[l]))
	}
	low := 1
	for i := 1; i < l; i++ {
		low *= t.w[i]
	}
	lowBits := idx % low
	rest := idx / low
	rest /= t.w[l] // drop a_l (base w_l at level l)
	newIdx := (rest*t.m[l]+c)*low + lowBits
	return NodeID(t.levelOffset[l-1] + newIdx)
}

// UpPortOf returns which up port of child leads to parent. It panics
// if parent is not actually a parent of child.
func (t *Topology) UpPortOf(child, parent NodeID) int {
	l, _ := t.levelIndex(child)
	lb := t.LabelOf(parent)
	if lb.Level != l+1 {
		panic(fmt.Sprintf("topology: node %d (level %d) cannot be a parent of node %d (level %d)", parent, lb.Level, child, l))
	}
	p := lb.Digit(l + 1)
	if t.Parent(child, p) != parent {
		panic(fmt.Sprintf("topology: node %d is not a parent of node %d", parent, child))
	}
	return p
}

// DownPortTo returns the port number on parent that leads down to its
// c-th child, per the paper's numbering: w_{l+1}+c at levels below h,
// and just c at the top level.
func (t *Topology) DownPortTo(parent NodeID, c int) int {
	l, _ := t.levelIndex(parent)
	if l == 0 {
		panic("topology: processing nodes have no down ports")
	}
	if c < 0 || c >= t.m[l] {
		panic(fmt.Sprintf("topology: child %d out of range [0,%d)", c, t.m[l]))
	}
	if l == t.h {
		return c
	}
	return t.w[l+1] + c
}

// PortPeer resolves a port number on node n to the neighbouring node,
// following the paper's port layout (up ports first, then down ports;
// top switches have only down ports).
func (t *Topology) PortPeer(n NodeID, port int) NodeID {
	l, _ := t.levelIndex(n)
	up := 0
	if l < t.h {
		up = t.w[l+1]
	}
	switch {
	case port < 0 || port >= t.NumPorts(n):
		panic(fmt.Sprintf("topology: port %d out of range [0,%d) on node %d", port, t.NumPorts(n), n))
	case port < up:
		return t.Parent(n, port)
	default:
		return t.Child(n, port-up)
	}
}

// NCALevel returns the level of the nearest common ancestors of
// processing nodes src and dst: the highest digit position at which
// their labels differ, or 0 when src == dst.
func (t *Topology) NCALevel(src, dst int) int {
	if src < 0 || src >= t.mprod[0] || dst < 0 || dst >= t.mprod[0] {
		panic(fmt.Sprintf("topology: processors (%d,%d) out of range [0,%d)", src, dst, t.mprod[0]))
	}
	if src == dst {
		return 0
	}
	// Processing-node labels are mixed-radix over m_1..m_h with a_1
	// least significant. Strip equal low digits.
	k := 0
	for i := 1; i <= t.h; i++ {
		if src%t.m[i] != dst%t.m[i] {
			k = i
		}
		src /= t.m[i]
		dst /= t.m[i]
	}
	return k
}

// NumPathsBetween returns the number of distinct shortest paths between
// processing nodes src and dst: Π_{i=1..k} w_i with k the NCA level
// (Property 1). For src == dst it returns 1 (the empty path).
func (t *Topology) NumPathsBetween(src, dst int) int {
	return t.wprod[t.NCALevel(src, dst)]
}
