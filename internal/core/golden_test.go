package core

import (
	"reflect"
	"testing"

	"xgftsim/internal/topology"
)

// TestPairRNGGolden pins the concrete path choices of the randomized
// schemes under the splitmix-based per-pair streams. These sequences
// intentionally differ from revisions that seeded a default math/rand
// source per pair (see Routing.pairRNG); this test documents the break
// once and catches any future unintended drift, which would silently
// change every randomized figure in the paper reproduction.
func TestPairRNGGolden(t *testing.T) {
	tp := topology.MustNew(3, []int{4, 4, 8}, []int{1, 4, 4})
	rk := NewRouting(tp, RandomK{}, 4, 12345)
	for _, c := range []struct {
		src, dst int
		want     []int
	}{
		{0, 100, []int{15, 4, 10, 9}},
		{5, 77, []int{1, 10, 4, 2}},
		{99, 3, []int{10, 7, 3, 5}},
	} {
		if got := rk.Paths(c.src, c.dst); !reflect.DeepEqual(got, c.want) {
			t.Errorf("RandomK(K=4, seed=12345) pair (%d,%d): %v, want %v", c.src, c.dst, got, c.want)
		}
	}
	rs := NewRouting(tp, RandomSingle{}, 1, 7)
	for _, c := range []struct {
		src, dst int
		want     []int
	}{
		{0, 100, []int{8}},
		{42, 17, []int{11}},
	} {
		if got := rs.Paths(c.src, c.dst); !reflect.DeepEqual(got, c.want) {
			t.Errorf("RandomSingle(seed=7) pair (%d,%d): %v, want %v", c.src, c.dst, got, c.want)
		}
	}
}
