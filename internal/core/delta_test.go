package core

import (
	"sync"
	"testing"

	"xgftsim/internal/topology"
)

// assertTablesIdentical compares two compiled tables pair by pair:
// path indices, path counts and expanded link lists must be
// bit-identical.
func assertTablesIdentical(t *testing.T, label string, tp *topology.Topology, got, want *CompiledRouting) {
	t.Helper()
	n := tp.NumProcessors()
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			gi, wi := got.PathIndices(src, dst), want.PathIndices(src, dst)
			if len(gi) != len(wi) {
				t.Fatalf("%s pair (%d,%d): delta %d paths, full %d", label, src, dst, len(gi), len(wi))
			}
			for i := range gi {
				if gi[i] != wi[i] {
					t.Fatalf("%s pair (%d,%d): delta indices %v, full %v", label, src, dst, gi, wi)
				}
			}
			if gn, wn := got.NumPaths(src, dst), want.NumPaths(src, dst); gn != wn {
				t.Fatalf("%s pair (%d,%d): delta NumPaths %d, full %d", label, src, dst, gn, wn)
			}
			gl, gnp := got.PairLinks(src, dst)
			wl, wnp := want.PairLinks(src, dst)
			if gnp != wnp || len(gl) != len(wl) {
				t.Fatalf("%s pair (%d,%d): delta %d links/%d paths, full %d/%d",
					label, src, dst, len(gl), gnp, len(wl), wnp)
			}
			for i := range gl {
				if gl[i] != wl[i] {
					t.Fatalf("%s pair (%d,%d): delta links %v, full %v", label, src, dst, gl, wl)
				}
			}
		}
	}
}

// TestCompileRepairedDeltaMatchesFull is the central differential test:
// for every repairable scheme, both tree heights and several fault
// seeds, the incrementally patched table is bit-identical to a full
// CompileRepaired — path indices, counts and link expansions.
func TestCompileRepairedDeltaMatchesFull(t *testing.T) {
	for _, tp := range repairTopologies() {
		for _, sel := range repairSchemes() {
			r := NewRouting(tp, sel, 2, 21)
			base, err := CompileRouting(r, 0)
			if err != nil {
				t.Fatal(err)
			}
			d, err := NewDeltaRepairer(base)
			if err != nil {
				t.Fatal(err)
			}
			for faultSeed := int64(1); faultSeed <= 3; faultSeed++ {
				f, err := topology.RandomCableFaults(tp, faultSeed, tp.NumCables()/8+1)
				if err != nil {
					t.Fatal(err)
				}
				rr := r.MustRepair(f)
				full, err := CompileRepaired(rr, 0)
				if err != nil {
					t.Fatal(err)
				}
				delta, err := d.CompileRepairedDelta(rr)
				if err != nil {
					t.Fatal(err)
				}
				label := rr.String()
				assertTablesIdentical(t, label, tp, delta, full)
				if aff := d.AffectedPairs(f, nil); len(aff) != delta.PatchedPairs() {
					t.Fatalf("%s: AffectedPairs reports %d pairs, table patched %d",
						label, len(aff), delta.PatchedPairs())
				}
				if delta != base && delta.Repaired() != rr {
					t.Fatalf("%s: delta table lost its repaired source", label)
				}
				// DeltaRepair (repair + compile in one step) must agree too.
				oneShot, err := d.DeltaRepair(f)
				if err != nil {
					t.Fatal(err)
				}
				assertTablesIdentical(t, label+"/one-shot", tp, oneShot, full)
			}
		}
	}
}

// TestCompileRepairedDeltaEmptyFaults: an empty fault set returns the
// shared base table itself — no overlay, no copying.
func TestCompileRepairedDeltaEmptyFaults(t *testing.T) {
	tp := topology.MustNew(2, []int{4, 4}, []int{1, 4})
	r := NewRouting(tp, Disjoint{}, 2, 0)
	base, err := CompileRouting(r, 0)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDeltaRepairer(base)
	if err != nil {
		t.Fatal(err)
	}
	delta, err := d.CompileRepairedDelta(r.MustRepair(topology.NewFaultSet(tp)))
	if err != nil {
		t.Fatal(err)
	}
	if delta != base {
		t.Fatal("empty fault set did not return the shared base table")
	}
	if delta.PatchedPairs() != 0 || delta.DeltaBytes() != 0 {
		t.Fatalf("base table reports overlay state: %d patched pairs, %d delta bytes",
			delta.PatchedPairs(), delta.DeltaBytes())
	}
}

// TestCompileRepairedDeltaDisconnected: a leaf switch stripped of every
// up cable leaves its processors' pairs disconnected; the delta table
// must patch them to empty rows, exactly as the full compile does.
func TestCompileRepairedDeltaDisconnected(t *testing.T) {
	tp := topology.MustNew(2, []int{4, 4}, []int{1, 4})
	f := topology.NewFaultSet(tp)
	leaf := tp.NodeAt(1, 0)
	for p := 0; p < tp.NumParents(leaf); p++ {
		if err := f.FailCable(leaf, p); err != nil {
			t.Fatal(err)
		}
	}
	for _, sel := range repairSchemes() {
		r := NewRouting(tp, sel, 2, 3)
		base, err := CompileRouting(r, 0)
		if err != nil {
			t.Fatal(err)
		}
		d, err := NewDeltaRepairer(base)
		if err != nil {
			t.Fatal(err)
		}
		rr := r.MustRepair(f)
		full, err := CompileRepaired(rr, 0)
		if err != nil {
			t.Fatal(err)
		}
		delta, err := d.CompileRepairedDelta(rr)
		if err != nil {
			t.Fatal(err)
		}
		assertTablesIdentical(t, rr.String(), tp, delta, full)
		for _, pair := range rr.DisconnectedPairs() {
			if np := delta.NumPaths(pair[0], pair[1]); np != 0 {
				t.Fatalf("%s: disconnected pair %v has %d delta paths", rr, pair, np)
			}
		}
	}
}

// TestNewDeltaRepairerValidation: repaired and delta tables are not
// acceptable bases, and foreign repaired routings are rejected.
func TestNewDeltaRepairerValidation(t *testing.T) {
	tp := topology.MustNew(2, []int{4, 4}, []int{1, 4})
	r := NewRouting(tp, Disjoint{}, 2, 0)
	f, err := topology.RandomCableFaults(tp, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	repaired, err := CompileRepaired(r.MustRepair(f), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDeltaRepairer(repaired); err == nil {
		t.Error("repaired table accepted as delta base")
	}
	if _, err := NewDeltaRepairer(nil); err == nil {
		t.Error("nil base accepted")
	}
	base, err := CompileRouting(r, 0)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDeltaRepairer(base)
	if err != nil {
		t.Fatal(err)
	}
	delta, err := d.DeltaRepair(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDeltaRepairer(delta); err == nil {
		t.Error("delta table accepted as delta base")
	}
	other := NewRouting(tp, Disjoint{}, 4, 0) // different K
	if _, err := d.CompileRepairedDelta(other.MustRepair(f)); err == nil {
		t.Error("repaired routing over a different K accepted")
	}
	if _, err := d.CompileRepairedDelta(nil); err == nil {
		t.Error("nil repaired routing accepted")
	}
}

// TestDeltaRepairConcurrent: one shared repairer serves many fault
// placements from concurrent goroutines (the per-fault-seed parallelism
// of the failure sweep); every result must match its full compile. Run
// under -race by make ci.
func TestDeltaRepairConcurrent(t *testing.T) {
	tp := topology.MustNew(3, []int{2, 2, 4}, []int{1, 2, 2})
	r := NewRouting(tp, Disjoint{}, 2, 5)
	base, err := CompileRouting(r, 0)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDeltaRepairer(base)
	if err != nil {
		t.Fatal(err)
	}
	const seeds = 8
	var wg sync.WaitGroup
	errs := make([]error, seeds)
	tables := make([]*CompiledRouting, seeds)
	for s := 0; s < seeds; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			f, err := topology.RandomCableFaults(tp, int64(s+1), tp.NumCables()/10+1)
			if err != nil {
				errs[s] = err
				return
			}
			tables[s], errs[s] = d.DeltaRepair(f)
		}(s)
	}
	wg.Wait()
	for s := 0; s < seeds; s++ {
		if errs[s] != nil {
			t.Fatal(errs[s])
		}
		f, err := topology.RandomCableFaults(tp, int64(s+1), tp.NumCables()/10+1)
		if err != nil {
			t.Fatal(err)
		}
		full, err := CompileRepaired(r.MustRepair(f), 0)
		if err != nil {
			t.Fatal(err)
		}
		assertTablesIdentical(t, full.Repaired().String(), tp, tables[s], full)
	}
}

// TestDeltaRepairAllocsPerPair pins the patch path at (amortized) zero
// allocations per affected pair: a delta compile allocates its overlay
// arrays and per-worker scratch, but nothing that scales with the
// number of pairs it re-selects.
func TestDeltaRepairAllocsPerPair(t *testing.T) {
	tp := topology.MustNew(3, []int{4, 4, 8}, []int{1, 4, 4})
	r := NewRouting(tp, Disjoint{}, 4, 0)
	base, err := CompileRouting(r, 0)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDeltaRepairer(base)
	if err != nil {
		t.Fatal(err)
	}
	f, err := topology.RandomCableFaults(tp, 7, tp.NumCables()/20+1)
	if err != nil {
		t.Fatal(err)
	}
	rr := r.MustRepair(f)
	c, err := d.CompileRepairedDelta(rr)
	if err != nil {
		t.Fatal(err)
	}
	patched := c.PatchedPairs()
	if patched == 0 {
		t.Fatal("fault set touched no pair; test needs a non-trivial delta")
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := d.CompileRepairedDelta(rr); err != nil {
			t.Fatal(err)
		}
	})
	if perPair := allocs / float64(patched); perPair >= 1 {
		t.Errorf("delta compile allocates %.2f times per affected pair (%.0f allocs / %d pairs); want amortized zero",
			perPair, allocs, patched)
	}
}
