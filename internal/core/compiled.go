package core

import (
	"fmt"
	"runtime"
	"sync"

	"xgftsim/internal/topology"
)

// CompiledRouting is a Routing materialized into flat CSR arrays: for
// every ordered SD pair it stores the canonical path indices and the
// concatenated directed-link lists of all its paths, built once and
// immutable afterwards. All slices are read-only after Compile returns,
// so a single table is safe to share across any number of goroutines —
// the permutation sampler's workers, the flit engines of a load sweep —
// without locks. Traffic is split uniformly across a pair's paths (the
// paper's f_{i,j} = 1/K), so the per-pair path count is the only share
// information needed.
//
// Layout: pair p = src·N + dst indexes two offset arrays.
// pathIdx[pathOff[p]:pathOff[p+1]] are the pair's path indices and
// links[linkOff[p]:linkOff[p+1]] the 2k directed links of each path in
// path order. Self pairs are empty. Entries are int32 (a table whose
// link count overflows int32 would not fit a sane budget anyway);
// offsets are int64 so size estimation cannot overflow on fabrics that
// exceed the budget.
type CompiledRouting struct {
	r    *Routing
	rep  *RepairedRouting // non-nil when compiled from a repaired routing
	topo *topology.Topology
	n    int

	pathOff []int64
	pathIdx []int32
	linkOff []int64
	links   []int32

	// Copy-on-write delta overlay, set only on tables produced by
	// CompileRepairedDelta: the four arrays above are shared with (alias)
	// the healthy base table, and patch[p] redirects pair p to row
	// patch[p] of the patched CSR below (-1 keeps the base row). Only
	// pairs whose base-selected path set crosses a failed link carry a
	// patch row, so the overlay's size scales with the fault footprint,
	// not with N².
	patch    []int32
	pPathOff []int64
	pPathIdx []int32
	pLinkOff []int64
	pLinks   []int32
}

// appendPaths derives one pair's path set from the table's source: the
// repaired routing when compiling a degraded fabric, the healthy
// routing otherwise. Lazy and compiled evaluation share these exact
// code paths, which is what keeps them bit-identical.
func (c *CompiledRouting) appendPaths(ps *PathScratch, buf []int, src, dst int) []int {
	if c.rep != nil {
		return c.rep.AppendPathsScratch(ps, buf, src, dst)
	}
	return c.r.AppendPathsScratch(ps, buf, src, dst)
}

// CompiledBytes estimates the memory footprint of CompileRouting(r) in
// bytes, in closed form (no enumeration): the per-pair path count
// depends only on the pair's NCA level, and the number of pairs at each
// level follows from the subtree sizes.
func CompiledBytes(r *Routing) int64 {
	t := r.Topology()
	n := int64(t.NumProcessors())
	var paths, links int64
	for k := 1; k <= t.H(); k++ {
		// Pairs whose NCA is exactly level k: same height-k subtree,
		// different height-(k-1) subtrees.
		pairs := n * int64(t.ProcessorsPerSubtree(k)-t.ProcessorsPerSubtree(k-1))
		np := int64(r.pathCount(k))
		paths += pairs * np
		links += pairs * np * int64(2*k)
	}
	return 16*(n*n+1) + 4*paths + 4*links
}

// CompileRouting materializes r into a CompiledRouting, building the
// pair blocks in parallel across GOMAXPROCS workers. maxBytes bounds
// the table's estimated footprint; a non-positive value means
// unlimited. It returns an error when the estimate exceeds the budget
// (the caller should fall back to the lazy Routing) or when r's
// selector produces a path count that contradicts its declared scheme.
func CompileRouting(r *Routing, maxBytes int64) (*CompiledRouting, error) {
	t := r.Topology()
	n := t.NumProcessors()
	if est := CompiledBytes(r); maxBytes > 0 && est > maxBytes {
		return nil, fmt.Errorf("core: compiled %s table over %s needs ~%d MiB, budget is %d MiB",
			r, t, est>>20, maxBytes>>20)
	}
	c := &CompiledRouting{
		r:       r,
		topo:    t,
		n:       n,
		pathOff: make([]int64, n*n+1),
		linkOff: make([]int64, n*n+1),
	}
	// Offsets from the predicted per-level path counts. NCA levels are
	// derived arithmetically: dst shares src's height-k subtree iff
	// their addresses agree above the k low m-digits.
	var nPaths, nLinks int64
	p := 0
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			c.pathOff[p] = nPaths
			c.linkOff[p] = nLinks
			if src != dst {
				k := t.NCALevel(src, dst)
				np := int64(r.pathCount(k))
				nPaths += np
				nLinks += np * int64(2*k)
			}
			p++
		}
	}
	c.pathOff[p] = nPaths
	c.linkOff[p] = nLinks
	c.pathIdx = make([]int32, nPaths)
	c.links = make([]int32, nLinks)

	workers := compileWorkers(n)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := src0(n, workers, w)
		hi := src0(n, workers, w+1)
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			errs[w] = c.fill(lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	met.compiles.Inc()
	met.compiledPairs.Add(int64(n) * int64(n))
	return c, nil
}

// CompileRepaired materializes a repaired routing into the same CSR
// layout. Unlike the healthy case, the per-pair path count is not a
// function of the NCA level alone (dead links shrink some pairs' sets,
// disconnected pairs are empty), so the offsets come from an exact
// parallel counting pass over the repaired selector instead of the
// closed-form prediction. The budget check uses CompiledBytes of the
// base routing, a safe upper bound: repair only ever removes paths.
// An empty fault set compiles the base routing directly.
func CompileRepaired(rr *RepairedRouting, maxBytes int64) (*CompiledRouting, error) {
	if rr.Faults().Empty() {
		return CompileRouting(rr.Base(), maxBytes)
	}
	t := rr.Topology()
	n := t.NumProcessors()
	if est := CompiledBytes(rr.Base()); maxBytes > 0 && est > maxBytes {
		return nil, fmt.Errorf("core: compiled %s table over %s needs up to ~%d MiB, budget is %d MiB",
			rr, t, est>>20, maxBytes>>20)
	}
	c := &CompiledRouting{
		r:       rr.Base(),
		rep:     rr,
		topo:    t,
		n:       n,
		pathOff: make([]int64, n*n+1),
		linkOff: make([]int64, n*n+1),
	}
	counts := make([]int32, n*n)
	workers := compileWorkers(n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := src0(n, workers, w), src0(n, workers, w+1)
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			ps := NewPathScratch()
			var buf []int
			for src := lo; src < hi; src++ {
				for dst := 0; dst < n; dst++ {
					if src == dst {
						continue
					}
					buf = rr.AppendPathsScratch(ps, buf[:0], src, dst)
					counts[src*n+dst] = int32(len(buf))
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	var nPaths, nLinks int64
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			p := src*n + dst
			c.pathOff[p] = nPaths
			c.linkOff[p] = nLinks
			if src != dst {
				np := int64(counts[p])
				nPaths += np
				nLinks += np * int64(2*t.NCALevel(src, dst))
			}
		}
	}
	c.pathOff[n*n] = nPaths
	c.linkOff[n*n] = nLinks
	c.pathIdx = make([]int32, nPaths)
	c.links = make([]int32, nLinks)
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		lo, hi := src0(n, workers, w), src0(n, workers, w+1)
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			errs[w] = c.fill(lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return c, nil
}

// compileWorkers bounds the parallel fan-out of a table build.
func compileWorkers(n int) int {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// src0 splits [0, n) into `parts` near-equal contiguous ranges.
func src0(n, parts, i int) int { return i * n / parts }

// fill materializes the pair blocks for src in [lo, hi). Each worker
// writes only its own disjoint offset ranges, so no synchronization is
// needed.
func (c *CompiledRouting) fill(lo, hi int) error {
	var pathBuf []int
	var linkBuf []topology.LinkID
	ps := NewPathScratch()
	for src := lo; src < hi; src++ {
		for dst := 0; dst < c.n; dst++ {
			if src == dst {
				continue
			}
			p := src*c.n + dst
			pathBuf = c.appendPaths(ps, pathBuf[:0], src, dst)
			if got, want := int64(len(pathBuf)), c.pathOff[p+1]-c.pathOff[p]; got != want {
				return fmt.Errorf("core: selector %s produced %d paths for pair (%d,%d), predicted %d; custom selectors must emit a fixed count per NCA level to be compilable",
					c.r.Selector().Name(), got, src, dst, want)
			}
			po, lp := c.pathOff[p], c.linkOff[p]
			for i, idx := range pathBuf {
				c.pathIdx[po+int64(i)] = int32(idx)
			}
			linkBuf = AppendPathSetLinks(c.topo, src, dst, pathBuf, linkBuf[:0])
			if int64(len(linkBuf)) != c.linkOff[p+1]-c.linkOff[p] {
				return fmt.Errorf("core: pair (%d,%d) expanded to %d links, predicted %d",
					src, dst, len(linkBuf), c.linkOff[p+1]-c.linkOff[p])
			}
			for _, l := range linkBuf {
				c.links[lp] = int32(l)
				lp++
			}
		}
	}
	return nil
}

// Routing returns the (base) routing the table was compiled from.
func (c *CompiledRouting) Routing() *Routing { return c.r }

// Repaired returns the repaired routing the table was compiled from,
// or nil when it holds a healthy fabric's paths.
func (c *CompiledRouting) Repaired() *RepairedRouting { return c.rep }

// Topology returns the underlying topology.
func (c *CompiledRouting) Topology() *topology.Topology { return c.topo }

// Bytes returns the actual memory footprint of the table's arrays.
// Delta tables alias the base table's row arrays, so their footprint is
// counted here too; DeltaBytes reports the overlay alone.
func (c *CompiledRouting) Bytes() int64 {
	return 8*int64(len(c.pathOff)+len(c.linkOff)+len(c.pPathOff)+len(c.pLinkOff)) +
		4*int64(len(c.pathIdx)+len(c.links)+len(c.patch)+len(c.pPathIdx)+len(c.pLinks))
}

// DeltaBytes returns the footprint of the copy-on-write overlay alone —
// the memory a delta table costs beyond its shared base (0 for fully
// materialized tables).
func (c *CompiledRouting) DeltaBytes() int64 {
	return 8*int64(len(c.pPathOff)+len(c.pLinkOff)) +
		4*int64(len(c.patch)+len(c.pPathIdx)+len(c.pLinks))
}

// PatchedPairs returns the number of pairs whose rows the delta overlay
// replaces (0 for fully materialized tables).
func (c *CompiledRouting) PatchedPairs() int {
	if c.patch == nil {
		return 0
	}
	return len(c.pPathOff) - 1
}

// NumPaths returns the number of paths compiled for the pair (0 for
// self pairs).
func (c *CompiledRouting) NumPaths(src, dst int) int {
	p := src*c.n + dst
	if c.patch != nil {
		if pi := c.patch[p]; pi >= 0 {
			return int(c.pPathOff[pi+1] - c.pPathOff[pi])
		}
	}
	return int(c.pathOff[p+1] - c.pathOff[p])
}

// PairLinks returns the pair's concatenated per-path link lists and its
// path count: each path contributes amount/numPaths load to each of its
// links, so a flow evaluation is a single scan of the returned slice.
// The slice aliases the table and must not be modified.
func (c *CompiledRouting) PairLinks(src, dst int) (links []int32, numPaths int) {
	p := src*c.n + dst
	if c.patch != nil {
		if pi := c.patch[p]; pi >= 0 {
			return c.pLinks[c.pLinkOff[pi]:c.pLinkOff[pi+1]], int(c.pPathOff[pi+1] - c.pPathOff[pi])
		}
	}
	return c.links[c.linkOff[p]:c.linkOff[p+1]], int(c.pathOff[p+1] - c.pathOff[p])
}

// PairPathLinks returns the pair's link lists in the path-major layout
// the multi-K evaluator folds over: links is the same concatenation
// PairLinks returns, but viewed as numPaths fixed-size segments of
// stride links (stride = 2·NCA level), where segment i holds the
// directed links of the pair's i-th path in selection order. Because
// every built-in selector is prefix-nested (PrefixNested), the first
// min(K, numPaths) segments are exactly the pair's path set at limit K
// for every K up to the compiled Kmax. The slice aliases the table and
// must not be modified. stride is 0 for self pairs.
func (c *CompiledRouting) PairPathLinks(src, dst int) (links []int32, numPaths, stride int) {
	links, numPaths = c.PairLinks(src, dst)
	if numPaths == 0 {
		return links, 0, 0
	}
	return links, numPaths, len(links) / numPaths
}

// PathIndices returns the pair's canonical path indices. The slice
// aliases the table and must not be modified.
func (c *CompiledRouting) PathIndices(src, dst int) []int32 {
	p := src*c.n + dst
	if c.patch != nil {
		if pi := c.patch[p]; pi >= 0 {
			return c.pPathIdx[c.pPathOff[pi]:c.pPathOff[pi+1]]
		}
	}
	return c.pathIdx[c.pathOff[p]:c.pathOff[p+1]]
}

// UnreachablePairs returns the number of ordered distinct SD pairs the
// table routes nowhere (zero compiled paths) — the traffic a degraded
// fabric must report as undeliverable. Healthy tables always compile at
// least one path per pair, and a delta overlay only ever rewrites the
// pairs it patched, so the count is a scan of the patch rows alone:
// O(patched pairs), not O(N²).
func (c *CompiledRouting) UnreachablePairs() int {
	if c.patch != nil {
		n := 0
		for i := 0; i+1 < len(c.pPathOff); i++ {
			if c.pPathOff[i] == c.pPathOff[i+1] {
				n++
			}
		}
		return n
	}
	if c.rep == nil {
		return 0
	}
	// Fully materialized repaired table: empty rows are the
	// disconnected pairs.
	n := 0
	for p := 0; p < c.n*c.n; p++ {
		if p/c.n != p%c.n && c.pathOff[p] == c.pathOff[p+1] {
			n++
		}
	}
	return n
}

// Checksum returns an FNV-1a hash over the table's logical content:
// every pair's path count, path indices and link lists in pair order.
// Two tables that route identically hash identically regardless of how
// they were materialized (full compile, delta patch, different worker
// counts), which is what the control plane's crash-recovery check
// needs: a journal replay must converge to a bit-identical table.
func (c *CompiledRouting) Checksum() uint64 {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(c.n))
	for src := 0; src < c.n; src++ {
		for dst := 0; dst < c.n; dst++ {
			links, np := c.PairLinks(src, dst)
			mix(uint64(np))
			for _, idx := range c.PathIndices(src, dst) {
				mix(uint64(uint32(idx)))
			}
			for _, l := range links {
				mix(uint64(uint32(l)))
			}
		}
	}
	return h
}

// PortRoutes expands the pair's compiled paths into output-port
// sequences for source routing, equivalent to Routing.PortRoutes but
// without re-running the selector (or its RNG streams).
func (c *CompiledRouting) PortRoutes(src, dst int) [][]int {
	idx := c.PathIndices(src, dst)
	out := make([][]int, len(idx))
	for i, id := range idx {
		out[i] = PortRoute(c.topo, src, dst, int(id))
	}
	return out
}
