package core

import (
	"fmt"
	"math/rand"

	"xgftsim/internal/stats"
	"xgftsim/internal/topology"
)

// Routing binds a topology, a path-selection scheme and the per-pair
// path limit K into a concrete limited multi-path routing. Path sets
// are computed on demand from pure arithmetic (plus a deterministic
// per-pair RNG stream for randomized schemes), so a Routing costs a
// few words regardless of system size and is safe for concurrent use.
type Routing struct {
	topo *topology.Topology
	sel  Selector
	k    int
	seed int64
}

// NewRouting creates a routing over t using the scheme sel with path
// limit limK (<= 0 means unlimited, i.e. every pair may use all of its
// shortest paths). seed feeds the per-pair RNG streams of randomized
// schemes; deterministic schemes ignore it. Running the same seed
// always reproduces the same routing, as the paper's protocol
// ("average of five random seeds") requires.
func NewRouting(t *topology.Topology, sel Selector, limK int, seed int64) *Routing {
	if t == nil || sel == nil {
		panic("core: NewRouting requires a topology and a selector")
	}
	return &Routing{topo: t, sel: sel, k: limK, seed: seed}
}

// Topology returns the topology the routing is defined over.
func (r *Routing) Topology() *topology.Topology { return r.topo }

// Selector returns the path-selection scheme.
func (r *Routing) Selector() Selector { return r.sel }

// K returns the configured path limit (<= 0 meaning unlimited).
func (r *Routing) K() int { return r.k }

// Seed returns the RNG seed for randomized schemes.
func (r *Routing) Seed() int64 { return r.seed }

// String identifies the routing, e.g. "disjoint(K=4)".
func (r *Routing) String() string {
	if !r.sel.MultiPath() {
		return r.sel.Name()
	}
	if r.k <= 0 {
		return fmt.Sprintf("%s(K=all)", r.sel.Name())
	}
	return fmt.Sprintf("%s(K=%d)", r.sel.Name(), r.k)
}

// pairRNG derives the deterministic RNG stream for an SD pair. It uses
// a splitmix64 source seeded from (seed, src, dst): constructing one is
// a single multiply-and-xor chain, so randomized schemes pay no
// per-pair allocation-heavy seeding on the evaluation hot path. This
// intentionally changed the randomized schemes' concrete path choices
// relative to earlier revisions (which seeded a default math/rand
// source per pair); the distributions are identical, results remain
// deterministic in (seed, src, dst), and TestPairRNGGolden pins the
// new sequences.
func (r *Routing) pairRNG(src, dst int) *rand.Rand {
	return stats.CheapStream(r.seed, int64(src)*int64(r.topo.NumProcessors())+int64(dst))
}

// AppendPaths appends the path indices used for traffic from src to
// dst (distinct processing nodes) and returns the extended slice.
// Traffic is split uniformly across them (the paper's f_{i,j}^k = 1/K).
func (r *Routing) AppendPaths(buf []int, src, dst int) []int {
	if src == dst {
		return buf
	}
	var rng *rand.Rand
	if _, deterministic := r.sel.(interface{ deterministic() }); !deterministic {
		rng = r.pairRNG(src, dst)
	}
	return r.sel.Select(r.topo, src, dst, r.k, rng, buf)
}

// Paths returns the path indices for the SD pair in a fresh slice.
func (r *Routing) Paths(src, dst int) []int {
	return r.AppendPaths(nil, src, dst)
}

// PathScratch is caller-owned RNG state for AppendPathsScratch: one
// reusable generator that is reseeded per pair instead of allocated per
// pair. Each goroutine walking many pairs should hold its own.
type PathScratch struct {
	src stats.SplitMix
	rng *rand.Rand
	// Repair scratch: the surviving-path bitmap of the pair being
	// re-selected and the cached disjoint preference-order offsets
	// (pair-independent, so each scratch derives them once per NCA
	// level; see PathScratch.disjointOffsets).
	alive  []uint64
	djTopo *topology.Topology
	djOff  [maxDigits][]int32
}

// NewPathScratch creates scratch RNG state for AppendPathsScratch.
func NewPathScratch() *PathScratch {
	ps := &PathScratch{}
	ps.rng = rand.New(&ps.src)
	return ps
}

// AppendPathsScratch is AppendPaths using the caller's scratch RNG. It
// yields exactly the same path sets (the streams are deterministic in
// (seed, src, dst) either way) but performs zero allocations, which is
// what the flow evaluator's sampling loop needs: it visits N pairs per
// sampled permutation.
func (r *Routing) AppendPathsScratch(ps *PathScratch, buf []int, src, dst int) []int {
	if src == dst {
		return buf
	}
	var rng *rand.Rand
	if _, deterministic := r.sel.(interface{ deterministic() }); !deterministic {
		ps.src.SeedStream(r.seed, int64(src)*int64(r.topo.NumProcessors())+int64(dst))
		rng = ps.rng
	}
	return r.sel.Select(r.topo, src, dst, r.k, rng, buf)
}

// AppendPathsLimitedScratch is AppendPathsScratch with an explicit
// path limit limK overriding the routing's configured K. For
// prefix-nested selectors (every built-in; see PrefixNested) the
// result at any smaller limit is a prefix of the result at a larger
// one on the same pair, which lets the multi-K evaluator derive the
// single longest prefix a whole K grid needs instead of re-selecting
// per K.
func (r *Routing) AppendPathsLimitedScratch(ps *PathScratch, buf []int, src, dst, limK int) []int {
	if src == dst {
		return buf
	}
	var rng *rand.Rand
	if _, deterministic := r.sel.(interface{ deterministic() }); !deterministic {
		ps.src.SeedStream(r.seed, int64(src)*int64(r.topo.NumProcessors())+int64(dst))
		rng = ps.rng
	}
	return r.sel.Select(r.topo, src, dst, limK, rng, buf)
}

// PathSet is the materialized multi-path route of one SD pair: the
// paper's MP_{i,j} with traffic fractions f_{i,j}.
type PathSet struct {
	Src, Dst int
	// Indices holds the canonical path indices (see DecodePathIndex).
	Indices []int
	// Fracs[i] is the fraction of the pair's traffic routed on
	// Indices[i]; the fractions sum to 1. NewRouting always produces
	// the uniform split.
	Fracs []float64
}

// PathSetFor materializes the route for one SD pair.
func (r *Routing) PathSetFor(src, dst int) PathSet {
	idx := r.Paths(src, dst)
	fr := make([]float64, len(idx))
	if len(idx) > 0 {
		u := 1.0 / float64(len(idx))
		for i := range fr {
			fr[i] = u
		}
	}
	return PathSet{Src: src, Dst: dst, Indices: idx, Fracs: fr}
}

// PortRoutes expands the pair's paths into output-port sequences for
// source routing (one inner slice per path).
func (r *Routing) PortRoutes(src, dst int) [][]int {
	idx := r.Paths(src, dst)
	out := make([][]int, len(idx))
	for i, id := range idx {
		out[i] = PortRoute(r.topo, src, dst, id)
	}
	return out
}

// MaxPathsUsed returns the largest number of paths the routing will
// assign to any SD pair: the resource footprint that limited
// multi-path routing trades against performance.
func (r *Routing) MaxPathsUsed() int {
	x := r.topo.MaxPaths()
	if !r.sel.MultiPath() {
		return 1
	}
	return clampK(r.k, x)
}

// pathCount predicts the number of paths Select produces for a pair
// with NCA level k (k == 0 meaning a self pair). Every scheme in this
// package emits a fixed count per level: 1 for single-path schemes,
// min(K, X) for the limited heuristics and all X paths for UMULTI
// (which ignores K). CompileRouting sizes its flat arrays from this
// and verifies the prediction while filling them.
func (r *Routing) pathCount(k int) int {
	if k == 0 {
		return 0
	}
	x := r.topo.WProd(k)
	if _, unlimited := r.sel.(UMulti); unlimited {
		return x
	}
	if !r.sel.MultiPath() {
		return 1
	}
	return clampK(r.k, x)
}

// Deterministic marker: schemes embedding this do not consume RNG, so
// Routing can skip deriving per-pair streams.
func (DModK) deterministic()    {}
func (SModK) deterministic()    {}
func (Shift1) deterministic()   {}
func (Disjoint) deterministic() {}
func (UMulti) deterministic()   {}
