package core

import (
	"reflect"
	"testing"

	"xgftsim/internal/topology"
)

func compiledTestTopos() []*topology.Topology {
	return []*topology.Topology{
		topology.MustNew(2, []int{4, 8}, []int{1, 4}),
		topology.MustNew(3, []int{4, 4, 8}, []int{1, 4, 4}),
		topology.MustNew(3, []int{2, 3, 4}, []int{1, 3, 2}), // mixed arities
	}
}

// TestCompiledMatchesRouting: every pair's compiled path indices, link
// lists and port routes must equal what the lazy Routing derives.
func TestCompiledMatchesRouting(t *testing.T) {
	for _, tp := range compiledTestTopos() {
		for _, sel := range allSelectors() {
			for _, k := range []int{1, 2, 3, tp.MaxPaths()} {
				for _, seed := range []int64{0, 99} {
					r := NewRouting(tp, sel, k, seed)
					c, err := CompileRouting(r, 0)
					if err != nil {
						t.Fatalf("%s: compile: %v", r, err)
					}
					n := tp.NumProcessors()
					var linkBuf []topology.LinkID
					for src := 0; src < n; src++ {
						for dst := 0; dst < n; dst++ {
							want := r.Paths(src, dst)
							got := c.PathIndices(src, dst)
							if len(got) != len(want) {
								t.Fatalf("%s pair (%d,%d): %d compiled paths, want %d", r, src, dst, len(got), len(want))
							}
							links, np := c.PairLinks(src, dst)
							if np != len(want) {
								t.Fatalf("%s pair (%d,%d): NumPaths %d, want %d", r, src, dst, np, len(want))
							}
							li := 0
							for i, idx := range want {
								if int(got[i]) != idx {
									t.Fatalf("%s pair (%d,%d): path[%d] = %d, want %d", r, src, dst, i, got[i], idx)
								}
								linkBuf = PathLinksForIndex(tp, src, dst, idx, linkBuf[:0])
								for _, l := range linkBuf {
									if links[li] != int32(l) {
										t.Fatalf("%s pair (%d,%d): link[%d] = %d, want %d", r, src, dst, li, links[li], l)
									}
									li++
								}
							}
							if li != len(links) {
								t.Fatalf("%s pair (%d,%d): %d links compiled, want %d", r, src, dst, len(links), li)
							}
						}
					}
					// Spot-check port-route expansion on a few pairs.
					for _, pair := range [][2]int{{0, n - 1}, {1, n / 2}, {n - 1, 0}} {
						if pair[0] == pair[1] {
							continue
						}
						if got, want := c.PortRoutes(pair[0], pair[1]), r.PortRoutes(pair[0], pair[1]); !reflect.DeepEqual(got, want) {
							t.Fatalf("%s pair %v: PortRoutes %v, want %v", r, pair, got, want)
						}
					}
				}
			}
		}
	}
}

// TestCompiledBytesExact: the closed-form estimate must equal the
// built table's actual footprint (that is what makes the budget check
// trustworthy without building).
func TestCompiledBytesExact(t *testing.T) {
	for _, tp := range compiledTestTopos() {
		for _, sel := range []Selector{DModK{}, Shift1{}, Disjoint{}, RandomK{}, UMulti{}} {
			r := NewRouting(tp, sel, 3, 1)
			c, err := CompileRouting(r, 0)
			if err != nil {
				t.Fatal(err)
			}
			if est, got := CompiledBytes(r), c.Bytes(); est != got {
				t.Fatalf("%s over %s: estimate %d bytes, actual %d", r, tp, est, got)
			}
		}
	}
}

// TestCompileBudget: a table over budget is refused, an unlimited or
// sufficient budget succeeds.
func TestCompileBudget(t *testing.T) {
	tp := topology.MustNew(2, []int{4, 8}, []int{1, 4})
	r := NewRouting(tp, Disjoint{}, 2, 0)
	if _, err := CompileRouting(r, 64); err == nil {
		t.Fatal("64-byte budget accepted")
	}
	if _, err := CompileRouting(r, CompiledBytes(r)); err != nil {
		t.Fatalf("exact budget refused: %v", err)
	}
}
