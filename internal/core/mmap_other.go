//go:build !unix

package core

import (
	"errors"
	"os"
)

// mmapFile is unsupported off unix; SegmentCache.load falls back to
// reading cache files onto the heap, which keeps the cache functional
// (still skips recompilation) at the cost of one copy per load.
func mmapFile(f *os.File, size int) ([]byte, error) {
	return nil, errors.ErrUnsupported
}

// munmapFile never runs off unix: no mapping is ever created.
func munmapFile(b []byte) {}
