package core

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"xgftsim/internal/topology"
)

func allSelectors() []Selector {
	return []Selector{DModK{}, SModK{}, RandomSingle{}, Shift1{}, Disjoint{}, RandomK{}, UMulti{}}
}

func multipathSelectors() []Selector {
	return []Selector{Shift1{}, Disjoint{}, RandomK{}}
}

// TestPaperShift1Example reproduces Section 4.2.2: for SD pair (0,63)
// with d-mod-k index 7 and K=3, shift-1 selects paths 7, 0, 1.
func TestPaperShift1Example(t *testing.T) {
	tp := fig3(t)
	got := Shift1{}.Select(tp, 0, 63, 3, nil, nil)
	want := []int{7, 0, 1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("shift-1 K=3 = %v, want %v", got, want)
	}
}

// TestPaperDisjointExample reproduces Section 4.2.3: on Figure 3's
// tree (w=(1,4,2)) the first four disjoint paths for SD pair (0,63)
// starting from d-mod-k index 7 are 7, 1, 3, 5 — the level-2 disjoint
// set with stride w_3 = 2.
func TestPaperDisjointExample(t *testing.T) {
	tp := fig3(t)
	got := Disjoint{}.Select(tp, 0, 63, 4, nil, nil)
	want := []int{7, 1, 3, 5}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("disjoint K=4 = %v, want %v", got, want)
	}
	// The full sequence must continue with the second level-2 group.
	got8 := Disjoint{}.Select(tp, 0, 63, 8, nil, nil)
	want8 := []int{7, 1, 3, 5, 0, 2, 4, 6}
	if !reflect.DeepEqual(got8, want8) {
		t.Fatalf("disjoint K=8 = %v, want %v", got8, want8)
	}
}

// TestDisjointMaximizesForkDepth verifies the heuristic's defining
// property: among the first K selected paths, the fork levels are as
// low as the topology permits — the first w_1 paths fork at level 1,
// the first w_1·w_2 within level <= 2, etc.
func TestDisjointMaximizesForkDepth(t *testing.T) {
	trees := []*topology.Topology{
		topology.MustNew(3, []int{4, 4, 8}, []int{1, 4, 4}),
		topology.MustNew(3, []int{2, 2, 2}, []int{2, 3, 2}),
	}
	for _, tp := range trees {
		src := 0
		dst := tp.NumProcessors() - 1
		k := tp.NCALevel(src, dst)
		x := tp.NumPathsBetween(src, dst)
		seq := Disjoint{}.Select(tp, src, dst, x, nil, nil)
		group := 1
		for level := 1; level <= k; level++ {
			group *= tp.W(level)
			// All paths within the first `group` entries must pairwise
			// fork at or below `level`.
			for a := 0; a < group; a++ {
				for b := a + 1; b < group; b++ {
					if f := ForkLevel(tp, k, seq[a], seq[b]); f > level {
						t.Fatalf("%s: entries %d,%d (paths %d,%d) fork at %d, want <= %d",
							tp, a, b, seq[a], seq[b], f, level)
					}
				}
			}
		}
	}
}

// TestShift1SharesLowerLinks pins the limitation the paper describes:
// on a 3-level tree, shift-1's consecutive paths (within one top-level
// group) share all links below the top.
func TestShift1SharesLowerLinks(t *testing.T) {
	tp := fig3(t)
	paths := Shift1{}.Select(tp, 0, 63, 2, nil, nil) // 7, 0 -> carry case
	_ = paths
	// Use a pair whose d-mod-k index doesn't wrap: dst 32 has digits
	// (2,0,0) -> u=(0,0,1)? compute directly.
	k := tp.NCALevel(0, 32)
	i0 := DModKIndex(tp, 32, k)
	if i0+1 < tp.WProd(k) {
		f := ForkLevel(tp, k, i0, i0+1)
		if f != k {
			t.Fatalf("consecutive shift-1 paths fork at %d, want top level %d", f, k)
		}
	}
}

func TestSelectorsRespectK(t *testing.T) {
	trees := []*topology.Topology{
		fig3(t),
		topology.MustNew(2, []int{8, 16}, []int{1, 8}),
		topology.MustNew(3, []int{2, 3, 2}, []int{2, 2, 3}),
	}
	rng := rand.New(rand.NewSource(1))
	for _, tp := range trees {
		n := tp.NumProcessors()
		pairs := [][2]int{{0, n - 1}, {1, n / 2}, {n - 1, 0}, {0, 1}}
		for _, pair := range pairs {
			src, dst := pair[0], pair[1]
			if src == dst {
				continue
			}
			x := tp.NumPathsBetween(src, dst)
			for K := 1; K <= x+2; K++ {
				for _, sel := range multipathSelectors() {
					got := sel.Select(tp, src, dst, K, rng, nil)
					wantLen := K
					if wantLen > x {
						wantLen = x
					}
					if len(got) != wantLen {
						t.Fatalf("%s %s K=%d (%d,%d): %d paths want %d", tp, sel.Name(), K, src, dst, len(got), wantLen)
					}
					seen := make(map[int]bool)
					for _, idx := range got {
						if idx < 0 || idx >= x {
							t.Fatalf("%s %s: index %d out of [0,%d)", tp, sel.Name(), idx, x)
						}
						if seen[idx] {
							t.Fatalf("%s %s K=%d: duplicate path %d in %v", tp, sel.Name(), K, idx, got)
						}
						seen[idx] = true
					}
				}
			}
			// Single-path schemes return exactly one path for any K.
			for _, sel := range []Selector{DModK{}, SModK{}, RandomSingle{}} {
				for _, K := range []int{1, 3, 0} {
					got := sel.Select(tp, src, dst, K, rng, nil)
					if len(got) != 1 {
						t.Fatalf("%s: single-path scheme returned %d paths", sel.Name(), len(got))
					}
				}
			}
		}
	}
}

// TestHeuristicsReachUMulti: at K >= X every heuristic must use all
// shortest paths — the optimality guarantee of Section 4.2.
func TestHeuristicsReachUMulti(t *testing.T) {
	trees := []*topology.Topology{
		fig3(t),
		topology.MustNew(3, []int{2, 2, 2}, []int{2, 3, 2}),
	}
	rng := rand.New(rand.NewSource(7))
	for _, tp := range trees {
		n := tp.NumProcessors()
		for _, pair := range [][2]int{{0, n - 1}, {2, 5}} {
			src, dst := pair[0], pair[1]
			if src == dst {
				continue
			}
			x := tp.NumPathsBetween(src, dst)
			want := UMulti{}.Select(tp, src, dst, 0, nil, nil)
			sort.Ints(want)
			for _, sel := range multipathSelectors() {
				for _, K := range []int{x, x + 5, 0} {
					got := sel.Select(tp, src, dst, K, rng, nil)
					sorted := append([]int(nil), got...)
					sort.Ints(sorted)
					if !reflect.DeepEqual(sorted, want) {
						t.Fatalf("%s %s K=%d: %v does not cover all %d paths", tp, sel.Name(), K, got, x)
					}
				}
			}
		}
	}
}

// TestHeuristicsStartAtDModK: at K=1 shift-1 and disjoint are exactly
// d-mod-k.
func TestHeuristicsStartAtDModK(t *testing.T) {
	tp := topology.MustNew(3, []int{4, 4, 8}, []int{1, 4, 4})
	n := tp.NumProcessors()
	for src := 0; src < n; src += 7 {
		for dst := 0; dst < n; dst += 5 {
			if src == dst {
				continue
			}
			want := DModK{}.Select(tp, src, dst, 1, nil, nil)
			for _, sel := range []Selector{Shift1{}, Disjoint{}} {
				got := sel.Select(tp, src, dst, 1, nil, nil)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s K=1 (%d,%d): %v want %v", sel.Name(), src, dst, got, want)
				}
			}
		}
	}
}

// TestShiftEqualsDisjointOnTwoLevel: on 2-level trees (w_1 = 1) the
// shift-1 and disjoint heuristics are identical, as Figure 4(a)/(c)
// state.
func TestShiftEqualsDisjointOnTwoLevel(t *testing.T) {
	for _, name := range []topology.PaperTopology{topology.Paper8Port2Tree, topology.Paper16Port2Tree} {
		tp, err := topology.FromPaper(name)
		if err != nil {
			t.Fatal(err)
		}
		n := tp.NumProcessors()
		for src := 0; src < n; src += 3 {
			for dst := 0; dst < n; dst += 7 {
				if src == dst {
					continue
				}
				x := tp.NumPathsBetween(src, dst)
				for K := 1; K <= x; K++ {
					a := Shift1{}.Select(tp, src, dst, K, nil, nil)
					b := Disjoint{}.Select(tp, src, dst, K, nil, nil)
					if !reflect.DeepEqual(a, b) {
						t.Fatalf("%s K=%d (%d,%d): shift %v != disjoint %v", tp, K, src, dst, a, b)
					}
				}
			}
		}
	}
}

func TestRandomKDeterministicPerRNG(t *testing.T) {
	tp := topology.MustNew(3, []int{4, 4, 8}, []int{1, 4, 4})
	a := RandomK{}.Select(tp, 0, 127, 4, rand.New(rand.NewSource(42)), nil)
	b := RandomK{}.Select(tp, 0, 127, 4, rand.New(rand.NewSource(42)), nil)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed gave %v and %v", a, b)
	}
}

// TestRandomKUniformCoverage: over many draws with K=1 every path
// should be selected with roughly equal frequency.
func TestRandomKUniformCoverage(t *testing.T) {
	tp := fig3(t)
	counts := make([]int, 8)
	rng := rand.New(rand.NewSource(3))
	const draws = 8000
	for i := 0; i < draws; i++ {
		idx := RandomK{}.Select(tp, 0, 63, 1, rng, nil)
		counts[idx[0]]++
	}
	for p, c := range counts {
		if c < draws/8-250 || c > draws/8+250 {
			t.Fatalf("path %d drawn %d times, expected ~%d", p, c, draws/8)
		}
	}
}

func TestSelectorByName(t *testing.T) {
	for _, sel := range allSelectors() {
		got, err := SelectorByName(sel.Name())
		if err != nil {
			t.Fatalf("SelectorByName(%q): %v", sel.Name(), err)
		}
		if got.Name() != sel.Name() {
			t.Fatalf("round trip %q -> %q", sel.Name(), got.Name())
		}
	}
	for _, alias := range []string{"DMODK", " shift1 ", "unlimited", "randomk"} {
		if _, err := SelectorByName(alias); err != nil {
			t.Errorf("alias %q rejected: %v", alias, err)
		}
	}
	if _, err := SelectorByName("bogus"); err == nil {
		t.Error("bogus scheme accepted")
	}
}

// TestDisjointOffsetBijection: the disjoint enumeration is a bijection
// on [0, X) for randomized arities (property-based).
func TestDisjointOffsetBijection(t *testing.T) {
	f := func(w1, w2, w3 uint8) bool {
		ws := []int{int(w1)%4 + 1, int(w2)%4 + 1, int(w3)%4 + 1}
		tp, err := topology.New(3, []int{2, 2, 2}, ws)
		if err != nil {
			return true
		}
		x := tp.WProd(3)
		seen := make(map[int]bool, x)
		for c := 0; c < x; c++ {
			off := DisjointOffset(tp, 3, c)
			if off < 0 || off >= x || seen[off] {
				return false
			}
			seen[off] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSelectorValidPathsQuick: property-based check that every scheme
// returns valid, distinct path indices on random pairs and limits.
func TestSelectorValidPathsQuick(t *testing.T) {
	tp := topology.MustNew(3, []int{4, 4, 8}, []int{1, 4, 4})
	n := tp.NumProcessors()
	rng := rand.New(rand.NewSource(9))
	f := func(s, d uint16, kk uint8) bool {
		src, dst := int(s)%n, int(d)%n
		if src == dst {
			return true
		}
		K := int(kk)%20 + 1
		x := tp.NumPathsBetween(src, dst)
		for _, sel := range allSelectors() {
			got := sel.Select(tp, src, dst, K, rng, nil)
			seen := make(map[int]bool)
			for _, idx := range got {
				if idx < 0 || idx >= x || seen[idx] {
					return false
				}
				seen[idx] = true
			}
			want := 1
			switch {
			case sel.Name() == "umulti":
				want = x // UMULTI uses every path regardless of K
			case sel.MultiPath():
				want = K
				if want > x {
					want = x
				}
			}
			if len(got) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
