package core

import "xgftsim/internal/obs"

// Shared routing-table metrics: how much table compilation work a run
// performed. Counted once per compile/patch (never on per-pair paths),
// so the instrumentation cost is a handful of atomic adds per table.
var met = struct {
	compiles      *obs.Counter
	compiledPairs *obs.Counter
	deltaPatches  *obs.Counter
	patchedPairs  *obs.Counter
	// Block-compiled routing: segments built from scratch (with their
	// cumulative compile wall-clock, so a warm-cache run shows ≈ 0
	// nanos), segment-cache traffic, and the high-water mark of bytes
	// held by live segments — the out-of-core mode's actual peak table
	// memory, which stays near one segment per walker regardless of N².
	segmentsCompiled    *obs.Counter
	segmentCompileNanos *obs.Counter
	segmentsCacheHit    *obs.Counter
	segmentsCacheMiss   *obs.Counter
	segmentsCacheWrite  *obs.Counter
	segmentLivePeak     *obs.Gauge
	// Prefetch pipeline: segments materialized asynchronously by the
	// compile workers, and admissions refused because pooled + in-flight
	// bytes would have exceeded the resident budget.
	segmentsPrefetched *obs.Counter
	prefetchStalls     *obs.Counter
	// Delta-encoded segments: rows served by copying the base scheme's
	// segment instead of recompiling, segments materialized by patching
	// a cached delta record, and cache bytes the delta format saved
	// against full-fat records.
	segDeltaRowsShared *obs.Counter
	segDeltaPatched    *obs.Counter
	segDeltaBytesSaved *obs.Counter
}{
	compiles:            obs.Default().Counter("core.compiles"),
	compiledPairs:       obs.Default().Counter("core.compiled_pairs"),
	deltaPatches:        obs.Default().Counter("core.delta_patches"),
	patchedPairs:        obs.Default().Counter("core.delta_patched_pairs"),
	segmentsCompiled:    obs.Default().Counter("core.segments_compiled"),
	segmentCompileNanos: obs.Default().Counter("core.segment_compile_nanos"),
	segmentsCacheHit:    obs.Default().Counter("core.segments_cache_hit"),
	segmentsCacheMiss:   obs.Default().Counter("core.segments_cache_miss"),
	segmentsCacheWrite:  obs.Default().Counter("core.segments_cache_write"),
	segmentLivePeak:     obs.Default().Gauge("core.segment_live_bytes_peak"),
	segmentsPrefetched:  obs.Default().Counter("core.segments_prefetched"),
	prefetchStalls:      obs.Default().Counter("core.prefetch_stalls"),
	segDeltaRowsShared:  obs.Default().Counter("core.segment_delta_rows_shared"),
	segDeltaPatched:     obs.Default().Counter("core.segments_delta_patched"),
	segDeltaBytesSaved:  obs.Default().Counter("core.segment_delta_bytes_saved"),
}
