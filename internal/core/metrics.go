package core

import "xgftsim/internal/obs"

// Shared routing-table metrics: how much table compilation work a run
// performed. Counted once per compile/patch (never on per-pair paths),
// so the instrumentation cost is a handful of atomic adds per table.
var met = struct {
	compiles      *obs.Counter
	compiledPairs *obs.Counter
	deltaPatches  *obs.Counter
	patchedPairs  *obs.Counter
}{
	compiles:      obs.Default().Counter("core.compiles"),
	compiledPairs: obs.Default().Counter("core.compiled_pairs"),
	deltaPatches:  obs.Default().Counter("core.delta_patches"),
	patchedPairs:  obs.Default().Counter("core.delta_patched_pairs"),
}
