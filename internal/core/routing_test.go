package core

import (
	"math"
	"reflect"
	"testing"

	"xgftsim/internal/topology"
)

func TestRoutingString(t *testing.T) {
	tp := topology.MustNew(2, []int{4, 8}, []int{1, 4})
	cases := []struct {
		r    *Routing
		want string
	}{
		{NewRouting(tp, DModK{}, 1, 0), "d-mod-k"},
		{NewRouting(tp, Disjoint{}, 4, 0), "disjoint(K=4)"},
		{NewRouting(tp, Shift1{}, 0, 0), "shift-1(K=all)"},
		{NewRouting(tp, UMulti{}, 0, 0), "umulti(K=all)"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("String() = %q want %q", got, c.want)
		}
	}
}

func TestRoutingAccessors(t *testing.T) {
	tp := topology.MustNew(2, []int{4, 8}, []int{1, 4})
	r := NewRouting(tp, Disjoint{}, 3, 99)
	if r.Topology() != tp || r.K() != 3 || r.Seed() != 99 || r.Selector().Name() != "disjoint" {
		t.Fatal("accessors wrong")
	}
	if r.MaxPathsUsed() != 3 {
		t.Fatalf("MaxPathsUsed=%d want 3", r.MaxPathsUsed())
	}
	if NewRouting(tp, Disjoint{}, 0, 0).MaxPathsUsed() != tp.MaxPaths() {
		t.Fatal("unlimited MaxPathsUsed wrong")
	}
	if NewRouting(tp, Disjoint{}, 100, 0).MaxPathsUsed() != tp.MaxPaths() {
		t.Fatal("clamped MaxPathsUsed wrong")
	}
	if NewRouting(tp, DModK{}, 100, 0).MaxPathsUsed() != 1 {
		t.Fatal("single-path MaxPathsUsed wrong")
	}
}

func TestNewRoutingPanics(t *testing.T) {
	tp := topology.MustNew(2, []int{4, 8}, []int{1, 4})
	for _, f := range []func(){
		func() { NewRouting(nil, DModK{}, 1, 0) },
		func() { NewRouting(tp, nil, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestRoutingSelfPairEmpty(t *testing.T) {
	tp := topology.MustNew(2, []int{4, 8}, []int{1, 4})
	r := NewRouting(tp, Disjoint{}, 2, 0)
	if got := r.Paths(3, 3); len(got) != 0 {
		t.Fatalf("self pair returned %v", got)
	}
}

// TestRoutingDeterministicAcrossCalls: randomized schemes must produce
// identical path sets for a pair regardless of call order, because the
// per-pair RNG stream is derived from (seed, src, dst).
func TestRoutingDeterministicAcrossCalls(t *testing.T) {
	tp := topology.MustNew(3, []int{4, 4, 8}, []int{1, 4, 4})
	r := NewRouting(tp, RandomK{}, 4, 12345)
	a := r.Paths(5, 77)
	// Interleave other pairs, then re-query.
	_ = r.Paths(1, 2)
	_ = r.Paths(77, 5)
	b := r.Paths(5, 77)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("path set changed across calls: %v vs %v", a, b)
	}
	// A different seed should (almost surely) give a different set
	// for at least one of several pairs.
	r2 := NewRouting(tp, RandomK{}, 4, 54321)
	diff := false
	for dst := 1; dst < 60; dst++ {
		if !reflect.DeepEqual(r.Paths(0, dst), r2.Paths(0, dst)) {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical routings")
	}
}

func TestPathSetUniformFractions(t *testing.T) {
	tp := topology.MustNew(3, []int{4, 4, 8}, []int{1, 4, 4})
	r := NewRouting(tp, Disjoint{}, 5, 0)
	ps := r.PathSetFor(0, 100)
	if ps.Src != 0 || ps.Dst != 100 {
		t.Fatal("PathSet endpoints wrong")
	}
	if len(ps.Indices) != 5 || len(ps.Fracs) != 5 {
		t.Fatalf("PathSet sizes: %d indices %d fracs", len(ps.Indices), len(ps.Fracs))
	}
	sum := 0.0
	for _, f := range ps.Fracs {
		if f != ps.Fracs[0] {
			t.Fatal("fractions not uniform")
		}
		sum += f
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("fractions sum to %g", sum)
	}
}

func TestPortRoutes(t *testing.T) {
	tp := topology.MustNew(3, []int{4, 4, 8}, []int{1, 4, 4})
	r := NewRouting(tp, Disjoint{}, 3, 0)
	routes := r.PortRoutes(0, 100)
	if len(routes) != 3 {
		t.Fatalf("%d routes want 3", len(routes))
	}
	k := tp.NCALevel(0, 100)
	for _, route := range routes {
		if len(route) != 2*k {
			t.Fatalf("route length %d want %d", len(route), 2*k)
		}
		node := tp.Processor(0)
		for _, p := range route {
			node = tp.PortPeer(node, p)
		}
		if tp.ProcessorID(node) != 100 {
			t.Fatal("route does not reach destination")
		}
	}
}

// TestAppendPathsReusesBuffer ensures the hot-path API appends without
// clobbering existing contents.
func TestAppendPathsReusesBuffer(t *testing.T) {
	tp := topology.MustNew(2, []int{4, 8}, []int{1, 4})
	r := NewRouting(tp, Shift1{}, 2, 0)
	buf := []int{-1}
	buf = r.AppendPaths(buf, 0, 31)
	if len(buf) != 3 || buf[0] != -1 {
		t.Fatalf("AppendPaths clobbered buffer: %v", buf)
	}
}
