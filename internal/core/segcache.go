package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"unsafe"
)

// SegmentCache is an on-disk store of compiled routing segments. Each
// segment is one file named by the FNV hash of its cache key (see
// BlockCompiledRouting: topology, scheme, K, seed, block size) plus
// the segment index; the full key is embedded in the header and
// verified on load, so hash collisions and parameter changes read as
// misses, never as wrong data. Files are written via temp + rename, so
// a crashed writer cannot leave a truncated file under the final name
// — and even if one appears, the size checks below reject it.
//
// Array payloads are stored in host byte order and memory-mapped back
// where the platform supports it (a sentinel word detects a
// foreign-endian file and degrades it to a miss). A cache directory is
// therefore a per-machine artifact, exactly like the benchmark records
// it accelerates.
type SegmentCache struct {
	dir      string
	maxBytes atomic.Int64
}

// OpenSegmentCache opens (creating if needed) a segment cache rooted
// at dir.
func OpenSegmentCache(dir string) (*SegmentCache, error) {
	if dir == "" {
		return nil, fmt.Errorf("core: segment cache needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: segment cache: %w", err)
	}
	return &SegmentCache{dir: dir}, nil
}

// Dir returns the cache's root directory.
func (c *SegmentCache) Dir() string { return c.dir }

// SetMaxBytes caps the cache's on-disk footprint; each write beyond the
// cap evicts the oldest records (by modification time) until the total
// fits again. Zero, the default, means unbounded. Readers that already
// opened an evicted record keep a valid view — eviction unlinks the
// name, and the pages live until the reader's mapping drops.
func (c *SegmentCache) SetMaxBytes(n int64) { c.maxBytes.Store(n) }

const (
	segMagic    = "XGFTSEG1"
	segSentinel = uint32(0x01020304) // written in host order: detects endian mismatch
	// Fixed header: magic(8) keyLen(4) segIdx(4) srcLo(8) srcHi(8)
	// nOff(8) nPathIdx(8) nLinks(8), then the key, padded to 8, then
	// the sentinel word padded to 8.
	segFixedHeader = 8 + 4 + 4 + 8 + 8 + 8 + 8 + 8
)

func align8(x int) int { return (x + 7) &^ 7 }

// path names the file for (key, segment index).
func (c *SegmentCache) path(key string, g int) string {
	h := fnv.New64a()
	h.Write([]byte(key))
	return filepath.Join(c.dir, fmt.Sprintf("%016x-%06d.seg", h.Sum64(), g))
}

// segTmpCounter distinguishes temp files created by this process.
var segTmpCounter atomic.Uint64

// tempFile creates a segment scratch file under an O_CREAT|O_EXCL name
// unique across processes (pid) and within this process (a counter):
// two writers persisting the same segment key — even from different
// processes sharing the cache directory — can never interleave writes
// on a shared temp path, because each owns its file exclusively until
// the atomic rename. A leftover name from a crashed predecessor that
// recycled our pid reads as EEXIST and is skipped, never reused.
func (c *SegmentCache) tempFile() (*os.File, error) {
	for attempts := 0; attempts < 1000; attempts++ {
		name := filepath.Join(c.dir, fmt.Sprintf("seg-%d-%d.tmp", os.Getpid(), segTmpCounter.Add(1)))
		f, err := os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if os.IsExist(err) {
			continue
		}
		return f, err
	}
	return nil, fmt.Errorf("core: segment cache: cannot create a unique temp file in %s", c.dir)
}

// store writes the segment atomically. Concurrent writers of the same
// segment race benignly: each writes its own exclusively-owned temp
// file (see tempFile), both produce identical bytes and the last
// rename wins.
func (c *SegmentCache) store(key string, g int, s *RoutingSegment) error {
	hdr := buildSegHeader(key, g, s)
	tmp, err := c.tempFile()
	if err != nil {
		return err
	}
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	for _, chunk := range [][]byte{hdr, int64Bytes(s.pathOff), int64Bytes(s.linkOff), int32Bytes(s.pathIdx), int32Bytes(s.links)} {
		if _, err := tmp.Write(chunk); err != nil {
			return cleanup(err)
		}
	}
	if err := tmp.Close(); err != nil {
		return cleanup(err)
	}
	if err := os.Rename(tmp.Name(), c.path(key, g)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	c.evict()
	return nil
}

// evict enforces the optional size cap: when the cache's record files
// exceed maxBytes, the oldest-modified are unlinked until the total
// fits. Unlinking never disturbs a record mid-read — an open file or
// live mapping keeps its pages until dropped — and the record just
// written is the newest, so a cap large enough for one record never
// evicts it.
func (c *SegmentCache) evict() {
	max := c.maxBytes.Load()
	if max <= 0 {
		return
	}
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return
	}
	type rec struct {
		name  string
		size  int64
		mtime int64
	}
	var recs []rec
	var total int64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if !strings.HasSuffix(name, ".seg") && !strings.HasSuffix(name, ".segd") {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			continue
		}
		recs = append(recs, rec{name, fi.Size(), fi.ModTime().UnixNano()})
		total += fi.Size()
	}
	if total <= max {
		return
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].mtime < recs[j].mtime })
	for _, r := range recs {
		if total <= max {
			break
		}
		if os.Remove(filepath.Join(c.dir, r.name)) == nil {
			total -= r.size
		}
	}
}

// buildSegHeader assembles the header block (fixed fields, key,
// sentinel), padded so the arrays that follow start 8-byte aligned.
func buildSegHeader(key string, g int, s *RoutingSegment) []byte {
	n := align8(segFixedHeader+len(key)) + 8
	hdr := make([]byte, n)
	copy(hdr, segMagic)
	le := binary.LittleEndian
	le.PutUint32(hdr[8:], uint32(len(key)))
	le.PutUint32(hdr[12:], uint32(g))
	le.PutUint64(hdr[16:], uint64(s.srcLo))
	le.PutUint64(hdr[24:], uint64(s.srcHi))
	le.PutUint64(hdr[32:], uint64(len(s.pathOff)))
	le.PutUint64(hdr[40:], uint64(len(s.pathIdx)))
	le.PutUint64(hdr[48:], uint64(len(s.links)))
	copy(hdr[segFixedHeader:], key)
	*(*uint32)(unsafe.Pointer(&hdr[n-8])) = segSentinel // host order on purpose
	return hdr
}

// load fetches (key, g) if present and valid, returning a segment that
// aliases the mapping (or a heap copy on platforms without mmap).
// Every failure mode — absent, truncated, foreign key, foreign endian,
// stale spans — is a miss: the caller recompiles and overwrites.
func (c *SegmentCache) load(key string, g, wantLo, wantHi, n int) (*RoutingSegment, bool) {
	path := c.path(key, g)
	f, err := os.Open(path)
	if err != nil {
		return nil, false
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil || st.Size() > int64(int(^uint(0)>>1)) {
		return nil, false
	}
	size := int(st.Size())
	if size < segFixedHeader+8 {
		return nil, false
	}
	data, mapped, err := readSegFile(f, size)
	if err != nil {
		return nil, false
	}
	drop := func() (*RoutingSegment, bool) {
		if mapped != nil {
			munmapFile(mapped)
		}
		return nil, false
	}
	if string(data[:8]) != segMagic {
		return drop()
	}
	le := binary.LittleEndian
	keyLen := int(le.Uint32(data[8:]))
	segIdx := int(le.Uint32(data[12:]))
	srcLo := int(le.Uint64(data[16:]))
	srcHi := int(le.Uint64(data[24:]))
	nOff := int(le.Uint64(data[32:]))
	nPathIdx := int(le.Uint64(data[40:]))
	nLinks := int(le.Uint64(data[48:]))
	hdrLen := align8(segFixedHeader+keyLen) + 8
	if keyLen != len(key) || hdrLen > size || string(data[segFixedHeader:segFixedHeader+keyLen]) != key {
		return drop()
	}
	var sent [4]byte
	*(*uint32)(unsafe.Pointer(&sent[0])) = segSentinel
	if !bytes.Equal(data[hdrLen-8:hdrLen-4], sent[:]) {
		return drop() // written on a foreign-endian machine
	}
	rows := (wantHi - wantLo) * n
	if segIdx != g || srcLo != wantLo || srcHi != wantHi || nOff != rows+1 ||
		nPathIdx < 0 || nLinks < 0 || size != hdrLen+16*nOff+4*nPathIdx+4*nLinks {
		return drop()
	}
	off := hdrLen
	pathOff, ok1 := sliceInt64(data[off:], nOff)
	off += 8 * nOff
	linkOff, ok2 := sliceInt64(data[off:], nOff)
	off += 8 * nOff
	pathIdx, ok3 := sliceInt32(data[off:], nPathIdx)
	off += 4 * nPathIdx
	links, ok4 := sliceInt32(data[off:], nLinks)
	if !ok1 || !ok2 || !ok3 || !ok4 {
		return drop()
	}
	s := &RoutingSegment{
		index: g, srcLo: srcLo, srcHi: srcHi, n: n,
		pathOff: pathOff, linkOff: linkOff, pathIdx: pathIdx, links: links,
		mapped: mapped,
	}
	s.bytes = s.Bytes()
	return s, true
}

// deltaPath names the file for a delta record of (key, segment index).
// Delta keys carry their own format prefix so the hash never collides
// with a full record's, but the distinct extension keeps the two record
// kinds tellable apart in a directory listing (and in eviction).
func (c *SegmentCache) deltaPath(key string, g int) string {
	h := fnv.New64a()
	h.Write([]byte(key))
	return filepath.Join(c.dir, fmt.Sprintf("%016x-%06d.segd", h.Sum64(), g))
}

const segDeltaMagic = "XGFTSGD1"

// storeDelta writes segment s's delta encoding d atomically, mirroring
// store's temp + rename discipline. The header reuses the full record's
// fixed layout with the shared-level mask in the nOff slot — a delta
// record has no offset arrays to count.
func (c *SegmentCache) storeDelta(key string, g int, s *RoutingSegment, d *SegmentDelta) error {
	hdr := buildDeltaHeader(key, g, s, d)
	tmp, err := c.tempFile()
	if err != nil {
		return err
	}
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	for _, chunk := range [][]byte{hdr, int32Bytes(d.PathIdx), int32Bytes(d.Links)} {
		if _, err := tmp.Write(chunk); err != nil {
			return cleanup(err)
		}
	}
	if err := tmp.Close(); err != nil {
		return cleanup(err)
	}
	if err := os.Rename(tmp.Name(), c.deltaPath(key, g)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	c.evict()
	return nil
}

// buildDeltaHeader is buildSegHeader for delta records: same fixed
// field widths and padding, delta magic, and the shared-level mask
// where a full record counts its offset rows.
func buildDeltaHeader(key string, g int, s *RoutingSegment, d *SegmentDelta) []byte {
	n := align8(segFixedHeader+len(key)) + 8
	hdr := make([]byte, n)
	copy(hdr, segDeltaMagic)
	le := binary.LittleEndian
	le.PutUint32(hdr[8:], uint32(len(key)))
	le.PutUint32(hdr[12:], uint32(g))
	le.PutUint64(hdr[16:], uint64(s.srcLo))
	le.PutUint64(hdr[24:], uint64(s.srcHi))
	le.PutUint64(hdr[32:], d.Mask)
	le.PutUint64(hdr[40:], uint64(len(d.PathIdx)))
	le.PutUint64(hdr[48:], uint64(len(d.Links)))
	copy(hdr[segFixedHeader:], key)
	*(*uint32)(unsafe.Pointer(&hdr[n-8])) = segSentinel // host order on purpose
	return hdr
}

// loadDelta fetches the delta record for segment g under plan pl. The
// returned delta's arrays alias the file mapping; cleanup releases it
// and must be called once the delta has been applied. As with load,
// every failure mode — absent, truncated, foreign key or endianness,
// stale spans, a mask or payload that disagrees with the plan — is a
// miss.
func (c *SegmentCache) loadDelta(pl *deltaPlan, g, wantLo, wantHi int) (*SegmentDelta, func(), bool) {
	key := pl.key
	f, err := os.Open(c.deltaPath(key, g))
	if err != nil {
		return nil, nil, false
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil || st.Size() > int64(int(^uint(0)>>1)) {
		return nil, nil, false
	}
	size := int(st.Size())
	if size < segFixedHeader+8 {
		return nil, nil, false
	}
	data, mapped, err := readSegFile(f, size)
	if err != nil {
		return nil, nil, false
	}
	drop := func() (*SegmentDelta, func(), bool) {
		if mapped != nil {
			munmapFile(mapped)
		}
		return nil, nil, false
	}
	if string(data[:8]) != segDeltaMagic {
		return drop()
	}
	le := binary.LittleEndian
	keyLen := int(le.Uint32(data[8:]))
	segIdx := int(le.Uint32(data[12:]))
	srcLo := int(le.Uint64(data[16:]))
	srcHi := int(le.Uint64(data[24:]))
	mask := le.Uint64(data[32:])
	nPathIdx := int(le.Uint64(data[40:]))
	nLinks := int(le.Uint64(data[48:]))
	hdrLen := align8(segFixedHeader+keyLen) + 8
	if keyLen != len(key) || hdrLen > size || string(data[segFixedHeader:segFixedHeader+keyLen]) != key {
		return drop()
	}
	var sent [4]byte
	*(*uint32)(unsafe.Pointer(&sent[0])) = segSentinel
	if !bytes.Equal(data[hdrLen-8:hdrLen-4], sent[:]) {
		return drop() // written on a foreign-endian machine
	}
	nSrc := int64(wantHi - wantLo)
	if segIdx != g || srcLo != wantLo || srcHi != wantHi || mask != pl.mask ||
		int64(nPathIdx) != nSrc*pl.chPathsPerSrc || int64(nLinks) != nSrc*pl.chLinksPerSrc ||
		size != hdrLen+4*nPathIdx+4*nLinks {
		return drop()
	}
	off := hdrLen
	pathIdx, ok1 := sliceInt32(data[off:], nPathIdx)
	off += 4 * nPathIdx
	links, ok2 := sliceInt32(data[off:], nLinks)
	if !ok1 || !ok2 {
		return drop()
	}
	d := &SegmentDelta{Mask: mask, PathIdx: pathIdx, Links: links}
	cleanup := func() {
		if mapped != nil {
			munmapFile(mapped)
		}
	}
	return d, cleanup, true
}

// forceHeapSegments, when set, makes readSegFile skip the mmap path so
// tests exercise the heap fallback (mmap_other.go's behavior) on every
// platform, build tags notwithstanding.
var forceHeapSegments atomic.Bool

// readSegFile maps the file when the platform supports it and falls
// back to reading it onto the heap otherwise; the second return is the
// mapping to hand to munmapFile, nil for the heap path.
func readSegFile(f *os.File, size int) (data, mapped []byte, err error) {
	if !forceHeapSegments.Load() {
		if m, err := mmapFile(f, size); err == nil {
			return m, m, nil
		}
	}
	buf := make([]byte, size)
	if _, err := f.ReadAt(buf, 0); err != nil {
		return nil, nil, err
	}
	return buf, nil, nil
}

// int64Bytes views a []int64 as raw bytes (host order) for writing.
func int64Bytes(a []int64) []byte {
	if len(a) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&a[0])), 8*len(a))
}

// int32Bytes views a []int32 as raw bytes (host order) for writing.
func int32Bytes(a []int32) []byte {
	if len(a) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&a[0])), 4*len(a))
}

// sliceInt64 views the first n int64s of b without copying when the
// base is 8-byte aligned (mmap bases are page-aligned and the layout
// pads to 8, so this is the normal case) and copies otherwise.
func sliceInt64(b []byte, n int) ([]int64, bool) {
	if n == 0 {
		return nil, true
	}
	if len(b) < 8*n {
		return nil, false
	}
	p := unsafe.Pointer(&b[0])
	if uintptr(p)%8 == 0 {
		return unsafe.Slice((*int64)(p), n), true
	}
	out := make([]int64, n)
	copy(unsafe.Slice((*byte)(unsafe.Pointer(&out[0])), 8*n), b)
	return out, true
}

// sliceInt32 is sliceInt64 for int32 payloads.
func sliceInt32(b []byte, n int) ([]int32, bool) {
	if n == 0 {
		return nil, true
	}
	if len(b) < 4*n {
		return nil, false
	}
	p := unsafe.Pointer(&b[0])
	if uintptr(p)%4 == 0 {
		return unsafe.Slice((*int32)(p), n), true
	}
	out := make([]int32, n)
	copy(unsafe.Slice((*byte)(unsafe.Pointer(&out[0])), 4*n), b)
	return out, true
}
