package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"xgftsim/internal/topology"
)

// Selector computes the set of shortest-path indices an SD pair may
// use under a routing scheme. Implementations must be safe for
// concurrent use: any randomness comes from the rng argument, which
// callers derive deterministically per pair or per sample.
//
// Prefix nesting: every scheme in this package additionally guarantees
// that, for a fixed pair and RNG stream, the list produced at limit K
// is a prefix of the list produced at limit K+1 (see PrefixNested).
// The multi-K evaluator depends on this to serve a whole K grid from
// one Kmax path derivation; custom selectors that uphold the invariant
// can opt in by implementing interface{ PrefixNested() bool }.
type Selector interface {
	// Name returns the scheme's short identifier (e.g. "disjoint").
	Name() string
	// MultiPath reports whether the scheme honours the path limit K.
	// Single-path schemes (d-mod-k, s-mod-k, random-single) ignore K.
	MultiPath() bool
	// Select appends the path indices for the SD pair (NCA level k
	// must be >= 1) to buf and returns the extended slice. At most
	// min(K, WProd(k)) distinct indices are produced; limK <= 0 means
	// unlimited. rng may be nil for deterministic schemes.
	Select(t *topology.Topology, src, dst, limK int, rng *rand.Rand, buf []int) []int
}

// clampK resolves the effective number of paths for a pair with X
// shortest paths under limit limK (<= 0 meaning unlimited).
func clampK(limK, x int) int {
	if limK <= 0 || limK > x {
		return x
	}
	return limK
}

// DModK is the destination-mod-k single-path scheme (Lin et al.), the
// de-facto standard fat-tree routing realized by InfiniBand subnet
// managers. It ignores K.
type DModK struct{}

// Name implements Selector.
func (DModK) Name() string { return "d-mod-k" }

// MultiPath implements Selector.
func (DModK) MultiPath() bool { return false }

// Select implements Selector.
func (DModK) Select(t *topology.Topology, src, dst, limK int, _ *rand.Rand, buf []int) []int {
	return append(buf, DModKIndex(t, dst, t.NCALevel(src, dst)))
}

// SModK is the source-mod-k single-path scheme; the paper notes its
// performance is indistinguishable from d-mod-k.
type SModK struct{}

// Name implements Selector.
func (SModK) Name() string { return "s-mod-k" }

// MultiPath implements Selector.
func (SModK) MultiPath() bool { return false }

// Select implements Selector.
func (SModK) Select(t *topology.Topology, src, dst, limK int, _ *rand.Rand, buf []int) []int {
	return append(buf, SModKIndex(t, src, t.NCALevel(src, dst)))
}

// RandomSingle picks one shortest path uniformly at random per SD pair
// (Greenberg & Leiserson style randomized routing). It ignores K.
type RandomSingle struct{}

// Name implements Selector.
func (RandomSingle) Name() string { return "random-single" }

// MultiPath implements Selector.
func (RandomSingle) MultiPath() bool { return false }

// Select implements Selector.
func (RandomSingle) Select(t *topology.Topology, src, dst, limK int, rng *rand.Rand, buf []int) []int {
	x := t.WProd(t.NCALevel(src, dst))
	return append(buf, rng.Intn(x))
}

// Shift1 is the paper's shift-1 heuristic: take the d-mod-k path index
// i and the K-1 consecutive indices after it, (i+1) mod X ...
// (i+K-1) mod X. Each shift is logically one whole d-mod-k routing, but
// consecutive indices differ only at the top level, so lower-tier links
// stay shared — the limitation that motivates the disjoint heuristic.
type Shift1 struct{}

// Name implements Selector.
func (Shift1) Name() string { return "shift-1" }

// MultiPath implements Selector.
func (Shift1) MultiPath() bool { return true }

// Select implements Selector.
func (Shift1) Select(t *topology.Topology, src, dst, limK int, _ *rand.Rand, buf []int) []int {
	k := t.NCALevel(src, dst)
	x := t.WProd(k)
	i0 := DModKIndex(t, dst, k)
	n := clampK(limK, x)
	for c := 0; c < n; c++ {
		buf = append(buf, (i0+c)%x)
	}
	return buf
}

// Disjoint is the paper's disjoint heuristic: K d-mod-k-structured
// paths chosen to fork as low in the tree as possible, maximizing
// link-disjointness. Starting from the d-mod-k index i, it first takes
// the w_1 paths forking at the processing node (stride Π_{t=2..k} w_t),
// then the w_1·w_2 paths forking at level-1 switches, and so on — the
// c-th selected path offsets i by Σ_j a_j·S_j where c = Σ_j a_j·Π_{t<j} w_t
// and S_j = Π_{t=j+1..k} w_t.
type Disjoint struct{}

// Name implements Selector.
func (Disjoint) Name() string { return "disjoint" }

// MultiPath implements Selector.
func (Disjoint) MultiPath() bool { return true }

// Select implements Selector.
func (Disjoint) Select(t *topology.Topology, src, dst, limK int, _ *rand.Rand, buf []int) []int {
	k := t.NCALevel(src, dst)
	x := t.WProd(k)
	i0 := DModKIndex(t, dst, k)
	n := clampK(limK, x)
	for c := 0; c < n; c++ {
		buf = append(buf, (i0+DisjointOffset(t, k, c))%x)
	}
	return buf
}

// DisjointOffset maps enumeration position c of the disjoint heuristic
// to its index offset at NCA level k: c is decomposed little-endian
// over radices w_1, w_2, ..., w_k and each digit a_j is weighted by the
// level-j stride S_j = Π_{t=j+1..k} w_t. The map is a digit-reversal
// bijection on [0, X), so all X offsets are distinct and K = X yields
// UMULTI. Exposed for the InfiniBand LFT synthesizer, which applies
// the heuristic at full height to destination path tags.
func DisjointOffset(t *topology.Topology, k, c int) int {
	off := 0
	for j := 1; j <= k; j++ {
		a := c % t.W(j)
		c /= t.W(j)
		off += a * (t.WProd(k) / t.WProd(j))
	}
	return off
}

// RandomK is the paper's random heuristic: min(K, X) distinct shortest
// paths drawn uniformly at random. It serves as the benchmark the
// structured heuristics must beat.
type RandomK struct{}

// Name implements Selector.
func (RandomK) Name() string { return "random" }

// MultiPath implements Selector.
func (RandomK) MultiPath() bool { return true }

// randomKDenseX bounds the dense-draw regime: pairs with at most this
// many shortest paths draw by partial Fisher-Yates over the whole
// index range. The regime is a function of X alone — never of the
// requested n — so that draws for increasing K extend one RNG stream
// and Select(K) stays a prefix of Select(K+1) (see PrefixNested).
const randomKDenseX = 16

// Select implements Selector. Both draw regimes are prefix-nested and
// allocation-free in the steady state: scratch lives in the spare
// capacity of buf, so callers reusing a path buffer (PathScratch, the
// evaluators) pay no per-pair allocation.
func (RandomK) Select(t *topology.Topology, src, dst, limK int, rng *rand.Rand, buf []int) []int {
	k := t.NCALevel(src, dst)
	x := t.WProd(k)
	n := clampK(limK, x)
	base := len(buf)
	if x <= randomKDenseX {
		// Dense draw: partial Fisher-Yates over [0, x), materialized in
		// buf's tail. Step i only touches positions >= i, so the first n
		// outputs depend only on the first n draws: nested by
		// construction. n == x costs one fewer draw (last slot is
		// forced), which matches the n = x-1 stream exactly.
		for i := 0; i < x; i++ {
			buf = append(buf, i)
		}
		perm := buf[base:]
		for i := 0; i < n && i < x-1; i++ {
			j := i + rng.Intn(x-i)
			perm[i], perm[j] = perm[j], perm[i]
		}
		return buf[:base+n]
	}
	// Sparse draw: rejection-sample distinct indices, membership checked
	// by scanning the (tiny) accepted slice — n <= x/4 here keeps both
	// the scan short and the expected rejections below n/3. The first m
	// accepted values are a pure function of the stream, so truncating
	// at any n <= x/4 nests.
	lim := n
	if sparseMax := x / 4; lim > sparseMax {
		lim = sparseMax
	}
draw:
	for len(buf)-base < lim {
		v := rng.Intn(x)
		for _, u := range buf[base:] {
			if u == v {
				continue draw
			}
		}
		buf = append(buf, v)
	}
	if n == lim {
		return buf
	}
	// Hybrid tail for n > x/4: lay out the not-yet-drawn indices in
	// ascending order after the accepted prefix and continue with
	// Fisher-Yates over that pool. The pool and its permutation are
	// again pure functions of the stream consumed so far, so every
	// larger n extends the same sequence.
	for v := 0; v < x; v++ {
		dup := false
		for _, u := range buf[base : base+lim] {
			if u == v {
				dup = true
				break
			}
		}
		if !dup {
			buf = append(buf, v)
		}
	}
	pool := buf[base+lim:]
	for i := 0; i < n-lim && i < len(pool)-1; i++ {
		j := i + rng.Intn(len(pool)-i)
		pool[i], pool[j] = pool[j], pool[i]
	}
	return buf[:base+n]
}

// UMulti is the unlimited multi-path routing UMULTI: every shortest
// path carries an equal share. Theorem 1 proves its oblivious
// performance ratio is exactly 1 on any XGFT.
type UMulti struct{}

// Name implements Selector.
func (UMulti) Name() string { return "umulti" }

// MultiPath implements Selector.
func (UMulti) MultiPath() bool { return true }

// Select implements Selector.
func (UMulti) Select(t *topology.Topology, src, dst, limK int, _ *rand.Rand, buf []int) []int {
	x := t.WProd(t.NCALevel(src, dst))
	for i := 0; i < x; i++ {
		buf = append(buf, i)
	}
	return buf
}

// PrefixNested reports whether sel guarantees the prefix-nesting
// invariant: for every topology, SD pair and RNG stream state, the
// path list produced at limit K is a prefix of the list produced at
// limit K+1. Single-path schemes and UMULTI nest trivially (the list
// does not depend on K); shift-1 and disjoint enumerate offsets
// sequentially; random's draw regimes are pure functions of X and the
// stream (see RandomK.Select). The multi-K evaluator requires this
// guarantee to serve an entire K grid from one Kmax derivation.
// Third-party selectors can opt in by implementing
// interface{ PrefixNested() bool }.
func PrefixNested(sel Selector) bool {
	switch sel.(type) {
	case DModK, SModK, RandomSingle, Shift1, Disjoint, RandomK, UMulti:
		return true
	}
	if p, ok := sel.(interface{ PrefixNested() bool }); ok {
		return p.PrefixNested()
	}
	return false
}

// SelectorByName resolves a scheme identifier (case-insensitive,
// accepting a few aliases) to its Selector.
func SelectorByName(name string) (Selector, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "d-mod-k", "dmodk", "dest-mod-k":
		return DModK{}, nil
	case "s-mod-k", "smodk", "source-mod-k":
		return SModK{}, nil
	case "random-single", "randsingle", "random1":
		return RandomSingle{}, nil
	case "shift-1", "shift1", "shift":
		return Shift1{}, nil
	case "disjoint":
		return Disjoint{}, nil
	case "random", "random-k", "randomk":
		return RandomK{}, nil
	case "umulti", "unlimited", "multipath-all":
		return UMulti{}, nil
	}
	return nil, fmt.Errorf("core: unknown routing scheme %q (want one of %s)", name, strings.Join(SelectorNames(), ", "))
}

// SelectorNames lists the canonical scheme identifiers.
func SelectorNames() []string {
	names := []string{"d-mod-k", "s-mod-k", "random-single", "shift-1", "disjoint", "random", "umulti"}
	sort.Strings(names)
	return names
}
