package core

import (
	"testing"

	"xgftsim/internal/topology"
)

// TestChecksumDeterministicAndSensitive: the logical-content hash is
// stable across independent compiles of the same routing, and changes
// when a fault rewrites any pair.
func TestChecksumDeterministicAndSensitive(t *testing.T) {
	topo := topology.MustNew(2, []int{4, 4}, []int{1, 4})
	r := NewRouting(topo, DModK{}, 4, 2012)
	a, err := CompileRouting(r, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CompileRouting(NewRouting(topo, DModK{}, 4, 2012), 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if a.Checksum() != b.Checksum() {
		t.Error("independent compiles of identical routing hash differently")
	}
	if a.UnreachablePairs() != 0 {
		t.Errorf("healthy table reports %d unreachable pairs", a.UnreachablePairs())
	}

	d, err := NewDeltaRepairer(a)
	if err != nil {
		t.Fatal(err)
	}
	fs := topology.NewFaultSet(topo)
	if err := fs.FailCable(topo.NodeAt(1, 0), 0); err != nil {
		t.Fatal(err)
	}
	rr := r.MustRepair(fs)
	patched, err := d.CompileRepairedDelta(rr)
	if err != nil {
		t.Fatal(err)
	}
	if patched.Checksum() == a.Checksum() {
		t.Error("fault that rewrites pairs left the checksum unchanged")
	}
	if got, want := patched.UnreachablePairs(), len(rr.DisconnectedPairs()); got != want {
		t.Errorf("UnreachablePairs = %d, want %d (DisconnectedPairs)", got, want)
	}
}

// TestChecksumIndependentOfMaterialization: a delta-patched table and
// a second delta compiled by an independent repairer over an
// independently compiled base hash identically — the hash covers
// logical content, not layout, which is what crash-recovery
// convergence checks depend on.
func TestChecksumIndependentOfMaterialization(t *testing.T) {
	topo := topology.MustNew(3, []int{2, 2, 2}, []int{1, 2, 2})
	fs := topology.NewFaultSet(topo)
	if err := fs.FailSwitch(topo.NodeAt(1, 1)); err != nil {
		t.Fatal(err)
	}
	sums := make([]uint64, 2)
	for i := range sums {
		r := NewRouting(topo, Disjoint{}, 2, 7)
		base, err := CompileRouting(r, 1<<30)
		if err != nil {
			t.Fatal(err)
		}
		d, err := NewDeltaRepairer(base)
		if err != nil {
			t.Fatal(err)
		}
		patched, err := d.CompileRepairedDelta(r.MustRepair(fs))
		if err != nil {
			t.Fatal(err)
		}
		sums[i] = patched.Checksum()
	}
	if sums[0] != sums[1] {
		t.Errorf("same faults, independent materializations: %016x vs %016x", sums[0], sums[1])
	}
}

// TestSwitchClosureSubsumesIncidentCables: failing a switch plus a
// cable already inside the switch's dead closure repairs and compiles
// to exactly the table of the switch alone — overlapping fault classes
// compose by closure, not by double-counting.
func TestSwitchClosureSubsumesIncidentCables(t *testing.T) {
	topo := topology.MustNew(2, []int{4, 4}, []int{1, 4})
	r := NewRouting(topo, DModK{}, 4, 2012)
	base, err := CompileRouting(r, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDeltaRepairer(base)
	if err != nil {
		t.Fatal(err)
	}
	sw := topo.NodeAt(1, 0)
	child := topo.Child(sw, 0)
	up := topo.UpPortOf(child, sw)

	fsSwitch := topology.NewFaultSet(topo)
	if err := fsSwitch.FailSwitch(sw); err != nil {
		t.Fatal(err)
	}
	fsBoth := topology.NewFaultSet(topo)
	if err := fsBoth.FailSwitch(sw); err != nil {
		t.Fatal(err)
	}
	if err := fsBoth.FailCable(child, up); err != nil {
		t.Fatal(err)
	}

	rrSwitch, rrBoth := r.MustRepair(fsSwitch), r.MustRepair(fsBoth)
	n := topo.NumProcessors()
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			a, b := rrSwitch.Paths(src, dst), rrBoth.Paths(src, dst)
			if len(a) != len(b) {
				t.Fatalf("(%d,%d): %v vs %v", src, dst, a, b)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("(%d,%d): %v vs %v", src, dst, a, b)
				}
			}
		}
	}
	tSwitch, err := d.CompileRepairedDelta(rrSwitch)
	if err != nil {
		t.Fatal(err)
	}
	tBoth, err := d.CompileRepairedDelta(rrBoth)
	if err != nil {
		t.Fatal(err)
	}
	if tSwitch.Checksum() != tBoth.Checksum() {
		t.Errorf("subsumed cable changed the compiled table: %016x vs %016x",
			tSwitch.Checksum(), tBoth.Checksum())
	}
}
