// Package core implements the paper's primary contribution: limited
// multi-path routing on extended generalized fat-trees. It provides
// the canonical enumeration of the shortest paths between a
// source-destination (SD) pair, the classic single-path schemes
// (d-mod-k, s-mod-k, random) they build on, and the three limited
// multi-path path-selection heuristics — shift-1, disjoint and random
// — parameterized by the per-pair path limit K. All heuristics
// degenerate to their base single-path scheme at K=1 and become the
// provably optimal UMULTI when K reaches the pair's path count.
package core

import (
	"fmt"

	"xgftsim/internal/topology"
)

// Path enumeration. An SD pair with NCA level k has X = Π_{i=1..k} w_i
// shortest paths, one per level-k switch of the common subtree
// (Property 1). Path i is the path through the i-th leftmost such top
// switch. Reconstructed from the paper's worked examples (DESIGN.md
// §2), the index is the mixed-radix number over the up-port choices
// u_1..u_k with u_1 MOST significant and u_k LEAST significant:
//
//	i = ((…(u_1·w_2 + u_2)·w_3 + u_3)…)·w_k + u_k
//
// so consecutive indices differ only in the top-level choice, and the
// fork level between two paths is the smallest digit position at which
// their indices differ.

// DecodePathIndex expands path index idx for an SD pair whose NCA is
// at level k into the up-port digits u_1..u_k, appending them to buf
// (buf[j-1] = u_j). It panics if idx is out of [0, WProd(k)).
func DecodePathIndex(t *topology.Topology, k, idx int, buf []int) []int {
	if idx < 0 || idx >= t.WProd(k) {
		panic(fmt.Sprintf("core: path index %d out of range [0,%d)", idx, t.WProd(k)))
	}
	start := len(buf)
	for j := 0; j < k; j++ {
		buf = append(buf, 0)
	}
	for j := k; j >= 1; j-- {
		buf[start+j-1] = idx % t.W(j)
		idx /= t.W(j)
	}
	return buf
}

// EncodePathIndex packs up-port digits u_1..u_k back into the canonical
// path index.
func EncodePathIndex(t *topology.Topology, up []int) int {
	idx := 0
	for j := 1; j <= len(up); j++ {
		if up[j-1] < 0 || up[j-1] >= t.W(j) {
			panic(fmt.Sprintf("core: up digit u_%d=%d out of range [0,%d)", j, up[j-1], t.W(j)))
		}
		idx = idx*t.W(j) + up[j-1]
	}
	return idx
}

// ForkLevel returns the lowest level at which paths a and b for a
// common SD pair (NCA level k) diverge: the smallest j with differing
// u_j digits. Equal indices return k+1 (they never diverge). Two paths
// are link-disjoint from their fork level upward.
func ForkLevel(t *topology.Topology, k, a, b int) int {
	if a == b {
		return k + 1
	}
	// Digit u_j has stride Π_{t=j+1..k} w_t; compare from the least
	// significant (u_k, level k) downward and remember the smallest j
	// that differs.
	fork := k + 1
	for j := k; j >= 1; j-- {
		if a%t.W(j) != b%t.W(j) {
			fork = j
		}
		a /= t.W(j)
		b /= t.W(j)
	}
	return fork
}

// DModKIndex returns the canonical path index of the d-mod-k route for
// destination dst on an SD pair with NCA level k. Climbing from level
// j-1 to level j, d-mod-k takes parent port
//
//	u_j = ⌊dst / Π_{t<j} w_t⌋ mod w_j.
func DModKIndex(t *topology.Topology, dst, k int) int {
	idx := 0
	for j := 1; j <= k; j++ {
		u := (dst / t.WProd(j-1)) % t.W(j)
		idx = idx*t.W(j) + u
	}
	return idx
}

// SModKIndex is the source-mod-k analogue of DModKIndex: ports are
// derived from the source address instead of the destination.
func SModKIndex(t *topology.Topology, src, k int) int {
	return DModKIndex(t, src, k)
}

// PortRoute returns the output-port sequence realizing path index idx
// between processing nodes src and dst: ports[0] is the port taken at
// the source node and ports[i] the output port at the i-th switch on
// the path. The sequence has 2k elements for an NCA at level k. This
// is the source-route a packet carries in the flit-level simulator and
// the per-hop decision an InfiniBand forwarding table must reproduce.
func PortRoute(t *topology.Topology, src, dst, idx int) []int {
	k := t.NCALevel(src, dst)
	if k == 0 {
		return nil
	}
	up := DecodePathIndex(t, k, idx, make([]int, 0, k))
	ports := make([]int, 0, 2*k)
	// Upward: at the level-(j-1) node take up port u_j.
	ports = append(ports, up...)
	// Downward: at the level-j switch take the down port toward dst's
	// digit d_j. Down ports follow the w_{j+1} up ports except at the
	// top level h.
	d := dst
	digits := make([]int, k+1)
	for i := 1; i <= k; i++ {
		digits[i] = d % t.M(i)
		d /= t.M(i)
	}
	for j := k; j >= 1; j-- {
		port := digits[j]
		if j < t.H() {
			port += t.W(j + 1)
		}
		ports = append(ports, port)
	}
	return ports
}

// PathLinksForIndex appends the directed links of path idx for the SD
// pair to buf. Equivalent to decoding the index and calling
// topology.AppendPathLinks, fused to avoid a second digit pass.
func PathLinksForIndex(t *topology.Topology, src, dst, idx int, buf []topology.LinkID) []topology.LinkID {
	k := t.NCALevel(src, dst)
	var up [17]int
	u := DecodePathIndex(t, k, idx, up[:0])
	return t.AppendPathLinks(buf, src, dst, u)
}

// AppendPathSetLinks appends the directed links of every path index in
// idxs for the SD pair to buf (2k links per path, in idxs order) and
// returns the extended slice. It is equivalent to PathLinksForIndex in
// a loop, but hoists the pair-invariant work — NCA level, radix
// lookups, index validation — out of the per-path iteration, which is
// what the flow evaluator's sampling loop and CompileRouting's fill
// pass want: they expand K paths for each of N (or N²) pairs.
func AppendPathSetLinks(t *topology.Topology, src, dst int, idxs []int, buf []topology.LinkID) []topology.LinkID {
	if len(idxs) == 0 {
		return buf
	}
	k := t.NCALevel(src, dst)
	x := t.WProd(k)
	var w, up [17]int
	for j := 1; j <= k; j++ {
		w[j] = t.W(j)
	}
	for _, idx := range idxs {
		if idx < 0 || idx >= x {
			panic(fmt.Sprintf("core: path index %d out of range [0,%d)", idx, x))
		}
		for j := k; j >= 1; j-- {
			up[j-1] = idx % w[j]
			idx /= w[j]
		}
		buf = t.AppendPathLinksNCA(buf, src, dst, k, up[:k])
	}
	return buf
}
