package core

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"xgftsim/internal/topology"
)

// DeltaRepairer builds degraded compiled tables incrementally from one
// healthy base table. Construction inverts the base table's PairLinks
// arrays into a link→pairs reverse index (a CSR mapping every directed
// link to the pairs whose selected path set crosses it); each repair
// then touches only the pairs reachable from the failed links — the
// locality a failure sweep has in abundance, since a handful of dead
// cables intersects a small fraction of the N² selected path sets.
//
// A DeltaRepairer is immutable after NewDeltaRepairer returns and safe
// for concurrent use: a sweep builds one per (topology, scheme, K,
// seed) and repairs every fault placement against it, from any number
// of goroutines.
type DeltaRepairer struct {
	base *CompiledRouting
	// Reverse CSR: pairIDs[pairOff[l]:pairOff[l+1]] are the pairs whose
	// compiled link list contains directed link l, ascending, each pair
	// listed once even when several of its paths share the link.
	pairOff []int64
	pairIDs []int32
}

// NewDeltaRepairer inverts a healthy compiled table into the link→pairs
// reverse index. The base must come from CompileRouting (repaired and
// delta tables are rejected: their rows already depend on a fault set).
func NewDeltaRepairer(base *CompiledRouting) (*DeltaRepairer, error) {
	if base == nil {
		return nil, fmt.Errorf("core: NewDeltaRepairer requires a compiled table")
	}
	if base.rep != nil || base.patch != nil {
		return nil, fmt.Errorf("core: delta repair must start from a healthy compiled table, got %s", base.r)
	}
	n := base.n
	if int64(n)*int64(n) > math.MaxInt32 {
		return nil, fmt.Errorf("core: %d processors overflow the delta repairer's int32 pair ids", n)
	}
	nl := base.topo.NumLinks()
	d := &DeltaRepairer{base: base, pairOff: make([]int64, nl+1)}
	// Two passes over the link arrays: count each link's distinct pairs,
	// then fill the rows. stamp[l] remembers the last pair that counted
	// link l, deduplicating the lower-tier links that a pair's paths
	// share without any per-pair set structure.
	counts := make([]int32, nl)
	stamp := make([]int32, nl)
	for i := range stamp {
		stamp[i] = -1
	}
	nn := n * n
	for p := 0; p < nn; p++ {
		for _, l := range base.links[base.linkOff[p]:base.linkOff[p+1]] {
			if stamp[l] != int32(p) {
				stamp[l] = int32(p)
				counts[l]++
			}
		}
	}
	var total int64
	for l := 0; l < nl; l++ {
		d.pairOff[l] = total
		total += int64(counts[l])
	}
	d.pairOff[nl] = total
	d.pairIDs = make([]int32, total)
	cursor := counts // reuse: cursor[l] = next free slot in row l
	for l := 0; l < nl; l++ {
		cursor[l] = 0
	}
	for i := range stamp {
		stamp[i] = -1
	}
	for p := 0; p < nn; p++ {
		for _, l := range base.links[base.linkOff[p]:base.linkOff[p+1]] {
			if stamp[l] != int32(p) {
				stamp[l] = int32(p)
				d.pairIDs[d.pairOff[l]+int64(cursor[l])] = int32(p)
				cursor[l]++
			}
		}
	}
	return d, nil
}

// Base returns the healthy compiled table the repairer indexes.
func (d *DeltaRepairer) Base() *CompiledRouting { return d.base }

// Bytes returns the memory footprint of the reverse index.
func (d *DeltaRepairer) Bytes() int64 {
	return 8*int64(len(d.pairOff)) + 4*int64(len(d.pairIDs))
}

// AffectedPairs appends (to buf) the distinct pairs p = src·N + dst
// whose base-selected path set crosses any failed link, in ascending
// pair order. These are exactly the pairs whose repaired selection can
// differ from the healthy one: Repair keeps a surviving selection
// untouched, so every other pair's compiled row is already correct.
func (d *DeltaRepairer) AffectedPairs(f *topology.FaultSet, buf []int32) []int32 {
	start := len(buf)
	for _, l := range f.DownLinks() {
		buf = append(buf, d.pairIDs[d.pairOff[l]:d.pairOff[l+1]]...)
	}
	aff := buf[start:]
	sort.Slice(aff, func(i, j int) bool { return aff[i] < aff[j] })
	// Dedup in place: a pair crossing several failed links appears once.
	w := 0
	for i, p := range aff {
		if i == 0 || p != aff[w-1] {
			aff[w] = p
			w++
		}
	}
	return buf[:start+w]
}

// AffectedCount returns the number of distinct pairs whose base
// selection crosses any failed link — the amount of re-selection work
// CompileRepairedDelta would do against f. One bitmap pass over the
// reverse index rows, cheap relative to the repair itself, so callers
// can weigh an incremental patch against lazy per-sample repair before
// committing to either.
func (d *DeltaRepairer) AffectedCount(f *topology.FaultSet) int {
	seen := make([]uint64, (d.base.n*d.base.n+63)/64)
	count := 0
	for _, l := range f.DownLinks() {
		for _, p := range d.pairIDs[d.pairOff[l]:d.pairOff[l+1]] {
			w, b := p>>6, uint(p)&63
			if seen[w]&(1<<b) == 0 {
				seen[w] |= 1 << b
				count++
			}
		}
	}
	return count
}

// DeltaRepair repairs the base routing against f and compiles the
// degraded table incrementally in one step; see CompileRepairedDelta.
func (d *DeltaRepairer) DeltaRepair(f *topology.FaultSet) (*CompiledRouting, error) {
	rr, err := d.base.r.Repair(f)
	if err != nil {
		return nil, err
	}
	return d.CompileRepairedDelta(rr)
}

// CompileRepairedDelta materializes rr into a compiled table by
// re-selecting and re-expanding only the affected pairs, patching their
// CSR rows copy-on-write while sharing every untouched row array with
// the base table. The result is bit-identical to CompileRepaired(rr):
// both derive each affected pair through rr.AppendPathsScratch, and
// unaffected pairs keep their surviving healthy selection by the repair
// contract. rr must wrap the routing the base table was compiled from.
// An empty fault set — or one missing every selected path — returns the
// base table itself (shared, immutable).
func (d *DeltaRepairer) CompileRepairedDelta(rr *RepairedRouting) (*CompiledRouting, error) {
	if rr == nil {
		return nil, fmt.Errorf("core: CompileRepairedDelta requires a repaired routing")
	}
	if rr.Base() != d.base.r && *rr.Base() != *d.base.r {
		return nil, fmt.Errorf("core: repaired routing %s does not wrap the delta base %s", rr, d.base.r)
	}
	if rr.Faults().Empty() {
		return d.base, nil
	}
	n := d.base.n
	t := d.base.topo
	nn := n * n
	// Mark-and-scan instead of gather-sort-dedup: marking every reverse
	// index row of every failed link into the patch array and scanning
	// the pair ids once yields the affected list in ascending order and
	// fills the patch redirects in the same pass.
	patch := make([]int32, nn)
	for _, l := range rr.Faults().DownLinks() {
		for _, p := range d.pairIDs[d.pairOff[l]:d.pairOff[l+1]] {
			patch[p] = 1
		}
	}
	na := 0
	for _, m := range patch {
		if m != 0 {
			na++
		}
	}
	if na == 0 {
		return d.base, nil
	}
	affected := make([]int32, 0, na)
	for p := 0; p < nn; p++ {
		if patch[p] != 0 {
			patch[p] = int32(len(affected))
			affected = append(affected, int32(p))
		} else {
			patch[p] = -1
		}
	}
	c := &CompiledRouting{
		r:    d.base.r,
		rep:  rr,
		topo: t,
		n:    n,
		// Shared with the base table; read-only by contract.
		pathOff: d.base.pathOff,
		pathIdx: d.base.pathIdx,
		linkOff: d.base.linkOff,
		links:   d.base.links,
		patch:   patch,
	}
	// Re-select and re-expand the affected pairs in parallel: each
	// worker owns a contiguous chunk of the affected list and appends
	// into private buffers, so the patched CSR is a straight
	// concatenation afterwards — same determinism as fill's disjoint
	// ranges, without predicted counts (repair shrinks rows unevenly).
	// The base rows bound the buffers exactly: a repaired selection
	// never has more paths than the healthy one, and every path of a
	// pair expands to the same 2k links.
	pathCounts := make([]int32, na)
	linkCounts := make([]int32, na)
	type chunk struct{ pathIdx, links []int32 }
	workers := compileWorkers(na)
	chunks := make([]chunk, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := src0(na, workers, w), src0(na, workers, w+1)
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var capP, capL int64
			for i := lo; i < hi; i++ {
				p := int64(affected[i])
				capP += d.base.pathOff[p+1] - d.base.pathOff[p]
				capL += d.base.linkOff[p+1] - d.base.linkOff[p]
			}
			ck := chunk{
				pathIdx: make([]int32, 0, capP),
				links:   make([]int32, 0, capL),
			}
			ps := NewPathScratch()
			pbuf := make([]int, 0, 64)
			lbuf := make([]topology.LinkID, 0, 256)
			for i := lo; i < hi; i++ {
				p := int(affected[i])
				src, dst := p/n, p%n
				// The pair is affected — some base-selected path
				// crosses a failed link — so AppendPathsScratch would
				// discard the healthy selection and fall through to
				// repairSelect; call it directly and skip re-deriving
				// the selection we already know is dead.
				pbuf = rr.repairSelect(ps, pbuf[:0], src, dst, t.NCALevel(src, dst))
				pathCounts[i] = int32(len(pbuf))
				for _, idx := range pbuf {
					ck.pathIdx = append(ck.pathIdx, int32(idx))
				}
				lbuf = AppendPathSetLinks(t, src, dst, pbuf, lbuf[:0])
				linkCounts[i] = int32(len(lbuf))
				for _, l := range lbuf {
					ck.links = append(ck.links, int32(l))
				}
			}
			chunks[w] = ck
		}(w, lo, hi)
	}
	wg.Wait()
	c.pPathOff = make([]int64, na+1)
	c.pLinkOff = make([]int64, na+1)
	var nPaths, nLinks int64
	for i := 0; i < na; i++ {
		c.pPathOff[i] = nPaths
		c.pLinkOff[i] = nLinks
		nPaths += int64(pathCounts[i])
		nLinks += int64(linkCounts[i])
	}
	c.pPathOff[na] = nPaths
	c.pLinkOff[na] = nLinks
	c.pPathIdx = make([]int32, 0, nPaths)
	c.pLinks = make([]int32, 0, nLinks)
	for _, ck := range chunks {
		c.pPathIdx = append(c.pPathIdx, ck.pathIdx...)
		c.pLinks = append(c.pLinks, ck.links...)
	}
	met.deltaPatches.Inc()
	met.patchedPairs.Add(int64(na))
	return c, nil
}
