package core

import "fmt"

// Delta-encoded segments. Routing schemes on the same XGFT share most
// of their path structure: every scheme's CSR offsets are identical
// whenever the per-NCA-level path counts match, and for whole levels
// the index sequences themselves coincide (shift-1 and disjoint agree
// at every level whose disjoint offsets are the identity; every scheme
// agrees at levels with a single shortest path; a limited scheme at
// K=1 degenerates to d-mod-k). A variant table compiled with
// BlockOptions.DeltaBase exploits this twice:
//
//   - in memory, segment compilation copies the base segment's rows
//     for every shared level (a memcpy per span) and only runs the
//     fill machinery for the levels whose indices actually differ;
//   - on disk, the cache record (xgftsegd-v1) stores no offset arrays
//     and no shared rows — just the changed levels' path indices and
//     links — and load materializes the segment by patching the base.
//
// Which levels are shared is a structural fact of the two schemes (per
// level, not per pair), so the delta needs no row-by-row diffing and
// the changed-row layout is reconstructible from the shared-level mask
// alone.

// idxAnchor classifies what a closed-form index generator's output is
// relative to: the destination's d-mod-k index, the source's s-mod-k
// index, or absolute indices.
type idxAnchor int

const (
	anchorDst idxAnchor = iota
	anchorSrc
	anchorAbs
)

// fastKindOf maps a selector to its closed-form generator tag.
func fastKindOf(sel Selector) fastScheme {
	switch sel.(type) {
	case DModK:
		return fastDModK
	case SModK:
		return fastSModK
	case Shift1:
		return fastShift1
	case Disjoint:
		return fastDisjoint
	case UMulti:
		return fastUMulti
	default:
		return fastGeneric
	}
}

// builtinSelector reports whether sel is one of this package's schemes
// — the set whose x == 1 behavior is known to be the single path 0.
func builtinSelector(sel Selector) bool {
	switch sel.(type) {
	case DModK, SModK, RandomSingle, Shift1, Disjoint, RandomK, UMulti:
		return true
	}
	return false
}

// idxOffsets returns the generator's offset sequence relative to its
// anchor at NCA level k (np entries), or ok=false for generators with
// no closed form.
func idxOffsets(r *Routing, k int) (anchor idxAnchor, offs []int32, ok bool) {
	t := r.Topology()
	np := r.pathCount(k)
	switch fastKindOf(r.Selector()) {
	case fastDModK:
		return anchorDst, []int32{0}, true
	case fastSModK:
		return anchorSrc, []int32{0}, true
	case fastShift1:
		offs = make([]int32, np)
		for c := range offs {
			offs[c] = int32(c)
		}
		return anchorDst, offs, true
	case fastDisjoint:
		offs = make([]int32, np)
		for c := range offs {
			offs[c] = int32(DisjointOffset(t, k, c))
		}
		return anchorDst, offs, true
	case fastUMulti:
		offs = make([]int32, np)
		for c := range offs {
			offs[c] = int32(c)
		}
		return anchorAbs, offs, true
	}
	return 0, nil, false
}

// levelShared reports whether base and variant emit identical index
// sequences for every pair at NCA level k.
func levelShared(base, variant *Routing, k int) bool {
	t := base.Topology()
	if base.pathCount(k) != variant.pathCount(k) {
		return false
	}
	if t.WProd(k) == 1 {
		// A single shortest path: every scheme with a known contract
		// emits {0}. Custom selectors make no such promise.
		return builtinSelector(base.Selector()) && builtinSelector(variant.Selector())
	}
	ba, bo, ok1 := idxOffsets(base, k)
	va, vo, ok2 := idxOffsets(variant, k)
	if !ok1 || !ok2 || ba != va || len(bo) != len(vo) {
		return false
	}
	for i := range bo {
		if bo[i] != vo[i] {
			return false
		}
	}
	return true
}

// DeltaSharedLevels computes, per NCA level 1..h, whether variant's
// index sequences coincide with base's (shared[0] is unused). ok is
// false when the two routings are not delta-compatible: different
// topologies or differing per-level path counts (which would change
// the CSR offsets and defeat row sharing entirely).
func DeltaSharedLevels(base, variant *Routing) (shared []bool, ok bool) {
	t := base.Topology()
	if variant.Topology().String() != t.String() {
		return nil, false
	}
	for k := 1; k <= t.H(); k++ {
		if base.pathCount(k) != variant.pathCount(k) {
			return nil, false
		}
	}
	shared = make([]bool, t.H()+1)
	for k := 1; k <= t.H(); k++ {
		shared[k] = levelShared(base, variant, k)
	}
	return shared, true
}

// DeltaSavings predicts the segment-cache bytes of storing variant's
// whole table full-fat versus delta-encoded against base. ok is false
// when the pair is not delta-compatible. cmd/xgftinfo prints the
// prediction so a sweep can be sized before anything compiles.
func DeltaSavings(base, variant *Routing) (fullBytes, deltaBytes int64, ok bool) {
	shared, ok := DeltaSharedLevels(base, variant)
	if !ok {
		return 0, 0, false
	}
	t := variant.Topology()
	n := int64(t.NumProcessors())
	var paths, links, chPaths, chLinks int64
	for k := 1; k <= t.H(); k++ {
		pairs := int64(t.ProcessorsPerSubtree(k) - t.ProcessorsPerSubtree(k-1))
		np := int64(variant.pathCount(k))
		paths += pairs * np
		links += pairs * np * int64(2*k)
		if !shared[k] {
			chPaths += pairs * np
			chLinks += pairs * np * int64(2*k)
		}
	}
	fullBytes = n * (16*n + 4*paths + 4*links)
	deltaBytes = n * 4 * (chPaths + chLinks)
	return fullBytes, deltaBytes, true
}

// deltaPlan is the precomputed delta geometry a variant table carries:
// the base table, the shared-level mask, the cache key pinning both
// scheme identities, and the per-source changed-data counts that size
// records without walking anything.
type deltaPlan struct {
	base   *BlockCompiledRouting
	shared []bool
	mask   uint64
	key    string

	h    int
	n    int
	psub []int
	np   []int

	chPathsPerSrc int64
	chLinksPerSrc int64
}

// newDeltaPlan validates base/variant compatibility and builds the
// plan; it panics on mismatch, mirroring the eager contract of
// NewBlockCompiledRouting's other invariants.
func newDeltaPlan(base, variant *BlockCompiledRouting) *deltaPlan {
	shared, ok := DeltaSharedLevels(base.r, variant.r)
	if !ok {
		panic(fmt.Sprintf("core: DeltaBase %s is not delta-compatible with %s (topology or per-level path counts differ)",
			base.r, variant.r))
	}
	if base.blockSrcs != variant.blockSrcs || base.n != variant.n {
		panic(fmt.Sprintf("core: DeltaBase blocking (%d sources/segment over %d) differs from variant (%d over %d)",
			base.blockSrcs, base.n, variant.blockSrcs, variant.n))
	}
	t := variant.topo
	pl := &deltaPlan{
		base:   base,
		shared: shared,
		h:      t.H(),
		n:      variant.n,
		psub:   make([]int, t.H()+1),
		np:     make([]int, t.H()+1),
	}
	pl.psub[0] = 1
	for k := 1; k <= pl.h; k++ {
		pl.psub[k] = t.ProcessorsPerSubtree(k)
		pl.np[k] = variant.r.pathCount(k)
		if shared[k] {
			pl.mask |= 1 << uint(k)
		} else {
			pairs := int64(pl.psub[k] - pl.psub[k-1])
			pl.chPathsPerSrc += pairs * int64(pl.np[k])
			pl.chLinksPerSrc += pairs * int64(pl.np[k]) * int64(2*k)
		}
	}
	br := base.r
	pl.key = fmt.Sprintf("xgftsegd-v1|%s|%s|K=%d|seed=%d|block=%d|base=%s|baseK=%d|baseSeed=%d",
		t, variant.r.Selector().Name(), variant.r.K(), variant.r.Seed(), variant.blockSrcs,
		br.Selector().Name(), br.K(), br.Seed())
	return pl
}

// forEachSpan visits every constant-NCA-level destination span of the
// segment covering sources [lo, hi), in row order: for each source the
// descending subtree intervals (level h down to 1), then — skipping
// the empty self row — the ascending ones. fn receives the level and
// the segment-local row range.
func (pl *deltaPlan) forEachSpan(lo, hi int, fn func(k, row0, row1 int)) {
	for src := lo; src < hi; src++ {
		base := (src - lo) * pl.n
		for k := pl.h; k >= 1; k-- {
			a := src - src%pl.psub[k]
			b := src - src%pl.psub[k-1]
			if a < b {
				fn(k, base+a, base+b)
			}
		}
		for k := 1; k <= pl.h; k++ {
			a := src - src%pl.psub[k-1] + pl.psub[k-1]
			b := src - src%pl.psub[k] + pl.psub[k]
			if a < b {
				fn(k, base+a, base+b)
			}
		}
	}
}

// SegmentDelta is the delta encoding of one variant segment against
// the base scheme's same-index segment: the shared-level mask plus the
// changed levels' path indices and links, concatenated in row order.
// Offsets and shared rows are omitted — both are reconstructed from
// the base segment when the delta is applied.
type SegmentDelta struct {
	// Mask has bit k set when level-k rows are shared with the base.
	Mask uint64
	// PathIdx and Links hold the changed rows' data in row order.
	PathIdx []int32
	Links   []int32
}

// Bytes returns the encoded payload size.
func (d *SegmentDelta) Bytes() int64 {
	return 4 * int64(len(d.PathIdx)+len(d.Links))
}

// EncodeDelta extracts the delta of a compiled segment against the
// configured DeltaBase. It requires the table to have been built with
// BlockOptions.DeltaBase.
func (b *BlockCompiledRouting) EncodeDelta(s *RoutingSegment) (*SegmentDelta, error) {
	pl := b.delta
	if pl == nil {
		return nil, fmt.Errorf("core: EncodeDelta needs a table built with BlockOptions.DeltaBase")
	}
	nSrc := int64(s.srcHi - s.srcLo)
	d := &SegmentDelta{
		Mask:    pl.mask,
		PathIdx: make([]int32, 0, nSrc*pl.chPathsPerSrc),
		Links:   make([]int32, 0, nSrc*pl.chLinksPerSrc),
	}
	pl.forEachSpan(s.srcLo, s.srcHi, func(k, r0, r1 int) {
		if pl.shared[k] {
			return
		}
		d.PathIdx = append(d.PathIdx, s.pathIdx[s.pathOff[r0]:s.pathOff[r1]]...)
		d.Links = append(d.Links, s.links[s.linkOff[r0]:s.linkOff[r1]]...)
	})
	return d, nil
}

// ApplyDelta materializes segment g by patching d onto the base
// scheme's segment g: offsets and shared rows copy from the base,
// changed rows from the delta. The result is a heap segment owned by
// the caller (it does not alias d or the base).
func (b *BlockCompiledRouting) ApplyDelta(g int, d *SegmentDelta) (*RoutingSegment, error) {
	pl := b.delta
	if pl == nil {
		return nil, fmt.Errorf("core: ApplyDelta needs a table built with BlockOptions.DeltaBase")
	}
	if d.Mask != pl.mask {
		return nil, fmt.Errorf("core: delta mask %#x does not match plan mask %#x", d.Mask, pl.mask)
	}
	lo, hi := b.SegmentSpan(g)
	nSrc := int64(hi - lo)
	if int64(len(d.PathIdx)) != nSrc*pl.chPathsPerSrc || int64(len(d.Links)) != nSrc*pl.chLinksPerSrc {
		return nil, fmt.Errorf("core: delta payload %d/%d does not match plan %d/%d",
			len(d.PathIdx), len(d.Links), nSrc*pl.chPathsPerSrc, nSrc*pl.chLinksPerSrc)
	}
	baseSeg, err := pl.base.Segment(g)
	if err != nil {
		return nil, fmt.Errorf("core: delta base segment %d: %w", g, err)
	}
	defer pl.base.Release(baseSeg)
	s := &RoutingSegment{
		index:   g,
		srcLo:   lo,
		srcHi:   hi,
		n:       b.n,
		pathOff: make([]int64, len(baseSeg.pathOff)),
		linkOff: make([]int64, len(baseSeg.linkOff)),
		pathIdx: make([]int32, len(baseSeg.pathIdx)),
		links:   make([]int32, len(baseSeg.links)),
	}
	copy(s.pathOff, baseSeg.pathOff)
	copy(s.linkOff, baseSeg.linkOff)
	var dp, dl int64
	pl.forEachSpan(lo, hi, func(k, r0, r1 int) {
		p0, p1 := s.pathOff[r0], s.pathOff[r1]
		l0, l1 := s.linkOff[r0], s.linkOff[r1]
		if pl.shared[k] {
			copy(s.pathIdx[p0:p1], baseSeg.pathIdx[p0:p1])
			copy(s.links[l0:l1], baseSeg.links[l0:l1])
			return
		}
		copy(s.pathIdx[p0:p1], d.PathIdx[dp:dp+(p1-p0)])
		copy(s.links[l0:l1], d.Links[dl:dl+(l1-l0)])
		dp += p1 - p0
		dl += l1 - l0
	})
	s.bytes = s.Bytes()
	return s, nil
}

// compileSegmentDelta compiles segment g against the delta base:
// shared levels memcpy from the base segment, changed levels run the
// fast fill. Output is bit-identical to a from-scratch compile (the
// differential tests pin this); the base fetch itself may pool, map or
// compile on the base table's side.
func (b *BlockCompiledRouting) compileSegmentDelta(g, lo, hi int) (*RoutingSegment, error) {
	baseSeg, err := b.delta.base.Segment(g)
	if err != nil {
		return nil, fmt.Errorf("core: delta base segment %d: %w", g, err)
	}
	defer b.delta.base.Release(baseSeg)
	s, f, err := b.fillSegment(g, lo, hi, baseSeg, b.delta.shared)
	if err != nil {
		return nil, err
	}
	met.segDeltaRowsShared.Add(f.rowsShared)
	return s, nil
}

// loadDeltaCached materializes segment g from a cached delta record.
func (b *BlockCompiledRouting) loadDeltaCached(g, lo, hi int) (*RoutingSegment, bool) {
	d, cleanup, ok := b.opts.Cache.loadDelta(b.delta, g, lo, hi)
	if !ok {
		return nil, false
	}
	s, err := b.ApplyDelta(g, d)
	cleanup()
	if err != nil {
		return nil, false
	}
	met.segDeltaPatched.Inc()
	return s, true
}

// storeDeltaCached persists segment g as a delta record and accounts
// the bytes saved against a full-fat record.
func (b *BlockCompiledRouting) storeDeltaCached(g int, s *RoutingSegment) error {
	d, err := b.EncodeDelta(s)
	if err != nil {
		return err
	}
	if err := b.opts.Cache.storeDelta(b.delta.key, g, s, d); err != nil {
		return err
	}
	if saved := s.Bytes() - d.Bytes(); saved > 0 {
		met.segDeltaBytesSaved.Add(saved)
	}
	return nil
}
