package core

// Async segment prefetch: a bounded worker pool materializes segments
// ahead of the evaluator so compile (or cache mmap) overlaps load
// accumulation instead of serializing with it. The pipeline is
// advisory — Prefetch never blocks and never fails; a prefetch that
// cannot be admitted is simply dropped and the segment compiles
// synchronously when Segment asks for it.
//
// Admission is budget-aware: an admitted prefetch charges its
// estimated bytes against ResidentBytes alongside the resident pool,
// so prefetched segments can never push peak table memory past the
// budget the caller configured. Rejections are counted by
// core.prefetch_stalls; segments actually materialized by a worker by
// core.segments_prefetched.

// maxPrefetchWorkers caps the compile-worker pool regardless of
// BlockOptions.Prefetch: prefetch depth beyond the worker count only
// queues, and a handful of compile-bound workers saturate any machine
// this code targets.
const maxPrefetchWorkers = 8

// prefetchEntry tracks one admitted prefetch. done closes after the
// worker either deposited the segment into the pool or gave up; the
// deposit (under b.mu) strictly precedes the close, so a waiter that
// observed the entry re-checks the pool after done.
type prefetchEntry struct {
	done chan struct{}
}

// segEstBytes is the admission estimate for segment g — the planning
// estimate, not the exact compiled size, so admission needs no
// compile-time information.
func (b *BlockCompiledRouting) segEstBytes(g int) int64 {
	lo, hi := b.SegmentSpan(g)
	return int64(hi-lo)*b.perSrcBytes + 16
}

// Prefetch asks the worker pool to materialize segment g ahead of use.
// It is a no-op when prefetching is disabled (BlockOptions.Prefetch
// <= 0), the table is closed, the segment is already resident or in
// flight, or admitting it would push pooled + in-flight bytes past
// ResidentBytes (counted as a prefetch stall). Safe for concurrent
// use; never blocks on compilation.
func (b *BlockCompiledRouting) Prefetch(g int) {
	if b.opts.Prefetch <= 0 {
		return
	}
	if g < 0 || g >= b.numSegments {
		return
	}
	est := b.segEstBytes(g)
	b.mu.Lock()
	if b.closed || b.pool[g] != nil || b.inflight[g] != nil {
		b.mu.Unlock()
		return
	}
	if b.poolBytes+b.inflightBytes+est > b.opts.ResidentBytes {
		b.mu.Unlock()
		met.prefetchStalls.Inc()
		return
	}
	if !b.prefStarted {
		b.startPrefetchersLocked()
	}
	e := &prefetchEntry{done: make(chan struct{})}
	b.inflight[g] = e
	b.inflightBytes += est
	b.mu.Unlock()
	select {
	case b.prefCh <- g:
	default:
		// Queue full — retract the admission instead of blocking the
		// caller's evaluation loop.
		b.mu.Lock()
		if b.inflight[g] == e {
			delete(b.inflight, g)
			b.inflightBytes -= est
		}
		b.mu.Unlock()
		close(e.done)
		met.prefetchStalls.Inc()
	}
}

// startPrefetchersLocked spins up the worker pool on first use; b.mu
// must be held.
func (b *BlockCompiledRouting) startPrefetchersLocked() {
	nw := b.opts.Prefetch
	if nw > maxPrefetchWorkers {
		nw = maxPrefetchWorkers
	}
	if nw > b.numSegments {
		nw = b.numSegments
	}
	b.prefCh = make(chan int, b.numSegments)
	b.prefStop = make(chan struct{})
	b.prefWG.Add(nw)
	for i := 0; i < nw; i++ {
		go b.prefetchWorker()
	}
	b.prefStarted = true
}

func (b *BlockCompiledRouting) prefetchWorker() {
	defer b.prefWG.Done()
	for {
		select {
		case <-b.prefStop:
			return
		case g := <-b.prefCh:
			b.runPrefetch(g)
		}
	}
}

// runPrefetch materializes one admitted segment and deposits it into
// the resident pool; the admission already reserved its bytes, so the
// deposit may not be refused. A failed compile (misbehaving custom
// selector) retracts silently — the error surfaces from the
// synchronous Segment call instead, exactly as without prefetch.
func (b *BlockCompiledRouting) runPrefetch(g int) {
	est := b.segEstBytes(g)
	b.mu.Lock()
	e := b.inflight[g]
	if e == nil {
		b.mu.Unlock()
		return
	}
	if b.closed || b.pool[g] != nil {
		delete(b.inflight, g)
		b.inflightBytes -= est
		b.mu.Unlock()
		close(e.done)
		return
	}
	b.mu.Unlock()

	lo, hi := b.SegmentSpan(g)
	s, err := b.materialize(g, lo, hi)

	b.mu.Lock()
	delete(b.inflight, g)
	b.inflightBytes -= est
	if err != nil || b.closed {
		b.mu.Unlock()
		if s != nil {
			s.drop()
		}
		close(e.done)
		return
	}
	b.pool[g] = s
	b.poolBytes += s.bytes
	b.liveBytes += s.bytes
	live := b.liveBytes
	b.mu.Unlock()
	met.segmentLivePeak.SetMax(live)
	met.segmentsPrefetched.Inc()
	close(e.done)
}
