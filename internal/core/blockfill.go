package core

import (
	"fmt"

	"xgftsim/internal/topology"
)

// Segment fill. compileSegment's job — every (src, dst) CSR row of a
// source block — has two structural regularities the generic per-pair
// loop (NCALevel + Selector.Select + AppendPathSetLinks for each dst)
// cannot exploit:
//
//  1. For a fixed source, the destination axis partitions into at most
//     2h+1 maximal intervals of constant NCA level (the nested aligned
//     subtree blocks of the source), so per-level constants — path
//     count, link stride, radix tables, the disjoint offset table —
//     hoist out of the dst loop entirely.
//  2. Path links separate into a (source, path index) half and a
//     destination half (see topology.LinkExpander), so the source half
//     of every canonical path is derived once per source instead of
//     once per pair.
//
// The filler below applies both. Path indices come from closed-form
// per-scheme generators for the built-in deterministic selectors
// (identical formulas to their Select methods) and from
// Routing.AppendPathsScratch for randomized or custom selectors, so
// every emitted row is bit-identical to the generic loop —
// TestBlockCompiledMatchesCompiled diffs the result against
// CompileRouting pair by pair.

// fastScheme tags the built-in deterministic selectors with closed-form
// index generation; fastGeneric falls back to Selector.Select per pair.
type fastScheme int

const (
	fastGeneric fastScheme = iota
	fastDModK
	fastSModK
	fastShift1
	fastDisjoint
	fastUMulti
)

// segFiller holds the reusable state of one segment fill: radix tables,
// per-level path-count and offset tables, the link expander and the
// generic-selector scratch. One filler per compileSegment call; fills
// are single-goroutine (block parallelism is across segments).
type segFiller struct {
	r    *Routing
	topo *topology.Topology
	exp  *topology.LinkExpander
	h    int
	n    int

	w     [maxDigits]int
	wprod [maxDigits]int
	psub  [maxDigits]int // processors per level-k subtree
	np    [maxDigits]int // paths per pair at NCA level k

	scheme fastScheme
	offs   [maxDigits][]int32 // disjoint enumeration offsets per level
	iota   []int32            // 0..x-1 for UMULTI
	smod   [maxDigits]int     // s-mod-k index per level (current source)

	idxBuf  []int32
	pathBuf []int
	ps      *PathScratch

	// Delta fill (see segdelta.go): when base is non-nil, spans at
	// levels marked shared copy the base segment's rows instead of
	// regenerating them; rowsShared counts the rows served that way.
	base       *RoutingSegment
	shared     []bool
	rowsShared int64
}

func newSegFiller(r *Routing) *segFiller {
	t := r.Topology()
	f := &segFiller{
		r:    r,
		topo: t,
		exp:  t.NewLinkExpander(),
		h:    t.H(),
		n:    t.NumProcessors(),
	}
	f.psub[0] = 1
	maxNP := 0
	for k := 1; k <= f.h; k++ {
		f.w[k] = t.W(k)
		f.wprod[k] = t.WProd(k)
		f.psub[k] = t.ProcessorsPerSubtree(k)
		f.np[k] = r.pathCount(k)
		if f.np[k] > maxNP {
			maxNP = f.np[k]
		}
	}
	f.wprod[0] = 1
	f.scheme = fastKindOf(r.sel)
	switch f.scheme {
	case fastDisjoint:
		for k := 1; k <= f.h; k++ {
			f.offs[k] = make([]int32, f.np[k])
			for c := 0; c < f.np[k]; c++ {
				f.offs[k][c] = int32(DisjointOffset(t, k, c))
			}
		}
	case fastUMulti:
		f.iota = make([]int32, f.wprod[f.h])
		for i := range f.iota {
			f.iota[i] = int32(i)
		}
	case fastGeneric:
		f.ps = NewPathScratch()
	}
	f.idxBuf = make([]int32, maxNP)
	return f
}

// perSourceCounts returns the exact per-source path and link totals —
// every source of an XGFT sees the same per-level pair counts, so the
// segment arrays can be sized in closed form before the fill.
func (f *segFiller) perSourceCounts() (paths, links int64) {
	for k := 1; k <= f.h; k++ {
		pairs := int64(f.psub[k] - f.psub[k-1])
		np := int64(f.np[k])
		paths += pairs * np
		links += pairs * np * int64(2*k)
	}
	return paths, links
}

// dmodkIndex is DModKIndex over the filler's cached radix tables.
func (f *segFiller) dmodkIndex(v, k int) int {
	idx := 0
	for j := 1; j <= k; j++ {
		idx = idx*f.w[j] + (v/f.wprod[j-1])%f.w[j]
	}
	return idx
}

// fill writes every CSR row of sources [lo, hi) into s, whose offset
// and data arrays are already sized exactly. Rows are emitted in the
// same (src, dst) order as the generic loop.
func (f *segFiller) fill(s *RoutingSegment, lo, hi int) error {
	var nPaths, nLinks int64
	p := 0
	for src := lo; src < hi; src++ {
		f.exp.SetSource(src)
		if f.scheme == fastSModK {
			for k := 1; k <= f.h; k++ {
				f.smod[k] = f.dmodkIndex(src, k)
			}
		}
		// Destination intervals of constant NCA level: the nested
		// aligned subtree blocks of src, split at the next-lower block.
		// Descending run (dst < src), the self pair, ascending run.
		for k := f.h; k >= 1; k-- {
			a := src - src%f.psub[k]
			b := src - src%f.psub[k-1]
			if a < b {
				if err := f.span(s, src, a, b, k, &p, &nPaths, &nLinks); err != nil {
					return err
				}
			}
		}
		s.pathOff[p] = nPaths
		s.linkOff[p] = nLinks
		p++ // self pair: empty row
		for k := 1; k <= f.h; k++ {
			a := src - src%f.psub[k-1] + f.psub[k-1]
			b := src - src%f.psub[k] + f.psub[k]
			if a < b {
				if err := f.span(s, src, a, b, k, &p, &nPaths, &nLinks); err != nil {
					return err
				}
			}
		}
	}
	s.pathOff[p] = nPaths
	s.linkOff[p] = nLinks
	if nPaths != int64(len(s.pathIdx)) || nLinks != int64(len(s.links)) {
		return fmt.Errorf("core: segment fill emitted %d paths/%d links, sized %d/%d",
			nPaths, nLinks, len(s.pathIdx), len(s.links))
	}
	return nil
}

// span emits the rows of destinations [d0, d1), all at NCA level k
// against src — by copying the base segment's rows when a delta fill
// marked level k shared, and by generating them otherwise.
func (f *segFiller) span(s *RoutingSegment, src, d0, d1, k int, p *int, nPaths, nLinks *int64) error {
	if f.base != nil && f.shared[k] {
		f.copySpan(s, d0, d1, k, p, nPaths, nLinks)
		return nil
	}
	return f.fillSpan(s, src, d0, d1, k, p, nPaths, nLinks)
}

// copySpan copies the rows of destinations [d0, d1) at level k out of
// the base segment. Because delta compatibility requires equal
// per-level path counts (see DeltaSharedLevels), the base segment's
// rows sit at exactly the same pathIdx/links positions as the rows
// being written, so the copy is two straight memmoves per span.
func (f *segFiller) copySpan(s *RoutingSegment, d0, d1, k int, p *int, nPaths, nLinks *int64) {
	np := int64(f.np[k])
	stride := np * int64(2*k)
	rows := d1 - d0
	row := *p
	paths := *nPaths
	links := *nLinks
	for i := 0; i < rows; i++ {
		s.pathOff[row] = paths + int64(i)*np
		s.linkOff[row] = links + int64(i)*stride
		row++
	}
	copy(s.pathIdx[paths:paths+int64(rows)*np], f.base.pathIdx[paths:paths+int64(rows)*np])
	copy(s.links[links:links+int64(rows)*stride], f.base.links[links:links+int64(rows)*stride])
	f.rowsShared += int64(rows)
	*p = row
	*nPaths = paths + int64(rows)*np
	*nLinks = links + int64(rows)*stride
}

// fillSpan emits the rows of destinations [d0, d1), all at NCA level k
// against src.
func (f *segFiller) fillSpan(s *RoutingSegment, src, d0, d1, k int, p *int, nPaths, nLinks *int64) error {
	np := f.np[k]
	stride := 2 * k
	x := f.wprod[k]
	row := *p
	paths := *nPaths
	links := *nLinks
	for dst := d0; dst < d1; dst++ {
		s.pathOff[row] = paths
		s.linkOff[row] = links
		row++
		idxs := f.idxBuf[:np]
		switch f.scheme {
		case fastDModK:
			idxs[0] = int32(f.dmodkIndex(dst, k))
		case fastSModK:
			idxs[0] = int32(f.smod[k])
		case fastShift1:
			i0 := f.dmodkIndex(dst, k)
			for c := 0; c < np; c++ {
				idxs[c] = int32((i0 + c) % x)
			}
		case fastDisjoint:
			i0 := f.dmodkIndex(dst, k)
			offs := f.offs[k]
			for c := 0; c < np; c++ {
				idxs[c] = int32((i0 + int(offs[c])) % x)
			}
		case fastUMulti:
			idxs = f.iota[:np]
		default:
			f.pathBuf = f.r.AppendPathsScratch(f.ps, f.pathBuf[:0], src, dst)
			if len(f.pathBuf) != np {
				return fmt.Errorf("core: selector %s produced %d paths for pair (%d,%d), predicted %d; custom selectors must emit a fixed count per NCA level to be compilable",
					f.r.Selector().Name(), len(f.pathBuf), src, dst, np)
			}
			for i, idx := range f.pathBuf {
				idxs[i] = int32(idx)
			}
		}
		copy(s.pathIdx[paths:paths+int64(np)], idxs)
		f.exp.PairLinks(dst, k, idxs, s.links[links:links+int64(np*stride)])
		paths += int64(np)
		links += int64(np * stride)
	}
	*p = row
	*nPaths = paths
	*nLinks = links
	return nil
}
