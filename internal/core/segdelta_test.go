package core

import (
	"os"
	"path/filepath"
	"testing"
)

// Delta test pair: on blockTestTopo (w = 1,4,4), shift-1 and disjoint
// at K=4 have identical per-level path counts, share levels 1 and 2
// (the disjoint offsets are the identity while the radix product stays
// within w2), and genuinely differ at level 3 — so a delta has both
// copied and recompiled spans, and a delta record is strictly smaller
// than a full one.
func deltaTestPair(t *testing.T) (base, variant *Routing) {
	t.Helper()
	topo := blockTestTopo(t)
	return NewRouting(topo, Disjoint{}, 4, 0), NewRouting(topo, Shift1{}, 4, 0)
}

func TestDeltaSharedLevels(t *testing.T) {
	base, variant := deltaTestPair(t)
	shared, ok := DeltaSharedLevels(base, variant)
	if !ok {
		t.Fatalf("disjoint/shift1 at equal K should be delta-compatible")
	}
	if !shared[1] || !shared[2] || shared[3] {
		t.Fatalf("shared levels %v, want [_ true true false]", shared)
	}
	full, delta, ok := DeltaSavings(base, variant)
	if !ok || delta <= 0 || delta >= full {
		t.Fatalf("DeltaSavings = (%d, %d, %v), want 0 < delta < full", full, delta, ok)
	}
	// Mismatched path counts (K=1 vs K=4) defeat row sharing entirely.
	if _, ok := DeltaSharedLevels(NewRouting(base.Topology(), DModK{}, 1, 0), variant); ok {
		t.Fatalf("differing per-level path counts reported delta-compatible")
	}
}

// TestDeltaCompiledMatchesScratch pins the tentpole contract for the
// in-memory half: a table compiled with DeltaBase is bit-identical,
// pair by pair, to the fully compiled variant table.
func TestDeltaCompiledMatchesScratch(t *testing.T) {
	baseR, varR := deltaTestPair(t)
	c, err := CompileRouting(varR, 1<<30)
	if err != nil {
		t.Fatalf("CompileRouting: %v", err)
	}
	base := NewBlockCompiledRouting(baseR, BlockOptions{SegmentBytes: 64 << 10})
	defer base.Close()
	b := NewBlockCompiledRouting(varR, BlockOptions{SegmentBytes: 64 << 10, DeltaBase: base})
	defer b.Close()
	if b.NumSegments() < 2 {
		t.Fatalf("want multiple segments, got %d", b.NumSegments())
	}
	n := b.Topology().NumProcessors()
	rows0 := met.segDeltaRowsShared.Value()
	for g := 0; g < b.NumSegments(); g++ {
		seg, err := b.Segment(g)
		if err != nil {
			t.Fatalf("Segment(%d): %v", g, err)
		}
		lo, hi := b.SegmentSpan(g)
		for src := lo; src < hi; src++ {
			for dst := 0; dst < n; dst++ {
				comparePair(t, c, seg, src, dst)
			}
		}
		b.Release(seg)
	}
	if met.segDeltaRowsShared.Value() == rows0 {
		t.Fatalf("delta compile shared no rows with the base")
	}
}

// TestDeltaEncodeApplyRoundTrip pins the in-memory encoding: the delta
// of a compiled segment applied back onto the base reproduces the
// segment exactly, and rejects a foreign mask or payload.
func TestDeltaEncodeApplyRoundTrip(t *testing.T) {
	baseR, varR := deltaTestPair(t)
	base := NewBlockCompiledRouting(baseR, BlockOptions{SegmentBytes: 64 << 10})
	defer base.Close()
	b := NewBlockCompiledRouting(varR, BlockOptions{SegmentBytes: 64 << 10, DeltaBase: base})
	defer b.Close()
	seg, err := b.Segment(0)
	if err != nil {
		t.Fatalf("Segment(0): %v", err)
	}
	defer b.Release(seg)
	d, err := b.EncodeDelta(seg)
	if err != nil {
		t.Fatalf("EncodeDelta: %v", err)
	}
	if d.Bytes() >= seg.Bytes() {
		t.Fatalf("delta %d bytes not smaller than segment %d", d.Bytes(), seg.Bytes())
	}
	got, err := b.ApplyDelta(0, d)
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	if !equalInt32(got.pathIdx, seg.pathIdx) || !equalInt32(got.links, seg.links) {
		t.Fatalf("delta round trip differs from the compiled segment")
	}
	if _, err := b.ApplyDelta(0, &SegmentDelta{Mask: d.Mask ^ 1, PathIdx: d.PathIdx, Links: d.Links}); err == nil {
		t.Fatalf("ApplyDelta accepted a foreign mask")
	}
	if _, err := b.ApplyDelta(0, &SegmentDelta{Mask: d.Mask, PathIdx: d.PathIdx[:1], Links: d.Links}); err == nil {
		t.Fatalf("ApplyDelta accepted a short payload")
	}
}

// TestDeltaCacheRoundTrip pins the on-disk half: a cold delta table
// writes xgftsegd-v1 records (strictly smaller than the base's full
// records), and a warm table patches them back bit-identically.
func TestDeltaCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenSegmentCache(dir)
	if err != nil {
		t.Fatalf("OpenSegmentCache: %v", err)
	}
	baseR, varR := deltaTestPair(t)
	baseOpts := BlockOptions{SegmentBytes: 128 << 10, Cache: cache}

	runVariant := func() [][]int32 {
		base := NewBlockCompiledRouting(baseR, baseOpts)
		defer base.Close()
		b := NewBlockCompiledRouting(varR, BlockOptions{SegmentBytes: 128 << 10, Cache: cache, DeltaBase: base})
		defer b.Close()
		out := make([][]int32, b.NumSegments())
		for g := 0; g < b.NumSegments(); g++ {
			seg, err := b.Segment(g)
			if err != nil {
				t.Fatalf("Segment(%d): %v", g, err)
			}
			out[g] = append([]int32(nil), seg.links...)
			b.Release(seg)
		}
		return out
	}

	saved0, patched0 := met.segDeltaBytesSaved.Value(), met.segDeltaPatched.Value()
	cold := runVariant()
	if met.segDeltaBytesSaved.Value() == saved0 {
		t.Fatalf("cold delta run saved no cache bytes")
	}
	full, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	deltas, _ := filepath.Glob(filepath.Join(dir, "*.segd"))
	if len(deltas) != len(cold) {
		t.Fatalf("%d delta records for %d segments", len(deltas), len(cold))
	}
	var fullBytes, deltaBytes int64
	for _, f := range full {
		st, _ := os.Stat(f)
		fullBytes += st.Size()
	}
	for _, f := range deltas {
		st, _ := os.Stat(f)
		deltaBytes += st.Size()
	}
	if deltaBytes >= fullBytes {
		t.Fatalf("delta records (%d bytes) not smaller than full records (%d bytes)", deltaBytes, fullBytes)
	}

	warm := runVariant()
	if got := met.segDeltaPatched.Value() - patched0; got != int64(len(cold)) {
		t.Fatalf("warm run patched %d segments, want %d", got, len(cold))
	}
	for g := range cold {
		if !equalInt32(warm[g], cold[g]) {
			t.Fatalf("warm delta segment %d differs from cold compile", g)
		}
	}
}

// TestDeltaCacheRejectsCorruptRecords pins validation parity with the
// full format: a damaged delta record is a miss, never wrong data.
func TestDeltaCacheRejectsCorruptRecords(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenSegmentCache(dir)
	if err != nil {
		t.Fatalf("OpenSegmentCache: %v", err)
	}
	baseR, varR := deltaTestPair(t)
	fetch := func() []int32 {
		base := NewBlockCompiledRouting(baseR, BlockOptions{SegmentBytes: 128 << 10, Cache: cache})
		defer base.Close()
		b := NewBlockCompiledRouting(varR, BlockOptions{SegmentBytes: 128 << 10, Cache: cache, DeltaBase: base})
		defer b.Close()
		seg, err := b.Segment(0)
		if err != nil {
			t.Fatalf("Segment(0): %v", err)
		}
		defer b.Release(seg)
		return append([]int32(nil), seg.links...)
	}
	want := fetch()
	files, err := filepath.Glob(filepath.Join(dir, "*.segd"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no delta records written (err=%v)", err)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatalf("reading %s: %v", files[0], err)
	}
	data[32] ^= 0xff // flip a mask byte
	if err := os.WriteFile(files[0], data, 0o644); err != nil {
		t.Fatalf("writing corrupt record: %v", err)
	}
	miss0 := met.segmentsCacheMiss.Value()
	if got := fetch(); !equalInt32(got, want) {
		t.Fatalf("corrupt delta record produced wrong links")
	}
	if met.segmentsCacheMiss.Value() == miss0 {
		t.Fatalf("corrupt delta record served as a hit")
	}
}

// TestDeltaIncompatibleBasePanics pins the eager contract: construction
// with a base whose per-level path counts differ must panic, not
// produce a silently wrong table.
func TestDeltaIncompatibleBasePanics(t *testing.T) {
	topo := blockTestTopo(t)
	base := NewBlockCompiledRouting(NewRouting(topo, DModK{}, 1, 0), BlockOptions{SegmentBytes: 64 << 10})
	defer base.Close()
	defer func() {
		if recover() == nil {
			t.Fatalf("incompatible DeltaBase did not panic")
		}
	}()
	NewBlockCompiledRouting(NewRouting(topo, Disjoint{}, 4, 0), BlockOptions{SegmentBytes: 64 << 10, DeltaBase: base})
}
